// Command flexserve runs one allocation strategy on one scenario — as a
// batch simulation that prints the cost ledger, or as a long-running
// placement service with admission control, checkpoint/restore, and a
// chaos harness (see SERVING.md).
//
// Batch examples:
//
//	flexserve -topo er -n 200 -scenario commuter-dynamic -alg onth
//	flexserve -topo rocketfuel -scenario timezones -alg offstat -rounds 600
//	flexserve -topo line -n 5 -scenario commuter-static -alg opt -rounds 200
//
// Serving examples:
//
//	flexserve -serve :8080 -statedir /var/lib/flexserve -alg onth -seed 7
//	flexserve -fire http://localhost:8080 -rate 500 -requests 20000 -seed 7
//	flexserve -replay /var/lib/flexserve -alg onth -seed 7
//	flexserve -serve :8080 -statedir d -faultinject kill:40
//
// Every random stream in the command is derived from -seed alone, so a
// batch run, a server, its load generator, and an offline replay are all
// reproducible from one number.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flexserve: ")

	var (
		topoName = flag.String("topo", "er", "topology: er, line, grid, pa, smallworld, rocketfuel")
		n        = flag.Int("n", 200, "network size (er, line, grid, pa, smallworld)")
		metric   = flag.String("metric", "dense", "distance backend: dense, sparse[:rows], or landmark[:k] (see PERFORMANCE.md); dense and sparse are exact")
		start    = flag.String("start", "center", "initial server node: center (exact scan), approx (3-sweep estimate for huge substrates), or a node id")
		scenario = flag.String("scenario", "commuter-dynamic", "workload: commuter-dynamic, commuter-static, timezones, uniform, flash-crowd, diurnal, weekly")
		algName  = flag.String("alg", "onth", "strategy: onth, onbr, onbr-dyn, onbr-cluster, onsamp, wfa, onconf, opt, offstat, offbr, offth")
		rounds   = flag.Int("rounds", 500, "simulated rounds")
		lambda   = flag.Int("lambda", 10, "rounds per workload phase (λ)")
		T        = flag.Int("T", 0, "day phases / time periods (0 = derive from network size)")
		k        = flag.Int("k", 0, "server bound k (0 = unbounded)")
		maxConf  = flag.Int("maxconfigs", 0, "configuration-space bound for wfa/onconf (0 = the default 2^16); state is O(C·2^k), the Reset error reports the memory a larger space implies")
		beta     = flag.Float64("beta", 40, "migration cost β")
		createC  = flag.Float64("c", 400, "creation cost c")
		ra       = flag.Float64("ra", 2.5, "running cost of an active server")
		ri       = flag.Float64("ri", 0.5, "running cost of an inactive server")
		loadName = flag.String("load", "linear", "load function: linear, quadratic")
		seed     = flag.Int64("seed", 1, "random seed (every mode derives all randomness from it)")
		csvPath  = flag.String("csv", "", "write the per-round ledger to this CSV file")

		serveAddr = flag.String("serve", "", "run the streaming placement service on this address")
		replayDir = flag.String("replay", "", "replay the WAL in this state directory and print the ledger")
		fireURL   = flag.String("fire", "", "drive a running server at this base URL with generated load")

		stateDir  = flag.String("statedir", "", "serving state directory (WAL + checkpoints); empty = ephemeral")
		window    = flag.Int("window", serve.DefaultWindow, "requests per demand window (a simulated round)")
		queueCap  = flag.Int("queuecap", serve.DefaultQueueCap, "ingest queue bound")
		shedFrac  = flag.Float64("shed", serve.DefaultShedFraction, "queue occupancy above which non-critical classes are shed")
		ckptEvery = flag.Int("ckpt-every", serve.DefaultCheckpointEvery, "rounds between checkpoints")
		walSeg    = flag.Int("wal-segment", 0, "rotate the WAL every this many entries and truncate sealed segments behind checkpoints (0 = single ever-growing file)")
		tickEvery = flag.Duration("tick", 0, "close the demand window on this period even without load (0 = count-only)")
		faultSpec = flag.String("faultinject", "", "chaos fault: slow[:after[:delay]], flood[:after[:factor]], ckptfail[:after], kill[:after]")

		fireRate  = flag.Float64("rate", 200, "fire: requests per second")
		fireBurst = flag.Int("burst", 1, "fire: requests per batch")
		fireReqs  = flag.Int("requests", 2000, "fire: total requests to send")
		fireMix   = flag.String("mix", "critical=0.2,standard=0.6,batch=0.2", "fire: SLO class mix")
	)
	flag.Parse()

	modes := 0
	for _, m := range []string{*serveAddr, *replayDir, *fireURL} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		log.Fatal("pick one of -serve, -replay, -fire")
	}

	cfg := cmdConfig{
		topo: *topoName, n: *n, scenario: *scenario, alg: *algName,
		rounds: *rounds, lambda: *lambda, T: *T, k: *k, maxConfigs: *maxConf,
		beta: *beta, create: *createC, ra: *ra, ri: *ri,
		load: *loadName, metric: *metric, start: *start, seeds: seeds{*seed},
	}
	switch {
	case *serveAddr != "":
		fault, err := serve.ParseFault(*faultSpec)
		if err != nil {
			log.Fatal(err)
		}
		runServe(cfg, serveOptions{
			addr: *serveAddr, dir: *stateDir, window: *window,
			queueCap: *queueCap, shed: *shedFrac, ckptEvery: *ckptEvery,
			segEntries: *walSeg, tickEvery: *tickEvery, fault: fault,
		})
	case *replayDir != "":
		runReplay(cfg, *replayDir, *window)
	case *fireURL != "":
		runFire(cfg, fireOptions{
			url: *fireURL, rate: *fireRate, burst: *fireBurst,
			requests: *fireReqs, mix: *fireMix,
		})
	default:
		runBatch(cfg, *csvPath)
	}
}

// seeds derives every random stream in the command from the single -seed
// flag. The topo/workload/alg offsets are pinned to the values batch mode
// has always used, so existing ledgers stay bit-identical; the serving
// modes get their own streams on top.
type seeds struct{ base int64 }

func (s seeds) topo() *rand.Rand     { return rand.New(rand.NewSource(s.base)) }
func (s seeds) workload() *rand.Rand { return rand.New(rand.NewSource(s.base + 1)) }
func (s seeds) alg() *rand.Rand      { return rand.New(rand.NewSource(s.base + 2)) }
func (s seeds) classes() *rand.Rand  { return rand.New(rand.NewSource(s.base + 3)) }
func (s seeds) fire() *rand.Rand     { return rand.New(rand.NewSource(s.base + 4)) }

// cmdConfig carries the parsed model flags into each mode.
type cmdConfig struct {
	topo, scenario, alg, load string
	metric, start             string
	n, rounds, lambda, T, k   int
	maxConfigs                int
	beta, create, ra, ri      float64
	seeds                     seeds
}

// buildEnv constructs the environment from the topology seed stream, under
// the distance backend -metric selects and the initial placement -start
// selects. The defaults (dense, center) reproduce the historical batch
// ledgers bit for bit; -metric sparse does too, since sparse is exact.
func (c cmdConfig) buildEnv() (*sim.Env, error) {
	g, err := buildTopology(c.topo, c.n, c.seeds.topo())
	if err != nil {
		return nil, err
	}
	var load cost.LoadFunc
	switch c.load {
	case "linear":
		load = cost.Linear{}
	case "quadratic":
		load = cost.Quadratic{}
	default:
		return nil, fmt.Errorf("unknown load function %q", c.load)
	}
	var m graph.Metric
	if c.metric != "" && c.metric != "dense" {
		if m, err = graph.NewMetric(g, c.metric); err != nil {
			return nil, err
		}
	}
	var startPlacement core.Placement
	switch c.start {
	case "", "center":
		// nil: NewEnvMetric runs the exact center scan.
	case "approx":
		startPlacement = core.NewPlacement(g.ApproxCenter())
	default:
		node, err := strconv.Atoi(c.start)
		if err != nil || node < 0 || node >= g.N() {
			return nil, fmt.Errorf("bad -start %q: want center, approx, or a node id in [0,%d)", c.start, g.N())
		}
		startPlacement = core.NewPlacement(node)
	}
	params := cost.Params{Beta: c.beta, Create: c.create, RunActive: c.ra, RunInactive: c.ri}
	return sim.NewEnvMetric(g, m, load, cost.AssignMinCost, params,
		core.Params{QueueCap: 3, Expiry: 20, MaxServers: c.k}, startPlacement)
}

// buildSequence constructs the scenario from the workload seed stream.
func (c cmdConfig) buildSequence(env *sim.Env) (*workload.Sequence, error) {
	T := c.T
	if T == 0 {
		T = workload.TForSize(env.Graph.N())
	}
	return buildWorkload(c.scenario, env, T, c.lambda, c.rounds, c.seeds.workload())
}

// fingerprint names the serving configuration; the WAL and checkpoints
// embed it, so a restart under different flags refuses to replay.
func (c cmdConfig) fingerprint(window int) string {
	fp := fmt.Sprintf("flexserve:%s:n=%d:alg=%s:load=%s:beta=%g:c=%g:ra=%g:ri=%g:k=%d:seed=%d:window=%d",
		c.topo, c.n, c.alg, c.load, c.beta, c.create, c.ra, c.ri, c.k, c.seeds.base, window)
	// Non-default backend or start change the simulated trajectory (an
	// approximate metric, a different initial server), so they join the
	// fingerprint; the defaults stay out of it, keeping state directories
	// written by earlier versions replayable.
	if c.metric != "" && c.metric != "dense" {
		fp += ":metric=" + c.metric
	}
	if c.start != "" && c.start != "center" {
		fp += ":start=" + c.start
	}
	return fp
}

// newStream is the deterministic stream factory the serving layer replays
// through: every call rebuilds the identical environment and algorithm
// from the seed streams. Offline strategies need the whole future and
// cannot serve an unbounded stream.
func (c cmdConfig) newStream() (*sim.Stream, error) {
	env, err := c.buildEnv()
	if err != nil {
		return nil, err
	}
	switch strings.ToLower(c.alg) {
	case "opt", "offstat", "offbr", "offth":
		return nil, fmt.Errorf("offline strategy %q needs the full request sequence; -serve and -replay are online-only", c.alg)
	}
	alg, err := buildAlgorithm(c.alg, nil, c.seeds.alg(), c.maxConfigs)
	if err != nil {
		return nil, err
	}
	return sim.NewStream(env, alg, "stream")
}

func runBatch(c cmdConfig, csvPath string) {
	env, err := c.buildEnv()
	if err != nil {
		log.Fatal(err)
	}
	seq, err := c.buildSequence(env)
	if err != nil {
		log.Fatal(err)
	}
	alg, err := buildAlgorithm(c.alg, seq, c.seeds.alg(), c.maxConfigs)
	if err != nil {
		log.Fatal(err)
	}

	l, err := sim.Run(env, alg, seq)
	if err != nil {
		log.Fatal(err)
	}
	params := cost.Params{Beta: c.beta, Create: c.create, RunActive: c.ra, RunInactive: c.ri}
	fmt.Printf("topology:  %v (%s)\n", env.Graph, c.topo)
	fmt.Printf("workload:  %s\n", l.Scenario)
	fmt.Printf("costs:     %v\n", params)
	fmt.Printf("algorithm: %s\n\n", l.Algorithm)
	fmt.Printf("total cost   %12.2f\n", l.Total())
	fmt.Printf("  latency    %12.2f\n", l.Totals.Latency)
	fmt.Printf("  load       %12.2f\n", l.Totals.Load)
	fmt.Printf("  running    %12.2f\n", l.Totals.Run)
	fmt.Printf("  migration  %12.2f\n", l.Totals.Migration)
	fmt.Printf("  creation   %12.2f\n", l.Totals.Creation)
	fmt.Printf("peak servers %12d\n", l.MaxActive())

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteLedger(f, l); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", csvPath)
	}
}

type serveOptions struct {
	addr, dir        string
	window, queueCap int
	shed             float64
	ckptEvery        int
	segEntries       int
	tickEvery        time.Duration
	fault            serve.Fault
}

func runServe(c cmdConfig, opts serveOptions) {
	srv, err := serve.New(serve.Config{
		NewStream:       c.newStream,
		Fingerprint:     c.fingerprint(opts.window),
		Window:          opts.window,
		QueueCap:        opts.queueCap,
		ShedFraction:    opts.shed,
		CheckpointEvery: opts.ckptEvery,
		SegmentEntries:  opts.segEntries,
		Dir:             opts.dir,
		Fault:           opts.fault,
		Logf:            log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()

	httpSrv := &http.Server{
		Addr:              opts.addr,
		Handler:           serve.Handler(srv),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	stopTick := make(chan struct{})
	if opts.tickEvery > 0 {
		go func() {
			ticker := time.NewTicker(opts.tickEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ticker.C:
					srv.Tick()
				case <-stopTick:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	log.Printf("serving on %s (statedir=%q window=%d queue=%d fault=%s)",
		opts.addr, opts.dir, opts.window, opts.queueCap, opts.fault.Kind)
	select {
	case s := <-sig:
		log.Printf("%v: draining", s)
	case err := <-errCh:
		log.Fatalf("http server: %v", err)
	}
	close(stopTick)
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	httpSrv.Shutdown(ctx)
	snap := srv.LedgerSnapshot()
	log.Printf("drained: %d rounds served, %d quarantined, total cost %.2f",
		snap.Rounds, snap.Quarantined, snap.Total)
}

// runReplay rebuilds the ledger offline from the state directory's WAL and
// prints it in exactly the GET /ledger wire shape, so recovery parity is a
// byte diff between this output and the endpoint's body.
func runReplay(c cmdConfig, dir string, window int) {
	engine, err := serve.Replay(serve.Config{
		NewStream:   c.newStream,
		Fingerprint: c.fingerprint(window),
		Window:      window,
		Dir:         dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := json.NewEncoder(os.Stdout).Encode(serve.DumpLedger(engine)); err != nil {
		log.Fatal(err)
	}
}

type fireOptions struct {
	url      string
	rate     float64
	burst    int
	requests int
	mix      string
}

// runFire drives a running server with the scenario's arrival stream: the
// same seeded sequence batch mode would simulate is flattened per-request
// (workload.Stream) and posted at the target rate with the given SLO mix.
func runFire(c cmdConfig, opts fireOptions) {
	if opts.rate <= 0 || opts.burst < 1 || opts.requests < 1 {
		log.Fatal("fire needs -rate > 0, -burst >= 1, -requests >= 1")
	}
	env, err := c.buildEnv()
	if err != nil {
		log.Fatal(err)
	}
	seq, err := c.buildSequence(env)
	if err != nil {
		log.Fatal(err)
	}
	stream, err := workload.NewStream(seq)
	if err != nil {
		log.Fatal(err)
	}
	mix, err := parseMix(opts.mix)
	if err != nil {
		log.Fatal(err)
	}
	classRng := c.seeds.classes()
	jitterRng := c.seeds.fire()

	client := &http.Client{Timeout: 10 * time.Second}
	base := strings.TrimSuffix(opts.url, "/")
	interval := time.Duration(float64(opts.burst) / opts.rate * float64(time.Second))
	var sent, admitted, shed, errors int
	start := time.Now() //repcheck:allow-wallclock fire drives a live server; elapsed time is part of the report
	for sent < opts.requests {
		for b := 0; b < opts.burst && sent < opts.requests; b++ {
			node := stream.Next()
			class := pickClass(mix, classRng)
			sent++
			status, err := postIngest(client, base, node, class)
			switch {
			case err != nil:
				errors++
			case status == http.StatusAccepted:
				admitted++
			case status == http.StatusTooManyRequests:
				shed++
			default:
				errors++
			}
		}
		// Jitter the pacing ±20% so bursts don't phase-lock with the
		// server's window; the jitter stream is seeded, so a fire run is
		// reproducible.
		sleep := interval + time.Duration((jitterRng.Float64()-0.5)*0.4*float64(interval))
		time.Sleep(sleep)
	}
	out := map[string]interface{}{
		"sent":       sent,
		"admitted":   admitted,
		"shed":       shed,
		"errors":     errors,
		"duration_s": time.Since(start).Seconds(), //repcheck:allow-wallclock fire drives a live server; elapsed time is part of the report
		"scenario":   stream.Name(),
	}
	json.NewEncoder(os.Stdout).Encode(out)
	if errors > 0 {
		os.Exit(1)
	}
}

func postIngest(client *http.Client, base string, node int, class serve.Class) (int, error) {
	body := fmt.Sprintf(`{"node":%d,"count":1,"slo_class":%q}`, node, class)
	resp, err := client.Post(base+"/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// parseMix parses "critical=0.2,standard=0.6,batch=0.2" into cumulative
// class weights.
func parseMix(s string) ([]float64, error) {
	weights := make([]float64, 3)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		if len(kv) != 2 {
			return nil, fmt.Errorf("bad mix entry %q (want class=weight)", part)
		}
		class, err := serve.ParseClass(kv[0])
		if err != nil {
			return nil, err
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(kv[1]), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad mix weight %q", kv[1])
		}
		weights[class] = w
	}
	total := weights[0] + weights[1] + weights[2]
	if total <= 0 {
		return nil, fmt.Errorf("mix %q has no positive weight", s)
	}
	cum := make([]float64, 3)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cum[i] = acc
	}
	return cum, nil
}

func pickClass(cum []float64, rng *rand.Rand) serve.Class {
	x := rng.Float64()
	for i, c := range cum {
		if x < c {
			return serve.Class(i)
		}
	}
	return serve.Batch
}

func buildTopology(name string, n int, rng *rand.Rand) (*graph.Graph, error) {
	switch name {
	case "er":
		return gen.ErdosRenyi(n, 0.01, gen.DefaultOptions(), rng)
	case "line":
		return gen.Line(n, gen.DefaultOptions(), rng)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return gen.Grid(side, side, gen.DefaultOptions(), rng)
	case "pa":
		return gen.PreferentialAttachment(n, 2, gen.DefaultOptions(), rng)
	case "smallworld":
		// Ring + n/4 random chords: O(n) construction for the huge
		// substrates the sparse/landmark backends serve (see
		// EXPERIMENTS.md for the 10⁵-node recipe).
		chords := n / 4
		if chords < 1 {
			chords = 1
		}
		return gen.SmallWorld(n, chords, gen.DefaultOptions(), rng)
	case "rocketfuel":
		return topo.ASLike(topo.AS7018Config(), rng)
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

// scenarioAliases maps the CLI's short scenario names onto the canonical
// family names of experiments.BuildNamedScenario.
var scenarioAliases = map[string]string{
	"timezones": "time-zones",
	"diurnal":   "diurnal-multi-region",
	"weekly":    "weekday-weekend",
}

func buildWorkload(name string, env *sim.Env, T, lambda, rounds int, rng *rand.Rand) (*workload.Sequence, error) {
	name = strings.ToLower(name)
	if name == "uniform" {
		return workload.Uniform(env.Graph.N(), 1<<uint(T/2), rounds, rng)
	}
	if canonical, ok := scenarioAliases[name]; ok {
		name = canonical
	}
	// Delegate to the experiment harness's builder so the CLI scenarios
	// and the figure sweeps share one default derivation. Its errors pass
	// through: "unknown scenario" for a bad name, the workload validation
	// message otherwise.
	return experiments.BuildNamedScenario(name, env.Metric, T, lambda, rounds, 0, rng)
}

func buildAlgorithm(name string, seq *workload.Sequence, rng *rand.Rand, maxConfigs int) (sim.Algorithm, error) {
	switch strings.ToLower(name) {
	case "onth":
		return online.NewONTH(), nil
	case "onbr":
		return online.NewONBR(), nil
	case "onbr-dyn":
		return online.NewONBRDynamic(), nil
	case "onbr-cluster":
		return online.NewONBRClustered(8), nil
	case "onsamp":
		return online.NewONSAMP(), nil
	case "wfa":
		a := online.NewWFA()
		a.MaxConfigs = maxConfigs
		return a, nil
	case "onconf":
		a := online.NewONCONF(rng)
		a.MaxConfigs = maxConfigs
		return a, nil
	case "opt":
		return offline.NewOPT(seq), nil
	case "offstat":
		return offline.NewOFFSTAT(seq), nil
	case "offbr":
		return offline.NewOFFBR(seq), nil
	case "offth":
		return offline.NewOFFTH(seq), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
