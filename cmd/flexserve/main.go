// Command flexserve runs one allocation strategy on one scenario and
// prints the resulting cost ledger, optionally as a per-round CSV.
//
// Examples:
//
//	flexserve -topo er -n 200 -scenario commuter-dynamic -alg onth
//	flexserve -topo rocketfuel -scenario timezones -alg offstat -rounds 600
//	flexserve -topo line -n 5 -scenario commuter-static -alg opt -rounds 200
//	flexserve -topo er -n 200 -scenario flash-crowd -alg offbr -rounds 500
//	flexserve -topo er -n 200 -scenario diurnal -alg onbr -rounds 500
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flexserve: ")

	var (
		topoName = flag.String("topo", "er", "topology: er, line, grid, pa, rocketfuel")
		n        = flag.Int("n", 200, "network size (er, line, grid, pa)")
		scenario = flag.String("scenario", "commuter-dynamic", "workload: commuter-dynamic, commuter-static, timezones, uniform, flash-crowd, diurnal, weekly")
		algName  = flag.String("alg", "onth", "strategy: onth, onbr, onbr-dyn, onbr-cluster, onsamp, wfa, onconf, opt, offstat, offbr, offth")
		rounds   = flag.Int("rounds", 500, "simulated rounds")
		lambda   = flag.Int("lambda", 10, "rounds per workload phase (λ)")
		T        = flag.Int("T", 0, "day phases / time periods (0 = derive from network size)")
		k        = flag.Int("k", 0, "server bound k (0 = unbounded)")
		beta     = flag.Float64("beta", 40, "migration cost β")
		createC  = flag.Float64("c", 400, "creation cost c")
		ra       = flag.Float64("ra", 2.5, "running cost of an active server")
		ri       = flag.Float64("ri", 0.5, "running cost of an inactive server")
		loadName = flag.String("load", "linear", "load function: linear, quadratic")
		seed     = flag.Int64("seed", 1, "random seed")
		csvPath  = flag.String("csv", "", "write the per-round ledger to this CSV file")
	)
	flag.Parse()

	g, err := buildTopology(*topoName, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	var load cost.LoadFunc
	switch *loadName {
	case "linear":
		load = cost.Linear{}
	case "quadratic":
		load = cost.Quadratic{}
	default:
		log.Fatalf("unknown load function %q", *loadName)
	}
	params := cost.Params{Beta: *beta, Create: *createC, RunActive: *ra, RunInactive: *ri}
	env, err := sim.NewEnv(g, load, cost.AssignMinCost, params,
		core.Params{QueueCap: 3, Expiry: 20, MaxServers: *k})
	if err != nil {
		log.Fatal(err)
	}
	if *T == 0 {
		*T = workload.TForSize(g.N())
	}
	seq, err := buildWorkload(*scenario, env, *T, *lambda, *rounds, *seed)
	if err != nil {
		log.Fatal(err)
	}
	alg, err := buildAlgorithm(*algName, seq, *seed)
	if err != nil {
		log.Fatal(err)
	}

	l, err := sim.Run(env, alg, seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology:  %v (%s)\n", g, *topoName)
	fmt.Printf("workload:  %s\n", l.Scenario)
	fmt.Printf("costs:     %v\n", params)
	fmt.Printf("algorithm: %s\n\n", l.Algorithm)
	fmt.Printf("total cost   %12.2f\n", l.Total())
	fmt.Printf("  latency    %12.2f\n", l.Totals.Latency)
	fmt.Printf("  load       %12.2f\n", l.Totals.Load)
	fmt.Printf("  running    %12.2f\n", l.Totals.Run)
	fmt.Printf("  migration  %12.2f\n", l.Totals.Migration)
	fmt.Printf("  creation   %12.2f\n", l.Totals.Creation)
	fmt.Printf("peak servers %12d\n", l.MaxActive())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := trace.WriteLedger(f, l); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *csvPath)
	}
}

func buildTopology(name string, n int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch name {
	case "er":
		return gen.ErdosRenyi(n, 0.01, gen.DefaultOptions(), rng)
	case "line":
		return gen.Line(n, gen.DefaultOptions(), rng)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return gen.Grid(side, side, gen.DefaultOptions(), rng)
	case "pa":
		return gen.PreferentialAttachment(n, 2, gen.DefaultOptions(), rng)
	case "rocketfuel":
		return topo.ASLike(topo.AS7018Config(), rng)
	default:
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}

// scenarioAliases maps the CLI's short scenario names onto the canonical
// family names of experiments.BuildNamedScenario.
var scenarioAliases = map[string]string{
	"timezones": "time-zones",
	"diurnal":   "diurnal-multi-region",
	"weekly":    "weekday-weekend",
}

func buildWorkload(name string, env *sim.Env, T, lambda, rounds int, seed int64) (*workload.Sequence, error) {
	rng := rand.New(rand.NewSource(seed + 1))
	name = strings.ToLower(name)
	if name == "uniform" {
		return workload.Uniform(env.Graph.N(), 1<<uint(T/2), rounds, rng)
	}
	if canonical, ok := scenarioAliases[name]; ok {
		name = canonical
	}
	// Delegate to the experiment harness's builder so the CLI scenarios
	// and the figure sweeps share one default derivation. Its errors pass
	// through: "unknown scenario" for a bad name, the workload validation
	// message otherwise.
	return experiments.BuildNamedScenario(name, env.Matrix, T, lambda, rounds, 0, rng)
}

func buildAlgorithm(name string, seq *workload.Sequence, seed int64) (sim.Algorithm, error) {
	switch strings.ToLower(name) {
	case "onth":
		return online.NewONTH(), nil
	case "onbr":
		return online.NewONBR(), nil
	case "onbr-dyn":
		return online.NewONBRDynamic(), nil
	case "onbr-cluster":
		return online.NewONBRClustered(8), nil
	case "onsamp":
		return online.NewONSAMP(), nil
	case "wfa":
		return online.NewWFA(), nil
	case "onconf":
		return online.NewONCONF(rand.New(rand.NewSource(seed + 2))), nil
	case "opt":
		return offline.NewOPT(seq), nil
	case "offstat":
		return offline.NewOFFSTAT(seq), nil
	case "offbr":
		return offline.NewOFFBR(seq), nil
	case "offth":
		return offline.NewOFFTH(seq), nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}
