package main

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestBuildTopology(t *testing.T) {
	for _, name := range []string{"er", "line", "grid", "pa", "rocketfuel"} {
		g, err := buildTopology(name, 30, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.N() == 0 {
			t.Fatalf("%s: empty graph", name)
		}
		if !g.Connected() {
			t.Fatalf("%s: disconnected", name)
		}
	}
	if _, err := buildTopology("bogus", 10, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBuildTopologyGridCoversN(t *testing.T) {
	g, err := buildTopology("grid", 10, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 10 {
		t.Fatalf("grid with %d nodes cannot cover n=10", g.N())
	}
}

func testEnv(t *testing.T) *sim.Env {
	t.Helper()
	g, err := buildTopology("er", 40, seeds{1}.topo())
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.DefaultParams(), core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestBuildWorkload(t *testing.T) {
	env := testEnv(t)
	for _, name := range []string{"commuter-dynamic", "commuter-static", "timezones", "uniform", "flash-crowd", "diurnal", "weekly"} {
		seq, err := buildWorkload(name, env, 6, 5, 20, seeds{1}.workload())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if seq.Len() != 20 {
			t.Fatalf("%s: %d rounds", name, seq.Len())
		}
	}
	if _, err := buildWorkload("bogus", env, 6, 5, 20, seeds{1}.workload()); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBuildAlgorithm(t *testing.T) {
	seq := workload.NewSequence("x", nil)
	for _, name := range []string{"onth", "onbr", "onbr-dyn", "onbr-cluster", "onsamp", "wfa", "onconf", "opt", "offstat", "offbr", "offth", "ONTH"} {
		alg, err := buildAlgorithm(name, seq, seeds{1}.alg(), 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if alg.Name() == "" {
			t.Fatalf("%s: empty algorithm name", name)
		}
	}
	if _, err := buildAlgorithm("bogus", seq, seeds{1}.alg(), 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestEndToEndRun(t *testing.T) {
	// A miniature of what main does, without the flag plumbing.
	env := testEnv(t)
	seq, err := buildWorkload("commuter-dynamic", env, workload.TForSize(40), 5, 60, seeds{1}.workload())
	if err != nil {
		t.Fatal(err)
	}
	alg, err := buildAlgorithm("onth", seq, seeds{1}.alg(), 0)
	if err != nil {
		t.Fatal(err)
	}
	l, err := sim.Run(env, alg, seq)
	if err != nil {
		t.Fatal(err)
	}
	if l.Total() <= 0 {
		t.Fatalf("total = %v", l.Total())
	}
}
