// Command snapshot prints every figure and table of the evaluation with
// full float precision, for byte-level parity checks across optimisation
// work: run it before and after a change and diff the output.
//
// Usage: snapshot [seed [metric]] — the optional metric spec (dense,
// sparse[:rows], landmark[:k]) selects the distance backend; exact
// backends must produce byte-identical output, which CI pins for
// dense vs sparse.
package main

import (
	"fmt"
	"os"
	"strconv"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	seed := int64(1)
	if len(os.Args) > 1 {
		s, err := strconv.ParseInt(os.Args[1], 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		seed = s
	}
	metric := ""
	if len(os.Args) > 2 {
		metric = os.Args[2]
	}
	o := experiments.Options{Quick: true, Seed: seed, Metric: metric}
	figs := []struct {
		name string
		fn   func(experiments.Options) (*trace.Table, error)
	}{
		{"Figure1", experiments.Figure1}, {"Figure2", experiments.Figure2},
		{"Figure3", experiments.Figure3}, {"Figure4", experiments.Figure4},
		{"Figure5", experiments.Figure5}, {"Figure6", experiments.Figure6},
		{"Figure7", experiments.Figure7}, {"Figure8", experiments.Figure8},
		{"Figure9", experiments.Figure9}, {"Figure10", experiments.Figure10},
		{"Figure11", experiments.Figure11}, {"Figure12", experiments.Figure12},
		{"Figure13", experiments.Figure13}, {"Figure14", experiments.Figure14},
		{"Figure15", experiments.Figure15}, {"Figure16", experiments.Figure16},
		{"Figure17", experiments.Figure17}, {"Figure18", experiments.Figure18},
		{"Figure19", experiments.Figure19},
		{"AblationQueue", experiments.AblationQueue},
		{"AblationExpiry", experiments.AblationExpiry},
		{"AblationY", experiments.AblationY},
		{"AblationTheta", experiments.AblationTheta},
		{"AblationLoad", experiments.AblationLoad},
		{"AblationAssign", experiments.AblationAssign},
		{"CompareOnlineVariants", experiments.CompareOnlineVariants},
		// The composable scenario sweeps are appended after the paper
		// figures so optimisation diffs against older snapshots stay
		// aligned on the shared prefix.
		{"CompareScenarios", experiments.CompareScenarios},
		{"ScenarioFlashCrowd", experiments.ScenarioFlashCrowd},
		{"ScenarioDiurnal", experiments.ScenarioDiurnal},
	}
	for _, f := range figs {
		tab, err := f.fn(o)
		if err != nil {
			fmt.Printf("%s: ERROR %v\n", f.name, err)
			continue
		}
		fmt.Printf("== %s: %s\n", f.name, tab.Title)
		for _, x := range tab.X {
			fmt.Printf("x %.17g\n", x)
		}
		for _, s := range tab.Series {
			fmt.Printf("series %s:", s.Label)
			for _, v := range s.Values {
				fmt.Printf(" %.17g", v)
			}
			fmt.Println()
		}
	}
	rf, err := experiments.TableRocketfuel(o)
	if err != nil {
		fmt.Printf("TableRocketfuel: ERROR %v\n", err)
		return
	}
	fmt.Printf("== TableRocketfuel\n%+v\n", rf)
}
