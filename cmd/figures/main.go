// Command figures regenerates every figure and table of the paper's
// evaluation section and prints the plotted series. With -csvdir the same
// data is written as one CSV per figure for external plotting.
//
// Examples:
//
//	figures                  # all figures, paper-scale (takes a while)
//	figures -quick           # all figures, scaled down
//	figures -only 15,16,17   # just the OFFSTAT/OPT ratio sweeps
//	figures -only rocketfuel -csvdir out/
//	figures -only ablations -quick
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/trace"
)

type figure struct {
	name string
	run  func(experiments.Options) (*trace.Table, error)
}

func allFigures() []figure {
	return []figure{
		{"1", experiments.Figure1},
		{"2", experiments.Figure2},
		{"3", experiments.Figure3},
		{"4", experiments.Figure4},
		{"5", experiments.Figure5},
		{"6", experiments.Figure6},
		{"7", experiments.Figure7},
		{"8", experiments.Figure8},
		{"9", experiments.Figure9},
		{"10", experiments.Figure10},
		{"11", experiments.Figure11},
		{"12", experiments.Figure12},
		{"13", experiments.Figure13},
		{"14", experiments.Figure14},
		{"15", experiments.Figure15},
		{"16", experiments.Figure16},
		{"17", experiments.Figure17},
		{"18", experiments.Figure18},
		{"19", experiments.Figure19},
		{"rocketfuel", func(o experiments.Options) (*trace.Table, error) {
			res, err := experiments.TableRocketfuel(o)
			if err != nil {
				return nil, err
			}
			return res.Table(), nil
		}},
	}
}

func ablations() []figure {
	return []figure{
		{"ablation-queue", experiments.AblationQueue},
		{"ablation-expiry", experiments.AblationExpiry},
		{"ablation-y", experiments.AblationY},
		{"ablation-theta", experiments.AblationTheta},
		{"ablation-load", experiments.AblationLoad},
		{"ablation-assign", experiments.AblationAssign},
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	quickFlag := flag.Bool("quick", false, "scaled-down set-up (smaller networks, fewer runs)")
	only := flag.String("only", "", "comma-separated figure ids (e.g. 3,11,rocketfuel,ablations); empty = all figures")
	csvDir := flag.String("csvdir", "", "also write one CSV per figure into this directory")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	opts := experiments.Options{Quick: *quickFlag, Seed: *seed}
	selected := selectFigures(*only)
	if len(selected) == 0 {
		log.Fatalf("no figures match -only=%q", *only)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}
	for _, f := range selected {
		start := time.Now()
		tab, err := f.run(opts)
		if err != nil {
			log.Fatalf("figure %s: %v", f.name, err)
		}
		if err := trace.Render(os.Stdout, tab); err != nil {
			log.Fatalf("figure %s: %v", f.name, err)
		}
		fmt.Printf("# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			path := filepath.Join(*csvDir, "figure-"+f.name+".csv")
			fh, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := trace.WriteTable(fh, tab); err != nil {
				log.Fatal(err)
			}
			fh.Close()
		}
	}
}

func selectFigures(only string) []figure {
	if only == "" {
		return allFigures()
	}
	var out []figure
	for _, tok := range strings.Split(only, ",") {
		tok = strings.TrimSpace(tok)
		switch tok {
		case "":
			continue
		case "ablations":
			out = append(out, ablations()...)
			continue
		case "all":
			out = append(out, allFigures()...)
			continue
		}
		found := false
		for _, f := range append(allFigures(), ablations()...) {
			if f.name == tok || f.name == "ablation-"+tok {
				out = append(out, f)
				found = true
				break
			}
		}
		if !found {
			log.Fatalf("unknown figure %q", tok)
		}
	}
	return out
}
