// Command figures regenerates every figure and table of the paper's
// evaluation and prints the plotted series. Every figure is a declarative
// cell grid (internal/experiments/runner), so the same run can execute
// in-process, across worker subprocesses, or sharded across machines — with
// byte-identical output. Tables go to stdout; progress and timing go to
// stderr, so stdout can be diffed across backends.
//
// Examples:
//
//	figures                        # all figures, paper-scale (takes a while)
//	figures -quick                 # all figures, scaled down
//	figures -only 15,16,17         # just the OFFSTAT/OPT ratio sweeps
//	figures -only rocketfuel -csvdir out/
//	figures -only ablations -quick
//	figures -only 3,4 -procs 4     # one pool of 4 workers serves both grids
//	figures -only 3 -shard 1/2 -partials parts/   # machine 1
//	figures -only 3 -shard 2/2 -partials parts/   # machine 2
//	figures -only 3 -merge -partials parts/       # fold the shards' results
//	figures -only 3 -plan 2 -partials parts/      # LPT plan from the timings
//	figures -only 3 -shard 1/2 -withplan -partials parts/  # planned shard
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
	"repro/internal/trace"
)

// allFigures lists the default selection: the paper's evaluation section.
func allFigures() []string {
	return []string{
		"1", "2", "3", "4", "5", "6", "7", "8", "9", "10",
		"11", "12", "13", "14", "15", "16", "17", "18", "19",
		"rocketfuel",
	}
}

// ablations lists the design-choice sweeps.
func ablations() []string {
	return []string{
		"ablation-queue", "ablation-expiry", "ablation-y",
		"ablation-theta", "ablation-load", "ablation-assign",
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	quickFlag := flag.Bool("quick", false, "scaled-down set-up (smaller networks, fewer runs)")
	only := flag.String("only", "", "comma-separated figure ids (e.g. 3,11,rocketfuel,ablations); empty = all figures")
	csvDir := flag.String("csvdir", "", "also write one CSV per figure into this directory")
	seed := flag.Int64("seed", 1, "base random seed")
	procs := flag.Int("procs", 0, "fan the whole selection's cell grids out over this many shared worker subprocesses")
	workers := flag.Int("workers", 0, "bound the in-process worker pool (0 = GOMAXPROCS)")
	shard := flag.String("shard", "", "evaluate only slice i of m of each grid, as i/m, and write partial results")
	partials := flag.String("partials", "", "directory for shard partial and plan files (required with -shard, -merge, -plan)")
	merge := flag.Bool("merge", false, "merge shard partials from -partials and print the tables")
	plan := flag.Int("plan", 0, "write an m-way timing-balanced shard plan from the partials of a previous run")
	withPlan := flag.Bool("withplan", false, "with -shard i/m: evaluate the cells the plan file assigns to shard i instead of the modulo slice")
	faultInject := flag.Int("faultinject", 0, "internal/testing: first worker subprocess exits after this many cells")
	workerFlag := flag.Bool("worker", false, "internal: serve cells on stdin/stdout (SPEC lines select the grid)")
	spec := flag.String("spec", "", "internal: spec served in -worker mode before any SPEC line")
	flag.Parse()

	opts := experiments.Options{Quick: *quickFlag, Seed: *seed}
	if *workerFlag {
		if err := runWorker(*spec, opts); err != nil {
			log.Fatal(err)
		}
		return
	}

	shardIdx, shardTotal, err := parseShard(*shard)
	if err != nil {
		log.Fatal(err)
	}
	if (shardTotal > 0 || *merge || *plan > 0) && *partials == "" {
		log.Fatal("-shard, -merge, and -plan require -partials")
	}
	modes := 0
	for _, on := range []bool{shardTotal > 0, *merge, *plan > 0} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		log.Fatal("-shard, -merge, and -plan are mutually exclusive")
	}
	if shardTotal > 0 && *csvDir != "" {
		log.Fatal("-shard emits partial files only; use -csvdir on the -merge run")
	}
	if *withPlan && shardTotal == 0 {
		log.Fatal("-withplan requires -shard")
	}
	if *faultInject > 0 && *procs <= 0 {
		log.Fatal("-faultinject requires -procs")
	}
	selected, err := selectFigures(*only)
	if err != nil {
		log.Fatal(err)
	}
	for _, dir := range []string{*csvDir, *partials} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *procs > 0 && shardTotal == 0 && !*merge && *plan == 0 {
		if err := runPooled(selected, opts, *procs, *faultInject, *csvDir); err != nil {
			log.Fatal(err)
		}
		return
	}

	for _, name := range selected {
		start := time.Now()
		sp, err := experiments.NewSpec(name, opts)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *plan > 0:
			if err := runPlan(sp, opts, *plan, *partials); err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
		case shardTotal > 0:
			if err := runShard(sp, opts, shardIdx, shardTotal, *workers, *partials, *withPlan); err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
		case *merge:
			tab, err := mergeShards(sp, opts, *partials)
			if err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
			emit(name, tab, *csvDir)
		default:
			tab, err := runner.Run(sp, runner.Local{Workers: *workers})
			if err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
			emit(name, tab, *csvDir)
		}
		log.Printf("figure %s: %v elapsed", name, time.Since(start).Round(time.Millisecond))
	}
}

// runPooled evaluates the whole selection on one shared worker pool: the
// same subprocesses serve cells from successive figures (announced with
// SPEC protocol lines), so workers stay busy across figure boundaries
// instead of draining and respawning per figure. Tables print in selection
// order as each grid completes.
func runPooled(selected []string, opts experiments.Options, procs, faultInject int, csvDir string) error {
	specs := make([]*runner.Spec, len(selected))
	for i, name := range selected {
		sp, err := experiments.NewSpec(name, opts)
		if err != nil {
			return err
		}
		specs[i] = sp
	}
	pool := runner.NewPool(procs, 0, workerCommand(opts, faultInject))
	defer pool.Close()
	start := time.Now()
	return pool.RunAll(specs, func(i int, g *runner.Grid) error {
		tab, err := runner.Reduce(specs[i], g)
		if err != nil {
			return fmt.Errorf("figure %s: %w", selected[i], err)
		}
		emit(selected[i], tab, csvDir)
		log.Printf("figure %s: done at %v", selected[i], time.Since(start).Round(time.Millisecond))
		return nil
	})
}

// emit prints the table to stdout and optionally writes its CSV.
func emit(name string, tab *trace.Table, csvDir string) {
	if err := trace.Render(os.Stdout, tab); err != nil {
		log.Fatalf("figure %s: %v", name, err)
	}
	if csvDir != "" {
		if err := writeCSV(csvDir, name, tab); err != nil {
			log.Fatalf("figure %s: %v", name, err)
		}
	}
}

// writeFileAtomic writes via a temp file in the destination's directory and
// renames it into place, so a killed run never leaves a truncated partial,
// plan, or CSV for a later -merge or -withplan run to ingest.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once the rename has happened
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp makes mode-0600 files; restore the world-readable mode a
	// plain os.Create would have given shareable artifacts.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeCSV emits one figure's table into dir as figure-<name>.csv.
func writeCSV(dir, name string, tab *trace.Table) error {
	return writeFileAtomic(filepath.Join(dir, "figure-"+name+".csv"), func(w io.Writer) error {
		return trace.WriteTable(w, tab)
	})
}

// runWorker serves cells over stdin/stdout — the subprocess half of the
// pooled backend. The coordinator selects grids with SPEC protocol lines
// (any registered experiment name), so one worker process serves cells from
// successive figures; -spec optionally names the grid served before any
// SPEC line. The experiment options arrive on the command line, so both
// sides build the identical grid.
func runWorker(name string, o experiments.Options) error {
	var initial *runner.Spec
	if name != "" {
		sp, err := experiments.NewSpec(name, o)
		if err != nil {
			return err
		}
		initial = sp
	}
	var out io.Writer = os.Stdout
	if n, _ := strconv.Atoi(os.Getenv("FIGURES_DIE_AFTER")); n > 0 {
		out = &runner.DieAfterWriter{W: os.Stdout, Lines: n}
	}
	return runner.ServePool(initial, func(name string) (*runner.Spec, error) {
		return experiments.NewSpec(name, o)
	}, os.Stdin, out)
}

// workerCommand re-invokes this binary in -worker mode. With fault
// injection, only the first spawned worker gets the die-after budget —
// respawned replacements are healthy, so the requeued cells complete.
func workerCommand(o experiments.Options, faultInject int) func() (*exec.Cmd, error) {
	var spawned atomic.Int64
	return func() (*exec.Cmd, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		args := []string{"-worker", "-seed", strconv.FormatInt(o.Seed, 10)}
		if o.Quick {
			args = append(args, "-quick")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		if faultInject > 0 && spawned.Add(1) == 1 {
			cmd.Env = append(os.Environ(), "FIGURES_DIE_AFTER="+strconv.Itoa(faultInject))
		}
		return cmd, nil
	}
}

// runShard evaluates one slice of the grid and writes the mergeable partial
// file <partials>/<name>.shard-<i>-of-<m>.json. With withPlan, the slice is
// the cell set a timing plan (figures -plan) assigns to this shard instead
// of the modulo split.
func runShard(sp *runner.Spec, o experiments.Options, idx, total, workers int, dir string, withPlan bool) error {
	var backend runner.Exec = runner.Shard{Index: idx, Total: total, Workers: workers}
	if withPlan {
		pl, err := readPlan(dir, sp.Name, total)
		if err != nil {
			return err
		}
		if pl.Cells != sp.Cells() {
			return fmt.Errorf("plan covers %d cells, grid has %d", pl.Cells, sp.Cells())
		}
		backend = runner.CellSet{Idxs: pl.ShardCells(idx), Workers: workers}
	}
	g, err := backend.Run(sp)
	if err != nil {
		return err
	}
	p := g.Partial(o.Seed, o.Quick, idx, total)
	path := filepath.Join(dir, shardFile(sp.Name, idx, total))
	if err := writeFileAtomic(path, func(w io.Writer) error {
		return trace.WritePartial(w, p)
	}); err != nil {
		return err
	}
	log.Printf("figure %s: wrote %s (%d of %d cells, %v cell time)",
		sp.Name, path, len(p.Results), p.Cells, time.Duration(p.TotalNanos()).Round(time.Millisecond))
	return nil
}

func shardFile(name string, idx, total int) string {
	return fmt.Sprintf("%s.shard-%d-of-%d.json", name, idx, total)
}

func planFile(name string, shards int) string {
	return fmt.Sprintf("%s.plan-%d-way.json", name, shards)
}

// readPlan loads the figure's m-way plan file from the partials directory.
func readPlan(dir, name string, shards int) (*trace.Plan, error) {
	path := filepath.Join(dir, planFile(name, shards))
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	pl, err := trace.ReadPlan(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if pl.Figure != name || pl.Shards != shards {
		return nil, fmt.Errorf("%s: plan is for %s over %d shards", path, pl.Figure, pl.Shards)
	}
	return pl, nil
}

// runPlan derives an m-way timing-balanced shard plan from the partials of
// a previous run of this figure and writes it next to them, for -shard
// -withplan to consume.
func runPlan(sp *runner.Spec, o experiments.Options, shards int, dir string) error {
	merged, err := loadMerged(sp, o, dir)
	if err != nil {
		return err
	}
	pl, err := trace.PlanShards(merged, shards)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, planFile(sp.Name, shards))
	if err := writeFileAtomic(path, func(w io.Writer) error {
		return trace.WritePlan(w, pl)
	}); err != nil {
		return err
	}
	for i, ns := range pl.ShardNanos {
		log.Printf("figure %s: plan shard %d/%d: %d cells, predicted %v",
			sp.Name, i+1, shards, len(pl.ShardCells(i+1)), time.Duration(ns).Round(time.Millisecond))
	}
	log.Printf("figure %s: wrote %s", sp.Name, path)
	return nil
}

// loadMerged reads and merges every partial file of one figure, reporting
// each shard's recorded cell time, and validates the options match the run.
func loadMerged(sp *runner.Spec, o experiments.Options, dir string) (*trace.Partial, error) {
	paths, err := filepath.Glob(filepath.Join(dir, sp.Name+".shard-*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no partials for %s in %s", sp.Name, dir)
	}
	sort.Strings(paths)
	parts := make([]*trace.Partial, 0, len(paths))
	for _, path := range paths {
		fh, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		p, err := trace.ReadPartial(fh)
		fh.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		log.Printf("figure %s: shard %d/%d: %d cells, %v cell time",
			sp.Name, p.Shard, p.Shards, len(p.Results), time.Duration(p.TotalNanos()).Round(time.Millisecond))
		parts = append(parts, p)
	}
	merged, err := trace.MergePartials(parts...)
	if err != nil {
		return nil, err
	}
	if merged.Seed != o.Seed || merged.Quick != o.Quick {
		return nil, fmt.Errorf("partials were produced with -seed %d quick=%v, run asked for -seed %d quick=%v",
			merged.Seed, merged.Quick, o.Seed, o.Quick)
	}
	return merged, nil
}

// mergeShards folds every partial file of one figure back into the full
// grid and reduces it — the output is byte-identical to a single-process
// run of the same figure. Per-shard cell-time totals go to stderr, the
// input for balancing the next run (figures -plan).
func mergeShards(sp *runner.Spec, o experiments.Options, dir string) (*trace.Table, error) {
	merged, err := loadMerged(sp, o, dir)
	if err != nil {
		return nil, err
	}
	g, err := runner.FromPartial(sp, merged)
	if err != nil {
		return nil, err
	}
	return runner.Reduce(sp, g)
}

// parseShard parses "i/m" into a 1-based shard split; "" means no shard.
func parseShard(s string) (idx, total int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("invalid -shard %q, want i/m", s)
	}
	idx, err1 := strconv.Atoi(s[:i])
	total, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || total < 1 || idx < 1 || idx > total {
		return 0, 0, fmt.Errorf("invalid -shard %q, want i/m with 1 ≤ i ≤ m", s)
	}
	return idx, total, nil
}

// selectFigures resolves the -only flag into spec names: figure ids,
// "ablations" for the whole ablation group, "all" for the paper figures,
// "ablation-"-less shorthands, and any registered spec name (the variant
// and scenario sweeps).
func selectFigures(only string) ([]string, error) {
	if only == "" {
		return allFigures(), nil
	}
	known := map[string]bool{}
	for _, name := range experiments.SpecNames() {
		known[name] = true
	}
	var out []string
	for _, tok := range strings.Split(only, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "":
			continue
		case tok == "ablations":
			out = append(out, ablations()...)
		case tok == "all":
			out = append(out, allFigures()...)
		case known[tok]:
			out = append(out, tok)
		case known["ablation-"+tok]:
			out = append(out, "ablation-"+tok)
		default:
			return nil, fmt.Errorf("unknown figure %q", tok)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no figures match -only=%q", only)
	}
	return out, nil
}
