// Command figures regenerates every figure and table of the paper's
// evaluation and prints the plotted series. Every figure is a declarative
// cell grid (internal/experiments/runner), so the same run can execute
// in-process, across worker subprocesses, or sharded across machines — with
// byte-identical output. Tables go to stdout; progress and timing go to
// stderr, so stdout can be diffed across backends.
//
// Examples:
//
//	figures                        # all figures, paper-scale (takes a while)
//	figures -quick                 # all figures, scaled down
//	figures -only 15,16,17         # just the OFFSTAT/OPT ratio sweeps
//	figures -only rocketfuel -csvdir out/
//	figures -only ablations -quick
//	figures -only 3,4 -procs 4     # one pool of 4 workers serves both grids
//	figures -only 3 -shard 1/2 -partials parts/   # machine 1
//	figures -only 3 -shard 2/2 -partials parts/   # machine 2
//	figures -only 3 -shard 1/2 -procs 4 -partials parts/  # shard on a worker pool
//	figures -only 3 -merge -partials parts/       # fold the shards' results
//	figures -only 3 -plan 2 -partials parts/      # LPT plan from the timings
//	figures -only 3 -shard 1/2 -withplan -partials parts/  # planned shard
//	figures -only 3 -serve-workers :9131          # coordinator: wait for workers
//	figures -worker -connect host:9131            # remote worker (any machine)
//	figures -only 3 -resume -partials parts/      # fill cells a drain left behind
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
	"repro/internal/trace"
)

// allFigures lists the default selection: the paper's evaluation section.
func allFigures() []string {
	return []string{
		"1", "2", "3", "4", "5", "6", "7", "8", "9", "10",
		"11", "12", "13", "14", "15", "16", "17", "18", "19",
		"rocketfuel",
	}
}

// ablations lists the design-choice sweeps.
func ablations() []string {
	return []string{
		"ablation-queue", "ablation-expiry", "ablation-y",
		"ablation-theta", "ablation-load", "ablation-assign",
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	quickFlag := flag.Bool("quick", false, "scaled-down set-up (smaller networks, fewer runs)")
	only := flag.String("only", "", "comma-separated figure ids (e.g. 3,11,rocketfuel,ablations); empty = all figures")
	csvDir := flag.String("csvdir", "", "also write one CSV per figure into this directory")
	seed := flag.Int64("seed", 1, "base random seed")
	metric := flag.String("metric", "dense", "distance backend: dense, sparse[:rows], or landmark[:k]; dense and sparse are exact and produce identical output")
	maxConfigs := flag.Int("maxconfigs", 0, "configuration-space bound for the enumeration-based algorithms (WFA/ONCONF); 0 keeps each experiment's default")
	procs := flag.Int("procs", 0, "fan the whole selection's cell grids out over this many shared worker subprocesses")
	workers := flag.Int("workers", 0, "bound the in-process worker pool (0 = GOMAXPROCS)")
	shard := flag.String("shard", "", "evaluate only slice i of m of each grid, as i/m, and write partial results")
	partials := flag.String("partials", "", "directory for shard partial and plan files (required with -shard, -merge, -plan)")
	merge := flag.Bool("merge", false, "merge shard partials from -partials and print the tables")
	plan := flag.Int("plan", 0, "write an m-way timing-balanced shard plan from the partials of a previous run")
	withPlan := flag.Bool("withplan", false, "with -shard i/m: evaluate the cells the plan file assigns to shard i instead of the modulo slice")
	serveWorkers := flag.String("serve-workers", "", "coordinator mode: listen on this address for remote -connect workers instead of spawning subprocesses")
	deadline := flag.Duration("deadline", 0, "fixed per-cell response deadline for pooled backends (0 = adaptive over observed cell times)")
	drainTimeout := flag.Duration("drain-timeout", 0, "how long a drain (SIGINT/SIGTERM) waits for in-flight cells (0 = 30s)")
	resume := flag.Bool("resume", false, "evaluate the cells missing from the partials in -partials and write a resume partial")
	faultInject := flag.String("faultinject", "", "internal/testing: inject a worker fault, kind:N[:delay] with kind exit|wedge|slow|garbage|disconnect (bare N = exit:N); applies to the first spawned worker with -procs, to this worker with -worker -connect")
	workerFlag := flag.Bool("worker", false, "internal: serve cells on stdin/stdout (SPEC lines select the grid), or over TCP with -connect")
	connect := flag.String("connect", "", "with -worker: dial the coordinator at this address and serve cells over TCP, reconnecting with backoff")
	spec := flag.String("spec", "", "internal: spec served in -worker mode before any SPEC line")
	flag.Parse()

	fault, err := runner.ParseFault(*faultInject)
	if err != nil {
		log.Fatal(err)
	}
	opts := experiments.Options{Quick: *quickFlag, Seed: *seed, Metric: *metric, MaxConfigs: *maxConfigs}
	if *workerFlag {
		if *connect != "" {
			if err := runner.ConnectWorker(*connect, func(name string) (*runner.Spec, error) {
				return experiments.NewSpec(name, opts)
			}, runner.WorkerOptions{Fault: fault, Logf: log.Printf}); err != nil {
				log.Fatal(err)
			}
			return
		}
		if err := runWorker(*spec, opts); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *connect != "" {
		log.Fatal("-connect requires -worker")
	}

	shardIdx, shardTotal, err := parseShard(*shard)
	if err != nil {
		log.Fatal(err)
	}
	if (shardTotal > 0 || *merge || *plan > 0 || *resume) && *partials == "" {
		log.Fatal("-shard, -merge, -plan, and -resume require -partials")
	}
	modes := 0
	for _, on := range []bool{shardTotal > 0, *merge, *plan > 0, *resume, *serveWorkers != ""} {
		if on {
			modes++
		}
	}
	if modes > 1 {
		log.Fatal("-shard, -merge, -plan, -resume, and -serve-workers are mutually exclusive")
	}
	if shardTotal > 0 && *csvDir != "" {
		log.Fatal("-shard emits partial files only; use -csvdir on the -merge run")
	}
	if *withPlan && shardTotal == 0 {
		log.Fatal("-withplan requires -shard")
	}
	if fault != nil && *procs <= 0 {
		log.Fatal("-faultinject requires -procs (or a -worker -connect worker)")
	}
	selected, err := selectFigures(*only)
	if err != nil {
		log.Fatal(err)
	}
	for _, dir := range []string{*csvDir, *partials} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}

	cfg := runner.Config{
		Deadline:     runner.DeadlineConfig{Fixed: *deadline},
		DrainTimeout: *drainTimeout,
	}
	if *serveWorkers != "" {
		tr, err := runner.Listen(*serveWorkers)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("waiting for workers on %s", tr.Addr())
		pool := runner.NewPoolTransport(tr, cfg)
		defer pool.Close()
		if err := runPooled(pool, selected, opts, *csvDir, *partials); err != nil {
			log.Fatal(err)
		}
		return
	}
	// -procs composes with -shard and -resume: the slice's cells are routed
	// through the same fault-tolerant worker pool the full run uses, instead
	// of the in-process Local pool. -merge and -plan never evaluate cells,
	// so they stay local.
	var pool *runner.Pool
	if *procs > 0 && !*merge && *plan == 0 {
		pool = runner.NewPoolTransport(
			&runner.PipeTransport{N: *procs, Command: workerCommand(opts, fault)}, cfg)
		defer pool.Close()
	}
	if pool != nil && shardTotal == 0 && !*resume {
		if err := runPooled(pool, selected, opts, *csvDir, *partials); err != nil {
			log.Fatal(err)
		}
		return
	}

	for _, name := range selected {
		start := time.Now() //repcheck:allow-wallclock progress log only; figure bytes come from seeded runs
		sp, err := experiments.NewSpec(name, opts)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case *plan > 0:
			if err := runPlan(sp, opts, *plan, *partials); err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
		case shardTotal > 0:
			if err := runShard(sp, opts, shardIdx, shardTotal, *workers, *partials, *withPlan, pool); err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
		case *resume:
			if err := runResume(sp, opts, *workers, *partials, pool); err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
		case *merge:
			tab, err := mergeShards(sp, opts, *partials)
			if err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
			emit(name, tab, *csvDir)
		default:
			tab, err := runner.Run(sp, runner.Local{Workers: *workers})
			if err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
			emit(name, tab, *csvDir)
		}
		log.Printf("figure %s: %v elapsed", name, time.Since(start).Round(time.Millisecond)) //repcheck:allow-wallclock progress log on stderr, not figure output
	}
}

// runPooled evaluates the whole selection on one shared worker pool — the
// same workers (subprocesses or remote TCP workers) serve cells from
// successive figures (announced with SPEC protocol lines), so workers stay
// busy across figure boundaries instead of draining and respawning per
// figure. Tables print in selection order as each grid completes.
//
// SIGINT/SIGTERM drains instead of killing: the pool stops feeding cells,
// collects in-flight results under the drain deadline, and every completed
// cell of the not-yet-printed figures is written as a resumable partial
// (<name>.shard-drain.json, into -partials or the current directory) for
// `figures -resume` + `figures -merge` to finish without re-evaluating.
func runPooled(pool *runner.Pool, selected []string, opts experiments.Options, csvDir, partialsDir string) error {
	specs := make([]*runner.Spec, len(selected))
	for i, name := range selected {
		sp, err := experiments.NewSpec(name, opts)
		if err != nil {
			return err
		}
		specs[i] = sp
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	go func() {
		s, ok := <-sig
		if !ok {
			return
		}
		signal.Stop(sig) // a second signal kills the process the default way
		log.Printf("received %v, draining: collecting in-flight cells, then writing partials", s)
		pool.Drain()
	}()

	start := time.Now() //repcheck:allow-wallclock progress log only; figure bytes come from seeded runs
	grids, err := pool.RunAllGrids(specs, func(i int, g *runner.Grid) error {
		tab, rerr := runner.Reduce(specs[i], g)
		if rerr != nil {
			return fmt.Errorf("figure %s: %w", selected[i], rerr)
		}
		emit(selected[i], tab, csvDir)
		log.Printf("figure %s: done at %v", selected[i], time.Since(start).Round(time.Millisecond)) //repcheck:allow-wallclock progress log on stderr, not figure output
		return nil
	})
	close(sig)
	if errors.Is(err, runner.ErrDrained) {
		dir := partialsDir
		if dir == "" {
			dir = "."
		}
		// Every figure gets a partial — the completed (already printed)
		// ones too — so one `-resume` + `-merge` over the same selection
		// reproduces the full output byte-identically.
		missing := 0
		for i, g := range grids {
			p := g.Partial(opts.Seed, opts.Quick, 0, 0)
			missing += len(p.MissingCells())
			path := filepath.Join(dir, selected[i]+".shard-drain.json")
			if werr := writeFileAtomic(path, func(w io.Writer) error {
				return trace.WritePartial(w, p)
			}); werr != nil {
				return fmt.Errorf("drained, but writing %s failed: %w", path, werr)
			}
			log.Printf("figure %s: drained with %d of %d cells done; wrote %s",
				selected[i], len(p.Results), p.Cells, path)
		}
		return fmt.Errorf("run drained: %s", drainedNextStep(missing, dir))
	}
	return err
}

// drainedNextStep names the follow-up after a drain: -resume is suggested
// only when cells are actually missing — a drain that landed after the
// last cell completed needs only the -merge.
func drainedNextStep(missing int, dir string) string {
	if missing > 0 {
		return fmt.Sprintf("%d cells unevaluated; finish with -resume and -merge against %s", missing, dir)
	}
	return fmt.Sprintf("every cell completed; print the tables with -merge against %s", dir)
}

// runResume finishes an interrupted run: it merges whatever partials exist
// for the figure (drained, sharded, or earlier resumes — any mix), computes
// the missing cells, evaluates exactly those in-process, and writes them as
// <name>.shard-resume.json next to the others, so a following -merge sees
// the complete grid. Output is byte-identical to an uninterrupted run: cell
// results depend only on (figure, options, cell index), never on which
// process computed them.
func runResume(sp *runner.Spec, o experiments.Options, workers int, dir string, pool *runner.Pool) error {
	merged, err := loadMerged(sp, o, dir)
	if err != nil {
		return err
	}
	missing := merged.MissingCells()
	if len(missing) == 0 {
		log.Printf("figure %s: partials already cover all %d cells; nothing to resume", sp.Name, merged.Cells)
		return nil
	}
	log.Printf("figure %s: resuming %d of %d cells", sp.Name, len(missing), merged.Cells)
	g, err := runCellSubset(sp, missing, workers, pool)
	if err != nil {
		return err
	}
	p := g.Partial(o.Seed, o.Quick, 0, 0)
	path := filepath.Join(dir, sp.Name+".shard-resume.json")
	if err := writeFileAtomic(path, func(w io.Writer) error {
		return trace.WritePartial(w, p)
	}); err != nil {
		return err
	}
	log.Printf("figure %s: wrote %s (%d cells, %v cell time)",
		sp.Name, path, len(p.Results), time.Duration(p.TotalNanos()).Round(time.Millisecond))
	return nil
}

// emit prints the table to stdout and optionally writes its CSV.
func emit(name string, tab *trace.Table, csvDir string) {
	if err := trace.Render(os.Stdout, tab); err != nil {
		log.Fatalf("figure %s: %v", name, err)
	}
	if csvDir != "" {
		if err := writeCSV(csvDir, name, tab); err != nil {
			log.Fatalf("figure %s: %v", name, err)
		}
	}
}

// writeFileAtomic writes via a temp file in the destination's directory and
// renames it into place, so a killed run never leaves a truncated partial,
// plan, or CSV for a later -merge or -withplan run to ingest.
func writeFileAtomic(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once the rename has happened
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	// CreateTemp makes mode-0600 files; restore the world-readable mode a
	// plain os.Create would have given shareable artifacts.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// writeCSV emits one figure's table into dir as figure-<name>.csv.
func writeCSV(dir, name string, tab *trace.Table) error {
	return writeFileAtomic(filepath.Join(dir, "figure-"+name+".csv"), func(w io.Writer) error {
		return trace.WriteTable(w, tab)
	})
}

// runWorker serves cells over stdin/stdout — the subprocess half of the
// pooled backend. The coordinator selects grids with SPEC protocol lines
// (any registered experiment name), so one worker process serves cells from
// successive figures; -spec optionally names the grid served before any
// SPEC line. The experiment options arrive on the command line, so both
// sides build the identical grid.
func runWorker(name string, o experiments.Options) error {
	var initial *runner.Spec
	if name != "" {
		sp, err := experiments.NewSpec(name, o)
		if err != nil {
			return err
		}
		initial = sp
	}
	var out io.Writer = os.Stdout
	if n, _ := strconv.Atoi(os.Getenv("FIGURES_DIE_AFTER")); n > 0 {
		out = &runner.DieAfterWriter{W: os.Stdout, Lines: n}
	}
	fault, err := runner.ParseFault(os.Getenv("FIGURES_FAULT"))
	if err != nil {
		return err
	}
	err = runner.ServePoolOpts(initial, func(name string) (*runner.Spec, error) {
		return experiments.NewSpec(name, o)
	}, os.Stdin, out, runner.ServeOptions{Fault: fault})
	if errors.Is(err, runner.ErrBye) {
		return nil
	}
	return err
}

// workerCommand re-invokes this binary in -worker mode. With fault
// injection, only the first spawned worker gets the fault (passed via the
// FIGURES_FAULT environment variable) — respawned replacements are healthy,
// so the requeued cells complete.
func workerCommand(o experiments.Options, fault *runner.Fault) func() (*exec.Cmd, error) {
	var spawned atomic.Int64
	return func() (*exec.Cmd, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		args := []string{"-worker", "-seed", strconv.FormatInt(o.Seed, 10)}
		if o.Quick {
			args = append(args, "-quick")
		}
		if o.Metric != "" {
			args = append(args, "-metric", o.Metric)
		}
		if o.MaxConfigs != 0 {
			args = append(args, "-maxconfigs", strconv.Itoa(o.MaxConfigs))
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		if fault != nil && spawned.Add(1) == 1 {
			cmd.Env = append(os.Environ(), "FIGURES_FAULT="+fault.String())
		}
		return cmd, nil
	}
}

// runShard evaluates one slice of the grid and writes the mergeable partial
// file <partials>/<name>.shard-<i>-of-<m>.json. With withPlan, the slice is
// the cell set a timing plan (figures -plan) assigns to this shard instead
// of the modulo split.
func runShard(sp *runner.Spec, o experiments.Options, idx, total, workers int, dir string, withPlan bool, pool *runner.Pool) error {
	var idxs []int
	if withPlan {
		pl, err := readPlan(dir, sp.Name, total)
		if err != nil {
			return err
		}
		if pl.Cells != sp.Cells() {
			return fmt.Errorf("plan covers %d cells, grid has %d", pl.Cells, sp.Cells())
		}
		idxs = pl.ShardCells(idx)
	} else {
		var err error
		idxs, err = runner.ShardCells(sp.Cells(), idx, total)
		if err != nil {
			return err
		}
	}
	g, err := runCellSubset(sp, idxs, workers, pool)
	if err != nil {
		return err
	}
	p := g.Partial(o.Seed, o.Quick, idx, total)
	path := filepath.Join(dir, shardFile(sp.Name, idx, total))
	if err := writeFileAtomic(path, func(w io.Writer) error {
		return trace.WritePartial(w, p)
	}); err != nil {
		return err
	}
	log.Printf("figure %s: wrote %s (%d of %d cells, %v cell time)",
		sp.Name, path, len(p.Results), p.Cells, time.Duration(p.TotalNanos()).Round(time.Millisecond))
	return nil
}

// runCellSubset evaluates an explicit cell subset, on the shared worker
// pool when one exists (-procs composed with -shard/-resume) and on the
// in-process Local pool otherwise. Both produce identical grids — cell
// results depend only on (figure, options, cell index).
func runCellSubset(sp *runner.Spec, idxs []int, workers int, pool *runner.Pool) (*runner.Grid, error) {
	if pool != nil {
		return pool.RunCells(sp, idxs)
	}
	return runner.CellSet{Idxs: idxs, Workers: workers}.Run(sp)
}

func shardFile(name string, idx, total int) string {
	return fmt.Sprintf("%s.shard-%d-of-%d.json", name, idx, total)
}

func planFile(name string, shards int) string {
	return fmt.Sprintf("%s.plan-%d-way.json", name, shards)
}

// readPlan loads the figure's m-way plan file from the partials directory.
func readPlan(dir, name string, shards int) (*trace.Plan, error) {
	path := filepath.Join(dir, planFile(name, shards))
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	pl, err := trace.ReadPlan(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if pl.Figure != name || pl.Shards != shards {
		return nil, fmt.Errorf("%s: plan is for %s over %d shards", path, pl.Figure, pl.Shards)
	}
	return pl, nil
}

// runPlan derives an m-way timing-balanced shard plan from the partials of
// a previous run of this figure and writes it next to them, for -shard
// -withplan to consume.
func runPlan(sp *runner.Spec, o experiments.Options, shards int, dir string) error {
	merged, err := loadMerged(sp, o, dir)
	if err != nil {
		return err
	}
	if err := checkCoverage(merged); err != nil {
		return err
	}
	pl, err := trace.PlanShards(merged, shards)
	if err != nil {
		return err
	}
	path := filepath.Join(dir, planFile(sp.Name, shards))
	if err := writeFileAtomic(path, func(w io.Writer) error {
		return trace.WritePlan(w, pl)
	}); err != nil {
		return err
	}
	for i, ns := range pl.ShardNanos {
		log.Printf("figure %s: plan shard %d/%d: %d cells, predicted %v",
			sp.Name, i+1, shards, len(pl.ShardCells(i+1)), time.Duration(ns).Round(time.Millisecond))
	}
	log.Printf("figure %s: wrote %s", sp.Name, path)
	return nil
}

// loadMerged reads and merges every partial file of one figure, reporting
// each shard's recorded cell time, and validates the options match the run.
func loadMerged(sp *runner.Spec, o experiments.Options, dir string) (*trace.Partial, error) {
	paths, err := filepath.Glob(filepath.Join(dir, sp.Name+".shard-*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no partials for %s in %s", sp.Name, dir)
	}
	sort.Strings(paths)
	parts := make([]*trace.Partial, 0, len(paths))
	for _, path := range paths {
		fh, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		p, err := trace.ReadPartial(fh)
		fh.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		log.Printf("figure %s: shard %d/%d: %d cells, %v cell time",
			sp.Name, p.Shard, p.Shards, len(p.Results), time.Duration(p.TotalNanos()).Round(time.Millisecond))
		parts = append(parts, p)
	}
	merged, err := trace.MergePartials(parts...)
	if err != nil {
		return nil, err
	}
	if merged.Seed != o.Seed || merged.Quick != o.Quick {
		return nil, fmt.Errorf("partials were produced with -seed %d quick=%v, run asked for -seed %d quick=%v",
			merged.Seed, merged.Quick, o.Seed, o.Quick)
	}
	return merged, nil
}

// mergeShards folds every partial file of one figure back into the full
// grid and reduces it — the output is byte-identical to a single-process
// run of the same figure. Per-shard cell-time totals go to stderr, the
// input for balancing the next run (figures -plan).
func mergeShards(sp *runner.Spec, o experiments.Options, dir string) (*trace.Table, error) {
	merged, err := loadMerged(sp, o, dir)
	if err != nil {
		return nil, err
	}
	if err := checkCoverage(merged); err != nil {
		return nil, err
	}
	g, err := runner.FromPartial(sp, merged)
	if err != nil {
		return nil, err
	}
	return runner.Reduce(sp, g)
}

// checkCoverage rejects a merged partial that does not cover the whole
// grid, naming the missing cell indices — the guard that keeps -merge and
// -plan from silently reducing an interrupted run. A -resume run fills
// exactly these cells.
func checkCoverage(merged *trace.Partial) error {
	missing := merged.MissingCells()
	if len(missing) == 0 {
		return nil
	}
	shown := missing
	suffix := ""
	if len(shown) > 20 {
		shown = shown[:20]
		suffix = fmt.Sprintf(", ... (%d more)", len(missing)-20)
	}
	idxs := make([]string, len(shown))
	for i, c := range shown {
		idxs[i] = strconv.Itoa(c)
	}
	return fmt.Errorf("partials cover %d of %d cells; missing cells %s%s (run the missing shards, or figures -resume)",
		len(merged.Results), merged.Cells, strings.Join(idxs, ","), suffix)
}

// parseShard parses "i/m" into a 1-based shard split; "" means no shard.
func parseShard(s string) (idx, total int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("invalid -shard %q, want i/m", s)
	}
	idx, err1 := strconv.Atoi(s[:i])
	total, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || total < 1 || idx < 1 || idx > total {
		return 0, 0, fmt.Errorf("invalid -shard %q, want i/m with 1 ≤ i ≤ m", s)
	}
	return idx, total, nil
}

// selectFigures resolves the -only flag into spec names: figure ids,
// "ablations" for the whole ablation group, "all" for the paper figures,
// "ablation-"-less shorthands, and any registered spec name (the variant
// and scenario sweeps).
func selectFigures(only string) ([]string, error) {
	if only == "" {
		return allFigures(), nil
	}
	known := map[string]bool{}
	for _, name := range experiments.SpecNames() {
		known[name] = true
	}
	var out []string
	for _, tok := range strings.Split(only, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "":
			continue
		case tok == "ablations":
			out = append(out, ablations()...)
		case tok == "all":
			out = append(out, allFigures()...)
		case known[tok]:
			out = append(out, tok)
		case known["ablation-"+tok]:
			out = append(out, "ablation-"+tok)
		default:
			return nil, fmt.Errorf("unknown figure %q", tok)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no figures match -only=%q", only)
	}
	return out, nil
}
