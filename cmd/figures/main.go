// Command figures regenerates every figure and table of the paper's
// evaluation and prints the plotted series. Every figure is a declarative
// cell grid (internal/experiments/runner), so the same run can execute
// in-process, across worker subprocesses, or sharded across machines — with
// byte-identical output. Tables go to stdout; progress and timing go to
// stderr, so stdout can be diffed across backends.
//
// Examples:
//
//	figures                        # all figures, paper-scale (takes a while)
//	figures -quick                 # all figures, scaled down
//	figures -only 15,16,17         # just the OFFSTAT/OPT ratio sweeps
//	figures -only rocketfuel -csvdir out/
//	figures -only ablations -quick
//	figures -only 3 -procs 4       # fan the grid out over 4 worker processes
//	figures -only 3 -shard 1/2 -partials parts/   # machine 1
//	figures -only 3 -shard 2/2 -partials parts/   # machine 2
//	figures -only 3 -merge -partials parts/       # fold the shards' results
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
	"repro/internal/trace"
)

// allFigures lists the default selection: the paper's evaluation section.
func allFigures() []string {
	return []string{
		"1", "2", "3", "4", "5", "6", "7", "8", "9", "10",
		"11", "12", "13", "14", "15", "16", "17", "18", "19",
		"rocketfuel",
	}
}

// ablations lists the design-choice sweeps.
func ablations() []string {
	return []string{
		"ablation-queue", "ablation-expiry", "ablation-y",
		"ablation-theta", "ablation-load", "ablation-assign",
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")

	quickFlag := flag.Bool("quick", false, "scaled-down set-up (smaller networks, fewer runs)")
	only := flag.String("only", "", "comma-separated figure ids (e.g. 3,11,rocketfuel,ablations); empty = all figures")
	csvDir := flag.String("csvdir", "", "also write one CSV per figure into this directory")
	seed := flag.Int64("seed", 1, "base random seed")
	procs := flag.Int("procs", 0, "fan each figure's cell grid out over this many worker subprocesses")
	workers := flag.Int("workers", 0, "bound the in-process worker pool (0 = GOMAXPROCS)")
	shard := flag.String("shard", "", "evaluate only slice i of m of each grid, as i/m, and write partial results")
	partials := flag.String("partials", "", "directory for shard partial files (required with -shard and -merge)")
	merge := flag.Bool("merge", false, "merge shard partials from -partials and print the tables")
	workerFlag := flag.Bool("worker", false, "internal: serve cells for -spec on stdin/stdout")
	spec := flag.String("spec", "", "internal: spec name served in -worker mode")
	flag.Parse()

	opts := experiments.Options{Quick: *quickFlag, Seed: *seed}
	if *workerFlag {
		if err := runWorker(*spec, opts); err != nil {
			log.Fatal(err)
		}
		return
	}

	shardIdx, shardTotal, err := parseShard(*shard)
	if err != nil {
		log.Fatal(err)
	}
	if (shardTotal > 0 || *merge) && *partials == "" {
		log.Fatal("-shard and -merge require -partials")
	}
	if shardTotal > 0 && *merge {
		log.Fatal("-shard and -merge are mutually exclusive")
	}
	if shardTotal > 0 && *csvDir != "" {
		log.Fatal("-shard emits partial files only; use -csvdir on the -merge run")
	}
	selected, err := selectFigures(*only)
	if err != nil {
		log.Fatal(err)
	}
	for _, dir := range []string{*csvDir, *partials} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				log.Fatal(err)
			}
		}
	}

	for _, name := range selected {
		start := time.Now()
		sp, err := experiments.NewSpec(name, opts)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case shardTotal > 0:
			if err := runShard(sp, opts, shardIdx, shardTotal, *workers, *partials); err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
		case *merge:
			tab, err := mergeShards(sp, opts, *partials)
			if err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
			emit(name, tab, *csvDir)
		default:
			var backend runner.Exec = runner.Local{Workers: *workers}
			if *procs > 0 {
				backend = runner.Procs{N: *procs, Command: workerCommand(name, opts)}
			}
			tab, err := runner.Run(sp, backend)
			if err != nil {
				log.Fatalf("figure %s: %v", name, err)
			}
			emit(name, tab, *csvDir)
		}
		log.Printf("figure %s: %v elapsed", name, time.Since(start).Round(time.Millisecond))
	}
}

// emit prints the table to stdout and optionally writes its CSV.
func emit(name string, tab *trace.Table, csvDir string) {
	if err := trace.Render(os.Stdout, tab); err != nil {
		log.Fatalf("figure %s: %v", name, err)
	}
	if csvDir != "" {
		if err := writeCSV(csvDir, name, tab); err != nil {
			log.Fatalf("figure %s: %v", name, err)
		}
	}
}

// writeCSV emits one figure's table into dir as figure-<name>.csv.
func writeCSV(dir, name string, tab *trace.Table) error {
	fh, err := os.Create(filepath.Join(dir, "figure-"+name+".csv"))
	if err != nil {
		return err
	}
	if err := trace.WriteTable(fh, tab); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// runWorker serves cells of one spec over stdin/stdout — the subprocess
// half of the -procs backend. The coordinator passes the spec name and the
// experiment options on the command line, so both sides build the identical
// grid.
func runWorker(name string, o experiments.Options) error {
	if name == "" {
		return fmt.Errorf("-worker requires -spec")
	}
	sp, err := experiments.NewSpec(name, o)
	if err != nil {
		return err
	}
	return runner.ServeWorker(sp, os.Stdin, os.Stdout)
}

// workerCommand re-invokes this binary in -worker mode for one spec.
func workerCommand(name string, o experiments.Options) func() (*exec.Cmd, error) {
	return func() (*exec.Cmd, error) {
		exe, err := os.Executable()
		if err != nil {
			return nil, err
		}
		args := []string{"-worker", "-spec", name, "-seed", strconv.FormatInt(o.Seed, 10)}
		if o.Quick {
			args = append(args, "-quick")
		}
		cmd := exec.Command(exe, args...)
		cmd.Stderr = os.Stderr
		return cmd, nil
	}
}

// runShard evaluates one slice of the grid and writes the mergeable partial
// file <partials>/<name>.shard-<i>-of-<m>.json.
func runShard(sp *runner.Spec, o experiments.Options, idx, total, workers int, dir string) error {
	g, err := runner.Shard{Index: idx, Total: total, Workers: workers}.Run(sp)
	if err != nil {
		return err
	}
	p := g.Partial(o.Seed, o.Quick, idx, total)
	path := filepath.Join(dir, shardFile(sp.Name, idx, total))
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WritePartial(fh, p); err != nil {
		fh.Close()
		return err
	}
	if err := fh.Close(); err != nil {
		return err
	}
	log.Printf("figure %s: wrote %s (%d of %d cells)", sp.Name, path, len(p.Results), p.Cells)
	return nil
}

func shardFile(name string, idx, total int) string {
	return fmt.Sprintf("%s.shard-%d-of-%d.json", name, idx, total)
}

// mergeShards folds every partial file of one figure back into the full
// grid and reduces it — the output is byte-identical to a single-process
// run of the same figure.
func mergeShards(sp *runner.Spec, o experiments.Options, dir string) (*trace.Table, error) {
	paths, err := filepath.Glob(filepath.Join(dir, sp.Name+".shard-*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("no partials for %s in %s", sp.Name, dir)
	}
	sort.Strings(paths)
	parts := make([]*trace.Partial, 0, len(paths))
	for _, path := range paths {
		fh, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		p, err := trace.ReadPartial(fh)
		fh.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		parts = append(parts, p)
	}
	merged, err := trace.MergePartials(parts...)
	if err != nil {
		return nil, err
	}
	if merged.Seed != o.Seed || merged.Quick != o.Quick {
		return nil, fmt.Errorf("partials were produced with -seed %d quick=%v, run asked for -seed %d quick=%v",
			merged.Seed, merged.Quick, o.Seed, o.Quick)
	}
	g, err := runner.FromPartial(sp, merged)
	if err != nil {
		return nil, err
	}
	return runner.Reduce(sp, g)
}

// parseShard parses "i/m" into a 1-based shard split; "" means no shard.
func parseShard(s string) (idx, total int, err error) {
	if s == "" {
		return 0, 0, nil
	}
	i := strings.IndexByte(s, '/')
	if i < 0 {
		return 0, 0, fmt.Errorf("invalid -shard %q, want i/m", s)
	}
	idx, err1 := strconv.Atoi(s[:i])
	total, err2 := strconv.Atoi(s[i+1:])
	if err1 != nil || err2 != nil || total < 1 || idx < 1 || idx > total {
		return 0, 0, fmt.Errorf("invalid -shard %q, want i/m with 1 ≤ i ≤ m", s)
	}
	return idx, total, nil
}

// selectFigures resolves the -only flag into spec names: figure ids,
// "ablations" for the whole ablation group, "all" for the paper figures,
// "ablation-"-less shorthands, and any registered spec name (the variant
// and scenario sweeps).
func selectFigures(only string) ([]string, error) {
	if only == "" {
		return allFigures(), nil
	}
	known := map[string]bool{}
	for _, name := range experiments.SpecNames() {
		known[name] = true
	}
	var out []string
	for _, tok := range strings.Split(only, ",") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "":
			continue
		case tok == "ablations":
			out = append(out, ablations()...)
		case tok == "all":
			out = append(out, allFigures()...)
		case known[tok]:
			out = append(out, tok)
		case known["ablation-"+tok]:
			out = append(out, "ablation-"+tok)
		default:
			return nil, fmt.Errorf("unknown figure %q", tok)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no figures match -only=%q", only)
	}
	return out, nil
}
