package main

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
)

func TestMain(m *testing.M) {
	// Re-executed as a -worker subprocess by TestWorkerModeRoundTrip: serve
	// the named spec on stdin/stdout exactly as `figures -worker` would.
	if name := os.Getenv("FIGURES_TEST_WORKER"); name != "" {
		seed, err := strconv.ParseInt(os.Getenv("FIGURES_TEST_SEED"), 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o := experiments.Options{Quick: true, Seed: seed}
		if err := runWorker(name, o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestSelectFigures(t *testing.T) {
	cases := []struct {
		only string
		want []string
	}{
		{"", allFigures()},
		{"3,11,rocketfuel", []string{"3", "11", "rocketfuel"}},
		{" 15 , 16 ", []string{"15", "16"}},
		{"ablations", ablations()},
		{"queue,ablation-theta", []string{"ablation-queue", "ablation-theta"}},
		{"all", allFigures()},
		{"variants,compare-scenarios", []string{"variants", "compare-scenarios"}},
		{"12,,13", []string{"12", "13"}},
	}
	for _, c := range cases {
		got, err := selectFigures(c.only)
		if err != nil {
			t.Fatalf("-only=%q: %v", c.only, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("-only=%q selected %v, want %v", c.only, got, c.want)
		}
	}
	for _, bad := range []string{"nope", "20", "3,bogus", ","} {
		if _, err := selectFigures(bad); err == nil {
			t.Fatalf("-only=%q accepted", bad)
		}
	}
	// Every selectable name must resolve in the spec registry.
	for _, name := range append(allFigures(), ablations()...) {
		if _, err := experiments.NewSpec(name, experiments.Options{Quick: true}); err != nil {
			t.Fatalf("selectable figure %q not buildable: %v", name, err)
		}
	}
}

func TestParseShard(t *testing.T) {
	if i, m, err := parseShard(""); i != 0 || m != 0 || err != nil {
		t.Fatalf("empty shard: %d/%d %v", i, m, err)
	}
	if i, m, err := parseShard("2/3"); i != 2 || m != 3 || err != nil {
		t.Fatalf("2/3: %d/%d %v", i, m, err)
	}
	for _, bad := range []string{"0/2", "3/2", "x/2", "2/x", "2", "/", "-1/2"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Fatalf("shard %q accepted", bad)
		}
	}
}

func TestWriteCSVEmission(t *testing.T) {
	dir := t.TempDir()
	o := experiments.Options{Quick: true, Seed: 7}
	tab, err := experiments.Figure12(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSV(dir, "12", tab); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure-12.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(tab.X)+1 {
		t.Fatalf("%d CSV lines for %d x positions", len(lines), len(tab.X))
	}
	if lines[0] != "servers,OFFSTAT" {
		t.Fatalf("CSV header %q", lines[0])
	}
	// Full precision: the first data row must parse back to the exact value.
	fields := strings.Split(lines[1], ",")
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v != tab.Series[0].Values[0] {
		t.Fatalf("CSV value %v != table value %v", v, tab.Series[0].Values[0])
	}
}

// TestWorkerModeRoundTrip spawns this test binary as real -worker
// subprocesses on a quick figure and requires the multi-process table to be
// identical to the in-process one — the cmd-level contract of -procs.
func TestWorkerModeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	procs := runner.Procs{
		N: 2,
		Command: func() (*exec.Cmd, error) {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				"FIGURES_TEST_WORKER=13",
				"FIGURES_TEST_SEED=7")
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
	}
	got, err := runner.Run(sp, procs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("worker-mode table differs from in-process run:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardMergeRoundTrip drives the shard/partial/merge path through the
// same helpers main uses and checks the merged table is bit-identical.
func TestShardMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := runShard(sp, o, i, 2, 0, dir); err != nil {
			t.Fatal(err)
		}
	}
	got, err := mergeShards(sp, o, dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shard+merge table differs from in-process run")
	}
	// Mismatched options must be refused, not silently reduced.
	if _, err := mergeShards(sp, experiments.Options{Quick: true, Seed: 1}, dir); err == nil {
		t.Fatal("merge accepted partials from a different seed")
	}
	// A missing shard must be reported as incomplete.
	if err := os.Remove(filepath.Join(dir, shardFile("13", 1, 2))); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeShards(sp, o, dir); err == nil {
		t.Fatal("merge reduced an incomplete grid")
	}
}
