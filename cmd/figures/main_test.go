package main

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/experiments/runner"
	"repro/internal/trace"
)

func TestMain(m *testing.M) {
	// Re-executed as a -worker subprocess by TestWorkerModeRoundTrip: serve
	// the named spec on stdin/stdout exactly as `figures -worker` would.
	if name := os.Getenv("FIGURES_TEST_WORKER"); name != "" {
		seed, err := strconv.ParseInt(os.Getenv("FIGURES_TEST_SEED"), 10, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		o := experiments.Options{Quick: true, Seed: seed}
		if err := runWorker(name, o); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestSelectFigures(t *testing.T) {
	cases := []struct {
		only string
		want []string
	}{
		{"", allFigures()},
		{"3,11,rocketfuel", []string{"3", "11", "rocketfuel"}},
		{" 15 , 16 ", []string{"15", "16"}},
		{"ablations", ablations()},
		{"queue,ablation-theta", []string{"ablation-queue", "ablation-theta"}},
		{"all", allFigures()},
		{"variants,compare-scenarios", []string{"variants", "compare-scenarios"}},
		{"12,,13", []string{"12", "13"}},
	}
	for _, c := range cases {
		got, err := selectFigures(c.only)
		if err != nil {
			t.Fatalf("-only=%q: %v", c.only, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("-only=%q selected %v, want %v", c.only, got, c.want)
		}
	}
	for _, bad := range []string{"nope", "20", "3,bogus", ","} {
		if _, err := selectFigures(bad); err == nil {
			t.Fatalf("-only=%q accepted", bad)
		}
	}
	// Every selectable name must resolve in the spec registry.
	for _, name := range append(allFigures(), ablations()...) {
		if _, err := experiments.NewSpec(name, experiments.Options{Quick: true}); err != nil {
			t.Fatalf("selectable figure %q not buildable: %v", name, err)
		}
	}
}

func TestParseShard(t *testing.T) {
	if i, m, err := parseShard(""); i != 0 || m != 0 || err != nil {
		t.Fatalf("empty shard: %d/%d %v", i, m, err)
	}
	if i, m, err := parseShard("2/3"); i != 2 || m != 3 || err != nil {
		t.Fatalf("2/3: %d/%d %v", i, m, err)
	}
	for _, bad := range []string{"0/2", "3/2", "x/2", "2/x", "2", "/", "-1/2"} {
		if _, _, err := parseShard(bad); err == nil {
			t.Fatalf("shard %q accepted", bad)
		}
	}
}

func TestWriteCSVEmission(t *testing.T) {
	dir := t.TempDir()
	o := experiments.Options{Quick: true, Seed: 7}
	tab, err := experiments.Figure12(o)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeCSV(dir, "12", tab); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "figure-12.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != len(tab.X)+1 {
		t.Fatalf("%d CSV lines for %d x positions", len(lines), len(tab.X))
	}
	if lines[0] != "servers,OFFSTAT" {
		t.Fatalf("CSV header %q", lines[0])
	}
	// Full precision: the first data row must parse back to the exact value.
	fields := strings.Split(lines[1], ",")
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if v != tab.Series[0].Values[0] {
		t.Fatalf("CSV value %v != table value %v", v, tab.Series[0].Values[0])
	}
}

// TestWorkerModeRoundTrip spawns this test binary as real -worker
// subprocesses on a quick figure and requires the multi-process table to be
// identical to the in-process one — the cmd-level contract of -procs.
func TestWorkerModeRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	procs := runner.Procs{
		N: 2,
		Command: func() (*exec.Cmd, error) {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				"FIGURES_TEST_WORKER=13",
				"FIGURES_TEST_SEED=7")
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
	}
	got, err := runner.Run(sp, procs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("worker-mode table differs from in-process run:\n got %+v\nwant %+v", got, want)
	}
}

// TestWorkerModeFaultInjection kills the first worker subprocess after two
// responses and requires the requeue path to still produce a table
// identical to the in-process run — the cmd-level contract of the
// fault-tolerant pool.
func TestWorkerModeFaultInjection(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	var spawned atomic.Int64
	pool := runner.NewPool(2, 0, func() (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"FIGURES_TEST_WORKER=13",
			"FIGURES_TEST_SEED=7")
		if spawned.Add(1) == 1 {
			cmd.Env = append(cmd.Env, "FIGURES_DIE_AFTER=2")
		}
		cmd.Stderr = os.Stderr
		return cmd, nil
	})
	defer pool.Close()
	g, err := pool.Run(sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.Reduce(sp, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("fault-injected table differs from in-process run")
	}
	if n := spawned.Load(); n < 2 {
		t.Fatalf("fault injection spawned %d workers; the dying worker was never replaced", n)
	}
}

// TestPlannedShardMergeRoundTrip runs a modulo-sharded pass to collect
// timings, derives a 2-way LPT plan from its partials, re-runs both shards
// under the plan, and checks the merged table is still bit-identical — the
// -plan / -shard -withplan recipe end to end.
func TestPlannedShardMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := runShard(sp, o, i, 2, 0, dir, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	// No plan file yet: -withplan must refuse, not fall back silently.
	if err := runShard(sp, o, 1, 2, 0, dir, true, nil); err == nil {
		t.Fatal("-withplan ran without a plan file")
	}
	if err := runPlan(sp, o, 2, dir); err != nil {
		t.Fatal(err)
	}
	pl, err := readPlan(dir, "13", 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(pl.ShardCells(1)) + len(pl.ShardCells(2)); got != sp.Cells() {
		t.Fatalf("plan covers %d of %d cells", got, sp.Cells())
	}
	for i := 1; i <= 2; i++ {
		if err := runShard(sp, o, i, 2, 0, dir, true, nil); err != nil {
			t.Fatal(err)
		}
	}
	got, err := mergeShards(sp, o, dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("planned shard+merge table differs from in-process run")
	}
	// A plan for a different split must be refused.
	if _, err := readPlan(dir, "13", 3); err == nil {
		t.Fatal("3-way plan read from a 2-way file")
	}
}

// TestWriteFileAtomic pins the no-truncated-partials property: a failed
// write leaves no destination file and no temp residue; a successful one
// replaces the destination in full.
func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := writeFileAtomic(path, func(w io.Writer) error {
		fmt.Fprint(w, "partial garbage")
		return fmt.Errorf("simulated crash")
	}); err == nil {
		t.Fatal("write error not propagated")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("failed write left %s behind", path)
	}
	if err := writeFileAtomic(path, func(w io.Writer) error {
		_, err := fmt.Fprint(w, "complete")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "complete" {
		t.Fatalf("read back %q, %v", data, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("temp residue in %s: %v", dir, entries)
	}
}

// TestShardMergeRoundTrip drives the shard/partial/merge path through the
// same helpers main uses and checks the merged table is bit-identical.
func TestShardMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		if err := runShard(sp, o, i, 2, 0, dir, false, nil); err != nil {
			t.Fatal(err)
		}
	}
	got, err := mergeShards(sp, o, dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shard+merge table differs from in-process run")
	}
	// Mismatched options must be refused, not silently reduced.
	if _, err := mergeShards(sp, experiments.Options{Quick: true, Seed: 1}, dir); err == nil {
		t.Fatal("merge accepted partials from a different seed")
	}
	// A missing shard must be reported as incomplete.
	if err := os.Remove(filepath.Join(dir, shardFile("13", 1, 2))); err != nil {
		t.Fatal(err)
	}
	if _, err := mergeShards(sp, o, dir); err == nil {
		t.Fatal("merge reduced an incomplete grid")
	}
}

// TestMergeReportsMissingCells pins the coverage check's shape: a merge
// over incomplete partials must name the missing cell indices.
func TestMergeReportsMissingCells(t *testing.T) {
	dir := t.TempDir()
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	if err := runShard(sp, o, 2, 2, 0, dir, false, nil); err != nil { // shard 2 only
		t.Fatal(err)
	}
	_, err = mergeShards(sp, o, dir)
	if err == nil {
		t.Fatal("merge reduced an incomplete grid")
	}
	if !strings.Contains(err.Error(), "missing cells") || !strings.Contains(err.Error(), "0") {
		t.Fatalf("coverage error %q does not list the missing cells", err)
	}
	if !strings.Contains(err.Error(), "-resume") {
		t.Fatalf("coverage error %q does not point at -resume", err)
	}
}

// TestResumeFillsMissingCells finishes a half-covered run with -resume and
// checks the merge is then bit-identical to the in-process table — the
// drain-partial recovery recipe end to end.
func TestResumeFillsMissingCells(t *testing.T) {
	dir := t.TempDir()
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	if err := runShard(sp, o, 1, 2, 0, dir, false, nil); err != nil { // half the grid
		t.Fatal(err)
	}
	if err := runResume(sp, o, 0, dir, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "13.shard-resume.json")); err != nil {
		t.Fatalf("resume partial not written: %v", err)
	}
	got, err := mergeShards(sp, o, dir)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("resumed merge differs from in-process run")
	}
	// A second resume over the now-complete partials is a no-op, not an
	// error — and must not disturb the merge.
	if err := runResume(sp, o, 0, dir, nil); err != nil {
		t.Fatalf("resume over complete partials: %v", err)
	}
	if got2, err := mergeShards(sp, o, dir); err != nil || !reflect.DeepEqual(got2, want) {
		t.Fatalf("merge after no-op resume changed: %v", err)
	}
}

// TestWorkerModeFaultMatrix drives every -faultinject mode through the
// real worker subprocess (via FIGURES_FAULT, as workerCommand sets it) and
// requires the table to stay identical to the in-process run: each fault
// converts into requeue-and-recover, never into wrong output.
func TestWorkerModeFaultMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	o := experiments.Options{Quick: true, Seed: 7}
	sp, err := experiments.NewSpec("13", o)
	if err != nil {
		t.Fatal(err)
	}
	want, err := experiments.Figure13(o)
	if err != nil {
		t.Fatal(err)
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{"exit:2", "garbage:2", "disconnect:2", "slow:1:50ms", "wedge:2:2s"} {
		t.Run(mode, func(t *testing.T) {
			fault, err := runner.ParseFault(mode)
			if err != nil {
				t.Fatal(err)
			}
			var spawned atomic.Int64
			// One slot, so the faulty first worker necessarily serves the
			// cell that arms its fault.
			pool := runner.NewPoolTransport(&runner.PipeTransport{
				N: 1,
				Command: func() (*exec.Cmd, error) {
					cmd := exec.Command(exe)
					cmd.Env = append(os.Environ(),
						"FIGURES_TEST_WORKER=13",
						"FIGURES_TEST_SEED=7")
					if spawned.Add(1) == 1 {
						cmd.Env = append(cmd.Env, "FIGURES_FAULT="+fault.String())
					}
					cmd.Stderr = os.Stderr
					return cmd, nil
				},
			}, runner.Config{
				// A firm deadline so the wedge mode converts in test time.
				Deadline: runner.DeadlineConfig{Fixed: 500 * time.Millisecond},
				Backoff:  runner.BackoffConfig{Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
			})
			defer pool.Close()
			g, err := pool.Run(sp)
			if err != nil {
				t.Fatalf("fault %s: %v", mode, err)
			}
			got, err := runner.Reduce(sp, g)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("fault %s: table differs from in-process run", mode)
			}
			// Every mode except slow breaks the worker; the pool must have
			// replaced it.
			if mode != "slow:1:50ms" && spawned.Load() < 2 {
				t.Fatalf("fault %s: spawned %d workers, the faulty one was never replaced", mode, spawned.Load())
			}
		})
	}
}

// TestDrainedNextStep pins the post-drain hint: -resume is suggested only
// when the drain actually left cells unevaluated; a drain that landed
// after the last cell needs only the -merge.
func TestDrainedNextStep(t *testing.T) {
	withMissing := drainedNextStep(3, "parts")
	if !strings.Contains(withMissing, "-resume") || !strings.Contains(withMissing, "3 cells") {
		t.Fatalf("missing-cells hint lost the -resume pointer: %q", withMissing)
	}
	complete := drainedNextStep(0, "parts")
	if strings.Contains(complete, "-resume") {
		t.Fatalf("complete drain still suggests -resume: %q", complete)
	}
	if !strings.Contains(complete, "-merge") {
		t.Fatalf("complete drain lost the -merge pointer: %q", complete)
	}
}

// TestRunShardOnPoolMatchesLocal shards a quick figure across the worker
// pool (-shard composed with -procs) and in-process, and checks the
// partial files carry identical cell values.
func TestRunShardOnPoolMatchesLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	o := experiments.Options{Quick: true, Seed: 1}
	sp, err := experiments.NewSpec("3", o)
	if err != nil {
		t.Fatal(err)
	}
	poolDir := t.TempDir()
	localDir := t.TempDir()
	pool := runner.NewPoolTransport(&runner.PipeTransport{N: 2, Command: testWorkerCmd(t, "3", o.Seed)}, runner.Config{})
	defer pool.Close()
	if err := runShard(sp, o, 1, 2, 0, poolDir, false, pool); err != nil {
		t.Fatal(err)
	}
	if err := runShard(sp, o, 1, 2, 0, localDir, false, nil); err != nil {
		t.Fatal(err)
	}
	got := readPartialFile(t, filepath.Join(poolDir, shardFile("3", 1, 2)))
	want := readPartialFile(t, filepath.Join(localDir, shardFile("3", 1, 2)))
	if len(got.Results) != len(want.Results) {
		t.Fatalf("pooled shard has %d cells, local has %d", len(got.Results), len(want.Results))
	}
	for i := range got.Results {
		if got.Results[i].Idx != want.Results[i].Idx ||
			!reflect.DeepEqual(got.Results[i].Values, want.Results[i].Values) {
			t.Fatalf("cell %d differs between pooled and local shard", got.Results[i].Idx)
		}
	}
}

// testWorkerCmd re-invokes this test binary as a quick-mode pool worker
// serving the named figure (via the TestMain hook).
func testWorkerCmd(t *testing.T, name string, seed int64) func() (*exec.Cmd, error) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func() (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(),
			"FIGURES_TEST_WORKER="+name,
			"FIGURES_TEST_SEED="+strconv.FormatInt(seed, 10))
		cmd.Stderr = os.Stderr
		return cmd, nil
	}
}

func readPartialFile(t *testing.T, path string) *trace.Partial {
	t.Helper()
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	p, err := trace.ReadPartial(fh)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
