// Command repcheck is the repo's contract checker: a multichecker-style
// driver over the internal/analysis suite. It machine-enforces the
// invariants every parity guarantee rests on:
//
//	rowborrow  graph.Metric.Row results must not escape their borrow
//	detrand    deterministic packages take no wall-clock or ambient RNG
//	maprange   map iteration order must not reach outputs or float sums
//	floatfmt   floats on output paths use full-precision encoding
//
// Usage:
//
//	go run ./cmd/repcheck [-only a,b] [packages...]   (default ./...)
//
// Exit status is 1 if any diagnostic is reported. Suppressions are
// per-line comments of the form //repcheck:allow-<directive> <reason>;
// see ANALYSIS.md for the contract behind each analyzer.
//
// The stock extended vet passes that usually ride along in a
// multichecker (nilness, unusedwrite, SSA-based checks) come from
// golang.org/x/tools, which this repo deliberately does not vendor (the
// build is offline); scripts/lint.sh runs the full `go vet` suite —
// which includes copylocks over generic instantiations — alongside
// repcheck, and gates the x/tools-only passes on their availability.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/detrand"
	"repro/internal/analysis/floatfmt"
	"repro/internal/analysis/load"
	"repro/internal/analysis/maprange"
	"repro/internal/analysis/rowborrow"
)

var all = []*analysis.Analyzer{
	rowborrow.Analyzer,
	detrand.Analyzer,
	maprange.Analyzer,
	floatfmt.Analyzer,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repcheck [-only a,b] [packages...]\n\nanalyzers:\n")
		for _, a := range all {
			fmt.Fprintf(os.Stderr, "  %-10s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	selected, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repcheck:", err)
		os.Exit(2)
	}

	res, err := load.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repcheck:", err)
		os.Exit(2)
	}

	exit := 0
	for _, pkg := range res.Packages {
		for _, a := range selected {
			diags, err := analysis.Run(a, res.Fset, pkg.Files, pkg.Types, pkg.Info)
			if err != nil {
				fmt.Fprintf(os.Stderr, "repcheck: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
			for _, d := range diags {
				if !analysis.InScope(a.Name, pkg.BasePath, d.Pos.Filename) {
					continue
				}
				fmt.Printf("%s: %s [%s]\n", d.Pos, d.Message, a.Name)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

func selectAnalyzers(only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}
