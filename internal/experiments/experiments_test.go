package experiments

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/experiments/runner"
	"repro/internal/trace"
)

func quick() Options { return Options{Quick: true, Seed: 7} }

func checkTable(t *testing.T, tab *trace.Table, err error, wantSeries int) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", tab.Title, len(tab.Series), wantSeries)
	}
	if len(tab.X) == 0 {
		t.Fatalf("%s: empty x axis", tab.Title)
	}
	for _, s := range tab.Series {
		for i, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("%s/%s[%d] = %v", tab.Title, s.Label, i, v)
			}
		}
	}
}

func TestFigure1QuadraticUsesMoreServers(t *testing.T) {
	tab, err := Figure1(quick())
	checkTable(t, tab, err, 2)
	// Average active servers: the quadratic series must not trail linear.
	mean := func(vs []float64) float64 {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	lin, quad := mean(tab.Series[0].Values), mean(tab.Series[1].Values)
	if quad < lin-0.3 {
		t.Fatalf("quadratic load used fewer servers (%v) than linear (%v)", quad, lin)
	}
}

func TestFigure2Converges(t *testing.T) {
	tab, err := Figure2(quick())
	checkTable(t, tab, err, 2)
	// Static load: the server count in the last quarter should be stable
	// (vary by at most 2 servers) for the linear series.
	vals := tab.Series[0].Values
	tail := vals[3*len(vals)/4:]
	min, max := tail[0], tail[0]
	for _, v := range tail {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min > 2 {
		t.Fatalf("linear series still swinging by %v servers near the horizon", max-min)
	}
}

func TestFigure3ONTHWins(t *testing.T) {
	tab, err := Figure3(quick())
	checkTable(t, tab, err, 3)
	// ONTH (series 2) must beat ONBR-fixed (series 0) on average — the
	// paper's headline comparison.
	sumONBR, sumONTH := 0.0, 0.0
	for i := range tab.X {
		sumONBR += tab.Series[0].Values[i]
		sumONTH += tab.Series[2].Values[i]
	}
	if sumONTH >= sumONBR {
		t.Fatalf("ONTH total %v not below ONBR-fixed %v", sumONTH, sumONBR)
	}
}

func TestFigure3CostGrowsWithSize(t *testing.T) {
	tab, err := Figure3(quick())
	checkTable(t, tab, err, 3)
	first, last := tab.Series[2].Values[0], tab.Series[2].Values[len(tab.X)-1]
	if last <= first {
		t.Fatalf("ONTH cost did not grow with network size: %v -> %v", first, last)
	}
}

func TestFigure4Runs(t *testing.T) {
	tab, err := Figure4(quick())
	checkTable(t, tab, err, 3)
}

func TestFigure5Runs(t *testing.T) {
	tab, err := Figure5(quick())
	checkTable(t, tab, err, 3)
}

func TestFigure6NoMigrationWhenBetaExceedsC(t *testing.T) {
	tab, err := Figure6(quick())
	checkTable(t, tab, err, 4)
	for i, v := range tab.Series[2].Values { // migration series
		if v != 0 {
			t.Fatalf("x=%v: migration cost %v under β>c", tab.X[i], v)
		}
	}
	// Creation must be non-trivial (servers are built as demand fans out).
	nonzero := false
	for _, v := range tab.Series[3].Values {
		if v > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("no creation cost at all")
	}
}

func TestFigure7Runs(t *testing.T) {
	tab, err := Figure7(quick())
	checkTable(t, tab, err, 3)
}

func TestFigure8ONTHFactorTwo(t *testing.T) {
	tab, err := Figure8(quick())
	checkTable(t, tab, err, 3)
	// "ONTH is better by a factor of approximately two" at the paper's
	// scale; the scaled-down quick instance must still show a clear
	// advantage (the full-scale factor is recorded in EXPERIMENTS.md).
	sumONBR, sumONTH := 0.0, 0.0
	for i := range tab.X {
		sumONBR += tab.Series[0].Values[i]
		sumONTH += tab.Series[2].Values[i]
	}
	if sumONBR < 1.05*sumONTH {
		t.Fatalf("ONBR/ONTH = %v, want ≥ 1.05", sumONBR/sumONTH)
	}
}

func TestFigure9Runs(t *testing.T) {
	tab, err := Figure9(quick())
	checkTable(t, tab, err, 3)
}

func TestFigure10Runs(t *testing.T) {
	tab, err := Figure10(quick())
	checkTable(t, tab, err, 3)
}

func TestFigure11RatiosAtLeastOne(t *testing.T) {
	tab, err := Figure11(quick())
	checkTable(t, tab, err, 3)
	for _, s := range tab.Series {
		for i, v := range s.Values {
			if v < 1-1e-9 {
				t.Fatalf("%s at λ=%v: ONTH/OPT = %v < 1 (OPT not optimal?)", s.Label, tab.X[i], v)
			}
			if v > 30 {
				t.Fatalf("%s at λ=%v: ratio %v implausibly high", s.Label, tab.X[i], v)
			}
		}
	}
}

func TestFigure12CurveHasMinimum(t *testing.T) {
	tab, err := Figure12(quick())
	checkTable(t, tab, err, 1)
	vals := tab.Series[0].Values
	if len(vals) < 3 {
		t.Fatalf("curve too short: %d", len(vals))
	}
}

func TestFigure13OPTBelowOFFSTAT(t *testing.T) {
	tab, err := Figure13(quick())
	checkTable(t, tab, err, 2)
	for i := range tab.X {
		if tab.Series[1].Values[i] > tab.Series[0].Values[i]+1e-6 {
			t.Fatalf("λ=%v: OPT %v above OFFSTAT %v", tab.X[i], tab.Series[1].Values[i], tab.Series[0].Values[i])
		}
	}
}

func TestFigure14Runs(t *testing.T) {
	tab, err := Figure14(quick())
	checkTable(t, tab, err, 2)
}

func TestFigure15RatiosAtLeastOne(t *testing.T) {
	tab, err := Figure15(quick())
	checkTable(t, tab, err, 2)
	for _, s := range tab.Series {
		for i, v := range s.Values {
			if v < 1-1e-9 {
				t.Fatalf("%s at λ=%v: OFFSTAT/OPT = %v < 1", s.Label, tab.X[i], v)
			}
		}
	}
}

func TestFigure16Runs(t *testing.T) {
	tab, err := Figure16(quick())
	checkTable(t, tab, err, 2)
}

func TestFigure17Runs(t *testing.T) {
	tab, err := Figure17(quick())
	checkTable(t, tab, err, 2)
}

func TestFigure18Runs(t *testing.T) {
	tab, err := Figure18(quick())
	checkTable(t, tab, err, 2)
}

func TestFigure19Runs(t *testing.T) {
	tab, err := Figure19(quick())
	checkTable(t, tab, err, 2)
}

func TestTableRocketfuelOrdering(t *testing.T) {
	res, err := TableRocketfuel(quick())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative result: OFFSTAT < ONTH < ONBR.
	if !(res.Offstat < res.Onth && res.Onth < res.Onbr) {
		t.Fatalf("ordering violated: OFFSTAT=%v ONTH=%v ONBR=%v", res.Offstat, res.Onth, res.Onbr)
	}
	if res.OnthRatio() > 3.5 {
		t.Fatalf("ONTH/OFFSTAT = %v, paper reports < 2", res.OnthRatio())
	}
	tab := res.Table()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAblationsRun(t *testing.T) {
	ablations := map[string]func(Options) (*trace.Table, error){
		"queue":  AblationQueue,
		"expiry": AblationExpiry,
		"y":      AblationY,
		"theta":  AblationTheta,
		"load":   AblationLoad,
		"assign": AblationAssign,
	}
	names := make([]string, 0, len(ablations))
	for name := range ablations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fn := ablations[name]
		tab, err := fn(quick())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := tab.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, s := range tab.Series {
			for i, v := range s.Values {
				if math.IsNaN(v) || v <= 0 {
					t.Fatalf("%s: %s[%d] = %v", name, s.Label, i, v)
				}
			}
		}
	}
}

func TestCompareOnlineVariants(t *testing.T) {
	tab, err := CompareOnlineVariants(quick())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Series) != 7 {
		t.Fatalf("%d variants, want 7", len(tab.Series))
	}
	for _, s := range tab.Series {
		total, ratio := s.Values[0], s.Values[1]
		if total <= 0 || math.IsNaN(total) {
			t.Fatalf("%s: total %v", s.Label, total)
		}
		if ratio < 1-1e-9 {
			t.Fatalf("%s: beat OPT with ratio %v", s.Label, ratio)
		}
		if ratio > 50 {
			t.Fatalf("%s: ratio %v implausible", s.Label, ratio)
		}
	}
}

func TestOptionsDeterministic(t *testing.T) {
	a, err := Figure13(quick())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure13(quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		for si := range a.Series {
			if a.Series[si].Values[i] != b.Series[si].Values[i] {
				t.Fatalf("same options produced different results at x=%v", a.X[i])
			}
		}
	}
}

func TestSpecRegistry(t *testing.T) {
	names := SpecNames()
	if len(names) != 31 {
		t.Fatalf("%d specs registered, want 31", len(names))
	}
	seen := map[string]bool{}
	for _, name := range names {
		if seen[name] {
			t.Fatalf("spec %q registered twice", name)
		}
		seen[name] = true
		spec, err := NewSpec(name, quick())
		if err != nil {
			t.Fatal(err)
		}
		if spec.Name != name {
			t.Fatalf("spec %q built under name %q", name, spec.Name)
		}
		if err := spec.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := NewSpec("no-such-figure", quick()); err == nil {
		t.Fatal("unknown spec accepted")
	}
}

// TestSpecMatchesFigureFunction pins the grid decomposition to the exported
// figure functions: running the registered spec must reproduce the exact
// same table.
func TestSpecMatchesFigureFunction(t *testing.T) {
	spec, err := NewSpec("13", quick())
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.Run(spec, runner.Local{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Figure13(quick())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("spec table differs from Figure13:\n got %+v\nwant %+v", got, want)
	}
}

// TestSpecShardMergeParity runs one figure as a 2-way shard split plus
// merge and requires the reduced table to be bit-identical to the
// single-process run — the multi-machine execution contract.
func TestSpecShardMergeParity(t *testing.T) {
	spec, err := NewSpec("12", quick())
	if err != nil {
		t.Fatal(err)
	}
	want, err := runner.Run(spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	var parts []*trace.Partial
	for i := 1; i <= 2; i++ {
		g, err := runner.Shard{Index: i, Total: 2}.Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, g.Partial(7, true, i, 2))
	}
	merged, err := trace.MergePartials(parts...)
	if err != nil {
		t.Fatal(err)
	}
	g, err := runner.FromPartial(spec, merged)
	if err != nil {
		t.Fatal(err)
	}
	got, err := runner.Reduce(spec, g)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("shard+merge table differs from local run")
	}
}

func TestRunSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for x := 0; x < 20; x++ {
		for r := 0; r < 10; r++ {
			s := runSeed(1, x, r)
			if seen[s] {
				t.Fatalf("seed collision at x=%d r=%d", x, r)
			}
			seen[s] = true
		}
	}
}

func TestPickHelpers(t *testing.T) {
	full := Options{}
	quickO := Options{Quick: true}
	if pick(full, 10, 2) != 10 || pick(quickO, 10, 2) != 2 {
		t.Fatal("pick wrong")
	}
	if got := pickSizes(quickO, []int{1}, []int{2, 3}); len(got) != 2 {
		t.Fatal("pickSizes wrong")
	}
	if full.seed() != 1 || (Options{Seed: 5}).seed() != 5 {
		t.Fatal("seed default wrong")
	}
}

func TestScenarioKindString(t *testing.T) {
	if commuterDynamic.String() != "commuter-dynamic" ||
		commuterStatic.String() != "commuter-static" ||
		timeZones.String() != "time-zones" {
		t.Fatal("scenario names wrong")
	}
	if scenarioKind(9).String() == "" {
		t.Fatal("unknown scenario must render")
	}
}
