package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// figureSizeSpec is the shared grid of Figures 3–5: total cost of the online
// strategies as a function of network size (runtime 500 rounds, λ = 10,
// averaged over 5 runs, T growing with network size). The paper does not
// list the swept sizes; the commuter sweeps go up to 1000 nodes, while the
// time-zone sweep stops at 500 because its background demand touches nearly
// every node, which makes each best-response scan cost Θ(k·n²) instead of
// Θ(k·n·2^(T/2)).
func figureSizeSpec(o Options, name, title string, kind scenarioKind) *runner.Spec {
	full := []int{100, 200, 300, 400, 500, 700, 1000}
	if kind == timeZones {
		full = []int{100, 200, 300, 400, 500}
	}
	sizes := pickSizes(o, full, []int{50, 100, 150})
	rounds := pick(o, 500, 150)
	runs := pick(o, 5, 2)
	lambda := 10
	seed := o.seed()

	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH"}
	return &runner.Spec{
		Name: name,
		Xs:   len(sizes), Variants: len(labels), Runs: runs,
		Cell: func(xi, ai, run int) ([]float64, error) {
			n := sizes[xi]
			s := runSeed(seed, xi, run)
			env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s, o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := buildScenario(kind, env.Metric, workload.TForSize(n), lambda, rounds, 0,
				rand.New(rand.NewSource(s+1)))
			if err != nil {
				return nil, err
			}
			return one(runTotal(env, onlineContenders()[ai], seq))
		},
		Reduce: meanSeriesReduce(title, "network size", "total cost", floats(sizes), labels),
	}
}

func figure3Spec(o Options) *runner.Spec {
	return figureSizeSpec(o, "3", "Figure 3: cost vs network size, commuter dynamic load", commuterDynamic)
}

func figure4Spec(o Options) *runner.Spec {
	return figureSizeSpec(o, "4", "Figure 4: cost vs network size, commuter static load", commuterStatic)
}

func figure5Spec(o Options) *runner.Spec {
	return figureSizeSpec(o, "5", "Figure 5: cost vs network size, time zones", timeZones)
}

// Figure3 reproduces Figure 3: cost of ONBR-fixed, ONBR-dyn and ONTH in the
// commuter scenario with dynamic load as a function of network size. ONTH
// has the lowest cost throughout, though its cost grows slightly faster
// with the node count.
func Figure3(o Options) (*trace.Table, error) { return local(figure3Spec(o)) }

// Figure4 reproduces Figure 4: like Figure 3, but for the commuter scenario
// with static load.
func Figure4(o Options) (*trace.Table, error) { return local(figure4Spec(o)) }

// Figure5 reproduces Figure 5: like Figure 3, but for the time-zone
// scenario (p = 50%).
func Figure5(o Options) (*trace.Table, error) { return local(figure5Spec(o)) }

// figure6Spec is the grid of Figure 6: the breakdown of the costs incurred
// by ONBR in a scenario with β = 400 > c = 40 as a function of network size
// (runtime 500 rounds, λ = 10, 5 runs). Each cell is one run returning the
// four cost categories.
func figure6Spec(o Options) *runner.Spec {
	sizes := pickSizes(o, []int{100, 200, 300, 400, 500, 700, 1000}, []int{50, 100, 150})
	rounds := pick(o, 500, 150)
	runs := pick(o, 5, 2)
	lambda := 10
	seed := o.seed()

	components := []string{"access", "running", "migration", "creation"}
	return &runner.Spec{
		Name: "6",
		Xs:   len(sizes), Variants: 1, Runs: runs,
		Cell: func(xi, _, run int) ([]float64, error) {
			n := sizes[xi]
			s := runSeed(seed, xi, run)
			env, err := erEnv(n, cost.Linear{}, cost.InvertedParams(), s, o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := workload.CommuterDynamic(env.Metric,
				workload.CommuterConfig{T: workload.TForSize(n), Lambda: lambda}, rounds)
			if err != nil {
				return nil, err
			}
			l, err := sim.Run(env, online.NewONBR(), seq)
			if err != nil {
				return nil, err
			}
			return []float64{l.Totals.Access(), l.Totals.Run, l.Totals.Migration, l.Totals.Creation}, nil
		},
		Reduce: func(g *runner.Grid) (*trace.Table, error) {
			tab := &trace.Table{
				Title:  "Figure 6: ONBR cost breakdown, commuter dynamic load, β=400 c=40",
				XLabel: "network size",
				YLabel: "cost per category",
				X:      floats(sizes),
			}
			for ci, label := range components {
				vals := make([]float64, len(sizes))
				for xi := range sizes {
					vals[xi] = stats.Mean(g.RunsAt(xi, 0, ci))
				}
				tab.Series = append(tab.Series, trace.Series{Label: label, Values: vals})
			}
			return tab, tab.Validate()
		},
	}
}

// Figure6 reproduces Figure 6: the breakdown of the costs incurred by ONBR
// in a scenario with β = 400 > c = 40 as a function of network size. With
// β > c the three online algorithms coincide and the paper considers ONBR
// with fixed threshold 2c; migration never happens, so the reconfiguration
// budget is pure creation.
func Figure6(o Options) (*trace.Table, error) { return local(figure6Spec(o)) }

// figure7Spec is the grid of Figure 7: cost as a function of T for the
// three online strategies in a commuter scenario with static load (runtime
// 600 rounds, λ = 20, network size 1000, averaged over 10 runs).
func figure7Spec(o Options) *runner.Spec {
	n := pick(o, 1000, 100)
	rounds := pick(o, 600, 150)
	runs := pick(o, 10, 2)
	Ts := pickSizes(o, []int{4, 6, 8, 10, 12, 14, 16}, []int{4, 6, 8})
	lambda := 20
	seed := o.seed()

	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH"}
	return &runner.Spec{
		Name: "7",
		Xs:   len(Ts), Variants: len(labels), Runs: runs,
		Cell: func(xi, ai, run int) ([]float64, error) {
			s := runSeed(seed, xi, run)
			env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s, o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := workload.CommuterStatic(env.Metric,
				workload.CommuterConfig{T: Ts[xi], Lambda: lambda}, rounds)
			if err != nil {
				return nil, err
			}
			return one(runTotal(env, onlineContenders()[ai], seq))
		},
		Reduce: meanSeriesReduce("Figure 7: cost vs T, commuter static load", "T", "total cost",
			floats(Ts), labels),
	}
}

// Figure7 reproduces Figure 7: cost rises slightly with T because a larger
// T widens the request horizon.
func Figure7(o Options) (*trace.Table, error) { return local(figure7Spec(o)) }
