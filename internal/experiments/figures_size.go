package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// figureSize is the shared implementation of Figures 3–5: total cost of the
// online strategies as a function of network size (runtime 500 rounds,
// λ = 10, averaged over 5 runs, T growing with network size). The paper
// does not list the swept sizes; the commuter sweeps go up to 1000 nodes,
// while the time-zone sweep stops at 500 because its background demand
// touches nearly every node, which makes each best-response scan cost
// Θ(k·n²) instead of Θ(k·n·2^(T/2)).
func figureSize(o Options, title string, kind scenarioKind) (*trace.Table, error) {
	full := []int{100, 200, 300, 400, 500, 700, 1000}
	if kind == timeZones {
		full = []int{100, 200, 300, 400, 500}
	}
	sizes := pickSizes(o, full, []int{50, 100, 150})
	rounds := pick(o, 500, 150)
	runs := pick(o, 5, 2)
	lambda := 10
	seed := o.seed()

	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH"}
	values := make([][]float64, len(labels))
	tab := &trace.Table{Title: title, XLabel: "network size", YLabel: "total cost"}
	for xi, n := range sizes {
		tab.X = append(tab.X, float64(n))
		T := workload.TForSize(n)
		perAlg := make([][]float64, len(labels))
		for ai := range labels {
			ai := ai
			totals, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi, run)
				env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s)
				if err != nil {
					return 0, err
				}
				seq, err := buildScenario(kind, env.Matrix, T, lambda, rounds, 0, rand.New(rand.NewSource(s+1)))
				if err != nil {
					return 0, err
				}
				return runTotal(env, onlineContenders()[ai], seq)
			})
			if err != nil {
				return nil, err
			}
			perAlg[ai] = totals
		}
		for ai := range labels {
			values[ai] = append(values[ai], stats.Mean(perAlg[ai]))
		}
	}
	for ai, label := range labels {
		tab.Series = append(tab.Series, trace.Series{Label: label, Values: values[ai]})
	}
	return tab, tab.Validate()
}

// Figure3 reproduces Figure 3: cost of ONBR-fixed, ONBR-dyn and ONTH in the
// commuter scenario with dynamic load as a function of network size. ONTH
// has the lowest cost throughout, though its cost grows slightly faster
// with the node count.
func Figure3(o Options) (*trace.Table, error) {
	return figureSize(o, "Figure 3: cost vs network size, commuter dynamic load", commuterDynamic)
}

// Figure4 reproduces Figure 4: like Figure 3, but for the commuter scenario
// with static load.
func Figure4(o Options) (*trace.Table, error) {
	return figureSize(o, "Figure 4: cost vs network size, commuter static load", commuterStatic)
}

// Figure5 reproduces Figure 5: like Figure 3, but for the time-zone
// scenario (p = 50%).
func Figure5(o Options) (*trace.Table, error) {
	return figureSize(o, "Figure 5: cost vs network size, time zones", timeZones)
}

// Figure6 reproduces Figure 6: the breakdown of the costs incurred by ONBR
// in a scenario with β = 400 > c = 40 as a function of network size
// (runtime 500 rounds, λ = 10, 5 runs). With β > c the three online
// algorithms coincide and the paper considers ONBR with fixed threshold 2c;
// migration never happens, so the reconfiguration budget is pure creation.
func Figure6(o Options) (*trace.Table, error) {
	sizes := pickSizes(o, []int{100, 200, 300, 400, 500, 700, 1000}, []int{50, 100, 150})
	rounds := pick(o, 500, 150)
	runs := pick(o, 5, 2)
	lambda := 10
	seed := o.seed()

	type breakdown struct{ access, run, mig, create float64 }
	tab := &trace.Table{
		Title:  "Figure 6: ONBR cost breakdown, commuter dynamic load, β=400 c=40",
		XLabel: "network size",
		YLabel: "cost per category",
	}
	var acc, run, mig, create []float64
	for xi, n := range sizes {
		tab.X = append(tab.X, float64(n))
		T := workload.TForSize(n)
		parts := make([]breakdown, runs)
		_, err := parallelRuns(runs, func(r int) (float64, error) {
			s := runSeed(seed, xi, r)
			env, err := erEnv(n, cost.Linear{}, cost.InvertedParams(), s)
			if err != nil {
				return 0, err
			}
			seq, err := workload.CommuterDynamic(env.Matrix, workload.CommuterConfig{T: T, Lambda: lambda}, rounds)
			if err != nil {
				return 0, err
			}
			l, err := sim.Run(env, online.NewONBR(), seq)
			if err != nil {
				return 0, err
			}
			parts[r] = breakdown{
				access: l.Totals.Access(),
				run:    l.Totals.Run,
				mig:    l.Totals.Migration,
				create: l.Totals.Creation,
			}
			return 0, nil
		})
		if err != nil {
			return nil, err
		}
		var sum breakdown
		for _, p := range parts {
			sum.access += p.access
			sum.run += p.run
			sum.mig += p.mig
			sum.create += p.create
		}
		f := float64(runs)
		acc = append(acc, sum.access/f)
		run = append(run, sum.run/f)
		mig = append(mig, sum.mig/f)
		create = append(create, sum.create/f)
	}
	tab.Series = []trace.Series{
		{Label: "access", Values: acc},
		{Label: "running", Values: run},
		{Label: "migration", Values: mig},
		{Label: "creation", Values: create},
	}
	return tab, tab.Validate()
}

// Figure7 reproduces Figure 7: cost as a function of T for the three online
// strategies in a commuter scenario with static load (runtime 600 rounds,
// λ = 20, network size 1000, averaged over 10 runs). Cost rises slightly
// with T because a larger T widens the request horizon.
func Figure7(o Options) (*trace.Table, error) {
	n := pick(o, 1000, 100)
	rounds := pick(o, 600, 150)
	runs := pick(o, 10, 2)
	Ts := pickSizes(o, []int{4, 6, 8, 10, 12, 14, 16}, []int{4, 6, 8})
	lambda := 20
	seed := o.seed()

	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH"}
	values := make([][]float64, len(labels))
	tab := &trace.Table{
		Title:  "Figure 7: cost vs T, commuter static load",
		XLabel: "T",
		YLabel: "total cost",
	}
	for xi, T := range Ts {
		tab.X = append(tab.X, float64(T))
		for ai := range labels {
			ai := ai
			totals, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi, run)
				env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s)
				if err != nil {
					return 0, err
				}
				seq, err := workload.CommuterStatic(env.Matrix, workload.CommuterConfig{T: T, Lambda: lambda}, rounds)
				if err != nil {
					return 0, err
				}
				return runTotal(env, onlineContenders()[ai], seq)
			})
			if err != nil {
				return nil, err
			}
			values[ai] = append(values[ai], stats.Mean(totals))
		}
	}
	for ai, label := range labels {
		tab.Series = append(tab.Series, trace.Series{Label: label, Values: values[ai]})
	}
	return tab, tab.Validate()
}
