package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// CompareOnlineVariants pits every implemented online strategy — including
// the paper-sketched speed-ups (ONSAMP sampling, clustered ONBR) and the
// metrical-task-system baseline WFA — against OPT on a shared small
// instance where the exponential-space algorithms (ONCONF, WFA, OPT) are
// still tractable. The output is one series per strategy with its mean
// total cost and its mean competitive ratio against OPT.
func CompareOnlineVariants(o Options) (*trace.Table, error) {
	n := 8
	rounds := pick(o, 300, 100)
	runs := pick(o, 10, 2)
	k := 3
	seed := o.seed()

	type variant struct {
		label string
		make  func(s int64) sim.Algorithm
	}
	variants := []variant{
		{"ONTH", func(int64) sim.Algorithm { return online.NewONTH() }},
		{"ONBR-fixed", func(int64) sim.Algorithm { return online.NewONBR() }},
		{"ONBR-dyn", func(int64) sim.Algorithm { return online.NewONBRDynamic() }},
		{"ONBR-cluster", func(int64) sim.Algorithm { return online.NewONBRClustered(4) }},
		{"ONSAMP", func(int64) sim.Algorithm { return online.NewONSAMP() }},
		{"ONCONF", func(s int64) sim.Algorithm { return online.NewONCONF(rand.New(rand.NewSource(s + 99))) }},
		{"WFA", func(int64) sim.Algorithm { return online.NewWFA() }},
	}

	totals := make([][]float64, len(variants))
	ratios := make([][]float64, len(variants))
	for vi := range variants {
		totals[vi] = make([]float64, runs)
		ratios[vi] = make([]float64, runs)
	}
	_, err := parallelRuns(runs, func(run int) (float64, error) {
		s := runSeed(seed, 0, run)
		env, err := lineEnv(n, cost.DefaultParams(), s)
		if err != nil {
			return 0, err
		}
		env.Pool.MaxServers = k
		seq, err := workload.CommuterDynamic(env.Matrix,
			workload.CommuterConfig{T: 6, Lambda: 8}, rounds)
		if err != nil {
			return 0, err
		}
		opt, err := runTotal(env, offline.NewOPT(seq), seq)
		if err != nil {
			return 0, err
		}
		for vi, v := range variants {
			total, err := runTotal(env, v.make(s), seq)
			if err != nil {
				return 0, err
			}
			totals[vi][run] = total
			ratios[vi][run] = stats.Ratio(total, opt)
		}
		return 0, nil
	})
	if err != nil {
		return nil, err
	}

	tab := &trace.Table{
		Title:  "Online variants vs OPT (line n=8, k=3, commuter dynamic)",
		XLabel: "metric (0=total cost, 1=ratio vs OPT)",
		YLabel: "mean over runs",
		X:      []float64{0, 1},
	}
	for vi, v := range variants {
		tab.Series = append(tab.Series, trace.Series{
			Label:  v.label,
			Values: []float64{stats.Mean(totals[vi]), stats.Mean(ratios[vi])},
		})
	}
	return tab, tab.Validate()
}
