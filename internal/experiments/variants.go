package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// onlineVariant names one strategy of the variant comparison and how to
// build it for a given run seed.
type onlineVariant struct {
	label string
	make  func(s int64) sim.Algorithm
}

func onlineVariants() []onlineVariant {
	return []onlineVariant{
		{"ONTH", func(int64) sim.Algorithm { return online.NewONTH() }},
		{"ONBR-fixed", func(int64) sim.Algorithm { return online.NewONBR() }},
		{"ONBR-dyn", func(int64) sim.Algorithm { return online.NewONBRDynamic() }},
		{"ONBR-cluster", func(int64) sim.Algorithm { return online.NewONBRClustered(4) }},
		{"ONSAMP", func(int64) sim.Algorithm { return online.NewONSAMP() }},
		{"ONCONF", func(s int64) sim.Algorithm { return online.NewONCONF(rand.New(rand.NewSource(s + 99))) }},
		{"WFA", func(int64) sim.Algorithm { return online.NewWFA() }},
	}
}

// variantsSpec is the grid of the variant comparison: one cell per run,
// playing OPT plus every strategy on the shared small instance and
// returning all totals followed by all ratios.
func variantsSpec(o Options) *runner.Spec {
	n := 8
	rounds := pick(o, 300, 100)
	runs := pick(o, 10, 2)
	k := 3
	seed := o.seed()

	variants := onlineVariants()
	return &runner.Spec{
		Name: "variants",
		Xs:   1, Variants: 1, Runs: runs,
		Cell: func(_, _, run int) ([]float64, error) {
			s := runSeed(seed, 0, run)
			env, err := lineEnv(n, cost.DefaultParams(), s, o.Metric)
			if err != nil {
				return nil, err
			}
			env.Pool.MaxServers = k
			seq, err := workload.CommuterDynamic(env.Metric,
				workload.CommuterConfig{T: 6, Lambda: 8}, rounds)
			if err != nil {
				return nil, err
			}
			opt, err := runTotal(env, offline.NewOPT(seq), seq)
			if err != nil {
				return nil, err
			}
			out := make([]float64, 2*len(variants))
			for vi, v := range variants {
				total, err := runTotal(env, v.make(s), seq)
				if err != nil {
					return nil, err
				}
				out[vi] = total
				out[len(variants)+vi] = stats.Ratio(total, opt)
			}
			return out, nil
		},
		Reduce: func(g *runner.Grid) (*trace.Table, error) {
			tab := &trace.Table{
				Title:  "Online variants vs OPT (line n=8, k=3, commuter dynamic)",
				XLabel: "metric (0=total cost, 1=ratio vs OPT)",
				YLabel: "mean over runs",
				X:      []float64{0, 1},
			}
			for vi, v := range variants {
				tab.Series = append(tab.Series, trace.Series{
					Label: v.label,
					Values: []float64{
						stats.Mean(g.RunsAt(0, 0, vi)),
						stats.Mean(g.RunsAt(0, 0, len(variants)+vi)),
					},
				})
			}
			return tab, tab.Validate()
		},
	}
}

// CompareOnlineVariants pits every implemented online strategy — including
// the paper-sketched speed-ups (ONSAMP sampling, clustered ONBR) and the
// metrical-task-system baseline WFA — against OPT on a shared small
// instance where the exponential-space algorithms (ONCONF, WFA, OPT) are
// still tractable. The output is one series per strategy with its mean
// total cost and its mean competitive ratio against OPT.
func CompareOnlineVariants(o Options) (*trace.Table, error) { return local(variantsSpec(o)) }
