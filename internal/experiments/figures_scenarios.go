package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scenarioContenders returns fresh instances of the strategies the
// scenario sweeps compare: the online trio plus the offline lookahead
// variants, which exercise the driver's access-reuse hook end-to-end.
func scenarioContenders(seq *workload.Sequence) []sim.Algorithm {
	return append(onlineContenders(), offline.NewOFFBR(seq), offline.NewOFFTH(seq))
}

// CompareScenarios runs the contenders across every workload family — the
// paper's commuter and time-zones scenarios and the composable flash-crowd,
// diurnal multi-region, and weekday/weekend scenarios — on a shared
// Erdős–Rényi substrate. One x-position per scenario (in allScenarios
// order), one series per strategy, mean total cost over the runs.
func CompareScenarios(o Options) (*trace.Table, error) {
	n := pick(o, 200, 60)
	rounds := pick(o, 900, 200)
	runs := pick(o, 10, 2)
	T := 10
	lambda := 10
	seed := o.seed()

	kinds := allScenarios()
	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH", "OFFBR-fixed", "OFFTH"}
	values := make([][]float64, len(labels))
	tab := &trace.Table{
		Title:  "Scenario comparison: total cost per workload family",
		XLabel: "scenario (0=commuter-dyn, 1=commuter-static, 2=time-zones, 3=flash-crowd, 4=diurnal, 5=weekly)",
		YLabel: "total cost",
	}
	for xi, kind := range kinds {
		tab.X = append(tab.X, float64(xi))
		for ai := range labels {
			ai, kind := ai, kind
			totals, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi, run)
				env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s)
				if err != nil {
					return 0, err
				}
				seq, err := buildScenario(kind, env.Matrix, T, lambda, rounds, 0, rand.New(rand.NewSource(s+1)))
				if err != nil {
					return 0, err
				}
				return runTotal(env, scenarioContenders(seq)[ai], seq)
			})
			if err != nil {
				return nil, err
			}
			values[ai] = append(values[ai], stats.Mean(totals))
		}
	}
	for ai, label := range labels {
		tab.Series = append(tab.Series, trace.Series{Label: label, Values: values[ai]})
	}
	return tab, tab.Validate()
}

// ScenarioFlashCrowd sweeps the spike amplitude of the flash-crowd
// scenario: x is the peak volume as a multiple of the background, and the
// series are the contenders' mean total costs. Sharper crowds reward
// strategies that reconfigure decisively (and the lookahead variants that
// see them coming).
func ScenarioFlashCrowd(o Options) (*trace.Table, error) {
	n := pick(o, 200, 60)
	rounds := pick(o, 900, 200)
	runs := pick(o, 10, 2)
	base := 8
	tau := 20.0
	peaks := pickSizes(o, []int{1, 2, 4, 8, 16}, []int{2, 8})
	seed := o.seed()

	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH", "OFFBR-fixed", "OFFTH"}
	values := make([][]float64, len(labels))
	tab := &trace.Table{
		Title:  "Flash crowd: cost vs spike amplitude",
		XLabel: "spike peak (multiple of background volume)",
		YLabel: "total cost",
	}
	for xi, peak := range peaks {
		tab.X = append(tab.X, float64(peak))
		for ai := range labels {
			ai, peak := ai, peak
			totals, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi, run)
				env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s)
				if err != nil {
					return 0, err
				}
				seq, err := workload.FlashCrowd(env.Matrix, workload.FlashCrowdConfig{
					BaseRequests: base, Spikes: 4, Peak: float64(peak * base), Tau: tau,
				}, rounds, rand.New(rand.NewSource(s+1)))
				if err != nil {
					return 0, err
				}
				return runTotal(env, scenarioContenders(seq)[ai], seq)
			})
			if err != nil {
				return nil, err
			}
			values[ai] = append(values[ai], stats.Mean(totals))
		}
	}
	for ai, label := range labels {
		tab.Series = append(tab.Series, trace.Series{Label: label, Values: values[ai]})
	}
	return tab, tab.Validate()
}

// ScenarioDiurnal sweeps the number of regions in the diurnal multi-region
// scenario: x is the region count k, and the series are the contenders'
// mean total costs. More regions mean a faster-moving sun — shorter
// daytime windows stress how quickly each strategy re-centers.
func ScenarioDiurnal(o Options) (*trace.Table, error) {
	n := pick(o, 200, 60)
	rounds := pick(o, 900, 200)
	runs := pick(o, 10, 2)
	period := 80
	regionCounts := pickSizes(o, []int{2, 3, 4, 6, 8}, []int{2, 4})
	seed := o.seed()

	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH", "OFFBR-fixed", "OFFTH"}
	values := make([][]float64, len(labels))
	tab := &trace.Table{
		Title:  "Diurnal multi-region: cost vs region count",
		XLabel: "regions k",
		YLabel: "total cost",
	}
	for xi, k := range regionCounts {
		tab.X = append(tab.X, float64(k))
		for ai := range labels {
			ai, k := ai, k
			totals, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi, run)
				env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s)
				if err != nil {
					return 0, err
				}
				seq, err := workload.DiurnalMultiRegion(env.Matrix, workload.DiurnalConfig{
					Regions: k, Period: period, HotShare: 0.5,
				}, rounds, rand.New(rand.NewSource(s+1)))
				if err != nil {
					return 0, err
				}
				return runTotal(env, scenarioContenders(seq)[ai], seq)
			})
			if err != nil {
				return nil, err
			}
			values[ai] = append(values[ai], stats.Mean(totals))
		}
	}
	for ai, label := range labels {
		tab.Series = append(tab.Series, trace.Series{Label: label, Values: values[ai]})
	}
	return tab, tab.Validate()
}
