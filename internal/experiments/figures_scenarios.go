package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/offline"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// scenarioContenders returns fresh instances of the strategies the
// scenario sweeps compare: the online trio plus the offline lookahead
// variants, which exercise the driver's access-reuse hook end-to-end.
func scenarioContenders(seq *workload.Sequence) []sim.Algorithm {
	return append(onlineContenders(), offline.NewOFFBR(seq), offline.NewOFFTH(seq))
}

// scenarioLabels names the contenders' series.
func scenarioLabels() []string {
	return []string{"ONBR-fixed", "ONBR-dyn", "ONTH", "OFFBR-fixed", "OFFTH"}
}

// compareScenariosSpec is the grid of the cross-scenario comparison: one
// cell per (workload family, strategy, run) on a shared Erdős–Rényi
// substrate.
func compareScenariosSpec(o Options) *runner.Spec {
	n := pick(o, 200, 60)
	rounds := pick(o, 900, 200)
	runs := pick(o, 10, 2)
	T := 10
	lambda := 10
	seed := o.seed()

	kinds := allScenarios()
	labels := scenarioLabels()
	return &runner.Spec{
		Name: "compare-scenarios",
		Xs:   len(kinds), Variants: len(labels), Runs: runs,
		Cell: func(xi, ai, run int) ([]float64, error) {
			s := runSeed(seed, xi, run)
			env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s, o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := buildScenario(kinds[xi], env.Metric, T, lambda, rounds, 0, rand.New(rand.NewSource(s+1)))
			if err != nil {
				return nil, err
			}
			return one(runTotal(env, scenarioContenders(seq)[ai], seq))
		},
		Reduce: meanSeriesReduce(
			"Scenario comparison: total cost per workload family",
			"scenario (0=commuter-dyn, 1=commuter-static, 2=time-zones, 3=flash-crowd, 4=diurnal, 5=weekly)",
			"total cost",
			floats(intRange(len(kinds))), labels),
	}
}

// intRange returns [0, 1, ..., n-1].
func intRange(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// CompareScenarios runs the contenders across every workload family — the
// paper's commuter and time-zones scenarios and the composable flash-crowd,
// diurnal multi-region, and weekday/weekend scenarios — on a shared
// Erdős–Rényi substrate. One x-position per scenario (in allScenarios
// order), one series per strategy, mean total cost over the runs.
func CompareScenarios(o Options) (*trace.Table, error) { return local(compareScenariosSpec(o)) }

// scenarioFlashCrowdSpec is the grid of the flash-crowd amplitude sweep:
// one cell per (spike peak, strategy, run).
func scenarioFlashCrowdSpec(o Options) *runner.Spec {
	n := pick(o, 200, 60)
	rounds := pick(o, 900, 200)
	runs := pick(o, 10, 2)
	base := 8
	tau := 20.0
	peaks := pickSizes(o, []int{1, 2, 4, 8, 16}, []int{2, 8})
	seed := o.seed()

	labels := scenarioLabels()
	return &runner.Spec{
		Name: "scenario-flash-crowd",
		Xs:   len(peaks), Variants: len(labels), Runs: runs,
		Cell: func(xi, ai, run int) ([]float64, error) {
			s := runSeed(seed, xi, run)
			env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s, o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := workload.FlashCrowd(env.Metric, workload.FlashCrowdConfig{
				BaseRequests: base, Spikes: 4, Peak: float64(peaks[xi] * base), Tau: tau,
			}, rounds, rand.New(rand.NewSource(s+1)))
			if err != nil {
				return nil, err
			}
			return one(runTotal(env, scenarioContenders(seq)[ai], seq))
		},
		Reduce: meanSeriesReduce(
			"Flash crowd: cost vs spike amplitude",
			"spike peak (multiple of background volume)",
			"total cost",
			floats(peaks), labels),
	}
}

// ScenarioFlashCrowd sweeps the spike amplitude of the flash-crowd
// scenario: x is the peak volume as a multiple of the background, and the
// series are the contenders' mean total costs. Sharper crowds reward
// strategies that reconfigure decisively (and the lookahead variants that
// see them coming).
func ScenarioFlashCrowd(o Options) (*trace.Table, error) { return local(scenarioFlashCrowdSpec(o)) }

// scenarioDiurnalSpec is the grid of the diurnal region-count sweep: one
// cell per (region count, strategy, run).
func scenarioDiurnalSpec(o Options) *runner.Spec {
	n := pick(o, 200, 60)
	rounds := pick(o, 900, 200)
	runs := pick(o, 10, 2)
	period := 80
	regionCounts := pickSizes(o, []int{2, 3, 4, 6, 8}, []int{2, 4})
	seed := o.seed()

	labels := scenarioLabels()
	return &runner.Spec{
		Name: "scenario-diurnal",
		Xs:   len(regionCounts), Variants: len(labels), Runs: runs,
		Cell: func(xi, ai, run int) ([]float64, error) {
			s := runSeed(seed, xi, run)
			env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s, o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := workload.DiurnalMultiRegion(env.Metric, workload.DiurnalConfig{
				Regions: regionCounts[xi], Period: period, HotShare: 0.5,
			}, rounds, rand.New(rand.NewSource(s+1)))
			if err != nil {
				return nil, err
			}
			return one(runTotal(env, scenarioContenders(seq)[ai], seq))
		},
		Reduce: meanSeriesReduce(
			"Diurnal multi-region: cost vs region count",
			"regions k",
			"total cost",
			floats(regionCounts), labels),
	}
}

// ScenarioDiurnal sweeps the number of regions in the diurnal multi-region
// scenario: x is the region count k, and the series are the contenders'
// mean total costs. More regions mean a faster-moving sun — shorter
// daytime windows stress how quickly each strategy re-centers.
func ScenarioDiurnal(o Options) (*trace.Table, error) { return local(scenarioDiurnalSpec(o)) }
