package experiments

import (
	"fmt"
	"sync"

	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/graph"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// exemplaryRun plays ONTH once and returns the number of active servers per
// round, the time series Figures 1 and 2 plot for linear and quadratic load
// functions.
func exemplaryRun(env *sim.Env, seq *workload.Sequence) ([]float64, error) {
	l, err := sim.Run(env, online.NewONTH(), seq)
	if err != nil {
		return nil, err
	}
	active := make([]float64, len(l.Rounds))
	for t, r := range l.Rounds {
		active[t] = float64(r.Active)
	}
	return active, nil
}

// figureExecSpec is the shared grid of Figures 1 and 2: one cell per load
// model, each a single exemplary run whose cell value is the whole
// active-servers time series.
func figureExecSpec(o Options, name, title string, kind scenarioKind, n, T, lambda, rounds int) *runner.Spec {
	seed := o.seed()
	loads := []cost.LoadFunc{cost.Linear{}, cost.Quadratic{}}
	// Both load models run on the same substrate. The graph and its
	// all-pairs matrix — the figure's most expensive setup — are built once
	// per process, inside the Once so concurrent cells cannot duplicate the
	// metric computation, and shared by the cells evaluated there; a worker
	// process that only gets one cell regenerates the identical graph from
	// the same seed, so results do not depend on where cells run.
	var (
		graphOnce sync.Once
		sharedG   *graph.Graph
		sharedM   graph.Metric
		graphErr  error
	)
	substrate := func() (*graph.Graph, graph.Metric, error) {
		graphOnce.Do(func() {
			if sharedG, graphErr = erGraph(n, seed); graphErr != nil {
				return
			}
			spec := o.Metric
			if spec == "" {
				spec = "dense"
			}
			sharedM, graphErr = graph.NewMetric(sharedG, spec)
		})
		return sharedG, sharedM, graphErr
	}
	return &runner.Spec{
		Name: name,
		Xs:   1, Variants: len(loads), Runs: 1,
		Cell: func(_, vi, _ int) ([]float64, error) {
			g, m, err := substrate()
			if err != nil {
				return nil, err
			}
			env, err := sim.NewEnvMetric(g, m, loads[vi], cost.AssignMinCost, cost.DefaultParams(), poolDefaults(), nil)
			if err != nil {
				return nil, err
			}
			seq, err := buildScenario(kind, env.Metric, T, lambda, rounds, 0, nil)
			if err != nil {
				return nil, err
			}
			return exemplaryRun(env, seq)
		},
		Reduce: func(g *runner.Grid) (*trace.Table, error) {
			tab := &trace.Table{
				Title:  title,
				XLabel: "round",
				YLabel: "active servers (ONTH)",
			}
			for vi, load := range loads {
				tab.Series = append(tab.Series, trace.Series{
					Label:  fmt.Sprintf("%s load", load.Name()),
					Values: g.Cell(0, vi, 0),
				})
			}
			tab.X = make([]float64, rounds)
			for t := range tab.X {
				tab.X[t] = float64(t)
			}
			return tab, tab.Validate()
		},
	}
}

func figure1Spec(o Options) *runner.Spec {
	n := pick(o, 1000, 120)
	rounds := pick(o, 1000, 280)
	T := pick(o, 14, 8)
	return figureExecSpec(o, "1", "Figure 1: ONTH execution, commuter dynamic load", commuterDynamic,
		n, T, 20, rounds)
}

func figure2Spec(o Options) *runner.Spec {
	n := pick(o, 500, 120)
	rounds := pick(o, 1000, 280)
	T := pick(o, 12, 8)
	return figureExecSpec(o, "2", "Figure 2: ONTH execution, commuter static load", commuterStatic,
		n, T, 20, rounds)
}

// Figure1 reproduces Figure 1: an exemplary execution of ONTH in the
// commuter scenario with dynamic load (runtime 1000 rounds, T = 14, network
// size 1000, λ = 20), showing that steeper load functions (quadratic vs
// linear) make ONTH allocate more servers as demand fans out.
func Figure1(o Options) (*trace.Table, error) { return local(figure1Spec(o)) }

// Figure2 reproduces Figure 2: the same exemplary execution for the
// commuter scenario with static load (runtime 1000 rounds, T = 12, network
// size 500, λ = 20). The system converges quickly to a server count that is
// largely independent of how many access points the fixed demand originates
// from, with the quadratic load model requiring more servers.
func Figure2(o Options) (*trace.Table, error) { return local(figure2Spec(o)) }
