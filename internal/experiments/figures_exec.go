package experiments

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// exemplaryRun plays ONTH once and returns the number of active servers per
// round, the time series Figures 1 and 2 plot for linear and quadratic load
// functions.
func exemplaryRun(env *sim.Env, seq *workload.Sequence) ([]float64, error) {
	l, err := sim.Run(env, online.NewONTH(), seq)
	if err != nil {
		return nil, err
	}
	active := make([]float64, len(l.Rounds))
	for t, r := range l.Rounds {
		active[t] = float64(r.Active)
	}
	return active, nil
}

// figureExec is the shared implementation of Figures 1 and 2.
func figureExec(o Options, title string, kind scenarioKind, n, T, lambda, rounds int) (*trace.Table, error) {
	seed := o.seed()
	tab := &trace.Table{
		Title:  title,
		XLabel: "round",
		YLabel: "active servers (ONTH)",
	}
	// Both load models run on the same substrate instance: the graph is
	// generated once and its all-pairs matrix (cached on the graph) is
	// shared by the two environments instead of being recomputed.
	g, err := erGraph(n, seed)
	if err != nil {
		return nil, err
	}
	for _, load := range []cost.LoadFunc{cost.Linear{}, cost.Quadratic{}} {
		env, err := sim.NewEnv(g, load, cost.AssignMinCost, cost.DefaultParams(), poolDefaults())
		if err != nil {
			return nil, err
		}
		seq, err := buildScenario(kind, env.Matrix, T, lambda, rounds, 0, nil)
		if err != nil {
			return nil, err
		}
		active, err := exemplaryRun(env, seq)
		if err != nil {
			return nil, err
		}
		tab.Series = append(tab.Series, trace.Series{
			Label:  fmt.Sprintf("%s load", load.Name()),
			Values: active,
		})
	}
	tab.X = make([]float64, rounds)
	for t := range tab.X {
		tab.X[t] = float64(t)
	}
	return tab, tab.Validate()
}

// Figure1 reproduces Figure 1: an exemplary execution of ONTH in the
// commuter scenario with dynamic load (runtime 1000 rounds, T = 14, network
// size 1000, λ = 20), showing that steeper load functions (quadratic vs
// linear) make ONTH allocate more servers as demand fans out.
func Figure1(o Options) (*trace.Table, error) {
	n := pick(o, 1000, 120)
	rounds := pick(o, 1000, 280)
	T := pick(o, 14, 8)
	return figureExec(o, "Figure 1: ONTH execution, commuter dynamic load", commuterDynamic,
		n, T, 20, rounds)
}

// Figure2 reproduces Figure 2: the same exemplary execution for the
// commuter scenario with static load (runtime 1000 rounds, T = 12, network
// size 500, λ = 20). The system converges quickly to a server count that is
// largely independent of how many access points the fixed demand originates
// from, with the quadratic load model requiring more servers.
func Figure2(o Options) (*trace.Table, error) {
	n := pick(o, 500, 120)
	rounds := pick(o, 1000, 280)
	T := pick(o, 12, 8)
	return figureExec(o, "Figure 2: ONTH execution, commuter static load", commuterStatic,
		n, T, 20, rounds)
}
