package runner

import (
	"testing"
	"time"
)

func TestParseFault(t *testing.T) {
	cases := []struct {
		in   string
		want *Fault
	}{
		{"", nil},
		{"0", nil},
		{"3", &Fault{Kind: "exit", After: 3}}, // pre-matrix bare-int syntax
		{"exit:2", &Fault{Kind: "exit", After: 2}},
		{"wedge:1", &Fault{Kind: "wedge", After: 1}},
		{"wedge:1:500ms", &Fault{Kind: "wedge", After: 1, Delay: 500 * time.Millisecond}},
		{"slow:0:50ms", &Fault{Kind: "slow", After: 0, Delay: 50 * time.Millisecond}},
		{"garbage:4", &Fault{Kind: "garbage", After: 4}},
		{"disconnect:1", &Fault{Kind: "disconnect", After: 1}},
	}
	for _, c := range cases {
		got, err := ParseFault(c.in)
		if err != nil {
			t.Errorf("ParseFault(%q): %v", c.in, err)
			continue
		}
		if (got == nil) != (c.want == nil) {
			t.Errorf("ParseFault(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		if got != nil && (got.Kind != c.want.Kind || got.After != c.want.After || got.Delay != c.want.Delay) {
			t.Errorf("ParseFault(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// The String form must parse back to the same fault.
		if got != nil {
			back, err := ParseFault(got.String())
			if err != nil || back.Kind != got.Kind || back.After != got.After || back.Delay != got.Delay {
				t.Errorf("ParseFault(%q).String() = %q did not round-trip (%+v, %v)", c.in, got.String(), back, err)
			}
		}
	}
}

func TestParseFaultRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"-2",            // negative exit count
		"exit",          // missing count
		"exit:x",        // non-integer count
		"exit:-1",       // negative count
		"bogus:1",       // unknown kind
		"wedge:1:huh",   // unparseable delay
		"wedge:1:-5s",   // negative delay
		"exit:1:1s:huh", // too many fields
	} {
		if f, err := ParseFault(in); err == nil {
			t.Errorf("ParseFault(%q) = %+v, want error", in, f)
		}
	}
}
