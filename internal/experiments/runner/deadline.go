package runner

import (
	"sort"
	"sync"
	"time"
)

// DeadlineConfig bounds how long the coordinator waits for one cell's
// response before declaring the worker wedged. A worker that crashes is
// detected immediately (the connection errors), but a wedged-but-alive
// worker — stuck in a loop, swapping, or on the far side of a half-open TCP
// connection — produces no such signal; the response deadline converts it
// into the same kill/respawn/requeue path a crash takes.
type DeadlineConfig struct {
	// Fixed, when positive, is used verbatim for every cell.
	Fixed time.Duration
	// Floor is the minimum adaptive deadline; 0 selects 30s.
	Floor time.Duration
	// Mult scales the observed p95 cell wall-clock; 0 selects 10.
	Mult float64
}

func (c DeadlineConfig) withDefaults() DeadlineConfig {
	if c.Floor <= 0 {
		c.Floor = 30 * time.Second
	}
	if c.Mult <= 0 {
		c.Mult = 10
	}
	return c
}

// deadlineMinObs is how many completed cells the adaptive deadline needs
// before it trusts the p95: with fewer observations the tracker returns the
// generous bootstrap instead, so the very first cells of an expensive grid —
// for which no timing history exists yet — are never killed by a deadline
// tuned to nothing.
const deadlineMinObs = 5

// deadlineBootstrap is the deadline used until deadlineMinObs cells have
// completed (unless a Fixed deadline is configured). A wedge during the
// bootstrap window still converts into a requeue, just slowly.
const deadlineBootstrap = 10 * time.Minute

// deadlineWindow bounds the tracker's sample to the most recent completed
// cells. A sliding window keeps the per-cell insert cost constant no matter
// how long the run is, and it makes the p95 track the cells being evaluated
// *now* — cell cost typically grows along a figure's x axis (bigger
// networks, more rounds), and an all-history quantile would hold the
// deadline down at the cheap early cells' level.
const deadlineWindow = 512

// deadlineTracker derives the per-cell response deadline from observed cell
// wall-clock: max(Floor, Mult × p95 of the last deadlineWindow cells).
// Durations are kept sorted so the quantile read is O(1); inserts are
// bounded by the window size.
type deadlineTracker struct {
	cfg DeadlineConfig

	mu   sync.Mutex
	durs []time.Duration // sorted ascending, ≤ deadlineWindow entries
	ring []time.Duration // the same durations in arrival order
	next int             // ring slot the next observation evicts
}

func newDeadlineTracker(cfg DeadlineConfig) *deadlineTracker {
	return &deadlineTracker{cfg: cfg.withDefaults()}
}

// Observe records one successful cell's coordinator-side wall-clock (send
// to response, transport included — that is the quantity the deadline
// bounds).
func (t *deadlineTracker) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) < deadlineWindow {
		t.ring = append(t.ring, d)
	} else {
		// Window full: the oldest observation leaves the sorted sample
		// before the new one enters.
		old := t.ring[t.next]
		j := sort.Search(len(t.durs), func(i int) bool { return t.durs[i] >= old })
		t.durs = append(t.durs[:j], t.durs[j+1:]...)
		t.ring[t.next] = d
		t.next = (t.next + 1) % deadlineWindow
	}
	i := sort.Search(len(t.durs), func(i int) bool { return t.durs[i] >= d })
	t.durs = append(t.durs, 0)
	copy(t.durs[i+1:], t.durs[i:])
	t.durs[i] = d
}

// Current returns the deadline to apply to the next cell.
func (t *deadlineTracker) Current() time.Duration {
	if t.cfg.Fixed > 0 {
		return t.cfg.Fixed
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.durs) < deadlineMinObs {
		if t.cfg.Floor > deadlineBootstrap {
			return t.cfg.Floor
		}
		return deadlineBootstrap
	}
	// p95 by the nearest-rank method on the sorted sample.
	rank := (95*len(t.durs) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	d := time.Duration(t.cfg.Mult * float64(t.durs[rank-1]))
	if d < t.cfg.Floor {
		return t.cfg.Floor
	}
	return d
}

// Observations reports how many cell durations the tracker has seen.
func (t *deadlineTracker) Observations() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.durs)
}
