package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// cellMsg is one worker-protocol response: the cell index it answers, and
// either the cell's values or the error it failed with.
type cellMsg struct {
	Idx    int       `json:"i"`
	Values []float64 `json:"v,omitempty"`
	Err    string    `json:"err,omitempty"`
}

// Procs evaluates cells across worker subprocesses. The coordinator streams
// cell indices (one decimal per line) to each worker's stdin and reads one
// JSON result line per cell from its stdout; assignment is dynamic, so slow
// cells do not stall the other workers. Workers exit when their stdin is
// closed. Results are keyed by cell index, so the schedule — which worker
// evaluated which cell, and in which order — cannot affect the reduced
// table.
type Procs struct {
	// N is the number of worker processes; 0 means 1.
	N int
	// Command prepares one worker process: a command that speaks the worker
	// protocol for this spec on its stdin/stdout (for cmd/figures, the
	// binary re-invoked with -worker -spec <name> and the experiment
	// options). Stdin/Stdout must be left unset — the coordinator wires
	// them to pipes.
	Command func() (*exec.Cmd, error)
}

// Run implements Exec.
func (p Procs) Run(s *Spec) (*Grid, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if p.Command == nil {
		return nil, fmt.Errorf("runner: procs backend without a worker command")
	}
	n := p.N
	if n < 1 {
		n = 1
	}
	if n > s.Cells() {
		n = s.Cells()
	}

	type result struct {
		idx    int
		values []float64
	}
	idxCh := make(chan int)
	results := make(chan result, n)
	errCh := make(chan error, n)
	// After any worker fails the grid cannot complete; surviving workers
	// stop evaluating queued cells instead of burning through the rest of
	// a doomed paper-scale grid.
	var failed atomic.Bool
	var wg sync.WaitGroup

	worker := func() error {
		cmd, err := p.Command()
		if err != nil {
			return err
		}
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return err
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return err
		}
		if err := cmd.Start(); err != nil {
			return err
		}
		// On any protocol error, kill the worker so Wait cannot hang on a
		// wedged subprocess.
		defer cmd.Wait()
		defer stdin.Close()
		defer cmd.Process.Kill()
		rd := bufio.NewReader(stdout)
		for idx := range idxCh {
			if failed.Load() {
				continue // keep draining, stop spending
			}
			if _, err := fmt.Fprintf(stdin, "%d\n", idx); err != nil {
				return fmt.Errorf("runner: worker write: %w", err)
			}
			line, err := rd.ReadString('\n')
			if err != nil {
				return fmt.Errorf("runner: worker died on cell %d: %w", idx, err)
			}
			var msg cellMsg
			if err := json.Unmarshal([]byte(line), &msg); err != nil {
				return fmt.Errorf("runner: bad worker response %q: %w", strings.TrimSpace(line), err)
			}
			if msg.Idx != idx {
				return fmt.Errorf("runner: worker answered cell %d for cell %d", msg.Idx, idx)
			}
			if msg.Err != "" {
				return fmt.Errorf("runner: spec %s cell %d: %s", s.Name, idx, msg.Err)
			}
			if msg.Values == nil {
				return fmt.Errorf("runner: spec %s cell %d: empty worker result", s.Name, idx)
			}
			results <- result{idx, msg.Values}
		}
		stdin.Close() // EOF: orderly worker exit
		if err := cmd.Wait(); err != nil {
			return fmt.Errorf("runner: worker exit: %w", err)
		}
		return nil
	}

	wg.Add(n)
	for w := 0; w < n; w++ {
		go func() {
			defer wg.Done()
			if err := worker(); err != nil {
				failed.Store(true)
				errCh <- err
				// Drain assignments so the feeder never blocks on a dead
				// worker pool.
				for range idxCh {
				}
			}
		}()
	}
	go func() {
		for idx := 0; idx < s.Cells(); idx++ {
			idxCh <- idx
		}
		close(idxCh)
		wg.Wait()
		close(results)
	}()

	g := NewGrid(s)
	for r := range results {
		if err := g.Set(r.idx, r.values); err != nil {
			return nil, err
		}
	}
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	return g, nil
}

// ServeWorker runs the worker half of the Procs protocol: it reads cell
// indices from r (one decimal per line), evaluates them, and writes one JSON
// result line per cell to w, until r reaches EOF. cmd/figures calls this in
// -worker mode with the spec rebuilt from its name.
func ServeWorker(s *Spec, r io.Reader, w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		idx, err := strconv.Atoi(line)
		if err != nil {
			return fmt.Errorf("runner: bad cell assignment %q: %w", line, err)
		}
		if idx < 0 || idx >= s.Cells() {
			return fmt.Errorf("runner: cell assignment %d outside grid of %d cells", idx, s.Cells())
		}
		msg := cellMsg{Idx: idx}
		xi, vi, run := s.Coords(idx)
		if v, err := s.Cell(xi, vi, run); err != nil {
			msg.Err = err.Error()
		} else {
			msg.Values = v
		}
		if err := enc.Encode(msg); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}
