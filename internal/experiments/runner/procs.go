package runner

import (
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"time"
)

// cellMsg is one worker-protocol response: the cell index it answers, and
// either the cell's values (plus its wall-clock nanoseconds, for timing-
// balanced shard planning) or the error it failed with.
type cellMsg struct {
	Idx    int       `json:"i"`
	Values []float64 `json:"v,omitempty"`
	Nanos  int64     `json:"ns,omitempty"`
	Err    string    `json:"err,omitempty"`
	// Hb marks an idle-connection heartbeat rather than a cell result; the
	// coordinator uses it for dead-peer detection on networked transports.
	Hb bool `json:"hb,omitempty"`
}

// Procs evaluates one spec's cells across worker subprocesses: a
// single-spec convenience over Pool. The coordinator streams cell indices
// (one decimal per line) to each worker's stdin and reads one JSON result
// line per cell from its stdout; assignment is dynamic, so slow cells do
// not stall the other workers, and results are keyed by cell index, so the
// schedule cannot affect the reduced table. A worker that dies or answers
// out of protocol is respawned and its in-flight cell requeued; only a cell
// that fails Retries+1 times fails the run. For a multi-spec selection,
// create one Pool instead so workers survive spec boundaries.
type Procs struct {
	// N is the number of worker processes; 0 means 1.
	N int
	// Command prepares one worker process: a command that speaks the worker
	// protocol on its stdin/stdout (for cmd/figures, the binary re-invoked
	// with -worker and the experiment options). Stdin/Stdout must be left
	// unset — the coordinator wires them to pipes.
	Command func() (*exec.Cmd, error)
	// Retries is the per-cell re-attempt budget after the first failure;
	// 0 selects DefaultCellRetries, negative disables requeueing.
	Retries int
}

// Run implements Exec.
func (p Procs) Run(s *Spec) (*Grid, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if p.Command == nil {
		return nil, fmt.Errorf("runner: procs backend without a worker command")
	}
	n := p.N
	if n < 1 {
		n = 1
	}
	if n > s.Cells() {
		n = s.Cells()
	}
	pool := NewPool(n, p.Retries, p.Command)
	defer pool.Close()
	return pool.Run(s)
}

// ServeWorker runs the worker half of the protocol for a single spec: it
// reads assignments from r, evaluates them, and writes one JSON result line
// per cell to w, until r reaches EOF. "SPEC <name>" lines are accepted but
// must name this spec. cmd/figures -worker mode serves the whole registry
// instead, via ServePool.
func ServeWorker(s *Spec, r io.Reader, w io.Writer) error {
	if err := s.Validate(); err != nil {
		return err
	}
	return ServePool(s, func(name string) (*Spec, error) {
		return nil, fmt.Errorf("runner: single-spec worker for %s asked to serve %s", s.Name, name)
	}, r, w)
}

// serveCell evaluates one assignment line against the spec and builds the
// reply. Cell failures travel inside the message — the worker stays up; only
// malformed assignments are protocol errors that bring the worker down.
func serveCell(s *Spec, line string) (cellMsg, error) {
	idx, err := strconv.Atoi(line)
	if err != nil {
		return cellMsg{}, fmt.Errorf("runner: bad cell assignment %q: %w", line, err)
	}
	if idx < 0 || idx >= s.Cells() {
		return cellMsg{}, fmt.Errorf("runner: cell assignment %d outside grid of %d cells", idx, s.Cells())
	}
	msg := cellMsg{Idx: idx}
	xi, vi, run := s.Coords(idx)
	start := time.Now() //repcheck:allow-wallclock per-cell timing is diagnostic metadata, not a result value
	v, err := s.Cell(xi, vi, run)
	if err != nil {
		msg.Err = err.Error()
		return msg, nil
	}
	msg.Values = v
	msg.Nanos = time.Since(start).Nanoseconds() //repcheck:allow-wallclock per-cell timing is diagnostic metadata, not a result value
	return msg, nil
}
