package runner

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/trace"
)

// testSpec is a deterministic spec whose cell values encode their own
// coordinates, so any scheduling or transport bug shows up as a wrong value.
// It must be reconstructible from scratch (the procs round-trip rebuilds it
// in a child process).
func testSpec(xs, variants, runs int) *Spec {
	s := &Spec{
		Name: "runner-test",
		Xs:   xs, Variants: variants, Runs: runs,
		Cell: func(xi, vi, run int) ([]float64, error) {
			return []float64{float64(xi*10000 + vi*100 + run), float64(run)}, nil
		},
	}
	s.Reduce = func(g *Grid) (*trace.Table, error) {
		tab := &trace.Table{Title: "runner test", XLabel: "x", YLabel: "y"}
		for xi := 0; xi < xs; xi++ {
			tab.X = append(tab.X, float64(xi))
		}
		for vi := 0; vi < variants; vi++ {
			vals := make([]float64, xs)
			for xi := 0; xi < xs; xi++ {
				vals[xi] = stats.Mean(g.Runs(xi, vi))
			}
			tab.Series = append(tab.Series, trace.Series{Label: fmt.Sprintf("v%d", vi), Values: vals})
		}
		return tab, tab.Validate()
	}
	return s
}

// buildTestSpec resolves the spec names the test worker can serve:
//
//	runner-test          the shared test spec, dims from RUNNER_TEST_WORKER
//	grid-XxVxR           a coordinate-encoding grid of the given dimensions
//	failcell-XxVxR       like grid-, but every cell with xi == 1 errors
//	work-XxVxR-K         like grid-, plus K iterations of float work per cell
func buildTestSpec(name string) (*Spec, error) {
	if name == "runner-test" {
		var xs, variants, runs int
		if _, err := fmt.Sscanf(os.Getenv("RUNNER_TEST_WORKER"), "%d,%d,%d", &xs, &variants, &runs); err != nil {
			return nil, fmt.Errorf("runner-test dims: %w", err)
		}
		return testSpec(xs, variants, runs), nil
	}
	var xs, variants, runs, work int
	if _, err := fmt.Sscanf(name, "grid-%dx%dx%d", &xs, &variants, &runs); err == nil {
		s := testSpec(xs, variants, runs)
		s.Name = name
		return s, nil
	}
	if _, err := fmt.Sscanf(name, "failcell-%dx%dx%d", &xs, &variants, &runs); err == nil {
		s := testSpec(xs, variants, runs)
		s.Name = name
		inner := s.Cell
		s.Cell = func(xi, vi, run int) ([]float64, error) {
			if xi == 1 {
				return nil, fmt.Errorf("kaput x=%d v=%d run=%d", xi, vi, run)
			}
			return inner(xi, vi, run)
		}
		return s, nil
	}
	if _, err := fmt.Sscanf(name, "work-%dx%dx%d-%d", &xs, &variants, &runs, &work); err == nil {
		s := testSpec(xs, variants, runs)
		s.Name = name
		inner := s.Cell
		s.Cell = func(xi, vi, run int) ([]float64, error) {
			x := 1.0
			for k := 0; k < work; k++ {
				x = x*1.0000001 + float64(k%7)
			}
			_ = x
			return inner(xi, vi, run)
		}
		return s, nil
	}
	return nil, fmt.Errorf("unknown test spec %q", name)
}

func TestMain(m *testing.M) {
	// Re-executed as a pool worker: speak the worker protocol on
	// stdin/stdout (SPEC lines select the grid), then exit.
	if os.Getenv("RUNNER_TEST_WORKER") != "" {
		var out io.Writer = os.Stdout
		if n, _ := strconv.Atoi(os.Getenv("RUNNER_TEST_DIE_AFTER")); n > 0 {
			out = &DieAfterWriter{W: os.Stdout, Lines: n}
		}
		if err := ServePool(nil, buildTestSpec, os.Stdin, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	s := testSpec(3, 4, 5)
	seen := make(map[int]bool)
	for xi := 0; xi < s.Xs; xi++ {
		for vi := 0; vi < s.Variants; vi++ {
			for run := 0; run < s.Runs; run++ {
				idx := s.Index(xi, vi, run)
				if idx < 0 || idx >= s.Cells() || seen[idx] {
					t.Fatalf("index (%d,%d,%d) -> %d invalid or duplicate", xi, vi, run, idx)
				}
				seen[idx] = true
				gx, gv, gr := s.Coords(idx)
				if gx != xi || gv != vi || gr != run {
					t.Fatalf("coords(%d) = (%d,%d,%d), want (%d,%d,%d)", idx, gx, gv, gr, xi, vi, run)
				}
			}
		}
	}
	if len(seen) != s.Cells() {
		t.Fatalf("%d distinct indices, want %d", len(seen), s.Cells())
	}
}

func TestLocalMatchesInline(t *testing.T) {
	s := testSpec(4, 3, 6)
	want, err := Run(s, Local{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, 64} {
		got, err := Run(s, Local{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d table differs from inline run", workers)
		}
	}
}

// TestLocalBoundsGoroutines is the regression test for the unbounded
// goroutine spawn of the old parallelRuns helper, which started one
// goroutine per run before acquiring the semaphore. The Local backend must
// start at most Workers worker goroutines no matter how many cells queue.
func TestLocalBoundsGoroutines(t *testing.T) {
	const workers = 4
	const cells = 512
	base := runtime.NumGoroutine()
	var peak atomic.Int64
	s := &Spec{
		Name: "goroutine-bound",
		Xs:   cells, Variants: 1, Runs: 1,
		Cell: func(xi, vi, run int) ([]float64, error) {
			// Linger briefly so queued cells would pile up goroutines if
			// each had one.
			time.Sleep(100 * time.Microsecond)
			n := int64(runtime.NumGoroutine())
			for {
				cur := peak.Load()
				if n <= cur || peak.CompareAndSwap(cur, n) {
					break
				}
			}
			return []float64{1}, nil
		},
		Reduce: func(g *Grid) (*trace.Table, error) {
			return &trace.Table{X: []float64{0}, Series: []trace.Series{{Label: "n", Values: []float64{1}}}}, nil
		},
	}
	if _, err := Run(s, Local{Workers: workers}); err != nil {
		t.Fatal(err)
	}
	// Allow slack for the test harness's own goroutines, but nothing close
	// to one-per-cell: the old implementation peaked at base + cells.
	if got := int(peak.Load()); got > base+workers+8 {
		t.Fatalf("peak %d goroutines for %d cells with %d workers (base %d): pool is not bounded",
			got, cells, workers, base)
	}
}

func TestLocalPropagatesCellError(t *testing.T) {
	s := testSpec(4, 1, 4)
	s.Cell = func(xi, vi, run int) ([]float64, error) {
		if xi >= 2 {
			return nil, fmt.Errorf("boom x=%d run=%d", xi, run)
		}
		return []float64{1, 1}, nil
	}
	_, err := Run(s, Local{Workers: 8})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if !contains(err.Error(), "boom x=") {
		t.Fatalf("error %q does not surface the failing cell", err)
	}
	// Single-worker execution is sequential, so the report is exact and
	// cells after the failure are skipped.
	if _, err := Run(s, Local{Workers: 1}); err == nil || !contains(err.Error(), "boom x=2 run=0") {
		t.Fatalf("sequential error %q does not name the first failing cell", err)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestShardPartialMergeMatchesLocal(t *testing.T) {
	s := testSpec(5, 2, 3)
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	for _, total := range []int{2, 3, 7} {
		var parts []*trace.Partial
		covered := 0
		for i := 1; i <= total; i++ {
			g, err := Shard{Index: i, Total: total}.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if err := g.Complete(); err == nil && total > 1 {
				t.Fatalf("shard %d/%d produced a complete grid", i, total)
			}
			p := g.Partial(7, true, i, total)
			covered += len(p.Results)
			parts = append(parts, p)
		}
		if covered != s.Cells() {
			t.Fatalf("shards 1..%d covered %d cells, want %d", total, covered, s.Cells())
		}
		merged, err := trace.MergePartials(parts...)
		if err != nil {
			t.Fatal(err)
		}
		if !merged.Complete() {
			t.Fatalf("merged partial incomplete: %d of %d", len(merged.Results), merged.Cells)
		}
		g, err := FromPartial(s, merged)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Reduce(s, g)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-way shard+merge table differs from local run", total)
		}
	}
}

func TestShardRejectsBadSplit(t *testing.T) {
	s := testSpec(2, 2, 2)
	for _, sh := range []Shard{{Index: 0, Total: 2}, {Index: 3, Total: 2}, {Index: 1, Total: 0}} {
		if _, err := sh.Run(s); err == nil {
			t.Fatalf("shard %d/%d accepted", sh.Index, sh.Total)
		}
	}
}

func TestServeWorkerProtocol(t *testing.T) {
	s := testSpec(2, 2, 2)
	clientIn, workerOut := io.Pipe()
	workerIn, clientOut := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := ServeWorker(s, workerIn, workerOut)
		workerOut.Close()
		done <- err
	}()

	// Drive two cells by hand and check the responses line up.
	go func() {
		fmt.Fprintln(clientOut, 3)
		fmt.Fprintln(clientOut, 0)
		clientOut.Close()
	}()
	buf := make([]byte, 4096)
	var out []byte
	for {
		n, err := clientIn.Read(buf)
		out = append(out, buf[:n]...)
		if err != nil {
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// One JSON line per cell, answering the asked index with the
	// coordinate-encoding values; the ns timing field may or may not appear.
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	want := []struct {
		idx    int
		values []float64
	}{{3, []float64{101, 1}}, {0, []float64{0, 0}}}
	if len(lines) != len(want) {
		t.Fatalf("worker wrote %d lines, want %d: %q", len(lines), len(want), out)
	}
	for i, line := range lines {
		var msg struct {
			Idx    int       `json:"i"`
			Values []float64 `json:"v"`
			Nanos  int64     `json:"ns"`
			Err    string    `json:"err"`
		}
		if err := json.Unmarshal([]byte(line), &msg); err != nil {
			t.Fatalf("line %d %q: %v", i, line, err)
		}
		if msg.Err != "" || msg.Idx != want[i].idx || !reflect.DeepEqual(msg.Values, want[i].values) {
			t.Fatalf("line %d = %+v, want idx %d values %v", i, msg, want[i].idx, want[i].values)
		}
		if msg.Nanos < 0 {
			t.Fatalf("line %d negative timing %d", i, msg.Nanos)
		}
	}
}

func TestServeWorkerReportsCellErrors(t *testing.T) {
	s := testSpec(1, 1, 1)
	s.Cell = func(xi, vi, run int) ([]float64, error) { return nil, fmt.Errorf("kaput") }
	in, out := io.Pipe()
	var buf safeBuffer
	done := make(chan error, 1)
	go func() { done <- ServeWorker(s, in, &buf) }()
	fmt.Fprintln(out, 0)
	out.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "{\"i\":0,\"err\":\"kaput\"}\n" {
		t.Fatalf("worker wrote %q", got)
	}
}

type safeBuffer struct {
	mu  sync.Mutex
	buf []byte
}

func (b *safeBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.buf = append(b.buf, p...)
	return len(p), nil
}

func (b *safeBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return string(b.buf)
}

// TestProcsRoundTrip spawns this test binary as real worker subprocesses
// (via the TestMain hook) and checks the multi-process table is identical to
// the in-process one.
func TestProcsRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	s := testSpec(4, 3, 2)
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	procs := Procs{
		N: 2,
		Command: func() (*exec.Cmd, error) {
			cmd := exec.Command(exe)
			cmd.Env = append(os.Environ(),
				"RUNNER_TEST_WORKER="+fmt.Sprintf("%d,%d,%d", s.Xs, s.Variants, s.Runs))
			cmd.Stderr = os.Stderr
			return cmd, nil
		},
	}
	got, err := Run(s, procs)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("procs table differs from local run")
	}
}

func TestProcsSurfacesWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	s := testSpec(2, 1, 2)
	procs := Procs{
		N: 1,
		Command: func() (*exec.Cmd, error) {
			// A worker that exits immediately without speaking the protocol.
			return exec.Command("/bin/sh", "-c", "exit 0"), nil
		},
	}
	if _, err := Run(s, procs); err == nil {
		t.Fatal("dead worker not reported")
	}
}

func TestRunValidatesSpec(t *testing.T) {
	bad := []*Spec{
		nil,
		{Name: "", Xs: 1, Variants: 1, Runs: 1},
		{Name: "x", Xs: 0, Variants: 1, Runs: 1},
		{Name: "x", Xs: 1, Variants: 1, Runs: 1}, // no cell/reduce
	}
	for i, s := range bad {
		if _, err := Run(s, Local{}); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}
}

func TestFromPartialRejectsForeign(t *testing.T) {
	s := testSpec(2, 1, 1)
	if _, err := FromPartial(s, &trace.Partial{Figure: "other", Cells: 2}); err == nil {
		t.Fatal("foreign figure accepted")
	}
	if _, err := FromPartial(s, &trace.Partial{Figure: s.Name, Cells: 99}); err == nil {
		t.Fatal("wrong grid size accepted")
	}
	if _, err := FromPartial(s, &trace.Partial{
		Figure: s.Name, Cells: s.Cells(),
		Results: []trace.CellResult{{Idx: 5, Values: []float64{1}}},
	}); err == nil {
		t.Fatal("out-of-range cell accepted")
	}
	if err := strconvSanity(); err != nil {
		t.Fatal(err)
	}
}

// strconvSanity pins the float64 JSON round-trip assumption the shard format
// relies on: shortest-form encoding parses back bit-identically.
func strconvSanity() error {
	for _, v := range []float64{1.0 / 3.0, 0.1, 12345.678901234567, 2.2250738585072014e-308} {
		s := strconv.FormatFloat(v, 'g', -1, 64)
		back, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return err
		}
		if back != v {
			return fmt.Errorf("%v round-tripped to %v", v, back)
		}
	}
	return nil
}
