package runner

import (
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/trace"
)

// testWorkerCommand re-invokes this test binary as a pool worker (via the
// TestMain hook); env holds extra environment entries for the next spawn.
func testWorkerCommand(t testing.TB, extraEnv func() []string) func() (*exec.Cmd, error) {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func() (*exec.Cmd, error) {
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), "RUNNER_TEST_WORKER=1")
		if extraEnv != nil {
			cmd.Env = append(cmd.Env, extraEnv()...)
		}
		cmd.Stderr = os.Stderr
		return cmd, nil
	}
}

func namedSpec(t testing.TB, name string) *Spec {
	s, err := buildTestSpec(name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestPoolPipelinesAcrossSpecs runs three grids through one shared pool and
// checks every table is bit-identical to its Local run and that grids are
// emitted in spec order — the cross-figure pipelining contract.
func TestPoolPipelinesAcrossSpecs(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	specs := []*Spec{
		namedSpec(t, "grid-3x2x2"),
		namedSpec(t, "grid-2x2x3"),
		namedSpec(t, "grid-4x1x2"),
	}
	pool := NewPool(2, 0, testWorkerCommand(t, nil))
	defer pool.Close()
	var order []int
	grids := make([]*Grid, len(specs))
	if err := pool.RunAll(specs, func(i int, g *Grid) error {
		order = append(order, i)
		grids[i] = g
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, []int{0, 1, 2}) {
		t.Fatalf("grids emitted in order %v", order)
	}
	for i, s := range specs {
		got, err := Reduce(s, grids[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(s, Local{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("spec %s pooled table differs from local run", s.Name)
		}
	}
	// The same pool must serve a second selection (the subprocesses are
	// still up and switch specs on demand).
	s := namedSpec(t, "grid-2x3x2")
	g, err := pool.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reduce(s, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("second-selection table differs from local run")
	}
}

// TestPoolRequeuesDeadWorker is the worker-death regression test: the first
// worker subprocess exits after three responses, mid-grid; the coordinator
// must respawn the slot, requeue the in-flight cell, and finish with a grid
// bit-identical to the Local run instead of aborting.
func TestPoolRequeuesDeadWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	s := namedSpec(t, "grid-4x3x2")
	var spawned atomic.Int64
	pool := NewPool(2, 0, testWorkerCommand(t, func() []string {
		if spawned.Add(1) == 1 {
			return []string{"RUNNER_TEST_DIE_AFTER=3"}
		}
		return nil
	}))
	defer pool.Close()
	g, err := pool.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Complete(); err != nil {
		t.Fatal(err)
	}
	got, err := Reduce(s, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("requeued table differs from local run")
	}
	if n := spawned.Load(); n < 2 {
		t.Fatalf("%d workers spawned; the dead worker was never replaced", n)
	}
}

// TestPoolFailsDeterministicCell pins the other side of the retry budget: a
// cell that fails on every attempt must fail the run after retries, naming
// the cell, instead of being requeued forever.
func TestPoolFailsDeterministicCell(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	s := namedSpec(t, "failcell-3x1x1") // cell index 1 (xi=1) always errors
	pool := NewPool(2, 0, testWorkerCommand(t, nil))
	defer pool.Close()
	_, err := pool.Run(s)
	if err == nil {
		t.Fatal("deterministically failing cell did not fail the run")
	}
	for _, want := range []string{"failcell-3x1x1", "cell 1", "3 attempts", "kaput"} {
		if !contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}
	// The pool survives the failed run: a healthy spec still completes.
	g, err := pool.Run(namedSpec(t, "grid-2x2x1"))
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Complete(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolRetriesSpawnFailure treats a failed spawn like any other worker
// failure: it consumes one attempt and the cell is requeued, so a transient
// spawn error does not abort the grid.
func TestPoolRetriesSpawnFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	s := namedSpec(t, "grid-2x2x1")
	healthy := testWorkerCommand(t, nil)
	var calls atomic.Int64
	pool := NewPool(1, 0, func() (*exec.Cmd, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("transient spawn failure")
		}
		return healthy()
	})
	defer pool.Close()
	g, err := pool.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Complete(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolRecordsTimings checks the worker-side wall-clock reaches the
// coordinator's grid and its partial, where shard planning picks it up.
func TestPoolRecordsTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	s := namedSpec(t, "work-2x2x1-200000")
	pool := NewPool(2, 0, testWorkerCommand(t, nil))
	defer pool.Close()
	g, err := pool.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for idx := 0; idx < s.Cells(); idx++ {
		total += g.Nanos(idx)
	}
	if total <= 0 {
		t.Fatal("no cell timings recorded by the pooled run")
	}
	p := g.Partial(1, true, 0, 0)
	if p.TotalNanos() != total {
		t.Fatalf("partial carries %d ns, grid recorded %d", p.TotalNanos(), total)
	}
}

// TestPoolRejectsUnserializableSpecName keeps spec names inside what the
// line protocol can carry.
func TestPoolRejectsUnserializableSpecName(t *testing.T) {
	s := testSpec(1, 1, 1)
	s.Name = "has space"
	pool := NewPool(1, 0, testWorkerCommand(t, nil))
	defer pool.Close()
	if _, err := pool.Run(s); err == nil {
		t.Fatal("spec name with whitespace accepted")
	}
}

// TestPoolClosedRefusesRuns pins Close semantics.
func TestPoolClosedRefusesRuns(t *testing.T) {
	pool := NewPool(1, 0, testWorkerCommand(t, nil))
	pool.Close()
	pool.Close() // idempotent
	if _, err := pool.Run(testSpec(1, 1, 1)); err == nil {
		t.Fatal("closed pool accepted a run")
	}
}

// TestCellSetMatchesShard pins the planned-shard execution path: an
// explicit cell list must produce the same partial grid as the equivalent
// modulo shard, and invalid lists are rejected.
func TestCellSetMatchesShard(t *testing.T) {
	s := testSpec(5, 2, 3)
	want, err := Shard{Index: 2, Total: 3}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	var idxs []int
	for idx := 1; idx < s.Cells(); idx += 3 {
		idxs = append(idxs, idx)
	}
	got, err := CellSet{Idxs: idxs}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < s.Cells(); idx++ {
		xi, vi, run := s.Coords(idx)
		if !reflect.DeepEqual(got.Cell(xi, vi, run), want.Cell(xi, vi, run)) {
			t.Fatalf("cell %d differs between CellSet and Shard", idx)
		}
	}
	if _, err := (CellSet{Idxs: []int{-1}}).Run(s); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := (CellSet{Idxs: []int{s.Cells()}}).Run(s); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	if _, err := (CellSet{Idxs: []int{1, 1}}).Run(s); err == nil {
		t.Fatal("duplicate index accepted")
	}
}

// TestLocalRecordsTimings checks the in-process backends record per-cell
// wall-clock and that it survives the partial round trip (the input to
// timing-balanced shard planning).
func TestLocalRecordsTimings(t *testing.T) {
	s := namedSpec(t, "work-3x2x2-200000")
	g, err := Local{}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	p := g.Partial(1, false, 0, 0)
	if p.TotalNanos() <= 0 {
		t.Fatal("local run recorded no cell timings")
	}
	back, err := FromPartial(s, p)
	if err != nil {
		t.Fatal(err)
	}
	for idx := 0; idx < s.Cells(); idx++ {
		if back.Nanos(idx) != g.Nanos(idx) {
			t.Fatalf("cell %d timing %d mangled to %d in the partial round trip", idx, g.Nanos(idx), back.Nanos(idx))
		}
	}
	merged, err := trace.MergePartials(p)
	if err != nil {
		t.Fatal(err)
	}
	if merged.TotalNanos() != p.TotalNanos() {
		t.Fatalf("merge dropped timings: %d != %d", merged.TotalNanos(), p.TotalNanos())
	}
}

// benchPoolSpecs is a three-figure selection with enough per-cell work that
// worker boot and figure-boundary idle time are visible against it.
func benchPoolSpecs(b *testing.B) []*Spec {
	return []*Spec{
		namedSpec(b, "work-4x3x2-400000"),
		namedSpec(b, "work-3x2x4-400000"),
		namedSpec(b, "work-4x2x3-400000"),
	}
}

// BenchmarkPoolPipelined is the shared-pool path cmd/figures uses for a
// multi-figure -procs selection: one pool, workers survive figure
// boundaries.
func BenchmarkPoolPipelined(b *testing.B) {
	specs := benchPoolSpecs(b)
	cmd := testWorkerCommand(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool := NewPool(2, 0, cmd)
		if err := pool.RunAll(specs, nil); err != nil {
			b.Fatal(err)
		}
		pool.Close()
	}
}

// BenchmarkPoolPerFigure is the pre-pool behaviour: every figure boots and
// drains its own worker pool, so subprocesses respawn at each boundary and
// workers idle while a figure's tail cells finish.
func BenchmarkPoolPerFigure(b *testing.B) {
	specs := benchPoolSpecs(b)
	cmd := testWorkerCommand(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			pool := NewPool(2, 0, cmd)
			if _, err := pool.Run(s); err != nil {
				b.Fatal(err)
			}
			pool.Close()
		}
	}
}

// TestShardCellsMatchesShard pins the exported slicing helper to the Shard
// backend's modulo rule, so the pooled shard path covers the same cells.
func TestShardCellsMatchesShard(t *testing.T) {
	for total := 1; total <= 4; total++ {
		covered := map[int]bool{}
		for idx := 1; idx <= total; idx++ {
			cells, err := ShardCells(30, idx, total)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range cells {
				if covered[c] {
					t.Fatalf("total=%d: cell %d covered twice", total, c)
				}
				covered[c] = true
				if c%total != idx-1 {
					t.Fatalf("total=%d shard %d: cell %d off the modulo slice", total, idx, c)
				}
			}
		}
		if len(covered) != 30 {
			t.Fatalf("total=%d: %d of 30 cells covered", total, len(covered))
		}
	}
	if _, err := ShardCells(10, 0, 2); err == nil {
		t.Fatal("shard index 0 accepted")
	}
	if _, err := ShardCells(10, 3, 2); err == nil {
		t.Fatal("shard index beyond total accepted")
	}
}

// TestPoolRunCellsMatchesCellSet runs one shard's cells through the worker
// pool and the other through the in-process CellSet backend, merges the
// two partials, and checks the reduced table is bit-identical to a Local
// run — the -shard/-procs composition contract.
func TestPoolRunCellsMatchesCellSet(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	s := namedSpec(t, "grid-3x2x2")
	pool := NewPool(2, 0, testWorkerCommand(t, nil))
	defer pool.Close()
	idxs1, err := ShardCells(s.Cells(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	idxs2, err := ShardCells(s.Cells(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := pool.RunCells(s, idxs1)
	if err != nil {
		t.Fatal(err)
	}
	local, err := CellSet{Idxs: idxs2}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := trace.MergePartials(
		pooled.Partial(0, false, 1, 2), local.Partial(0, false, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromPartial(s, merged)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reduce(s, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("pooled shard + local shard differ from the Local run")
	}
	if _, err := pool.RunCells(s, []int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := pool.RunCells(s, []int{1, 1}); err == nil {
		t.Fatal("duplicate index accepted")
	}
}
