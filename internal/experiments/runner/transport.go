package runner

import (
	"bufio"
	"fmt"
	"io"
	"os/exec"
)

// Conn is one live worker connection speaking the line-oriented SPEC/cell
// protocol: the coordinator writes assignment lines ("SPEC <name>", a
// decimal cell index, or "BYE"), the worker answers with one JSON cellMsg
// line per cell plus optional heartbeat lines. A Conn is driven by exactly
// one pool goroutine at a time (one writer, one reader goroutine it owns),
// so implementations need not serialise concurrent calls.
type Conn interface {
	// WriteLine sends one protocol line (newline appended).
	WriteLine(line string) error
	// ReadLine blocks for the next worker line. Closing the connection from
	// another goroutine must unblock it with an error.
	ReadLine() (string, error)
	// Abort tears the connection down on the error path: the peer is
	// presumed broken (killed and reaped for subprocesses, socket closed for
	// TCP). Idempotent with Shutdown — exactly one of the two runs.
	Abort()
	// Shutdown closes the connection on the orderly path: the worker is told
	// the session is over (stdin EOF for subprocesses, a BYE line for TCP)
	// and the close is graceful.
	Shutdown() error
	// Name labels the peer for diagnostics ("pid 4242", "10.0.0.7:52114").
	Name() string
}

// Transport supplies the pool's worker connections. Two shapes exist:
//
//   - Pool-driven (PipeTransport): the pool owns a fixed number of
//     connection slots and establishes each connection itself via Connect —
//     spawning a worker subprocess wired to pipes. Slots reports the slot
//     count and Joined returns nil.
//   - Worker-driven (ListenTransport): workers establish the connections by
//     dialing the coordinator; membership is elastic — workers may join
//     mid-run and leave without failing the run. Slots reports 0 and
//     Connect is never called; connections arrive on Joined.
type Transport interface {
	// Slots is the number of pool-driven connection slots; 0 means the
	// transport is worker-driven.
	Slots() int
	// Connect establishes one pool-driven connection. Only called when
	// Slots() > 0.
	Connect() (Conn, error)
	// Joined delivers worker-initiated connections until the transport is
	// closed; nil for pool-driven transports.
	Joined() <-chan Conn
	// Close releases transport resources (listeners, unclaimed
	// connections). Connections already handed to the pool are closed by
	// the pool, not the transport.
	Close() error
}

// PipeTransport is the subprocess transport: each connection is a worker
// process (Command) speaking the protocol on its stdin/stdout. This is the
// transport behind NewPool and the figures -procs flag.
type PipeTransport struct {
	// N is the number of worker slots; values < 1 mean 1.
	N int
	// Command prepares one worker process. Stdin/Stdout must be left unset —
	// the transport wires them to pipes.
	Command func() (*exec.Cmd, error)
}

// Slots implements Transport.
func (t *PipeTransport) Slots() int {
	if t.N < 1 {
		return 1
	}
	return t.N
}

// Connect implements Transport: it spawns one worker subprocess.
func (t *PipeTransport) Connect() (Conn, error) {
	if t.Command == nil {
		return nil, fmt.Errorf("runner: pipe transport without a worker command")
	}
	cmd, err := t.Command()
	if err != nil {
		return nil, err
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &pipeConn{cmd: cmd, stdin: stdin, rd: bufio.NewReader(stdout)}, nil
}

// Joined implements Transport (pool-driven: nil).
func (t *PipeTransport) Joined() <-chan Conn { return nil }

// Close implements Transport.
func (t *PipeTransport) Close() error { return nil }

// pipeConn is one live worker subprocess.
type pipeConn struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	rd    *bufio.Reader
}

func (c *pipeConn) WriteLine(line string) error {
	if _, err := fmt.Fprintf(c.stdin, "%s\n", line); err != nil {
		return fmt.Errorf("runner: worker write: %w", err)
	}
	return nil
}

func (c *pipeConn) ReadLine() (string, error) {
	return c.rd.ReadString('\n')
}

// Abort tears down a failed worker: the process is killed and reaped so the
// slot can respawn. Wait runs exactly once per process — here on the error
// path, or in Shutdown on the orderly path.
func (c *pipeConn) Abort() {
	c.stdin.Close()
	c.cmd.Process.Kill()
	c.cmd.Wait()
}

// Shutdown closes the worker via the orderly path: stdin EOF tells the
// subprocess to exit, then one Wait reaps it. The process is not killed —
// Kill is reserved for Abort.
func (c *pipeConn) Shutdown() error {
	c.stdin.Close()
	return c.cmd.Wait()
}

func (c *pipeConn) Name() string {
	if c.cmd.Process != nil {
		return fmt.Sprintf("worker pid %d", c.cmd.Process.Pid)
	}
	return "worker subprocess"
}
