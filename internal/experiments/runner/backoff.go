package runner

import (
	"math/rand"
	"time"
)

// BackoffConfig parameterises the exponential-backoff-with-jitter schedule
// the pool applies between worker respawns and a remote worker applies
// between reconnect attempts. Replacing the old immediate respawn, the
// schedule keeps a crash-looping worker binary from spinning the
// coordinator: consecutive failures space out geometrically up to Max, and
// the jitter keeps a fleet of workers (or slots) that failed together from
// retrying in lockstep.
type BackoffConfig struct {
	// Base is the delay after the first failure; 0 selects 100ms.
	Base time.Duration
	// Max caps the delay; 0 selects 10s.
	Max time.Duration
	// Factor multiplies the delay per consecutive failure; 0 selects 2.
	Factor float64
	// Jitter is the fraction of the delay randomised around its nominal
	// value: a delay d becomes d·(1 − Jitter/2 + Jitter·u) for uniform
	// u ∈ [0,1), so Jitter=0.5 spreads attempts over ±25%. Negative
	// disables jitter; 0 selects 0.5.
	Jitter float64
}

// withDefaults fills zero fields with the production schedule.
func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 100 * time.Millisecond
	}
	if c.Max <= 0 {
		c.Max = 10 * time.Second
	}
	if c.Factor <= 0 {
		c.Factor = 2
	}
	if c.Jitter == 0 {
		c.Jitter = 0.5
	} else if c.Jitter < 0 {
		c.Jitter = 0
	}
	return c
}

// backoff tracks one failure streak. Not safe for concurrent use; every
// worker slot and every remote worker owns its own.
type backoff struct {
	cfg     BackoffConfig
	attempt int
	uniform func() float64 // jitter source; injectable for deterministic tests
}

func newBackoff(cfg BackoffConfig, uniform func() float64) *backoff {
	if uniform == nil {
		uniform = rand.Float64 //repcheck:allow-wallclock reconnect jitter must differ across workers; results never depend on it
	}
	return &backoff{cfg: cfg.withDefaults(), uniform: uniform}
}

// Next returns the delay before the next attempt and advances the streak.
func (b *backoff) Next() time.Duration {
	d := float64(b.cfg.Base)
	for i := 0; i < b.attempt; i++ {
		d *= b.cfg.Factor
		if d >= float64(b.cfg.Max) {
			d = float64(b.cfg.Max)
			break
		}
	}
	if d > float64(b.cfg.Max) {
		d = float64(b.cfg.Max)
	}
	b.attempt++
	if j := b.cfg.Jitter; j > 0 {
		d *= 1 - j/2 + j*b.uniform()
	}
	return time.Duration(d)
}

// Reset ends the failure streak: the next delay starts from Base again.
// Called once a worker proves healthy (a spawned process completes a cell, a
// reconnected worker holds a session).
func (b *backoff) Reset() { b.attempt = 0 }
