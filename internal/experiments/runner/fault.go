package runner

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"
)

// Fault is one injected worker failure mode — the deterministic stand-ins
// for the ways a real worker goes wrong, shared by the runner tests and
// `figures -faultinject`. A fault arms after After healthy responses and
// fires once per process (a respawned or reconnected worker holding the
// same Fault stays healthy afterwards), so every mode converts into the
// pool's requeue path at a known cell and the run still completes:
//
//	exit        the process exits right after writing response After — the
//	            classic crash; the next assignment hits a dead pipe
//	wedge       on the next assignment the worker stops responding but
//	            stays alive: only the response deadline can convert it
//	slow        every response from After on is delayed by Delay; under the
//	            deadline this is pure jitter, over it the worker is treated
//	            as wedged
//	garbage     response After+1 is replaced by a non-JSON line
//	disconnect  the worker drops the connection mid-cell: assignment
//	            After+1 is read but never answered
type Fault struct {
	// Kind is one of exit, wedge, slow, garbage, disconnect.
	Kind string
	// After is how many responses are served healthily first.
	After int
	// Delay is the slow-mode per-response delay and the wedge-mode stuck
	// time; 0 selects 250ms (slow) / 2min (wedge).
	Delay time.Duration

	served int  // responses fully written
	fired  bool // one-shot modes only fire once per process
}

// FaultKinds lists the supported fault matrix, in documentation order.
var FaultKinds = []string{"exit", "wedge", "slow", "garbage", "disconnect"}

// ParseFault parses a -faultinject value: "" is no fault, a bare integer N
// is "exit:N" (the pre-matrix syntax), and "kind:N[:delay]" selects a
// matrix mode, with the optional delay applying to slow and wedge.
func ParseFault(s string) (*Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "0" {
		return nil, nil
	}
	if n, err := strconv.Atoi(s); err == nil {
		if n < 0 {
			return nil, fmt.Errorf("runner: negative fault count %d", n)
		}
		return &Fault{Kind: "exit", After: n}, nil
	}
	parts := strings.Split(s, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("runner: invalid fault %q, want kind:N[:delay]", s)
	}
	f := &Fault{Kind: parts[0]}
	known := false
	for _, k := range FaultKinds {
		if f.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("runner: unknown fault kind %q (want %s)", f.Kind, strings.Join(FaultKinds, ", "))
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 0 {
		return nil, fmt.Errorf("runner: invalid fault count in %q", s)
	}
	f.After = n
	if len(parts) == 3 {
		d, err := time.ParseDuration(parts[2])
		if err != nil || d < 0 {
			return nil, fmt.Errorf("runner: invalid fault delay in %q", s)
		}
		f.Delay = d
	}
	return f, nil
}

// String renders the fault back into -faultinject syntax.
func (f *Fault) String() string {
	if f == nil {
		return ""
	}
	if f.Delay > 0 {
		return fmt.Sprintf("%s:%d:%s", f.Kind, f.After, f.Delay)
	}
	return fmt.Sprintf("%s:%d", f.Kind, f.After)
}

// delay returns the effective slow/wedge duration.
func (f *Fault) delay() time.Duration {
	if f.Delay > 0 {
		return f.Delay
	}
	if f.Kind == "wedge" {
		return 2 * time.Minute
	}
	return 250 * time.Millisecond
}

// errFaultDisconnect makes the serve loop drop the connection without
// answering the in-flight cell.
var errFaultDisconnect = fmt.Errorf("runner: fault injection, disconnecting mid-cell")

// onAssignment fires the in-flight faults: called after an assignment line
// is read, before the cell is evaluated. A wedged worker sleeps here — by
// the time it resumes the coordinator has retired the connection, so its
// stale response hits a dead transport and the session ends; a
// disconnecting worker aborts the session outright.
func (f *Fault) onAssignment() error {
	if f == nil || f.fired || f.served < f.After {
		return nil
	}
	switch f.Kind {
	case "wedge":
		f.fired = true
		fmt.Fprintf(os.Stderr, "runner: fault injection, worker wedged for %v\n", f.delay())
		time.Sleep(f.delay())
	case "disconnect":
		f.fired = true
		fmt.Fprintln(os.Stderr, "runner: fault injection, worker disconnecting mid-cell")
		return errFaultDisconnect
	}
	return nil
}

// mangleResponse fires the response-stream faults: slow delays the
// response, garbage replaces it with a line no JSON decoder accepts.
func (f *Fault) mangleResponse(line string) string {
	if f == nil || f.fired || f.served < f.After {
		return line
	}
	switch f.Kind {
	case "slow":
		time.Sleep(f.delay()) // every response from After on; never "fired"
	case "garbage":
		f.fired = true
		fmt.Fprintln(os.Stderr, "runner: fault injection, worker emitting garbage")
		return "!!not json!!"
	}
	return line
}

// DieAfterWriter forwards writes and exits the process once Lines response
// lines have been written — the original exit-fault stand-in, kept for the
// environment-variable injection path (FIGURES_DIE_AFTER and the runner
// tests' RUNNER_TEST_DIE_AFTER). Exiting right after a completed response
// line means the coordinator receives that cell's result and the *next*
// assignment hits the dead pipe, exercising the requeue path at a known
// cell — the same observable point as Fault{Kind: "exit"}.
type DieAfterWriter struct {
	W     io.Writer
	Lines int
}

func (d *DieAfterWriter) Write(p []byte) (int, error) {
	n, err := d.W.Write(p)
	for _, b := range p[:n] {
		if b == '\n' {
			d.Lines--
			if d.Lines <= 0 {
				fmt.Fprintln(os.Stderr, "runner: fault injection, worker exiting after response")
				os.Exit(1)
			}
		}
	}
	return n, err
}

// afterResponse counts a flushed response and fires the exit fault: the
// process dies right after response After is on the wire, so the
// coordinator receives that cell's result and the *next* assignment hits
// the dead pipe — the same observable point as the historical
// DieAfterWriter.
func (f *Fault) afterResponse() {
	if f == nil {
		return
	}
	f.served++
	if f.Kind == "exit" && !f.fired && f.served >= f.After {
		f.fired = true
		fmt.Fprintln(os.Stderr, "runner: fault injection, worker exiting after response")
		os.Exit(1)
	}
}
