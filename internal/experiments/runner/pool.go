package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCellRetries is how many times a cell is re-attempted after its
// first failure before the run is declared failed. A worker crash costs the
// in-flight cell one attempt; only a cell that keeps failing across fresh
// workers — a deterministic failure — exhausts the budget.
const DefaultCellRetries = 2

// ErrDrained reports a run stopped by Drain: no new cells were fed after
// the drain signal, in-flight results were collected under the drain
// deadline, and the grids returned by RunAllGrids hold every completed
// cell — convert them with Grid.Partial and persist, so a SIGTERM mid-run
// loses no completed work.
var ErrDrained = errors.New("runner: run drained")

// Config tunes the pool's failure handling. The zero value selects the
// production defaults throughout.
type Config struct {
	// Retries is the per-cell re-attempt budget after the first failure;
	// 0 selects DefaultCellRetries, negative disables requeueing.
	Retries int
	// Deadline bounds how long one cell may stay unanswered before its
	// worker is treated as wedged and recycled.
	Deadline DeadlineConfig
	// Backoff paces worker respawns, replacing immediate respawn so a
	// crash-looping worker binary cannot spin the coordinator.
	Backoff BackoffConfig
	// HeartbeatTimeout retires an idle worker-driven connection that has
	// sent nothing (not even heartbeats) for this long — the dead-peer
	// detector for half-open TCP connections; 0 selects 15s. Pool-driven
	// (pipe) connections don't need it: a dead subprocess is visible as
	// pipe EOF immediately.
	HeartbeatTimeout time.Duration
	// RejoinGrace is how long a worker-driven pool holds a run at zero
	// membership (after at least one worker had joined) waiting for a
	// rejoin before failing it; 0 selects 10s.
	RejoinGrace time.Duration
	// DrainTimeout bounds how long a drain waits for in-flight cells
	// before abandoning them; 0 selects 30s.
	DrainTimeout time.Duration

	// sleep and uniform are test hooks: a recording sleeper pins the
	// respawn backoff schedule without real delays, a fixed uniform pins
	// the jitter.
	sleep   func(d time.Duration, cancel <-chan struct{})
	uniform func() float64
}

func (c Config) withDefaults() Config {
	switch {
	case c.Retries == 0:
		c.Retries = DefaultCellRetries
	case c.Retries < 0:
		c.Retries = 0
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 15 * time.Second
	}
	if c.RejoinGrace <= 0 {
		c.RejoinGrace = 10 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.sleep == nil {
		c.sleep = sleepFor
	}
	return c
}

// sleepFor sleeps d unless cancel fires first.
func sleepFor(d time.Duration, cancel <-chan struct{}) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-cancel:
	}
}

// Pool is a fault-tolerant worker pool shared across specs, generic over
// its Transport: the same coordinator drives worker subprocesses over
// stdin/stdout pipes (PipeTransport, the -procs backend) or remote workers
// over TCP (ListenTransport, the -serve-workers backend), with identical
// requeue/retry logic and byte-identical output.
//
// Unlike Procs, which spins a pool up and drains it for every figure, a
// Pool is created once for a whole selection: the same workers serve cells
// from successive specs (the coordinator announces spec switches with a
// "SPEC <name>" protocol line), so workers stay busy across figure
// boundaries instead of idling while one figure's tail cells finish and the
// next figure's pool boots.
//
// The pool is also where failure is contained:
//
//   - A worker that dies or answers out of protocol is retired (killed and
//     reaped for subprocesses) and its in-flight cell requeued; pipe slots
//     respawn with exponential backoff and jitter.
//   - A wedged-but-alive worker — no crash, no response — is converted
//     into the same retire/requeue path by the per-cell response deadline
//     (adaptive over observed cell wall-clock; see DeadlineConfig).
//   - An idle worker-driven connection that stops heartbeating is retired
//     (dead-peer detection), while a slow cell under its deadline is left
//     alone: heartbeats distinguish slow from dead.
//   - Worker-driven membership is elastic: workers join mid-run and are
//     fed from the shared queue; workers may leave without failing the run
//     as long as one remains (or rejoins within RejoinGrace), and when
//     none do the error names the last worker failure.
//   - The grid only fails once a single cell has failed Retries+1 times —
//     a deterministic failure — and the error names that cell. A
//     cell-level error reported by a healthy worker is retried on the same
//     budget without recycling the worker.
//   - Drain stops feeding new cells and collects in-flight results under a
//     deadline, so a terminating coordinator can persist every completed
//     cell as a resumable partial.
type Pool struct {
	tr    Transport
	cfg   Config
	track *deadlineTracker

	taskCh chan poolTask
	stopCh chan struct{}
	wg     sync.WaitGroup

	drainOnce sync.Once
	drainCh   chan struct{}

	live       atomic.Int64
	everJoined atomic.Bool
	lastErrMu  sync.Mutex
	lastErr    error

	mu     sync.Mutex // serialises RunAll; a Pool runs one selection at a time
	closed bool
}

// poolTask is one cell assignment handed to a worker connection.
type poolTask struct {
	spec    *Spec
	specIdx int
	idx     int
	attempt int
	done    chan<- poolDone
}

// poolDone reports one attempt's outcome back to the coordinator.
type poolDone struct {
	specIdx int
	idx     int
	attempt int
	values  []float64
	nanos   int64
	err     error
}

// NewPool starts a subprocess pool: n worker slots (n < 1 means 1) that
// lazily spawn workers via command. retries follows the Config.Retries
// convention. Close the pool to shut the subprocesses down.
func NewPool(n, retries int, command func() (*exec.Cmd, error)) *Pool {
	return NewPoolTransport(&PipeTransport{N: n, Command: command}, Config{Retries: retries})
}

// NewPoolTransport starts a pool over an arbitrary transport.
func NewPoolTransport(tr Transport, cfg Config) *Pool {
	p := &Pool{
		tr:      tr,
		cfg:     cfg.withDefaults(),
		taskCh:  make(chan poolTask),
		stopCh:  make(chan struct{}),
		drainCh: make(chan struct{}),
	}
	p.track = newDeadlineTracker(p.cfg.Deadline)
	for i := 0; i < tr.Slots(); i++ {
		p.wg.Add(1)
		go p.slotLoop()
	}
	if joined := tr.Joined(); joined != nil {
		p.wg.Add(1)
		go p.joinLoop(joined)
	}
	return p
}

// Close shuts the pool down: worker connections are closed via the orderly
// path (stdin EOF for subprocesses, BYE for TCP workers) and the transport
// released. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.taskCh)
	close(p.stopCh)
	p.tr.Close()
	p.wg.Wait()
}

// Drain asks the pool to stop feeding new cells: the active RunAllGrids
// collects in-flight results under DrainTimeout and returns ErrDrained
// with the partial grids. Drain is sticky — a drained pool starts no
// further runs — and idempotent, the shape a SIGTERM handler needs.
func (p *Pool) Drain() {
	p.drainOnce.Do(func() { close(p.drainCh) })
}

// LiveWorkers reports the currently connected worker count.
func (p *Pool) LiveWorkers() int { return int(p.live.Load()) }

// noteLeave records a departed connection and, when it failed, the reason —
// the "last failure" a zero-membership error names.
func (p *Pool) noteLeave(err error) {
	p.live.Add(-1)
	if err != nil {
		p.lastErrMu.Lock()
		p.lastErr = err
		p.lastErrMu.Unlock()
	}
}

func (p *Pool) lastFailure() error {
	p.lastErrMu.Lock()
	defer p.lastErrMu.Unlock()
	return p.lastErr
}

// Run implements Exec for a single spec.
func (p *Pool) Run(s *Spec) (*Grid, error) {
	var out *Grid
	err := p.RunAll([]*Spec{s}, func(_ int, g *Grid) error {
		out = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll evaluates every spec's grid on the shared pool, pipelining cells
// across spec boundaries: as soon as one spec's queue drains, workers pull
// cells of the next spec while the previous spec's tail cells are still in
// flight. emit is called once per spec, in spec order, as each grid
// completes (it may be nil). On failure the already-dispatched cells are
// drained before returning, so the pool stays usable for another RunAll.
func (p *Pool) RunAll(specs []*Spec, emit func(i int, g *Grid) error) error {
	_, err := p.RunAllGrids(specs, emit)
	return err
}

// RunAllGrids is RunAll returning the per-spec grids. On ErrDrained the
// grids hold every cell completed before the drain — persist them with
// Grid.Partial; on other errors they are partial and best ignored.
func (p *Pool) RunAllGrids(specs []*Spec, emit func(i int, g *Grid) error) ([]*Grid, error) {
	return p.runAllCells(specs, make([][]int, len(specs)), emit)
}

// RunCells evaluates an explicit subset of one spec's cells on the pool —
// the sharded path (ShardCells or a timing plan picks the subset), with
// the pool's fault tolerance instead of a Local goroutine pool. The grid
// is incomplete by design, like CellSet's; persist it with Grid.Partial.
func (p *Pool) RunCells(s *Spec, idxs []int) (*Grid, error) {
	seen := make(map[int]bool, len(idxs))
	for _, idx := range idxs {
		if idx < 0 || idx >= s.Cells() {
			return nil, fmt.Errorf("runner: cell set index %d outside grid of %d cells", idx, s.Cells())
		}
		if seen[idx] {
			return nil, fmt.Errorf("runner: cell set repeats index %d", idx)
		}
		seen[idx] = true
	}
	grids, err := p.runAllCells([]*Spec{s}, [][]int{idxs}, nil)
	if err != nil {
		return nil, err
	}
	return grids[0], nil
}

// runAllCells is the engine under RunAllGrids and RunCells: for each spec
// it evaluates either the whole grid (cells[i] == nil) or an explicit
// index subset.
func (p *Pool) runAllCells(specs []*Spec, cells [][]int, emit func(i int, g *Grid) error) ([]*Grid, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("runner: RunAll on a closed pool")
	}
	if pt, ok := p.tr.(*PipeTransport); ok && pt.Command == nil {
		return nil, fmt.Errorf("runner: pool without a worker command")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("runner: RunAll without specs")
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if strings.ContainsAny(s.Name, " \t\r\n") {
			return nil, fmt.Errorf("runner: spec name %q cannot cross the worker protocol", s.Name)
		}
	}

	type queued struct{ specIdx, idx, attempt int }
	grids := make([]*Grid, len(specs))
	remaining := make([]int, len(specs))
	var pending []queued
	for i, s := range specs {
		grids[i] = NewGrid(s)
		if cells[i] == nil {
			remaining[i] = s.Cells()
			for c := 0; c < s.Cells(); c++ {
				pending = append(pending, queued{i, c, 0})
			}
			continue
		}
		remaining[i] = len(cells[i])
		for _, c := range cells[i] {
			pending = append(pending, queued{i, c, 0})
		}
	}
	// Capacity covers every possible attempt, so a worker finishing an
	// abandoned cell after a drain can always deposit its result without
	// blocking.
	done := make(chan poolDone, len(pending)*(p.cfg.Retries+1))
	next := 0     // head of the pending queue (requeues are appended)
	inflight := 0 // tasks handed to workers and not yet answered
	emitted := 0  // specs whose grids have been emitted, in order
	var failure error

	draining := false
	abandoned := false // drain deadline fired with cells still in flight
	drainCh := p.drainCh
	var drainTimer *time.Timer
	var drainTimeout <-chan time.Time
	startDrain := func() {
		draining = true
		drainCh = nil
		drainTimer = time.NewTimer(p.cfg.DrainTimeout)
		drainTimeout = drainTimer.C
	}
	defer func() {
		if drainTimer != nil {
			drainTimer.Stop()
		}
	}()

	// Zero-membership detection for worker-driven transports: when every
	// worker has left (after at least one had joined) and work remains,
	// the run fails after RejoinGrace names the last failure — instead of
	// hanging forever on a queue nobody serves.
	workerDriven := p.tr.Slots() == 0
	var memTickC <-chan time.Time
	if workerDriven {
		memTick := time.NewTicker(50 * time.Millisecond)
		defer memTick.Stop()
		memTickC = memTick.C
	}
	var zeroSince time.Time

	maybeEmit := func() {
		for failure == nil && emitted < len(specs) && remaining[emitted] == 0 {
			if emit != nil {
				if err := emit(emitted, grids[emitted]); err != nil {
					failure = err
					return
				}
			}
			emitted++
		}
	}

	for {
		if abandoned || (inflight == 0 && (failure != nil || draining || next >= len(pending))) {
			break
		}
		// Offer the next pending task and listen for completions at once;
		// with no pending task (or a doomed or draining run) the nil
		// channel leaves only the drain cases.
		var sendCh chan poolTask
		var t poolTask
		if failure == nil && !draining && next < len(pending) {
			q := pending[next]
			sendCh = p.taskCh
			t = poolTask{spec: specs[q.specIdx], specIdx: q.specIdx, idx: q.idx, attempt: q.attempt, done: done}
		}
		select {
		case sendCh <- t:
			next++
			inflight++
		case d := <-done:
			inflight--
			if failure != nil {
				continue // draining a doomed run; drop the result
			}
			if d.err != nil {
				if draining {
					continue // not feeding; the cell stays unevaluated
				}
				if d.attempt >= p.cfg.Retries {
					failure = fmt.Errorf("runner: spec %s cell %d failed after %d attempts: %w",
						specs[d.specIdx].Name, d.idx, d.attempt+1, d.err)
					continue
				}
				pending = append(pending, queued{d.specIdx, d.idx, d.attempt + 1})
				continue
			}
			if err := grids[d.specIdx].SetTimed(d.idx, d.values, d.nanos); err != nil {
				failure = err
				continue
			}
			remaining[d.specIdx]--
			maybeEmit()
		case <-drainCh:
			startDrain()
		case <-drainTimeout:
			abandoned = true
		case <-memTickC:
			if failure == nil && !draining && p.everJoined.Load() && p.live.Load() == 0 &&
				(next < len(pending) || inflight > 0) {
				if zeroSince.IsZero() {
					zeroSince = time.Now() //repcheck:allow-wallclock rejoin grace is a real-time liveness window
				} else if time.Since(zeroSince) >= p.cfg.RejoinGrace { //repcheck:allow-wallclock rejoin grace is a real-time liveness window
					last := p.lastFailure()
					if last == nil {
						last = errors.New("workers disconnected without reporting a failure")
					}
					failure = fmt.Errorf("runner: all workers left the pool with %d cells outstanding; last worker failure: %w",
						len(pending)-next+inflight, last)
				}
			} else {
				zeroSince = time.Time{}
			}
		}
	}
	if failure != nil {
		return grids, failure
	}
	if draining || abandoned {
		for _, r := range remaining {
			if r != 0 {
				return grids, ErrDrained
			}
		}
	}
	return grids, nil
}

// joinLoop serves worker-driven transports: every connection a worker
// establishes becomes a serving goroutine fed from the shared task queue —
// elastic membership, workers joining whenever they dial in.
func (p *Pool) joinLoop(joined <-chan Conn) {
	defer p.wg.Done()
	for {
		select {
		case c, ok := <-joined:
			if !ok {
				return
			}
			p.wg.Add(1)
			go p.connLoop(c)
		case <-p.stopCh:
			return
		}
	}
}

// connLoop serves one worker-driven connection until it fails or the pool
// closes. There is no respawn here: a remote worker that wants back in
// dials again (its own backoff), and the fresh connection gets a fresh
// connLoop.
func (p *Pool) connLoop(c Conn) {
	defer p.wg.Done()
	lc := newLiveConn(c)
	p.live.Add(1)
	p.everJoined.Store(true)
	orderly, err := p.serveConn(lc, nil, p.cfg.HeartbeatTimeout)
	if orderly {
		p.noteLeave(nil)
		lc.shutdown()
		return
	}
	p.noteLeave(err)
	lc.retire()
}

// slotLoop owns one pool-driven worker slot: it lazily connects (spawning
// a subprocess) when a task arrives, serves tasks until the connection
// fails, and reconnects for the next task after an exponential-backoff
// penalty — so a crash-looping worker binary cannot spin the coordinator.
// A spawn failure charges the waiting task one attempt, exactly like any
// other worker failure.
func (p *Pool) slotLoop() {
	defer p.wg.Done()
	bo := newBackoff(p.cfg.Backoff, p.cfg.uniform)
	for {
		var t poolTask
		select {
		case tt, ok := <-p.taskCh:
			if !ok {
				return
			}
			t = tt
		case <-p.stopCh:
			return
		}
		c, err := p.tr.Connect()
		if err != nil {
			t.done <- poolDone{t.specIdx, t.idx, t.attempt, nil, 0, fmt.Errorf("runner: spawning worker: %w", err)}
			p.cfg.sleep(bo.Next(), p.stopCh)
			continue
		}
		lc := newLiveConn(c)
		p.live.Add(1)
		p.everJoined.Store(true)
		orderly, serveErr := p.serveConn(lc, &t, 0)
		if orderly {
			p.noteLeave(nil)
			lc.shutdown()
			return
		}
		p.noteLeave(serveErr)
		lc.retire()
		if lc.served.Load() > 0 {
			// The binary did real work before dying: not a crash loop.
			bo.Reset()
		}
		p.cfg.sleep(bo.Next(), p.stopCh)
	}
}

// serveConn serves tasks on one connection until the pool closes (orderly
// == true; the caller shuts the connection down) or the connection fails
// (orderly == false with the reason; the caller retires it). first, if
// non-nil, is a task already pulled by the caller. idleTimeout, when
// positive, retires the connection if nothing — not even a heartbeat —
// arrives for that long while no cell is in flight.
func (p *Pool) serveConn(lc *liveConn, first *poolTask, idleTimeout time.Duration) (orderly bool, reason error) {
	spec := "" // name announced with the last SPEC line
	if first != nil {
		switch st, err := p.runTask(lc, &spec, *first); st {
		case taskConnDead:
			return false, err
		case taskPoolStopped:
			return true, nil
		}
	}
	var idleTickC <-chan time.Time
	if idleTimeout > 0 {
		interval := idleTimeout / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		idleTick := time.NewTicker(interval)
		defer idleTick.Stop()
		idleTickC = idleTick.C
	}
	for {
		select {
		case t, ok := <-p.taskCh:
			if !ok {
				return true, nil
			}
			switch st, err := p.runTask(lc, &spec, t); st {
			case taskConnDead:
				return false, err
			case taskPoolStopped:
				return true, nil
			}
		case r := <-lc.respCh:
			// A line with no cell in flight: a heartbeat is expected,
			// anything else means the peer is gone or off-protocol.
			if r.err != nil {
				return false, r.err
			}
			if r.msg.Hb {
				continue
			}
			return false, fmt.Errorf("runner: %s: unexpected response %q on an idle connection", lc.conn.Name(), r.raw)
		case <-idleTickC:
			if idle := time.Since(time.Unix(0, lc.lastRecv.Load())); idle > idleTimeout { //repcheck:allow-wallclock dead-peer detection is a real-time concern
				return false, fmt.Errorf("runner: %s: silent for %v on an idle connection (dead peer?)",
					lc.conn.Name(), idle.Round(time.Millisecond))
			}
		case <-p.stopCh:
			return true, nil
		}
	}
}

// taskStatus is one runTask outcome.
type taskStatus int

const (
	taskServed      taskStatus = iota // result or cell error reported; connection healthy
	taskConnDead                      // connection must be retired; task failure reported
	taskPoolStopped                   // pool is closing; task failure reported
)

// runTask runs one cell on the connection: announce the spec if it
// changed, send the index, wait for the response under the per-cell
// deadline. Every path reports the task's outcome to the coordinator
// before returning.
func (p *Pool) runTask(lc *liveConn, spec *string, t poolTask) (taskStatus, error) {
	fail := func(err error) {
		t.done <- poolDone{t.specIdx, t.idx, t.attempt, nil, 0, err}
	}
	if *spec != t.spec.Name {
		if err := lc.conn.WriteLine("SPEC " + t.spec.Name); err != nil {
			fail(err)
			return taskConnDead, err
		}
		*spec = t.spec.Name
	}
	if err := lc.conn.WriteLine(strconv.Itoa(t.idx)); err != nil {
		fail(err)
		return taskConnDead, err
	}
	deadline := p.track.Current()
	timer := time.NewTimer(deadline)
	defer timer.Stop()
	start := time.Now() //repcheck:allow-wallclock feeds the adaptive deadline tracker, never cell values
	for {
		select {
		case r := <-lc.respCh:
			if r.err != nil {
				err := fmt.Errorf("runner: worker died on cell %d: %w", t.idx, r.err)
				fail(err)
				return taskConnDead, err
			}
			if r.msg.Hb {
				continue // heartbeats may interleave with a slow cell
			}
			msg := r.msg
			if msg.Idx != t.idx {
				err := fmt.Errorf("runner: %s answered cell %d for cell %d", lc.conn.Name(), msg.Idx, t.idx)
				fail(err)
				return taskConnDead, err
			}
			if msg.Err != "" {
				// The worker is healthy; the cell itself failed. Keep the
				// connection, surface the error for the retry budget.
				fail(fmt.Errorf("%s", msg.Err))
				return taskServed, nil
			}
			if msg.Values == nil {
				err := fmt.Errorf("runner: empty worker result for cell %d", t.idx)
				fail(err)
				return taskConnDead, err
			}
			p.track.Observe(time.Since(start)) //repcheck:allow-wallclock feeds the adaptive deadline tracker, never cell values
			lc.served.Add(1)
			t.done <- poolDone{t.specIdx, t.idx, t.attempt, msg.Values, msg.Nanos, nil}
			return taskServed, nil
		case <-timer.C:
			err := fmt.Errorf("runner: %s: no response for spec %s cell %d within the %v deadline (wedged worker?)",
				lc.conn.Name(), t.spec.Name, t.idx, deadline.Round(time.Millisecond))
			fail(err)
			return taskConnDead, err
		case <-p.stopCh:
			fail(fmt.Errorf("runner: pool closed with cell %d in flight", t.idx))
			return taskPoolStopped, nil
		}
	}
}

// connResp is one parsed worker line (or the transport error that ended
// the stream).
type connResp struct {
	msg cellMsg
	raw string
	err error
}

// liveConn couples a Conn with the reader goroutine that turns its line
// stream into parsed responses — the shape that lets the serving goroutine
// select over responses, deadlines, heartbeat staleness, and pool shutdown
// at once.
type liveConn struct {
	conn     Conn
	respCh   chan connResp
	dead     chan struct{}
	deadOnce sync.Once
	lastRecv atomic.Int64 // unix nanos of the last received line
	served   atomic.Int64 // successfully served cells (backoff reset signal)
}

func newLiveConn(c Conn) *liveConn {
	lc := &liveConn{conn: c, respCh: make(chan connResp, 4), dead: make(chan struct{})}
	lc.lastRecv.Store(time.Now().UnixNano()) //repcheck:allow-wallclock liveness timestamp for dead-peer detection
	go lc.readLoop()
	return lc
}

// readLoop reads worker lines until the connection errors or is retired. A
// malformed line ends the stream: the worker is speaking garbage and the
// connection will be retired, so there is nothing left to parse.
func (lc *liveConn) readLoop() {
	for {
		line, err := lc.conn.ReadLine()
		if err != nil {
			lc.deliver(connResp{err: err})
			return
		}
		lc.lastRecv.Store(time.Now().UnixNano()) //repcheck:allow-wallclock liveness timestamp for dead-peer detection
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var msg cellMsg
		if jerr := json.Unmarshal([]byte(line), &msg); jerr != nil {
			lc.deliver(connResp{raw: line, err: fmt.Errorf("bad worker response %q: %w", line, jerr)})
			return
		}
		if !lc.deliver(connResp{msg: msg, raw: line}) {
			return
		}
	}
}

// deliver hands one response to the serving goroutine, giving up once the
// connection has been retired (nobody is listening anymore).
func (lc *liveConn) deliver(r connResp) bool {
	select {
	case lc.respCh <- r:
		return true
	case <-lc.dead:
		return false
	}
}

// retire tears the connection down on the error path.
func (lc *liveConn) retire() {
	lc.deadOnce.Do(func() { close(lc.dead) })
	lc.conn.Abort()
}

// shutdown closes the connection on the orderly path.
func (lc *liveConn) shutdown() {
	lc.deadOnce.Do(func() { close(lc.dead) })
	lc.conn.Shutdown()
}
