package runner

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
)

// DefaultCellRetries is how many times a cell is re-attempted after its
// first failure before the run is declared failed. A worker crash costs the
// in-flight cell one attempt; only a cell that keeps failing across fresh
// workers — a deterministic failure — exhausts the budget.
const DefaultCellRetries = 2

// Pool is a fault-tolerant worker-subprocess pool shared across specs.
//
// Unlike Procs, which spins a pool up and drains it for every figure, a Pool
// is created once for a whole selection: the same subprocesses serve cells
// from successive specs (the coordinator announces spec switches with a
// "SPEC <name>" protocol line), so workers stay busy across figure
// boundaries instead of idling while one figure's tail cells finish and the
// next figure's pool boots.
//
// The pool is also where failure is contained. When a worker process dies or
// answers out of protocol, the coordinator kills and reaps it, respawns a
// fresh process lazily, and requeues the in-flight cell; the grid only fails
// once a single cell has failed Retries+1 times — a deterministic failure —
// and the error names that cell. A cell-level error reported by a healthy
// worker (the cell function itself returned an error) is retried on the same
// budget without recycling the process.
type Pool struct {
	command func() (*exec.Cmd, error)
	retries int

	mu     sync.Mutex // serialises RunAll; a Pool runs one selection at a time
	taskCh chan poolTask
	wg     sync.WaitGroup
	closed bool
}

// poolTask is one cell assignment handed to a worker goroutine.
type poolTask struct {
	spec    *Spec
	specIdx int
	idx     int
	attempt int
	done    chan<- poolDone
}

// poolDone reports one attempt's outcome back to the coordinator.
type poolDone struct {
	specIdx int
	idx     int
	attempt int
	values  []float64
	nanos   int64
	err     error
}

// NewPool starts n worker goroutines (n < 1 means 1) that will lazily spawn
// subprocesses via command. retries is the per-cell re-attempt budget after
// the first failure; 0 selects DefaultCellRetries, negative disables
// requeueing — the same convention as Procs.Retries. Close the pool to shut
// the subprocesses down.
func NewPool(n, retries int, command func() (*exec.Cmd, error)) *Pool {
	if n < 1 {
		n = 1
	}
	switch {
	case retries == 0:
		retries = DefaultCellRetries
	case retries < 0:
		retries = 0
	}
	p := &Pool{
		command: command,
		retries: retries,
		taskCh:  make(chan poolTask),
	}
	p.wg.Add(n)
	for w := 0; w < n; w++ {
		go p.workerLoop()
	}
	return p
}

// Close shuts the pool down: workers close their subprocesses' stdin (the
// orderly-exit signal) and reap them. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	close(p.taskCh)
	p.wg.Wait()
}

// Run implements Exec for a single spec.
func (p *Pool) Run(s *Spec) (*Grid, error) {
	var out *Grid
	err := p.RunAll([]*Spec{s}, func(_ int, g *Grid) error {
		out = g
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RunAll evaluates every spec's grid on the shared pool, pipelining cells
// across spec boundaries: as soon as one spec's queue drains, workers pull
// cells of the next spec while the previous spec's tail cells are still in
// flight. emit is called once per spec, in spec order, as each grid
// completes (it may be nil). On failure the already-dispatched cells are
// drained before returning, so the pool stays usable for another RunAll.
func (p *Pool) RunAll(specs []*Spec, emit func(i int, g *Grid) error) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("runner: RunAll on a closed pool")
	}
	if p.command == nil {
		return fmt.Errorf("runner: pool without a worker command")
	}
	if len(specs) == 0 {
		return fmt.Errorf("runner: RunAll without specs")
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			return err
		}
		if strings.ContainsAny(s.Name, " \t\r\n") {
			return fmt.Errorf("runner: spec name %q cannot cross the worker protocol", s.Name)
		}
	}

	type queued struct{ specIdx, idx, attempt int }
	grids := make([]*Grid, len(specs))
	remaining := make([]int, len(specs))
	var pending []queued
	for i, s := range specs {
		grids[i] = NewGrid(s)
		remaining[i] = s.Cells()
		for c := 0; c < s.Cells(); c++ {
			pending = append(pending, queued{i, c, 0})
		}
	}
	done := make(chan poolDone, cap(pending))
	next := 0     // head of the pending queue (requeues are appended)
	inflight := 0 // tasks handed to workers and not yet answered
	emitted := 0  // specs whose grids have been emitted, in order
	var failure error

	maybeEmit := func() {
		for failure == nil && emitted < len(specs) && remaining[emitted] == 0 {
			if emit != nil {
				if err := emit(emitted, grids[emitted]); err != nil {
					failure = err
					return
				}
			}
			emitted++
		}
	}

	for {
		if inflight == 0 && (failure != nil || next >= len(pending)) {
			break
		}
		// Offer the next pending task and listen for completions at once;
		// with no pending task (or a doomed run) the nil channel leaves only
		// the drain case.
		var sendCh chan poolTask
		var t poolTask
		if failure == nil && next < len(pending) {
			q := pending[next]
			sendCh = p.taskCh
			t = poolTask{spec: specs[q.specIdx], specIdx: q.specIdx, idx: q.idx, attempt: q.attempt, done: done}
		}
		select {
		case sendCh <- t:
			next++
			inflight++
		case d := <-done:
			inflight--
			if failure != nil {
				continue // draining a doomed run; drop the result
			}
			if d.err != nil {
				if d.attempt >= p.retries {
					failure = fmt.Errorf("runner: spec %s cell %d failed after %d attempts: %w",
						specs[d.specIdx].Name, d.idx, d.attempt+1, d.err)
					continue
				}
				pending = append(pending, queued{d.specIdx, d.idx, d.attempt + 1})
				continue
			}
			if err := grids[d.specIdx].SetTimed(d.idx, d.values, d.nanos); err != nil {
				failure = err
				continue
			}
			remaining[d.specIdx]--
			maybeEmit()
		}
	}
	return failure
}

// workerLoop owns one worker slot: it lazily spawns a subprocess, feeds it
// tasks, and on any transport or protocol error kills and reaps the process
// so the next task gets a fresh one. On pool shutdown a live subprocess is
// closed via the orderly path (stdin EOF, then exactly one Wait).
func (p *Pool) workerLoop() {
	defer p.wg.Done()
	var w *procWorker
	defer func() {
		if w != nil {
			w.shutdown()
		}
	}()
	for t := range p.taskCh {
		if w == nil {
			nw, err := spawnWorker(p.command)
			if err != nil {
				t.done <- poolDone{t.specIdx, t.idx, t.attempt, nil, 0, fmt.Errorf("runner: spawning worker: %w", err)}
				continue
			}
			w = nw
		}
		values, nanos, cellErr, protoErr := w.eval(t.spec.Name, t.idx)
		switch {
		case protoErr != nil:
			// The process is gone or speaking garbage: recycle it. The cell
			// is requeued by the coordinator and will be served by a fresh
			// process (spawned on this slot's next task).
			w.kill()
			w = nil
			t.done <- poolDone{t.specIdx, t.idx, t.attempt, nil, 0, protoErr}
		case cellErr != nil:
			// The worker is healthy; the cell itself failed. Keep the
			// process, surface the error for the retry budget.
			t.done <- poolDone{t.specIdx, t.idx, t.attempt, nil, 0, cellErr}
		default:
			t.done <- poolDone{t.specIdx, t.idx, t.attempt, values, nanos, nil}
		}
	}
}

// procWorker is one live worker subprocess and the spec it is currently
// serving.
type procWorker struct {
	cmd   *exec.Cmd
	stdin io.WriteCloser
	rd    *bufio.Reader
	spec  string // name of the spec last announced with a SPEC line
}

func spawnWorker(command func() (*exec.Cmd, error)) (*procWorker, error) {
	cmd, err := command()
	if err != nil {
		return nil, err
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	return &procWorker{cmd: cmd, stdin: stdin, rd: bufio.NewReader(stdout)}, nil
}

// eval runs one cell on the worker: announce the spec if it changed, send
// the index, read the one-line reply. cellErr is a failure of the cell
// function on a healthy worker; protoErr means the process must be
// recycled.
func (w *procWorker) eval(specName string, idx int) (values []float64, nanos int64, cellErr, protoErr error) {
	if w.spec != specName {
		if _, err := fmt.Fprintf(w.stdin, "SPEC %s\n", specName); err != nil {
			return nil, 0, nil, fmt.Errorf("runner: worker write: %w", err)
		}
		w.spec = specName
	}
	if _, err := fmt.Fprintf(w.stdin, "%d\n", idx); err != nil {
		return nil, 0, nil, fmt.Errorf("runner: worker write: %w", err)
	}
	line, err := w.rd.ReadString('\n')
	if err != nil {
		return nil, 0, nil, fmt.Errorf("runner: worker died on cell %d: %w", idx, err)
	}
	var msg cellMsg
	if err := json.Unmarshal([]byte(line), &msg); err != nil {
		return nil, 0, nil, fmt.Errorf("runner: bad worker response %q: %w", strings.TrimSpace(line), err)
	}
	if msg.Idx != idx {
		return nil, 0, nil, fmt.Errorf("runner: worker answered cell %d for cell %d", msg.Idx, idx)
	}
	if msg.Err != "" {
		return nil, 0, fmt.Errorf("%s", msg.Err), nil
	}
	if msg.Values == nil {
		return nil, 0, nil, fmt.Errorf("runner: empty worker result for cell %d", idx)
	}
	return msg.Values, msg.Nanos, nil, nil
}

// kill tears down a failed worker: the process is killed and reaped so the
// slot can respawn. Wait runs exactly once per process — here on the error
// path, or in shutdown on the orderly path.
func (w *procWorker) kill() {
	w.stdin.Close()
	w.cmd.Process.Kill()
	w.cmd.Wait()
}

// shutdown closes the worker via the orderly path: stdin EOF tells the
// subprocess to exit, then one Wait reaps it. The process is not killed —
// Kill is reserved for the error path.
func (w *procWorker) shutdown() error {
	w.stdin.Close()
	return w.cmd.Wait()
}

// DieAfterWriter forwards writes and exits the process once Lines response
// lines have been written — the deterministic stand-in for a worker crash
// mid-grid shared by the runner's fault-injection tests and `figures
// -faultinject`. Exiting right after a completed response line means the
// coordinator receives that cell's result and the *next* assignment hits
// the dead pipe, exercising the requeue path at a known cell.
type DieAfterWriter struct {
	W     io.Writer
	Lines int
}

func (d *DieAfterWriter) Write(p []byte) (int, error) {
	n, err := d.W.Write(p)
	for _, b := range p[:n] {
		if b == '\n' {
			d.Lines--
			if d.Lines <= 0 {
				fmt.Fprintln(os.Stderr, "runner: fault injection, worker exiting after response")
				os.Exit(1)
			}
		}
	}
	return n, err
}

// ServePool runs the multi-spec worker half of the pool protocol: lines on
// r are either "SPEC <name>" — switch to serving the named spec, built via
// build — or a decimal cell index for the current spec. One JSON result line
// per cell goes to w, carrying the cell's wall-clock nanoseconds so the
// coordinator can balance future shard assignments by measured cost.
// initial, if non-nil, is the spec served before any SPEC line (the
// single-spec compatibility mode).
func ServePool(initial *Spec, build func(name string) (*Spec, error), r io.Reader, w io.Writer) error {
	cur := initial
	if cur != nil {
		if err := cur.Validate(); err != nil {
			return err
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if name, ok := strings.CutPrefix(line, "SPEC "); ok {
			name = strings.TrimSpace(name)
			if cur != nil && cur.Name == name {
				continue
			}
			s, err := build(name)
			if err != nil {
				return err
			}
			if err := s.Validate(); err != nil {
				return err
			}
			cur = s
			continue
		}
		if cur == nil {
			return fmt.Errorf("runner: cell assignment %q before any SPEC line", line)
		}
		msg, err := serveCell(cur, line)
		if err != nil {
			return err
		}
		if err := enc.Encode(msg); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
	}
	return sc.Err()
}
