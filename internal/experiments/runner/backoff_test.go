package runner

import (
	"testing"
	"time"
)

func TestBackoffScheduleDeterministic(t *testing.T) {
	bo := newBackoff(BackoffConfig{Base: 100 * time.Millisecond, Max: time.Second, Jitter: -1}, nil)
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second, // stays capped
	}
	for i, w := range want {
		if got := bo.Next(); got != w {
			t.Errorf("attempt %d: got %v, want %v", i, got, w)
		}
	}
	bo.Reset()
	if got := bo.Next(); got != 100*time.Millisecond {
		t.Errorf("after Reset: got %v, want %v", got, 100*time.Millisecond)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	// Jitter j maps a delay d to d·(1 − j/2 + j·u): u=0 is the −25% edge,
	// u=0.5 the nominal value, u→1 the +25% edge (for the default j=0.5).
	cases := []struct {
		uniform float64
		want    time.Duration
	}{
		{0, 75 * time.Millisecond},
		{0.5, 100 * time.Millisecond},
		{1, 125 * time.Millisecond},
	}
	for _, c := range cases {
		bo := newBackoff(BackoffConfig{Base: 100 * time.Millisecond, Jitter: 0.5},
			func() float64 { return c.uniform })
		if got := bo.Next(); got != c.want {
			t.Errorf("uniform %v: got %v, want %v", c.uniform, got, c.want)
		}
	}
}

func TestDeadlineTrackerBootstrapThenAdaptive(t *testing.T) {
	tr := newDeadlineTracker(DeadlineConfig{Floor: 50 * time.Millisecond, Mult: 10})
	if got := tr.Current(); got != deadlineBootstrap {
		t.Fatalf("no observations: got %v, want bootstrap %v", got, deadlineBootstrap)
	}
	for i := 0; i < deadlineMinObs-1; i++ {
		tr.Observe(10 * time.Millisecond)
	}
	if got := tr.Current(); got != deadlineBootstrap {
		t.Fatalf("%d observations: got %v, still want bootstrap", deadlineMinObs-1, got)
	}
	tr.Observe(20 * time.Millisecond)
	// p95 of [10,10,10,10,20]ms by nearest rank is 20ms; ×10 = 200ms.
	if got := tr.Current(); got != 200*time.Millisecond {
		t.Fatalf("adaptive deadline: got %v, want 200ms", got)
	}
}

func TestDeadlineTrackerFloor(t *testing.T) {
	tr := newDeadlineTracker(DeadlineConfig{Floor: time.Second, Mult: 10})
	for i := 0; i < 10; i++ {
		tr.Observe(time.Millisecond)
	}
	if got := tr.Current(); got != time.Second {
		t.Fatalf("fast cells: got %v, want the %v floor", got, time.Second)
	}
}

func TestDeadlineTrackerFixedOverride(t *testing.T) {
	tr := newDeadlineTracker(DeadlineConfig{Fixed: 42 * time.Millisecond})
	if got := tr.Current(); got != 42*time.Millisecond {
		t.Fatalf("fixed, no observations: got %v", got)
	}
	for i := 0; i < 20; i++ {
		tr.Observe(time.Duration(i) * time.Second)
	}
	if got := tr.Current(); got != 42*time.Millisecond {
		t.Fatalf("fixed with observations: got %v", got)
	}
}

// TestDeadlineTrackerSlidingWindow: the sample is bounded at
// deadlineWindow entries and old observations are evicted, so the p95
// follows a cost shift instead of being anchored by early cheap cells.
func TestDeadlineTrackerSlidingWindow(t *testing.T) {
	tr := newDeadlineTracker(DeadlineConfig{Floor: 1, Mult: 1})
	for i := 0; i < deadlineWindow; i++ {
		tr.Observe(10 * time.Millisecond)
	}
	if got := tr.Observations(); got != deadlineWindow {
		t.Fatalf("full window: %d observations, want %d", got, deadlineWindow)
	}
	if got := tr.Current(); got != 10*time.Millisecond {
		t.Fatalf("uniform window: deadline %v, want 10ms", got)
	}
	// A full window of slower cells must displace every old observation.
	for i := 0; i < deadlineWindow; i++ {
		tr.Observe(20 * time.Millisecond)
	}
	if got := tr.Observations(); got != deadlineWindow {
		t.Fatalf("after eviction: %d observations, want %d", got, deadlineWindow)
	}
	if got := tr.Current(); got != 20*time.Millisecond {
		t.Fatalf("shifted window: deadline %v, want 20ms", got)
	}
}

// BenchmarkDeadlineTracker measures the coordinator-side cost added to
// every completed cell: one sorted insert plus one p95 read, both bounded
// by the sliding window.
func BenchmarkDeadlineTracker(b *testing.B) {
	tr := newDeadlineTracker(DeadlineConfig{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Observe(time.Duration(i%1000) * time.Microsecond)
		_ = tr.Current()
	}
}
