package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/trace"
)

// fakeConn is an in-memory Conn scripted by a worker goroutine — the
// harness for protocol-robustness tests, where the "worker" misbehaves in
// precisely controlled ways (garbage lines, truncated output, wrong cell
// ids) without subprocesses or sockets.
type fakeConn struct {
	in      chan string // coordinator → worker assignment lines
	out     chan string // worker → coordinator response lines
	closed  chan struct{}
	once    sync.Once
	outOnce sync.Once
}

func newFakeConn() *fakeConn {
	return &fakeConn{
		in:     make(chan string, 64),
		out:    make(chan string, 64),
		closed: make(chan struct{}),
	}
}

func (c *fakeConn) WriteLine(l string) error {
	select {
	case c.in <- l:
		return nil
	case <-c.closed:
		return io.ErrClosedPipe
	}
}

func (c *fakeConn) ReadLine() (string, error) {
	select {
	case l, ok := <-c.out:
		if !ok {
			return "", io.EOF
		}
		return l, nil
	case <-c.closed:
		return "", io.EOF
	}
}

func (c *fakeConn) Abort()          { c.once.Do(func() { close(c.closed) }) }
func (c *fakeConn) Shutdown() error { c.Abort(); return nil }
func (c *fakeConn) Name() string    { return "fake worker" }

// closeOut simulates the worker's side of the stream ending (EOF at the
// coordinator) without tearing the whole conn down.
func (c *fakeConn) closeOut() { c.outOnce.Do(func() { close(c.out) }) }

// scriptedConn starts a worker goroutine serving spec s on a fresh conn.
// mangle, if non-nil, sees each healthy JSON response with its 0-based
// response count and returns the line to actually send (empty = send
// nothing) and whether to keep serving (false = EOF after this line).
func scriptedConn(s *Spec, mangle func(n int, line string) (string, bool)) *fakeConn {
	c := newFakeConn()
	go func() {
		n := 0
		for {
			var line string
			select {
			case line = <-c.in:
			case <-c.closed:
				return
			}
			if strings.HasPrefix(line, "SPEC ") || line == protoBye {
				continue
			}
			msg, err := serveCell(s, line)
			if err != nil {
				return
			}
			b, _ := json.Marshal(msg)
			out, keep := string(b), true
			if mangle != nil {
				out, keep = mangle(n, out)
			}
			n++
			if out != "" {
				select {
				case c.out <- out:
				case <-c.closed:
					return
				}
			}
			if !keep {
				c.closeOut()
				return
			}
		}
	}()
	return c
}

// fakeTransport is a pool-driven transport whose Connect returns scripted
// conns: the queued ones first, then fresh healthy ones.
type fakeTransport struct {
	n    int
	spec *Spec

	mu     sync.Mutex
	queue  []func() *fakeConn
	dialed int
}

func (t *fakeTransport) Slots() int {
	if t.n < 1 {
		return 1
	}
	return t.n
}

func (t *fakeTransport) Connect() (Conn, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dialed++
	if len(t.queue) > 0 {
		f := t.queue[0]
		t.queue = t.queue[1:]
		return f(), nil
	}
	return scriptedConn(t.spec, nil), nil
}

func (t *fakeTransport) Joined() <-chan Conn { return nil }
func (t *fakeTransport) Close() error        { return nil }

// fastCfg keeps robustness tests quick: no real backoff sleeps, a firm
// fixed deadline instead of the 10-minute bootstrap.
func fastCfg() Config {
	return Config{
		Deadline: DeadlineConfig{Fixed: 5 * time.Second},
		Backoff:  BackoffConfig{Base: time.Millisecond, Max: time.Millisecond, Jitter: -1},
	}
}

// runFaulty evaluates the spec on a single-slot pool whose first connection
// misbehaves per mangle, and requires the final table to match a Local run
// — the faulty worker must cost retries, never correctness.
func runFaulty(t *testing.T, s *Spec, mangle func(n int, line string) (string, bool)) {
	t.Helper()
	tr := &fakeTransport{n: 1, spec: s,
		queue: []func() *fakeConn{func() *fakeConn { return scriptedConn(s, mangle) }}}
	pool := NewPoolTransport(tr, fastCfg())
	defer pool.Close()
	g, err := pool.Run(s)
	if err != nil {
		t.Fatalf("pooled run with faulty worker: %v", err)
	}
	got, err := Reduce(s, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("faulty-worker run diverged from Local:\ngot  %+v\nwant %+v", got, want)
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.dialed < 2 {
		t.Fatalf("expected the faulty worker to be replaced, dialed %d conns", tr.dialed)
	}
}

// TestPoolSurvivesGarbageResponse: a worker answering with a line no JSON
// decoder accepts is retired and its cell requeued on a fresh worker;
// later cells are not poisoned.
func TestPoolSurvivesGarbageResponse(t *testing.T) {
	s := namedSpec(t, "grid-2x2x1")
	runFaulty(t, s, func(n int, line string) (string, bool) {
		if n == 1 {
			return "!!not json!!", true
		}
		return line, true
	})
}

// TestPoolSurvivesTruncatedResponse: a connection dying mid-line (the
// truncated JSON a crash or network drop leaves behind) routes the
// in-flight cell to requeue.
func TestPoolSurvivesTruncatedResponse(t *testing.T) {
	s := namedSpec(t, "grid-2x2x1")
	runFaulty(t, s, func(n int, line string) (string, bool) {
		if n == 1 {
			return line[:len(line)/2], false // half a response, then EOF
		}
		return line, true
	})
}

// TestPoolSurvivesWrongCellID: a worker answering some other cell's id is
// off-protocol; trusting the id would poison two cells at once, so the
// conn is retired and the in-flight cell requeued.
func TestPoolSurvivesWrongCellID(t *testing.T) {
	s := namedSpec(t, "grid-2x2x1")
	runFaulty(t, s, func(n int, line string) (string, bool) {
		if n == 1 {
			var msg cellMsg
			if err := json.Unmarshal([]byte(line), &msg); err != nil {
				t.Errorf("scripted worker built unparseable line %q", line)
			}
			msg.Idx = (msg.Idx + 1) % s.Cells() // in range, but not the asked cell
			b, _ := json.Marshal(msg)
			return string(b), true
		}
		return line, true
	})
}

// TestPoolSurvivesSilentEOF: a worker that reads an assignment and drops
// the connection without a byte of response (the disconnect fault).
func TestPoolSurvivesSilentEOF(t *testing.T) {
	s := namedSpec(t, "grid-2x2x1")
	runFaulty(t, s, func(n int, line string) (string, bool) {
		if n == 1 {
			return "", false
		}
		return line, true
	})
}

// TestPoolDeadlineConvertsWedgedConn: a worker that stays connected but
// never answers is converted into retire+requeue by the response deadline
// rather than hanging the run.
func TestPoolDeadlineConvertsWedgedConn(t *testing.T) {
	s := namedSpec(t, "grid-2x2x1")
	wedged := func() *fakeConn {
		c := newFakeConn()
		go func() {
			for {
				select {
				case <-c.in: // swallow assignments, answer nothing
				case <-c.closed:
					return
				}
			}
		}()
		return c
	}
	cfg := fastCfg()
	cfg.Deadline = DeadlineConfig{Fixed: 50 * time.Millisecond}
	tr := &fakeTransport{n: 1, spec: s, queue: []func() *fakeConn{wedged}}
	pool := NewPoolTransport(tr, cfg)
	defer pool.Close()
	start := time.Now()
	g, err := pool.Run(s)
	if err != nil {
		t.Fatalf("run with wedged worker: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to fire", elapsed)
	}
	got, err := Reduce(s, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("wedged-worker run diverged from Local")
	}
}

// TestPoolRespawnBackoffSchedule pins the respawn pacing: a connection
// that dies instantly on every attempt is retried on the exponential
// schedule, and the run fails only after the cell's retry budget.
func TestPoolRespawnBackoffSchedule(t *testing.T) {
	s := namedSpec(t, "grid-1x1x1")
	var mu sync.Mutex
	var slept []time.Duration
	cfg := Config{
		Retries:  3,
		Deadline: DeadlineConfig{Fixed: 5 * time.Second},
		Backoff:  BackoffConfig{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1},
		sleep: func(d time.Duration, cancel <-chan struct{}) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	}
	dead := func() *fakeConn {
		c := newFakeConn()
		c.closeOut() // EOF on first read; never serves a cell
		return c
	}
	tr := &fakeTransport{n: 1, spec: s, queue: []func() *fakeConn{dead, dead, dead, dead}}
	pool := NewPoolTransport(tr, cfg)
	defer pool.Close()
	_, err := pool.Run(s)
	if err == nil || !strings.Contains(err.Error(), "after 4 attempts") {
		t.Fatalf("got %v, want a 4-attempt cell failure", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 80 * time.Millisecond}
	if !reflect.DeepEqual(slept, want) {
		t.Fatalf("respawn sleeps %v, want the exponential schedule %v", slept, want)
	}
}

// TestPoolBackoffResetsAfterHealthyCell: a worker that served a cell
// before dying is not a crash loop, so the streak resets and every respawn
// waits only the base delay.
func TestPoolBackoffResetsAfterHealthyCell(t *testing.T) {
	s := namedSpec(t, "grid-4x1x1")
	var mu sync.Mutex
	var slept []time.Duration
	cfg := Config{
		Deadline: DeadlineConfig{Fixed: 5 * time.Second},
		Backoff:  BackoffConfig{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1},
		sleep: func(d time.Duration, cancel <-chan struct{}) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	}
	oneCell := func() *fakeConn {
		return scriptedConn(s, func(n int, line string) (string, bool) {
			return line, n < 0 // serve exactly one response, then EOF
		})
	}
	tr := &fakeTransport{n: 1, spec: s,
		queue: []func() *fakeConn{oneCell, oneCell, oneCell, oneCell}}
	pool := NewPoolTransport(tr, cfg)
	defer pool.Close()
	if _, err := pool.Run(s); err != nil {
		t.Fatalf("run with one-cell workers: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) == 0 {
		t.Fatal("expected at least one respawn sleep")
	}
	for i, d := range slept {
		if d != 10*time.Millisecond {
			t.Fatalf("sleep %d was %v; healthy workers must reset the streak to the 10ms base (all: %v)", i, d, slept)
		}
	}
}

// errConnTransport fails Connect itself a fixed number of times before
// handing out healthy conns.
type errConnTransport struct {
	fakeTransport
	fails int
}

func (t *errConnTransport) Connect() (Conn, error) {
	t.mu.Lock()
	if t.fails > 0 {
		t.fails--
		t.mu.Unlock()
		return nil, fmt.Errorf("simulated spawn failure")
	}
	t.mu.Unlock()
	return t.fakeTransport.Connect()
}

// TestPoolSpawnFailureBacksOff: failing to establish the connection at all
// (spawn failure) charges the waiting cell an attempt and paces the retry.
func TestPoolSpawnFailureBacksOff(t *testing.T) {
	s := namedSpec(t, "grid-1x1x1")
	var mu sync.Mutex
	var slept []time.Duration
	cfg := fastCfg()
	cfg.Backoff = BackoffConfig{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}
	cfg.sleep = func(d time.Duration, cancel <-chan struct{}) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	tr := &errConnTransport{fakeTransport: fakeTransport{n: 1, spec: s}, fails: 2}
	pool := NewPoolTransport(tr, cfg)
	defer pool.Close()
	if _, err := pool.Run(s); err != nil {
		t.Fatalf("run after spawn failures: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if !reflect.DeepEqual(slept, want) {
		t.Fatalf("spawn-failure sleeps %v, want %v", slept, want)
	}
}

// TestGridDrainRoundTrip drains a run mid-flight and finishes it from the
// persisted partial: drain + resume must reproduce the uninterrupted
// output exactly.
func TestGridDrainRoundTrip(t *testing.T) {
	s := namedSpec(t, "grid-4x3x1") // 12 cells
	var pool *Pool
	slow := func() *fakeConn {
		return scriptedConn(s, func(n int, line string) (string, bool) {
			if n == 2 {
				pool.Drain() // sticky; fires while cells remain unfed
			}
			if n >= 2 {
				time.Sleep(50 * time.Millisecond) // let the drain win the race
			}
			return line, true
		})
	}
	cfg := fastCfg()
	tr := &fakeTransport{n: 1, spec: s, queue: []func() *fakeConn{slow}}
	pool = NewPoolTransport(tr, cfg)
	defer pool.Close()
	grids, err := pool.RunAllGrids([]*Spec{s}, nil)
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("got %v, want ErrDrained", err)
	}
	p := grids[0].Partial(1, false, 0, 0)
	if len(p.Results) == 0 || len(p.Results) == s.Cells() {
		t.Fatalf("drain left %d of %d cells — expected a strict subset", len(p.Results), s.Cells())
	}

	// Resume: evaluate exactly the missing cells, merge, compare to Local.
	missing := p.MissingCells()
	if len(missing)+len(p.Results) != s.Cells() {
		t.Fatalf("MissingCells reported %d, results %d, grid %d", len(missing), len(p.Results), s.Cells())
	}
	g2, err := CellSet{Idxs: missing}.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := trace.MergePartials(p, g2.Partial(1, false, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	full, err := FromPartial(s, merged)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reduce(s, full)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("drain+resume output diverged from the uninterrupted run")
	}
}

// TestPoolDrainTimeoutAbandonsWedgedCell: a drain with a worker that never
// answers its in-flight cell must still return within the drain deadline.
func TestPoolDrainTimeoutAbandonsWedgedCell(t *testing.T) {
	s := namedSpec(t, "grid-4x1x1")
	var pool *Pool
	wedgeAfter := func() *fakeConn {
		return scriptedConn(s, func(n int, line string) (string, bool) {
			if n == 1 {
				pool.Drain()
				return "", true // swallow this response; the cell stays in flight
			}
			return line, true
		})
	}
	cfg := fastCfg()
	cfg.DrainTimeout = 100 * time.Millisecond
	tr := &fakeTransport{n: 1, spec: s, queue: []func() *fakeConn{wedgeAfter}}
	pool = NewPoolTransport(tr, cfg)
	defer pool.Close()
	start := time.Now()
	grids, err := pool.RunAllGrids([]*Spec{s}, nil)
	if !errors.Is(err, ErrDrained) {
		t.Fatalf("got %v, want ErrDrained", err)
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("drain with a wedged in-flight cell took %v", elapsed)
	}
	if got := len(grids[0].Partial(1, false, 0, 0).Results); got == 0 || got >= s.Cells() {
		t.Fatalf("drained grid has %d of %d cells", got, s.Cells())
	}
}
