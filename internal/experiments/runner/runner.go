// Package runner executes declarative experiment specifications.
//
// A Spec describes one experiment — a figure, ablation, or scenario sweep —
// as a flat grid of independent cells indexed by (x-position, variant, run).
// Every cell derives its randomness from the experiment seed and its own
// coordinates, so cells can be evaluated in any order, by any number of
// goroutines, worker processes, or machines, and still produce bit-identical
// results. A Reduce step folds the completed grid into a trace.Table; it only
// ever reads the finished grid, so the emitted table is independent of the
// execution schedule.
//
// Execution goes through a pluggable Exec backend:
//
//   - Local runs cells on a bounded worker pool inside the current process.
//   - Pool shares one set of worker subprocesses (cmd/figures -worker)
//     across a whole multi-spec selection, streaming cell assignments over
//     pipes; a crashed worker is respawned and its in-flight cell requeued.
//   - Procs is the single-spec convenience over Pool.
//   - Shard evaluates a deterministic subset of the grid, for multi-machine
//     runs whose partial results are merged later (trace.MergePartials);
//     CellSet evaluates an explicit cell list, for timing-balanced plans
//     (trace.PlanShards).
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Spec is the declarative description of one experiment: the grid dimensions,
// the pure cell function, and the reduction into a table.
type Spec struct {
	// Name identifies the spec across processes: a worker subprocess
	// rebuilds the spec from this name (and the experiment options), so it
	// must be stable and unique within the registry that serves it.
	Name string
	// Xs, Variants, Runs are the grid dimensions. A cell exists for every
	// (xi, vi, run) with xi < Xs, vi < Variants, run < Runs. Experiments
	// without a natural axis use a dimension of 1.
	Xs, Variants, Runs int
	// Cell evaluates one grid cell. It must be deterministic in its
	// coordinates (all randomness derived from the experiment seed and
	// (xi, vi, run)) and free of shared mutable state: cells run
	// concurrently and possibly in different processes.
	Cell func(xi, vi, run int) ([]float64, error)
	// Reduce folds a complete grid into the experiment's table. It runs
	// once, after every cell finished, and must depend only on the grid
	// contents — never on evaluation order or timing.
	Reduce func(g *Grid) (*trace.Table, error)
}

// Validate checks the spec is well-formed.
func (s *Spec) Validate() error {
	if s == nil {
		return fmt.Errorf("runner: nil spec")
	}
	if s.Name == "" {
		return fmt.Errorf("runner: spec without a name")
	}
	if s.Xs <= 0 || s.Variants <= 0 || s.Runs <= 0 {
		return fmt.Errorf("runner: spec %s has degenerate grid %dx%dx%d", s.Name, s.Xs, s.Variants, s.Runs)
	}
	if s.Cell == nil || s.Reduce == nil {
		return fmt.Errorf("runner: spec %s missing cell or reduce", s.Name)
	}
	return nil
}

// Cells returns the total number of grid cells.
func (s *Spec) Cells() int { return s.Xs * s.Variants * s.Runs }

// Index flattens grid coordinates into a cell index.
func (s *Spec) Index(xi, vi, run int) int {
	return (xi*s.Variants+vi)*s.Runs + run
}

// Coords inverts Index.
func (s *Spec) Coords(idx int) (xi, vi, run int) {
	run = idx % s.Runs
	idx /= s.Runs
	return idx / s.Variants, idx % s.Variants, run
}

// Grid holds cell results. A nil entry is a cell that has not been evaluated
// (shard runs produce deliberately incomplete grids). Alongside each result
// the grid records the cell's evaluation wall-clock, which rides along in
// partial files so shard assignments can be balanced by measured cost; the
// timings never reach the reduced table.
type Grid struct {
	spec  *Spec
	cells [][]float64
	nanos []int64
}

// NewGrid returns an empty grid for the spec.
func NewGrid(s *Spec) *Grid {
	return &Grid{spec: s, cells: make([][]float64, s.Cells()), nanos: make([]int64, s.Cells())}
}

// Spec returns the spec the grid belongs to.
func (g *Grid) Spec() *Spec { return g.spec }

// Set stores a cell result by flat index.
func (g *Grid) Set(idx int, values []float64) error {
	return g.SetTimed(idx, values, 0)
}

// SetTimed stores a cell result and its evaluation wall-clock.
func (g *Grid) SetTimed(idx int, values []float64, nanos int64) error {
	if idx < 0 || idx >= len(g.cells) {
		return fmt.Errorf("runner: cell index %d outside grid of %d cells", idx, len(g.cells))
	}
	if values == nil {
		return fmt.Errorf("runner: nil result for cell %d", idx)
	}
	g.cells[idx] = values
	g.nanos[idx] = nanos
	return nil
}

// Nanos returns the recorded evaluation wall-clock of one cell (0 if the
// cell is missing or was stored untimed).
func (g *Grid) Nanos(idx int) int64 { return g.nanos[idx] }

// Cell returns the result of one cell (nil if missing).
func (g *Grid) Cell(xi, vi, run int) []float64 {
	return g.cells[g.spec.Index(xi, vi, run)]
}

// Value returns the first (usually only) value of a cell.
func (g *Grid) Value(xi, vi, run int) float64 {
	return g.Cell(xi, vi, run)[0]
}

// Runs gathers the first value of every run of one (x, variant) pair, in run
// order — the sample the sweep figures average.
func (g *Grid) Runs(xi, vi int) []float64 {
	return g.RunsAt(xi, vi, 0)
}

// RunsAt gathers component j of every run of one (x, variant) pair, in run
// order, for cells that return several values (cost breakdowns, paired
// algorithm totals).
func (g *Grid) RunsAt(xi, vi, j int) []float64 {
	out := make([]float64, g.spec.Runs)
	for run := 0; run < g.spec.Runs; run++ {
		out[run] = g.Cell(xi, vi, run)[j]
	}
	return out
}

// Complete reports an error naming the first missing cell, if any.
func (g *Grid) Complete() error {
	for idx, c := range g.cells {
		if c == nil {
			xi, vi, run := g.spec.Coords(idx)
			return fmt.Errorf("runner: spec %s missing cell %d (x=%d variant=%d run=%d)",
				g.spec.Name, idx, xi, vi, run)
		}
	}
	return nil
}

// Partial converts the grid's evaluated cells into a mergeable partial
// result. seed and quick record the experiment options the cells were
// evaluated under; shard/shards record provenance for diagnostics.
func (g *Grid) Partial(seed int64, quick bool, shard, shards int) *trace.Partial {
	p := &trace.Partial{
		Figure: g.spec.Name,
		Seed:   seed,
		Quick:  quick,
		Cells:  g.spec.Cells(),
		Shard:  shard,
		Shards: shards,
	}
	for idx, c := range g.cells {
		if c != nil {
			p.Results = append(p.Results, trace.CellResult{Idx: idx, Values: c, Nanos: g.nanos[idx]})
		}
	}
	return p
}

// FromPartial rebuilds a grid from a partial result. The partial must belong
// to the spec (same name and grid size).
func FromPartial(s *Spec, p *trace.Partial) (*Grid, error) {
	if p.Figure != s.Name {
		return nil, fmt.Errorf("runner: partial for %q cannot fill spec %q", p.Figure, s.Name)
	}
	if p.Cells != s.Cells() {
		return nil, fmt.Errorf("runner: partial has %d cells, spec %s has %d", p.Cells, s.Name, s.Cells())
	}
	g := NewGrid(s)
	for _, r := range p.Results {
		if err := g.SetTimed(r.Idx, r.Values, r.Nanos); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Exec evaluates a spec's cells and returns the (possibly partial) grid.
type Exec interface {
	Run(s *Spec) (*Grid, error)
}

// Run executes the spec on the backend (Local by default), checks the grid
// is complete, and reduces it to the experiment's table.
func Run(s *Spec, e Exec) (*trace.Table, error) {
	if e == nil {
		e = Local{}
	}
	g, err := Collect(s, e)
	if err != nil {
		return nil, err
	}
	return Reduce(s, g)
}

// Collect executes the spec on the backend and checks every cell was
// evaluated, without reducing — for callers that read the raw grid.
func Collect(s *Spec, e Exec) (*Grid, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if e == nil {
		e = Local{}
	}
	g, err := e.Run(s)
	if err != nil {
		return nil, err
	}
	if err := g.Complete(); err != nil {
		return nil, err
	}
	return g, nil
}

// Reduce folds a complete grid into the spec's table.
func Reduce(s *Spec, g *Grid) (*trace.Table, error) {
	if err := g.Complete(); err != nil {
		return nil, err
	}
	return s.Reduce(g)
}

// Local evaluates cells on a bounded worker pool in the current process.
type Local struct {
	// Workers bounds the number of concurrently evaluating goroutines;
	// 0 selects GOMAXPROCS. At most Workers goroutines are ever started —
	// cells queue, they do not each get a goroutine.
	Workers int
}

// Run implements Exec.
func (l Local) Run(s *Spec) (*Grid, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	idxs := make([]int, s.Cells())
	for i := range idxs {
		idxs[i] = i
	}
	return runCells(s, idxs, l.Workers)
}

// runCells evaluates the given cells with at most `workers` goroutines and
// stores the results by index. After any cell fails, still-queued cells are
// skipped — the grid is doomed anyway, and a paper-scale grid would
// otherwise burn minutes of compute before reporting. The lowest-indexed
// recorded error wins the report.
func runCells(s *Spec, idxs []int, workers int) (*Grid, error) {
	g := NewGrid(s)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(idxs) {
		workers = len(idxs)
	}
	errs := make([]error, s.Cells())
	var failed atomic.Bool
	eval := func(idx int) {
		if failed.Load() {
			return
		}
		xi, vi, run := s.Coords(idx)
		start := time.Now() //repcheck:allow-wallclock per-cell timing is diagnostic metadata, not a result value
		v, err := s.Cell(xi, vi, run)
		if err != nil {
			errs[idx] = err
			failed.Store(true)
			return
		}
		if v == nil {
			errs[idx] = fmt.Errorf("runner: spec %s cell %d returned no values", s.Name, idx)
			failed.Store(true)
			return
		}
		g.cells[idx] = v
		g.nanos[idx] = time.Since(start).Nanoseconds() //repcheck:allow-wallclock per-cell timing is diagnostic metadata, not a result value
	}
	if workers <= 1 {
		for _, idx := range idxs {
			eval(idx)
		}
	} else {
		ch := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for idx := range ch {
					eval(idx)
				}
			}()
		}
		for _, idx := range idxs {
			ch <- idx
		}
		close(ch)
		wg.Wait()
	}
	for _, idx := range idxs {
		if errs[idx] != nil {
			xi, vi, run := s.Coords(idx)
			return nil, fmt.Errorf("runner: spec %s cell (x=%d variant=%d run=%d): %w",
				s.Name, xi, vi, run, errs[idx])
		}
	}
	return g, nil
}

// Shard evaluates the deterministic 1-based Index-th of Total slices of the
// grid (cells whose flat index is congruent to Index-1 modulo Total) on a
// Local pool. The resulting grid is incomplete by design; convert it with
// Grid.Partial, persist it, and merge the shards' partials later.
type Shard struct {
	Index, Total int
	// Workers bounds the local pool, as in Local.
	Workers int
}

// Run implements Exec.
func (sh Shard) Run(s *Spec) (*Grid, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	idxs, err := ShardCells(s.Cells(), sh.Index, sh.Total)
	if err != nil {
		return nil, err
	}
	return runCells(s, idxs, sh.Workers)
}

// ShardCells returns the flat cell indexes of the 1-based index-th of
// total modulo shards over a grid of cells cells — the one slicing rule
// Shard and the pooled shard path share, so both cover the same cells.
func ShardCells(cells, index, total int) ([]int, error) {
	if total <= 0 || index < 1 || index > total {
		return nil, fmt.Errorf("runner: invalid shard %d/%d", index, total)
	}
	var idxs []int
	for idx := index - 1; idx < cells; idx += total {
		idxs = append(idxs, idx)
	}
	return idxs, nil
}

// CellSet evaluates an explicit set of cells on a Local pool — the
// planned-shard path, where a timing plan (trace.PlanShards) rather than
// index arithmetic picks each machine's cells. Like Shard, the resulting
// grid is incomplete by design; persist it with Grid.Partial and merge.
type CellSet struct {
	Idxs []int
	// Workers bounds the local pool, as in Local.
	Workers int
}

// Run implements Exec.
func (c CellSet) Run(s *Spec) (*Grid, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(c.Idxs))
	for _, idx := range c.Idxs {
		if idx < 0 || idx >= s.Cells() {
			return nil, fmt.Errorf("runner: cell set index %d outside grid of %d cells", idx, s.Cells())
		}
		if seen[idx] {
			return nil, fmt.Errorf("runner: cell set repeats index %d", idx)
		}
		seen[idx] = true
	}
	return runCells(s, c.Idxs, c.Workers)
}
