package runner

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// ListenTransport is the networked worker transport: the coordinator
// listens, remote workers (`figures -worker -connect addr`) dial in, and
// each accepted connection becomes a pool worker speaking the same
// SPEC/cell line protocol as the subprocess pipes. Membership is elastic —
// workers may join mid-run and are fed from the shared queue, and workers
// may leave without failing the run as long as at least one remains.
type ListenTransport struct {
	ln     net.Listener
	joined chan Conn
	stop   chan struct{}
	wg     sync.WaitGroup

	mu     sync.Mutex
	closed bool
}

// Listen starts the coordinator half of the TCP transport on addr (for
// example ":9131", or "127.0.0.1:0" to pick a free port — see Addr).
func Listen(addr string) (*ListenTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("runner: listen %s: %w", addr, err)
	}
	t := &ListenTransport{ln: ln, joined: make(chan Conn), stop: make(chan struct{})}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr is the bound listen address, for workers to -connect to.
func (t *ListenTransport) Addr() string { return t.ln.Addr().String() }

func (t *ListenTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			close(t.joined)
			return
		}
		conn := &tcpConn{c: c, rd: bufio.NewReader(c)}
		select {
		case t.joined <- conn:
		case <-t.stop:
			c.Close()
			close(t.joined)
			return
		}
	}
}

// Slots implements Transport: membership is worker-driven.
func (t *ListenTransport) Slots() int { return 0 }

// Connect implements Transport; never used on a worker-driven transport.
func (t *ListenTransport) Connect() (Conn, error) {
	return nil, fmt.Errorf("runner: listen transport cannot initiate connections")
}

// Joined implements Transport.
func (t *ListenTransport) Joined() <-chan Conn { return t.joined }

// Close implements Transport: the listener stops accepting; connections
// already handed to the pool are closed by the pool.
func (t *ListenTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	close(t.stop)
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

// tcpConn adapts one accepted socket to the Conn interface.
type tcpConn struct {
	c    net.Conn
	rd   *bufio.Reader
	once sync.Once
}

func (c *tcpConn) WriteLine(line string) error {
	if _, err := fmt.Fprintf(c.c, "%s\n", line); err != nil {
		return fmt.Errorf("runner: worker write: %w", err)
	}
	return nil
}

func (c *tcpConn) ReadLine() (string, error) {
	return c.rd.ReadString('\n')
}

// Abort implements the error-path close: the socket is dropped without BYE,
// so a healthy remote worker treats the session as interrupted and
// reconnects with backoff — the networked analogue of kill-and-respawn.
func (c *tcpConn) Abort() {
	c.once.Do(func() { c.c.Close() })
}

// Shutdown implements the orderly close: a best-effort BYE tells the worker
// the session is over (exit, don't reconnect), then the socket closes.
func (c *tcpConn) Shutdown() error {
	var err error
	c.once.Do(func() {
		c.c.SetWriteDeadline(time.Now().Add(2 * time.Second)) //repcheck:allow-wallclock socket write deadline on shutdown
		fmt.Fprintf(c.c, "%s\n", protoBye)
		err = c.c.Close()
	})
	return err
}

func (c *tcpConn) Name() string {
	return "worker " + c.c.RemoteAddr().String()
}

// WorkerOptions tunes the remote-worker loop (`figures -worker -connect`).
type WorkerOptions struct {
	// Heartbeat is the idle-connection heartbeat interval; 0 selects 2s,
	// negative disables heartbeats.
	Heartbeat time.Duration
	// Backoff paces reconnect attempts.
	Backoff BackoffConfig
	// MaxAttempts is how many consecutive failed connection attempts or
	// broken sessions the worker tolerates before giving up; 0 selects 8.
	MaxAttempts int
	// Fault optionally injects one failure mode into the first session
	// (`figures -faultinject` on the worker side).
	Fault *Fault
	// Logf reports connection lifecycle; nil discards.
	Logf func(format string, args ...any)
}

// ConnectWorker dials the coordinator at addr and serves the pool protocol
// over the connection — the remote half of `figures -serve-workers`. The
// worker reconnects with exponential backoff and jitter when the
// coordinator is not up yet or the connection breaks mid-run (elastic
// membership: a rejoin is just a fresh connection fed from the shared
// queue). It returns nil once the coordinator ends a session with BYE, and
// an error after MaxAttempts consecutive failures. A bare EOF without BYE
// is ambiguous — a crashed coordinator or a network drop — and is treated
// as retryable.
func ConnectWorker(addr string, build func(name string) (*Spec, error), opts WorkerOptions) error {
	hb := opts.Heartbeat
	if hb == 0 {
		hb = 2 * time.Second
	} else if hb < 0 {
		hb = 0
	}
	maxAttempts := opts.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 8
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	bo := newBackoff(opts.Backoff, nil)
	fails := 0
	var lastErr error
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			logf("connected to coordinator %s", addr)
			err = ServePoolOpts(nil, build, c, c, ServeOptions{Heartbeat: hb, Fault: opts.Fault})
			c.Close()
			if errors.Is(err, ErrBye) {
				logf("coordinator ended the session")
				return nil
			}
			if err == nil {
				err = fmt.Errorf("session ended without BYE")
			}
		}
		fails++
		lastErr = err
		if fails >= maxAttempts {
			return fmt.Errorf("runner: giving up on coordinator %s after %d attempts: %w", addr, fails, lastErr)
		}
		d := bo.Next()
		logf("session with %s: %v; retrying in %v", addr, err, d.Round(time.Millisecond))
		time.Sleep(d)
	}
}
