package runner

import (
	"net"
	"reflect"
	"strings"
	"testing"
	"time"
)

// startTCPPool boots a coordinator on a loopback port and returns the pool
// plus the address workers should dial.
func startTCPPool(t testing.TB, cfg Config) (*Pool, string) {
	t.Helper()
	tr, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pool := NewPoolTransport(tr, cfg)
	t.Cleanup(pool.Close)
	return pool, tr.Addr()
}

// startTCPWorker runs an in-process remote worker against addr; the
// returned channel carries ConnectWorker's exit status.
func startTCPWorker(t testing.TB, addr string, opts WorkerOptions) <-chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- ConnectWorker(addr, buildTestSpec, opts) }()
	return done
}

// tcpTestCfg keeps networked tests fast and deterministic: fixed deadline
// (no 10-minute bootstrap), millisecond backoff, tight membership windows.
func tcpTestCfg() Config {
	return Config{
		Deadline:         DeadlineConfig{Fixed: 5 * time.Second},
		Backoff:          BackoffConfig{Base: time.Millisecond, Max: 10 * time.Millisecond, Jitter: -1},
		HeartbeatTimeout: 2 * time.Second,
		RejoinGrace:      300 * time.Millisecond,
	}
}

// workerTestOpts mirrors tcpTestCfg on the worker side.
func workerTestOpts() WorkerOptions {
	return WorkerOptions{
		Heartbeat: 50 * time.Millisecond,
		Backoff:   BackoffConfig{Base: time.Millisecond, Max: 10 * time.Millisecond, Jitter: -1},
	}
}

// TestTCPPoolMatchesLocal: two loopback workers produce the same reduced
// table as the in-process backend — placement cannot leak into results.
func TestTCPPoolMatchesLocal(t *testing.T) {
	s := namedSpec(t, "grid-3x2x2")
	pool, addr := startTCPPool(t, tcpTestCfg())
	w1 := startTCPWorker(t, addr, workerTestOpts())
	w2 := startTCPWorker(t, addr, workerTestOpts())
	g, err := pool.Run(s)
	if err != nil {
		t.Fatalf("TCP pool run: %v", err)
	}
	got, err := Reduce(s, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TCP run diverged from Local:\ngot  %+v\nwant %+v", got, want)
	}
	pool.Close() // BYE both workers so ConnectWorker returns nil
	for i, w := range []<-chan error{w1, w2} {
		if err := <-w; err != nil {
			t.Fatalf("worker %d exit: %v", i+1, err)
		}
	}
}

// TestTCPWorkerJoinsMidRun: the run starts with zero workers and completes
// once one dials in — elastic membership, no pre-registration.
func TestTCPWorkerJoinsMidRun(t *testing.T) {
	s := namedSpec(t, "grid-3x2x1")
	cfg := tcpTestCfg()
	cfg.RejoinGrace = 10 * time.Second // no workers yet ≠ all workers gone
	pool, addr := startTCPPool(t, cfg)
	type result struct {
		g   *Grid
		err error
	}
	res := make(chan result, 1)
	go func() {
		g, err := pool.Run(s)
		res <- result{g, err}
	}()
	time.Sleep(100 * time.Millisecond) // run is underway, queue unserved
	startTCPWorker(t, addr, workerTestOpts())
	select {
	case r := <-res:
		if r.err != nil {
			t.Fatalf("run with late-joining worker: %v", r.err)
		}
		if err := r.g.Complete(); err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not complete after a worker joined")
	}
}

// TestTCPWorkerLeavesRunContinues: one worker departs permanently mid-run;
// the survivor finishes the grid, results intact.
func TestTCPWorkerLeavesRunContinues(t *testing.T) {
	s := namedSpec(t, "grid-4x2x2") // 16 cells
	pool, addr := startTCPPool(t, tcpTestCfg())
	leaver := workerTestOpts()
	leaver.Fault = &Fault{Kind: "disconnect", After: 1}
	leaver.MaxAttempts = 1 // no rejoin: the worker truly leaves
	w1 := startTCPWorker(t, addr, leaver)
	startTCPWorker(t, addr, workerTestOpts())
	g, err := pool.Run(s)
	if err != nil {
		t.Fatalf("run with a departing worker: %v", err)
	}
	if err := g.Complete(); err != nil {
		t.Fatal(err)
	}
	got, err := Reduce(s, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("run with a departing worker diverged from Local")
	}
	if err := <-w1; err == nil {
		t.Fatal("expected the departing worker to give up with an error")
	}
}

// TestTCPZeroMembershipFails: when every worker has left and none rejoins
// within the grace window, the run fails with an error naming the last
// worker failure instead of hanging on an unserved queue.
func TestTCPZeroMembershipFails(t *testing.T) {
	s := namedSpec(t, "work-8x2x2-2000000") // enough cells+work to outlive the worker
	pool, addr := startTCPPool(t, tcpTestCfg())
	leaver := workerTestOpts()
	leaver.Fault = &Fault{Kind: "disconnect", After: 2}
	leaver.MaxAttempts = 1
	startTCPWorker(t, addr, leaver)
	_, err := pool.Run(s)
	if err == nil {
		t.Fatal("run completed despite losing its only worker")
	}
	if !strings.Contains(err.Error(), "all workers left the pool") ||
		!strings.Contains(err.Error(), "last worker failure") {
		t.Fatalf("zero-membership error = %v; want it to name the membership collapse and last failure", err)
	}
}

// TestTCPWedgedWorkerConvertedByDeadline: a wedged remote worker (alive,
// silent) is cut off by the response deadline; its reconnect serves the
// requeued cell, and the output matches Local.
func TestTCPWedgedWorkerConvertedByDeadline(t *testing.T) {
	s := namedSpec(t, "grid-3x2x1")
	cfg := tcpTestCfg()
	cfg.Deadline = DeadlineConfig{Fixed: 150 * time.Millisecond}
	// The lone worker stays wedged (and disconnected) for most of its 1s
	// sleep; the rejoin grace must span that, or zero-membership fires
	// first — the correct outcome for a worker that never comes back.
	cfg.RejoinGrace = 10 * time.Second
	pool, addr := startTCPPool(t, cfg)
	opts := workerTestOpts()
	opts.Fault = &Fault{Kind: "wedge", After: 1, Delay: time.Second}
	startTCPWorker(t, addr, opts)
	start := time.Now()
	g, err := pool.Run(s)
	if err != nil {
		t.Fatalf("run with wedging worker: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Second {
		t.Fatalf("wedge conversion took %v", elapsed)
	}
	got, err := Reduce(s, g)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(s, Local{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("wedged-worker run diverged from Local")
	}
}

// TestTCPHeartbeatLifecycle: a mute connection (no heartbeats) is retired
// by the idle staleness check, while a heartbeating idle worker is kept.
func TestTCPHeartbeatLifecycle(t *testing.T) {
	cfg := tcpTestCfg()
	cfg.HeartbeatTimeout = 200 * time.Millisecond
	pool, addr := startTCPPool(t, cfg)

	// A raw socket that joins and never says anything — the half-open-
	// connection stand-in.
	mute, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	waitLive := func(want int, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for pool.LiveWorkers() != want {
			if time.Now().After(deadline) {
				t.Fatalf("%s: live=%d, want %d", what, pool.LiveWorkers(), want)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	waitLive(1, "mute conn joined")
	waitLive(0, "mute conn retired by heartbeat staleness")

	// A real worker heartbeating at 50ms stays a member well past the
	// 200ms staleness window.
	startTCPWorker(t, addr, workerTestOpts())
	waitLive(1, "heartbeating worker joined")
	time.Sleep(600 * time.Millisecond)
	if got := pool.LiveWorkers(); got != 1 {
		t.Fatalf("heartbeating idle worker was retired: live=%d", got)
	}
}

// BenchmarkPoolTCPLoopback is BenchmarkPoolPipelined over loopback TCP
// instead of pipes: same specs, two in-process remote workers, measuring
// the transport's added overhead (see PERFORMANCE.md).
func BenchmarkPoolTCPLoopback(b *testing.B) {
	specs := benchPoolSpecs(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		pool := NewPoolTransport(tr, Config{Deadline: DeadlineConfig{Fixed: time.Minute}})
		w1 := startTCPWorker(b, tr.Addr(), workerTestOpts())
		w2 := startTCPWorker(b, tr.Addr(), workerTestOpts())
		if err := pool.RunAll(specs, nil); err != nil {
			b.Fatal(err)
		}
		pool.Close()
		<-w1
		<-w2
	}
}
