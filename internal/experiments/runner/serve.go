package runner

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// protoBye is the coordinator's orderly end-of-session line: a worker that
// reads it knows the coordinator is done with it (as opposed to a bare EOF,
// which on a network transport may also be a dropped connection).
const protoBye = "BYE"

// heartbeatLine is the worker's idle keep-alive: a cellMsg carrying only
// hb, so the coordinator can tell an idle-but-healthy peer from a dead one
// on transports where peer death is otherwise silent (TCP half-open).
const heartbeatLine = `{"hb":true}`

// ErrBye reports that the coordinator ended the session with a BYE line.
// ConnectWorker uses it to distinguish an orderly end (exit) from a dropped
// connection (reconnect); the pipes path treats it like EOF.
var ErrBye = errors.New("runner: coordinator ended the session")

// ServeOptions tunes the worker half of the pool protocol.
type ServeOptions struct {
	// Heartbeat, when positive, emits a heartbeat line at this interval
	// while no cell is being evaluated. Remote (TCP) workers enable it;
	// subprocess workers don't need it — a dead subprocess is visible to
	// the coordinator as pipe EOF immediately.
	Heartbeat time.Duration
	// Fault optionally injects one failure mode into the session — the
	// fault matrix behind `figures -faultinject` and the runner's
	// robustness tests.
	Fault *Fault
}

// lineWriter serialises protocol writes from the serve loop and the
// heartbeat goroutine onto one buffered writer.
type lineWriter struct {
	mu sync.Mutex
	bw *bufio.Writer
}

func (w *lineWriter) writeLine(line string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.bw.WriteString(line); err != nil {
		return err
	}
	if err := w.bw.WriteByte('\n'); err != nil {
		return err
	}
	return w.bw.Flush()
}

// ServePool runs the multi-spec worker half of the pool protocol: lines on
// r are either "SPEC <name>" — switch to serving the named spec, built via
// build — a decimal cell index for the current spec, or BYE (end of
// session). One JSON result line per cell goes to w, carrying the cell's
// wall-clock nanoseconds so the coordinator can balance future shard
// assignments by measured cost. initial, if non-nil, is the spec served
// before any SPEC line (the single-spec compatibility mode).
func ServePool(initial *Spec, build func(name string) (*Spec, error), r io.Reader, w io.Writer) error {
	err := ServePoolOpts(initial, build, r, w, ServeOptions{})
	if errors.Is(err, ErrBye) {
		return nil
	}
	return err
}

// ServePoolOpts is ServePool with heartbeats and fault injection. It
// returns nil on EOF, ErrBye when the coordinator sent BYE, and any other
// error on a broken session.
func ServePoolOpts(initial *Spec, build func(name string) (*Spec, error), r io.Reader, w io.Writer, opts ServeOptions) error {
	cur := initial
	if cur != nil {
		if err := cur.Validate(); err != nil {
			return err
		}
	}
	lw := &lineWriter{bw: bufio.NewWriter(w)}

	var busy atomic.Bool
	if opts.Heartbeat > 0 {
		stop := make(chan struct{})
		defer close(stop)
		go func() {
			tick := time.NewTicker(opts.Heartbeat)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					if busy.Load() {
						continue
					}
					if lw.writeLine(heartbeatLine) != nil {
						return // transport gone; the serve loop will notice
					}
				}
			}
		}()
	}

	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if line == protoBye {
			return ErrBye
		}
		if name, ok := strings.CutPrefix(line, "SPEC "); ok {
			name = strings.TrimSpace(name)
			if cur != nil && cur.Name == name {
				continue
			}
			s, err := build(name)
			if err != nil {
				return err
			}
			if err := s.Validate(); err != nil {
				return err
			}
			cur = s
			continue
		}
		if cur == nil {
			return fmt.Errorf("runner: cell assignment %q before any SPEC line", line)
		}
		busy.Store(true)
		err := serveAssignment(cur, line, lw, opts.Fault)
		busy.Store(false)
		if err != nil {
			return err
		}
	}
	return sc.Err()
}

// serveAssignment evaluates one cell assignment and writes the response,
// threading the fault hooks through the read-evaluate-respond cycle.
func serveAssignment(s *Spec, line string, lw *lineWriter, fault *Fault) error {
	if err := fault.onAssignment(); err != nil {
		return err
	}
	msg, err := serveCell(s, line)
	if err != nil {
		return err
	}
	out, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	if err := lw.writeLine(fault.mangleResponse(string(out))); err != nil {
		return err
	}
	fault.afterResponse()
	return nil
}
