package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// optInstance builds one small-instance run: the paper evaluates everything
// involving OPT on line graphs of five nodes.
func optInstance(kind scenarioKind, params cost.Params, n, T, lambda, rounds, reqPerRound int, seed int64) (*sim.Env, *workload.Sequence, error) {
	env, err := lineEnv(n, params, seed)
	if err != nil {
		return nil, nil, err
	}
	seq, err := buildScenario(kind, env.Matrix, T, lambda, rounds, reqPerRound, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, nil, err
	}
	return env, seq, nil
}

// Figure11 reproduces Figure 11: the competitive ratio of ONTH (its cost
// divided by OPT's cost on the same sequence) as a function of λ, on
// five-node networks over 200 rounds, averaged over 10 runs, for all three
// scenarios. Ratios stay fairly low everywhere; the static-load commuter
// scenario peaks at intermediate λ.
func Figure11(o Options) (*trace.Table, error) {
	n := 5
	rounds := pick(o, 200, 60)
	runs := pick(o, 10, 2)
	lambdas := pickSizes(o, []int{1, 2, 5, 10, 20, 50}, []int{2, 10})
	T := 4
	seed := o.seed()

	kinds := []scenarioKind{commuterDynamic, commuterStatic, timeZones}
	tab := &trace.Table{
		Title:  "Figure 11: competitive ratio ONTH/OPT vs lambda (n=5)",
		XLabel: "lambda",
		YLabel: "cost(ONTH) / cost(OPT)",
	}
	values := make([][]float64, len(kinds))
	for xi, lambda := range lambdas {
		tab.X = append(tab.X, float64(lambda))
		for ki, kind := range kinds {
			ki, kind, lambda := ki, kind, lambda
			ratios, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi*len(kinds)+ki, run)
				env, seq, err := optInstance(kind, cost.DefaultParams(), n, T, lambda, rounds, 3, s)
				if err != nil {
					return 0, err
				}
				onth, err := runTotal(env, online.NewONTH(), seq)
				if err != nil {
					return 0, err
				}
				opt, err := runTotal(env, offline.NewOPT(seq), seq)
				if err != nil {
					return 0, err
				}
				return stats.Ratio(onth, opt), nil
			})
			if err != nil {
				return nil, err
			}
			values[ki] = append(values[ki], stats.Mean(ratios))
		}
	}
	for ki, kind := range kinds {
		tab.Series = append(tab.Series, trace.Series{Label: kind.String(), Values: values[ki]})
	}
	return tab, tab.Validate()
}

// Figure12 reproduces Figure 12: how OFFSTAT determines the best number of
// servers — the total cost of the greedy static configuration as a function
// of the server count i, whose minimum defines kopt.
func Figure12(o Options) (*trace.Table, error) {
	n := pick(o, 100, 40)
	rounds := pick(o, 300, 100)
	maxK := pick(o, 10, 6)
	seed := o.seed()

	env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), seed)
	if err != nil {
		return nil, err
	}
	// Bound the curve length without constraining the other algorithms.
	env.Pool.MaxServers = maxK
	seq, err := workload.CommuterDynamic(env.Matrix,
		workload.CommuterConfig{T: workload.TForSize(n), Lambda: 10}, rounds)
	if err != nil {
		return nil, err
	}
	off := offline.NewOFFSTAT(seq)
	if err := off.Reset(env); err != nil {
		return nil, err
	}
	curve := off.CostCurve()
	tab := &trace.Table{
		Title:  "Figure 12: OFFSTAT total cost vs number of static servers",
		XLabel: "servers",
		YLabel: "total cost",
	}
	vals := make([]float64, len(curve))
	for i, c := range curve {
		tab.X = append(tab.X, float64(i+1))
		vals[i] = c
	}
	tab.Series = []trace.Series{{Label: "OFFSTAT", Values: vals}}
	return tab, tab.Validate()
}

// figureAbsolute is the shared implementation of Figures 13 and 14: the
// absolute total costs of OFFSTAT and OPT in the dynamic-load commuter
// scenario as a function of λ (200 rounds, five nodes, T = 4, 10 runs).
func figureAbsolute(o Options, title string, params cost.Params) (*trace.Table, error) {
	n := 5
	rounds := pick(o, 200, 60)
	runs := pick(o, 10, 2)
	lambdas := pickSizes(o, []int{1, 2, 5, 10, 20, 50}, []int{2, 10})
	T := 4
	seed := o.seed()

	tab := &trace.Table{Title: title, XLabel: "lambda", YLabel: "total cost"}
	var offVals, optVals []float64
	for xi, lambda := range lambdas {
		tab.X = append(tab.X, float64(lambda))
		lambda := lambda
		offTotals := make([]float64, runs)
		optTotals := make([]float64, runs)
		_, err := parallelRuns(runs, func(run int) (float64, error) {
			s := runSeed(seed, xi, run)
			env, seq, err := optInstance(commuterDynamic, params, n, T, lambda, rounds, 0, s)
			if err != nil {
				return 0, err
			}
			if offTotals[run], err = runTotal(env, offline.NewOFFSTAT(seq), seq); err != nil {
				return 0, err
			}
			if optTotals[run], err = runTotal(env, offline.NewOPT(seq), seq); err != nil {
				return 0, err
			}
			return 0, nil
		})
		if err != nil {
			return nil, err
		}
		offVals = append(offVals, stats.Mean(offTotals))
		optVals = append(optVals, stats.Mean(optTotals))
	}
	tab.Series = []trace.Series{
		{Label: "OFFSTAT", Values: offVals},
		{Label: "OPT", Values: optVals},
	}
	return tab, tab.Validate()
}

// Figure13 reproduces Figure 13: in less dynamic systems (larger λ) the
// absolute cost goes down, and the relative advantage of allocation and
// migration flexibility declines.
func Figure13(o Options) (*trace.Table, error) {
	return figureAbsolute(o, "Figure 13: OFFSTAT vs OPT cost, commuter dynamic load (β<c)", cost.DefaultParams())
}

// Figure14 reproduces Figure 14: the same comparison with β = 400 > c = 40.
func Figure14(o Options) (*trace.Table, error) {
	return figureAbsolute(o, "Figure 14: OFFSTAT vs OPT cost, commuter dynamic load (β>c)", cost.InvertedParams())
}

// figureRatioLambda is the shared implementation of Figures 15–17: the
// ratio of OFFSTAT's to OPT's total cost as a function of λ, for both the
// β < c and β > c parameterisations.
func figureRatioLambda(o Options, title string, kind scenarioKind, reqPerRound int) (*trace.Table, error) {
	n := 5
	rounds := pick(o, 200, 60)
	runs := pick(o, 10, 2)
	lambdas := pickSizes(o, []int{1, 2, 5, 10, 20, 50}, []int{2, 10})
	T := 4
	seed := o.seed()

	paramSets := []struct {
		label  string
		params cost.Params
	}{
		{"β<c", cost.DefaultParams()},
		{"β>c", cost.InvertedParams()},
	}
	tab := &trace.Table{Title: title, XLabel: "lambda", YLabel: "cost(OFFSTAT) / cost(OPT)"}
	values := make([][]float64, len(paramSets))
	for xi, lambda := range lambdas {
		tab.X = append(tab.X, float64(lambda))
		for pi, ps := range paramSets {
			pi, ps, lambda := pi, ps, lambda
			ratios, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi*len(paramSets)+pi, run)
				env, seq, err := optInstance(kind, ps.params, n, T, lambda, rounds, reqPerRound, s)
				if err != nil {
					return 0, err
				}
				off, err := runTotal(env, offline.NewOFFSTAT(seq), seq)
				if err != nil {
					return 0, err
				}
				opt, err := runTotal(env, offline.NewOPT(seq), seq)
				if err != nil {
					return 0, err
				}
				return stats.Ratio(off, opt), nil
			})
			if err != nil {
				return nil, err
			}
			values[pi] = append(values[pi], stats.Mean(ratios))
		}
	}
	for pi, ps := range paramSets {
		tab.Series = append(tab.Series, trace.Series{Label: ps.label, Values: values[pi]})
	}
	return tab, tab.Validate()
}

// Figure15 reproduces Figure 15: the benefit of dynamic allocation in the
// dynamic-load commuter scenario. For very high and very low dynamics the
// flexibility of OPT is of limited benefit; at moderate dynamics OPT
// exploits the request pattern for up to a factor of two, and the benefit
// is relatively larger when β > c.
func Figure15(o Options) (*trace.Table, error) {
	return figureRatioLambda(o, "Figure 15: OFFSTAT/OPT ratio vs lambda, commuter dynamic load", commuterDynamic, 0)
}

// Figure16 reproduces Figure 16: the same ratio in the static-load commuter
// scenario, fluctuating around a low constant for β < c and peaking near
// two at intermediate λ for β > c.
func Figure16(o Options) (*trace.Table, error) {
	return figureRatioLambda(o, "Figure 16: OFFSTAT/OPT ratio vs lambda, commuter static load", commuterStatic, 0)
}

// Figure17 reproduces Figure 17: the ratio in the time-zone scenario
// (p = 50%, three requests per round). Because the requests move in a
// highly correlated way, creating new servers and migrating existing ones
// are nearly interchangeable, and the β < c and β > c curves come out
// similar.
func Figure17(o Options) (*trace.Table, error) {
	return figureRatioLambda(o, "Figure 17: OFFSTAT/OPT ratio vs lambda, time zones (p=50%)", timeZones, 3)
}

// figureRatioT is the shared implementation of Figures 18 and 19: the
// OFFSTAT/OPT ratio as a function of T (200 rounds, λ = 10, five nodes,
// 10 runs).
func figureRatioT(o Options, title string, kind scenarioKind) (*trace.Table, error) {
	n := 5
	rounds := pick(o, 200, 60)
	runs := pick(o, 10, 2)
	Ts := pickSizes(o, []int{2, 4, 6, 8}, []int{2, 4})
	lambda := 10
	seed := o.seed()

	paramSets := []struct {
		label  string
		params cost.Params
	}{
		{"β<c", cost.DefaultParams()},
		{"β>c", cost.InvertedParams()},
	}
	tab := &trace.Table{Title: title, XLabel: "T", YLabel: "cost(OFFSTAT) / cost(OPT)"}
	values := make([][]float64, len(paramSets))
	for xi, T := range Ts {
		tab.X = append(tab.X, float64(T))
		for pi, ps := range paramSets {
			pi, ps, T := pi, ps, T
			ratios, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi*len(paramSets)+pi, run)
				env, seq, err := optInstance(kind, ps.params, n, T, lambda, rounds, 0, s)
				if err != nil {
					return 0, err
				}
				off, err := runTotal(env, offline.NewOFFSTAT(seq), seq)
				if err != nil {
					return 0, err
				}
				opt, err := runTotal(env, offline.NewOPT(seq), seq)
				if err != nil {
					return 0, err
				}
				return stats.Ratio(off, opt), nil
			})
			if err != nil {
				return nil, err
			}
			values[pi] = append(values[pi], stats.Mean(ratios))
		}
	}
	for pi, ps := range paramSets {
		tab.Series = append(tab.Series, trace.Series{Label: ps.label, Values: values[pi]})
	}
	return tab, tab.Validate()
}

// Figure18 reproduces Figure 18: a larger T widens the request horizon, so
// both absolute costs and the benefit of migration grow with T in the
// dynamic-load commuter scenario, with β > c benefiting more.
func Figure18(o Options) (*trace.Table, error) {
	return figureRatioT(o, "Figure 18: OFFSTAT/OPT ratio vs T, commuter dynamic load", commuterDynamic)
}

// Figure19 reproduces Figure 19: the same sweep for static load.
func Figure19(o Options) (*trace.Table, error) {
	return figureRatioT(o, "Figure 19: OFFSTAT/OPT ratio vs T, commuter static load", commuterStatic)
}
