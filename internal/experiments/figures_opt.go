package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// optInstance builds one small-instance run: the paper evaluates everything
// involving OPT on line graphs of five nodes.
func optInstance(kind scenarioKind, params cost.Params, n, T, lambda, rounds, reqPerRound int, seed int64, metric string) (*sim.Env, *workload.Sequence, error) {
	env, err := lineEnv(n, params, seed, metric)
	if err != nil {
		return nil, nil, err
	}
	seq, err := buildScenario(kind, env.Metric, T, lambda, rounds, reqPerRound, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, nil, err
	}
	return env, seq, nil
}

// optParamSets are the two cost parameterisations the OFFSTAT/OPT ratio
// figures compare.
func optParamSets() []struct {
	label  string
	params cost.Params
} {
	return []struct {
		label  string
		params cost.Params
	}{
		{"β<c", cost.DefaultParams()},
		{"β>c", cost.InvertedParams()},
	}
}

// figure11Spec is the grid of Figure 11: the competitive ratio of ONTH (its
// cost divided by OPT's cost on the same sequence) as a function of λ, on
// five-node networks over 200 rounds, averaged over 10 runs, for all three
// scenarios.
func figure11Spec(o Options) *runner.Spec {
	n := 5
	rounds := pick(o, 200, 60)
	runs := pick(o, 10, 2)
	lambdas := pickSizes(o, []int{1, 2, 5, 10, 20, 50}, []int{2, 10})
	T := 4
	seed := o.seed()

	kinds := []scenarioKind{commuterDynamic, commuterStatic, timeZones}
	labels := make([]string, len(kinds))
	for ki, kind := range kinds {
		labels[ki] = kind.String()
	}
	return &runner.Spec{
		Name: "11",
		Xs:   len(lambdas), Variants: len(kinds), Runs: runs,
		Cell: func(xi, ki, run int) ([]float64, error) {
			s := runSeed(seed, xi*len(kinds)+ki, run)
			env, seq, err := optInstance(kinds[ki], cost.DefaultParams(), n, T, lambdas[xi], rounds, 3, s, o.Metric)
			if err != nil {
				return nil, err
			}
			onth, err := runTotal(env, online.NewONTH(), seq)
			if err != nil {
				return nil, err
			}
			opt, err := runTotal(env, offline.NewOPT(seq), seq)
			if err != nil {
				return nil, err
			}
			return []float64{stats.Ratio(onth, opt)}, nil
		},
		Reduce: meanSeriesReduce("Figure 11: competitive ratio ONTH/OPT vs lambda (n=5)",
			"lambda", "cost(ONTH) / cost(OPT)", floats(lambdas), labels),
	}
}

// Figure11 reproduces Figure 11: ratios stay fairly low everywhere; the
// static-load commuter scenario peaks at intermediate λ.
func Figure11(o Options) (*trace.Table, error) { return local(figure11Spec(o)) }

// figure12Spec is the grid of Figure 12: a single deterministic cell whose
// values are OFFSTAT's whole cost curve over the server count.
func figure12Spec(o Options) *runner.Spec {
	n := pick(o, 100, 40)
	rounds := pick(o, 300, 100)
	maxK := pick(o, 10, 6)
	seed := o.seed()

	return &runner.Spec{
		Name: "12",
		Xs:   1, Variants: 1, Runs: 1,
		Cell: func(_, _, _ int) ([]float64, error) {
			env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), seed, o.Metric)
			if err != nil {
				return nil, err
			}
			// Bound the curve length without constraining the other
			// algorithms.
			env.Pool.MaxServers = maxK
			seq, err := workload.CommuterDynamic(env.Metric,
				workload.CommuterConfig{T: workload.TForSize(n), Lambda: 10}, rounds)
			if err != nil {
				return nil, err
			}
			off := offline.NewOFFSTAT(seq)
			if err := off.Reset(env); err != nil {
				return nil, err
			}
			return off.CostCurve(), nil
		},
		Reduce: func(g *runner.Grid) (*trace.Table, error) {
			curve := g.Cell(0, 0, 0)
			tab := &trace.Table{
				Title:  "Figure 12: OFFSTAT total cost vs number of static servers",
				XLabel: "servers",
				YLabel: "total cost",
			}
			for i := range curve {
				tab.X = append(tab.X, float64(i+1))
			}
			tab.Series = []trace.Series{{Label: "OFFSTAT", Values: curve}}
			return tab, tab.Validate()
		},
	}
}

// Figure12 reproduces Figure 12: how OFFSTAT determines the best number of
// servers — the total cost of the greedy static configuration as a function
// of the server count i, whose minimum defines kopt.
func Figure12(o Options) (*trace.Table, error) { return local(figure12Spec(o)) }

// figureAbsoluteSpec is the shared grid of Figures 13 and 14: the absolute
// total costs of OFFSTAT and OPT in the dynamic-load commuter scenario as a
// function of λ (200 rounds, five nodes, T = 4, 10 runs). One cell per
// (λ, run), returning both algorithms' totals on the shared instance.
func figureAbsoluteSpec(o Options, name, title string, params cost.Params) *runner.Spec {
	n := 5
	rounds := pick(o, 200, 60)
	runs := pick(o, 10, 2)
	lambdas := pickSizes(o, []int{1, 2, 5, 10, 20, 50}, []int{2, 10})
	T := 4
	seed := o.seed()

	return &runner.Spec{
		Name: name,
		Xs:   len(lambdas), Variants: 1, Runs: runs,
		Cell: func(xi, _, run int) ([]float64, error) {
			s := runSeed(seed, xi, run)
			env, seq, err := optInstance(commuterDynamic, params, n, T, lambdas[xi], rounds, 0, s, o.Metric)
			if err != nil {
				return nil, err
			}
			off, err := runTotal(env, offline.NewOFFSTAT(seq), seq)
			if err != nil {
				return nil, err
			}
			opt, err := runTotal(env, offline.NewOPT(seq), seq)
			if err != nil {
				return nil, err
			}
			return []float64{off, opt}, nil
		},
		Reduce: func(g *runner.Grid) (*trace.Table, error) {
			tab := &trace.Table{Title: title, XLabel: "lambda", YLabel: "total cost", X: floats(lambdas)}
			offVals := make([]float64, len(lambdas))
			optVals := make([]float64, len(lambdas))
			for xi := range lambdas {
				offVals[xi] = stats.Mean(g.RunsAt(xi, 0, 0))
				optVals[xi] = stats.Mean(g.RunsAt(xi, 0, 1))
			}
			tab.Series = []trace.Series{
				{Label: "OFFSTAT", Values: offVals},
				{Label: "OPT", Values: optVals},
			}
			return tab, tab.Validate()
		},
	}
}

func figure13Spec(o Options) *runner.Spec {
	return figureAbsoluteSpec(o, "13", "Figure 13: OFFSTAT vs OPT cost, commuter dynamic load (β<c)", cost.DefaultParams())
}

func figure14Spec(o Options) *runner.Spec {
	return figureAbsoluteSpec(o, "14", "Figure 14: OFFSTAT vs OPT cost, commuter dynamic load (β>c)", cost.InvertedParams())
}

// Figure13 reproduces Figure 13: in less dynamic systems (larger λ) the
// absolute cost goes down, and the relative advantage of allocation and
// migration flexibility declines.
func Figure13(o Options) (*trace.Table, error) { return local(figure13Spec(o)) }

// Figure14 reproduces Figure 14: the same comparison with β = 400 > c = 40.
func Figure14(o Options) (*trace.Table, error) { return local(figure14Spec(o)) }

// figureRatioLambdaSpec is the shared grid of Figures 15–17: the ratio of
// OFFSTAT's to OPT's total cost as a function of λ, for both the β < c and
// β > c parameterisations.
func figureRatioLambdaSpec(o Options, name, title string, kind scenarioKind, reqPerRound int) *runner.Spec {
	n := 5
	rounds := pick(o, 200, 60)
	runs := pick(o, 10, 2)
	lambdas := pickSizes(o, []int{1, 2, 5, 10, 20, 50}, []int{2, 10})
	T := 4
	seed := o.seed()

	paramSets := optParamSets()
	labels := []string{paramSets[0].label, paramSets[1].label}
	return &runner.Spec{
		Name: name,
		Xs:   len(lambdas), Variants: len(paramSets), Runs: runs,
		Cell: func(xi, pi, run int) ([]float64, error) {
			s := runSeed(seed, xi*len(paramSets)+pi, run)
			env, seq, err := optInstance(kind, paramSets[pi].params, n, T, lambdas[xi], rounds, reqPerRound, s, o.Metric)
			if err != nil {
				return nil, err
			}
			off, err := runTotal(env, offline.NewOFFSTAT(seq), seq)
			if err != nil {
				return nil, err
			}
			opt, err := runTotal(env, offline.NewOPT(seq), seq)
			if err != nil {
				return nil, err
			}
			return []float64{stats.Ratio(off, opt)}, nil
		},
		Reduce: meanSeriesReduce(title, "lambda", "cost(OFFSTAT) / cost(OPT)", floats(lambdas), labels),
	}
}

func figure15Spec(o Options) *runner.Spec {
	return figureRatioLambdaSpec(o, "15", "Figure 15: OFFSTAT/OPT ratio vs lambda, commuter dynamic load", commuterDynamic, 0)
}

func figure16Spec(o Options) *runner.Spec {
	return figureRatioLambdaSpec(o, "16", "Figure 16: OFFSTAT/OPT ratio vs lambda, commuter static load", commuterStatic, 0)
}

func figure17Spec(o Options) *runner.Spec {
	return figureRatioLambdaSpec(o, "17", "Figure 17: OFFSTAT/OPT ratio vs lambda, time zones (p=50%)", timeZones, 3)
}

// Figure15 reproduces Figure 15: the benefit of dynamic allocation in the
// dynamic-load commuter scenario. For very high and very low dynamics the
// flexibility of OPT is of limited benefit; at moderate dynamics OPT
// exploits the request pattern for up to a factor of two, and the benefit
// is relatively larger when β > c.
func Figure15(o Options) (*trace.Table, error) { return local(figure15Spec(o)) }

// Figure16 reproduces Figure 16: the same ratio in the static-load commuter
// scenario, fluctuating around a low constant for β < c and peaking near
// two at intermediate λ for β > c.
func Figure16(o Options) (*trace.Table, error) { return local(figure16Spec(o)) }

// Figure17 reproduces Figure 17: the ratio in the time-zone scenario
// (p = 50%, three requests per round). Because the requests move in a
// highly correlated way, creating new servers and migrating existing ones
// are nearly interchangeable, and the β < c and β > c curves come out
// similar.
func Figure17(o Options) (*trace.Table, error) { return local(figure17Spec(o)) }

// figureRatioTSpec is the shared grid of Figures 18 and 19: the OFFSTAT/OPT
// ratio as a function of T (200 rounds, λ = 10, five nodes, 10 runs).
func figureRatioTSpec(o Options, name, title string, kind scenarioKind) *runner.Spec {
	n := 5
	rounds := pick(o, 200, 60)
	runs := pick(o, 10, 2)
	Ts := pickSizes(o, []int{2, 4, 6, 8}, []int{2, 4})
	lambda := 10
	seed := o.seed()

	paramSets := optParamSets()
	labels := []string{paramSets[0].label, paramSets[1].label}
	return &runner.Spec{
		Name: name,
		Xs:   len(Ts), Variants: len(paramSets), Runs: runs,
		Cell: func(xi, pi, run int) ([]float64, error) {
			s := runSeed(seed, xi*len(paramSets)+pi, run)
			env, seq, err := optInstance(kind, paramSets[pi].params, n, Ts[xi], lambda, rounds, 0, s, o.Metric)
			if err != nil {
				return nil, err
			}
			off, err := runTotal(env, offline.NewOFFSTAT(seq), seq)
			if err != nil {
				return nil, err
			}
			opt, err := runTotal(env, offline.NewOPT(seq), seq)
			if err != nil {
				return nil, err
			}
			return []float64{stats.Ratio(off, opt)}, nil
		},
		Reduce: meanSeriesReduce(title, "T", "cost(OFFSTAT) / cost(OPT)", floats(Ts), labels),
	}
}

func figure18Spec(o Options) *runner.Spec {
	return figureRatioTSpec(o, "18", "Figure 18: OFFSTAT/OPT ratio vs T, commuter dynamic load", commuterDynamic)
}

func figure19Spec(o Options) *runner.Spec {
	return figureRatioTSpec(o, "19", "Figure 19: OFFSTAT/OPT ratio vs T, commuter static load", commuterStatic)
}

// Figure18 reproduces Figure 18: a larger T widens the request horizon, so
// both absolute costs and the benefit of migration grow with T in the
// dynamic-load commuter scenario, with β > c benefiting more.
func Figure18(o Options) (*trace.Table, error) { return local(figure18Spec(o)) }

// Figure19 reproduces Figure 19: the same sweep for static load.
func Figure19(o Options) (*trace.Table, error) { return local(figure19Spec(o)) }
