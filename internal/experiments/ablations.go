package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/graph/gen"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Ablations probe the design choices that the paper fixes by fiat (queue
// size 3, expiry x = 20, small-epoch factor y = 2, threshold θ = 2c,
// min-cost routing). Each returns a table of ONTH/ONBR total cost as the
// knob varies on a common commuter-dynamic instance.

// ablationInstance builds the shared environment/workload of the ablation
// studies, parameterised by the pool and evaluator knobs under study.
func ablationInstance(o Options, pool core.Params, load cost.LoadFunc, policy cost.Policy, seed int64) (*sim.Env, *workload.Sequence, error) {
	n := pick(o, 150, 60)
	rounds := pick(o, 400, 120)
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.ErdosRenyi(n, ErdosRenyiP, gen.DefaultOptions(), rng)
	if err != nil {
		return nil, nil, err
	}
	env, err := newMetricEnv(g, load, policy, cost.DefaultParams(), pool, o.Metric)
	if err != nil {
		return nil, nil, err
	}
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: workload.TForSize(n), Lambda: 10}, rounds)
	if err != nil {
		return nil, nil, err
	}
	return env, seq, nil
}

// ablateSpec is the grid every ablation shares: one cell per (knob value,
// run) playing the configured algorithm on the common instance, reduced to
// a single mean-cost series over the knob axis.
func ablateSpec(o Options, name, title, xlabel string, xs []float64,
	makeAlg func(xi int) sim.Algorithm,
	configure func(xi int, pool *core.Params) (cost.LoadFunc, cost.Policy)) *runner.Spec {

	runs := pick(o, 5, 2)
	seed := o.seed()
	return &runner.Spec{
		Name: name,
		Xs:   len(xs), Variants: 1, Runs: runs,
		Cell: func(xi, _, run int) ([]float64, error) {
			pool := poolDefaults()
			load, policy := configure(xi, &pool)
			env, seq, err := ablationInstance(o, pool, load, policy, runSeed(seed, xi, run))
			if err != nil {
				return nil, err
			}
			return one(runTotal(env, makeAlg(xi), seq))
		},
		Reduce: meanSeriesReduce(title, xlabel, "total cost", xs, []string{"total cost"}),
	}
}

// defaultConfigure keeps the paper's pool, load, and routing choices.
func defaultConfigure(int, *core.Params) (cost.LoadFunc, cost.Policy) {
	return cost.Linear{}, cost.AssignMinCost
}

func ablationQueueSpec(o Options) *runner.Spec {
	xs := []float64{0, 1, 3, 8}
	return ablateSpec(o, "ablation-queue", "Ablation: ONTH vs inactive-queue capacity", "queue capacity", xs,
		func(int) sim.Algorithm { return online.NewONTH() },
		func(xi int, pool *core.Params) (cost.LoadFunc, cost.Policy) {
			pool.QueueCap = int(xs[xi])
			return cost.Linear{}, cost.AssignMinCost
		})
}

func ablationExpirySpec(o Options) *runner.Spec {
	xs := []float64{1, 5, 20, 100}
	return ablateSpec(o, "ablation-expiry", "Ablation: ONTH vs inactive-server expiry", "expiry (epochs)", xs,
		func(int) sim.Algorithm { return online.NewONTH() },
		func(xi int, pool *core.Params) (cost.LoadFunc, cost.Policy) {
			pool.Expiry = int(xs[xi])
			return cost.Linear{}, cost.AssignMinCost
		})
}

func ablationYSpec(o Options) *runner.Spec {
	ys := []float64{1, 2, 4, 8}
	return ablateSpec(o, "ablation-y", "Ablation: ONTH vs small-epoch factor y", "y", ys,
		func(xi int) sim.Algorithm {
			alg := online.NewONTH()
			alg.Y = ys[xi]
			return alg
		},
		defaultConfigure)
}

func ablationThetaSpec(o Options) *runner.Spec {
	factors := []float64{0.5, 1, 2, 4, 8}
	return ablateSpec(o, "ablation-theta", "Ablation: ONBR vs threshold factor", "theta/c", factors,
		func(xi int) sim.Algorithm {
			alg := online.NewONBR()
			alg.ThetaFactor = factors[xi]
			return alg
		},
		defaultConfigure)
}

func ablationLoadSpec(o Options) *runner.Spec {
	loads := []cost.LoadFunc{cost.Linear{}, cost.Power{P: 1.5}, cost.Quadratic{}}
	return ablateSpec(o, "ablation-load", "Ablation: ONTH vs load function", "load exponent",
		[]float64{1, 1.5, 2},
		func(int) sim.Algorithm { return online.NewONTH() },
		func(xi int, _ *core.Params) (cost.LoadFunc, cost.Policy) {
			return loads[xi], cost.AssignMinCost
		})
}

func ablationAssignSpec(o Options) *runner.Spec {
	policies := []cost.Policy{cost.AssignMinCost, cost.AssignNearest}
	return ablateSpec(o, "ablation-assign", "Ablation: routing policy under quadratic load (ONTH)",
		"policy (0=min-cost,1=nearest)", []float64{0, 1},
		func(int) sim.Algorithm { return online.NewONTH() },
		func(xi int, _ *core.Params) (cost.LoadFunc, cost.Policy) {
			return cost.Quadratic{}, policies[xi]
		})
}

// AblationQueue varies the inactive-cache capacity (the paper fixes 3).
func AblationQueue(o Options) (*trace.Table, error) { return local(ablationQueueSpec(o)) }

// AblationExpiry varies the inactive-server expiry x (the paper fixes 20).
func AblationExpiry(o Options) (*trace.Table, error) { return local(ablationExpirySpec(o)) }

// AblationY varies ONTH's small-epoch factor y (threshold y·β; paper: 2).
func AblationY(o Options) (*trace.Table, error) { return local(ablationYSpec(o)) }

// AblationTheta varies ONBR's threshold factor (θ = factor·c; paper: 2).
func AblationTheta(o Options) (*trace.Table, error) { return local(ablationThetaSpec(o)) }

// AblationLoad compares load models under ONTH: linear, power(1.5),
// quadratic.
func AblationLoad(o Options) (*trace.Table, error) { return local(ablationLoadSpec(o)) }

// AblationAssign compares the min-cost request routing of Section II-B
// against load-oblivious nearest-server routing, under quadratic load where
// the difference matters.
func AblationAssign(o Options) (*trace.Table, error) { return local(ablationAssignSpec(o)) }
