package experiments

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"

	"math/rand"
)

// Ablations probe the design choices that the paper fixes by fiat (queue
// size 3, expiry x = 20, small-epoch factor y = 2, threshold θ = 2c,
// min-cost routing). Each returns a table of ONTH/ONBR total cost as the
// knob varies on a common commuter-dynamic instance.

// ablationInstance builds the shared environment/workload of the ablation
// studies, parameterised by the pool and evaluator knobs under study.
func ablationInstance(o Options, pool core.Params, load cost.LoadFunc, policy cost.Policy, seed int64) (*sim.Env, *workload.Sequence, error) {
	n := pick(o, 150, 60)
	rounds := pick(o, 400, 120)
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.ErdosRenyi(n, ErdosRenyiP, gen.DefaultOptions(), rng)
	if err != nil {
		return nil, nil, err
	}
	env, err := sim.NewEnv(g, load, policy, cost.DefaultParams(), pool)
	if err != nil {
		return nil, nil, err
	}
	seq, err := workload.CommuterDynamic(env.Matrix,
		workload.CommuterConfig{T: workload.TForSize(n), Lambda: 10}, rounds)
	if err != nil {
		return nil, nil, err
	}
	return env, seq, nil
}

// ablate sweeps one knob and averages ONTH-or-ONBR totals over runs.
func ablate(o Options, title, xlabel string, xs []float64,
	makeAlg func() sim.Algorithm,
	configure func(x float64, pool *core.Params) (cost.LoadFunc, cost.Policy)) (*trace.Table, error) {

	runs := pick(o, 5, 2)
	seed := o.seed()
	tab := &trace.Table{Title: title, XLabel: xlabel, YLabel: "total cost"}
	var vals []float64
	for xi, x := range xs {
		x := x
		totals, err := parallelRuns(runs, func(run int) (float64, error) {
			pool := poolDefaults()
			load, policy := configure(x, &pool)
			env, seq, err := ablationInstance(o, pool, load, policy, runSeed(seed, xi, run))
			if err != nil {
				return 0, err
			}
			return runTotal(env, makeAlg(), seq)
		})
		if err != nil {
			return nil, err
		}
		vals = append(vals, stats.Mean(totals))
		tab.X = append(tab.X, x)
	}
	tab.Series = []trace.Series{{Label: "total cost", Values: vals}}
	return tab, tab.Validate()
}

// AblationQueue varies the inactive-cache capacity (the paper fixes 3).
func AblationQueue(o Options) (*trace.Table, error) {
	return ablate(o, "Ablation: ONTH vs inactive-queue capacity", "queue capacity",
		[]float64{0, 1, 3, 8},
		func() sim.Algorithm { return online.NewONTH() },
		func(x float64, pool *core.Params) (cost.LoadFunc, cost.Policy) {
			pool.QueueCap = int(x)
			return cost.Linear{}, cost.AssignMinCost
		})
}

// AblationExpiry varies the inactive-server expiry x (the paper fixes 20).
func AblationExpiry(o Options) (*trace.Table, error) {
	return ablate(o, "Ablation: ONTH vs inactive-server expiry", "expiry (epochs)",
		[]float64{1, 5, 20, 100},
		func() sim.Algorithm { return online.NewONTH() },
		func(x float64, pool *core.Params) (cost.LoadFunc, cost.Policy) {
			pool.Expiry = int(x)
			return cost.Linear{}, cost.AssignMinCost
		})
}

// AblationY varies ONTH's small-epoch factor y (threshold y·β; paper: 2).
func AblationY(o Options) (*trace.Table, error) {
	runs := pick(o, 5, 2)
	seed := o.seed()
	ys := []float64{1, 2, 4, 8}
	tab := &trace.Table{Title: "Ablation: ONTH vs small-epoch factor y", XLabel: "y", YLabel: "total cost"}
	var vals []float64
	for xi, y := range ys {
		y := y
		totals, err := parallelRuns(runs, func(run int) (float64, error) {
			env, seq, err := ablationInstance(o, poolDefaults(), cost.Linear{}, cost.AssignMinCost, runSeed(seed, xi, run))
			if err != nil {
				return 0, err
			}
			alg := online.NewONTH()
			alg.Y = y
			return runTotal(env, alg, seq)
		})
		if err != nil {
			return nil, err
		}
		vals = append(vals, stats.Mean(totals))
		tab.X = append(tab.X, y)
	}
	tab.Series = []trace.Series{{Label: "total cost", Values: vals}}
	return tab, tab.Validate()
}

// AblationTheta varies ONBR's threshold factor (θ = factor·c; paper: 2).
func AblationTheta(o Options) (*trace.Table, error) {
	runs := pick(o, 5, 2)
	seed := o.seed()
	factors := []float64{0.5, 1, 2, 4, 8}
	tab := &trace.Table{Title: "Ablation: ONBR vs threshold factor", XLabel: "theta/c", YLabel: "total cost"}
	var vals []float64
	for xi, f := range factors {
		f := f
		totals, err := parallelRuns(runs, func(run int) (float64, error) {
			env, seq, err := ablationInstance(o, poolDefaults(), cost.Linear{}, cost.AssignMinCost, runSeed(seed, xi, run))
			if err != nil {
				return 0, err
			}
			alg := online.NewONBR()
			alg.ThetaFactor = f
			return runTotal(env, alg, seq)
		})
		if err != nil {
			return nil, err
		}
		vals = append(vals, stats.Mean(totals))
		tab.X = append(tab.X, f)
	}
	tab.Series = []trace.Series{{Label: "total cost", Values: vals}}
	return tab, tab.Validate()
}

// AblationLoad compares load models under ONTH: linear, power(1.5),
// quadratic.
func AblationLoad(o Options) (*trace.Table, error) {
	runs := pick(o, 5, 2)
	seed := o.seed()
	loads := []cost.LoadFunc{cost.Linear{}, cost.Power{P: 1.5}, cost.Quadratic{}}
	tab := &trace.Table{Title: "Ablation: ONTH vs load function", XLabel: "load exponent", YLabel: "total cost"}
	var vals []float64
	for xi, load := range loads {
		load := load
		totals, err := parallelRuns(runs, func(run int) (float64, error) {
			env, seq, err := ablationInstance(o, poolDefaults(), load, cost.AssignMinCost, runSeed(seed, xi, run))
			if err != nil {
				return 0, err
			}
			return runTotal(env, online.NewONTH(), seq)
		})
		if err != nil {
			return nil, err
		}
		vals = append(vals, stats.Mean(totals))
		tab.X = append(tab.X, []float64{1, 1.5, 2}[xi])
	}
	tab.Series = []trace.Series{{Label: "total cost", Values: vals}}
	return tab, tab.Validate()
}

// AblationAssign compares the min-cost request routing of Section II-B
// against load-oblivious nearest-server routing, under quadratic load where
// the difference matters.
func AblationAssign(o Options) (*trace.Table, error) {
	runs := pick(o, 5, 2)
	seed := o.seed()
	policies := []cost.Policy{cost.AssignMinCost, cost.AssignNearest}
	tab := &trace.Table{Title: "Ablation: routing policy under quadratic load (ONTH)", XLabel: "policy (0=min-cost,1=nearest)", YLabel: "total cost"}
	var vals []float64
	for xi, policy := range policies {
		policy := policy
		totals, err := parallelRuns(runs, func(run int) (float64, error) {
			env, seq, err := ablationInstance(o, poolDefaults(), cost.Quadratic{}, policy, runSeed(seed, xi, run))
			if err != nil {
				return 0, err
			}
			return runTotal(env, online.NewONTH(), seq)
		})
		if err != nil {
			return nil, err
		}
		vals = append(vals, stats.Mean(totals))
		tab.X = append(tab.X, float64(xi))
	}
	tab.Series = []trace.Series{{Label: "total cost", Values: vals}}
	return tab, tab.Validate()
}
