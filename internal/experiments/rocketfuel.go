package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/offline"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/topo"
	"repro/internal/trace"
	"repro/internal/workload"
)

// RocketfuelResult is the reproduction of the paper's closing experiment on
// the Rocketfuel AS-7018 (AT&T) topology under the time-zone scenario
// (c = 400, β = 40, Ra = 2.5, Ri = 0.5, runtime 600 rounds, λ = 20,
// p = 50%). The paper reports OFFSTAT = 26063.81, ONTH = 44176.29 (a factor
// below two above OFFSTAT) and ONBR = 111470.30.
type RocketfuelResult struct {
	Offstat float64
	Onth    float64
	Onbr    float64
}

// OnthRatio returns cost(ONTH)/cost(OFFSTAT); the paper observed "a factor
// less than two".
func (r RocketfuelResult) OnthRatio() float64 { return r.Onth / r.Offstat }

// OnbrRatio returns cost(ONBR)/cost(OFFSTAT).
func (r RocketfuelResult) OnbrRatio() float64 { return r.Onbr / r.Offstat }

// Table renders the result in the harness's common format.
func (r RocketfuelResult) Table() *trace.Table {
	return &trace.Table{
		Title:  "Rocketfuel AS-7018 (synthetic stand-in), time zones p=50%",
		XLabel: "-",
		YLabel: "total cost",
		X:      []float64{0},
		Series: []trace.Series{
			{Label: "OFFSTAT", Values: []float64{r.Offstat}},
			{Label: "ONTH", Values: []float64{r.Onth}},
			{Label: "ONBR-fixed", Values: []float64{r.Onbr}},
			{Label: "ONTH/OFFSTAT", Values: []float64{r.OnthRatio()}},
			{Label: "ONBR/OFFSTAT", Values: []float64{r.OnbrRatio()}},
		},
	}
}

// rocketfuelSpec is the grid of the Section V closing experiment: a single
// cell playing OFFSTAT, ONTH, and ONBR on the shared AS-like instance.
func rocketfuelSpec(o Options) *runner.Spec {
	rounds := pick(o, 600, 150)
	seed := o.seed()

	return &runner.Spec{
		Name: "rocketfuel",
		Xs:   1, Variants: 1, Runs: 1,
		Cell: func(_, _, _ int) ([]float64, error) {
			rng := rand.New(rand.NewSource(seed))
			g, err := topo.ASLike(topo.AS7018Config(), rng)
			if err != nil {
				return nil, err
			}
			env, err := newMetricEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(), poolDefaults(), o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := workload.TimeZones(env.Metric, workload.TimeZonesConfig{
				T: 12, P: 0.5, Lambda: 20,
			}, rounds, rand.New(rand.NewSource(seed+1)))
			if err != nil {
				return nil, err
			}
			var res RocketfuelResult
			if res.Offstat, err = runTotal(env, offline.NewOFFSTAT(seq), seq); err != nil {
				return nil, err
			}
			if res.Onth, err = runTotal(env, online.NewONTH(), seq); err != nil {
				return nil, err
			}
			if res.Onbr, err = runTotal(env, online.NewONBR(), seq); err != nil {
				return nil, err
			}
			return []float64{res.Offstat, res.Onth, res.Onbr}, nil
		},
		Reduce: func(g *runner.Grid) (*trace.Table, error) {
			tab := rocketfuelResultFromGrid(g).Table()
			return tab, tab.Validate()
		},
	}
}

func rocketfuelResultFromGrid(g *runner.Grid) RocketfuelResult {
	v := g.Cell(0, 0, 0)
	return RocketfuelResult{Offstat: v[0], Onth: v[1], Onbr: v[2]}
}

// TableRocketfuel reproduces the Section V closing experiment. The measured
// Rocketfuel map is replaced by the synthetic AS-like topology of
// internal/topo (see DESIGN.md); the validated claim is the ordering
// OFFSTAT < ONTH < ONBR with ONTH within roughly 2× of OFFSTAT.
func TableRocketfuel(o Options) (RocketfuelResult, error) {
	g, err := runner.Collect(rocketfuelSpec(o), nil)
	if err != nil {
		return RocketfuelResult{}, err
	}
	return rocketfuelResultFromGrid(g), nil
}

// wfaRocketfuelDefaultBound admits the full AS-like configuration space at
// k = 3 (≈234k placements for the ~112-node AS-7018 stand-in), the scale
// the shape-bucketed rewrite makes tractable; Options.MaxConfigs overrides
// it.
const wfaRocketfuelDefaultBound = 300000

// wfaRocketfuelSpec is the larger-topology sweep deferred since the
// enumeration-based algorithms were bounded to toy spaces: ONCONF and WFA
// on the full Rocketfuel AS-like substrate under the time-zone scenario,
// configuration space ≈234k (k = 3) — far past the old
// MaxONCONFConfigs = 2¹⁶ wall, and utterly out of reach of the dense
// O(C²) transition matrix (≈440 GB) the rewrite removed.
func wfaRocketfuelSpec(o Options) *runner.Spec {
	rounds := pick(o, 200, 40)
	seed := o.seed()
	bound := o.MaxConfigs
	if bound <= 0 {
		bound = wfaRocketfuelDefaultBound
	}
	labels := []string{"ONCONF", "WFA"}
	return &runner.Spec{
		Name: "wfa-rocketfuel",
		Xs:   1, Variants: len(labels), Runs: 1,
		Cell: func(_, ai, _ int) ([]float64, error) {
			rng := rand.New(rand.NewSource(seed))
			g, err := topo.ASLike(topo.AS7018Config(), rng)
			if err != nil {
				return nil, err
			}
			env, err := newMetricEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(),
				core.Params{QueueCap: 3, Expiry: 20, MaxServers: 3}, o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := workload.TimeZones(env.Metric, workload.TimeZonesConfig{
				T: 12, P: 0.5, Lambda: 20,
			}, rounds, rand.New(rand.NewSource(seed+1)))
			if err != nil {
				return nil, err
			}
			var alg sim.Algorithm
			switch ai {
			case 0:
				a := online.NewONCONF(rand.New(rand.NewSource(seed + 2)))
				a.MaxConfigs = bound
				alg = a
			default:
				a := online.NewWFA()
				a.MaxConfigs = bound
				alg = a
			}
			total, err := runTotal(env, alg, seq)
			if err != nil {
				return nil, err
			}
			return []float64{total}, nil
		},
		Reduce: meanSeriesReduce(
			"Rocketfuel AS-7018 (synthetic stand-in), time zones: full-space ONCONF vs WFA, k=3",
			"-", "total cost", []float64{0}, labels),
	}
}

// WFARocketfuel runs the full-configuration-space comparison of ONCONF and
// WFA on the Rocketfuel AS-like substrate (spec "wfa-rocketfuel",
// reachable via figures -only wfa-rocketfuel). It is not part of the
// default figure set: at ≈234k configurations a run is deliberate, not a
// snapshot-suite side effect.
func WFARocketfuel(o Options) (*trace.Table, error) { return local(wfaRocketfuelSpec(o)) }
