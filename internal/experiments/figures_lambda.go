package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/trace"
)

// figureLambdaSpec is the shared grid of Figures 8–10: total cost of the
// online strategies as a function of λ (runtime 900 rounds, T = 10, network
// size 200, averaged over 10 runs). One cell per (λ, strategy, run).
func figureLambdaSpec(o Options, name, title string, kind scenarioKind) *runner.Spec {
	n := pick(o, 200, 60)
	rounds := pick(o, 900, 200)
	runs := pick(o, 10, 2)
	lambdas := pickSizes(o, []int{1, 2, 5, 10, 20, 40, 80}, []int{2, 10, 40})
	T := 10
	seed := o.seed()

	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH"}
	return &runner.Spec{
		Name: name,
		Xs:   len(lambdas), Variants: len(labels), Runs: runs,
		Cell: func(xi, ai, run int) ([]float64, error) {
			s := runSeed(seed, xi, run)
			env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s, o.Metric)
			if err != nil {
				return nil, err
			}
			seq, err := buildScenario(kind, env.Metric, T, lambdas[xi], rounds, 0, rand.New(rand.NewSource(s+1)))
			if err != nil {
				return nil, err
			}
			return one(runTotal(env, onlineContenders()[ai], seq))
		},
		Reduce: meanSeriesReduce(title, "lambda", "total cost", floats(lambdas), labels),
	}
}

func figure8Spec(o Options) *runner.Spec {
	return figureLambdaSpec(o, "8", "Figure 8: cost vs lambda, commuter dynamic load", commuterDynamic)
}

func figure9Spec(o Options) *runner.Spec {
	return figureLambdaSpec(o, "9", "Figure 9: cost vs lambda, commuter static load", commuterStatic)
}

func figure10Spec(o Options) *runner.Spec {
	return figureLambdaSpec(o, "10", "Figure 10: cost vs lambda, time zones (p=50%)", timeZones)
}

// Figure8 reproduces Figure 8: cost as a function of λ in the commuter
// scenario with dynamic load. The total cost is largely independent of λ,
// with ONTH better by roughly a factor of two.
func Figure8(o Options) (*trace.Table, error) { return local(figure8Spec(o)) }

// Figure9 reproduces Figure 9: the same sweep for the static-load commuter
// scenario.
func Figure9(o Options) (*trace.Table, error) { return local(figure9Spec(o)) }

// Figure10 reproduces Figure 10: the same sweep for the time-zone scenario
// with p = 50%. The total cost decreases slightly with λ because fewer
// migrations are needed when the hotspot moves less often.
func Figure10(o Options) (*trace.Table, error) { return local(figure10Spec(o)) }
