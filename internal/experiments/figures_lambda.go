package experiments

import (
	"math/rand"

	"repro/internal/cost"
	"repro/internal/stats"
	"repro/internal/trace"
)

// figureLambda is the shared implementation of Figures 8–10: total cost of
// the online strategies as a function of λ (runtime 900 rounds, T = 10,
// network size 200, averaged over 10 runs).
func figureLambda(o Options, title string, kind scenarioKind) (*trace.Table, error) {
	n := pick(o, 200, 60)
	rounds := pick(o, 900, 200)
	runs := pick(o, 10, 2)
	lambdas := pickSizes(o, []int{1, 2, 5, 10, 20, 40, 80}, []int{2, 10, 40})
	T := 10
	seed := o.seed()

	labels := []string{"ONBR-fixed", "ONBR-dyn", "ONTH"}
	values := make([][]float64, len(labels))
	tab := &trace.Table{Title: title, XLabel: "lambda", YLabel: "total cost"}
	for xi, lambda := range lambdas {
		tab.X = append(tab.X, float64(lambda))
		for ai := range labels {
			ai, lambda := ai, lambda
			totals, err := parallelRuns(runs, func(run int) (float64, error) {
				s := runSeed(seed, xi, run)
				env, err := erEnv(n, cost.Linear{}, cost.DefaultParams(), s)
				if err != nil {
					return 0, err
				}
				seq, err := buildScenario(kind, env.Matrix, T, lambda, rounds, 0, rand.New(rand.NewSource(s+1)))
				if err != nil {
					return 0, err
				}
				return runTotal(env, onlineContenders()[ai], seq)
			})
			if err != nil {
				return nil, err
			}
			values[ai] = append(values[ai], stats.Mean(totals))
		}
	}
	for ai, label := range labels {
		tab.Series = append(tab.Series, trace.Series{Label: label, Values: values[ai]})
	}
	return tab, tab.Validate()
}

// Figure8 reproduces Figure 8: cost as a function of λ in the commuter
// scenario with dynamic load. The total cost is largely independent of λ,
// with ONTH better by roughly a factor of two.
func Figure8(o Options) (*trace.Table, error) {
	return figureLambda(o, "Figure 8: cost vs lambda, commuter dynamic load", commuterDynamic)
}

// Figure9 reproduces Figure 9: the same sweep for the static-load commuter
// scenario.
func Figure9(o Options) (*trace.Table, error) {
	return figureLambda(o, "Figure 9: cost vs lambda, commuter static load", commuterStatic)
}

// Figure10 reproduces Figure 10: the same sweep for the time-zone scenario
// with p = 50%. The total cost decreases slightly with λ because fewer
// migrations are needed when the hotspot moves less often.
func Figure10(o Options) (*trace.Table, error) {
	return figureLambda(o, "Figure 10: cost vs lambda, time zones (p=50%)", timeZones)
}
