package experiments

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
)

// TestBuildScenarioAllKinds drives every workload family through the
// shared builder, including the composable scenarios.
func TestBuildScenarioAllKinds(t *testing.T) {
	env, err := erEnv(40, cost.Linear{}, cost.DefaultParams(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allScenarios() {
		seq, err := buildScenario(kind, env.Metric, 6, 5, 30, 0, rand.New(rand.NewSource(2)))
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if seq.Len() != 30 {
			t.Fatalf("%v: %d rounds, want 30", kind, seq.Len())
		}
		if seq.TotalRequests() == 0 {
			t.Fatalf("%v: empty workload", kind)
		}
	}
	if _, err := buildScenario(scenarioKind(99), env.Metric, 6, 5, 30, 0, rand.New(rand.NewSource(2))); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

// TestBuildScenarioDeterministic: the same (seed, x, run) derivation must
// yield byte-identical sequences, the property all sweeps rely on.
func TestBuildScenarioDeterministic(t *testing.T) {
	env, err := erEnv(40, cost.Linear{}, cost.DefaultParams(), 1, "")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range allScenarios() {
		s := runSeed(7, 2, 3)
		a, err := buildScenario(kind, env.Metric, 6, 5, 40, 0, rand.New(rand.NewSource(s+1)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := buildScenario(kind, env.Metric, 6, 5, 40, 0, rand.New(rand.NewSource(s+1)))
		if err != nil {
			t.Fatal(err)
		}
		if a.Name() != b.Name() {
			t.Fatalf("%v: names differ", kind)
		}
		for r := 0; r < a.Len(); r++ {
			if a.Demand(r).String() != b.Demand(r).String() {
				t.Fatalf("%v round %d: %v vs %v", kind, r, a.Demand(r), b.Demand(r))
			}
		}
	}
}

// TestScenarioFiguresQuick is the CI smoke run of the new scenario
// experiments: one flash-crowd sweep and one diurnal multi-region sweep in
// quick mode, plus the cross-scenario comparison.
func TestScenarioFiguresQuick(t *testing.T) {
	tab, err := ScenarioFlashCrowd(quick())
	checkTable(t, tab, err, 5)
	tab, err = ScenarioDiurnal(quick())
	checkTable(t, tab, err, 5)
	tab, err = CompareScenarios(quick())
	checkTable(t, tab, err, 5)
	if len(tab.X) != len(allScenarios()) {
		t.Fatalf("CompareScenarios covers %d scenarios, want %d", len(tab.X), len(allScenarios()))
	}
}
