// Package experiments regenerates every figure and table of the paper's
// evaluation (Section V). Each FigureN function reproduces the set-up of
// the corresponding figure — topology family, workload scenario, cost
// parameters, runtime, and number of averaged runs — and returns the same
// series the paper plots as a trace.Table.
//
// Absolute numbers differ from the paper (the substrate topologies are
// regenerated, not the authors' exact instances), but the comparative
// shapes are preserved; EXPERIMENTS.md records paper-vs-measured for every
// figure.
//
// Every experiment is expressed as a declarative runner.Spec: a grid of
// independent cells (x-position × variant × run) whose randomness derives
// only from the seed and the cell coordinates, plus a reduction into the
// plotted table. The FigureN functions execute their spec on the in-process
// Local backend; NewSpec exposes the same grids to cmd/figures for
// multi-process (-procs) and multi-machine (-shard/-merge) execution, with
// bit-identical results on every backend.
package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/experiments/runner"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Options scale an experiment.
type Options struct {
	// Quick selects a scaled-down variant (smaller networks, fewer rounds
	// and runs) with the same qualitative behaviour; used by the benchmark
	// harness and CI. The zero value reproduces the paper's set-up.
	Quick bool
	// Seed is the base seed; 0 selects the default (1).
	Seed int64
	// Metric selects the distance backend every environment is built
	// with — "dense" (default), "sparse[:rows]", or "landmark[:k]", see
	// graph.NewMetric. Exact backends (dense, sparse) produce
	// bit-identical figures; landmark is an upper-bound approximation.
	Metric string
	// MaxConfigs overrides the configuration-space bound of the
	// enumeration-based algorithms (WFA, ONCONF) in the experiments that
	// run them beyond the default online.MaxONCONFConfigs; 0 keeps each
	// experiment's own default. The bound is a memory knob, not a
	// semantic one — it never changes results, only whether Reset admits
	// the space.
	MaxConfigs int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// pick returns full for the paper set-up and quick in Quick mode.
func pick(o Options, full, quick int) int {
	if o.Quick {
		return quick
	}
	return full
}

func pickSizes(o Options, full, quick []int) []int {
	if o.Quick {
		return quick
	}
	return full
}

// ErdosRenyiP is the paper's connection probability for the artificial
// substrates ("with connection probability 1%").
const ErdosRenyiP = 0.01

// poolDefaults are the paper's inactive-cache parameters: a FIFO queue of
// size 3 whose entries expire after x = 20 epochs.
func poolDefaults() core.Params {
	return core.Params{QueueCap: 3, Expiry: 20}
}

// erGraph generates the paper's artificial substrate topology: an
// Erdős–Rényi graph with 1% connection probability and T1/T2 bandwidths.
func erGraph(n int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	return gen.ErdosRenyi(n, ErdosRenyiP, gen.DefaultOptions(), rng)
}

// newMetricEnv builds an environment with the backend the metric spec
// selects. The empty spec (and "dense") takes the unmodified sim.NewEnv
// path, so default runs stay byte-identical to the pre-backend code.
func newMetricEnv(g *graph.Graph, load cost.LoadFunc, policy cost.Policy, params cost.Params, pool core.Params, spec string) (*sim.Env, error) {
	if spec == "" || spec == "dense" {
		return sim.NewEnv(g, load, policy, params, pool)
	}
	m, err := graph.NewMetric(g, spec)
	if err != nil {
		return nil, err
	}
	return sim.NewEnvMetric(g, m, load, policy, params, pool, nil)
}

// erEnv builds the paper's artificial substrate: an Erdős–Rényi graph with
// 1% connection probability, T1/T2 bandwidths, and the default cost model,
// under the metric backend the spec selects.
func erEnv(n int, load cost.LoadFunc, params cost.Params, seed int64, metric string) (*sim.Env, error) {
	g, err := erGraph(n, seed)
	if err != nil {
		return nil, err
	}
	return newMetricEnv(g, load, cost.AssignMinCost, params, poolDefaults(), metric)
}

// lineEnv builds the paper's OPT substrate: a line graph with random
// latencies ("to simulate OPT, we constrain ourselves to line graphs").
func lineEnv(n int, params cost.Params, seed int64, metric string) (*sim.Env, error) {
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.Line(n, gen.DefaultOptions(), rng)
	if err != nil {
		return nil, err
	}
	return newMetricEnv(g, cost.Linear{}, cost.AssignMinCost, params, poolDefaults(), metric)
}

// runSeed derives a deterministic per-run seed from the experiment seed, an
// x-position index, and the run index.
func runSeed(base int64, x, run int) int64 {
	return base + int64(x)*1_000_003 + int64(run)*7_919
}

// floats widens an int axis to the float64 x-values a table plots.
func floats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// one wraps a single run result as a cell value, propagating the error.
func one(v float64, err error) ([]float64, error) {
	if err != nil {
		return nil, err
	}
	return []float64{v}, nil
}

// local executes a spec on the default in-process backend — what the
// exported FigureN functions do. The grid decomposition guarantees the same
// table on every other backend.
func local(s *runner.Spec) (*trace.Table, error) {
	return runner.Run(s, nil)
}

// onlineContenders returns fresh instances of the three strategies the
// paper's online comparisons plot: ONBR with fixed threshold 2c, ONBR with
// the dynamic threshold 2c/ℓ, and ONTH.
func onlineContenders() []sim.Algorithm {
	return []sim.Algorithm{online.NewONBR(), online.NewONBRDynamic(), online.NewONTH()}
}

// runTotal plays one algorithm over one sequence and returns the total cost.
func runTotal(env *sim.Env, alg sim.Algorithm, seq *workload.Sequence) (float64, error) {
	l, err := sim.Run(env, alg, seq)
	if err != nil {
		return 0, err
	}
	return l.Total(), nil
}

// scenarioKind selects one of the workload families: the paper's own
// scenarios (Section V-A) or the composable scenarios built on the
// workload/scenario engine.
type scenarioKind int

const (
	commuterDynamic scenarioKind = iota
	commuterStatic
	timeZones
	flashCrowd
	diurnalMultiRegion
	weekdayWeekend
)

func (s scenarioKind) String() string {
	switch s {
	case commuterDynamic:
		return "commuter-dynamic"
	case commuterStatic:
		return "commuter-static"
	case timeZones:
		return "time-zones"
	case flashCrowd:
		return "flash-crowd"
	case diurnalMultiRegion:
		return "diurnal-multi-region"
	case weekdayWeekend:
		return "weekday-weekend"
	default:
		return fmt.Sprintf("scenario(%d)", int(s))
	}
}

// allScenarios lists every workload family an experiment can sweep.
func allScenarios() []scenarioKind {
	return []scenarioKind{
		commuterDynamic, commuterStatic, timeZones,
		flashCrowd, diurnalMultiRegion, weekdayWeekend,
	}
}

// BuildNamedScenario instantiates a workload family by its canonical name
// (a scenarioKind String(): "commuter-dynamic", "commuter-static",
// "time-zones", "flash-crowd", "diurnal-multi-region",
// "weekday-weekend"). It is the single source of the per-family default
// derivation, shared by the experiment sweeps and the cmd/flexserve CLI
// so the two can never drift apart.
func BuildNamedScenario(name string, m graph.Metric, T, lambda, rounds, reqPerRound int, rng *rand.Rand) (*workload.Sequence, error) {
	for _, kind := range allScenarios() {
		if kind.String() == name {
			return buildScenario(kind, m, T, lambda, rounds, reqPerRound, rng)
		}
	}
	return nil, fmt.Errorf("experiments: unknown scenario %q", name)
}

// buildScenario instantiates a workload of the given kind on a substrate.
// The shared knobs map onto each family: T is the number of day
// phases/periods, lambda the rounds per phase (spike decay for flash
// crowds), reqPerRound the volume (0 derives the commuter-comparable
// default). All randomness comes from rng, so a (seed, x, run) triple
// fully determines the sequence.
func buildScenario(kind scenarioKind, m graph.Metric, T, lambda, rounds, reqPerRound int, rng *rand.Rand) (*workload.Sequence, error) {
	switch kind {
	case commuterDynamic:
		return workload.CommuterDynamic(m, workload.CommuterConfig{T: T, Lambda: lambda}, rounds)
	case commuterStatic:
		return workload.CommuterStatic(m, workload.CommuterConfig{T: T, Lambda: lambda}, rounds)
	case timeZones:
		return workload.TimeZones(m, workload.TimeZonesConfig{
			T: T, P: 0.5, Lambda: lambda, RequestsPerRound: reqPerRound,
		}, rounds, rng)
	case flashCrowd:
		base := reqPerRound
		if base == 0 {
			base = 1 << uint(T/2)
		}
		return workload.FlashCrowd(m, workload.FlashCrowdConfig{
			BaseRequests: base, Spikes: 4, Peak: 2 * float64(base), Tau: float64(lambda),
		}, rounds, rng)
	case diurnalMultiRegion:
		return workload.DiurnalMultiRegion(m, workload.DiurnalConfig{
			Regions: 4, Period: T * lambda, HotShare: 0.5, RequestsPerRound: reqPerRound,
		}, rounds, rng)
	case weekdayWeekend:
		day := 2 * lambda
		if day < T {
			day = T // a day fits at least one full fan cycle
		}
		return workload.WeekdayWeekend(m, workload.WeeklyConfig{
			DayLen: day, T: T,
		}, rounds, rng)
	default:
		return nil, fmt.Errorf("experiments: unknown scenario %d", kind)
	}
}

// meanSeriesReduce is the reduction shared by every sweep figure: one series
// per variant, each data point the mean of that (x, variant) pair's runs.
// Averaging follows run order, so the result is bit-identical to the former
// hand-rolled loops.
func meanSeriesReduce(title, xlabel, ylabel string, xs []float64, labels []string) func(*runner.Grid) (*trace.Table, error) {
	return func(g *runner.Grid) (*trace.Table, error) {
		tab := &trace.Table{Title: title, XLabel: xlabel, YLabel: ylabel, X: xs}
		for vi, label := range labels {
			vals := make([]float64, len(xs))
			for xi := range xs {
				vals[xi] = stats.Mean(g.Runs(xi, vi))
			}
			tab.Series = append(tab.Series, trace.Series{Label: label, Values: vals})
		}
		return tab, tab.Validate()
	}
}

// SpecNames lists every experiment the registry can build, in canonical
// order: the paper figures, the Rocketfuel table, the ablations, and the
// variant/scenario sweeps. Worker processes and shard runs address
// experiments by these names.
func SpecNames() []string {
	names := make([]string, 0, len(specRegistry()))
	for _, e := range specRegistry() {
		names = append(names, e.name)
	}
	return names
}

// NewSpec builds the declarative grid of one experiment by name. The same
// (name, Options) pair builds the identical spec in every process, which is
// what lets coordinator and workers agree on cell coordinates.
func NewSpec(name string, o Options) (*runner.Spec, error) {
	for _, e := range specRegistry() {
		if e.name == name {
			return e.build(o), nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown spec %q", name)
}

type specEntry struct {
	name  string
	build func(Options) *runner.Spec
}

func specRegistry() []specEntry {
	return []specEntry{
		{"1", figure1Spec},
		{"2", figure2Spec},
		{"3", figure3Spec},
		{"4", figure4Spec},
		{"5", figure5Spec},
		{"6", figure6Spec},
		{"7", figure7Spec},
		{"8", figure8Spec},
		{"9", figure9Spec},
		{"10", figure10Spec},
		{"11", figure11Spec},
		{"12", figure12Spec},
		{"13", figure13Spec},
		{"14", figure14Spec},
		{"15", figure15Spec},
		{"16", figure16Spec},
		{"17", figure17Spec},
		{"18", figure18Spec},
		{"19", figure19Spec},
		{"rocketfuel", rocketfuelSpec},
		{"wfa-rocketfuel", wfaRocketfuelSpec},
		{"ablation-queue", ablationQueueSpec},
		{"ablation-expiry", ablationExpirySpec},
		{"ablation-y", ablationYSpec},
		{"ablation-theta", ablationThetaSpec},
		{"ablation-load", ablationLoadSpec},
		{"ablation-assign", ablationAssignSpec},
		{"variants", variantsSpec},
		{"compare-scenarios", compareScenariosSpec},
		{"scenario-flash-crowd", scenarioFlashCrowdSpec},
		{"scenario-diurnal", scenarioDiurnalSpec},
	}
}
