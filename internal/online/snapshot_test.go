package online

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// snapshotEnv builds a deterministic environment and workload for the
// state-snapshot round-trip checks.
func snapshotEnv(t *testing.T, rounds int) (*sim.Env, *workload.Sequence) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	g, err := gen.ErdosRenyi(30, 0.12, gen.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.Params{Beta: 40, Create: 400, RunActive: 2.5, RunInactive: 0.5},
		core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 6, Lambda: 6}, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return env, seq
}

// TestStateSnapshotRoundTrip pins the sim.StateSnapshotter contract for
// ONTH and ONBR: run k rounds, snapshot, restore the snapshot into a
// fresh Reset instance, play the remaining rounds on both — every
// subsequent round cost must be bit-identical. The split is chosen so it
// lands mid-epoch (non-zero accumulators and thresholds in flight).
func TestStateSnapshotRoundTrip(t *testing.T) {
	const rounds, split = 120, 47
	algs := []struct {
		name string
		mk   func() sim.Algorithm
	}{
		{"ONTH", func() sim.Algorithm { return NewONTH() }},
		{"ONBR", func() sim.Algorithm { return NewONBR() }},
		{"ONBR-dyn", func() sim.Algorithm { return NewONBRDynamic() }},
	}
	for _, tc := range algs {
		t.Run(tc.name, func(t *testing.T) {
			env, seq := snapshotEnv(t, rounds)

			orig, err := sim.NewStream(env, tc.mk(), "orig")
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < split; i++ {
				if _, err := orig.Serve(seq.Demand(i)); err != nil {
					t.Fatal(err)
				}
			}
			snap, ok := orig.Algorithm().(sim.StateSnapshotter)
			if !ok {
				t.Fatalf("%s does not implement sim.StateSnapshotter", tc.name)
			}
			state, err := snap.SnapshotState()
			if err != nil {
				t.Fatal(err)
			}

			restored, err := sim.NewStream(env, tc.mk(), "restored")
			if err != nil {
				t.Fatal(err)
			}
			if err := restored.Algorithm().(sim.StateSnapshotter).RestoreState(state); err != nil {
				t.Fatal(err)
			}
			restored.RestoreTotals(orig.Round(), orig.Ledger().Totals)

			if !restored.Placement().Equal(orig.Placement()) {
				t.Fatalf("restored placement %v, original %v", restored.Placement(), orig.Placement())
			}
			for i := split; i < rounds; i++ {
				a, err := orig.Serve(seq.Demand(i))
				if err != nil {
					t.Fatal(err)
				}
				b, err := restored.Serve(seq.Demand(i))
				if err != nil {
					t.Fatal(err)
				}
				if a != b {
					t.Fatalf("round %d diverged after restore:\n  orig     %+v\n  restored %+v", i, a, b)
				}
			}
			ta, tb := orig.Ledger().Totals, restored.Ledger().Totals
			if math.Float64bits(ta.Total()) != math.Float64bits(tb.Total()) {
				t.Fatalf("totals diverged: %v vs %v", ta, tb)
			}
		})
	}
}

// TestRestoreRejectsGarbage: a corrupt snapshot is reported, not applied.
func TestRestoreRejectsGarbage(t *testing.T) {
	env, _ := snapshotEnv(t, 1)
	a := NewONTH()
	if err := a.Reset(env); err != nil {
		t.Fatal(err)
	}
	if err := a.RestoreState([]byte("not json")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if err := NewONBR().RestoreState([]byte("{}")); err == nil {
		t.Fatal("restore before Reset accepted")
	}
	if _, err := NewONTH().SnapshotState(); err == nil {
		t.Fatal("snapshot before Reset accepted")
	}
}
