package online

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// This file pins the batched-sweep rewrites of ONCONF and WFA to naive
// reference implementations retaining the per-configuration Access loops
// they replaced. Parity is exact: identical per-round ledgers (bitwise
// floats) and identical final placements over full simulation runs.

// naiveONCONF is the retained pre-sweep ONCONF: one Access evaluation per
// configuration per round, a fresh alive slice per switch.
type naiveONCONF struct {
	base
	rng      *rand.Rand
	configs  []core.Placement
	counters []float64
	cur      int
	budget   float64
}

func (a *naiveONCONF) Name() string { return "naive-ONCONF" }

func (a *naiveONCONF) Reset(env *sim.Env) error {
	k := env.Pool.MaxServers
	if k <= 0 {
		k = env.Graph.N()
	}
	a.configs = core.EnumeratePlacements(env.Graph.N(), k)
	a.reset(env)
	a.counters = make([]float64, len(a.configs))
	a.cur = -1
	for i, c := range a.configs {
		if c.Equal(env.Start) {
			a.cur = i
			break
		}
	}
	if a.cur < 0 {
		return fmt.Errorf("naive onconf: start not enumerated")
	}
	a.budget = float64(k) * env.Costs.Create
	return nil
}

func (a *naiveONCONF) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	for i, c := range a.configs {
		ac := a.env.Eval.Access(c, d)
		a.counters[i] += ac.Total() + a.env.Costs.Run(c.Len(), 0)
	}
	if a.counters[a.cur] < a.budget {
		return core.Delta{}
	}
	alive := make([]int, 0, len(a.configs))
	for i, cnt := range a.counters {
		if cnt < a.budget {
			alive = append(alive, i)
		}
	}
	if len(alive) == 0 {
		for i := range a.counters {
			a.counters[i] = 0
		}
		a.pool.AdvanceEpoch()
		return core.Delta{}
	}
	next := alive[a.rng.Intn(len(alive))]
	a.cur = next
	delta := a.apply(a.configs[next])
	a.pool.AdvanceEpoch()
	return delta
}

// naiveWFA is the retained pre-sweep WFA: per-config Access, [][]dist,
// full O(C²) work-function scan.
type naiveWFA struct {
	base
	configs []core.Placement
	work    []float64
	scratch []float64
	dist    [][]float64
	cur     int
}

func (a *naiveWFA) Name() string { return "naive-WFA" }

func (a *naiveWFA) Reset(env *sim.Env) error {
	k := env.Pool.MaxServers
	if k <= 0 {
		k = env.Graph.N()
	}
	a.reset(env)
	a.configs = core.EnumeratePlacements(env.Graph.N(), k)
	a.work = make([]float64, len(a.configs))
	a.scratch = make([]float64, len(a.configs))
	a.dist = make([][]float64, len(a.configs))
	a.cur = -1
	for i, c := range a.configs {
		if c.Equal(env.Start) {
			a.cur = i
		}
	}
	if a.cur < 0 {
		return fmt.Errorf("naive wfa: start not enumerated")
	}
	for i, ci := range a.configs {
		a.dist[i] = make([]float64, len(a.configs))
		for j, cj := range a.configs {
			entering, leaving := ci.Diff(cj)
			a.dist[i][j] = env.Costs.Transition(len(entering), len(leaving))
		}
		entering, leaving := env.Start.Diff(ci)
		a.work[i] = env.Costs.Transition(len(entering), len(leaving))
	}
	return nil
}

func (a *naiveWFA) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	for i, c := range a.configs {
		ac := a.env.Eval.Access(c, d)
		task := math.Inf(1)
		if !ac.Infinite() {
			task = ac.Total() + a.env.Costs.Run(c.Len(), 0)
		}
		a.scratch[i] = a.work[i] + task
	}
	next, bestVal := a.cur, a.scratch[a.cur]
	for j := range a.configs {
		if v := a.scratch[j] + a.dist[a.cur][j]; v < bestVal {
			next, bestVal = j, v
		}
	}
	for j := range a.configs {
		best := math.Inf(1)
		for i := range a.configs {
			if c := a.scratch[i] + a.dist[i][j]; c < best {
				best = c
			}
		}
		a.work[j] = best
	}
	if next == a.cur {
		return core.Delta{}
	}
	a.cur = next
	return a.apply(a.configs[next])
}

// parityEnv builds a randomized small environment whose configuration
// space stays enumerable.
func parityEnv(t *testing.T, rng *rand.Rand, load cost.LoadFunc) (*sim.Env, *workload.Sequence) {
	t.Helper()
	n := 6 + rng.Intn(5)
	g, err := gen.ErdosRenyi(n, 0.4, gen.DefaultOptions(), rand.New(rand.NewSource(rng.Int63())))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, load, cost.AssignMinCost, cost.DefaultParams(),
		core.Params{QueueCap: 3, Expiry: 15, MaxServers: 2 + rng.Intn(2)})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: 4, Lambda: 4}, 60)
	if err != nil {
		t.Fatal(err)
	}
	return env, seq
}

func ledgersIdentical(t *testing.T, trial int, got, want *sim.Ledger) {
	t.Helper()
	if len(got.Rounds) != len(want.Rounds) {
		t.Fatalf("trial %d: %d rounds vs %d", trial, len(got.Rounds), len(want.Rounds))
	}
	for r := range got.Rounds {
		if got.Rounds[r] != want.Rounds[r] {
			t.Fatalf("trial %d round %d: %+v != naive %+v", trial, r, got.Rounds[r], want.Rounds[r])
		}
	}
	if got.Totals != want.Totals {
		t.Fatalf("trial %d: totals %+v != naive %+v", trial, got.Totals, want.Totals)
	}
}

func TestONCONFMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4021))
	loads := []cost.LoadFunc{cost.Linear{}, cost.Quadratic{}}
	for trial := 0; trial < 8; trial++ {
		env, seq := parityEnv(t, rng, loads[trial%len(loads)])
		seed := rng.Int63()
		a := NewONCONF(rand.New(rand.NewSource(seed)))
		got, err := sim.Run(env, a, seq)
		if err != nil {
			t.Fatal(err)
		}
		ref := &naiveONCONF{rng: rand.New(rand.NewSource(seed))}
		want, err := sim.Run(env, ref, seq)
		if err != nil {
			t.Fatal(err)
		}
		ledgersIdentical(t, trial, got, want)
		if !a.Placement().Equal(ref.Placement()) {
			t.Fatalf("trial %d: final placement %v != naive %v", trial, a.Placement(), ref.Placement())
		}
		for i := range a.counters {
			if a.counters[i] != ref.counters[i] {
				t.Fatalf("trial %d: counter %d = %v, naive %v", trial, i, a.counters[i], ref.counters[i])
			}
		}
	}
}

func TestWFAMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6733))
	loads := []cost.LoadFunc{cost.Linear{}, cost.Quadratic{}}
	for trial := 0; trial < 8; trial++ {
		env, seq := parityEnv(t, rng, loads[trial%len(loads)])
		a := NewWFA()
		got, err := sim.Run(env, a, seq)
		if err != nil {
			t.Fatal(err)
		}
		ref := &naiveWFA{}
		want, err := sim.Run(env, ref, seq)
		if err != nil {
			t.Fatal(err)
		}
		ledgersIdentical(t, trial, got, want)
		if !a.Placement().Equal(ref.Placement()) {
			t.Fatalf("trial %d: final placement %v != naive %v", trial, a.Placement(), ref.Placement())
		}
		for i := range a.work {
			if a.work[i] != ref.work[i] {
				t.Fatalf("trial %d: work[%d] = %v, naive %v", trial, i, a.work[i], ref.work[i])
			}
		}
	}
}

// TestSweepAlgorithmsParallelParity re-runs the ONCONF and WFA parity
// checks with several workers and a state space large enough to cross the
// parallel thresholds, so the chunked fan-out paths (broken parent links
// at chunk boundaries, concurrent work-function rows) are exercised and
// race-checked.
func TestSweepAlgorithmsParallelParity(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	g, err := gen.ErdosRenyi(13, 0.35, gen.DefaultOptions(), rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(),
		core.Params{QueueCap: 3, Expiry: 15, MaxServers: 4}) // 1092 states
	if err != nil {
		t.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: 4, Lambda: 30}, 40)
	if err != nil {
		t.Fatal(err)
	}

	a := NewONCONF(rand.New(rand.NewSource(5)))
	got, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	ref := &naiveONCONF{rng: rand.New(rand.NewSource(5))}
	want, err := sim.Run(env, ref, seq)
	if err != nil {
		t.Fatal(err)
	}
	ledgersIdentical(t, 0, got, want)

	w := NewWFA()
	got, err = sim.Run(env, w, seq)
	if err != nil {
		t.Fatal(err)
	}
	refW := &naiveWFA{}
	want, err = sim.Run(env, refW, seq)
	if err != nil {
		t.Fatal(err)
	}
	ledgersIdentical(t, 1, got, want)
	for i := range w.work {
		if w.work[i] != refW.work[i] {
			t.Fatalf("parallel work[%d] = %v, naive %v", i, w.work[i], refW.work[i])
		}
	}
}

// TestWFADisconnectedSubstrateParity pins WFA's infeasibility rule on a
// disconnected substrate (built by hand — sim.NewEnv rejects them), where
// an unreachable single request yields a *finite* latency sentinel
// (graph.Infinity = MaxFloat64): such configurations must be treated as
// infinite-task exactly like AccessCost.Infinite does, matching the
// retained reference.
func TestWFADisconnectedSubstrateParity(t *testing.T) {
	g := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}} {
		g.MustAddEdge(e[0], e[1], 1, 1)
	}
	m := g.AllPairs()
	costs := cost.Params{Beta: 5, Create: 20, RunActive: 1, RunInactive: 0.2}
	env := &sim.Env{
		Graph:  g,
		Metric: m,
		Eval:   cost.NewEvaluator(g, m, cost.Linear{}, cost.AssignMinCost),
		Costs:  costs,
		Pool:   core.Params{Costs: costs, QueueCap: 3, Expiry: 15, MaxServers: 2},
		Start:  core.NewPlacement(1),
	}
	// Single-unit demand in component {0,1,2}: for a configuration living
	// entirely in {3,4,5} the latency is exactly 1·graph.Infinity — finite.
	demands := make([]cost.Demand, 50)
	for i := range demands {
		demands[i] = cost.DemandFromPairs(cost.NodeCount{Node: i % 3, Count: 1})
	}
	seq := workload.NewSequence("disconnected", demands)
	a := NewWFA()
	got, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	ref := &naiveWFA{}
	want, err := sim.Run(env, ref, seq)
	if err != nil {
		t.Fatal(err)
	}
	ledgersIdentical(t, 0, got, want)
	for i := range a.work {
		if a.work[i] != ref.work[i] {
			t.Fatalf("work[%d] = %v, naive %v (config %v)", i, a.work[i], ref.work[i], a.configs[i])
		}
	}
}

// TestONCONFObserveAllocationFree pins the steady-state (no-switch)
// Observe path — one batched sweep plus the counter update — to zero
// allocations.
func TestONCONFObserveAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under the race detector")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(99))
	env, seq := parityEnv(t, rng, cost.Linear{})
	a := NewONCONF(rand.New(rand.NewSource(1)))
	if err := a.Reset(env); err != nil {
		t.Fatal(err)
	}
	a.budget = math.MaxFloat64 // never switch
	d := seq.Demand(0)
	access := env.Eval.Access(a.Placement(), d)
	a.Observe(0, d, access)
	if avg := testing.AllocsPerRun(100, func() { a.Observe(1, d, access) }); avg != 0 {
		t.Errorf("ONCONF.Observe (under budget): %v allocs/op, want 0", avg)
	}
}

// TestONCONFAliveScratchReused pins the pooled alive slice: on the
// budget-exceeded path the per-round allocation volume must stay far
// below the size of the alive index slice (which the pre-sweep code
// allocated fresh every switch round).
func TestONCONFAliveScratchReused(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted under the race detector")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	g, err := gen.ErdosRenyi(16, 0.4, gen.DefaultOptions(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(),
		core.Params{QueueCap: 3, Expiry: 15, MaxServers: 4}) // 2516 configs
	if err != nil {
		t.Fatal(err)
	}
	a := NewONCONF(rand.New(rand.NewSource(7)))
	if err := a.Reset(env); err != nil {
		t.Fatal(err)
	}
	d := cost.DemandFromList([]int{1, 5, 9, 13})
	access := env.Eval.Access(a.Placement(), d)
	aliveBytes := uintptr(len(a.configs)) * 8
	// Pinning the current configuration's counter at the budget forces the
	// switch path — and a full alive scan over ~all configurations — every
	// round. Warm up pools and the alive scratch first.
	for r := 0; r < 8; r++ {
		a.counters[a.cur] = a.budget
		a.Observe(r, d, access)
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	const rounds = 64
	for r := 0; r < rounds; r++ {
		a.counters[a.cur] = a.budget
		a.Observe(8+r, d, access)
	}
	runtime.ReadMemStats(&after)
	perOp := (after.TotalAlloc - before.TotalAlloc) / rounds
	if perOp > uint64(aliveBytes)/2 {
		t.Errorf("switching Observe allocates %d B/op; alive slice (%d B) is evidently not pooled",
			perOp, aliveBytes)
	}
}
