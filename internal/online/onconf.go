package online

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// MaxONCONFConfigs bounds the configuration space ONCONF is willing to
// track. The paper itself notes that "due to the configuration complexity,
// the runtime is only acceptable for a small number of servers k", which is
// why the efficient variants ONBR and ONTH exist.
const MaxONCONFConfigs = 1 << 16

// ONCONF is the generic configuration-counter algorithm of Section III,
// generalising the single-server algorithm of Bienkowski et al. (VISA'10).
// It maintains a counter C(γ) for every configuration γ (every non-empty
// placement of at most k active servers). During an epoch each round adds
// to every counter the cost that configuration would have paid for the
// round (access cost plus running cost). The current configuration is kept
// until its counter reaches k·c; then ONCONF switches to a configuration
// chosen uniformly at random among those with C(γ) < k·c. If no such
// configuration remains, the epoch ends and all counters reset.
//
// Charging every configuration every round is the hot loop; it runs
// through cost.ConfSweep, which batches the whole configuration space into
// one pass per round (bit-identical to the per-configuration Access loop,
// see TestONCONFMatchesNaiveReference).
type ONCONF struct {
	base
	// Rand drives the uniform random switch. It must be set (use
	// NewONCONF).
	Rand *rand.Rand

	configs  []core.Placement
	counters []float64
	cur      int
	budget   float64 // k·c

	sweep     *cost.ConfSweep
	roundCost []float64 // scratch: this round's access total per config
	runCost   []float64 // per config: Costrun(γ) for one round
	alive     []int     // scratch: configs still under budget
}

// NewONCONF returns an ONCONF driven by the given source of randomness.
func NewONCONF(rng *rand.Rand) *ONCONF { return &ONCONF{Rand: rng} }

// Name implements sim.Algorithm.
func (a *ONCONF) Name() string { return "ONCONF" }

// Reset implements sim.Algorithm. It fails when the configuration space of
// the environment is too large to enumerate.
func (a *ONCONF) Reset(env *sim.Env) error {
	if a.Rand == nil {
		return fmt.Errorf("onconf: no random source")
	}
	if len(env.Start) == 0 {
		return fmt.Errorf("onconf: empty initial placement")
	}
	k := env.Pool.MaxServers
	if k <= 0 {
		k = env.Graph.N()
	}
	if count := core.CountPlacements(env.Graph.N(), k, MaxONCONFConfigs); count > MaxONCONFConfigs {
		return fmt.Errorf("onconf: configuration space exceeds the tractable bound %d (n=%d, k=%d); use ONBR or ONTH",
			MaxONCONFConfigs, env.Graph.N(), k)
	}
	a.configs = core.EnumeratePlacements(env.Graph.N(), k)
	a.reset(env)
	a.counters = make([]float64, len(a.configs))
	a.cur = -1
	for i, c := range a.configs {
		if c.Equal(env.Start) {
			a.cur = i
			break
		}
	}
	if a.cur < 0 {
		return fmt.Errorf("onconf: initial placement %v not in configuration space", env.Start)
	}
	a.budget = float64(k) * env.Costs.Create

	views := make([][]int, len(a.configs))
	a.runCost = make([]float64, len(a.configs))
	for i, c := range a.configs {
		views[i] = c
		a.runCost[i] = env.Costs.Run(c.Len(), 0)
	}
	a.sweep = cost.NewConfSweep(env.Eval, views)
	a.roundCost = make([]float64, len(a.configs))
	a.alive = a.alive[:0]
	return nil
}

// Observe implements sim.Algorithm.
func (a *ONCONF) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	// Every configuration is charged what it would have paid this round,
	// in one batched sweep over the configuration space.
	a.sweep.Sweep(d, a.roundCost)
	for i, ac := range a.roundCost {
		a.counters[i] += ac + a.runCost[i]
	}
	if a.counters[a.cur] < a.budget {
		return core.Delta{}
	}
	// Switch uniformly at random among configurations still under budget.
	alive := a.alive[:0]
	for i, cnt := range a.counters {
		if cnt < a.budget {
			alive = append(alive, i)
		}
	}
	a.alive = alive
	if len(alive) == 0 {
		// Epoch over: reset counters, keep the configuration.
		for i := range a.counters {
			a.counters[i] = 0
		}
		a.pool.AdvanceEpoch()
		return core.Delta{}
	}
	next := alive[a.Rand.Intn(len(alive))]
	a.cur = next
	delta := a.apply(a.configs[next])
	a.pool.AdvanceEpoch()
	return delta
}
