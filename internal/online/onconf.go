package online

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// MaxONCONFConfigs is the default bound on the configuration space ONCONF
// and WFA are willing to track (override per instance with MaxConfigs).
// The paper itself notes that "due to the configuration complexity, the
// runtime is only acceptable for a small number of servers k", which is
// why the efficient variants ONBR and ONTH exist; but with the dense
// distance matrix gone the state is O(C), so the bound is a knob rather
// than a wall — the Reset error reports the memory a larger space implies.
const MaxONCONFConfigs = 1 << 16

// ONCONF is the generic configuration-counter algorithm of Section III,
// generalising the single-server algorithm of Bienkowski et al. (VISA'10).
// It maintains a counter C(γ) for every configuration γ (every non-empty
// placement of at most k active servers). During an epoch each round adds
// to every counter the cost that configuration would have paid for the
// round (access cost plus running cost). The current configuration is kept
// until its counter reaches k·c; then ONCONF switches to a configuration
// chosen uniformly at random among those with C(γ) < k·c. If no such
// configuration remains, the epoch ends and all counters reset.
//
// Charging every configuration every round is the hot loop; it runs
// through cost.ConfSweep, which batches the whole configuration space into
// one pass per round (bit-identical to the per-configuration Access loop,
// see TestONCONFMatchesNaiveReference). The counter adds fan out over the
// prefix clusters of hier.go, each cluster's minimum maintained in the
// same pass so the switch scan can skip whole clusters that are entirely
// over budget.
type ONCONF struct {
	base
	// Rand drives the uniform random switch. It must be set (use
	// NewONCONF).
	Rand *rand.Rand

	// MaxConfigs overrides the configuration-space bound (0 selects the
	// default MaxONCONFConfigs).
	MaxConfigs int

	configs  []core.Placement
	counters []float64
	cur      int
	budget   float64 // k·c

	clusters []configCluster // prefix decomposition, for the alive scan
	cMin     []float64       // per cluster: min counter after the charge pass

	sweep     *cost.ConfSweep
	roundCost []float64 // scratch: this round's access total per config
	runCost   []float64 // per config: Costrun(γ) for one round
	alive     []int     // scratch: configs still under budget
}

// NewONCONF returns an ONCONF driven by the given source of randomness.
func NewONCONF(rng *rand.Rand) *ONCONF { return &ONCONF{Rand: rng} }

// Name implements sim.Algorithm.
func (a *ONCONF) Name() string { return "ONCONF" }

// Reset implements sim.Algorithm. It fails when the configuration space of
// the environment is too large to enumerate.
func (a *ONCONF) Reset(env *sim.Env) error {
	if a.Rand == nil {
		return fmt.Errorf("onconf: no random source")
	}
	if len(env.Start) == 0 {
		return fmt.Errorf("onconf: empty initial placement")
	}
	k := env.Pool.MaxServers
	if k <= 0 {
		k = env.Graph.N()
	}
	bound := a.MaxConfigs
	if bound <= 0 {
		bound = MaxONCONFConfigs
	}
	if err := checkConfigSpace("onconf", "; or use ONBR or ONTH", env.Graph.N(), k, bound); err != nil {
		return err
	}
	a.configs = core.EnumeratePlacements(env.Graph.N(), k)
	a.reset(env)
	a.counters = make([]float64, len(a.configs))
	a.cur = -1
	for i, c := range a.configs {
		if c.Equal(env.Start) {
			a.cur = i
			break
		}
	}
	if a.cur < 0 {
		return fmt.Errorf("onconf: initial placement %v not in configuration space", env.Start)
	}
	a.budget = float64(k) * env.Costs.Create

	views := make([][]int, len(a.configs))
	a.runCost = make([]float64, len(a.configs))
	for i, c := range a.configs {
		views[i] = c
		a.runCost[i] = env.Costs.Run(c.Len(), 0)
	}
	a.sweep = cost.NewConfSweep(env.Eval, views)
	a.roundCost = make([]float64, len(a.configs))
	a.clusters = buildClusters(a.configs, env.Graph.N())
	a.cMin = make([]float64, len(a.clusters))
	a.alive = a.alive[:0]
	return nil
}

// Observe implements sim.Algorithm.
func (a *ONCONF) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	// Every configuration is charged what it would have paid this round,
	// in one batched sweep over the configuration space. The counter adds
	// fan out in contiguous cluster chunks with each cluster's minimum
	// folded into the same pass; every counter gets exactly the one add of
	// the serial loop, so the parallel pass cannot change a bit. The
	// serial path avoids the closure so steady-state rounds stay
	// allocation-free (TestONCONFObserveAllocationFree).
	a.sweep.Sweep(d, a.roundCost)
	M := len(a.clusters)
	if len(a.configs) >= wfaParallelThreshold {
		cost.ParallelChunks(M, true, a.chargeRange)
	} else {
		a.chargeRange(0, M)
	}
	if a.counters[a.cur] < a.budget {
		return core.Delta{}
	}
	// Switch uniformly at random among configurations still under budget.
	// Clusters whose cheapest counter is already over budget are skipped
	// without touching members; clusters tile [0, C) in index order, so
	// the alive list is identical to the full scan's.
	alive := a.alive[:0]
	for s := range a.clusters {
		if a.cMin[s] >= a.budget {
			continue
		}
		cl := &a.clusters[s]
		for i := cl.lo; i < cl.hi; i++ {
			if a.counters[i] < a.budget {
				alive = append(alive, i)
			}
		}
	}
	a.alive = alive
	if len(alive) == 0 {
		// Epoch over: reset counters, keep the configuration. The stale
		// cluster minima are recomputed by the next round's charge pass
		// before anything reads them.
		for i := range a.counters {
			a.counters[i] = 0
		}
		a.pool.AdvanceEpoch()
		return core.Delta{}
	}
	next := alive[a.Rand.Intn(len(alive))]
	a.cur = next
	delta := a.apply(a.configs[next])
	a.pool.AdvanceEpoch()
	return delta
}

// chargeRange adds this round's cost to every counter in clusters
// [lo, hi), tracking each cluster's minimum.
func (a *ONCONF) chargeRange(lo, hi int) {
	for s := lo; s < hi; s++ {
		cl := &a.clusters[s]
		mn := math.Inf(1)
		for i := cl.lo; i < cl.hi; i++ {
			c := a.counters[i] + (a.roundCost[i] + a.runCost[i])
			a.counters[i] = c
			if c < mn {
				mn = c
			}
		}
		a.cMin[s] = mn
	}
}
