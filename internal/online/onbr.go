package online

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/cluster"
	"repro/internal/sim"
)

// ONBR is the sequential best-response variant of ONCONF (Section III-A):
// time is divided into epochs; an epoch ends when the cost accumulated in
// the current configuration (access plus running cost) reaches a threshold
// θ, and the algorithm then switches to the cheapest configuration — with
// respect to the passed epoch and including access, migration, running and
// creation cost — among keeping the configuration, migrating one server,
// deactivating one server, or activating/creating one server.
//
// The paper evaluates two threshold variants ("fixed" and "dyn"): a fixed
// θ = 2c, and a dynamic θ = 2c/ℓ where ℓ is the length of the preceding
// epoch, so that the system adapts more quickly after fast-changing epochs.
type ONBR struct {
	base
	// Dynamic selects the θ = 2c/ℓ variant.
	Dynamic bool
	// ThetaFactor scales the threshold: θ = ThetaFactor · c. The paper
	// uses 2. Zero selects the default.
	ThetaFactor float64
	// Clusters, when positive, restricts migration and creation targets to
	// that many k-centers cluster representatives — the "cluster
	// granularity" speed-up sketched in Section III-A. Zero considers
	// every node.
	Clusters int

	theta      float64
	accum      float64
	epochStart int
	epochAgg   *cost.Accumulator
	targets    []int
}

// NewONBR returns the fixed-threshold variant.
func NewONBR() *ONBR { return &ONBR{} }

// NewONBRDynamic returns the dynamic-threshold variant.
func NewONBRDynamic() *ONBR { return &ONBR{Dynamic: true} }

// NewONBRClustered returns the fixed-threshold variant restricted to k
// cluster representatives.
func NewONBRClustered(clusters int) *ONBR { return &ONBR{Clusters: clusters} }

// Name implements sim.Algorithm.
func (a *ONBR) Name() string {
	if a.Clusters > 0 {
		return fmt.Sprintf("ONBR-cluster(%d)", a.Clusters)
	}
	if a.Dynamic {
		return "ONBR-dyn"
	}
	return "ONBR-fixed"
}

func (a *ONBR) factor() float64 {
	if a.ThetaFactor > 0 {
		return a.ThetaFactor
	}
	return 2
}

// Reset implements sim.Algorithm.
func (a *ONBR) Reset(env *sim.Env) error {
	if len(env.Start) == 0 {
		return fmt.Errorf("onbr: empty initial placement")
	}
	a.reset(env)
	a.theta = a.factor() * env.Costs.Create
	a.accum = 0
	a.epochStart = 0
	a.epochAgg = cost.NewAccumulator(env.Graph.N())
	a.targets = nil
	if a.Clusters > 0 {
		cl, err := cluster.KCenters(env.Metric, a.Clusters)
		if err != nil {
			return fmt.Errorf("onbr: %w", err)
		}
		a.targets = cl.Centers
	}
	return nil
}

// Observe implements sim.Algorithm.
func (a *ONBR) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	a.accum += access.Total() + a.pool.RunCost()
	a.epochAgg.Add(d)
	if a.accum < a.theta {
		return core.Delta{}
	}
	// Epoch over: best response against the epoch just passed.
	length := t - a.epochStart + 1
	agg := a.epochAgg.Demand()
	target := a.bestResponse(agg, length, SearchMoves{Move: true, Deactivate: true, Add: true, Targets: a.targets})
	delta := a.apply(target)
	a.pool.AdvanceEpoch()
	if a.Dynamic && length > 0 {
		a.theta = a.factor() * a.env.Costs.Create / float64(length)
	}
	a.accum = 0
	a.epochStart = t + 1
	a.epochAgg.Reset()
	return delta
}
