package online

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// State snapshots (sim.StateSnapshotter) for the servable online
// strategies. ONTH and ONBR carry only plain data between rounds — the
// pool, epoch demand accumulators, and a few scalars — so their state
// serialises exactly: floats travel as bits (never decimal), demand
// accumulators as their sorted (node, count) pairs. ONSAMP does not
// implement the interface: its request sampling consumes an RNG whose
// position cannot be reconstructed from a snapshot, so the serving layer
// keeps its full WAL instead of truncating.

// Interface checks: the snapshot-capable strategies.
var (
	_ sim.StateSnapshotter = (*ONTH)(nil)
	_ sim.StateSnapshotter = (*ONBR)(nil)
)

// accumPairs snapshots an accumulator as its aggregated pairs.
func accumPairs(a *cost.Accumulator) []cost.NodeCount {
	return a.Demand().Pairs()
}

// restoreAccum reinstalls snapshot pairs into a reset accumulator.
func restoreAccum(a *cost.Accumulator, pairs []cost.NodeCount) {
	a.Reset()
	a.Add(cost.DemandFromPairs(pairs...))
}

// onthState is ONTH's serialised run state.
type onthState struct {
	Pool        core.PoolState   `json:"pool"`
	SmallAccum  uint64           `json:"small_accum"` // float bits
	SmallStart  int              `json:"small_start"`
	Small       []cost.NodeCount `json:"small,omitempty"`
	LargeAccess uint64           `json:"large_access"` // float bits
	LargeRun    uint64           `json:"large_run"`    // float bits
	LargeStart  int              `json:"large_start"`
	Large       []cost.NodeCount `json:"large,omitempty"`
}

// SnapshotState implements sim.StateSnapshotter.
func (a *ONTH) SnapshotState() ([]byte, error) {
	if a.pool == nil {
		return nil, fmt.Errorf("onth: snapshot before Reset")
	}
	return json.Marshal(onthState{
		Pool:        a.pool.State(),
		SmallAccum:  math.Float64bits(a.smallAccum),
		SmallStart:  a.smallStart,
		Small:       accumPairs(a.smallAgg),
		LargeAccess: math.Float64bits(a.largeAccess),
		LargeRun:    math.Float64bits(a.largeRun),
		LargeStart:  a.largeStart,
		Large:       accumPairs(a.largeAgg),
	})
}

// RestoreState implements sim.StateSnapshotter.
func (a *ONTH) RestoreState(data []byte) error {
	if a.pool == nil {
		return fmt.Errorf("onth: restore before Reset")
	}
	var s onthState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("onth: bad state snapshot: %w", err)
	}
	a.pool.Restore(s.Pool)
	a.smallAccum = math.Float64frombits(s.SmallAccum)
	a.smallStart = s.SmallStart
	restoreAccum(a.smallAgg, s.Small)
	a.largeAccess = math.Float64frombits(s.LargeAccess)
	a.largeRun = math.Float64frombits(s.LargeRun)
	a.largeStart = s.LargeStart
	restoreAccum(a.largeAgg, s.Large)
	return nil
}

// onbrState is ONBR's serialised run state. Cluster targets are not
// captured: Reset recomputes them deterministically from the environment.
type onbrState struct {
	Pool       core.PoolState   `json:"pool"`
	Theta      uint64           `json:"theta"` // float bits
	Accum      uint64           `json:"accum"` // float bits
	EpochStart int              `json:"epoch_start"`
	Epoch      []cost.NodeCount `json:"epoch,omitempty"`
}

// SnapshotState implements sim.StateSnapshotter.
func (a *ONBR) SnapshotState() ([]byte, error) {
	if a.pool == nil {
		return nil, fmt.Errorf("onbr: snapshot before Reset")
	}
	return json.Marshal(onbrState{
		Pool:       a.pool.State(),
		Theta:      math.Float64bits(a.theta),
		Accum:      math.Float64bits(a.accum),
		EpochStart: a.epochStart,
		Epoch:      accumPairs(a.epochAgg),
	})
}

// RestoreState implements sim.StateSnapshotter.
func (a *ONBR) RestoreState(data []byte) error {
	if a.pool == nil {
		return fmt.Errorf("onbr: restore before Reset")
	}
	var s onbrState
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("onbr: bad state snapshot: %w", err)
	}
	a.pool.Restore(s.Pool)
	a.theta = math.Float64frombits(s.Theta)
	a.accum = math.Float64frombits(s.Accum)
	a.epochStart = s.EpochStart
	restoreAccum(a.epochAgg, s.Epoch)
	return nil
}
