package online

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestHugeSubstrateSparseMetric is the scale acceptance check of the
// metric-backend refactor: a 10⁵-node small-world substrate — whose dense
// matrix would be 10¹⁰ floats, far beyond any test machine — runs an
// online-algorithm scenario end to end on the sparse backend. Memory
// stays bounded by the row cache (64 rows × 10⁵ floats ≈ 51 MB ceiling,
// far less in practice since only rows actually queried materialize), and
// runtime stays in test-suite range because the Dijkstra working set is
// the set of server positions and demand access points, not n.
func TestHugeSubstrateSparseMetric(t *testing.T) {
	const n = 100000
	rng := rand.New(rand.NewSource(42))
	g, err := gen.SmallWorld(n, n/4, gen.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	m := graph.NewSparse(g, 64)

	// The exact center scan is one Dijkstra per node — the one thing a
	// huge substrate cannot afford — so the environment starts at the
	// pseudo-diameter midpoint instead, exactly like flexserve -start approx.
	start := core.NewPlacement(g.ApproxCenter())
	env, err := sim.NewEnvMetric(g, m, cost.Linear{}, cost.AssignMinCost,
		cost.Params{Beta: 40, Create: 400, RunActive: 2.5, RunInactive: 0.5},
		core.Params{QueueCap: 3, Expiry: 20}, start)
	if err != nil {
		t.Fatal(err)
	}

	// A rotating-hotspot scenario over a fixed access-point set: three
	// hotspots take 10-round turns while two background nodes stay warm.
	const rounds = 30
	hotspots := []int{n / 6, n / 2, 5 * n / 6}
	background := []int{n / 3, 2 * n / 3}
	demands := make([]cost.Demand, rounds)
	for i := range demands {
		pairs := []cost.NodeCount{{Node: hotspots[(i/10)%len(hotspots)], Count: 6}}
		for _, b := range background {
			pairs = append(pairs, cost.NodeCount{Node: b, Count: 1})
		}
		demands[i] = cost.DemandFromPairs(pairs...)
	}
	seq := workload.NewSequence("huge-hotspot", demands)

	stream, err := sim.NewStream(env, NewONTH(), "huge-sparse")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if _, err := stream.Serve(seq.Demand(i)); err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}

	totals := stream.Ledger().Totals
	if total := totals.Total(); total <= 0 || math.IsInf(total, 0) || math.IsNaN(total) {
		t.Fatalf("degenerate total cost %v on the huge substrate", total)
	}
	if stream.Round() != rounds {
		t.Fatalf("served %d rounds, want %d", stream.Round(), rounds)
	}
	if got := m.CachedRows(); got > 64 {
		t.Fatalf("sparse cache holds %d rows, capacity is 64 — memory not bounded", got)
	}
	if p := stream.Placement(); len(p) == 0 {
		t.Fatal("empty placement after the run")
	}
}
