package online

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/sim"
	"repro/internal/workload"
)

func lineEnv(t *testing.T, n, k int, params cost.Params) *sim.Env {
	t.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, params,
		core.Params{QueueCap: 3, Expiry: 20, MaxServers: k})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func erEnv(t *testing.T, n, k int, seed int64) *sim.Env {
	t.Helper()
	g, err := gen.ErdosRenyi(n, 0.05, gen.DefaultOptions(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(),
		core.Params{QueueCap: 3, Expiry: 20, MaxServers: k})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func checkLedgerSane(t *testing.T, l *sim.Ledger) {
	t.Helper()
	if math.IsNaN(l.Total()) || math.IsInf(l.Total(), 0) || l.Total() < 0 {
		t.Fatalf("%s: degenerate total %v", l.Algorithm, l.Total())
	}
	for tt, r := range l.Rounds {
		if r.Active < 1 {
			t.Fatalf("%s round %d: no active servers", l.Algorithm, tt)
		}
	}
}

func TestONBRMigratesTowardDemand(t *testing.T) {
	// All demand at one end of a long line: ONBR must eventually stop
	// paying the full line latency — either by migrating or by creating a
	// server near the demand.
	env := lineEnv(t, 10, 3, cost.DefaultParams())
	demands := make([]cost.Demand, 200)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{9, 9, 9})
	}
	seq := workload.NewSequence("corner", demands)
	l, err := sim.Run(env, NewONBR(), seq)
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerSane(t, l)
	last := l.Rounds[len(l.Rounds)-1]
	if last.Latency != 0 {
		t.Fatalf("final round latency %v, want 0 (server should sit on the demand)", last.Latency)
	}
}

func TestONBRBeatsDoNothingOnSkewedDemand(t *testing.T) {
	env := lineEnv(t, 10, 3, cost.DefaultParams())
	demands := make([]cost.Demand, 300)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{9, 9, 9, 9})
	}
	seq := workload.NewSequence("corner", demands)
	lBR, err := sim.Run(env, NewONBR(), seq)
	if err != nil {
		t.Fatal(err)
	}
	// Do-nothing reference: center server forever.
	doNothing := 0.0
	for tt := 0; tt < seq.Len(); tt++ {
		doNothing += env.Eval.Access(env.Start, seq.Demand(tt)).Total() + env.Costs.Run(1, 0)
	}
	if lBR.Total() >= doNothing {
		t.Fatalf("ONBR %v not better than never reconfiguring %v", lBR.Total(), doNothing)
	}
}

func TestONBRVariantNames(t *testing.T) {
	if NewONBR().Name() != "ONBR-fixed" {
		t.Fatal("fixed name wrong")
	}
	if NewONBRDynamic().Name() != "ONBR-dyn" {
		t.Fatal("dyn name wrong")
	}
}

func TestONBRDynamicAdaptsTheta(t *testing.T) {
	env := lineEnv(t, 8, 3, cost.DefaultParams())
	a := NewONBRDynamic()
	demands := make([]cost.Demand, 100)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{7, 7, 7, 7, 7})
	}
	if _, err := sim.Run(env, a, workload.NewSequence("x", demands)); err != nil {
		t.Fatal(err)
	}
	if a.theta == a.factor()*env.Costs.Create {
		t.Fatal("dynamic θ never changed")
	}
}

func TestONTHAddsServersUnderLoad(t *testing.T) {
	// Heavy spread demand across an ER network must push ONTH's large
	// epoch rule to allocate extra servers.
	env := erEnv(t, 60, 8, 5)
	rng := rand.New(rand.NewSource(6))
	seq, err := workload.Uniform(60, 40, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	l, err := sim.Run(env, NewONTH(), seq)
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerSane(t, l)
	if l.MaxActive() < 2 {
		t.Fatalf("ONTH never added a server (max active %d)", l.MaxActive())
	}
}

func TestONTHConvergesUnderConstantDemand(t *testing.T) {
	// "Both ONBR and ONTH have the appealing property that in case of
	// constant demand, they will eventually converge to a stable
	// configuration."
	env := lineEnv(t, 10, 3, cost.DefaultParams())
	demands := make([]cost.Demand, 400)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{2, 7})
	}
	seq := workload.NewSequence("const", demands)
	for _, alg := range []sim.Algorithm{NewONTH(), NewONBR()} {
		l, err := sim.Run(env, alg, seq)
		if err != nil {
			t.Fatal(err)
		}
		checkLedgerSane(t, l)
		// No reconfiguration cost in the last quarter of the run.
		for tt := 3 * len(l.Rounds) / 4; tt < len(l.Rounds); tt++ {
			if l.Rounds[tt].Migration != 0 || l.Rounds[tt].Creation != 0 {
				t.Fatalf("%s still reconfiguring in round %d", alg.Name(), tt)
			}
		}
	}
}

func TestONTHRespectsServerBound(t *testing.T) {
	env := erEnv(t, 40, 2, 9)
	seq, err := workload.Uniform(40, 60, 200, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	l, err := sim.Run(env, NewONTH(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if l.MaxActive() > 2 {
		t.Fatalf("ONTH used %d servers, bound is 2", l.MaxActive())
	}
}

func TestONTHQuadraticAllocatesMoreServers(t *testing.T) {
	// Figure 1/2's qualitative claim: a steeper load function makes ONTH
	// run more servers.
	mk := func(load cost.LoadFunc) int {
		g, err := gen.ErdosRenyi(50, 0.08, gen.DefaultOptions(), rand.New(rand.NewSource(21)))
		if err != nil {
			t.Fatal(err)
		}
		env, err := sim.NewEnv(g, load, cost.AssignMinCost, cost.DefaultParams(),
			core.Params{QueueCap: 3, Expiry: 20, MaxServers: 12})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := workload.Uniform(50, 30, 250, rand.New(rand.NewSource(22)))
		if err != nil {
			t.Fatal(err)
		}
		l, err := sim.Run(env, NewONTH(), seq)
		if err != nil {
			t.Fatal(err)
		}
		return l.MaxActive()
	}
	lin, quad := mk(cost.Linear{}), mk(cost.Quadratic{})
	if quad < lin {
		t.Fatalf("quadratic load used %d servers, linear %d; expected ≥", quad, lin)
	}
}

func TestONCONFSmallInstance(t *testing.T) {
	env := lineEnv(t, 5, 2, cost.Params{Beta: 10, Create: 30, RunActive: 1, RunInactive: 0.2})
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 3}, 100)
	if err != nil {
		t.Fatal(err)
	}
	a := NewONCONF(rand.New(rand.NewSource(33)))
	l, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerSane(t, l)
	if a.Name() != "ONCONF" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestONCONFRejectsHugeInstance(t *testing.T) {
	env := erEnv(t, 200, 10, 11)
	a := NewONCONF(rand.New(rand.NewSource(1)))
	if err := a.Reset(env); err == nil {
		t.Fatal("huge configuration space accepted")
	}
}

func TestONCONFRequiresRand(t *testing.T) {
	env := lineEnv(t, 4, 2, cost.DefaultParams())
	a := &ONCONF{}
	if err := a.Reset(env); err == nil {
		t.Fatal("missing rng accepted")
	}
}

func TestOnlineAlgorithmsOnCommuterScenario(t *testing.T) {
	// Integration: all online strategies survive the paper's commuter
	// scenario on an ER graph with sane ledgers.
	env := erEnv(t, 80, 6, 13)
	seq, err := workload.CommuterStatic(env.Metric,
		workload.CommuterConfig{T: workload.TForSize(80), Lambda: 5}, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []sim.Algorithm{NewONBR(), NewONBRDynamic(), NewONTH()} {
		l, err := sim.Run(env, alg, seq)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		checkLedgerSane(t, l)
	}
}

func TestBestResponsePrefersNoChangeOnTinyEpoch(t *testing.T) {
	// With demand already sitting on the server, any move must lose.
	env := lineEnv(t, 6, 3, cost.DefaultParams())
	pool := env.NewPool()
	pool.Bootstrap(core.NewPlacement(2))
	agg := cost.DemandFromList([]int{2, 2})
	target := BestResponse(env, pool, agg, 1, SearchMoves{Move: true, Deactivate: true, Add: true})
	if !target.Equal(core.NewPlacement(2)) {
		t.Fatalf("best response moved to %v although demand is local", target)
	}
}

func TestBestResponseEmptyPool(t *testing.T) {
	env := lineEnv(t, 4, 2, cost.DefaultParams())
	pool := env.NewPool()
	pool.Bootstrap(core.NewPlacement())
	target := BestResponse(env, pool, cost.Demand{}, 1, SearchMoves{Move: true})
	if target.Len() != 0 {
		t.Fatalf("best response on empty pool = %v", target)
	}
}

func TestEpochScorerFallsBackForQuadratic(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	env, err := sim.NewEnv(g, cost.Quadratic{}, cost.AssignMinCost, cost.DefaultParams(), core.Params{})
	if err != nil {
		t.Fatal(err)
	}
	sc := EpochScorer(env, core.NewPlacement(1), cost.DemandFromList([]int{0, 2}), 2)
	if sc == nil {
		t.Fatal("no scorer built")
	}
	if sc.Base() <= 0 {
		t.Fatalf("approx base = %v", sc.Base())
	}
}
