// Package online implements the paper's online allocation strategies
// (Section III): the configuration-counter algorithm ONCONF, its efficient
// sequential best-response variant ONBR (fixed and dynamic threshold), and
// the threshold algorithm ONTH with its small/large epoch structure. All
// three decide without any knowledge of future requests.
//
// The exported BestResponse search is shared with the offline variants
// OFFBR and OFFTH (Section IV-B), which the paper derives from the online
// strategies by scoring the upcoming instead of the passed epoch.
package online

import (
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// SearchMoves describes which single-change candidates a best response may
// consider.
type SearchMoves struct {
	Move       bool // relocate one server to a free node (β)
	Deactivate bool // one server becomes inactive (free)
	Add        bool // activate a cached server or create a new one
	// Targets restricts where servers may be moved to or added; nil allows
	// every node. The clustered variants pass cluster centers here, the
	// "cluster granularity" speed-up of Sections III-A and IV-B.
	Targets []int
}

// EpochScorer builds the candidate scorer for an epoch's aggregated demand:
// the exact closed form when available, otherwise the linearised
// approximation around the epoch's average per-server, per-round volume.
func EpochScorer(env *sim.Env, servers core.Placement, agg cost.Demand, rounds int) *cost.Scorer {
	if s, ok := cost.NewScorer(env.Eval, servers, agg); ok {
		return s
	}
	hint := 0.0
	if len(servers) > 0 && rounds > 0 {
		hint = float64(agg.Total()) / float64(len(servers)*rounds)
	}
	return cost.NewScorerApprox(env.Eval, servers, agg, hint)
}

// BestResponse scores the pool's current placement and all allowed
// single-change candidates against an epoch summary (demand aggregated
// over `rounds` rounds) and returns the cheapest target. The score of a
// candidate is
//
//	reconfiguration cost + access score + rounds · predicted running cost,
//
// matching ONBR's "cheapest configuration w.r.t. the passed epoch including
// access, migration, running, and creation cost".
func BestResponse(env *sim.Env, pool *core.Pool, agg cost.Demand, rounds int, moves SearchMoves) core.Placement {
	cur := pool.Active()
	if len(cur) == 0 {
		return cur
	}
	sc := EpochScorer(env, cur, agg, rounds)
	occupied := make(map[int]bool, len(cur))
	for _, s := range cur {
		occupied[s] = true
	}
	run := func(target core.Placement) float64 {
		return float64(rounds) * env.Costs.Run(target.Len(), pool.PredictInactiveAfter(target))
	}
	// Baseline: keep the configuration.
	best := cur
	bestScore := sc.Base() + run(cur)

	consider := func(target core.Placement, access float64) {
		score := access + pool.PredictSwitch(target).Total() + run(target)
		if score < bestScore {
			best, bestScore = target, score
		}
	}
	targets := moves.Targets
	if targets == nil {
		targets = make([]int, env.Graph.N())
		for v := range targets {
			targets[v] = v
		}
	}
	if moves.Move {
		for i, s := range cur {
			for _, v := range targets {
				if occupied[v] {
					continue
				}
				consider(cur.Moved(s, v), sc.Move(i, v))
			}
		}
	}
	if moves.Deactivate && len(cur) > 1 {
		for i, s := range cur {
			if access := sc.Remove(i); !math.IsInf(access, 1) {
				consider(cur.Without(s), access)
			}
		}
	}
	if moves.Add && (env.Pool.MaxServers <= 0 || len(cur) < env.Pool.MaxServers) {
		for _, v := range targets {
			if occupied[v] {
				continue
			}
			consider(cur.With(v), sc.Add(v))
		}
	}
	return best
}

// base carries the pool plumbing shared by the online strategies.
type base struct {
	env  *sim.Env
	pool *core.Pool
}

func (b *base) reset(env *sim.Env) {
	b.env = env
	b.pool = env.NewPool()
	b.pool.Bootstrap(env.Start)
}

// Placement implements sim.Algorithm.
func (b *base) Placement() core.Placement { return b.pool.Active() }

// Inactive implements sim.Algorithm.
func (b *base) Inactive() int { return b.pool.NumInactive() }

// Prepare implements sim.Algorithm. Online strategies never reconfigure
// before seeing a round's requests.
func (b *base) Prepare(int) core.Delta { return core.Delta{} }

func (b *base) bestResponse(agg cost.Demand, rounds int, moves SearchMoves) core.Placement {
	return BestResponse(b.env, b.pool, agg, rounds, moves)
}

// apply switches the pool to the target and returns the charged delta.
func (b *base) apply(target core.Placement) core.Delta {
	if target.Equal(b.pool.Active()) {
		return core.Delta{}
	}
	d, err := b.pool.SwitchTo(target)
	if err != nil {
		// Candidate generation never proposes empty or over-k placements,
		// so an error here is a programming bug.
		panic(err)
	}
	return d
}
