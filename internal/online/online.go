// Package online implements the paper's online allocation strategies
// (Section III): the configuration-counter algorithm ONCONF, its efficient
// sequential best-response variant ONBR (fixed and dynamic threshold), and
// the threshold algorithm ONTH with its small/large epoch structure. All
// three decide without any knowledge of future requests.
//
// The exported BestResponse search is shared with the offline variants
// OFFBR and OFFTH (Section IV-B), which the paper derives from the online
// strategies by scoring the upcoming instead of the passed epoch.
package online

import (
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// SearchMoves describes which single-change candidates a best response may
// consider.
type SearchMoves struct {
	Move       bool // relocate one server to a free node (β)
	Deactivate bool // one server becomes inactive (free)
	Add        bool // activate a cached server or create a new one
	// Targets restricts where servers may be moved to or added; nil allows
	// every node. The clustered variants pass cluster centers here, the
	// "cluster granularity" speed-up of Sections III-A and IV-B.
	Targets []int
}

// EpochScorer builds the candidate scorer for an epoch's aggregated demand:
// the exact closed form when available, otherwise the linearised
// approximation around the epoch's average per-server, per-round volume.
// The scorer is pooled; callers release it after the sweep.
func EpochScorer(env *sim.Env, servers core.Placement, agg cost.Demand, rounds int) *cost.Scorer {
	if s, ok := cost.NewScorer(env.Eval, servers, agg); ok {
		return s
	}
	hint := 0.0
	if len(servers) > 0 && rounds > 0 {
		hint = float64(agg.Total()) / float64(len(servers)*rounds)
	}
	return cost.NewScorerApprox(env.Eval, servers, agg, hint)
}

// parallelScanThreshold is the candidate-count × access-point work below
// which the sweep stays on one goroutine (fan-out overhead would dominate).
const parallelScanThreshold = 1 << 15

// candidateScan scores the single-change candidates of one best-response
// sweep. Candidates are addressed by a dense ordinal so the sweep can be
// chunked across workers while preserving the sequential semantics
// exactly: the winner is the candidate of minimal score, ties broken
// toward the smallest ordinal (= the order the sequential loop visited).
type candidateScan struct {
	sc      *cost.Scorer
	cur     core.Placement
	targets []int // nil means the identity over all n nodes
	n       int
	work    int // per-candidate work estimate (distinct access points)
	occ     []bool
	cached  []bool

	moves, deacts, adds bool

	// Score constants per candidate kind: score = (access + sw) + run,
	// evaluated in exactly that association order. Indexed by whether the
	// entered node holds a cached inactive server.
	moveSw, moveRun   [2]float64
	deactSw, deactRun float64
	addSw, addRun     [2]float64
}

// numTargets returns the size of the move/add target space.
func (c *candidateScan) numTargets() int {
	if c.targets != nil {
		return len(c.targets)
	}
	return c.n
}

// target maps a target ordinal to a substrate node.
func (c *candidateScan) target(j int) int {
	if c.targets != nil {
		return c.targets[j]
	}
	return j
}

// total returns the number of candidate ordinals.
func (c *candidateScan) total() int {
	nt := c.numTargets()
	total := 0
	if c.moves {
		total += len(c.cur) * nt
	}
	if c.deacts {
		total += len(c.cur)
	}
	if c.adds {
		total += nt
	}
	return total
}

// score evaluates one candidate ordinal; +Inf marks inadmissible ones.
func (c *candidateScan) score(ord int) float64 {
	nt := c.numTargets()
	if c.moves {
		if ord < len(c.cur)*nt {
			i, v := ord/nt, c.target(ord%nt)
			if c.occ[v] {
				return math.Inf(1)
			}
			b := b2i(c.cached[v])
			return (c.sc.Move(i, v) + c.moveSw[b]) + c.moveRun[b]
		}
		ord -= len(c.cur) * nt
	}
	if c.deacts {
		if ord < len(c.cur) {
			access := c.sc.Remove(ord)
			if math.IsInf(access, 1) {
				return math.Inf(1)
			}
			return (access + c.deactSw) + c.deactRun
		}
		ord -= len(c.cur)
	}
	v := c.target(ord)
	if c.occ[v] {
		return math.Inf(1)
	}
	b := b2i(c.cached[v])
	return (c.sc.Add(v) + c.addSw[b]) + c.addRun[b]
}

// materialize builds the placement of a winning ordinal.
func (c *candidateScan) materialize(ord int) core.Placement {
	nt := c.numTargets()
	if c.moves {
		if ord < len(c.cur)*nt {
			i, v := ord/nt, c.target(ord%nt)
			return c.cur.Moved(c.cur[i], v)
		}
		ord -= len(c.cur) * nt
	}
	if c.deacts {
		if ord < len(c.cur) {
			return c.cur.Without(c.cur[ord])
		}
		ord -= len(c.cur)
	}
	return c.cur.With(c.target(ord))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// run scans all candidates — in parallel for large sweeps — and returns
// the minimal score and its ordinal (-1 when no admissible candidate
// exists). The result is independent of the worker count: each chunk
// reduces to its own (score, ordinal) minimum, and the cross-chunk merge
// is the lexicographic minimum over (score, ordinal), so the winner is the
// candidate of minimal score with ties broken toward the smallest ordinal
// — exactly the sequential scan's answer.
func (c *candidateScan) run() (float64, int) {
	total := c.total()
	if total*c.work < parallelScanThreshold {
		// Small sweeps skip the fan-out entirely: no reduction closure,
		// no mutex — the per-round hot loops of ONBR/ONTH stay
		// allocation-free here.
		return c.scanRange(0, total)
	}
	best, bestOrd := math.Inf(1), -1
	var mu sync.Mutex
	cost.ParallelChunks(total, true, func(lo, hi int) {
		s, o := c.scanRange(lo, hi)
		if o < 0 {
			return
		}
		mu.Lock()
		if s < best || (s == best && o < bestOrd) {
			best, bestOrd = s, o
		}
		mu.Unlock()
	})
	return best, bestOrd
}

// scanRange is the sequential kernel of run over [lo, hi).
func (c *candidateScan) scanRange(lo, hi int) (float64, int) {
	best, bestOrd := math.Inf(1), -1
	for ord := lo; ord < hi; ord++ {
		if s := c.score(ord); s < best {
			best, bestOrd = s, ord
		}
	}
	return best, bestOrd
}

// BestResponse scores the pool's current placement and all allowed
// single-change candidates against an epoch summary (demand aggregated
// over `rounds` rounds) and returns the cheapest target. The score of a
// candidate is
//
//	reconfiguration cost + access score + rounds · predicted running cost,
//
// matching ONBR's "cheapest configuration w.r.t. the passed epoch including
// access, migration, running, and creation cost". Candidates are priced by
// shape (PredictShape) and scanned in parallel; the chosen target is
// identical to the sequential sweep's.
func BestResponse(env *sim.Env, pool *core.Pool, agg cost.Demand, rounds int, moves SearchMoves) core.Placement {
	cur := pool.Active()
	if len(cur) == 0 {
		return cur
	}
	sc := EpochScorer(env, cur, agg, rounds)
	defer sc.Release()

	n := env.Graph.N()
	scan := candidateScan{
		sc:      sc,
		cur:     cur,
		targets: moves.Targets,
		n:       n,
		work:    agg.Distinct() + 1,
		occ:     make([]bool, n),
		cached:  make([]bool, n),
		moves:   moves.Move,
		deacts:  moves.Deactivate && len(cur) > 1,
		adds:    moves.Add && (env.Pool.MaxServers <= 0 || len(cur) < env.Pool.MaxServers),
	}
	for _, s := range cur {
		scan.occ[s] = true
	}
	for _, v := range pool.InactiveNodes() {
		scan.cached[v] = true
	}
	rf := float64(rounds)
	for b := 0; b < 2; b++ {
		d, inact := pool.PredictShape(1, 1, b)
		scan.moveSw[b] = d.Total()
		scan.moveRun[b] = rf * env.Costs.Run(len(cur), inact)
		d, inact = pool.PredictShape(1, 0, b)
		scan.addSw[b] = d.Total()
		scan.addRun[b] = rf * env.Costs.Run(len(cur)+1, inact)
	}
	{
		d, inact := pool.PredictShape(0, 1, 0)
		scan.deactSw = d.Total()
		scan.deactRun = rf * env.Costs.Run(len(cur)-1, inact)
	}

	// Baseline: keep the configuration. A candidate must beat it strictly.
	_, keepInact := pool.PredictShape(0, 0, 0)
	keepScore := sc.Base() + rf*env.Costs.Run(len(cur), keepInact)

	best, bestOrd := scan.run()
	if bestOrd < 0 || best >= keepScore {
		return cur
	}
	return scan.materialize(bestOrd)
}

// base carries the pool plumbing shared by the online strategies.
type base struct {
	env  *sim.Env
	pool *core.Pool
}

func (b *base) reset(env *sim.Env) {
	b.env = env
	b.pool = env.NewPool()
	b.pool.Bootstrap(env.Start)
}

// Placement implements sim.Algorithm.
func (b *base) Placement() core.Placement { return b.pool.Active() }

// Inactive implements sim.Algorithm.
func (b *base) Inactive() int { return b.pool.NumInactive() }

// Prepare implements sim.Algorithm. Online strategies never reconfigure
// before seeing a round's requests.
func (b *base) Prepare(int) core.Delta { return core.Delta{} }

func (b *base) bestResponse(agg cost.Demand, rounds int, moves SearchMoves) core.Placement {
	return BestResponse(b.env, b.pool, agg, rounds, moves)
}

// apply switches the pool to the target and returns the charged delta.
func (b *base) apply(target core.Placement) core.Delta {
	if target.Equal(b.pool.Active()) {
		return core.Delta{}
	}
	d, err := b.pool.SwitchTo(target)
	if err != nil {
		// Candidate generation never proposes empty or over-k placements,
		// so an error here is a programming bug.
		panic(err)
	}
	return d
}
