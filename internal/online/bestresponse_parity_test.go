package online

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/sim"
)

// naiveBestResponse is the reference sequential sweep the shape-priced
// parallel scan replaced: one placement materialisation and one pool
// prediction per candidate, visited moves → deactivations → additions.
func naiveBestResponse(env *sim.Env, pool *core.Pool, agg cost.Demand, rounds int, moves SearchMoves) core.Placement {
	cur := pool.Active()
	if len(cur) == 0 {
		return cur
	}
	sc := EpochScorer(env, cur, agg, rounds)
	defer sc.Release()
	occupied := make(map[int]bool, len(cur))
	for _, s := range cur {
		occupied[s] = true
	}
	run := func(target core.Placement) float64 {
		return float64(rounds) * env.Costs.Run(target.Len(), pool.PredictInactiveAfter(target))
	}
	best := cur
	bestScore := sc.Base() + run(cur)
	consider := func(target core.Placement, access float64) {
		score := access + pool.PredictSwitch(target).Total() + run(target)
		if score < bestScore {
			best, bestScore = target, score
		}
	}
	targets := moves.Targets
	if targets == nil {
		targets = make([]int, env.Graph.N())
		for v := range targets {
			targets[v] = v
		}
	}
	if moves.Move {
		for i, s := range cur {
			for _, v := range targets {
				if occupied[v] {
					continue
				}
				consider(cur.Moved(s, v), sc.Move(i, v))
			}
		}
	}
	if moves.Deactivate && len(cur) > 1 {
		for i, s := range cur {
			if access := sc.Remove(i); !math.IsInf(access, 1) {
				consider(cur.Without(s), access)
			}
		}
	}
	if moves.Add && (env.Pool.MaxServers <= 0 || len(cur) < env.Pool.MaxServers) {
		for _, v := range targets {
			if occupied[v] {
				continue
			}
			consider(cur.With(v), sc.Add(v))
		}
	}
	return best
}

// TestBestResponseMatchesNaiveReference drives randomized pools (with
// cached inactive servers accumulated through real switches), demands,
// cost models, and search-move subsets, and requires the optimised
// BestResponse to pick exactly the reference's target.
func TestBestResponseMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(557))
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(30)
		g := graph.New(n)
		for v := 1; v < n; v++ {
			g.MustAddEdge(rng.Intn(v), v, 0.25+4*rng.Float64(), 1)
		}
		for extra := rng.Intn(n); extra > 0; extra-- {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 0.25+4*rng.Float64(), 1)
			}
		}
		params := cost.DefaultParams()
		if trial%3 == 1 {
			params = cost.InvertedParams()
		}
		var load cost.LoadFunc = cost.Linear{}
		if trial%4 == 3 {
			load = cost.Quadratic{}
		}
		maxServers := 0
		if trial%5 == 0 {
			maxServers = 2 + rng.Intn(3)
		}
		env, err := sim.NewEnv(g, load, cost.AssignMinCost, params,
			core.Params{QueueCap: rng.Intn(4), Expiry: 20, MaxServers: maxServers})
		if err != nil {
			t.Fatal(err)
		}
		pool := env.NewPool()
		pool.Bootstrap(env.Start)
		// Random walk of switches so the cache holds real inactive servers.
		for step := 0; step < 4; step++ {
			curLen := pool.NumActive()
			target := core.NewPlacement(rng.Intn(n))
			for target.Len() < curLen+rng.Intn(2) && target.Len() < n {
				target = target.With(rng.Intn(n))
			}
			if maxServers > 0 && target.Len() > maxServers {
				continue
			}
			if _, err := pool.SwitchTo(target); err != nil {
				t.Fatal(err)
			}
		}
		list := make([]int, 1+rng.Intn(50))
		for i := range list {
			list[i] = rng.Intn(n)
		}
		agg := cost.DemandFromList(list)
		rounds := 1 + rng.Intn(10)
		moves := SearchMoves{
			Move:       rng.Intn(4) != 0,
			Deactivate: rng.Intn(4) != 0,
			Add:        rng.Intn(4) != 0,
		}
		if rng.Intn(3) == 0 {
			k := 1 + rng.Intn(n)
			moves.Targets = rng.Perm(n)[:k]
		}
		got := BestResponse(env, pool, agg, rounds, moves)
		want := naiveBestResponse(env, pool, agg, rounds, moves)
		if !got.Equal(want) {
			t.Fatalf("trial %d: BestResponse = %v, naive = %v (moves %+v)",
				trial, got, want, moves)
		}
	}
}
