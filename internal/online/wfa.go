package online

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// WFA is the classical work-function algorithm for metrical task systems,
// included as the theory-grounded baseline the paper's related-work section
// points to ("there is, e.g., an asymptotically optimal deterministic
// Θ(n)-competitive algorithm, where n is the state space"). States are the
// active placements of at most k servers; the per-round task cost of a
// state is its access plus running cost; the transition cost between
// states is the reconfiguration cost of Examples 1–3.
//
// WFA maintains the work function
//
//	w_t(γ) = min over γ' of [ w_{t-1}(γ') + task_t(γ') + d(γ', γ) ]
//
// (the cheapest cost of any schedule that serves rounds 0..t and ends in
// γ) and, after each round, moves to the state minimising
// w_t(γ) + d(γ_cur, γ). Like ONCONF it is only tractable for small
// configuration spaces; Reset fails beyond MaxONCONFConfigs states.
type WFA struct {
	base

	configs []core.Placement
	work    []float64
	scratch []float64
	dist    [][]float64 // d[i][j]: reconfiguration cost i → j
	cur     int
}

// NewWFA returns the work-function baseline.
func NewWFA() *WFA { return &WFA{} }

// Name implements sim.Algorithm.
func (a *WFA) Name() string { return "WFA" }

// Reset implements sim.Algorithm.
func (a *WFA) Reset(env *sim.Env) error {
	if len(env.Start) == 0 {
		return fmt.Errorf("wfa: empty initial placement")
	}
	k := env.Pool.MaxServers
	if k <= 0 {
		k = env.Graph.N()
	}
	if count := core.CountPlacements(env.Graph.N(), k, MaxONCONFConfigs); count > MaxONCONFConfigs {
		return fmt.Errorf("wfa: configuration space exceeds the tractable bound %d (n=%d, k=%d)",
			MaxONCONFConfigs, env.Graph.N(), k)
	}
	a.reset(env)
	a.configs = core.EnumeratePlacements(env.Graph.N(), k)
	a.work = make([]float64, len(a.configs))
	a.scratch = make([]float64, len(a.configs))
	a.dist = make([][]float64, len(a.configs))
	a.cur = -1
	for i, c := range a.configs {
		if c.Equal(env.Start) {
			a.cur = i
		}
	}
	if a.cur < 0 {
		return fmt.Errorf("wfa: initial placement %v not in configuration space", env.Start)
	}
	for i, ci := range a.configs {
		a.dist[i] = make([]float64, len(a.configs))
		for j, cj := range a.configs {
			entering, leaving := ci.Diff(cj)
			a.dist[i][j] = env.Costs.Transition(len(entering), len(leaving))
		}
		// Initial work function: cost of moving from the start state.
		entering, leaving := env.Start.Diff(ci)
		a.work[i] = env.Costs.Transition(len(entering), len(leaving))
	}
	return nil
}

// Observe implements sim.Algorithm: incorporate round t's task costs into
// the work function and move with the operational rule of Borodin &
// El-Yaniv,
//
//	γ_next = argmin over γ of [ w_{t-1}(γ) + task_t(γ) + d(γ_cur, γ) ],
//
// which strictly improves when staying keeps accumulating task cost (the
// plain "argmin w_t(γ) + d" rule never moves: by the work function's
// Lipschitz property the current state is always among its minimisers).
func (a *WFA) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	// scratch(γ) = w_{t-1}(γ) + task_t(γ).
	for i, c := range a.configs {
		ac := a.env.Eval.Access(c, d)
		task := math.Inf(1)
		if !ac.Infinite() {
			task = ac.Total() + a.env.Costs.Run(c.Len(), 0)
		}
		a.scratch[i] = a.work[i] + task
	}
	// Move rule; ties keep the current state.
	next, bestVal := a.cur, a.scratch[a.cur]
	for j := range a.configs {
		if v := a.scratch[j] + a.dist[a.cur][j]; v < bestVal {
			next, bestVal = j, v
		}
	}
	// w_t(γ) = min_γ' scratch(γ') + d(γ', γ).
	for j := range a.configs {
		best := math.Inf(1)
		for i := range a.configs {
			if c := a.scratch[i] + a.dist[i][j]; c < best {
				best = c
			}
		}
		a.work[j] = best
	}
	if next == a.cur {
		return core.Delta{}
	}
	a.cur = next
	return a.apply(a.configs[next])
}
