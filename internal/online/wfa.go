package online

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// WFA is the classical work-function algorithm for metrical task systems,
// included as the theory-grounded baseline the paper's related-work section
// points to ("there is, e.g., an asymptotically optimal deterministic
// Θ(n)-competitive algorithm, where n is the state space"). States are the
// active placements of at most k servers; the per-round task cost of a
// state is its access plus running cost; the transition cost between
// states is the reconfiguration cost of Examples 1–3.
//
// WFA maintains the work function
//
//	w_t(γ) = min over γ' of [ w_{t-1}(γ') + task_t(γ') + d(γ', γ) ]
//
// (the cheapest cost of any schedule that serves rounds 0..t and ends in
// γ) and, after each round, moves to the state minimising
// w_t(γ) + d(γ_cur, γ).
//
// The naive update is O(C²) per round over a dense C×C distance matrix
// (O(C²) memory — 32 GB at the nominal MaxONCONFConfigs bound). Both
// collapse because the transition cost depends only on the set-difference
// shape (how many servers enter and how many leave, at most (k+1)²
// distinct values, see shapeTable):
//
//	w_t(γ) = min over S ⊆ γ, t ≥ |S| of
//	         [ cheapest scratch of any state ⊇ S with t servers
//	           + shape cost(|γ|-|S| entering, t-|S| leaving) ]
//
// because the shape cost along a diagonal (fixed server-count change) is
// non-increasing in the overlap, so a candidate charged through a subset
// of its true overlap is never undercharged, while its exact class charges
// it exactly. One superset-min pass over the subset lattice (O(C·2^k))
// replaces the O(C²) scan, and the per-destination fold touches 2^k
// classes instead of C predecessors. The move rule prunes hierarchically
// instead: configurations are grouped into contiguous prefix clusters
// (core.EnumeratePlacements' DFS order, hier.go), and per-cluster scratch
// minima with shape lower bounds rule whole clusters out before members
// are scored. Every candidate either enters a min unchanged or is skipped
// only with proof it cannot strictly improve it, so fast paths compute
// exactly the full scan's float sums (TestWFAMatchesNaiveReference,
// TestWFAPrunedScanPerRoundParity).
type WFA struct {
	base

	// MaxConfigs overrides the configuration-space bound (0 selects the
	// default MaxONCONFConfigs). State is O(C·2^k) words, no longer O(C²),
	// so the bound is a memory/latency knob, not a hard wall; the Reset
	// error reports the footprint a rejected space would need.
	MaxConfigs int

	configs []core.Placement
	work    []float64
	scratch []float64
	cur     int

	shape    *shapeTable
	sizes    []uint8         // |γ| per config, for the class decomposition
	clusters []configCluster // prefix decomposition (move-rule pruning, stats)
	cMin     []float64       // per cluster: min scratch this round
	mrVal    []float64       // per cluster: best move-rule value below the stay-put seed
	mrIdx    []int32         // per cluster: index attaining mrVal (-1 = none)
	impBuf   []int32         // per cluster: destinations whose work beat stay-put
	improved int

	// Subset lattice for the shape-bucketed update: subIdx[subOff[i]:
	// subOff[i+1]] holds the enumeration index of every non-empty subset
	// of configuration i (O(C·2^k) once, replacing the O(C²) matrix).
	subOff []int64
	subIdx []int32
	g      [][]float64 // g[t][S] = min scratch over configs ⊇ S with t servers
	gEmpty []float64   // gEmpty[t] = min scratch over all configs with t servers

	sweep   *cost.ConfSweep
	taskBuf []float64 // scratch: per-config access totals of the round
	latBuf  []float64 // scratch: per-config access latencies (feasibility test)
	runCost []float64 // per config: Costrun(γ) for one round
}

// NewWFA returns the work-function baseline.
func NewWFA() *WFA { return &WFA{} }

// Name implements sim.Algorithm.
func (a *WFA) Name() string { return "WFA" }

// Stats reports the space decomposition and the size of the last round's
// changed-set (destinations whose work function was improved by a
// non-trivial predecessor rather than their own stay-put schedule).
func (a *WFA) Stats() (configs, clusters, improved int) {
	return len(a.configs), len(a.clusters), a.improved
}

// Reset implements sim.Algorithm.
func (a *WFA) Reset(env *sim.Env) error {
	if len(env.Start) == 0 {
		return fmt.Errorf("wfa: empty initial placement")
	}
	n := env.Graph.N()
	k := env.Pool.MaxServers
	if k <= 0 || k > n {
		k = n
	}
	bound := a.MaxConfigs
	if bound <= 0 {
		bound = MaxONCONFConfigs
	}
	if err := checkConfigSpace("wfa", "", n, k, bound); err != nil {
		return err
	}
	a.reset(env)
	a.configs = core.EnumeratePlacements(n, k)
	C := len(a.configs)
	a.work = make([]float64, C)
	a.scratch = make([]float64, C)
	a.cur = -1
	for i, c := range a.configs {
		if c.Equal(env.Start) {
			a.cur = i
		}
	}
	if a.cur < 0 {
		return fmt.Errorf("wfa: initial placement %v not in configuration space", env.Start)
	}
	a.shape = newShapeTable(env.Costs, k)
	a.sizes = make([]uint8, C)
	a.clusters = buildClusters(a.configs, n)
	M := len(a.clusters)
	a.cMin = make([]float64, M)
	a.mrVal = make([]float64, M)
	a.mrIdx = make([]int32, M)
	a.impBuf = make([]int32, M)
	views := make([][]int, C)
	a.runCost = make([]float64, C)
	for i, c := range a.configs {
		views[i] = c
		a.sizes[i] = uint8(c.Len())
		a.runCost[i] = env.Costs.Run(c.Len(), 0)
		// Initial work function: cost of moving from the start state.
		entering, leaving := env.Start.DiffSize(c)
		a.work[i] = env.Costs.Transition(entering, leaving)
	}
	if err := a.buildSubsets(n, k); err != nil {
		return err
	}
	a.g = make([][]float64, k+1)
	for t := 1; t <= k; t++ {
		a.g[t] = make([]float64, C)
	}
	a.gEmpty = make([]float64, k+1)
	a.sweep = cost.NewConfSweep(env.Eval, views)
	a.taskBuf = make([]float64, C)
	a.latBuf = make([]float64, C)
	return nil
}

// buildSubsets fills the subset CSR: for every configuration, the
// enumeration indices of all its non-empty subsets, located in O(k) each
// through the combinatorial structure of the DFS preorder.
func (a *WFA) buildSubsets(n, k int) error {
	C := len(a.configs)
	total := int64(0)
	for _, c := range a.configs {
		total += int64(1)<<uint(c.Len()) - 1
	}
	if total > math.MaxInt32 {
		return fmt.Errorf("wfa: subset lattice of %d entries exceeds 32-bit addressing; lower MaxConfigs or the server bound k", total)
	}
	a.subOff = make([]int64, C+1)
	off := int64(0)
	for i, c := range a.configs {
		a.subOff[i] = off
		off += int64(1)<<uint(c.Len()) - 1
	}
	a.subOff[C] = off
	a.subIdx = make([]int32, off)
	ix := newPlacementIndexer(n, k)
	cost.ParallelChunks(C, C >= wfaParallelThreshold, func(lo, hi int) {
		buf := make(core.Placement, 0, k)
		for i := lo; i < hi; i++ {
			c := a.configs[i]
			m := c.Len()
			out := a.subIdx[a.subOff[i]:a.subOff[i+1]]
			pos := 0
			for mask := 1; mask < 1<<uint(m); mask++ {
				buf = buf[:0]
				for b := 0; b < m; b++ {
					if mask&(1<<uint(b)) != 0 {
						buf = append(buf, c[b])
					}
				}
				out[pos] = int32(ix.indexOf(buf))
				pos++
			}
		}
	})
	return nil
}

// Observe implements sim.Algorithm: incorporate round t's task costs into
// the work function and move with the operational rule of Borodin &
// El-Yaniv,
//
//	γ_next = argmin over γ of [ w_{t-1}(γ) + task_t(γ) + d(γ_cur, γ) ],
//
// which strictly improves when staying keeps accumulating task cost (the
// plain "argmin w_t(γ) + d" rule never moves: by the work function's
// Lipschitz property the current state is always among its minimisers).
func (a *WFA) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	// scratch(γ) = w_{t-1}(γ) + task_t(γ), with the round's access totals
	// batched through the sweep. Feasibility uses AccessCost.Infinite's
	// exact test on the latency term (graph.Infinity is a finite sentinel,
	// so testing the total for +Inf would miss it on disconnected
	// substrates).
	a.sweep.SweepAccess(d, a.taskBuf, a.latBuf)
	k := len(a.gEmpty) - 1
	for t := 1; t <= k; t++ {
		a.gEmpty[t] = math.Inf(1)
	}
	for i := range a.configs {
		task := math.Inf(1)
		if !(cost.AccessCost{Latency: a.latBuf[i]}).Infinite() {
			task = a.taskBuf[i] + a.runCost[i]
		}
		s := a.work[i] + task
		a.scratch[i] = s
		if sz := a.sizes[i]; s < a.gEmpty[sz] {
			a.gEmpty[sz] = s
		}
	}
	a.clusterStats()
	next := a.moveRule()
	a.updateWork()
	if next == a.cur {
		return core.Delta{}
	}
	a.cur = next
	return a.apply(a.configs[next])
}

// clusterStats computes each cluster's scratch minimum, the bound the
// move rule prunes whole clusters with.
func (a *WFA) clusterStats() {
	M := len(a.clusters)
	if len(a.configs) >= wfaParallelThreshold {
		cost.ParallelChunks(M, true, a.clusterStatsRange)
	} else {
		a.clusterStatsRange(0, M)
	}
}

func (a *WFA) clusterStatsRange(lo, hi int) {
	for s := lo; s < hi; s++ {
		cl := &a.clusters[s]
		mn := a.scratch[cl.lo]
		for _, v := range a.scratch[cl.lo+1 : cl.hi] {
			if v < mn {
				mn = v
			}
		}
		a.cMin[s] = mn
	}
}

// moveRule picks γ_next with ties keeping the earliest index and the
// current state when nothing strictly beats its stay-put value — exactly
// the serial full scan's choice. Each cluster records its best strict
// improvement over the stay-put seed independently (so the fan-out is
// worker-count invariant) and the per-cluster results merge serially in
// index order. A candidate is skipped only when a shape lower bound proves
// it cannot strictly improve the incumbent, which can never skip the full
// scan's first argmin.
func (a *WFA) moveRule() int {
	cur := a.configs[a.cur]
	seed := a.scratch[a.cur] // d(γ_cur, γ_cur) = 0: the stay-put value
	M := len(a.clusters)
	if len(a.configs) >= wfaParallelThreshold {
		cost.ParallelChunks(M, true, func(lo, hi int) { a.moveRuleRange(cur, seed, lo, hi) })
	} else {
		a.moveRuleRange(cur, seed, 0, M)
	}
	next, bestVal := a.cur, seed
	for s := range a.mrVal {
		if v := a.mrVal[s]; v < bestVal {
			next, bestVal = int(a.mrIdx[s]), v
		}
	}
	return next
}

func (a *WFA) moveRuleRange(cur core.Placement, seed float64, lo, hi int) {
	k1 := a.shape.k1
	aCur := len(cur)
	for s := lo; s < hi; s++ {
		a.mrVal[s], a.mrIdx[s] = math.Inf(1), -1
		cl := &a.clusters[s]
		best, idx := seed, int32(-1)
		if a.cMin[s] >= best {
			continue
		}
		// γ_cur → member: at least mis nodes enter, at least unc leave.
		unc, mis := cl.prefixBounds(cur)
		if a.cMin[s]+a.shape.sufMin[mis*k1+unc] >= best {
			continue
		}
		for j := cl.lo; j < cl.hi; j++ {
			sj := a.scratch[j]
			if sj >= best {
				continue
			}
			if sj+a.shape.classMin[aCur*k1+int(a.sizes[j])] >= best {
				continue
			}
			e, l := cur.DiffSize(a.configs[j])
			if v := sj + a.shape.cost[e*k1+l]; v < best {
				best, idx = v, int32(j)
			}
		}
		if idx >= 0 {
			a.mrVal[s], a.mrIdx[s] = best, idx
		}
	}
}

// updateWork computes w_t(γ) = min_γ' [scratch(γ') + d(γ', γ)] for every
// destination through the shape decomposition: one superset-min pass per
// server count t fills g[t][S] = min scratch over states ⊇ S with t
// servers (O(C·2^k) total), then each destination folds its 2^|γ| subset
// classes — g[t][S] plus the shape cost of |γ|-|S| servers entering and
// t-|S| leaving — instead of scanning C predecessors. Classes overcharge
// candidates whose true overlap exceeds |S| (the shape cost along a
// diagonal never increases with overlap), and every candidate's exact
// class charges it exactly, so the fold reproduces the full scan's
// minimum bit for bit.
func (a *WFA) updateWork() {
	k := len(a.g) - 1
	par := len(a.configs) >= wfaParallelThreshold
	if par && k > 1 {
		cost.ParallelChunks(k, true, func(lo, hi int) {
			for t := lo; t < hi; t++ {
				a.scatterClass(t + 1)
			}
		})
	} else {
		for t := 1; t <= k; t++ {
			a.scatterClass(t)
		}
	}
	M := len(a.clusters)
	if par {
		cost.ParallelChunks(M, true, a.updateDestRange)
	} else {
		a.updateDestRange(0, M)
	}
	a.improved = 0
	for _, imp := range a.impBuf {
		a.improved += int(imp)
	}
}

// scatterClass fills g[t]: every configuration with t servers relaxes all
// its subsets. Classes write disjoint arrays, so the class fan-out is
// race-free and worker-count invariant.
func (a *WFA) scatterClass(t int) {
	gt := a.g[t]
	for s := range gt {
		gt[s] = math.Inf(1)
	}
	sz := uint8(t)
	for i, s := range a.scratch {
		if a.sizes[i] != sz {
			continue
		}
		for _, S := range a.subIdx[a.subOff[i]:a.subOff[i+1]] {
			if s < gt[S] {
				gt[S] = s
			}
		}
	}
}

func (a *WFA) updateDestRange(lo, hi int) {
	k1 := a.shape.k1
	k := k1 - 1
	for dd := lo; dd < hi; dd++ {
		cl := &a.clusters[dd]
		imp := int32(0)
		for j := cl.lo; j < cl.hi; j++ {
			bj := int(a.sizes[j])
			best := math.Inf(1)
			// Predecessors sharing no server: all |γ_j| servers enter, all
			// t leave.
			for t := 1; t <= k; t++ {
				if v := a.gEmpty[t] + a.shape.cost[bj*k1+t]; v < best {
					best = v
				}
			}
			for _, S32 := range a.subIdx[a.subOff[j]:a.subOff[j+1]] {
				S := int(S32)
				o := int(a.sizes[S])
				row := a.shape.cost[(bj-o)*k1:]
				gS := a.g[o:]
				for t := o; t <= k; t++ {
					if v := gS[0][S] + row[t-o]; v < best {
						best = v
					}
					gS = gS[1:]
				}
			}
			if best < a.scratch[j] {
				imp++
			}
			a.work[j] = best
		}
		a.impBuf[dd] = imp
	}
}

// placementIndexer locates a placement's index in the DFS preorder of
// core.EnumeratePlacements in O(k), by skipping the subtrees of the
// siblings preceding each node of the placement.
type placementIndexer struct {
	k int
	// skip[q][u] = number of placements emitted by the subtrees of roots
	// 0..u-1 when q server slots remain.
	skip [][]int64
}

func newPlacementIndexer(n, k int) *placementIndexer {
	ix := &placementIndexer{k: k, skip: make([][]int64, k+1)}
	for q := 1; q <= k; q++ {
		row := make([]int64, n+1)
		for u := 0; u < n; u++ {
			row[u+1] = row[u] + placementSubtreeSize(n-u-1, q-1)
		}
		ix.skip[q] = row
	}
	return ix
}

// placementSubtreeSize is the number of placements in a subtree whose root
// is already placed, with r candidate nodes and q slots remaining:
// 1 + Σ_{t=1..q} C(r, t).
func placementSubtreeSize(r, q int) int64 {
	s, b := int64(1), int64(1)
	for t := 1; t <= q && t <= r; t++ {
		b = b * int64(r-t+1) / int64(t)
		s += b
	}
	return s
}

func (ix *placementIndexer) indexOf(p core.Placement) int {
	idx := int64(0)
	slots, next := ix.k, 0
	for pos, v := range p {
		idx += ix.skip[slots][v] - ix.skip[slots][next]
		if pos == len(p)-1 {
			return int(idx)
		}
		idx++ // the placement ending at v precedes its extensions
		slots--
		next = v + 1
	}
	return -1 // unreachable: placements are non-empty
}

// wfaParallelThreshold is the state count below which the fan-out loops
// stay serial (goroutine dispatch would dominate the per-round work).
const wfaParallelThreshold = 256

// parallelRows runs fn(j) for j in [0, C), fanned out over GOMAXPROCS in
// contiguous chunks through cost.ParallelChunks. Each row is independent,
// so the result does not depend on the worker count.
func parallelRows(C int, fn func(j int)) {
	cost.ParallelChunks(C, C >= wfaParallelThreshold, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			fn(j)
		}
	})
}
