package online

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// WFA is the classical work-function algorithm for metrical task systems,
// included as the theory-grounded baseline the paper's related-work section
// points to ("there is, e.g., an asymptotically optimal deterministic
// Θ(n)-competitive algorithm, where n is the state space"). States are the
// active placements of at most k servers; the per-round task cost of a
// state is its access plus running cost; the transition cost between
// states is the reconfiguration cost of Examples 1–3.
//
// WFA maintains the work function
//
//	w_t(γ) = min over γ' of [ w_{t-1}(γ') + task_t(γ') + d(γ', γ) ]
//
// (the cheapest cost of any schedule that serves rounds 0..t and ends in
// γ) and, after each round, moves to the state minimising
// w_t(γ) + d(γ_cur, γ). Like ONCONF it is only tractable for small
// configuration spaces; Reset fails beyond MaxONCONFConfigs states.
//
// Per round the task costs of all states come from one batched
// cost.ConfSweep pass, and the O(states²) work-function update iterates
// candidate predecessors in ascending task-cost order with an early
// break: a predecessor γ' with w_{t-1}(γ') + task_t(γ') already at or
// above the destination's best value cannot improve it (d ≥ 0), so the
// scan stops there. The computed minima are exactly the full scan's
// (TestWFAMatchesNaiveReference).
type WFA struct {
	base

	configs []core.Placement
	work    []float64
	scratch []float64
	// dist is the flat reconfiguration-cost matrix, transposed so the
	// work-function update reads contiguously: dist[j*C+i] is the cost of
	// moving from configuration i to configuration j.
	dist []float64
	cur  int

	sweep   *cost.ConfSweep
	taskBuf []float64 // scratch: per-config access totals of the round
	latBuf  []float64 // scratch: per-config access latencies (feasibility test)
	runCost []float64 // per config: Costrun(γ) for one round
	order   []int32   // scratch: config indexes sorted by ascending scratch
}

// NewWFA returns the work-function baseline.
func NewWFA() *WFA { return &WFA{} }

// Name implements sim.Algorithm.
func (a *WFA) Name() string { return "WFA" }

// Reset implements sim.Algorithm.
func (a *WFA) Reset(env *sim.Env) error {
	if len(env.Start) == 0 {
		return fmt.Errorf("wfa: empty initial placement")
	}
	k := env.Pool.MaxServers
	if k <= 0 {
		k = env.Graph.N()
	}
	if count := core.CountPlacements(env.Graph.N(), k, MaxONCONFConfigs); count > MaxONCONFConfigs {
		return fmt.Errorf("wfa: configuration space exceeds the tractable bound %d (n=%d, k=%d)",
			MaxONCONFConfigs, env.Graph.N(), k)
	}
	a.reset(env)
	a.configs = core.EnumeratePlacements(env.Graph.N(), k)
	C := len(a.configs)
	a.work = make([]float64, C)
	a.scratch = make([]float64, C)
	a.dist = make([]float64, C*C)
	a.cur = -1
	for i, c := range a.configs {
		if c.Equal(env.Start) {
			a.cur = i
		}
	}
	if a.cur < 0 {
		return fmt.Errorf("wfa: initial placement %v not in configuration space", env.Start)
	}
	// The C² transition costs are shape-only (how many nodes enter and
	// leave), computed allocation-free via DiffSize and fanned out by
	// destination row.
	parallelRows(C, func(j int) {
		cj := a.configs[j]
		row := a.dist[j*C : (j+1)*C]
		for i, ci := range a.configs {
			entering, leaving := ci.DiffSize(cj)
			row[i] = env.Costs.Transition(entering, leaving)
		}
	})
	views := make([][]int, C)
	a.runCost = make([]float64, C)
	for i, c := range a.configs {
		views[i] = c
		a.runCost[i] = env.Costs.Run(c.Len(), 0)
		// Initial work function: cost of moving from the start state.
		entering, leaving := env.Start.DiffSize(c)
		a.work[i] = env.Costs.Transition(entering, leaving)
	}
	a.sweep = cost.NewConfSweep(env.Eval, views)
	a.taskBuf = make([]float64, C)
	a.latBuf = make([]float64, C)
	a.order = make([]int32, C)
	return nil
}

// Observe implements sim.Algorithm: incorporate round t's task costs into
// the work function and move with the operational rule of Borodin &
// El-Yaniv,
//
//	γ_next = argmin over γ of [ w_{t-1}(γ) + task_t(γ) + d(γ_cur, γ) ],
//
// which strictly improves when staying keeps accumulating task cost (the
// plain "argmin w_t(γ) + d" rule never moves: by the work function's
// Lipschitz property the current state is always among its minimisers).
func (a *WFA) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	C := len(a.configs)
	// scratch(γ) = w_{t-1}(γ) + task_t(γ), with the round's access totals
	// batched through the sweep. Feasibility uses AccessCost.Infinite's
	// exact test on the latency term (graph.Infinity is a finite sentinel,
	// so testing the total for +Inf would miss it on disconnected
	// substrates).
	a.sweep.SweepAccess(d, a.taskBuf, a.latBuf)
	for i := range a.configs {
		task := math.Inf(1)
		if !(cost.AccessCost{Latency: a.latBuf[i]}).Infinite() {
			task = a.taskBuf[i] + a.runCost[i]
		}
		a.scratch[i] = a.work[i] + task
	}
	// Move rule; ties keep the current state.
	next, bestVal := a.cur, a.scratch[a.cur]
	for j := range a.configs {
		if v := a.scratch[j] + a.dist[j*C+a.cur]; v < bestVal {
			next, bestVal = j, v
		}
	}
	// w_t(γ) = min_γ' scratch(γ') + d(γ', γ). Predecessors are visited in
	// ascending scratch order: once scratch(γ') reaches the best value
	// found, no later predecessor can strictly improve it (d ≥ 0), and
	// skipping it leaves the minimum — computed from exactly the same
	// float sums as the full scan — unchanged.
	for i := range a.order {
		a.order[i] = int32(i)
	}
	slices.SortFunc(a.order, func(x, y int32) int {
		sx, sy := a.scratch[x], a.scratch[y]
		switch {
		case sx < sy:
			return -1
		case sx > sy:
			return 1
		default:
			return int(x) - int(y)
		}
	})
	parallelRows(C, func(j int) {
		row := a.dist[j*C : (j+1)*C]
		best := a.scratch[j] + row[j] // d(γ, γ) = 0: the stay-put schedule
		for _, i := range a.order {
			si := a.scratch[i]
			if si >= best {
				break
			}
			if c := si + row[i]; c < best {
				best = c
			}
		}
		a.work[j] = best
	})
	if next == a.cur {
		return core.Delta{}
	}
	a.cur = next
	return a.apply(a.configs[next])
}

// wfaParallelThreshold is the state count below which the row loops stay
// serial (goroutine fan-out would dominate the O(C²) work).
const wfaParallelThreshold = 256

// parallelRows runs fn(j) for j in [0, C), fanned out over GOMAXPROCS in
// contiguous chunks through cost.ParallelChunks. Each row is independent,
// so the result does not depend on the worker count.
func parallelRows(C int, fn func(j int)) {
	cost.ParallelChunks(C, C >= wfaParallelThreshold, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			fn(j)
		}
	})
}
