package online

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// ONSAMP is the sampling speed-up of ONCONF sketched in Section III-A:
// instead of tracking a counter for every configuration, "only k
// configurations are tracked, one for each possible number of current
// servers". Concretely, when an epoch ends (the accumulated cost reaches
// θ = 2c, as in ONBR), ONSAMP computes for each server count i ∈ {1..k}
// the greedy placement of i servers against the epoch's demand — the same
// greedy OFFSTAT uses, so the i-server sample is the natural representative
// of all i-server configurations — and switches to the cheapest sample,
// accounting for reconfiguration, access and running cost.
//
// Compared to ONBR, ONSAMP can jump to a completely different placement in
// one epoch (it is not limited to single-change moves), at the price of
// considering only k candidate configurations.
type ONSAMP struct {
	base
	// MaxSample bounds the sampled server counts; zero uses the
	// environment's server bound k (or √n when unbounded, to keep the
	// greedy affordable).
	MaxSample int
	// ThetaFactor scales the epoch threshold θ = ThetaFactor·c (default 2).
	ThetaFactor float64

	theta      float64
	accum      float64
	epochStart int
	epochAgg   *cost.Accumulator
}

// NewONSAMP returns the sampling strategy with default parameters.
func NewONSAMP() *ONSAMP { return &ONSAMP{} }

// Name implements sim.Algorithm.
func (a *ONSAMP) Name() string { return "ONSAMP" }

func (a *ONSAMP) factor() float64 {
	if a.ThetaFactor > 0 {
		return a.ThetaFactor
	}
	return 2
}

func (a *ONSAMP) maxSample() int {
	if a.MaxSample > 0 {
		return a.MaxSample
	}
	if k := a.env.Pool.MaxServers; k > 0 {
		return k
	}
	// Unbounded k: sample up to √n server counts so one epoch end stays
	// O(n·√n·|σ|).
	n := a.env.Graph.N()
	s := 1
	for s*s < n {
		s++
	}
	return s
}

// Reset implements sim.Algorithm.
func (a *ONSAMP) Reset(env *sim.Env) error {
	if len(env.Start) == 0 {
		return fmt.Errorf("onsamp: empty initial placement")
	}
	a.reset(env)
	a.theta = a.factor() * env.Costs.Create
	a.accum = 0
	a.epochStart = 0
	a.epochAgg = cost.NewAccumulator(env.Graph.N())
	return nil
}

// Observe implements sim.Algorithm.
func (a *ONSAMP) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	a.accum += access.Total() + a.pool.RunCost()
	a.epochAgg.Add(d)
	if a.accum < a.theta {
		return core.Delta{}
	}
	length := t - a.epochStart + 1
	agg := a.epochAgg.Demand()
	target := a.bestSample(agg, length)
	delta := a.apply(target)
	a.pool.AdvanceEpoch()
	a.accum = 0
	a.epochStart = t + 1
	a.epochAgg.Reset()
	return delta
}

// bestSample greedily grows placements of 1..k servers against the epoch
// aggregate and returns the cheapest, scored like BestResponse (current
// placement included as the do-nothing candidate).
func (a *ONSAMP) bestSample(agg cost.Demand, rounds int) core.Placement {
	cur := a.pool.Active()
	sc := EpochScorer(a.env, cur, agg, rounds)
	best := cur
	bestScore := sc.Base() + float64(rounds)*a.env.Costs.Run(cur.Len(), a.pool.NumInactive())
	sc.Release()

	var sample core.Placement
	for i := 1; i <= a.maxSample(); i++ {
		v, ac, ok := a.env.Eval.BestAddition(sample, agg)
		if !ok {
			break
		}
		sample = sample.With(v)
		score := ac.Total() +
			a.pool.PredictSwitch(sample).Total() +
			float64(rounds)*a.env.Costs.Run(sample.Len(), a.pool.PredictInactiveAfter(sample))
		if score < bestScore {
			best, bestScore = sample.Clone(), score
		}
	}
	return best
}
