package online

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
)

// This file holds the machinery that breaks the configuration-space
// asymptotics for WFA and ONCONF:
//
//   - shapeTable buckets transition costs by set-difference shape, so the
//     dense C×C distance matrix (8·C² bytes, 32 GB at the nominal
//     MaxONCONFConfigs) collapses into a (k+1)×(k+1) table plus an
//     overlap-aware lookup per pair actually scored.
//   - configCluster partitions the DFS-ordered configuration list into
//     coarse cells by server-set prefix (the same parent-prefix order
//     cost.ConfSweep exploits), giving O(k)-time lower bounds on the
//     transition shape between whole groups of configurations.
//   - checkConfigSpace is the shared Reset guard, now reporting the memory
//     a space implies instead of a bare count, with the bound overridable
//     per algorithm (MaxConfigs / -maxconfigs).
//
// Every pruned scan built on these stays bit-identical to the naive full
// scan: the only candidates skipped are ones a sound lower bound proves
// cannot strictly improve the running minimum, and round-to-nearest float
// addition is monotone, so fl(a+lb) ≥ best with lb ≤ d and a ≤ scratch
// implies fl(scratch+d) ≥ best.

// shapeTable buckets reconfiguration costs by set-difference shape. The
// transition cost between two placements depends only on how many nodes
// enter and how many leave — at most (k+1)² distinct values.
type shapeTable struct {
	k1   int       // k+1, the table stride
	cost []float64 // cost[e*k1+l] = Transition(e entering, l leaving)
	// sufMin[e*k1+l] = min over e'≥e, l'≥l of cost[e'*k1+l']. Transition is
	// not monotone in the leaving count (when β < c an extra vacated server
	// turns a creation into a cheaper migration), so a sound bound for "at
	// least e enter and at least l leave" is the rectangle suffix minimum,
	// not the corner value.
	sufMin []float64
	// classMin[a*k1+b] = min over overlaps of the cost from any placement
	// of size a to any of size b, the coarsest per-pair lower bound.
	classMin []float64
}

func newShapeTable(p cost.Params, k int) *shapeTable {
	k1 := k + 1
	t := &shapeTable{
		k1:       k1,
		cost:     make([]float64, k1*k1),
		sufMin:   make([]float64, k1*k1),
		classMin: make([]float64, k1*k1),
	}
	for e := 0; e <= k; e++ {
		for l := 0; l <= k; l++ {
			t.cost[e*k1+l] = p.Transition(e, l)
		}
	}
	for e := k; e >= 0; e-- {
		for l := k; l >= 0; l-- {
			m := t.cost[e*k1+l]
			if e < k && t.sufMin[(e+1)*k1+l] < m {
				m = t.sufMin[(e+1)*k1+l]
			}
			if l < k && t.sufMin[e*k1+l+1] < m {
				m = t.sufMin[e*k1+l+1]
			}
			t.sufMin[e*k1+l] = m
		}
	}
	for a := 0; a <= k; a++ {
		for b := 0; b <= k; b++ {
			m := math.Inf(1)
			for o := 0; o <= a && o <= b; o++ {
				if c := t.cost[(b-o)*k1+(a-o)]; c < m {
					m = c
				}
			}
			t.classMin[a*k1+b] = m
		}
	}
	return t
}

// configCluster is one cell of the hierarchical decomposition of the
// configuration space. core.EnumeratePlacements emits placements in DFS
// preorder over the parent-prefix tree, so every subtree is a contiguous
// index range; a cluster covers one subtree, a run of consecutive sibling
// subtrees, or a single split root. Every member γ satisfies
//
//	prefix ⊆ γ ⊆ prefix ∪ [minExtra, n)
//
// which yields O(k)-time lower bounds on the (entering, leaving) shape of
// any transition into or out of the cluster without touching members.
type configCluster struct {
	lo, hi   int            // member index range [lo, hi)
	prefix   core.Placement // nodes shared by every member (nil for top-level groups)
	minExtra int            // smallest node id a member may hold beyond the prefix
}

// wfaClusterCap bounds the cluster count so per-cluster state and the
// serial merge over cluster results stay cheap relative to the members.
const wfaClusterCap = 4096

// buildClusters decomposes the DFS-ordered configuration list into at most
// wfaClusterCap clusters, each covering roughly C/1024 configurations.
// Clusters are emitted in ascending index order and tile [0, C) exactly.
func buildClusters(configs []core.Placement, n int) []configCluster {
	ends := core.PlacementSubtreeEnds(configs)
	target := len(configs) / 1024
	if target < 64 {
		target = 64
	}
	cl := clusterConfigs(configs, ends, n, target)
	for len(cl) > wfaClusterCap {
		target *= 2
		cl = clusterConfigs(configs, ends, n, target)
	}
	return cl
}

func clusterConfigs(configs []core.Placement, ends []int, n, target int) []configCluster {
	var out []configCluster
	var pack func(prefix core.Placement, lo, hi int)
	pack = func(prefix core.Placement, lo, hi int) {
		for i := lo; i < hi; {
			if sz := ends[i] - i; sz > target {
				// Subtree too big for one cell: its root becomes an exact
				// singleton cluster (it has no nodes beyond its own prefix,
				// so minExtra = n makes the bounds exact) and the children
				// are packed under the root's longer prefix.
				out = append(out, configCluster{lo: i, hi: i + 1, prefix: configs[i], minExtra: n})
				pack(configs[i], i+1, ends[i])
				i = ends[i]
				continue
			}
			// Group consecutive small sibling subtrees under the shared
			// parent prefix. Members beyond that prefix use only nodes ≥
			// the first sibling's own node (later siblings and their
			// extensions have strictly larger node ids).
			glo, total := i, 0
			for i < hi {
				sz := ends[i] - i
				if sz > target || (total > 0 && total+sz > target) {
					break
				}
				total += sz
				i = ends[i]
			}
			first := configs[glo]
			out = append(out, configCluster{lo: glo, hi: i, prefix: prefix, minExtra: first[len(first)-1]})
		}
	}
	pack(nil, 0, len(configs))
	return out
}

// prefixBounds returns lower bounds on the set differences between any
// member of the cluster and the placement c: uncovered counts the nodes of
// c no member can hold (outside the prefix and below minExtra), missing
// counts the prefix nodes absent from c (held by every member). For a
// transition member → c this bounds (entering, leaving) by (uncovered,
// missing); for c → member it bounds them by (missing, uncovered).
func (cl *configCluster) prefixBounds(c core.Placement) (uncovered, missing int) {
	p := cl.prefix
	pi := 0
	for _, v := range c {
		for pi < len(p) && p[pi] < v {
			missing++
			pi++
		}
		if pi < len(p) && p[pi] == v {
			pi++
			continue
		}
		if v < cl.minExtra {
			uncovered++
		}
	}
	missing += len(p) - pi
	return uncovered, missing
}

// checkConfigSpace guards a Reset against enumerating an intractable
// configuration space. Unlike the old guard, which named only the count,
// the error reports the memory the space implies: the rewritten algorithms
// hold O(C) state (the dense O(C²) transition matrix is gone — it needed
// 32 GB at the nominal 2¹⁶-config bound before the old guard even
// tripped), so the caller can judge whether raising the bound fits.
func checkConfigSpace(alg, hint string, n, k, bound int) error {
	if core.CountPlacements(n, k, bound) <= bound {
		return nil
	}
	const probe = 1 << 40
	full := core.CountPlacements(n, k, probe)
	count := fmt.Sprintf("%d", full)
	if full > probe {
		count = "over 2^40"
	}
	// ≈(130 + 40k + 4·2^k) bytes per configuration: the placement itself,
	// the per-config float slices (work/scratch/counters, WFA's per-size
	// superset minima), and WFA's subset lattice (up to 2^k int32 entries
	// per configuration).
	linear := float64(full) * (130 + 40*float64(k) + 4*math.Pow(2, float64(k)))
	dense := 8 * float64(full) * float64(full)
	return fmt.Errorf("%s: configuration space of %s placements (n=%d, k=%d) exceeds the bound %d: tracking it takes ≈%s of O(C) state (a dense C² transition matrix would need %s)%s — raise MaxConfigs (figures/flexserve -maxconfigs) if the O(C) footprint fits",
		alg, count, n, k, bound, humanBytes(linear), humanBytes(dense), hint)
}

func humanBytes(b float64) string {
	units := []string{"B", "KiB", "MiB", "GiB", "TiB", "PiB", "EiB"}
	i := 0
	for b >= 1024 && i < len(units)-1 {
		b /= 1024
		i++
	}
	return fmt.Sprintf("%.1f %s", b, units[i])
}
