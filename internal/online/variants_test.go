package online

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/workload"
)

func TestONSAMPMovesTowardDemand(t *testing.T) {
	env := lineEnv(t, 10, 3, cost.DefaultParams())
	demands := make([]cost.Demand, 250)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{9, 9, 9})
	}
	seq := workload.NewSequence("corner", demands)
	l, err := sim.Run(env, NewONSAMP(), seq)
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerSane(t, l)
	if last := l.Rounds[len(l.Rounds)-1]; last.Latency != 0 {
		t.Fatalf("final latency %v, want 0", last.Latency)
	}
}

func TestONSAMPCanJumpWholePlacement(t *testing.T) {
	// Demand splits across both ends of a long line: the greedy 2-sample
	// places servers at both ends in one epoch, something single-change
	// ONBR needs several epochs for.
	env := lineEnv(t, 12, 4, cost.DefaultParams())
	demands := make([]cost.Demand, 300)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{0, 0, 11, 11})
	}
	seq := workload.NewSequence("split", demands)
	l, err := sim.Run(env, NewONSAMP(), seq)
	if err != nil {
		t.Fatal(err)
	}
	last := l.Rounds[len(l.Rounds)-1]
	if last.Latency != 0 || last.Active != 2 {
		t.Fatalf("final round: latency %v active %d, want 0 latency with 2 servers", last.Latency, last.Active)
	}
}

func TestONSAMPName(t *testing.T) {
	if NewONSAMP().Name() != "ONSAMP" {
		t.Fatal("name wrong")
	}
}

func TestONSAMPDefaultSampleBound(t *testing.T) {
	env := erEnv(t, 50, 0, 3) // unbounded k → √n samples
	a := NewONSAMP()
	if err := a.Reset(env); err != nil {
		t.Fatal(err)
	}
	if got := a.maxSample(); got != 8 { // ceil(sqrt(50)) = 8
		t.Fatalf("maxSample = %d, want 8", got)
	}
	a.MaxSample = 3
	if a.maxSample() != 3 {
		t.Fatal("explicit MaxSample ignored")
	}
}

func TestONSAMPOnCommuter(t *testing.T) {
	env := erEnv(t, 60, 6, 15)
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: workload.TForSize(60), Lambda: 5}, 200)
	if err != nil {
		t.Fatal(err)
	}
	l, err := sim.Run(env, NewONSAMP(), seq)
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerSane(t, l)
}

func TestWFASmallInstance(t *testing.T) {
	env := lineEnv(t, 5, 2, cost.Params{Beta: 5, Create: 20, RunActive: 1, RunInactive: 0.2})
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 4}, 80)
	if err != nil {
		t.Fatal(err)
	}
	a := NewWFA()
	l, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerSane(t, l)
	if a.Name() != "WFA" {
		t.Fatal("name wrong")
	}
}

func TestWFAFollowsPersistentDemand(t *testing.T) {
	env := lineEnv(t, 6, 2, cost.Params{Beta: 5, Create: 20, RunActive: 0.5, RunInactive: 0.1})
	demands := make([]cost.Demand, 120)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{5, 5})
	}
	seq := workload.NewSequence("corner", demands)
	l, err := sim.Run(env, NewWFA(), seq)
	if err != nil {
		t.Fatal(err)
	}
	if last := l.Rounds[len(l.Rounds)-1]; last.Latency != 0 {
		t.Fatalf("WFA final latency %v, want 0 (work function must converge to the demand)", last.Latency)
	}
}

func TestWFARejectsHugeInstance(t *testing.T) {
	env := erEnv(t, 200, 10, 11)
	if err := NewWFA().Reset(env); err == nil {
		t.Fatal("huge configuration space accepted")
	}
}

func TestONBRClusteredRestrictsTargets(t *testing.T) {
	env := erEnv(t, 80, 6, 21)
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: workload.TForSize(80), Lambda: 5}, 150)
	if err != nil {
		t.Fatal(err)
	}
	a := NewONBRClustered(6)
	l, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	checkLedgerSane(t, l)
	if a.Name() != "ONBR-cluster(6)" {
		t.Fatalf("name = %q", a.Name())
	}
	// Every server placement must stay within cluster centers ∪ start.
	allowed := map[int]bool{env.Start[0]: true}
	for _, c := range a.targets {
		allowed[c] = true
	}
	for tt, r := range l.Rounds {
		_ = tt
		_ = r
	}
	final := a.Placement()
	for _, v := range final {
		if !allowed[v] {
			t.Fatalf("server at %d outside the cluster centers", v)
		}
	}
}

func TestONBRClusteredCheaperSearchStillEffective(t *testing.T) {
	// The clustered search must still beat never reconfiguring.
	env := lineEnv(t, 12, 3, cost.DefaultParams())
	demands := make([]cost.Demand, 300)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{11, 11, 11, 11})
	}
	seq := workload.NewSequence("corner", demands)
	l, err := sim.Run(env, NewONBRClustered(4), seq)
	if err != nil {
		t.Fatal(err)
	}
	doNothing := 0.0
	for tt := 0; tt < seq.Len(); tt++ {
		doNothing += env.Eval.Access(env.Start, seq.Demand(tt)).Total() + env.Costs.Run(1, 0)
	}
	if l.Total() >= doNothing {
		t.Fatalf("clustered ONBR %v not better than doing nothing %v", l.Total(), doNothing)
	}
}

func TestBestResponseTargetRestriction(t *testing.T) {
	env := lineEnv(t, 8, 3, cost.DefaultParams())
	pool := env.NewPool()
	pool.Bootstrap(core.NewPlacement(0))
	agg := cost.DemandFromList([]int{7, 7, 7, 7, 7, 7, 7, 7, 7, 7})
	// Unrestricted: best move lands on node 7.
	free := BestResponse(env, pool, agg, 10, SearchMoves{Move: true})
	if !free.Equal(core.NewPlacement(7)) {
		t.Fatalf("unrestricted best response = %v, want [7]", free)
	}
	// Restricted to node 4: the move may only land there.
	restricted := BestResponse(env, pool, agg, 10, SearchMoves{Move: true, Targets: []int{4}})
	if !restricted.Equal(core.NewPlacement(4)) && !restricted.Equal(core.NewPlacement(0)) {
		t.Fatalf("restricted best response = %v, want [4] or no change", restricted)
	}
	if restricted.Contains(7) {
		t.Fatal("restricted search escaped its target set")
	}
}

func TestWFANeverWorseThanFactorOverOPT(t *testing.T) {
	// Loose sanity bound: on a tiny instance WFA should stay within a
	// single-digit factor of the offline optimum.
	env := lineEnv(t, 4, 2, cost.Params{Beta: 4, Create: 12, RunActive: 0.5, RunInactive: 0.1})
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 3}, 60)
	if err != nil {
		t.Fatal(err)
	}
	lW, err := sim.Run(env, NewWFA(), seq)
	if err != nil {
		t.Fatal(err)
	}
	// Offline optimum via the OPT package would be an import cycle here;
	// compare against the cheapest static placement instead.
	bestStatic := math.Inf(1)
	for _, p := range core.EnumeratePlacements(4, 2) {
		total := 0.0
		entering, leaving := env.Start.Diff(p)
		total += env.Costs.Transition(len(entering), len(leaving))
		for tt := 0; tt < seq.Len(); tt++ {
			total += env.Eval.Access(p, seq.Demand(tt)).Total() + env.Costs.Run(p.Len(), 0)
		}
		if total < bestStatic {
			bestStatic = total
		}
	}
	if lW.Total() > 8*bestStatic {
		t.Fatalf("WFA %v more than 8x the best static %v", lW.Total(), bestStatic)
	}
}
