package online

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
)

// ONTH is the threshold algorithm of Section III-A. It divides time into
// small and large epochs:
//
//   - A small epoch ends when the cost accumulated in the current
//     configuration reaches y·β (the paper uses y = 2). The algorithm then
//     switches to the cheapest configuration — w.r.t. the passed epoch and
//     including access, migration and running cost — among keeping the
//     configuration, migrating one server, or deactivating one server.
//   - A large epoch ends when the accumulated access cost outweighs the
//     accumulated running cost of the active servers, concretely when
//     Costacc/(kcur+1) − Costrun > c. A new server is then activated at the
//     position that is optimal with respect to the access cost of the
//     latest large epoch.
//
// Unlike ONBR, ONTH needs no externally tuned threshold θ: the decision to
// add servers is automated by the large-epoch rule. Under constant demand
// it converges to a stable configuration.
type ONTH struct {
	base
	// Y is the small-epoch factor (threshold y·β). Zero selects the
	// paper's y = 2.
	Y float64

	smallAccum float64
	smallAgg   *cost.Accumulator
	smallStart int

	largeAccess float64
	largeRun    float64
	largeAgg    *cost.Accumulator
	largeStart  int
}

// NewONTH returns ONTH with the paper's parameters.
func NewONTH() *ONTH { return &ONTH{} }

// Name implements sim.Algorithm.
func (a *ONTH) Name() string { return "ONTH" }

func (a *ONTH) y() float64 {
	if a.Y > 0 {
		return a.Y
	}
	return 2
}

// Reset implements sim.Algorithm.
func (a *ONTH) Reset(env *sim.Env) error {
	if len(env.Start) == 0 {
		return fmt.Errorf("onth: empty initial placement")
	}
	a.reset(env)
	a.smallAccum, a.smallStart = 0, 0
	a.smallAgg = cost.NewAccumulator(env.Graph.N())
	a.largeAccess, a.largeRun, a.largeStart = 0, 0, 0
	a.largeAgg = cost.NewAccumulator(env.Graph.N())
	return nil
}

// Observe implements sim.Algorithm.
func (a *ONTH) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	run := a.pool.RunCost()
	a.smallAccum += access.Total() + run
	a.smallAgg.Add(d)
	a.largeAccess += access.Total()
	a.largeRun += run
	a.largeAgg.Add(d)

	var delta core.Delta
	if a.largeEpochOver() {
		delta = delta.Add(a.endLargeEpoch(t))
	}
	if a.smallAccum >= a.y()*a.env.Costs.Beta {
		delta = delta.Add(a.endSmallEpoch(t))
	}
	return delta
}

// largeEpochOver evaluates the paper's condition
// Costacc/(kcur+1) − Costrun > c.
func (a *ONTH) largeEpochOver() bool {
	kcur := float64(a.pool.NumActive())
	return a.largeAccess/(kcur+1)-a.largeRun > a.env.Costs.Create
}

// endLargeEpoch activates one more server at the position optimal for the
// access cost of the epoch that just ended.
func (a *ONTH) endLargeEpoch(t int) core.Delta {
	var delta core.Delta
	cur := a.pool.Active()
	if a.env.Pool.MaxServers <= 0 || cur.Len() < a.env.Pool.MaxServers {
		agg := a.largeAgg.Demand()
		if v, _, ok := a.env.Eval.BestAddition(cur, agg); ok {
			delta = a.apply(cur.With(v))
		}
	}
	a.largeAccess, a.largeRun, a.largeStart = 0, 0, t+1
	a.largeAgg.Reset()
	// The configuration changed; restart the small epoch so its best
	// response judges the new configuration on fresh observations.
	a.smallAccum, a.smallStart = 0, t+1
	a.smallAgg.Reset()
	return delta
}

// endSmallEpoch runs the restricted best response (no additions — growing
// the configuration is the large epoch's job).
func (a *ONTH) endSmallEpoch(t int) core.Delta {
	length := t - a.smallStart + 1
	agg := a.smallAgg.Demand()
	target := a.bestResponse(agg, length, SearchMoves{Move: true, Deactivate: true})
	delta := a.apply(target)
	a.pool.AdvanceEpoch()
	a.smallAccum, a.smallStart = 0, t+1
	a.smallAgg.Reset()
	return delta
}
