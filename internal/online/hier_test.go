package online

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/graph/gen"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TestPlacementIndexer pins the O(k) combinatorial index against the
// enumeration itself: every placement must locate its own DFS position.
func TestPlacementIndexer(t *testing.T) {
	cases := []struct{ n, k int }{
		{1, 1}, {3, 2}, {6, 3}, {8, 8}, {10, 4}, {12, 2},
	}
	for _, tc := range cases {
		configs := core.EnumeratePlacements(tc.n, tc.k)
		ix := newPlacementIndexer(tc.n, tc.k)
		for i, c := range configs {
			if got := ix.indexOf(c); got != i {
				t.Fatalf("n=%d k=%d: indexOf(%v) = %d, want %d", tc.n, tc.k, c, got, i)
			}
		}
	}
}

// TestShapeTableSound brute-forces the shape table's definitions for both
// cost regimes (β < c, where extra vacated servers make transitions
// cheaper, and β ≥ c, where migration never pays).
func TestShapeTableSound(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		p := cost.Params{Beta: 1 + 10*rng.Float64(), Create: 1 + 10*rng.Float64()}
		k := 1 + rng.Intn(5)
		tab := newShapeTable(p, k)
		k1 := k + 1
		for e := 0; e <= k; e++ {
			for l := 0; l <= k; l++ {
				if got, want := tab.cost[e*k1+l], p.Transition(e, l); got != want {
					t.Fatalf("cost[%d][%d] = %v, want %v", e, l, got, want)
				}
				want := math.Inf(1)
				for e2 := e; e2 <= k; e2++ {
					for l2 := l; l2 <= k; l2++ {
						if c := p.Transition(e2, l2); c < want {
							want = c
						}
					}
				}
				if got := tab.sufMin[e*k1+l]; got != want {
					t.Fatalf("sufMin[%d][%d] = %v, want %v (β=%v c=%v)", e, l, got, want, p.Beta, p.Create)
				}
			}
		}
		for a := 0; a <= k; a++ {
			for b := 0; b <= k; b++ {
				want := math.Inf(1)
				for o := 0; o <= a && o <= b; o++ {
					if c := p.Transition(b-o, a-o); c < want {
						want = c
					}
				}
				if got := tab.classMin[a*k1+b]; got != want {
					t.Fatalf("classMin[%d][%d] = %v, want %v", a, b, got, want)
				}
			}
		}
	}
}

// TestBuildClustersInvariants checks the hierarchical decomposition's
// contract on several spaces: clusters tile [0, C) in order, every member
// satisfies prefix ⊆ γ ⊆ prefix ∪ [minExtra, n), and prefixBounds is a
// sound lower bound on the set-difference shape against random placements.
func TestBuildClustersInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cases := []struct{ n, k int }{
		{5, 2}, {9, 3}, {12, 4}, {14, 14},
	}
	for _, tc := range cases {
		configs := core.EnumeratePlacements(tc.n, tc.k)
		clusters := buildClusters(configs, tc.n)
		next := 0
		for ci := range clusters {
			cl := &clusters[ci]
			if cl.lo != next || cl.hi <= cl.lo {
				t.Fatalf("n=%d k=%d: cluster %d spans [%d,%d), want lo=%d", tc.n, tc.k, ci, cl.lo, cl.hi, next)
			}
			next = cl.hi
			for i := cl.lo; i < cl.hi; i++ {
				c := configs[i]
				pi := 0
				for _, v := range c {
					if pi < len(cl.prefix) && cl.prefix[pi] == v {
						pi++
					} else if v < cl.minExtra {
						t.Fatalf("n=%d k=%d: member %v of cluster %d holds %d outside prefix %v below minExtra %d",
							tc.n, tc.k, c, ci, v, cl.prefix, cl.minExtra)
					}
				}
				if pi != len(cl.prefix) {
					t.Fatalf("n=%d k=%d: member %v of cluster %d misses prefix %v", tc.n, tc.k, c, ci, cl.prefix)
				}
			}
			for trial := 0; trial < 10; trial++ {
				probe := configs[rng.Intn(len(configs))]
				unc, mis := cl.prefixBounds(probe)
				for i := cl.lo; i < cl.hi; i++ {
					e, l := configs[i].DiffSize(probe) // member → probe
					if e < unc || l < mis {
						t.Fatalf("n=%d k=%d: cluster %d bounds (%d,%d) exceed member %v → %v shape (%d,%d)",
							tc.n, tc.k, ci, unc, mis, configs[i], probe, e, l)
					}
				}
			}
		}
		if next != len(configs) {
			t.Fatalf("n=%d k=%d: clusters end at %d, want %d", tc.n, tc.k, next, len(configs))
		}
	}
}

// TestWFAWorkerCountParity pins worker-count invariance on a space large
// enough to cross the parallel threshold (n=13, k=4: 1092 configurations):
// WFA and ONCONF must produce identical ledgers, final placements, and
// work functions / counters at 1, 2, and all available workers.
func TestWFAWorkerCountParity(t *testing.T) {
	g, err := gen.ErdosRenyi(13, 0.35, gen.DefaultOptions(), rand.New(rand.NewSource(21)))
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(),
		core.Params{QueueCap: 3, Expiry: 15, MaxServers: 4})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric,
		workload.CommuterConfig{T: 4, Lambda: 20}, 30)
	if err != nil {
		t.Fatal(err)
	}
	workers := []int{1, 2, runtime.GOMAXPROCS(0)}
	var refLedger *sim.Ledger
	var refWork []float64
	var refCounters []float64
	for _, w := range workers {
		prev := runtime.GOMAXPROCS(w)
		a := NewWFA()
		got, err := sim.Run(env, a, seq)
		if err != nil {
			runtime.GOMAXPROCS(prev)
			t.Fatal(err)
		}
		o := NewONCONF(rand.New(rand.NewSource(9)))
		gotO, err := sim.Run(env, o, seq)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		if refLedger == nil {
			refLedger, refWork, refCounters = got, a.work, o.counters
			continue
		}
		ledgersIdentical(t, w, got, refLedger)
		for i := range a.work {
			if a.work[i] != refWork[i] {
				t.Fatalf("workers=%d: work[%d] = %v, 1-worker %v", w, i, a.work[i], refWork[i])
			}
		}
		for i := range o.counters {
			if o.counters[i] != refCounters[i] {
				t.Fatalf("workers=%d: counter[%d] = %v, 1-worker %v", w, i, o.counters[i], refCounters[i])
			}
		}
		_ = gotO
	}
}

// TestWFAPrunedScanPerRoundParity steps the shape-bucketed WFA and the
// retained dense-matrix reference side by side, comparing the full work
// function and the chosen placement after every single round — a much
// tighter pin than end-of-run parity, since a masked round-level
// divergence cannot cancel out.
func TestWFAPrunedScanPerRoundParity(t *testing.T) {
	rng := rand.New(rand.NewSource(514))
	for trial := 0; trial < 4; trial++ {
		env, seq := parityEnv(t, rng, cost.Linear{})
		a, ref := NewWFA(), &naiveWFA{}
		if err := a.Reset(env); err != nil {
			t.Fatal(err)
		}
		if err := ref.Reset(env); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < seq.Len(); r++ {
			d := seq.Demand(r)
			a.Observe(r, d, cost.AccessCost{})
			ref.Observe(r, d, cost.AccessCost{})
			if !a.Placement().Equal(ref.Placement()) {
				t.Fatalf("trial %d round %d: placement %v != naive %v", trial, r, a.Placement(), ref.Placement())
			}
			for i := range a.work {
				if a.work[i] != ref.work[i] {
					t.Fatalf("trial %d round %d: work[%d] = %v, naive %v (config %v)",
						trial, r, i, a.work[i], ref.work[i], a.configs[i])
				}
			}
		}
	}
}

// TestWFADisconnectedLargeSpaceParity is the disconnected-substrate pin at
// a scale that crosses the parallel threshold (16 nodes, k=3: 696
// configurations), so the infeasibility sentinel flows through the
// shape-bucketed update and the pruned, fanned-out move rule.
func TestWFADisconnectedLargeSpaceParity(t *testing.T) {
	g := graph.New(16)
	for v := 0; v < 7; v++ { // component {0..7}: a line
		g.MustAddEdge(v, v+1, 1, 1)
	}
	for v := 8; v < 15; v++ { // component {8..15}: a line
		g.MustAddEdge(v, v+1, 1, 1)
	}
	m := g.AllPairs()
	costs := cost.Params{Beta: 5, Create: 20, RunActive: 1, RunInactive: 0.2}
	env := &sim.Env{
		Graph:  g,
		Metric: m,
		Eval:   cost.NewEvaluator(g, m, cost.Linear{}, cost.AssignMinCost),
		Costs:  costs,
		Pool:   core.Params{Costs: costs, QueueCap: 3, Expiry: 15, MaxServers: 3},
		Start:  core.NewPlacement(2),
	}
	demands := make([]cost.Demand, 40)
	for i := range demands {
		// Single-unit demand walking component {0..7}: every placement
		// confined to {8..15} sees exactly one unreachable unit — a finite
		// graph.Infinity latency the feasibility rule must catch.
		demands[i] = cost.DemandFromPairs(cost.NodeCount{Node: (i * 3) % 8, Count: 1})
	}
	seq := workload.NewSequence("disconnected-large", demands)
	a, ref := NewWFA(), &naiveWFA{}
	got, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(env, ref, seq)
	if err != nil {
		t.Fatal(err)
	}
	ledgersIdentical(t, 0, got, want)
	for i := range a.work {
		if a.work[i] != ref.work[i] {
			t.Fatalf("work[%d] = %v, naive %v (config %v)", i, a.work[i], ref.work[i], a.configs[i])
		}
	}
}
