// Package scenario provides composable workload generators. A Gen is a
// first-class per-round request generator over a fixed horizon: primitives
// (Hotspot, Noise, Fan, RotatingHotspot) are combined by operators
// (Superpose, Shift, Cycle, Spike, Ramp, Gate) into new generators, and
// Build materialises any combination into the per-round demand multi-sets
// a *workload.Sequence wraps.
//
// Every Gen is deterministic and random-access in t: all randomness is
// drawn from the caller's *rand.Rand at construction time, so Emit(t) may
// be called any number of times, in any order, and always yields the same
// contribution. That is what makes the operators composable — Shift and
// Cycle re-index rounds freely — and what keeps built sequences replayable
// (offline algorithms see the future) and safe for concurrent reads.
//
// The paper's own commuter and time-zones scenarios (Section V-A) are
// expressed on these primitives by package workload, pinned bit-identical
// to the original generators; the flash-crowd, diurnal multi-region, and
// weekday/weekend scenarios extend the evaluation beyond them.
package scenario

import (
	"math"
	"math/rand"

	"repro/internal/cost"
)

// AddFunc receives one generator's contribution to a round: count requests
// at access point node. Implementations ignore non-positive counts.
type AddFunc func(node, count int)

// Gen is a deterministic request generator over rounds [0, Rounds()).
// The zero Gen generates nothing.
type Gen struct {
	rounds int
	emit   func(t int, add AddFunc)
}

// New wraps a raw emit function into a generator. emit must be pure in t:
// repeated calls for the same round yield the same contribution.
func New(rounds int, emit func(t int, add AddFunc)) Gen {
	if rounds < 0 {
		rounds = 0
	}
	return Gen{rounds: rounds, emit: emit}
}

// Rounds returns the generator's horizon.
func (g Gen) Rounds() int { return g.rounds }

// Emit adds round t's contribution through add. Rounds outside
// [0, Rounds()) contribute nothing.
func (g Gen) Emit(t int, add AddFunc) {
	if t < 0 || t >= g.rounds || g.emit == nil {
		return
	}
	g.emit(t, add)
}

// Build materialises the superposition of the given generators into one
// demand multi-set per round. Contributions to the same node accumulate;
// non-positive counts are dropped.
func Build(rounds int, gens ...Gen) []cost.Demand {
	demands := make([]cost.Demand, rounds)
	for t := range demands {
		counts := make(map[int]int)
		add := func(node, count int) {
			if count > 0 {
				counts[node] += count
			}
		}
		for _, g := range gens {
			g.Emit(t, add)
		}
		demands[t] = cost.DemandFromCounts(counts)
	}
	return demands
}

// ---------------------------------------------------------------- primitives

// Hotspot emits count requests at one node every round.
func Hotspot(node, count, rounds int) Gen {
	return New(rounds, func(t int, add AddFunc) {
		add(node, count)
	})
}

// Noise emits perRound requests per round, each at an access point drawn
// uniformly from [0, n). All draws happen here, at construction, in
// round-major order, so the generator is random-access in t and replaying
// it never advances the caller's RNG.
func Noise(n, perRound, rounds int, rng *rand.Rand) Gen {
	return noise(nil, n, func(int) int { return perRound }, rounds, rng)
}

// NoiseOver is Noise restricted to the given access points: each request
// lands on a node drawn uniformly from nodes.
func NoiseOver(nodes []int, perRound, rounds int, rng *rand.Rand) Gen {
	return noise(nodes, len(nodes), func(int) int { return perRound }, rounds, rng)
}

// NoiseProfile is Noise with a per-round volume profile: round t emits
// perRound(t) requests. Use this — not Ramp over Noise — to vary a noise
// floor's volume over time: Ramp scales each unit contribution and so
// quantizes to all-or-nothing, while the profile changes how many draws a
// round gets. perRound must be pure in t.
func NoiseProfile(n int, perRound func(t int) int, rounds int, rng *rand.Rand) Gen {
	return noise(nil, n, perRound, rounds, rng)
}

func noise(nodes []int, n int, perRound func(t int) int, rounds int, rng *rand.Rand) Gen {
	if n <= 0 {
		return New(rounds, nil)
	}
	// offsets[t] is the index of round t's first draw; draws are laid out
	// round-major, in the exact order the RNG is consumed.
	offsets := make([]int32, rounds+1)
	for t := 0; t < rounds; t++ {
		c := perRound(t)
		if c < 0 {
			c = 0
		}
		offsets[t+1] = offsets[t] + int32(c)
	}
	draws := make([]int32, offsets[rounds])
	for i := range draws {
		v := rng.Intn(n)
		if nodes != nil {
			v = nodes[v]
		}
		draws[i] = int32(v)
	}
	return New(rounds, func(t int, add AddFunc) {
		for _, v := range draws[offsets[t]:offsets[t+1]] {
			add(int(v), 1)
		}
	})
}

// RotatingHotspot emits count requests per round from a hotspot that
// rotates through the given nodes, staying lambda rounds on each: round t
// is hot at hotspots[(t/lambda) % len(hotspots)]. This is the time-zones
// scenario's "one period's hotspot" primitive.
func RotatingHotspot(hotspots []int, count, lambda, rounds int) Gen {
	if len(hotspots) == 0 || lambda < 1 {
		return New(rounds, nil)
	}
	return New(rounds, func(t int, add AddFunc) {
		add(hotspots[(t/lambda)%len(hotspots)], count)
	})
}

// spreadPhase returns the commuter fan index for day phase ph in [0, T):
// it rises 0, 1, ..., T/2 during the first half of the day and falls back
// T/2−1, ..., 1 during the second half.
func spreadPhase(ph, T int) int {
	if ph <= T/2 {
		return ph
	}
	return T - ph
}

// Fan emits the commuter fan-out/fan-in pattern of Section V-A over the
// prefix of order (the nodes sorted by latency from the network center):
// in day phase ph = (t/lambda) % T the requests spread over
// min(2^spread(ph), len(order)) access points, the remainder going to the
// closest nodes. With dynamic load each point issues one request (the
// total swings between 1 and 2^(T/2)); with static load the total is
// pinned to 2^(T/2) requests split evenly.
func Fan(order []int, T, lambda int, dynamic bool, rounds int) Gen {
	if len(order) == 0 || T < 2 || lambda < 1 {
		return New(rounds, nil)
	}
	return New(rounds, func(t int, add AddFunc) {
		ph := (t / lambda) % T
		i := spreadPhase(ph, T)
		total := 1 << uint(T/2)
		if dynamic {
			total = 1 << uint(i)
		}
		points := 1 << uint(i)
		if points > len(order) {
			points = len(order)
		}
		per, rem := total/points, total%points
		for j := 0; j < points; j++ {
			c := per
			if j < rem {
				c++
			}
			add(order[j], c)
		}
	})
}

// ---------------------------------------------------------------- operators

// Superpose sums the contributions of several generators; the horizon is
// the longest of theirs.
func Superpose(gens ...Gen) Gen {
	rounds := 0
	for _, g := range gens {
		if g.rounds > rounds {
			rounds = g.rounds
		}
	}
	return New(rounds, func(t int, add AddFunc) {
		for _, g := range gens {
			g.Emit(t, add)
		}
	})
}

// Shift delays g by dt rounds: round t emits g's round t−dt. The horizon
// grows to dt + g.Rounds(); the first dt rounds are empty.
func Shift(g Gen, dt int) Gen {
	if dt < 0 {
		dt = 0
	}
	return New(dt+g.rounds, func(t int, add AddFunc) {
		g.Emit(t-dt, add)
	})
}

// Pad extends g's horizon with empty rounds (or truncates it): the
// contribution of rounds below min(g.Rounds(), rounds) is unchanged.
// Mostly useful to fix the period before a Cycle.
func Pad(g Gen, rounds int) Gen {
	return New(rounds, func(t int, add AddFunc) {
		g.Emit(t, add)
	})
}

// Cycle repeats g's whole horizon periodically over a new horizon: round t
// emits g's round t mod g.Rounds(). Combined with Shift and Pad this
// phase-shifts a daily pattern per region.
func Cycle(g Gen, rounds int) Gen {
	if g.rounds == 0 {
		return New(rounds, nil)
	}
	return New(rounds, func(t int, add AddFunc) {
		g.Emit(t%g.rounds, add)
	})
}

// Spike amplifies g by a sudden burst with exponential decay: from round
// `at` on, counts are scaled by peak·exp(−(t−at)/tau) and rounded; rounds
// before the burst emit nothing. Applied to a Hotspot this is a flash
// crowd — a sudden surge at one node that decays over ~tau rounds.
func Spike(g Gen, at int, peak, tau float64) Gen {
	return New(g.rounds, func(t int, add AddFunc) {
		if t < at {
			return
		}
		f := peak * math.Exp(-float64(t-at)/tau)
		g.Emit(t, func(node, count int) {
			add(node, int(math.Round(float64(count)*f)))
		})
	})
}

// Ramp scales g linearly from factor `from` at round 0 to factor `to` at
// the last round of its horizon, rounding counts. A horizon of one round
// uses `from`. Each contribution is scaled and rounded individually, so
// Ramp suits generators emitting multi-request counts (Hotspot, Fan);
// over unit-draw noise the rounding quantizes to all-or-nothing — vary a
// noise floor with NoiseProfile instead.
func Ramp(g Gen, from, to float64) Gen {
	return New(g.rounds, func(t int, add AddFunc) {
		f := from
		if g.rounds > 1 {
			f += (to - from) * float64(t) / float64(g.rounds-1)
		}
		g.Emit(t, func(node, count int) {
			add(node, int(math.Round(float64(count)*f)))
		})
	})
}

// Gate keeps only the rounds where on(t) is true. on must be pure in t.
func Gate(g Gen, on func(t int) bool) Gen {
	return New(g.rounds, func(t int, add AddFunc) {
		if on(t) {
			g.Emit(t, add)
		}
	})
}
