package scenario

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cost"
)

// sortedKeys returns m's keys in ascending order, so test loops and
// their failure messages are independent of map iteration order.
func sortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// collect materialises one round of a generator into a node→count map.
func collect(g Gen, t int) map[int]int {
	counts := map[int]int{}
	g.Emit(t, func(node, count int) {
		if count > 0 {
			counts[node] += count
		}
	})
	return counts
}

func totalAt(g Gen, t int) int {
	total := 0
	for _, c := range collect(g, t) {
		total += c
	}
	return total
}

func TestHotspot(t *testing.T) {
	g := Hotspot(3, 5, 10)
	if g.Rounds() != 10 {
		t.Fatalf("rounds = %d", g.Rounds())
	}
	for _, r := range []int{0, 9} {
		if got := collect(g, r); got[3] != 5 || len(got) != 1 {
			t.Fatalf("round %d: %v", r, got)
		}
	}
	for _, r := range []int{-1, 10, 99} {
		if got := collect(g, r); len(got) != 0 {
			t.Fatalf("out-of-horizon round %d emitted %v", r, got)
		}
	}
}

func TestNoiseDeterministicAndRandomAccess(t *testing.T) {
	g := Noise(20, 7, 30, rand.New(rand.NewSource(4)))
	h := Noise(20, 7, 30, rand.New(rand.NewSource(4)))
	// Same seed ⇒ identical; order of evaluation must not matter.
	for _, r := range []int{29, 0, 13, 13, 5} {
		a, b := collect(g, r), collect(h, r)
		if len(a) == 0 && totalAt(g, r) != 7 {
			t.Fatalf("round %d lost requests", r)
		}
		if totalAt(g, r) != 7 || totalAt(h, r) != 7 {
			t.Fatalf("round %d: totals %d/%d, want 7", r, totalAt(g, r), totalAt(h, r))
		}
		for _, node := range sortedKeys(a) {
			if b[node] != a[node] {
				t.Fatalf("round %d node %d: %d vs %d", r, node, a[node], b[node])
			}
		}
	}
}

func TestNoiseOverRestrictsNodes(t *testing.T) {
	nodes := []int{2, 5, 11}
	g := NoiseOver(nodes, 9, 25, rand.New(rand.NewSource(8)))
	allowed := map[int]bool{2: true, 5: true, 11: true}
	for r := 0; r < 25; r++ {
		for _, node := range sortedKeys(collect(g, r)) {
			if !allowed[node] {
				t.Fatalf("round %d drew node %d outside %v", r, node, nodes)
			}
		}
		if totalAt(g, r) != 9 {
			t.Fatalf("round %d: %d requests, want 9", r, totalAt(g, r))
		}
	}
}

func TestNoiseProfileVariesVolume(t *testing.T) {
	profile := func(t int) int { return t } // 0, 1, 2, ... requests
	g := NoiseProfile(12, profile, 20, rand.New(rand.NewSource(5)))
	h := NoiseProfile(12, profile, 20, rand.New(rand.NewSource(5)))
	for r := 0; r < 20; r++ {
		if got := totalAt(g, r); got != r {
			t.Fatalf("round %d: %d requests, want %d", r, got, r)
		}
		a, b := collect(g, r), collect(h, r)
		for _, node := range sortedKeys(a) {
			if b[node] != a[node] {
				t.Fatalf("round %d node %d: %d vs %d", r, node, a[node], b[node])
			}
		}
	}
	// Negative profile values clamp to zero draws.
	neg := NoiseProfile(12, func(int) int { return -3 }, 5, rand.New(rand.NewSource(5)))
	for r := 0; r < 5; r++ {
		if got := totalAt(neg, r); got != 0 {
			t.Fatalf("negative profile round %d emitted %d", r, got)
		}
	}
}

func TestRotatingHotspot(t *testing.T) {
	g := RotatingHotspot([]int{4, 7, 9}, 6, 2, 12)
	want := []int{4, 4, 7, 7, 9, 9, 4, 4, 7, 7, 9, 9}
	for r, node := range want {
		if got := collect(g, r); got[node] != 6 || len(got) != 1 {
			t.Fatalf("round %d: %v, want {%d:6}", r, got, node)
		}
	}
}

func TestFanConservesStaticVolume(t *testing.T) {
	order := []int{0, 1, 2, 3, 4, 5, 6, 7}
	g := Fan(order, 6, 1, false, 12)
	for r := 0; r < 12; r++ {
		if got := totalAt(g, r); got != 8 { // 2^(T/2) = 8
			t.Fatalf("static fan round %d: %d requests, want 8", r, got)
		}
	}
	// Dynamic volume swings 1,2,4,8,4,2 with T=6.
	d := Fan(order, 6, 1, true, 12)
	want := []int{1, 2, 4, 8, 4, 2}
	for r := 0; r < 12; r++ {
		if got := totalAt(d, r); got != want[r%6] {
			t.Fatalf("dynamic fan round %d: %d requests, want %d", r, got, want[r%6])
		}
	}
}

func TestSuperposeSumsAndExtends(t *testing.T) {
	g := Superpose(Hotspot(1, 2, 5), Hotspot(1, 3, 8), Hotspot(2, 1, 3))
	if g.Rounds() != 8 {
		t.Fatalf("rounds = %d, want max 8", g.Rounds())
	}
	if got := collect(g, 0); got[1] != 5 || got[2] != 1 {
		t.Fatalf("round 0: %v", got)
	}
	if got := collect(g, 6); got[1] != 3 || got[2] != 0 {
		t.Fatalf("round 6: %v (short gens must have expired)", got)
	}
}

func TestShiftDelays(t *testing.T) {
	g := Shift(Hotspot(5, 4, 3), 2)
	if g.Rounds() != 5 {
		t.Fatalf("rounds = %d, want 5", g.Rounds())
	}
	wantAt := map[int]int{0: 0, 1: 0, 2: 4, 3: 4, 4: 4}
	for _, r := range sortedKeys(wantAt) {
		if got := collect(g, r)[5]; got != wantAt[r] {
			t.Fatalf("round %d: %d, want %d", r, got, wantAt[r])
		}
	}
}

func TestPadAndCycle(t *testing.T) {
	// A one-round pulse padded to period 4 then cycled fires every 4th round.
	g := Cycle(Pad(Hotspot(2, 9, 1), 4), 11)
	if g.Rounds() != 11 {
		t.Fatalf("rounds = %d", g.Rounds())
	}
	for r := 0; r < 11; r++ {
		want := 0
		if r%4 == 0 {
			want = 9
		}
		if got := collect(g, r)[2]; got != want {
			t.Fatalf("round %d: %d, want %d", r, got, want)
		}
	}
	// Pad also truncates.
	if got := collect(Pad(Hotspot(2, 9, 10), 3), 5); len(got) != 0 {
		t.Fatalf("truncated round emitted %v", got)
	}
}

func TestSpikeDecaysExponentially(t *testing.T) {
	g := Spike(Hotspot(0, 1, 40), 10, 16, 5)
	for r := 0; r < 10; r++ {
		if got := collect(g, r); len(got) != 0 {
			t.Fatalf("pre-burst round %d emitted %v", r, got)
		}
	}
	prev := math.MaxInt
	for r := 10; r < 40; r++ {
		want := int(math.Round(16 * math.Exp(-float64(r-10)/5)))
		got := collect(g, r)[0]
		if got != want {
			t.Fatalf("round %d: %d, want %d", r, got, want)
		}
		if got > prev {
			t.Fatalf("round %d: spike grew %d → %d", r, prev, got)
		}
		prev = got
	}
	if collect(g, 10)[0] != 16 {
		t.Fatalf("peak = %d, want 16", collect(g, 10)[0])
	}
}

func TestRampInterpolates(t *testing.T) {
	g := Ramp(Hotspot(1, 10, 5), 0, 1)
	want := []int{0, 3, 5, 8, 10} // round(10 · t/4)
	for r, w := range want {
		if got := collect(g, r)[1]; got != w {
			t.Fatalf("round %d: %d, want %d", r, got, w)
		}
	}
	// One-round horizon uses the `from` factor.
	if got := collect(Ramp(Hotspot(1, 10, 1), 0.5, 1), 0)[1]; got != 5 {
		t.Fatalf("single-round ramp: %d, want 5", got)
	}
}

func TestGateMasksRounds(t *testing.T) {
	g := Gate(Hotspot(3, 2, 10), func(t int) bool { return t%2 == 0 })
	for r := 0; r < 10; r++ {
		want := 0
		if r%2 == 0 {
			want = 2
		}
		if got := collect(g, r)[3]; got != want {
			t.Fatalf("round %d: %d, want %d", r, got, want)
		}
	}
}

func TestBuildAccumulatesAndDropsNonPositive(t *testing.T) {
	bogus := New(3, func(t int, add AddFunc) {
		add(0, -5) // must be dropped, not subtracted
		add(1, 0)
	})
	demands := Build(3, Hotspot(1, 2, 3), Hotspot(1, 3, 2), bogus)
	if len(demands) != 3 {
		t.Fatalf("%d rounds", len(demands))
	}
	if got := demands[0].Count(1); got != 5 {
		t.Fatalf("round 0 node 1: %d, want 5 (2+3)", got)
	}
	if got := demands[2].Count(1); got != 2 {
		t.Fatalf("round 2 node 1: %d, want 2 (short gen expired)", got)
	}
	if demands[0].Count(0) != 0 {
		t.Fatal("negative contribution leaked into the demand")
	}
	// Empty rounds materialise as the canonical empty demand.
	empty := Build(2, New(2, nil))
	for r, d := range empty {
		if !d.Empty() || d.Distinct() != 0 {
			t.Fatalf("round %d: %v, want empty", r, d)
		}
	}
}

// TestComposedPipelineDeterministic drives a deep operator chain twice from
// the same seed and asserts byte-identical demand sequences — the
// composability contract the scenario engine is built on.
func TestComposedPipelineDeterministic(t *testing.T) {
	build := func(seed int64) []cost.Demand {
		rng := rand.New(rand.NewSource(seed))
		base := Ramp(Noise(15, 6, 60, rng), 0.3, 1)
		crowd := Spike(Hotspot(7, 1, 60), 20, 25, 6)
		day := Cycle(Pad(Shift(Hotspot(2, 4, 5), 3), 12), 60)
		weekendOnly := Gate(Noise(15, 2, 60, rng), func(t int) bool { return (t/10)%3 == 2 })
		return Build(60, Superpose(base, crowd, day, weekendOnly))
	}
	a, b := build(99), build(99)
	for r := range a {
		if a[r].String() != b[r].String() {
			t.Fatalf("round %d: %v vs %v", r, a[r], b[r])
		}
	}
	// And a different seed actually changes something.
	c := build(100)
	same := true
	for r := range a {
		if a[r].String() != c[r].String() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical sequences")
	}
}

// TestGenConcurrentEmit hammers one generator from many goroutines under
// -race: Emit is read-only after construction.
func TestGenConcurrentEmit(t *testing.T) {
	g := Superpose(
		Noise(10, 5, 50, rand.New(rand.NewSource(1))),
		Spike(Hotspot(3, 1, 50), 10, 12, 4),
		Cycle(Pad(Hotspot(1, 2, 3), 10), 50),
	)
	done := make(chan int, 6)
	for w := 0; w < 6; w++ {
		go func() {
			sum := 0
			for r := 0; r < g.Rounds(); r++ {
				sum += totalAt(g, r)
			}
			done <- sum
		}()
	}
	first := <-done
	for w := 1; w < 6; w++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent emits diverged: %d vs %d", got, first)
		}
	}
}
