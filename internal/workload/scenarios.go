package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/graph/cluster"
	"repro/internal/workload/scenario"
)

// FlashCrowdConfig parameterises the flash-crowd scenario.
type FlashCrowdConfig struct {
	// BaseRequests is the background volume: requests per round from
	// uniformly random access points. Zero selects half the commuter
	// volume 2^(T/2) derived from the network size.
	BaseRequests int
	// Spikes is the number of flash crowds over the horizon; zero means 1.
	Spikes int
	// Peak is the request volume at the top of a spike; zero selects four
	// times the background volume.
	Peak float64
	// Tau is the exponential decay constant of a spike, in rounds; zero
	// means 20.
	Tau float64
	// Growth linearly scales the background volume from Growth at round 0
	// to 1 at the horizon (organic growth leading into the crowds); zero
	// or 1 keeps the background flat.
	Growth float64
}

func (c FlashCrowdConfig) validate() error {
	if c.BaseRequests < 0 {
		return fmt.Errorf("workload: negative base requests %d", c.BaseRequests)
	}
	if c.Spikes < 0 {
		return fmt.Errorf("workload: negative spike count %d", c.Spikes)
	}
	if c.Peak < 0 {
		return fmt.Errorf("workload: negative spike peak %g", c.Peak)
	}
	if c.Tau < 0 {
		return fmt.Errorf("workload: negative spike decay τ=%g", c.Tau)
	}
	if c.Growth < 0 {
		return fmt.Errorf("workload: negative background growth %g", c.Growth)
	}
	return nil
}

// FlashCrowd builds the flash-crowd scenario: a uniform background noise
// floor on which sudden spikes erupt at random nodes and decay
// exponentially — Spike(Hotspot) superposed on (optionally ramped) Noise.
// Spike onsets are drawn uniformly over the horizon, so crowds may
// overlap; each tests how fast the allocation reacts to demand appearing
// where no server is.
func FlashCrowd(m graph.Metric, cfg FlashCrowdConfig, rounds int, rng *rand.Rand) (*Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if n == 0 {
		return nil, fmt.Errorf("workload: empty network")
	}
	if rounds < 1 {
		return nil, fmt.Errorf("workload: flash crowd needs rounds >= 1, got %d", rounds)
	}
	base := cfg.BaseRequests
	if base == 0 {
		base = (1 << uint(TForSize(n)/2)) / 2
		if base < 1 {
			base = 1
		}
	}
	spikes := cfg.Spikes
	if spikes == 0 {
		spikes = 1
	}
	peak := cfg.Peak
	if peak == 0 {
		peak = 4 * float64(base)
	}
	tau := cfg.Tau
	if tau == 0 {
		tau = 20
	}
	var background scenario.Gen
	if cfg.Growth != 0 && cfg.Growth != 1 {
		// A volume profile, not Ramp: ramping unit noise draws would
		// quantize each to 0 or 1 instead of thinning the round's volume.
		growth := cfg.Growth
		background = scenario.NoiseProfile(n, func(t int) int {
			f := growth
			if rounds > 1 {
				f += (1 - growth) * float64(t) / float64(rounds-1)
			}
			return int(math.Round(f * float64(base)))
		}, rounds, rng)
	} else {
		background = scenario.Noise(n, base, rounds, rng)
	}
	gens := []scenario.Gen{background}
	for s := 0; s < spikes; s++ {
		node := rng.Intn(n)
		at := rng.Intn(rounds)
		gens = append(gens, scenario.Spike(scenario.Hotspot(node, 1, rounds), at, peak, tau))
	}
	name := fmt.Sprintf("flash-crowd(R=%d,spikes=%d,peak=%g,τ=%g)", base, spikes, peak, tau)
	return NewSequence(name, scenario.Build(rounds, gens...)), nil
}

// DiurnalConfig parameterises the diurnal multi-region scenario.
type DiurnalConfig struct {
	// Regions is the number of latency regions (k-centers clusters) the
	// network is partitioned into; zero means 4 (capped at the network
	// size).
	Regions int
	// Period is the length of a full day in rounds; zero means 8·Regions.
	Period int
	// HotShare is the fraction of the volume that the region currently in
	// daytime concentrates on its cluster center; zero means the paper's
	// time-zones share of 50%.
	HotShare float64
	// RequestsPerRound is the total demand volume; zero derives the
	// commuter-comparable 2^(T/2) from the network size.
	RequestsPerRound int
}

func (c DiurnalConfig) validate() error {
	if c.Regions < 0 {
		return fmt.Errorf("workload: negative region count %d", c.Regions)
	}
	if c.Period < 0 {
		return fmt.Errorf("workload: negative period %d", c.Period)
	}
	if c.HotShare < 0 || c.HotShare > 1 {
		return fmt.Errorf("workload: hotspot share %g outside [0,1]", c.HotShare)
	}
	if c.RequestsPerRound < 0 {
		return fmt.Errorf("workload: negative requests per round %d", c.RequestsPerRound)
	}
	return nil
}

// DiurnalMultiRegion builds the diurnal multi-region scenario: the network
// is partitioned into k latency regions (cluster.KCenters), every region
// keeps a steady noise floor among its own members, and a daytime surge
// rotates around the globe — region i's cluster center is hot during its
// phase-shifted window of the day, expressed as
// Cycle(Pad(Shift(Hotspot(center_i), i·day/k), day)). Unlike the paper's
// time-zones scenario the background is regionally correlated, so good
// placements track the sun instead of hugging the global center.
func DiurnalMultiRegion(m graph.Metric, cfg DiurnalConfig, rounds int, rng *rand.Rand) (*Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if n == 0 {
		return nil, fmt.Errorf("workload: empty network")
	}
	if rounds < 1 {
		return nil, fmt.Errorf("workload: diurnal needs rounds >= 1, got %d", rounds)
	}
	k := cfg.Regions
	if k == 0 {
		k = 4
	}
	if k > n {
		k = n
	}
	cl, err := cluster.KCenters(m, k)
	if err != nil {
		return nil, err
	}
	k = cl.K() // degenerate substrates may yield fewer distinct centers
	period := cfg.Period
	if period == 0 {
		period = 8 * k
	}
	if period < k {
		period = k
	}
	share := cfg.HotShare
	if share == 0 {
		share = 0.5
	}
	reqs := cfg.RequestsPerRound
	if reqs == 0 {
		reqs = 1 << uint(TForSize(n)/2)
	}
	hot := int(math.Round(share * float64(reqs)))

	gens := make([]scenario.Gen, 0, 2*k)
	noise := reqs - hot
	offset := 0
	for i := 0; i < k; i++ {
		// Daytime surge: hot requests at the region's center during its
		// window of the day, phase-shifted per region and repeated daily.
		// The day's period%k remainder rounds go to the first regions'
		// windows, so the k windows tile the day exactly and the total
		// demand volume is independent of k (the ScenarioDiurnal sweep
		// compares region counts at equal traffic).
		window := period / k
		if i < period%k {
			window++
		}
		day := scenario.Shift(scenario.Hotspot(cl.Centers[i], hot, window), offset)
		offset += window
		gens = append(gens, scenario.Cycle(scenario.Pad(day, period), rounds))
		// Regional noise floor: this region's share of the background,
		// drawn among its own members (remainder to the first regions).
		per := noise / k
		if i < noise%k {
			per++
		}
		gens = append(gens, scenario.NoiseOver(cl.Members(i), per, rounds, rng))
	}
	name := fmt.Sprintf("diurnal(k=%d,period=%d,p=%g,R=%d)", k, period, share, reqs)
	return NewSequence(name, scenario.Build(rounds, gens...)), nil
}

// WeeklyConfig parameterises the weekday/weekend mix scenario.
type WeeklyConfig struct {
	// DayLen is the length of one day in rounds; zero means 20.
	DayLen int
	// T is the number of commuter day phases driving the weekday fan
	// pattern; zero derives it from the network size. Must be even and
	// ≥ 2 when set.
	T int
	// WeekendRequests is the background volume on weekend days; zero
	// selects a quarter of the weekday peak 2^(T/2).
	WeekendRequests int
}

func (c WeeklyConfig) validate() error {
	if c.DayLen < 0 {
		return fmt.Errorf("workload: negative day length %d", c.DayLen)
	}
	if c.T < 0 || c.T%2 != 0 {
		return fmt.Errorf("workload: weekly needs even T >= 2, got %d", c.T)
	}
	if c.WeekendRequests < 0 {
		return fmt.Errorf("workload: negative weekend requests %d", c.WeekendRequests)
	}
	return nil
}

// WeekdayWeekend builds the weekday/weekend mix: on the five weekdays of
// each seven-day week the commuter fan pattern commutes in and out of the
// network center — every day plays one full fan-out/fan-in cycle from
// phase 0, with the T·λ ≤ DayLen remainder quiet (the overnight lull) —
// while on the two weekend days only a thin uniform noise floor remains.
// Gate carves the week structure out of the two component generators, so
// the weekend noise is freshly drawn every week rather than replayed.
func WeekdayWeekend(m graph.Metric, cfg WeeklyConfig, rounds int, rng *rand.Rand) (*Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if n == 0 {
		return nil, fmt.Errorf("workload: empty network")
	}
	if rounds < 1 {
		return nil, fmt.Errorf("workload: weekly needs rounds >= 1, got %d", rounds)
	}
	day := cfg.DayLen
	if day == 0 {
		day = 20
	}
	T := cfg.T
	if T == 0 {
		T = TForSize(n)
		for T > day && T > 2 {
			T -= 2 // a day must fit at least one full fan cycle
		}
	}
	if T/2 >= 30 {
		return nil, fmt.Errorf("workload: weekly T=%d overflows the 2^(T/2) request volume", T)
	}
	if T > day {
		return nil, fmt.Errorf("workload: weekly needs DayLen >= T, got day=%d T=%d", day, T)
	}
	weekend := cfg.WeekendRequests
	if weekend == 0 {
		weekend = (1 << uint(T/2)) / 4
		if weekend < 1 {
			weekend = 1
		}
	}
	lambda := day / T
	weekday := func(t int) bool { return (t/day)%7 < 5 }
	// One day = one full fan cycle (T·λ rounds) plus a quiet overnight
	// remainder, repeated; days never start mid-fan, whatever T divides.
	fanDay := scenario.Pad(scenario.Fan(centerOrdering(m), T, lambda, true, T*lambda), day)
	fan := scenario.Cycle(fanDay, rounds)
	noise := scenario.Noise(n, weekend, rounds, rng)
	gens := []scenario.Gen{
		scenario.Gate(fan, weekday),
		scenario.Gate(noise, func(t int) bool { return !weekday(t) }),
	}
	name := fmt.Sprintf("weekly(day=%d,T=%d,λ=%d,weekend=%d)", day, T, lambda, weekend)
	return NewSequence(name, scenario.Build(rounds, gens...)), nil
}
