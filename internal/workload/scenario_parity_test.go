package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// ---------------------------------------------------------------------------
// Naive references: verbatim copies of the pre-scenario-engine generator
// loops, retained so the composable refactoring stays pinned bit-identical.

func naiveSpread(ph, T int) int {
	if ph <= T/2 {
		return ph
	}
	return T - ph
}

func naiveFanPoints(i, n int) int {
	points := 1 << uint(i)
	if points > n {
		points = n
	}
	return points
}

func naiveDistribute(order []int, points, total int) map[int]int {
	counts := make(map[int]int, points)
	per, rem := total/points, total%points
	for j := 0; j < points; j++ {
		c := per
		if j < rem {
			c++
		}
		if c > 0 {
			counts[order[j]] = c
		}
	}
	return counts
}

func naiveCenterOrdering(m *graph.Matrix) []int {
	center := m.Center()
	order := make([]int, m.N())
	for i := range order {
		order[i] = i
	}
	row := m.Row(center)
	sort.SliceStable(order, func(a, b int) bool {
		da, db := row[order[a]], row[order[b]]
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	return order
}

func naiveCommuter(m *graph.Matrix, cfg CommuterConfig, rounds int, dynamic bool) []cost.Demand {
	order := naiveCenterOrdering(m)
	demands := make([]cost.Demand, rounds)
	for t := 0; t < rounds; t++ {
		ph := (t / cfg.Lambda) % cfg.T
		total := 1 << uint(cfg.T/2)
		if dynamic {
			total = 1 << uint(naiveSpread(ph, cfg.T))
		}
		points := naiveFanPoints(naiveSpread(ph, cfg.T), m.N())
		demands[t] = cost.DemandFromCounts(naiveDistribute(order, points, total))
	}
	return demands
}

func naiveTimeZones(n int, cfg TimeZonesConfig, rounds int, rng *rand.Rand) []cost.Demand {
	reqs := cfg.RequestsPerRound
	if reqs == 0 {
		reqs = 1 << uint(TForSize(n)/2)
	}
	hotspots := make([]int, cfg.T)
	for i := range hotspots {
		hotspots[i] = rng.Intn(n)
	}
	hotCount := int(math.Round(cfg.P * float64(reqs)))
	demands := make([]cost.Demand, rounds)
	for t := 0; t < rounds; t++ {
		period := (t / cfg.Lambda) % cfg.T
		counts := make(map[int]int, reqs-hotCount+1)
		if hotCount > 0 {
			counts[hotspots[period]] += hotCount
		}
		for r := hotCount; r < reqs; r++ {
			counts[rng.Intn(n)]++
		}
		demands[t] = cost.DemandFromCounts(counts)
	}
	return demands
}

// ---------------------------------------------------------------------------

func parityGraph(t *testing.T, n int, seed int64) *graph.Matrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := gen.ErdosRenyi(n, 0.05, gen.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	return g.Metric()
}

// demandsEqual asserts two sequences are bit-identical: same horizon and,
// per round, exactly the same (node, count) pairs.
func demandsEqual(t *testing.T, label string, got *Sequence, want []cost.Demand) {
	t.Helper()
	if got.Len() != len(want) {
		t.Fatalf("%s: %d rounds, reference %d", label, got.Len(), len(want))
	}
	for r := 0; r < got.Len(); r++ {
		gp, wp := got.Demand(r).Pairs(), want[r].Pairs()
		if len(gp) != len(wp) {
			t.Fatalf("%s round %d: %d pairs, reference %d\n got %v\nwant %v",
				label, r, len(gp), len(wp), got.Demand(r), want[r])
		}
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("%s round %d pair %d: %+v, reference %+v", label, r, i, gp[i], wp[i])
			}
		}
	}
}

// TestCommuterMatchesNaiveReference pins both commuter variants, rebuilt on
// the scenario engine, bit-identical to the original round loop across
// seeds, fan saturation (T too large for the network), and λ values.
func TestCommuterMatchesNaiveReference(t *testing.T) {
	cases := []struct {
		n      int
		seed   int64
		T      int
		lambda int
	}{
		{40, 1, 8, 10},
		{40, 7, 8, 1},
		{10, 1, 10, 3}, // 2^(T/2) = 32 > n: fan saturates at the network size
		{25, 7, 4, 20},
	}
	for _, tc := range cases {
		m := parityGraph(t, tc.n, tc.seed)
		cfg := CommuterConfig{T: tc.T, Lambda: tc.lambda}
		for _, dynamic := range []bool{false, true} {
			got, err := commuter(m, cfg, 120, dynamic)
			if err != nil {
				t.Fatal(err)
			}
			demandsEqual(t, got.Name(), got, naiveCommuter(m, cfg, 120, dynamic))
		}
	}
}

// TestTimeZonesMatchesNaiveReference pins the time-zones scenario, rebuilt
// as RotatingHotspot + Noise, bit-identical to the original loop — the RNG
// draw order must be preserved exactly.
func TestTimeZonesMatchesNaiveReference(t *testing.T) {
	cases := []struct {
		n    int
		seed int64
		cfg  TimeZonesConfig
	}{
		{40, 1, TimeZonesConfig{T: 6, P: 0.5, Lambda: 10}},
		{40, 7, TimeZonesConfig{T: 6, P: 0.5, Lambda: 10}},
		{30, 3, TimeZonesConfig{T: 4, P: 0, Lambda: 5, RequestsPerRound: 9}}, // pure noise
		{30, 3, TimeZonesConfig{T: 4, P: 1, Lambda: 5, RequestsPerRound: 9}}, // pure hotspot
		{12, 11, TimeZonesConfig{T: 3, P: 0.3, Lambda: 2, RequestsPerRound: 7}},
	}
	for _, tc := range cases {
		m := parityGraph(t, tc.n, tc.seed)
		got, err := TimeZones(m, tc.cfg, 90, rand.New(rand.NewSource(tc.seed)))
		if err != nil {
			t.Fatal(err)
		}
		want := naiveTimeZones(m.N(), tc.cfg, 90, rand.New(rand.NewSource(tc.seed)))
		demandsEqual(t, got.Name(), got, want)
	}
}

// TestScenariosDeterministic: the same seed yields byte-identical sequences
// for every scenario, including the new composable ones.
func TestScenariosDeterministic(t *testing.T) {
	m := parityGraph(t, 40, 5)
	builders := map[string]func(seed int64) (*Sequence, error){
		"commuter-dynamic": func(int64) (*Sequence, error) {
			return CommuterDynamic(m, CommuterConfig{T: 8, Lambda: 5}, 100)
		},
		"time-zones": func(seed int64) (*Sequence, error) {
			return TimeZones(m, TimeZonesConfig{T: 5, P: 0.5, Lambda: 7}, 100, rand.New(rand.NewSource(seed)))
		},
		"flash-crowd": func(seed int64) (*Sequence, error) {
			return FlashCrowd(m, FlashCrowdConfig{BaseRequests: 6, Spikes: 3, Peak: 30, Tau: 8, Growth: 0.5}, 100, rand.New(rand.NewSource(seed)))
		},
		"diurnal": func(seed int64) (*Sequence, error) {
			return DiurnalMultiRegion(m, DiurnalConfig{Regions: 3, Period: 24, HotShare: 0.6, RequestsPerRound: 12}, 100, rand.New(rand.NewSource(seed)))
		},
		"weekly": func(seed int64) (*Sequence, error) {
			return WeekdayWeekend(m, WeeklyConfig{DayLen: 10, T: 6, WeekendRequests: 3}, 100, rand.New(rand.NewSource(seed)))
		},
	}
	labels := make([]string, 0, len(builders))
	for label := range builders {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		build := builders[label]
		a, err := build(42)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		b, err := build(42)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if a.Name() != b.Name() {
			t.Fatalf("%s: names differ: %q vs %q", label, a.Name(), b.Name())
		}
		want := make([]cost.Demand, b.Len())
		for r := range want {
			want[r] = b.Demand(r)
		}
		demandsEqual(t, label, a, want)
	}
}

// TestDiurnalVolumeIndependentOfRegions pins the window tiling: the k
// daytime windows cover the whole day for every k, so the total demand
// volume is the same at every region count (the ScenarioDiurnal sweep
// compares strategies at equal traffic).
func TestDiurnalVolumeIndependentOfRegions(t *testing.T) {
	m := parityGraph(t, 40, 5)
	const rounds, period, reqs = 160, 80, 12 // period%k != 0 for k=3 and 6
	want := -1
	for _, k := range []int{2, 3, 4, 6} {
		seq, err := DiurnalMultiRegion(m, DiurnalConfig{
			Regions: k, Period: period, HotShare: 0.5, RequestsPerRound: reqs,
		}, rounds, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		got := seq.TotalRequests()
		if want < 0 {
			want = got
		}
		if got != want {
			t.Fatalf("k=%d: %d total requests, want %d (independent of k)", k, got, want)
		}
		// Exactly one region is hot in every round.
		for r := 0; r < rounds; r++ {
			if total := seq.Demand(r).Total(); total != reqs {
				t.Fatalf("k=%d round %d: %d requests, want %d", k, r, total, reqs)
			}
		}
	}
}

// TestWeeklyDaysStartAligned pins the weekday structure: every weekday
// plays the fan cycle from phase 0 (a single request at the center), so
// days never start mid-fan, and weekend rounds carry only the noise floor.
func TestWeeklyDaysStartAligned(t *testing.T) {
	m := parityGraph(t, 40, 5)
	const day = 10
	seq, err := WeekdayWeekend(m, WeeklyConfig{DayLen: day, T: 6, WeekendRequests: 3}, 2*7*day,
		rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 14; d++ {
		first := seq.Demand(d * day)
		if d%7 < 5 {
			// Fan phase 0: one request at the network center.
			if first.Total() != 1 {
				t.Fatalf("weekday %d starts with %v, want a single phase-0 request", d, first)
			}
		} else if first.Total() != 3 {
			t.Fatalf("weekend day %d starts with %v, want the 3-request noise floor", d, first)
		}
	}
}

// TestFlashCrowdGrowthThinsBackground pins the Growth knob: the early
// background volume must actually be thinner than the late one (a volume
// profile, not all-or-nothing unit rounding).
func TestFlashCrowdGrowthThinsBackground(t *testing.T) {
	m := parityGraph(t, 40, 5)
	const rounds, base = 100, 16
	seq, err := FlashCrowd(m, FlashCrowdConfig{
		BaseRequests: base, Spikes: 1, Peak: 1, Tau: 1, Growth: 0.25,
	}, rounds, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Demand(0).Total(); got < base/4-1 || got > base/4+2 {
		t.Fatalf("round 0 volume %d, want ≈ %d (Growth=0.25 of base %d)", got, base/4, base)
	}
	if got := seq.Demand(rounds - 1).Total(); got < base {
		t.Fatalf("final round volume %d, want ≥ %d (ramped to full)", got, base)
	}
	// Strictly increasing in aggregate: first quarter thinner than last.
	first := seq.Aggregate(0, rounds/4).Total()
	last := seq.Aggregate(3*rounds/4, rounds).Total()
	if first >= last {
		t.Fatalf("background did not grow: first quarter %d, last quarter %d", first, last)
	}
}

// TestSequenceConcurrentReads replays a built sequence from many goroutines
// under -race: sequences are immutable after construction.
func TestSequenceConcurrentReads(t *testing.T) {
	m := parityGraph(t, 30, 9)
	seq, err := FlashCrowd(m, FlashCrowdConfig{BaseRequests: 5, Spikes: 2}, 80, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func() {
			total := 0
			for r := -5; r < seq.Len()+5; r++ {
				total += seq.Demand(r).Total()
			}
			_ = seq.Slice(10, 50)
			_ = seq.Aggregate(0, seq.Len())
			done <- total
		}()
	}
	first := <-done
	for w := 1; w < 8; w++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent replay diverged: %d vs %d", got, first)
		}
	}
}

// TestSliceAndDemandBounds is the bounds-handling audit: Slice, Demand, and
// Aggregate must clamp every out-of-range combination instead of panicking,
// and empty rounds must flow through cost.Accumulator unchanged.
func TestSliceAndDemandBounds(t *testing.T) {
	demands := []cost.Demand{
		cost.DemandFromPairs(cost.NodeCount{Node: 0, Count: 2}),
		{}, // an empty round inside the horizon
		cost.DemandFromPairs(cost.NodeCount{Node: 1, Count: 3}),
	}
	s := NewSequence("bounds", demands)

	sliceCases := []struct {
		from, to int
		wantLen  int
		wantReq  int
	}{
		{0, 3, 3, 5},
		{1, 2, 1, 0},   // the empty round alone
		{-4, 2, 2, 2},  // negative from clamps to 0
		{0, 99, 3, 5},  // beyond-horizon to clamps to Len
		{2, -1, 0, 0},  // negative to: clamps, then inverts to empty (panicked before the fix)
		{-7, -2, 0, 0}, // both negative
		{3, 1, 0, 0},   // inverted range
		{99, 99, 0, 0}, // past the horizon
	}
	for _, tc := range sliceCases {
		got := s.Slice(tc.from, tc.to)
		if got.Len() != tc.wantLen || got.TotalRequests() != tc.wantReq {
			t.Errorf("Slice(%d,%d): len %d total %d, want len %d total %d",
				tc.from, tc.to, got.Len(), got.TotalRequests(), tc.wantLen, tc.wantReq)
		}
		if got.Name() != s.Name() {
			t.Errorf("Slice(%d,%d) renamed the sequence to %q", tc.from, tc.to, got.Name())
		}
	}

	for _, r := range []int{-1, -99, 3, 42} {
		if d := s.Demand(r); !d.Empty() {
			t.Errorf("Demand(%d) = %v, want empty", r, d)
		}
	}

	aggCases := []struct {
		from, to int
		want     int
	}{
		{0, 3, 5},
		{-5, 99, 5},
		{2, -1, 0},
		{1, 1, 0},
		{1, 2, 0}, // aggregating only the empty round
	}
	for _, tc := range aggCases {
		if got := s.Aggregate(tc.from, tc.to).Total(); got != tc.want {
			t.Errorf("Aggregate(%d,%d).Total() = %d, want %d", tc.from, tc.to, got, tc.want)
		}
	}

	// Empty rounds through the accumulator: folding the whole horizon,
	// empty rounds included, must equal Aggregate over it.
	acc := cost.NewAccumulator(4)
	for r := 0; r < s.Len(); r++ {
		acc.Add(s.Demand(r))
	}
	if got, want := acc.Demand(), s.Aggregate(0, s.Len()); got.String() != want.String() {
		t.Errorf("accumulated %v, aggregate %v", got, want)
	}
	acc.Reset()
	acc.Add(cost.Demand{})
	if got := acc.Demand(); !got.Empty() {
		t.Errorf("accumulating only empty demands yields %v, want empty", got)
	}
}
