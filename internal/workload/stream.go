package workload

import (
	"fmt"

	"repro/internal/workload/scenario"
)

// Stream adapts a finite scenario into an unbounded arrival source for the
// serving layer: each round's demand multiset is flattened into individual
// request arrivals in deterministic order (the demand's sorted node pairs,
// count copies each), and the sequence cycles when exhausted. Two streams
// built from the same sequence emit identical arrival orders — which is
// what makes a seeded load generator reproducible.
type Stream struct {
	seq   *Sequence
	round int   // next round to flatten
	buf   []int // flattened arrivals of the current round
	pos   int
	total int64 // arrivals emitted so far
}

// NewStream wraps a sequence. It fails on a sequence with no requests at
// all (the stream could never emit an arrival).
func NewStream(seq *Sequence) (*Stream, error) {
	if seq.Len() == 0 || seq.TotalRequests() == 0 {
		return nil, fmt.Errorf("workload: stream over %q: sequence has no requests", seq.Name())
	}
	return &Stream{seq: seq}, nil
}

// StreamGen adapts a raw scenario generator: the generator is materialised
// once (scenario.Build) and streamed cyclically.
func StreamGen(name string, g scenario.Gen) (*Stream, error) {
	return NewStream(NewSequence(name, scenario.Build(g.Rounds(), g)))
}

// Name identifies the underlying scenario.
func (s *Stream) Name() string { return s.seq.Name() }

// Emitted returns the number of arrivals produced so far.
func (s *Stream) Emitted() int64 { return s.total }

// Round returns the sequence round the next arrival is drawn from.
func (s *Stream) Round() int { return s.round % s.seq.Len() }

// Next returns the access node of the next arrival. The sequence cycles,
// so Next never runs out; empty rounds are skipped (they contribute no
// arrivals — a serving-side tick is what represents idle rounds).
func (s *Stream) Next() int {
	for s.pos >= len(s.buf) {
		d := s.seq.Demand(s.round % s.seq.Len())
		s.round++
		s.buf = s.buf[:0]
		for _, p := range d.Pairs() {
			for i := 0; i < p.Count; i++ {
				s.buf = append(s.buf, p.Node)
			}
		}
		s.pos = 0
	}
	node := s.buf[s.pos]
	s.pos++
	s.total++
	return node
}
