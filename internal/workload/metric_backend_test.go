package workload

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// TestCenterOrderingSparseParity: the commuter fan draws access points
// from centerOrdering, so the ordering must be identical under every
// exact backend or the generated workloads diverge between backends.
func TestCenterOrderingSparseParity(t *testing.T) {
	g, err := gen.ErdosRenyi(36, 0.12, gen.DefaultOptions(), rand.New(rand.NewSource(31)))
	if err != nil {
		t.Fatal(err)
	}
	dense := centerOrdering(g.AllPairs())
	sparse := centerOrdering(graph.NewSparse(g, 2))
	if !reflect.DeepEqual(dense, sparse) {
		t.Fatalf("center ordering diverges:\n  dense  %v\n  sparse %v", dense, sparse)
	}
	exact := centerOrdering(graph.NewLandmark(g, 36))
	if !reflect.DeepEqual(dense, exact) {
		t.Fatalf("center ordering diverges under landmark-exact:\n  dense    %v\n  landmark %v", dense, exact)
	}
}

// TestCenterOrderingDisconnected: nodes unreachable from the center sit
// at Infinity and sort last (ties by id), identically under dense and
// sparse — the workload generators stay well-defined on disconnected
// substrates.
func TestCenterOrderingDisconnected(t *testing.T) {
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(3, 4, 1, 1)
	g.MustAddEdge(4, 5, 1, 1)
	dense := centerOrdering(g.AllPairs())
	sparse := centerOrdering(graph.NewSparse(g, 2))
	if !reflect.DeepEqual(dense, sparse) {
		t.Fatalf("disconnected ordering diverges:\n  dense  %v\n  sparse %v", dense, sparse)
	}
	if len(dense) != 6 {
		t.Fatalf("ordering dropped nodes: %v", dense)
	}
	// The center's own island comes first; the unreachable island follows
	// in id order.
	center := graph.CenterOf(g.AllPairs())
	island := map[bool][]int{true: {0, 1, 2}, false: {3, 4, 5}}[center < 3]
	other := map[bool][]int{true: {3, 4, 5}, false: {0, 1, 2}}[center < 3]
	got := append([]int(nil), dense[:3]...)
	for _, v := range got {
		if v != island[0] && v != island[1] && v != island[2] {
			t.Fatalf("node %d from the unreachable island ordered before the center's island: %v", v, dense)
		}
	}
	if !reflect.DeepEqual(dense[3:], other) {
		t.Fatalf("unreachable island not ordered by id: %v", dense[3:])
	}
}

// TestCommuterSparseParity: the full commuter generator — fan, phases,
// randomness-free static variant — emits identical demand sequences over
// dense and sparse backends.
func TestCommuterSparseParity(t *testing.T) {
	g, err := gen.ErdosRenyi(30, 0.15, gen.DefaultOptions(), rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 40
	cfg := CommuterConfig{T: 6, Lambda: 3}
	sd, err := CommuterStatic(g.AllPairs(), cfg, rounds)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := CommuterStatic(graph.NewSparse(g, 2), cfg, rounds)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		if !reflect.DeepEqual(sd.Demand(i).Pairs(), ss.Demand(i).Pairs()) {
			t.Fatalf("round %d demand diverges between dense and sparse backends", i)
		}
	}
}
