package workload

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func lineMatrix(n int) *graph.Matrix {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	return g.AllPairs()
}

func TestSequenceBasics(t *testing.T) {
	s := NewSequence("x", []cost.Demand{
		cost.DemandFromList([]int{1}),
		cost.DemandFromList([]int{2, 2}),
	})
	if s.Len() != 2 || s.Name() != "x" {
		t.Fatal("basic accessors wrong")
	}
	if s.Demand(0).Total() != 1 || s.Demand(1).Total() != 2 {
		t.Fatal("demand lookup wrong")
	}
	if !s.Demand(-1).Empty() || !s.Demand(5).Empty() {
		t.Fatal("out-of-range demand must be empty")
	}
	if s.TotalRequests() != 3 {
		t.Fatalf("TotalRequests = %d, want 3", s.TotalRequests())
	}
	agg := s.Aggregate(0, 2)
	if agg.Total() != 3 || agg.Count(2) != 2 {
		t.Fatalf("aggregate = %v", agg)
	}
	if s.Aggregate(2, 1).Total() != 0 {
		t.Fatal("inverted aggregate range must be empty")
	}
	sl := s.Slice(1, 5)
	if sl.Len() != 1 || sl.Demand(0).Total() != 2 {
		t.Fatal("slice wrong")
	}
}

func TestTForSize(t *testing.T) {
	cases := []struct{ n, want int }{
		{2, 2}, {3, 2}, {4, 4}, {7, 4}, {8, 6}, {100, 12}, {1000, 18},
	}
	for _, c := range cases {
		if got := TForSize(c.n); got != c.want {
			t.Errorf("TForSize(%d) = %d, want %d", c.n, got, c.want)
		}
		if points := 1 << uint(TForSize(c.n)/2); points > c.n {
			t.Errorf("TForSize(%d) = %d overflows the network", c.n, TForSize(c.n))
		}
	}
}

func TestCommuterStaticConservation(t *testing.T) {
	// "The total number of requests per round is fixed to 2^(T/2)."
	m := lineMatrix(40)
	cfg := CommuterConfig{T: 8, Lambda: 3}
	s, err := CommuterStatic(m, cfg, 120)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 << 4 // 16
	for tt := 0; tt < s.Len(); tt++ {
		if got := s.Demand(tt).Total(); got != want {
			t.Fatalf("round %d: total = %d, want %d", tt, got, want)
		}
	}
}

func TestCommuterStaticFanOutAndIn(t *testing.T) {
	m := lineMatrix(40)
	cfg := CommuterConfig{T: 8, Lambda: 1}
	s, err := CommuterStatic(m, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantPoints := []int{1, 2, 4, 8, 16, 8, 4, 2} // 2^spread(ph,8)
	for ph, want := range wantPoints {
		if got := s.Demand(ph).Distinct(); got != want {
			t.Fatalf("phase %d: %d access points, want %d", ph, got, want)
		}
	}
	// Day wraps: round 8 repeats phase 0.
	s2, _ := CommuterStatic(m, cfg, 9)
	if s2.Demand(8).Distinct() != 1 {
		t.Fatal("day did not wrap to single access point")
	}
}

func TestCommuterStaticCenterIsAlwaysHot(t *testing.T) {
	m := lineMatrix(33)
	center := m.Center()
	s, err := CommuterStatic(m, CommuterConfig{T: 6, Lambda: 2}, 60)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < s.Len(); tt++ {
		if s.Demand(tt).Count(center) == 0 {
			t.Fatalf("round %d: network center has no requests", tt)
		}
	}
}

func TestCommuterDynamicLoadSwings(t *testing.T) {
	m := lineMatrix(40)
	cfg := CommuterConfig{T: 8, Lambda: 1}
	s, err := CommuterDynamic(m, cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	wantTotals := []int{1, 2, 4, 8, 16, 8, 4, 2}
	for ph, want := range wantTotals {
		d := s.Demand(ph)
		if d.Total() != want {
			t.Fatalf("phase %d: total = %d, want %d", ph, d.Total(), want)
		}
		// Dynamic load: exactly one request per access point.
		for _, p := range d.Pairs() {
			if p.Count != 1 {
				t.Fatalf("phase %d: node %d has %d requests, want 1", ph, p.Node, p.Count)
			}
		}
	}
}

func TestCommuterLambdaStretchesPhases(t *testing.T) {
	m := lineMatrix(40)
	s, err := CommuterDynamic(m, CommuterConfig{T: 4, Lambda: 5}, 20)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < 5; tt++ {
		if s.Demand(tt).Total() != 1 {
			t.Fatalf("round %d: phase 0 should last λ=5 rounds", tt)
		}
	}
	if s.Demand(5).Total() != 2 {
		t.Fatal("phase did not advance after λ rounds")
	}
}

func TestCommuterValidation(t *testing.T) {
	m := lineMatrix(10)
	bad := []CommuterConfig{
		{T: 3, Lambda: 1},  // odd T
		{T: 0, Lambda: 1},  // T too small
		{T: 4, Lambda: 0},  // λ too small
		{T: 64, Lambda: 1}, // 2^32 requests overflow
	}
	for i, cfg := range bad {
		if _, err := CommuterStatic(m, cfg, 10); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
		if _, err := CommuterDynamic(m, cfg, 10); err == nil {
			t.Errorf("case %d: dynamic config %+v accepted", i, cfg)
		}
	}
}

func TestCommuterFanSaturatesAtNetworkSize(t *testing.T) {
	// T = 10 wants 2^5 = 32 access points on a 10-node network: the
	// generators must keep the 32-request volume but spread it over all 10
	// nodes instead of failing.
	m := lineMatrix(10)
	s, err := CommuterStatic(m, CommuterConfig{T: 10, Lambda: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < s.Len(); tt++ {
		d := s.Demand(tt)
		if d.Total() != 32 {
			t.Fatalf("round %d: total = %d, want 32", tt, d.Total())
		}
		if d.Distinct() > 10 {
			t.Fatalf("round %d: %d access points on a 10-node network", tt, d.Distinct())
		}
	}
	dyn, err := CommuterDynamic(m, CommuterConfig{T: 10, Lambda: 1}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.Demand(5).Total() != 32 || dyn.Demand(5).Distinct() != 10 {
		t.Fatalf("dynamic saturation wrong: %v", dyn.Demand(5))
	}
}

func TestTimeZonesHotspotShare(t *testing.T) {
	m := lineMatrix(50)
	cfg := TimeZonesConfig{T: 4, P: 0.5, Lambda: 2, RequestsPerRound: 40}
	rng := rand.New(rand.NewSource(7))
	s, err := TimeZones(m, cfg, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < s.Len(); tt++ {
		d := s.Demand(tt)
		if d.Total() != 40 {
			t.Fatalf("round %d: total = %d, want 40", tt, d.Total())
		}
		// Some node (the hotspot) must carry at least p·R = 20 requests.
		max := 0
		for _, p := range d.Pairs() {
			if p.Count > max {
				max = p.Count
			}
		}
		if max < 20 {
			t.Fatalf("round %d: hottest node has %d requests, want ≥ 20", tt, max)
		}
	}
}

func TestTimeZonesHotspotsRepeatDaily(t *testing.T) {
	m := lineMatrix(50)
	cfg := TimeZonesConfig{T: 3, P: 1.0, Lambda: 1, RequestsPerRound: 5}
	s, err := TimeZones(m, cfg, 9, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	// With p=1 all requests sit on the period's hotspot; hotspots must be
	// "the same each day".
	hotspot := func(tt int) int { return s.Demand(tt).Pairs()[0].Node }
	for period := 0; period < 3; period++ {
		if hotspot(period) != hotspot(period+3) || hotspot(period) != hotspot(period+6) {
			t.Fatalf("period %d hotspot changed across days", period)
		}
	}
}

func TestTimeZonesDefaultVolume(t *testing.T) {
	m := lineMatrix(100)
	cfg := TimeZonesConfig{T: 2, P: 0.5, Lambda: 1}
	s, err := TimeZones(m, cfg, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 << uint(TForSize(100)/2) // 2^6 = 64
	if s.Demand(0).Total() != want {
		t.Fatalf("default volume = %d, want %d", s.Demand(0).Total(), want)
	}
}

func TestTimeZonesValidation(t *testing.T) {
	m := lineMatrix(10)
	rng := rand.New(rand.NewSource(1))
	bad := []TimeZonesConfig{
		{T: 0, P: 0.5, Lambda: 1},
		{T: 2, P: -0.1, Lambda: 1},
		{T: 2, P: 1.5, Lambda: 1},
		{T: 2, P: 0.5, Lambda: 0},
		{T: 2, P: 0.5, Lambda: 1, RequestsPerRound: -1},
	}
	for i, cfg := range bad {
		if _, err := TimeZones(m, cfg, 5, rng); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

func TestUniform(t *testing.T) {
	s, err := Uniform(20, 7, 30, rand.New(rand.NewSource(13)))
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < s.Len(); tt++ {
		if s.Demand(tt).Total() != 7 {
			t.Fatalf("round %d: total = %d, want 7", tt, s.Demand(tt).Total())
		}
	}
	if _, err := Uniform(0, 1, 1, rand.New(rand.NewSource(13))); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := Uniform(5, -1, 1, rand.New(rand.NewSource(13))); err == nil {
		t.Error("negative volume accepted")
	}
}

func TestOnOffConservesUsers(t *testing.T) {
	s, err := OnOff(30, 12, 2, 5, 50, rand.New(rand.NewSource(17)))
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < s.Len(); tt++ {
		if s.Demand(tt).Total() != 12 {
			t.Fatalf("round %d: %d users, want 12", tt, s.Demand(tt).Total())
		}
	}
}

func TestOnOffUsersMove(t *testing.T) {
	s, err := OnOff(30, 1, 1, 1, 20, rand.New(rand.NewSource(19)))
	if err != nil {
		t.Fatal(err)
	}
	// With sojourn 1 the single user relocates every round; over 20 rounds
	// on 30 nodes it is vanishingly unlikely to sit still throughout.
	first := s.Demand(0).Pairs()[0].Node
	moved := false
	for tt := 1; tt < s.Len(); tt++ {
		if s.Demand(tt).Pairs()[0].Node != first {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("on/off user never moved")
	}
}

func TestOnOffValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	if _, err := OnOff(0, 1, 1, 1, 1, rng); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := OnOff(5, -1, 1, 1, 1, rng); err == nil {
		t.Error("negative users accepted")
	}
	if _, err := OnOff(5, 1, 0, 1, 1, rng); err == nil {
		t.Error("zero min stay accepted")
	}
	if _, err := OnOff(5, 1, 3, 2, 1, rng); err == nil {
		t.Error("inverted stay range accepted")
	}
}

func TestCommuterOnERGraph(t *testing.T) {
	// End-to-end: the generators must work on the paper's ER substrates.
	rng := rand.New(rand.NewSource(29))
	g, err := gen.ErdosRenyi(100, 0.05, gen.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	m := g.AllPairs()
	s, err := CommuterStatic(m, CommuterConfig{T: TForSize(100), Lambda: 4}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalRequests() != 50*(1<<uint(TForSize(100)/2)) {
		t.Fatal("conservation violated on ER graph")
	}
}
