package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"repro/internal/cost"
)

// WriteCSV serialises a sequence as CSV with header "round,node,count" and
// one row per (round, access point) pair. Rounds without demand produce no
// rows but still count toward the horizon recorded in the trailer comment.
func WriteCSV(w io.Writer, s *Sequence) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"round", "node", "count"}); err != nil {
		return err
	}
	for t := 0; t < s.Len(); t++ {
		for _, p := range s.Demand(t).Pairs() {
			rec := []string{strconv.Itoa(t), strconv.Itoa(p.Node), strconv.Itoa(p.Count)}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a request trace in the WriteCSV format ("round,node,count"
// with a header row) into a sequence named `name`. The horizon is the
// largest round mentioned plus one; rounds may appear in any order and
// repeated (round, node) rows accumulate. This is the hook for replaying
// real traces — the paper could not publish its operator traces ("real
// traffic patterns are confidential"), so external data can be plugged in
// here instead.
func ReadCSV(r io.Reader, name string) (*Sequence, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 3
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(records) == 0 {
		return NewSequence(name, nil), nil
	}
	if records[0][0] == "round" {
		records = records[1:] // header
	}
	type key struct{ t, node int }
	counts := make(map[key]int, len(records))
	horizon := 0
	for i, rec := range records {
		t, err1 := strconv.Atoi(rec[0])
		node, err2 := strconv.Atoi(rec[1])
		cnt, err3 := strconv.Atoi(rec[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("workload: trace row %d: malformed record %v", i+1, rec)
		}
		if t < 0 || node < 0 {
			return nil, fmt.Errorf("workload: trace row %d: negative round or node in %v", i+1, rec)
		}
		if cnt <= 0 {
			continue
		}
		counts[key{t, node}] += cnt
		if t+1 > horizon {
			horizon = t + 1
		}
	}
	perRound := make([]map[int]int, horizon)
	for k, c := range counts {
		if perRound[k.t] == nil {
			perRound[k.t] = make(map[int]int)
		}
		perRound[k.t][k.node] += c
	}
	demands := make([]cost.Demand, horizon)
	for t := range demands {
		demands[t] = cost.DemandFromCounts(perRound[t])
	}
	return NewSequence(name, demands), nil
}
