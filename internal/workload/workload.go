// Package workload generates the request sequences σ0, σ1, ... of the
// paper's evaluation scenarios (Section V-A) — the time-zones scenario, in
// which a rotating hotspot models global daytime effects, and the commuter
// scenario, in which requests fan out from the network center in the
// morning and fan back in in the evening, in a static-load and a
// dynamic-load variant — plus the scenarios beyond the paper built on the
// composable generator engine of the scenario subpackage: flash crowds,
// diurnal multi-region traffic, and a weekday/weekend mix (scenarios.go).
//
// All generators precompute their randomness at construction from a
// caller-supplied *rand.Rand, so a sequence is deterministic, can be
// replayed (offline algorithms see the future), and is safe for concurrent
// reads.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/workload/scenario"
)

// Sequence is a fixed request sequence over a finite horizon.
type Sequence struct {
	name    string
	demands []cost.Demand
}

// NewSequence wraps precomputed demands.
func NewSequence(name string, demands []cost.Demand) *Sequence {
	return &Sequence{name: name, demands: demands}
}

// Name identifies the scenario, e.g. "commuter-dynamic(T=10,λ=20)".
func (s *Sequence) Name() string { return s.name }

// Len returns the horizon (number of rounds).
func (s *Sequence) Len() int { return len(s.demands) }

// Demand returns σt. Rounds beyond the horizon have empty demand.
func (s *Sequence) Demand(t int) cost.Demand {
	if t < 0 || t >= len(s.demands) {
		return cost.Demand{}
	}
	return s.demands[t]
}

// TotalRequests sums requests over the whole horizon.
func (s *Sequence) TotalRequests() int {
	total := 0
	for _, d := range s.demands {
		total += d.Total()
	}
	return total
}

// Slice returns the sub-sequence of rounds [from, to). Bounds are clamped
// to [0, Len()], and an inverted range (from > to) yields the empty
// sequence — so Slice never panics, whatever the arguments.
func (s *Sequence) Slice(from, to int) *Sequence {
	if from < 0 {
		from = 0
	}
	if to < 0 {
		to = 0
	}
	if to > len(s.demands) {
		to = len(s.demands)
	}
	if from > to {
		from = to
	}
	return &Sequence{name: s.name, demands: s.demands[from:to]}
}

// Aggregate merges the demand of rounds [from, to) into one multi-set.
func (s *Sequence) Aggregate(from, to int) cost.Demand {
	if from < 0 {
		from = 0
	}
	if to > len(s.demands) {
		to = len(s.demands)
	}
	if from >= to {
		return cost.Demand{}
	}
	return cost.Aggregate(s.demands[from:to]...)
}

// centerOrdering returns all nodes sorted by shortest-path latency from the
// network center (the center itself first; ties broken by node id). The
// commuter scenario draws its access points "around the center" from the
// prefix of this ordering.
func centerOrdering(m graph.Metric) []int {
	center := graph.CenterOf(m)
	order := make([]int, m.N())
	for i := range order {
		order[i] = i
	}
	row := m.Row(center)
	sort.SliceStable(order, func(a, b int) bool {
		da, db := row[order[a]], row[order[b]]
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	return order
}

// CommuterConfig parameterises both commuter variants.
type CommuterConfig struct {
	// T is the number of day phases; must be even and ≥ 2. The paper
	// assumes the network has at least 2^(T/2) access points; when it does
	// not, the generators keep the request volume and spread it over all
	// nodes instead (the fan-out saturates).
	T int
	// Lambda is the number of rounds between phase changes (the parameter
	// λ of Section V-A).
	Lambda int
}

func (c CommuterConfig) validate(n int) error {
	if c.T < 2 || c.T%2 != 0 {
		return fmt.Errorf("workload: commuter needs even T >= 2, got %d", c.T)
	}
	if c.T/2 >= 30 {
		return fmt.Errorf("workload: commuter T=%d overflows the 2^(T/2) request volume", c.T)
	}
	if c.Lambda < 1 {
		return fmt.Errorf("workload: commuter needs λ >= 1, got %d", c.Lambda)
	}
	if n < 1 {
		return fmt.Errorf("workload: commuter needs a non-empty network")
	}
	return nil
}

// TForSize returns the largest even T whose maximum fan-out 2^(T/2) still
// fits into a network of n nodes. The paper's network-size sweeps note that
// "T increases with network size in our model".
func TForSize(n int) int {
	T := 2
	for (1 << uint(T/2+1)) <= n {
		T += 2
	}
	return T
}

// CommuterStatic builds the static-load commuter scenario: the total demand
// is fixed to 2^(T/2) requests per round; in phase i they originate from
// 2^i access points around the center (2^(T/2−i) requests each), fanning
// out to single requests from 2^(T/2) points and back in to one point, the
// network center. It is the scenario.Fan primitive with static load.
func CommuterStatic(m graph.Metric, cfg CommuterConfig, rounds int) (*Sequence, error) {
	return commuter(m, cfg, rounds, false)
}

// CommuterDynamic builds the dynamic-load commuter scenario: in phase i a
// single request originates from each of 2^i access points around the
// center, so the total demand itself swings between 1 and 2^(T/2) requests
// per round. It is the scenario.Fan primitive with dynamic load.
func CommuterDynamic(m graph.Metric, cfg CommuterConfig, rounds int) (*Sequence, error) {
	return commuter(m, cfg, rounds, true)
}

func commuter(m graph.Metric, cfg CommuterConfig, rounds int, dynamic bool) (*Sequence, error) {
	if err := cfg.validate(m.N()); err != nil {
		return nil, err
	}
	fan := scenario.Fan(centerOrdering(m), cfg.T, cfg.Lambda, dynamic, rounds)
	variant := "static"
	if dynamic {
		variant = "dynamic"
	}
	name := fmt.Sprintf("commuter-%s(T=%d,λ=%d)", variant, cfg.T, cfg.Lambda)
	return NewSequence(name, scenario.Build(rounds, fan)), nil
}

// TimeZonesConfig parameterises the time-zones scenario.
type TimeZonesConfig struct {
	// T is the number of time periods a day is divided into.
	T int
	// P is the hotspot share: the fraction of each round's requests that
	// originate from the period's hotspot node (the paper uses p = 50%).
	P float64
	// Lambda is the sojourn time: the number of rounds a period lasts (the
	// parameter the λ-sweeps of Figures 10 and 17 vary).
	Lambda int
	// RequestsPerRound is the demand volume. Zero selects a default
	// comparable to the commuter scenario's 2^(T/2).
	RequestsPerRound int
}

func (c TimeZonesConfig) validate() error {
	if c.T < 1 {
		return fmt.Errorf("workload: time zones needs T >= 1, got %d", c.T)
	}
	if c.P < 0 || c.P > 1 {
		return fmt.Errorf("workload: hotspot share p=%v outside [0,1]", c.P)
	}
	if c.Lambda < 1 {
		return fmt.Errorf("workload: time zones needs λ >= 1, got %d", c.Lambda)
	}
	if c.RequestsPerRound < 0 {
		return fmt.Errorf("workload: negative requests per round %d", c.RequestsPerRound)
	}
	return nil
}

// TimeZones builds the time-zones scenario: a day is divided into T
// periods; period i has a fixed hotspot node (drawn uniformly once — "the
// same each day") from which p% of the round's requests originate, while
// the remaining background requests come from access points drawn
// uniformly at random each round.
func TimeZones(m graph.Metric, cfg TimeZonesConfig, rounds int, rng *rand.Rand) (*Sequence, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := m.N()
	if n == 0 {
		return nil, fmt.Errorf("workload: empty network")
	}
	reqs := cfg.RequestsPerRound
	if reqs == 0 {
		reqs = 1 << uint(TForSize(n)/2)
	}
	hotspots := make([]int, cfg.T)
	for i := range hotspots {
		hotspots[i] = rng.Intn(n)
	}
	hotCount := int(math.Round(cfg.P * float64(reqs)))
	// The period hotspots are a rotating hotspot, the background a uniform
	// noise floor; their superposition is the paper's scenario. The noise
	// draws consume the RNG in the same order as the original round loop
	// (hotspots first, then reqs−hotCount draws per round), keeping the
	// sequence bit-identical across the refactoring.
	hot := scenario.RotatingHotspot(hotspots, hotCount, cfg.Lambda, rounds)
	background := scenario.Noise(n, reqs-hotCount, rounds, rng)
	name := fmt.Sprintf("time-zones(T=%d,p=%g,λ=%d,R=%d)", cfg.T, cfg.P, cfg.Lambda, reqs)
	return NewSequence(name, scenario.Build(rounds, hot, background)), nil
}

// Uniform builds a memoryless baseline: every round, each of the given
// number of requests originates from a node drawn uniformly at random.
// This is the "arbitrary request sets σt, completely independent of σt−1"
// extreme discussed in Section II-D.
func Uniform(n, requestsPerRound, rounds int, rng *rand.Rand) (*Sequence, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: uniform needs a non-empty network")
	}
	if requestsPerRound < 0 {
		return nil, fmt.Errorf("workload: negative requests per round %d", requestsPerRound)
	}
	demands := make([]cost.Demand, rounds)
	for t := range demands {
		counts := make(map[int]int, requestsPerRound)
		for r := 0; r < requestsPerRound; r++ {
			counts[rng.Intn(n)]++
		}
		demands[t] = cost.DemandFromCounts(counts)
	}
	return NewSequence(fmt.Sprintf("uniform(R=%d)", requestsPerRound), demands), nil
}

// OnOff builds the on/off mobility model of Section II-D: each of `users`
// terminals appears at a uniformly random access point, stays there for a
// sojourn time drawn uniformly from [minStay, maxStay] rounds, then jumps
// to another random access point.
func OnOff(n, users, minStay, maxStay, rounds int, rng *rand.Rand) (*Sequence, error) {
	if n <= 0 {
		return nil, fmt.Errorf("workload: on/off needs a non-empty network")
	}
	if users < 0 {
		return nil, fmt.Errorf("workload: negative user count %d", users)
	}
	if minStay < 1 || maxStay < minStay {
		return nil, fmt.Errorf("workload: invalid sojourn range [%d,%d]", minStay, maxStay)
	}
	pos := make([]int, users)
	until := make([]int, users)
	stay := func() int { return minStay + rng.Intn(maxStay-minStay+1) }
	for u := range pos {
		pos[u] = rng.Intn(n)
		until[u] = stay()
	}
	demands := make([]cost.Demand, rounds)
	for t := range demands {
		counts := make(map[int]int, users)
		for u := range pos {
			if until[u] == 0 {
				pos[u] = rng.Intn(n)
				until[u] = stay()
			}
			counts[pos[u]]++
			until[u]--
		}
		demands[t] = cost.DemandFromCounts(counts)
	}
	name := fmt.Sprintf("on-off(users=%d,stay=[%d,%d])", users, minStay, maxStay)
	return NewSequence(name, demands), nil
}
