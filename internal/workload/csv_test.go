package workload

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cost"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := NewSequence("rt", []cost.Demand{
		cost.DemandFromList([]int{1, 1, 4}),
		{},
		cost.DemandFromList([]int{0}),
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "rt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("horizon = %d, want 3", got.Len())
	}
	for tt := 0; tt < 3; tt++ {
		want, have := orig.Demand(tt), got.Demand(tt)
		if want.Total() != have.Total() || want.Distinct() != have.Distinct() {
			t.Fatalf("round %d: %v != %v", tt, have, want)
		}
		for _, p := range want.Pairs() {
			if have.Count(p.Node) != p.Count {
				t.Fatalf("round %d node %d: %d != %d", tt, p.Node, have.Count(p.Node), p.Count)
			}
		}
	}
}

func TestCSVRoundTripGenerated(t *testing.T) {
	m := lineMatrix(20)
	orig, err := CommuterDynamic(m, CommuterConfig{T: 6, Lambda: 2}, 30)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, orig.Name())
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalRequests() != orig.TotalRequests() {
		t.Fatalf("totals differ: %d vs %d", got.TotalRequests(), orig.TotalRequests())
	}
}

func TestReadCSVWithoutHeader(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("0,3,2\n1,4,1\n"), "raw")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Demand(0).Count(3) != 2 || s.Demand(1).Count(4) != 1 {
		t.Fatalf("parsed wrong: %v / %v", s.Demand(0), s.Demand(1))
	}
}

func TestReadCSVAccumulatesDuplicates(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("round,node,count\n0,3,2\n0,3,5\n"), "dup")
	if err != nil {
		t.Fatal(err)
	}
	if s.Demand(0).Count(3) != 7 {
		t.Fatalf("count = %d, want 7", s.Demand(0).Count(3))
	}
}

func TestReadCSVSkipsNonPositiveCounts(t *testing.T) {
	s, err := ReadCSV(strings.NewReader("0,3,0\n2,4,1\n"), "sparse")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("horizon = %d, want 3 (largest round + 1)", s.Len())
	}
	if !s.Demand(0).Empty() || !s.Demand(1).Empty() {
		t.Fatal("zero-count rows must not create demand")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"0,3\n",    // wrong arity
		"x,3,1\n",  // bad round
		"0,y,1\n",  // bad node
		"0,3,z\n",  // bad count
		"-1,3,1\n", // negative round
		"0,-3,1\n", // negative node
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), "bad"); err == nil {
			t.Errorf("case %d: %q accepted", i, in)
		}
	}
}

func TestReadCSVEmpty(t *testing.T) {
	s, err := ReadCSV(strings.NewReader(""), "empty")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("horizon = %d, want 0", s.Len())
	}
}

func TestCSVLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig, err := Uniform(50, 20, 100, rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf, "big")
	if err != nil {
		t.Fatal(err)
	}
	for tt := 0; tt < orig.Len(); tt++ {
		if got.Demand(tt).Total() != orig.Demand(tt).Total() {
			t.Fatalf("round %d differs", tt)
		}
	}
}
