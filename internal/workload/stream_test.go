package workload

import (
	"testing"

	"repro/internal/cost"
)

// streamTestSequence is three rounds: {0×2, 3×1}, an empty round, {1×1}.
func streamTestSequence(t *testing.T) *Sequence {
	t.Helper()
	return NewSequence("stream-test", []cost.Demand{
		cost.DemandFromPairs(cost.NodeCount{Node: 0, Count: 2}, cost.NodeCount{Node: 3, Count: 1}),
		{},
		cost.DemandFromPairs(cost.NodeCount{Node: 1, Count: 1}),
	})
}

func TestStreamFlattensAndCycles(t *testing.T) {
	s, err := NewStream(streamTestSequence(t))
	if err != nil {
		t.Fatal(err)
	}
	// One cycle is 0,0,3 (round 0), nothing (round 1, empty), 1 (round 2).
	cycle := []int{0, 0, 3, 1}
	for rep := 0; rep < 3; rep++ {
		for i, want := range cycle {
			if got := s.Next(); got != want {
				t.Fatalf("cycle %d arrival %d: node %d, want %d", rep, i, got, want)
			}
		}
	}
	if s.Emitted() != int64(3*len(cycle)) {
		t.Fatalf("emitted %d", s.Emitted())
	}
}

func TestStreamIsReproducible(t *testing.T) {
	a, err := NewStream(streamTestSequence(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(streamTestSequence(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("arrival %d diverged: %d vs %d", i, x, y)
		}
	}
}

func TestStreamRejectsEmptySequence(t *testing.T) {
	if _, err := NewStream(NewSequence("void", nil)); err == nil {
		t.Fatal("stream over an empty sequence accepted")
	}
	if _, err := NewStream(NewSequence("idle", []cost.Demand{{}, {}})); err == nil {
		t.Fatal("stream over an all-idle sequence accepted")
	}
}
