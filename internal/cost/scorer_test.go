package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomInstance builds a random connected graph, servers and demand.
func randomInstance(rng *rand.Rand) (*Evaluator, []int, Demand) {
	n := 4 + rng.Intn(12)
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 0.5+rng.Float64()*5, 1)
	}
	for u := 0; u < n; u++ {
		for v := u + 2; v < n; v++ {
			if rng.Float64() < 0.2 {
				g.MustAddEdge(u, v, 0.5+rng.Float64()*5, 1)
			}
		}
	}
	for v := 0; v < n; v++ {
		g.SetStrength(v, 0.5+rng.Float64()*3)
	}
	e := NewEvaluator(g, g.AllPairs(), Linear{}, AssignMinCost)
	k := 1 + rng.Intn(3)
	perm := rng.Perm(n)
	servers := append([]int(nil), perm[:k]...)
	list := make([]int, 1+rng.Intn(25))
	for i := range list {
		list[i] = rng.Intn(n)
	}
	return e, servers, DemandFromList(list)
}

func sorted(s []int) []int {
	out := append([]int(nil), s...)
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// Property: every scorer answer equals a full evaluation of the modified
// placement (the scorer exists purely as an optimisation).
func TestScorerMatchesFullEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const eps = 1e-9
	for trial := 0; trial < 60; trial++ {
		e, servers, d := randomInstance(rng)
		sc, ok := NewScorer(e, servers, d)
		if !ok {
			t.Fatal("scorer must apply to linear/min-cost")
		}
		if got, want := sc.Base(), e.Access(servers, d).Total(); math.Abs(got-want) > eps {
			t.Fatalf("trial %d: Base %v != Access %v", trial, got, want)
		}
		n := e.Graph().N()
		inServers := map[int]bool{}
		for _, s := range servers {
			inServers[s] = true
		}
		// Add.
		for v := 0; v < n; v++ {
			if inServers[v] {
				continue
			}
			want := e.Access(append(sorted(servers), v), d).Total()
			if got := sc.Add(v); math.Abs(got-want) > eps {
				t.Fatalf("trial %d: Add(%d) %v != %v", trial, v, got, want)
			}
		}
		// Remove (only when another server remains).
		if len(servers) > 1 {
			for i := range servers {
				rest := make([]int, 0, len(servers)-1)
				for j, s := range servers {
					if j != i {
						rest = append(rest, s)
					}
				}
				want := e.Access(rest, d).Total()
				if got := sc.Remove(i); math.Abs(got-want) > eps {
					t.Fatalf("trial %d: Remove(%d) %v != %v", trial, i, got, want)
				}
			}
		}
		// Move.
		for i := range servers {
			for v := 0; v < n; v++ {
				if inServers[v] {
					continue
				}
				moved := make([]int, 0, len(servers))
				for j, s := range servers {
					if j != i {
						moved = append(moved, s)
					}
				}
				moved = append(moved, v)
				want := e.Access(moved, d).Total()
				if got := sc.Move(i, v); math.Abs(got-want) > eps {
					t.Fatalf("trial %d: Move(%d,%d) %v != %v", trial, i, v, got, want)
				}
			}
		}
	}
}

func TestScorerRemoveLastServer(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1, 1)
	e := NewEvaluator(g, g.AllPairs(), Linear{}, AssignMinCost)
	sc, ok := NewScorer(e, []int{0}, DemandFromList([]int{1}))
	if !ok {
		t.Fatal("scorer must build")
	}
	if !math.IsInf(sc.Remove(0), 1) {
		t.Fatal("removing the only server with demand must cost infinity")
	}
	scEmpty, _ := NewScorer(e, []int{0}, Demand{})
	if scEmpty.Remove(0) != 0 {
		t.Fatal("removing the only server without demand must cost zero")
	}
}

func TestNewScorerRejectsNonSeparable(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1, 1)
	e := NewEvaluator(g, g.AllPairs(), Quadratic{}, AssignMinCost)
	if _, ok := NewScorer(e, []int{0}, Demand{}); ok {
		t.Fatal("scorer accepted quadratic load")
	}
	eNear := NewEvaluator(g, g.AllPairs(), Linear{}, AssignNearest)
	if _, ok := NewScorer(eNear, []int{0}, Demand{}); ok {
		t.Fatal("scorer accepted nearest routing")
	}
	if _, ok := NewScorer(e, nil, Demand{}); ok {
		t.Fatal("scorer accepted empty placement")
	}
}

func TestNewScorerApproxPanicsOnEmpty(t *testing.T) {
	g := graph.New(1)
	e := NewEvaluator(g, g.AllPairs(), Quadratic{}, AssignMinCost)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty placement")
		}
	}()
	NewScorerApprox(e, nil, Demand{}, 0)
}

func TestNewScorerApproxCoincidesWithExactForLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		e, servers, d := randomInstance(rng)
		exact, _ := NewScorer(e, servers, d)
		approx := NewScorerApprox(e, servers, d, 123.0) // hint irrelevant for linear
		if math.Abs(exact.Base()-approx.Base()) > 1e-9 {
			t.Fatalf("trial %d: approx base %v != exact %v", trial, approx.Base(), exact.Base())
		}
		for v := 0; v < e.Graph().N(); v++ {
			if math.Abs(exact.Add(v)-approx.Add(v)) > 1e-9 {
				t.Fatalf("trial %d: Add(%d) differs", trial, v)
			}
		}
	}
}

func TestNewScorerApproxOrdersQuadraticCandidates(t *testing.T) {
	// With all demand at node 4 and a server at 0, the approximation must
	// still rank node 4 as the best addition.
	g := graph.New(5)
	for v := 0; v+1 < 5; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	e := NewEvaluator(g, g.AllPairs(), Quadratic{}, AssignMinCost)
	d := DemandFromList([]int{4, 4, 4})
	sc := NewScorerApprox(e, []int{0}, d, 1.5)
	best, bestScore := -1, math.Inf(1)
	for v := 1; v < 5; v++ {
		if s := sc.Add(v); s < bestScore {
			best, bestScore = v, s
		}
	}
	if best != 4 {
		t.Fatalf("approx scorer ranked %d best, want 4", best)
	}
}
