package cost

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDemandFromList(t *testing.T) {
	d := DemandFromList([]int{3, 1, 3, 3, 1})
	if d.Total() != 5 {
		t.Fatalf("Total = %d, want 5", d.Total())
	}
	if d.Count(3) != 3 || d.Count(1) != 2 || d.Count(7) != 0 {
		t.Fatalf("counts wrong: %v", d)
	}
	if d.Distinct() != 2 {
		t.Fatalf("Distinct = %d, want 2", d.Distinct())
	}
	// Pairs sorted by node.
	pairs := d.Pairs()
	if pairs[0].Node != 1 || pairs[1].Node != 3 {
		t.Fatalf("pairs not sorted: %v", pairs)
	}
}

func TestDemandEmpty(t *testing.T) {
	var d Demand
	if !d.Empty() || d.Total() != 0 || d.Distinct() != 0 {
		t.Fatal("zero demand not empty")
	}
	if d.MaxNode() != -1 {
		t.Fatalf("MaxNode = %d, want -1", d.MaxNode())
	}
}

func TestDemandFromCountsDropsNonPositive(t *testing.T) {
	d := DemandFromCounts(map[int]int{1: 2, 2: 0, 3: -5})
	if d.Total() != 2 || d.Distinct() != 1 {
		t.Fatalf("got %v", d)
	}
}

func TestDemandFromPairsMerges(t *testing.T) {
	d := DemandFromPairs(NodeCount{1, 2}, NodeCount{1, 3}, NodeCount{4, 1})
	if d.Count(1) != 5 || d.Count(4) != 1 {
		t.Fatalf("got %v", d)
	}
}

func TestAggregate(t *testing.T) {
	a := DemandFromList([]int{1, 2})
	b := DemandFromList([]int{2, 3})
	agg := Aggregate(a, b)
	if agg.Total() != 4 || agg.Count(2) != 2 {
		t.Fatalf("got %v", agg)
	}
	if Aggregate().Total() != 0 {
		t.Fatal("empty aggregate not empty")
	}
}

func TestDemandString(t *testing.T) {
	d := DemandFromList([]int{3, 7, 3})
	if got, want := d.String(), "{3×2 7×1}"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestDemandMaxNode(t *testing.T) {
	d := DemandFromList([]int{9, 2, 5})
	if d.MaxNode() != 9 {
		t.Fatalf("MaxNode = %d, want 9", d.MaxNode())
	}
}

// Property: Total is conserved by construction and aggregation.
func TestDemandConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(200)
		list := make([]int, n)
		for i := range list {
			list[i] = local.Intn(20)
		}
		d := DemandFromList(list)
		if d.Total() != n {
			return false
		}
		// Splitting and re-aggregating preserves counts.
		mid := n / 2
		a := DemandFromList(list[:mid])
		b := DemandFromList(list[mid:])
		agg := Aggregate(a, b)
		if agg.Total() != n || agg.Distinct() != d.Distinct() {
			return false
		}
		for _, p := range d.Pairs() {
			if agg.Count(p.Node) != p.Count {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			vs[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
