package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// This file pins the optimised access-cost and scorer kernels to naive
// reference implementations (the straightforward per-element code the flat
// kernels replaced). Equality is exact — bit-identical floats — because
// the optimisations only restructure data access, never the arithmetic,
// and the experiment parity guarantee depends on that.

// naiveAccess is the reference Costacc evaluation: per-element Dist calls,
// fresh allocations, no row slices.
func naiveAccess(e *Evaluator, servers []int, d Demand) AccessCost {
	if d.Empty() {
		return AccessCost{}
	}
	if len(servers) == 0 {
		return InfiniteAccess()
	}
	if e.Separable() {
		off := make([]float64, len(servers))
		for i, s := range servers {
			off[i] = e.effMarginal(s)
		}
		eta := make([]float64, len(servers))
		var ac AccessCost
		for _, p := range d.Pairs() {
			best, bestCost := 0, math.MaxFloat64
			for i, s := range servers {
				if c := e.m.Dist(p.Node, s) + off[i]; c < bestCost {
					best, bestCost = i, c
				}
			}
			ac.Latency += float64(p.Count) * e.m.Dist(p.Node, servers[best])
			eta[best] += float64(p.Count)
		}
		for i, s := range servers {
			ac.Load += e.load.Value(e.g.Strength(s), eta[i])
		}
		return ac
	}
	eta := make([]float64, len(servers))
	var latency float64
	for _, p := range d.Pairs() {
		for u := 0; u < p.Count; u++ {
			best, bestCost := 0, math.MaxFloat64
			for i, s := range servers {
				c := e.m.Dist(p.Node, s) + e.load.Marginal(e.g.Strength(s), eta[i])
				if c < bestCost {
					best, bestCost = i, c
				}
			}
			latency += e.m.Dist(p.Node, servers[best])
			eta[best]++
		}
	}
	var load float64
	for i, s := range servers {
		load += e.load.Value(e.g.Strength(s), eta[i])
	}
	return AccessCost{Latency: latency, Load: load}
}

// naiveScorer is the reference candidate scorer: built per use, offsets
// through a closure, no arg2 bookkeeping.
type naiveScorer struct {
	e            *Evaluator
	servers      []int
	pairs        []NodeCount
	offsetAt     func(server int) float64
	best1, best2 []float64
	arg1         []int
	baseTotal    float64
}

func newNaiveScorer(e *Evaluator, servers []int, d Demand, offsetAt func(int) float64) *naiveScorer {
	s := &naiveScorer{
		e:        e,
		servers:  append([]int(nil), servers...),
		pairs:    d.Pairs(),
		offsetAt: offsetAt,
		best1:    make([]float64, d.Distinct()),
		best2:    make([]float64, d.Distinct()),
		arg1:     make([]int, d.Distinct()),
	}
	off := make([]float64, len(servers))
	for i, sv := range servers {
		off[i] = offsetAt(sv)
	}
	for pi, p := range s.pairs {
		b1, b2, a1 := math.MaxFloat64, math.MaxFloat64, -1
		for i, sv := range servers {
			c := e.m.Dist(p.Node, sv) + off[i]
			switch {
			case c < b1:
				b1, b2, a1 = c, b1, i
			case c < b2:
				b2 = c
			}
		}
		s.best1[pi], s.best2[pi], s.arg1[pi] = b1, b2, a1
		s.baseTotal += float64(p.Count) * b1
	}
	return s
}

func (s *naiveScorer) eff(node, server int) float64 {
	return s.e.m.Dist(node, server) + s.offsetAt(server)
}

func (s *naiveScorer) add(v int) float64 {
	total := 0.0
	for pi, p := range s.pairs {
		c := s.eff(p.Node, v)
		if b := s.best1[pi]; b < c {
			c = b
		}
		total += float64(p.Count) * c
	}
	return total
}

func (s *naiveScorer) remove(i int) float64 {
	if len(s.servers) == 1 {
		if len(s.pairs) == 0 {
			return 0
		}
		return math.Inf(1)
	}
	total := 0.0
	for pi, p := range s.pairs {
		c := s.best1[pi]
		if s.arg1[pi] == i {
			c = s.best2[pi]
		}
		total += float64(p.Count) * c
	}
	return total
}

func (s *naiveScorer) move(i, v int) float64 {
	total := 0.0
	for pi, p := range s.pairs {
		c := s.best1[pi]
		if s.arg1[pi] == i {
			c = s.best2[pi]
		}
		if cv := s.eff(p.Node, v); cv < c {
			c = cv
		}
		total += float64(p.Count) * c
	}
	return total
}

// randomInstance builds a random connected substrate with random strengths,
// a random placement, and a random demand.
func randomParityInstance(rng *rand.Rand) (*graph.Graph, *graph.Matrix, []int, Demand) {
	n := 5 + rng.Intn(25)
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, 0.25+4*rng.Float64(), 1)
	}
	for extra := rng.Intn(2 * n); extra > 0; extra-- {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v, 0.25+4*rng.Float64(), 1)
		}
	}
	for v := 0; v < n; v++ {
		g.SetStrength(v, 0.25+3*rng.Float64())
	}
	k := 1 + rng.Intn(n/2+1)
	perm := rng.Perm(n)
	servers := append([]int(nil), perm[:k]...)
	list := make([]int, 1+rng.Intn(40))
	for i := range list {
		list[i] = rng.Intn(n)
	}
	return g, g.AllPairs(), servers, DemandFromList(list)
}

func TestAccessMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	loads := []LoadFunc{Linear{}, Quadratic{}, Power{P: 1}, Power{P: 2.5}}
	policies := []Policy{AssignMinCost, AssignNearest}
	for trial := 0; trial < 60; trial++ {
		g, m, servers, d := randomParityInstance(rng)
		load := loads[trial%len(loads)]
		policy := policies[trial%len(policies)]
		e := NewEvaluator(g, m, load, policy)
		got := e.Access(servers, d)
		want := naiveAccess(e, servers, d)
		if got != want {
			t.Fatalf("trial %d (%s/%s): Access = %+v, naive = %+v",
				trial, load.Name(), policy, got, want)
		}
	}
}

func TestScorerMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 40; trial++ {
		g, m, servers, d := randomParityInstance(rng)
		e := NewEvaluator(g, m, Linear{}, AssignMinCost)
		sc, ok := NewScorer(e, servers, d)
		if !ok {
			t.Fatal("exact scorer unavailable for linear load")
		}
		ref := newNaiveScorer(e, servers, d, func(v int) float64 {
			return e.load.Marginal(e.g.Strength(v), 0)
		})
		comparePairScorers(t, trial, sc, ref, g.N())
		sc.Release()

		// The linearised variant must agree with its reference too.
		eq := NewEvaluator(g, m, Quadratic{}, AssignMinCost)
		hint := 1 + 5*rng.Float64()
		sa := NewScorerApprox(eq, servers, d, hint)
		refA := newNaiveScorer(eq, servers, d, func(v int) float64 {
			return eq.load.Marginal(eq.g.Strength(v), hint)
		})
		comparePairScorers(t, trial, sa, refA, g.N())
		sa.Release()
	}
}

func comparePairScorers(t *testing.T, trial int, sc *Scorer, ref *naiveScorer, n int) {
	t.Helper()
	if sc.Base() != ref.baseTotal {
		t.Fatalf("trial %d: Base = %v, naive = %v", trial, sc.Base(), ref.baseTotal)
	}
	for v := 0; v < n; v++ {
		if got, want := sc.Add(v), ref.add(v); got != want {
			t.Fatalf("trial %d: Add(%d) = %v, naive = %v", trial, v, got, want)
		}
	}
	for i := range ref.servers {
		if got, want := sc.Remove(i), ref.remove(i); got != want {
			t.Fatalf("trial %d: Remove(%d) = %v, naive = %v", trial, i, got, want)
		}
		for v := 0; v < n; v += 3 {
			if got, want := sc.Move(i, v), ref.move(i, v); got != want {
				t.Fatalf("trial %d: Move(%d,%d) = %v, naive = %v", trial, i, v, got, want)
			}
		}
	}
}

// TestScorerIncrementalCommits drives a random sequence of ApplyAdd /
// ApplyMove / ApplyRemove commits and checks after each one that the
// incrementally maintained scorer is indistinguishable from a scorer
// built from scratch on the same server list.
func TestScorerIncrementalCommits(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	for trial := 0; trial < 25; trial++ {
		g, m, servers, d := randomParityInstance(rng)
		e := NewEvaluator(g, m, Linear{}, AssignMinCost)
		n := g.N()
		sc, ok := NewScorer(e, servers, d)
		if !ok {
			t.Fatal("exact scorer unavailable")
		}
		occupied := func(v int) bool {
			for _, s := range sc.Servers() {
				if s == v {
					return true
				}
			}
			return false
		}
		for step := 0; step < 30; step++ {
			switch op := rng.Intn(3); {
			case op == 0 && len(sc.Servers()) < n:
				v := rng.Intn(n)
				for occupied(v) {
					v = rng.Intn(n)
				}
				sc.ApplyAdd(v)
			case op == 1 && len(sc.Servers()) > 1:
				sc.ApplyRemove(rng.Intn(len(sc.Servers())))
			default:
				if len(sc.Servers()) == n {
					continue
				}
				v := rng.Intn(n)
				for occupied(v) {
					v = rng.Intn(n)
				}
				sc.ApplyMove(rng.Intn(len(sc.Servers())), v)
			}
			fresh, ok := NewScorer(e, sc.Servers(), d)
			if !ok {
				t.Fatal("fresh scorer unavailable")
			}
			if sc.Base() != fresh.Base() {
				t.Fatalf("trial %d step %d: Base = %v, fresh = %v",
					trial, step, sc.Base(), fresh.Base())
			}
			for v := 0; v < n; v += 2 {
				if sc.Add(v) != fresh.Add(v) {
					t.Fatalf("trial %d step %d: Add(%d) = %v, fresh = %v",
						trial, step, v, sc.Add(v), fresh.Add(v))
				}
			}
			for i := range sc.Servers() {
				if sc.Remove(i) != fresh.Remove(i) {
					t.Fatalf("trial %d step %d: Remove(%d) = %v, fresh = %v",
						trial, step, i, sc.Remove(i), fresh.Remove(i))
				}
				v := rng.Intn(n)
				if sc.Move(i, v) != fresh.Move(i, v) {
					t.Fatalf("trial %d step %d: Move(%d,%d) = %v, fresh = %v",
						trial, step, i, v, sc.Move(i, v), fresh.Move(i, v))
				}
			}
			fresh.Release()
		}
		sc.Release()
	}
}

// Allocation regressions: the hot kernels must be allocation-free in
// steady state (after the internal pools are warm). Race instrumentation
// makes sync.Pool drop entries at random, so the pin only holds without
// -race.
func TestHotPathAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops entries under the race detector")
	}
	rng := rand.New(rand.NewSource(17))
	g, m, servers, d := randomParityInstance(rng)
	e := NewEvaluator(g, m, Linear{}, AssignMinCost)
	eg := NewEvaluator(g, m, Quadratic{}, AssignMinCost)

	e.Access(servers, d) // warm the session pool
	if avg := testing.AllocsPerRun(200, func() { e.Access(servers, d) }); avg != 0 {
		t.Errorf("Access (separable): %v allocs/op, want 0", avg)
	}
	eg.Access(servers, d)
	if avg := testing.AllocsPerRun(200, func() { eg.Access(servers, d) }); avg != 0 {
		t.Errorf("Access (greedy): %v allocs/op, want 0", avg)
	}

	sc, ok := NewScorer(e, servers, d)
	if !ok {
		t.Fatal("no scorer")
	}
	if avg := testing.AllocsPerRun(200, func() { sc.Move(0, 1) }); avg != 0 {
		t.Errorf("Scorer.Move: %v allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() { sc.Add(2) }); avg != 0 {
		t.Errorf("Scorer.Add: %v allocs/op, want 0", avg)
	}
	free := 0
	for v := 0; v < g.N(); v++ {
		taken := false
		for _, s := range sc.Servers() {
			if s == v {
				taken = true
			}
		}
		if !taken {
			free = v
			break
		}
	}
	if avg := testing.AllocsPerRun(200, func() { sc.ApplyMove(0, free) }); avg != 0 {
		t.Errorf("Scorer.ApplyMove: %v allocs/op, want 0", avg)
	}
	sc.Release()

	// Steady-state construction through the pool.
	for i := 0; i < 3; i++ {
		s2, _ := NewScorer(e, servers, d)
		s2.Release()
	}
	if avg := testing.AllocsPerRun(200, func() {
		s2, _ := NewScorer(e, servers, d)
		s2.Release()
	}); avg != 0 {
		t.Errorf("NewScorer+Release: %v allocs/op, want 0", avg)
	}
}
