// Package cost implements the cost model of Section II of the paper: the
// access cost Costacc(t) = Σ delay(r) + Σ load(v,t) paid by requests, the
// running costs Ra/Ri of active and inactive servers, the creation cost c
// and the migration cost β, together with the routing of requests to the
// servers of minimal access cost.
package cost

import (
	"fmt"
	"math"
)

// Params bundles the scalar cost constants of Section II-C.
type Params struct {
	// Beta is the migration cost β charged for moving one server between
	// substrate nodes (the origin node becomes empty).
	Beta float64
	// Create is the creation cost c for starting up a server that is not
	// in use (installation, template configuration, addresses, ...).
	Create float64
	// RunActive is Ra, the per-round cost of one active server.
	RunActive float64
	// RunInactive is Ri, the per-round cost of one inactive server (stored
	// application software plus maintenance).
	RunInactive float64
}

// DefaultParams are the paper's simulation defaults (Section V-A): β = 40,
// c = 400, and the Rocketfuel experiment's Ra = 2.5, Ri = 0.5.
func DefaultParams() Params {
	return Params{Beta: 40, Create: 400, RunActive: 2.5, RunInactive: 0.5}
}

// InvertedParams are the "β > c" variant used in several experiments
// (β = 400, c = 40), in which migration is never beneficial.
func InvertedParams() Params {
	p := DefaultParams()
	p.Beta, p.Create = 400, 40
	return p
}

// Validate reports whether the parameters are usable: all costs must be
// non-negative and finite, and creation must cost something (a zero
// creation cost would make the allocation problem degenerate — every
// algorithm would simply create a server at every access point).
func (p Params) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"Beta", p.Beta},
		{"Create", p.Create},
		{"RunActive", p.RunActive},
		{"RunInactive", p.RunInactive},
	} {
		if f.v < 0 || math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("cost: invalid %s = %v", f.name, f.v)
		}
	}
	if p.Create == 0 {
		return fmt.Errorf("cost: creation cost must be positive")
	}
	return nil
}

// MigrationBeneficial reports whether β < c, the "more interesting case" the
// paper's algorithm descriptions focus on. When false, migration is never
// used and the problem reduces to when and where to create and delete
// servers.
func (p Params) MigrationBeneficial() bool { return p.Beta < p.Create }

// PlaceCost is the cheapest way to fill one new server slot: by migrating
// an available server (β) when migration is beneficial, else by creating a
// fresh one (c).
func (p Params) PlaceCost() float64 {
	return math.Min(p.Beta, p.Create)
}

// Run returns the running cost of one round for a configuration with the
// given numbers of active and inactive servers.
func (p Params) Run(active, inactive int) float64 {
	return float64(active)*p.RunActive + float64(inactive)*p.RunInactive
}

// Transition returns the cheapest cost of turning a configuration that
// occupies |vacated| server slots no longer needed into one that needs
// |created| new slots, following Examples 1–3 of Section II-C: each new
// slot is filled either by migrating one of the vacated servers (β) or by
// creating a fresh server (c); removing servers and flipping a server
// between active and inactive in place are free.
func (p Params) Transition(created, vacated int) float64 {
	if created <= 0 {
		return 0
	}
	migrable := vacated
	if migrable > created {
		migrable = created
	}
	if p.Beta >= p.Create {
		migrable = 0 // migration never pays
	}
	return float64(migrable)*p.Beta + float64(created-migrable)*p.Create
}

func (p Params) String() string {
	return fmt.Sprintf("cost{β=%g c=%g Ra=%g Ri=%g}", p.Beta, p.Create, p.RunActive, p.RunInactive)
}
