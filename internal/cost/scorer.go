package cost

import (
	"math"
	"sync"
)

// Scorer accelerates the single-change candidate searches performed by the
// best-response algorithms (ONBR, ONTH, and their offline variants): given
// a fixed demand and a fixed server placement, it answers "what would the
// access cost be if one server were added, removed, or moved?" in
// O(distinct access points) per candidate instead of a full re-evaluation.
//
// Scores are Costacc totals (latency + load folded into per-request
// effective distances). NewScorer builds an exact scorer when the
// evaluator's closed form applies; NewScorerApprox builds a linearised
// approximation for arbitrary load functions, suitable for *searching*
// candidates whose final cost the caller re-evaluates exactly.
//
// Scorers are pooled: Release returns one to the pool, making steady-state
// construction allocation-free. The Apply* operations commit an accepted
// change in place, so greedy loops (OFFSTAT's placement curve, epoch
// sweeps that accept one change at a time) maintain the per-access-point
// best1/best2 structure incrementally instead of rebuilding it.
//
// A scorer is safe for concurrent *reads* (Add/Remove/Move/Base); the
// Apply* commits and Release are not.
type Scorer struct {
	e       *Evaluator
	servers []int
	pairs   []NodeCount
	// offNode[v] is the routing offset a server at node v would have,
	// precomputed for every substrate node (replaces the per-candidate
	// offset closure of earlier versions).
	offNode []float64
	// Per demand node: the two smallest effective distances over the
	// current servers and the indexes (into servers) achieving them.
	best1, best2 []float64
	arg1, arg2   []int
	baseTotal    float64
}

// scorerPool recycles scorers (and their slices) across epochs.
var scorerPool = sync.Pool{New: func() any { return new(Scorer) }}

// NewScorer builds an exact scorer for the placement, or reports false when
// the closed form does not apply (the caller may then fall back to
// NewScorerApprox or to full Access evaluations). The closed form folds
// load into the per-request effective distance, which is exact only for
// min-cost routing with a separable load function whose idle value f(ω, 0)
// is zero (true for Linear and Power(1)).
func NewScorer(e *Evaluator, servers []int, d Demand) (*Scorer, bool) {
	if e.policy != AssignMinCost || !e.load.Separable() || len(servers) == 0 {
		return nil, false
	}
	return newScorer(e, servers, d, 0), true
}

// NewScorerApprox builds a scorer that linearises the load function around
// the hinted per-server request volume: each server's routing offset is
// Marginal(ω, etaHint). For separable loads with etaHint irrelevant this
// coincides with NewScorer; for steeper loads (e.g. Quadratic) it is a
// search heuristic. It panics on an empty placement.
func NewScorerApprox(e *Evaluator, servers []int, d Demand, etaHint float64) *Scorer {
	if len(servers) == 0 {
		panic("cost: scorer needs at least one server")
	}
	return newScorer(e, servers, d, etaHint)
}

func newScorer(e *Evaluator, servers []int, d Demand, etaHint float64) *Scorer {
	s := scorerPool.Get().(*Scorer)
	s.e = e
	s.servers = append(growI(s.servers, 0), servers...)
	s.pairs = d.Pairs()
	n := e.g.N()
	s.offNode = growF(s.offNode, n)
	for v := 0; v < n; v++ {
		s.offNode[v] = e.load.Marginal(e.g.Strength(v), etaHint)
	}
	np := d.Distinct()
	s.best1 = growF(s.best1, np)
	s.best2 = growF(s.best2, np)
	s.arg1 = growI(s.arg1, np)
	s.arg2 = growI(s.arg2, np)
	for pi := range s.pairs {
		s.rescanPair(pi)
	}
	s.resum()
	return s
}

// Release returns the scorer to the pool. The scorer must not be used
// afterwards.
func (s *Scorer) Release() {
	s.e = nil
	s.pairs = nil
	scorerPool.Put(s)
}

// rescanPair recomputes the two smallest effective distances of one demand
// node by a full scan over the current servers.
func (s *Scorer) rescanPair(pi int) {
	row := s.e.m.Row(s.pairs[pi].Node)
	b1, b2 := math.MaxFloat64, math.MaxFloat64
	a1, a2 := -1, -1
	for i, sv := range s.servers {
		c := row[sv] + s.offNode[sv]
		switch {
		case c < b1:
			b1, b2, a1, a2 = c, b1, i, a1
		case c < b2:
			b2, a2 = c, i
		}
	}
	s.best1[pi], s.best2[pi] = b1, b2
	s.arg1[pi], s.arg2[pi] = a1, a2
}

// resum recomputes the base total from best1, in access-point order, so
// incremental commits yield bit-identical totals to a fresh build.
func (s *Scorer) resum() {
	total := 0.0
	for pi, p := range s.pairs {
		total += float64(p.Count) * s.best1[pi]
	}
	s.baseTotal = total
}

// Base returns the access score of the unchanged placement.
func (s *Scorer) Base() float64 { return s.baseTotal }

// Servers returns the scorer's current server nodes. The slice is owned by
// the scorer; index i in Move/Remove/Apply* refers to Servers()[i].
func (s *Scorer) Servers() []int { return s.servers }

// Add returns the access score with one extra server at node v.
func (s *Scorer) Add(v int) float64 {
	offV := s.offNode[v]
	m := s.e.m
	total := 0.0
	for pi, p := range s.pairs {
		c := m.Row(p.Node)[v] + offV
		if b := s.best1[pi]; b < c {
			c = b
		}
		total += float64(p.Count) * c
	}
	return total
}

// Remove returns the access score with servers[i] removed. It returns +Inf
// when i indexes the only server and demand is non-empty (requests could no
// longer be served).
func (s *Scorer) Remove(i int) float64 {
	if len(s.servers) == 1 {
		if len(s.pairs) == 0 {
			return 0
		}
		return math.Inf(1)
	}
	total := 0.0
	for pi, p := range s.pairs {
		c := s.best1[pi]
		if s.arg1[pi] == i {
			c = s.best2[pi]
		}
		total += float64(p.Count) * c
	}
	return total
}

// Move returns the access score with servers[i] relocated to node v.
func (s *Scorer) Move(i, v int) float64 {
	offV := s.offNode[v]
	m := s.e.m
	total := 0.0
	for pi, p := range s.pairs {
		c := s.best1[pi]
		if s.arg1[pi] == i {
			c = s.best2[pi]
		}
		if cv := m.Row(p.Node)[v] + offV; cv < c {
			c = cv
		}
		total += float64(p.Count) * c
	}
	return total
}

// ApplyAdd commits the addition of a server at node v: best1/best2/arg1
// are updated in O(distinct access points), not rebuilt. The new server
// takes index len(Servers())-1.
func (s *Scorer) ApplyAdd(v int) {
	i := len(s.servers)
	s.servers = append(s.servers, v)
	offV := s.offNode[v]
	m := s.e.m
	for pi, p := range s.pairs {
		c := m.Row(p.Node)[v] + offV
		switch {
		case c < s.best1[pi]:
			s.best2[pi], s.arg2[pi] = s.best1[pi], s.arg1[pi]
			s.best1[pi], s.arg1[pi] = c, i
		case c < s.best2[pi]:
			s.best2[pi], s.arg2[pi] = c, i
		}
	}
	s.resum()
}

// ApplyRemove commits the removal of servers[i]. The last server is swapped
// into slot i, so callers tracking indexes must re-read Servers(). Only
// access points whose top-2 involved the removed server are rescanned.
func (s *Scorer) ApplyRemove(i int) {
	last := len(s.servers) - 1
	s.servers[i] = s.servers[last]
	s.servers = s.servers[:last]
	for pi := range s.pairs {
		a1, a2 := s.arg1[pi], s.arg2[pi]
		if a1 == i || a2 == i {
			s.rescanPair(pi)
			continue
		}
		if a1 == last {
			s.arg1[pi] = i
		}
		if a2 == last {
			s.arg2[pi] = i
		}
	}
	s.resum()
}

// ApplyMove commits the relocation of servers[i] to node v. Access points
// whose top-2 involved the moved server are rescanned; all others only
// compare the new position's effective distance against their top-2.
func (s *Scorer) ApplyMove(i, v int) {
	s.servers[i] = v
	offV := s.offNode[v]
	m := s.e.m
	for pi, p := range s.pairs {
		if s.arg1[pi] == i || s.arg2[pi] == i {
			s.rescanPair(pi)
			continue
		}
		c := m.Row(p.Node)[v] + offV
		switch {
		case c < s.best1[pi]:
			s.best2[pi], s.arg2[pi] = s.best1[pi], s.arg1[pi]
			s.best1[pi], s.arg1[pi] = c, i
		case c < s.best2[pi]:
			s.best2[pi], s.arg2[pi] = c, i
		}
	}
	s.resum()
}
