package cost

import "math"

// Scorer accelerates the single-change candidate searches performed by the
// best-response algorithms (ONBR, ONTH, and their offline variants): given
// a fixed demand and a fixed server placement, it answers "what would the
// access cost be if one server were added, removed, or moved?" in
// O(distinct access points) per candidate instead of a full re-evaluation.
//
// Scores are Costacc totals (latency + load folded into per-request
// effective distances). NewScorer builds an exact scorer when the
// evaluator's closed form applies; NewScorerApprox builds a linearised
// approximation for arbitrary load functions, suitable for *searching*
// candidates whose final cost the caller re-evaluates exactly.
type Scorer struct {
	e        *Evaluator
	servers  []int
	pairs    []NodeCount
	offsetAt func(server int) float64
	// Per demand node: the two smallest effective distances over the
	// current servers and the index (into servers) achieving the smallest.
	best1, best2 []float64
	arg1         []int
	baseTotal    float64
}

// NewScorer builds an exact scorer for the placement, or reports false when
// the closed form does not apply (the caller may then fall back to
// NewScorerApprox or to full Access evaluations). The closed form folds
// load into the per-request effective distance, which is exact only for
// min-cost routing with a separable load function whose idle value f(ω, 0)
// is zero (true for Linear and Power(1)).
func NewScorer(e *Evaluator, servers []int, d Demand) (*Scorer, bool) {
	if e.policy != AssignMinCost || !e.load.Separable() || len(servers) == 0 {
		return nil, false
	}
	s := newScorer(e, servers, d, func(server int) float64 {
		return e.load.Marginal(e.g.Strength(server), 0)
	})
	return s, true
}

// NewScorerApprox builds a scorer that linearises the load function around
// the hinted per-server request volume: each server's routing offset is
// Marginal(ω, etaHint). For separable loads with etaHint irrelevant this
// coincides with NewScorer; for steeper loads (e.g. Quadratic) it is a
// search heuristic. It panics on an empty placement.
func NewScorerApprox(e *Evaluator, servers []int, d Demand, etaHint float64) *Scorer {
	if len(servers) == 0 {
		panic("cost: scorer needs at least one server")
	}
	return newScorer(e, servers, d, func(server int) float64 {
		return e.load.Marginal(e.g.Strength(server), etaHint)
	})
}

func newScorer(e *Evaluator, servers []int, d Demand, offsetAt func(int) float64) *Scorer {
	s := &Scorer{
		e:        e,
		servers:  append([]int(nil), servers...),
		pairs:    d.Pairs(),
		offsetAt: offsetAt,
		best1:    make([]float64, d.Distinct()),
		best2:    make([]float64, d.Distinct()),
		arg1:     make([]int, d.Distinct()),
	}
	off := make([]float64, len(servers))
	for i, sv := range servers {
		off[i] = offsetAt(sv)
	}
	for pi, p := range s.pairs {
		b1, b2, a1 := math.MaxFloat64, math.MaxFloat64, -1
		for i, sv := range servers {
			c := e.m.Dist(p.Node, sv) + off[i]
			switch {
			case c < b1:
				b1, b2, a1 = c, b1, i
			case c < b2:
				b2 = c
			}
		}
		s.best1[pi], s.best2[pi], s.arg1[pi] = b1, b2, a1
		s.baseTotal += float64(p.Count) * b1
	}
	return s
}

// Base returns the access score of the unchanged placement.
func (s *Scorer) Base() float64 { return s.baseTotal }

// eff returns the effective distance from a demand node to a candidate
// server node.
func (s *Scorer) eff(demandNode, server int) float64 {
	return s.e.m.Dist(demandNode, server) + s.offsetAt(server)
}

// Add returns the access score with one extra server at node v.
func (s *Scorer) Add(v int) float64 {
	total := 0.0
	for pi, p := range s.pairs {
		c := s.eff(p.Node, v)
		if b := s.best1[pi]; b < c {
			c = b
		}
		total += float64(p.Count) * c
	}
	return total
}

// Remove returns the access score with servers[i] removed. It returns +Inf
// when i indexes the only server and demand is non-empty (requests could no
// longer be served).
func (s *Scorer) Remove(i int) float64 {
	if len(s.servers) == 1 {
		if len(s.pairs) == 0 {
			return 0
		}
		return math.Inf(1)
	}
	total := 0.0
	for pi, p := range s.pairs {
		c := s.best1[pi]
		if s.arg1[pi] == i {
			c = s.best2[pi]
		}
		total += float64(p.Count) * c
	}
	return total
}

// Move returns the access score with servers[i] relocated to node v.
func (s *Scorer) Move(i, v int) float64 {
	total := 0.0
	for pi, p := range s.pairs {
		c := s.best1[pi]
		if s.arg1[pi] == i {
			c = s.best2[pi]
		}
		if cv := s.eff(p.Node, v); cv < c {
			c = cv
		}
		total += float64(p.Count) * c
	}
	return total
}
