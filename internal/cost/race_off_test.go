//go:build !race

package cost

const raceEnabled = false
