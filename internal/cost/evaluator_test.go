package cost

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// lineGraph builds 0-1-2-...-n with unit latencies.
func lineGraph(n int) *graph.Graph {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	return g
}

func evalFor(g *graph.Graph, load LoadFunc, policy Policy) *Evaluator {
	return NewEvaluator(g, g.AllPairs(), load, policy)
}

func TestAccessEmptyDemand(t *testing.T) {
	e := evalFor(lineGraph(3), Linear{}, AssignMinCost)
	ac := e.Access(nil, Demand{})
	if ac.Total() != 0 {
		t.Fatalf("empty demand cost = %v, want 0", ac.Total())
	}
}

func TestAccessNoServers(t *testing.T) {
	e := evalFor(lineGraph(3), Linear{}, AssignMinCost)
	ac := e.Access(nil, DemandFromList([]int{0}))
	if !ac.Infinite() {
		t.Fatal("requests without servers must cost infinity")
	}
}

func TestAccessSingleServerLine(t *testing.T) {
	// Line 0-1-2-3-4, server at 2, one request at each end.
	e := evalFor(lineGraph(5), Linear{}, AssignMinCost)
	ac := e.Access([]int{2}, DemandFromList([]int{0, 4}))
	if ac.Latency != 4 {
		t.Fatalf("latency = %v, want 4", ac.Latency)
	}
	if ac.Load != 2 { // η=2, ω=1, linear
		t.Fatalf("load = %v, want 2", ac.Load)
	}
	if ac.Total() != 6 {
		t.Fatalf("total = %v, want 6", ac.Total())
	}
}

func TestAccessPicksNearestUnderLinearUniform(t *testing.T) {
	// Servers at both ends; requests at node 1 go to server 0 (dist 1 < 3).
	e := evalFor(lineGraph(5), Linear{}, AssignMinCost)
	ac := e.Access([]int{0, 4}, DemandFromList([]int{1}))
	if ac.Latency != 1 {
		t.Fatalf("latency = %v, want 1", ac.Latency)
	}
	if ac.Load != 1 {
		t.Fatalf("load = %v, want 1 (one busy, one idle server)", ac.Load)
	}
}

func TestAccessLoadAwareRouting(t *testing.T) {
	// Two adjacent servers: node 0 strong (ω=10), node 1 weak (ω=1), link
	// latency 0.5. With min-cost routing a request at node 1 pays
	// dist 0.5 + marginal 0.1 at the strong server vs dist 0 + marginal 1
	// at the weak server, so it crosses the link.
	g := graph.New(2)
	g.MustAddEdge(0, 1, 0.5, 1)
	g.SetStrength(0, 10)
	e := evalFor(g, Linear{}, AssignMinCost)
	ac := e.Access([]int{0, 1}, DemandFromList([]int{1}))
	if ac.Latency != 0.5 {
		t.Fatalf("latency = %v, want 0.5 (request crosses to strong server)", ac.Latency)
	}
	if math.Abs(ac.Load-0.1) > 1e-12 {
		t.Fatalf("load = %v, want 0.1", ac.Load)
	}
	// Nearest routing stays local and pays the full weak-server load.
	eNear := evalFor(g, Linear{}, AssignNearest)
	acNear := eNear.Access([]int{0, 1}, DemandFromList([]int{1}))
	if acNear.Latency != 0 || acNear.Load != 1 {
		t.Fatalf("nearest: latency=%v load=%v, want 0/1", acNear.Latency, acNear.Load)
	}
}

func TestAccessQuadraticBalances(t *testing.T) {
	// Line of 3 nodes, servers at both ends, 4 requests in the middle.
	// Quadratic load makes piling all 4 on one server cost 1+16 while
	// balancing costs 4+8; the greedy router must balance 2/2.
	e := evalFor(lineGraph(3), Quadratic{}, AssignMinCost)
	ac := e.Access([]int{0, 2}, DemandFromList([]int{1, 1, 1, 1}))
	if ac.Latency != 4 {
		t.Fatalf("latency = %v, want 4", ac.Latency)
	}
	if ac.Load != 8 { // 2² + 2²
		t.Fatalf("load = %v, want 8 (balanced 2/2)", ac.Load)
	}
}

func TestAccessQuadraticNearestDoesNotBalance(t *testing.T) {
	// Same set-up under nearest routing: requests at node 0 all stay at
	// the local server.
	e := evalFor(lineGraph(3), Quadratic{}, AssignNearest)
	ac := e.Access([]int{0, 2}, DemandFromList([]int{0, 0, 0, 0}))
	if ac.Latency != 0 || ac.Load != 16 {
		t.Fatalf("latency=%v load=%v, want 0/16", ac.Latency, ac.Load)
	}
}

func TestSeparableMatchesGreedyForLinear(t *testing.T) {
	// The closed form and the unit-by-unit greedy router must agree for
	// separable loads on arbitrary instances.
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(10)
		g := graph.New(n)
		for v := 0; v+1 < n; v++ {
			g.MustAddEdge(v, v+1, 0.5+rng.Float64()*4, 1)
		}
		for v := 0; v < n; v++ {
			g.SetStrength(v, 0.5+rng.Float64()*3)
		}
		m := g.AllPairs()
		fast := NewEvaluator(g, m, Linear{}, AssignMinCost)
		servers := []int{rng.Intn(n), rng.Intn(n)}
		if servers[0] == servers[1] {
			servers[1] = (servers[1] + 1) % n
		}
		list := make([]int, 1+rng.Intn(20))
		for i := range list {
			list[i] = rng.Intn(n)
		}
		d := DemandFromList(list)
		got := fast.Access(servers, d)
		want := fast.NewSession().accessGreedy(servers, d)
		if math.Abs(got.Total()-want.Total()) > 1e-9 {
			t.Fatalf("trial %d: closed form %v != greedy %v", trial, got, want)
		}
	}
}

func TestBestAddition(t *testing.T) {
	// Line of 5, existing server at 0, all demand at node 4: the best
	// addition is node 4 itself.
	e := evalFor(lineGraph(5), Linear{}, AssignMinCost)
	v, ac, ok := e.BestAddition([]int{0}, DemandFromList([]int{4, 4, 4}))
	if !ok {
		t.Fatal("no addition found")
	}
	if v != 4 {
		t.Fatalf("best addition = %d, want 4", v)
	}
	if ac.Latency != 0 || ac.Load != 3 {
		t.Fatalf("cost = %+v, want latency 0, load 3", ac)
	}
}

func TestBestAdditionFirstServer(t *testing.T) {
	// Placing the very first server: demand at every node of a 3-line is
	// served strictly cheapest from the middle (latency 2 vs 3).
	e := evalFor(lineGraph(3), Linear{}, AssignMinCost)
	v, _, ok := e.BestAddition(nil, DemandFromList([]int{0, 1, 2}))
	if !ok || v != 1 {
		t.Fatalf("best first server = %d (ok=%v), want 1", v, ok)
	}
}

func TestBestAdditionNoFreeNode(t *testing.T) {
	e := evalFor(lineGraph(2), Linear{}, AssignMinCost)
	if _, _, ok := e.BestAddition([]int{0, 1}, DemandFromList([]int{0})); ok {
		t.Fatal("addition found on a full graph")
	}
}

func TestBestAdditionQuadratic(t *testing.T) {
	// Non-separable path: must still return the node minimising the exact
	// evaluated cost.
	e := evalFor(lineGraph(5), Quadratic{}, AssignMinCost)
	d := DemandFromList([]int{4, 4, 4, 4})
	v, _, ok := e.BestAddition([]int{0}, d)
	if !ok || v != 4 {
		t.Fatalf("best addition = %d (ok=%v), want 4", v, ok)
	}
}

func TestEvaluatorAccessors(t *testing.T) {
	g := lineGraph(3)
	m := g.AllPairs()
	e := NewEvaluator(g, m, Linear{}, AssignNearest)
	if e.Graph() != g || e.Metric() != graph.Metric(m) {
		t.Fatal("accessors do not round-trip")
	}
	if e.Load().Name() != "linear" || e.Policy() != AssignNearest {
		t.Fatal("load/policy accessors wrong")
	}
	if e.Policy().String() != "nearest" || AssignMinCost.String() != "min-cost" {
		t.Fatal("policy strings wrong")
	}
	if Policy(99).String() == "" {
		t.Fatal("unknown policy must still render")
	}
}

func TestNewEvaluatorSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	NewEvaluator(lineGraph(3), lineGraph(4).AllPairs(), Linear{}, AssignMinCost)
}

// Property: access cost is monotone — adding a server never increases it
// (under min-cost routing with linear load, where routing is per-request
// optimal).
func TestAccessMonotoneInServers(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 3 + local.Intn(10)
		g := lineGraph(n)
		e := evalFor(g, Linear{}, AssignMinCost)
		list := make([]int, 1+local.Intn(15))
		for i := range list {
			list[i] = local.Intn(n)
		}
		d := DemandFromList(list)
		s1 := []int{local.Intn(n)}
		extra := local.Intn(n)
		if extra == s1[0] {
			extra = (extra + 1) % n
		}
		s2 := []int{s1[0], extra}
		return e.Access(s2, d).Total() <= e.Access(s1, d).Total()+1e-9
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			vs[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: total latency plus load is additive over demand splits for
// separable loads: Access(D1 ∪ D2) = Access(D1) + Access(D2).
func TestAccessAdditiveForSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		g := lineGraph(n)
		e := evalFor(g, Linear{}, AssignMinCost)
		servers := []int{0, n - 1}
		l1 := make([]int, 1+rng.Intn(10))
		l2 := make([]int, 1+rng.Intn(10))
		for i := range l1 {
			l1[i] = rng.Intn(n)
		}
		for i := range l2 {
			l2[i] = rng.Intn(n)
		}
		d1, d2 := DemandFromList(l1), DemandFromList(l2)
		sum := e.Access(servers, d1).Total() + e.Access(servers, d2).Total()
		joint := e.Access(servers, Aggregate(d1, d2)).Total()
		if math.Abs(sum-joint) > 1e-9 {
			t.Fatalf("trial %d: split %v != joint %v", trial, sum, joint)
		}
	}
}
