package cost

import (
	"fmt"
	"sort"
	"strings"
)

// NodeCount is the number of requests issued at one access point in a
// round (one entry of the multi-set σt of Section II-B).
type NodeCount struct {
	Node  int
	Count int
}

// Demand is the request multi-set σt of one round: how many requests arrive
// at each access point. The zero value is the empty demand. Demands are
// immutable once built; entries are kept sorted by node id.
type Demand struct {
	pairs []NodeCount
	total int
}

// DemandFromList builds a demand from one access-point id per request.
func DemandFromList(nodes []int) Demand {
	counts := make(map[int]int, len(nodes))
	for _, v := range nodes {
		counts[v]++
	}
	return DemandFromCounts(counts)
}

// DemandFromCounts builds a demand from a node→count map. Entries with
// non-positive counts are dropped.
func DemandFromCounts(counts map[int]int) Demand {
	d := Demand{pairs: make([]NodeCount, 0, len(counts))}
	for v, c := range counts {
		if c > 0 {
			d.pairs = append(d.pairs, NodeCount{Node: v, Count: c})
			d.total += c
		}
	}
	sort.Slice(d.pairs, func(i, j int) bool { return d.pairs[i].Node < d.pairs[j].Node })
	return d
}

// DemandFromPairs builds a demand from explicit pairs, merging duplicates.
func DemandFromPairs(pairs ...NodeCount) Demand {
	counts := make(map[int]int, len(pairs))
	for _, p := range pairs {
		counts[p.Node] += p.Count
	}
	return DemandFromCounts(counts)
}

// Aggregate merges several rounds of demand into one multi-set. For
// separable load functions the access cost is additive over rounds, so
// algorithms that score a configuration against a whole epoch (ONBR, ONTH,
// their offline variants) can evaluate the aggregate once instead of every
// round.
func Aggregate(ds ...Demand) Demand {
	counts := make(map[int]int)
	for _, d := range ds {
		for _, p := range d.pairs {
			counts[p.Node] += p.Count
		}
	}
	return DemandFromCounts(counts)
}

// Accumulator aggregates per-round demands incrementally. The epoch-based
// algorithms (ONBR, ONTH) fold every round's demand into their running
// epoch summary as it arrives, in O(distinct access points) per round,
// instead of buffering the window and re-merging it through a map at every
// epoch end. Snapshot demands are identical to Aggregate over the window.
type Accumulator struct {
	counts  []int // dense per-node request counts
	touched []int // nodes with counts > 0, unsorted
	total   int
}

// NewAccumulator returns an accumulator for access points in [0, n).
func NewAccumulator(n int) *Accumulator {
	return &Accumulator{counts: make([]int, n)}
}

// Add folds one round's demand into the accumulator.
func (a *Accumulator) Add(d Demand) {
	for _, p := range d.pairs {
		if a.counts[p.Node] == 0 {
			a.touched = append(a.touched, p.Node)
		}
		a.counts[p.Node] += p.Count
	}
	a.total += d.total
}

// Total returns the number of accumulated requests.
func (a *Accumulator) Total() int { return a.total }

// Demand returns the aggregated multi-set. The snapshot is independent of
// the accumulator's further life.
func (a *Accumulator) Demand() Demand {
	sort.Ints(a.touched)
	d := Demand{pairs: make([]NodeCount, len(a.touched)), total: a.total}
	for i, v := range a.touched {
		d.pairs[i] = NodeCount{Node: v, Count: a.counts[v]}
	}
	return d
}

// Reset clears the accumulator for the next epoch.
func (a *Accumulator) Reset() {
	for _, v := range a.touched {
		a.counts[v] = 0
	}
	a.touched = a.touched[:0]
	a.total = 0
}

// Total returns the number of requests in the round.
func (d Demand) Total() int { return d.total }

// Empty reports whether no requests arrived.
func (d Demand) Empty() bool { return d.total == 0 }

// Pairs returns the (node, count) entries sorted by node id. The slice is
// owned by the demand and must not be modified.
func (d Demand) Pairs() []NodeCount { return d.pairs }

// Distinct returns the number of distinct access points.
func (d Demand) Distinct() int { return len(d.pairs) }

// Count returns the number of requests at node v.
func (d Demand) Count(v int) int {
	i := sort.Search(len(d.pairs), func(i int) bool { return d.pairs[i].Node >= v })
	if i < len(d.pairs) && d.pairs[i].Node == v {
		return d.pairs[i].Count
	}
	return 0
}

// MaxNode returns the largest access-point id, or -1 for the empty demand.
func (d Demand) MaxNode() int {
	if len(d.pairs) == 0 {
		return -1
	}
	return d.pairs[len(d.pairs)-1].Node
}

// String renders the multi-set compactly, e.g. "{3×2 7×1}".
func (d Demand) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range d.pairs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d×%d", p.Node, p.Count)
	}
	b.WriteByte('}')
	return b.String()
}
