package cost

import (
	"fmt"
	"math"
	"runtime"
	"sync"
)

// ConfSweep charges every configuration of an enumerated placement space
// with one round's access cost in a single batched pass. The generic
// algorithms (ONCONF and the work-function baseline WFA) need
// Access(γ, σt) for *every* configuration γ every round; calling
// Evaluator.Access once per configuration repays the per-call session and
// offset-staging overhead |configs| times and re-reads each demand node's
// distance row once per configuration.
//
// The sweep restructures that loop:
//
//   - All round-invariant data is hoisted into NewConfSweep: the
//     configurations are flattened into one contiguous node list with
//     per-config offsets, every node's routing offset and strength are
//     staged once, and each configuration is linked to its *parent* — the
//     configuration equal to it minus its largest node. Placement spaces
//     produced by core.EnumeratePlacements list every parent before its
//     extensions, so almost every configuration has one.
//   - Sweep then iterates demand pairs in the outer loop and
//     configurations in the inner loop, so each pair's distance row is
//     read once and shared across all configurations, and the minimum
//     effective distance of a configuration is derived from its parent's
//     in O(1) (compare the one appended server) instead of rescanning all
//     its servers. Configurations without a cached parent (the singletons,
//     and arbitrary non-DFS spaces) fall back to the full scan.
//   - Large sweeps fan out across GOMAXPROCS goroutines over contiguous
//     configuration ranges; a parent outside the worker's range falls
//     back to the full scan, so the results are independent of the worker
//     count.
//
// The arithmetic is exactly Evaluator.Access's: the per-pair minimisation
// visits servers in the same order with the same tie-break, latency and
// per-server volume accumulate in the same order, and the load pass sums
// server loads in placement order. Sweep output is therefore bit-identical
// to the per-config Access loop it replaces (TestConfSweepMatchesNaive).
//
// A ConfSweep is not safe for concurrent use; each algorithm instance owns
// one. All scratch is preallocated, so steady-state Sweep calls are
// allocation-free.
type ConfSweep struct {
	e   *Evaluator
	sep bool

	nodes    []int   // concatenated per-config server node lists
	off      []int   // config i's nodes are nodes[off[i]:off[i+1]]; len = C+1
	parent   []int32 // index of the config equal to config i minus its last node; -1 if absent
	lastNode []int   // config i's largest (last) server node
	lastSlot []int32 // its slot index within the config

	offNode  []float64 // per-node routing offset (separable fast path)
	strength []float64 // per-node strength
	strSlot  []float64 // per-slot strength (strength[nodes[q]], flattened)
	idleZero []bool    // load.Value(strength(v), 0) is exactly +0.0

	// Per-pair minimisation state, indexed by config.
	bestCost []float64
	bestLat  []float64
	bestSlot []int32
	// Per-round accumulators: latency per config, request volume per
	// server slot (flat, indexed off[i]+slot).
	latAcc []float64
	eta    []float64
	// latOut, when non-nil for the duration of one SweepAccess call,
	// receives each configuration's summed request latency.
	latOut []float64
}

// confSweepParallelThreshold is the pairs×configs work below which the
// separable sweep stays on one goroutine.
const confSweepParallelThreshold = 1 << 14

// NewConfSweep precomputes the sweep structure for a fixed configuration
// space. Every configuration must be a non-empty sorted list of distinct
// node ids (the form core.EnumeratePlacements produces).
func NewConfSweep(e *Evaluator, configs [][]int) *ConfSweep {
	s := &ConfSweep{e: e, sep: e.Separable()}
	total := 0
	for _, c := range configs {
		if len(c) == 0 {
			panic("cost: ConfSweep requires non-empty configurations")
		}
		total += len(c)
	}
	C := len(configs)
	s.nodes = make([]int, 0, total)
	s.off = make([]int, C+1)
	s.parent = make([]int32, C)
	index := make(map[string]int32, C)
	var keyBuf []byte
	key := func(c []int) string {
		keyBuf = keyBuf[:0]
		for _, v := range c {
			keyBuf = append(keyBuf,
				byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
		}
		return string(keyBuf)
	}
	for i, c := range configs {
		s.off[i] = len(s.nodes)
		s.nodes = append(s.nodes, c...)
		s.parent[i] = -1
		if len(c) > 1 {
			if pa, ok := index[key(c[:len(c)-1])]; ok {
				s.parent[i] = pa
			}
		}
		index[key(c)] = int32(i)
	}
	s.off[C] = len(s.nodes)

	n := e.g.N()
	s.offNode = make([]float64, n)
	s.strength = make([]float64, n)
	s.idleZero = make([]bool, n)
	for v := 0; v < n; v++ {
		s.offNode[v] = e.effMarginal(v)
		s.strength[v] = e.g.Strength(v)
		s.idleZero[v] = math.Float64bits(e.load.Value(s.strength[v], 0)) == 0
	}
	s.lastNode = make([]int, C)
	s.lastSlot = make([]int32, C)
	s.strSlot = make([]float64, total)
	for i := 0; i < C; i++ {
		s.lastNode[i] = s.nodes[s.off[i+1]-1]
		s.lastSlot[i] = int32(s.off[i+1] - 1 - s.off[i])
	}
	for q, v := range s.nodes {
		s.strSlot[q] = s.strength[v]
	}

	s.bestCost = make([]float64, C)
	s.bestLat = make([]float64, C)
	s.bestSlot = make([]int32, C)
	s.latAcc = make([]float64, C)
	s.eta = make([]float64, total)
	return s
}

// Len returns the number of configurations in the sweep.
func (s *ConfSweep) Len() int { return len(s.off) - 1 }

// Config returns configuration i's server nodes. The slice is owned by the
// sweep and must not be modified.
func (s *ConfSweep) Config(i int) []int { return s.nodes[s.off[i]:s.off[i+1]] }

// Sweep writes Access(configs[i], d).Total() into out[i] for every
// configuration, bit-identical to calling Evaluator.Access per config.
func (s *ConfSweep) Sweep(d Demand, out []float64) {
	s.SweepAccess(d, out, nil)
}

// SweepAccess is Sweep with the latency term reported separately: when
// latency is non-nil it receives Access(configs[i], d).Latency, letting
// callers apply AccessCost's infeasibility test (latency at or beyond
// graph.Infinity), which WFA's task costs need. latency must be nil or of
// the same length as out.
func (s *ConfSweep) SweepAccess(d Demand, out, latency []float64) {
	C := s.Len()
	if len(out) != C || (latency != nil && len(latency) != C) {
		panic(fmt.Sprintf("cost: Sweep output lengths %d/%d for %d configurations", len(out), len(latency), C))
	}
	if d.Empty() {
		for i := range out {
			out[i] = 0
		}
		if latency != nil {
			clear(latency)
		}
		return
	}
	work := len(d.Pairs()) * C
	if !s.sep {
		work = d.Total() * C
	}
	s.latOut = latency
	// The serial path avoids the closure so steady-state sweeps stay
	// allocation-free (TestConfSweepAllocationFree); the parallel path
	// allocates for its goroutines anyway.
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || work < confSweepParallelThreshold {
		s.sweepRange(d, 0, C, out)
	} else {
		ParallelChunks(C, true, func(lo, hi int) {
			s.sweepRange(d, lo, hi, out)
		})
	}
	s.latOut = nil
}

// ParallelChunks runs fn over contiguous index ranges covering [0, n),
// fanned out across GOMAXPROCS goroutines — or as one serial fn(0, n)
// call when parallel is false or only one worker is available. fn must
// tolerate concurrent invocations on disjoint ranges.
func ParallelChunks(n int, parallel bool, fn func(lo, hi int)) {
	if !parallel {
		fn(0, n)
		return
	}
	ParallelChunksWorkers(n, 0, 1, fn)
}

// ParallelChunksWorkers is ParallelChunks with an explicit worker bound and
// a minimum chunk grain: fn covers [0, n) on at most `workers` goroutines
// (non-positive selects GOMAXPROCS), each spanning at least `grain`
// indexes. The OPT solver and the candidate scans route their fan-outs
// through this so forced serial-vs-parallel parity runs stay expressible
// and all chunking lives in one place.
func ParallelChunksWorkers(n, workers, grain int, fn func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if grain > 1 && workers > n/grain {
		workers = n / grain
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// sweepRange evaluates configurations [lo, hi) with the kernel matching
// the evaluator's routing regime.
func (s *ConfSweep) sweepRange(d Demand, lo, hi int, out []float64) {
	if s.sep {
		s.separableRange(d, lo, hi, out)
	} else {
		s.genericRange(d, lo, hi, out)
	}
}

// separableRange evaluates configurations [lo, hi) with the closed-form
// routing of accessSeparable, sharing each pair's distance row across all
// configurations of the range and deriving each configuration's minimum
// from its parent's.
func (s *ConfSweep) separableRange(d Demand, lo, hi int, out []float64) {
	m := s.e.m
	off, parent := s.off, s.parent
	nodes, lastNode, lastSlot := s.nodes, s.lastNode, s.lastSlot
	bestCost, bestLat, bestSlot := s.bestCost, s.bestLat, s.bestSlot
	latAcc, eta, offNode := s.latAcc, s.eta, s.offNode
	clear(latAcc[lo:hi])
	clear(eta[off[lo]:off[hi]])
	for _, p := range d.Pairs() {
		row := m.Row(p.Node)
		cnt := float64(p.Count)
		for i := lo; i < hi; i++ {
			var bc, bl float64
			var bs int32
			if pa := int(parent[i]); pa >= lo {
				bc, bl, bs = bestCost[pa], bestLat[pa], bestSlot[pa]
				last := lastNode[i]
				if c := row[last] + offNode[last]; c < bc {
					bc, bl, bs = c, row[last], lastSlot[i]
				}
			} else {
				// Full scan, identical to accessSeparable's loop: strict
				// improvements over MaxFloat64, first index wins ties, and
				// the all-infinite case keeps slot 0.
				o := off[i]
				bc, bl, bs = math.MaxFloat64, row[nodes[o]], 0
				for q := o; q < off[i+1]; q++ {
					v := nodes[q]
					if c := row[v] + offNode[v]; c < bc {
						bc, bl, bs = c, row[v], int32(q-o)
					}
				}
			}
			bestCost[i], bestLat[i], bestSlot[i] = bc, bl, bs
			latAcc[i] += cnt * bl
			eta[off[i]+int(bs)] += cnt
		}
	}
	s.loadPass(lo, hi, out)
	if s.latOut != nil {
		copy(s.latOut[lo:hi], s.latAcc[lo:hi])
	}
}

// loadPass folds the per-server load values into the access totals, in
// placement order per configuration (the order accessSeparable sums them).
// Slots that received no requests contribute the node's idle load; when
// that value is exactly +0.0 the addition cannot change any IEEE-754
// accumulator (the sum starts at +0.0 and +0.0 + -0.0 = +0.0, so it never
// becomes -0.0), and skipping it is bit-identical. The paper's two load
// models are inlined — the expressions are identical to their Value
// methods, so the results are too — which removes the per-slot interface
// call from the hot loop.
func (s *ConfSweep) loadPass(lo, hi int, out []float64) {
	off, eta, latAcc, strSlot := s.off, s.eta, s.latAcc, s.strSlot
	switch s.e.load.(type) {
	case Linear:
		for i := lo; i < hi; i++ {
			sum := 0.0
			for q := off[i]; q < off[i+1]; q++ {
				if e := eta[q]; e != 0 {
					sum += e / strSlot[q]
				}
			}
			out[i] = latAcc[i] + sum
		}
	case Quadratic:
		for i := lo; i < hi; i++ {
			sum := 0.0
			for q := off[i]; q < off[i+1]; q++ {
				if e := eta[q]; e != 0 {
					r := e / strSlot[q]
					sum += r * r
				}
			}
			out[i] = latAcc[i] + sum
		}
	default:
		load, nodes, idleZero := s.e.load, s.nodes, s.idleZero
		for i := lo; i < hi; i++ {
			sum := 0.0
			for q := off[i]; q < off[i+1]; q++ {
				if e := eta[q]; e != 0 || !idleZero[nodes[q]] {
					sum += load.Value(strSlot[q], e)
				}
			}
			out[i] = latAcc[i] + sum
		}
	}
}

// genericRange evaluates configurations [lo, hi) with the full routing
// kernel (greedy per-unit assignment for non-separable loads), one pooled
// session per worker.
func (s *ConfSweep) genericRange(d Demand, lo, hi int, out []float64) {
	ws := s.e.sessions.Get().(*Session)
	for i := lo; i < hi; i++ {
		ac := ws.Access(s.nodes[s.off[i]:s.off[i+1]], d)
		out[i] = ac.Total()
		if s.latOut != nil {
			s.latOut[i] = ac.Latency
		}
	}
	s.e.sessions.Put(ws)
}
