package cost

import "math"

// This file holds the request router of the non-separable access-cost
// path: requests are assigned one unit at a time to the server of minimal
// latency + current marginal load (Section II-B), deterministically in
// ascending access-point order with ties broken toward the lowest server
// index.
//
// The router maintains the per-server cost keys incrementally — a unit
// only changes the marginal load (and therefore the key) of the server it
// was routed to — so the LoadFunc.Marginal interface call happens once per
// routed unit instead of once per unit × server. On top of that, bulky
// pairs route through a binary min-heap over the keys, turning the
// per-unit argmin from O(servers) into O(log servers); both paths pick
// exactly the server the retained per-unit greedy scan picks
// (TestHeapRouterMatchesNaiveGreedy), so routing is bit-identical.

// heapRouterMinUnits and heapRouterMinServers gate the heap path: below
// either bound the plain scan over the cached keys is at least as fast as
// maintaining the heap.
const (
	heapRouterMinUnits   = 8
	heapRouterMinServers = 8
)

// routeGreedy routes demand d over the servers and returns the summed
// request latency; s.eta receives the per-server request volumes. The
// scratch slices str (per-server strengths), marg (cached marginal loads)
// and key (latency + marginal per server, rebuilt per access point) must
// be sized by the caller; eta and marg must describe the current volumes.
func (s *Session) routeGreedy(servers []int, d Demand) float64 {
	e := s.e
	str, eta, marg, key := s.off, s.eta, s.marg, s.key
	var latency float64
	for _, p := range d.Pairs() {
		row := e.m.Row(p.Node)
		for i, sv := range servers {
			key[i] = row[sv] + marg[i]
		}
		if p.Count >= heapRouterMinUnits && len(servers) >= heapRouterMinServers {
			latency = s.routeHeap(servers, row, p.Count, latency)
			continue
		}
		for u := 0; u < p.Count; u++ {
			best, bestCost := 0, math.MaxFloat64
			for i := range servers {
				if c := key[i]; c < bestCost {
					best, bestCost = i, c
				}
			}
			latency += row[servers[best]]
			eta[best]++
			marg[best] = e.load.Marginal(str[best], eta[best])
			key[best] = row[servers[best]] + marg[best]
		}
	}
	return latency
}

// routeHeap routes count units of one access point through a binary
// min-heap over (key, server index), threading the caller's latency
// accumulator through so the per-unit additions happen in exactly the
// scan's order. Only the assigned server's key changes per unit, and the
// changed element sits at the root, so one sift-down restores the heap;
// the root is always the lowest-index server among those of minimal key,
// matching the scan's tie-break.
func (s *Session) routeHeap(servers []int, row []float64, count int, latency float64) float64 {
	ns := len(servers)
	s.heap = growI32(s.heap, ns)
	h, key := s.heap, s.key
	for i := range h {
		h[i] = int32(i)
	}
	for i := ns/2 - 1; i >= 0; i-- {
		siftDown(h, key, i)
	}
	e := s.e
	for u := 0; u < count; u++ {
		best := int(h[0])
		latency += row[servers[best]]
		s.eta[best]++
		s.marg[best] = e.load.Marginal(s.off[best], s.eta[best])
		key[best] = row[servers[best]] + s.marg[best]
		siftDown(h, key, 0)
	}
	return latency
}

// heapLess orders heap entries by key, ties by server index, so the root
// is the first index the sequential scan would have picked.
func heapLess(key []float64, a, b int32) bool {
	return key[a] < key[b] || (key[a] == key[b] && a < b)
}

// siftDown restores the heap property below position i.
func siftDown(h []int32, key []float64, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && heapLess(key, h[r], h[l]) {
			m = r
		}
		if !heapLess(key, h[m], h[i]) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}
