package cost

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearLoad(t *testing.T) {
	var l Linear
	if got := l.Value(2, 6); got != 3 {
		t.Fatalf("Value(2,6) = %v, want 3", got)
	}
	if got := l.Marginal(4, 100); got != 0.25 {
		t.Fatalf("Marginal(4,100) = %v, want 0.25", got)
	}
	if !l.Separable() {
		t.Fatal("linear must be separable")
	}
	if l.Name() != "linear" {
		t.Fatalf("Name() = %q", l.Name())
	}
}

func TestQuadraticLoad(t *testing.T) {
	var q Quadratic
	if got := q.Value(2, 6); got != 9 {
		t.Fatalf("Value(2,6) = %v, want 9", got)
	}
	// Marginal at η grows with η.
	if q.Marginal(1, 0) >= q.Marginal(1, 5) {
		t.Fatal("quadratic marginal must grow with load")
	}
	if q.Separable() {
		t.Fatal("quadratic must not be separable")
	}
}

func TestPowerLoad(t *testing.T) {
	p := Power{P: 3}
	if got := p.Value(1, 2); got != 8 {
		t.Fatalf("Value(1,2) = %v, want 8", got)
	}
	if !(Power{P: 1}).Separable() {
		t.Fatal("power(1) must be separable")
	}
	if p.Separable() {
		t.Fatal("power(3) must not be separable")
	}
}

func TestPowerMatchesLinearAndQuadratic(t *testing.T) {
	for eta := 0.0; eta < 10; eta++ {
		for _, w := range []float64{0.5, 1, 2, 4} {
			if got, want := (Power{P: 1}).Value(w, eta), (Linear{}).Value(w, eta); math.Abs(got-want) > 1e-12 {
				t.Fatalf("power(1).Value(%v,%v) = %v, linear = %v", w, eta, got, want)
			}
			if got, want := (Power{P: 2}).Value(w, eta), (Quadratic{}).Value(w, eta); math.Abs(got-want) > 1e-9 {
				t.Fatalf("power(2).Value(%v,%v) = %v, quadratic = %v", w, eta, got, want)
			}
		}
	}
}

// Property: the marginal is consistent with the value function —
// f(ω, η+1) = f(ω, η) + Marginal(ω, η).
func TestMarginalConsistency(t *testing.T) {
	funcs := []LoadFunc{Linear{}, Quadratic{}, Power{P: 1.5}, Power{P: 3}}
	check := func(wRaw, etaRaw uint8) bool {
		w := 0.5 + float64(wRaw%8)  // strengths in [0.5, 7.5]
		eta := float64(etaRaw % 50) // loads in [0, 49]
		for _, f := range funcs {
			lhs := f.Value(w, eta+1)
			rhs := f.Value(w, eta) + f.Marginal(w, eta)
			if math.Abs(lhs-rhs) > 1e-9*(1+math.Abs(lhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

// Property: load functions are monotone in η and zero at η = 0.
func TestLoadMonotoneAndZeroAtIdle(t *testing.T) {
	funcs := []LoadFunc{Linear{}, Quadratic{}, Power{P: 2.5}}
	for _, f := range funcs {
		if v := f.Value(3, 0); v != 0 {
			t.Fatalf("%s.Value(3,0) = %v, want 0", f.Name(), v)
		}
		prev := 0.0
		for eta := 1.0; eta <= 20; eta++ {
			v := f.Value(3, eta)
			if v < prev {
				t.Fatalf("%s not monotone at η=%v", f.Name(), eta)
			}
			prev = v
		}
	}
}
