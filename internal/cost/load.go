package cost

import (
	"fmt"
	"math"
)

// LoadFunc models the latency contribution of server load from Section
// II-B: load(v, t) = f(ω(v), η(v, t)) where ω(v) is the node strength and
// η(v, t) the number of requests arriving at the servers hosted by v in
// round t. The paper's evaluation uses the linear and quadratic instances.
type LoadFunc interface {
	// Name identifies the function in reports ("linear", "quadratic", ...).
	Name() string
	// Value returns f(strength, eta).
	Value(strength, eta float64) float64
	// Marginal returns f(strength, eta+1) − f(strength, eta), the extra
	// load caused by routing one more request to the node.
	Marginal(strength, eta float64) float64
	// Separable reports whether Marginal is independent of eta. For
	// separable functions the minimal-access-cost routing of Section II-B
	// decomposes per request (each request independently picks the server
	// minimising latency + marginal load), which the evaluator exploits
	// with an exact closed form.
	Separable() bool
}

// Linear is the paper's simple model load(v,t) = η(v,t)/ω(v).
type Linear struct{}

// Name implements LoadFunc.
func (Linear) Name() string { return "linear" }

// Value implements LoadFunc.
func (Linear) Value(strength, eta float64) float64 { return eta / strength }

// Marginal implements LoadFunc.
func (Linear) Marginal(strength, eta float64) float64 { return 1 / strength }

// Separable implements LoadFunc.
func (Linear) Separable() bool { return true }

// Quadratic is the steeper model load(v,t) = (η(v,t)/ω(v))², used in the
// paper's Figure 1 and 2 to show that steeper load functions trigger the
// allocation of more servers.
type Quadratic struct{}

// Name implements LoadFunc.
func (Quadratic) Name() string { return "quadratic" }

// Value implements LoadFunc.
func (Quadratic) Value(strength, eta float64) float64 {
	r := eta / strength
	return r * r
}

// Marginal implements LoadFunc.
func (Quadratic) Marginal(strength, eta float64) float64 {
	return (2*eta + 1) / (strength * strength)
}

// Separable implements LoadFunc.
func (Quadratic) Separable() bool { return false }

// Power generalises the two above to load(v,t) = (η/ω)^P for P >= 1,
// supporting the paper's remark that solutions exist "for very general load
// functions".
type Power struct{ P float64 }

// Name implements LoadFunc.
func (p Power) Name() string { return fmt.Sprintf("power(%g)", p.P) }

// Value implements LoadFunc.
func (p Power) Value(strength, eta float64) float64 {
	return math.Pow(eta/strength, p.P)
}

// Marginal implements LoadFunc.
func (p Power) Marginal(strength, eta float64) float64 {
	return p.Value(strength, eta+1) - p.Value(strength, eta)
}

// Separable implements LoadFunc.
func (p Power) Separable() bool { return p.P == 1 }
