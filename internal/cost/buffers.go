package cost

// growF returns a slice of exactly n float64s, reusing buf's backing array
// when it is large enough. Contents are unspecified.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growI is growF for int slices.
func growI(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

// growI32 is growF for int32 slices.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// growB is growF for bool slices; the returned slice is zeroed.
func growB(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = false
	}
	return buf
}

// zeroF clears a float64 slice.
func zeroF(buf []float64) {
	for i := range buf {
		buf[i] = 0
	}
}
