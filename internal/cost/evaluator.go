package cost

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/graph"
)

// AccessCost is one round's Costacc split into its two terms from Section
// II-B: the summed request latencies and the summed server loads.
type AccessCost struct {
	Latency float64 // Σ delay(r) over all requests of the round
	Load    float64 // Σ load(v, t) over all server nodes
}

// Total returns Costacc = latency + load.
func (a AccessCost) Total() float64 { return a.Latency + a.Load }

// Infinite reports whether the cost is unbounded (demand with no active
// server to serve it).
func (a AccessCost) Infinite() bool {
	return math.IsInf(a.Latency, 1) || a.Latency == graph.Infinity
}

// InfiniteAccess is the access cost of a round whose requests cannot be
// served.
func InfiniteAccess() AccessCost { return AccessCost{Latency: graph.Infinity} }

// Policy selects how requests are routed to servers.
type Policy int

const (
	// AssignMinCost routes every request to the server of minimal access
	// cost — latency plus the marginal load the request induces — as
	// prescribed by Section II-B. This is the default.
	AssignMinCost Policy = iota
	// AssignNearest ignores load when routing and picks the
	// latency-nearest server. Used by the assignment-policy ablation.
	AssignNearest
)

func (p Policy) String() string {
	switch p {
	case AssignMinCost:
		return "min-cost"
	case AssignNearest:
		return "nearest"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Evaluator computes access costs on a fixed substrate. It is safe for
// concurrent use: all model state is read-only after construction, and the
// scratch workspaces handed out by the internal pool are never shared.
type Evaluator struct {
	g      *graph.Graph
	m      graph.Metric
	load   LoadFunc
	policy Policy

	sessions sync.Pool // of *Session, so steady-state Access is allocation-free
}

// NewEvaluator builds an evaluator for the given substrate and load model.
// The metric may be any backend (dense matrix, sparse, landmark); the
// kernels only borrow read-only distance rows from it.
func NewEvaluator(g *graph.Graph, m graph.Metric, load LoadFunc, policy Policy) *Evaluator {
	if g.N() != m.N() {
		panic(fmt.Sprintf("cost: metric size %d does not match graph size %d", m.N(), g.N()))
	}
	e := &Evaluator{g: g, m: m, load: load, policy: policy}
	e.sessions.New = func() any { return &Session{e: e} }
	return e
}

// Session is a reusable scratch workspace for access-cost evaluation. A
// session is not safe for concurrent use; callers that evaluate from many
// goroutines hold one session per goroutine (Evaluator.Access does this
// transparently through an internal pool).
type Session struct {
	e    *Evaluator
	off  []float64 // per-server routing offset (strengths on the greedy path)
	eta  []float64 // per-server request volume
	occ  []bool    // per-node occupancy flags (BestAddition)
	marg []float64 // per-server cached marginal load (greedy router)
	key  []float64 // per-server latency + marginal (greedy router)
	heap []int32   // heap of server indexes ordered by key (greedy router)
}

// NewSession returns a workspace bound to the evaluator. Reusing one
// session across evaluations makes Access allocation-free.
func (e *Evaluator) NewSession() *Session {
	return &Session{e: e}
}

// Access is Evaluator.Access evaluated in this session's scratch space.
func (s *Session) Access(servers []int, d Demand) AccessCost {
	if d.Empty() {
		return AccessCost{}
	}
	if len(servers) == 0 {
		return InfiniteAccess()
	}
	if s.e.Separable() {
		return s.accessSeparable(servers, d)
	}
	return s.accessGreedy(servers, d)
}

// Graph returns the substrate the evaluator was built for.
func (e *Evaluator) Graph() *graph.Graph { return e.g }

// Metric returns the latency metric backend.
func (e *Evaluator) Metric() graph.Metric { return e.m }

// Load returns the load function.
func (e *Evaluator) Load() LoadFunc { return e.load }

// Policy returns the routing policy.
func (e *Evaluator) Policy() Policy { return e.policy }

// Separable reports whether the closed-form fast path applies: separable
// load function under min-cost routing, or any load function under
// nearest routing (where routing never depends on load).
func (e *Evaluator) Separable() bool {
	return e.policy == AssignNearest || e.load.Separable()
}

// Access returns Costacc for serving demand d with active servers at the
// given nodes. Server nodes must be distinct; a node hosts at most one
// server of the service. An empty server set can serve only empty demand.
func (e *Evaluator) Access(servers []int, d Demand) AccessCost {
	ws := e.sessions.Get().(*Session)
	ac := ws.Access(servers, d)
	e.sessions.Put(ws)
	return ac
}

// effMarginal returns the routing offset of a server: the (constant)
// marginal load under min-cost routing, zero under nearest routing.
func (e *Evaluator) effMarginal(server int) float64 {
	if e.policy == AssignNearest {
		return 0
	}
	return e.load.Marginal(e.g.Strength(server), 0)
}

// accessSeparable exploits that the request-to-server choice decomposes:
// every request independently minimises latency + routing offset. Each
// demand node's distances come from one contiguous matrix row.
func (s *Session) accessSeparable(servers []int, d Demand) AccessCost {
	e := s.e
	s.off = growF(s.off, len(servers))
	s.eta = growF(s.eta, len(servers))
	off, eta := s.off, s.eta
	for i, sv := range servers {
		off[i] = e.effMarginal(sv)
	}
	zeroF(eta)
	var ac AccessCost
	for _, p := range d.Pairs() {
		row := e.m.Row(p.Node)
		best, bestCost := 0, math.MaxFloat64
		for i, sv := range servers {
			if c := row[sv] + off[i]; c < bestCost {
				best, bestCost = i, c
			}
		}
		ac.Latency += float64(p.Count) * row[servers[best]]
		eta[best] += float64(p.Count)
	}
	for i, sv := range servers {
		ac.Load += e.load.Value(e.g.Strength(sv), eta[i])
	}
	return ac
}

// accessGreedy routes one request at a time to the server with minimal
// latency + current marginal load. Requests are processed in ascending
// access-point order, one unit at a time, so the result is deterministic.
// Routing runs through the incremental-key router of router.go (heap-based
// for bulky access points), which picks exactly the servers the plain
// per-unit scan picks.
func (s *Session) accessGreedy(servers []int, d Demand) AccessCost {
	e := s.e
	ns := len(servers)
	s.eta = growF(s.eta, ns)
	s.off = growF(s.off, ns)
	s.marg = growF(s.marg, ns)
	s.key = growF(s.key, ns)
	eta, str := s.eta, s.off // reuse the offset buffer for strengths
	zeroF(eta)
	for i, sv := range servers {
		str[i] = e.g.Strength(sv)
		s.marg[i] = e.load.Marginal(str[i], 0)
	}
	latency := s.routeGreedy(servers, d)
	var load float64
	for i := range servers {
		load += e.load.Value(str[i], eta[i])
	}
	return AccessCost{Latency: latency, Load: load}
}

// BestAddition returns the node minimising Access(servers ∪ {v}, d) over
// all nodes v not already hosting a server, together with the resulting
// access cost. It is used by ONTH's large-epoch rule ("a new server is
// activated at an optimal position with respect to the access cost of the
// latest large epoch") and by the greedy placement of OFFSTAT. The second
// return is false when no free node exists.
func (e *Evaluator) BestAddition(servers []int, d Demand) (int, AccessCost, bool) {
	ws := e.sessions.Get().(*Session)
	ws.occ = growB(ws.occ, e.g.N())
	for _, s := range servers {
		ws.occ[s] = true
	}
	bestNode, found := -1, false
	if sc, ok := NewScorer(e, servers, d); ok {
		bestScore := math.MaxFloat64
		for v := 0; v < e.g.N(); v++ {
			if ws.occ[v] {
				continue
			}
			if score := sc.Add(v); !found || score < bestScore {
				bestNode, bestScore, found = v, score, true
			}
		}
		sc.Release()
	} else {
		bestScore := math.MaxFloat64
		cand := make([]int, len(servers)+1)
		copy(cand, servers)
		for v := 0; v < e.g.N(); v++ {
			if ws.occ[v] {
				continue
			}
			cand[len(servers)] = v
			if score := ws.Access(cand, d).Total(); !found || score < bestScore {
				bestNode, bestScore, found = v, score, true
			}
		}
	}
	e.sessions.Put(ws)
	if !found {
		return -1, AccessCost{}, false
	}
	cand := make([]int, 0, len(servers)+1)
	cand = append(cand, servers...)
	cand = append(cand, bestNode)
	return bestNode, e.Access(cand, d), true
}
