package cost

import (
	"math"
	"testing"
)

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.Beta != 40 || p.Create != 400 {
		t.Fatalf("defaults β=%v c=%v, want 40/400", p.Beta, p.Create)
	}
	if !p.MigrationBeneficial() {
		t.Fatal("defaults must have β < c")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInvertedParams(t *testing.T) {
	p := InvertedParams()
	if p.Beta != 400 || p.Create != 40 {
		t.Fatalf("inverted β=%v c=%v, want 400/40", p.Beta, p.Create)
	}
	if p.MigrationBeneficial() {
		t.Fatal("inverted must have β ≥ c")
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []Params{
		{Beta: -1, Create: 1},
		{Beta: 1, Create: 0},
		{Beta: math.NaN(), Create: 1},
		{Beta: 1, Create: math.Inf(1)},
		{Beta: 1, Create: 1, RunActive: -0.5},
		{Beta: 1, Create: 1, RunInactive: math.NaN()},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: %+v validated", i, p)
		}
	}
}

func TestPlaceCost(t *testing.T) {
	if got := DefaultParams().PlaceCost(); got != 40 {
		t.Fatalf("PlaceCost = %v, want β=40", got)
	}
	if got := InvertedParams().PlaceCost(); got != 40 {
		t.Fatalf("PlaceCost = %v, want c=40", got)
	}
}

func TestRun(t *testing.T) {
	p := Params{Beta: 1, Create: 1, RunActive: 2.5, RunInactive: 0.5}
	if got := p.Run(3, 2); got != 8.5 {
		t.Fatalf("Run(3,2) = %v, want 8.5", got)
	}
	if got := p.Run(0, 0); got != 0 {
		t.Fatalf("Run(0,0) = %v, want 0", got)
	}
}

func TestTransition(t *testing.T) {
	def := DefaultParams() // β=40 < c=400
	cases := []struct {
		p                Params
		created, vacated int
		want             float64
	}{
		{def, 0, 0, 0},
		{def, 0, 5, 0},               // removals are free
		{def, 1, 0, 400},             // create from scratch
		{def, 1, 1, 40},              // migrate the vacated server
		{def, 3, 1, 40 + 2*400},      // one migration, two creations
		{def, 2, 5, 80},              // migrations bounded by need
		{InvertedParams(), 2, 5, 80}, // β ≥ c: two creations at c=40
		{InvertedParams(), 1, 0, 40},
	}
	for i, c := range cases {
		if got := c.p.Transition(c.created, c.vacated); got != c.want {
			t.Errorf("case %d: Transition(%d,%d) = %v, want %v", i, c.created, c.vacated, got, c.want)
		}
	}
}

func TestTransitionNegativeCreatedIsFree(t *testing.T) {
	if got := DefaultParams().Transition(-3, 2); got != 0 {
		t.Fatalf("Transition(-3,2) = %v, want 0", got)
	}
}

func TestParamsString(t *testing.T) {
	if s := DefaultParams().String(); s == "" {
		t.Fatal("empty String()")
	}
}
