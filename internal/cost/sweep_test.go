package cost

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/graph"
)

// enumeratePlacementsDFS mirrors core.EnumeratePlacements (which cannot be
// imported here without a cycle): every non-empty sorted placement of at
// most maxServers nodes, parents before extensions.
func enumeratePlacementsDFS(n, maxServers int) [][]int {
	var out [][]int
	var cur []int
	var rec func(next int)
	rec = func(next int) {
		if len(cur) > 0 {
			out = append(out, append([]int(nil), cur...))
		}
		if len(cur) == maxServers {
			return
		}
		for v := next; v < n; v++ {
			cur = append(cur, v)
			rec(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// naiveConfLoop is the retained reference the sweep replaces: one full
// Access evaluation per configuration.
func naiveConfLoop(e *Evaluator, configs [][]int, d Demand, out []float64) {
	for i, c := range configs {
		out[i] = e.Access(c, d).Total()
	}
}

// TestConfSweepMatchesNaive pins Sweep to the per-config Access loop with
// exact float equality, over separable and non-separable loads, both
// routing policies, DFS-ordered and shuffled (parent-less) spaces.
func TestConfSweepMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	loads := []LoadFunc{Linear{}, Quadratic{}, Power{P: 1}, Power{P: 2.5}}
	policies := []Policy{AssignMinCost, AssignNearest}
	for trial := 0; trial < 40; trial++ {
		g, m, _, d := randomParityInstance(rng)
		n := g.N()
		k := 1 + rng.Intn(3)
		configs := enumeratePlacementsDFS(n, k)
		if trial%3 == 2 {
			// Shuffled order: parents are (mostly) unavailable and every
			// configuration takes the full-scan fallback.
			rng.Shuffle(len(configs), func(i, j int) {
				configs[i], configs[j] = configs[j], configs[i]
			})
		}
		load := loads[trial%len(loads)]
		policy := policies[trial%len(policies)]
		e := NewEvaluator(g, m, load, policy)
		sw := NewConfSweep(e, configs)
		got := make([]float64, len(configs))
		want := make([]float64, len(configs))
		sw.Sweep(d, got)
		naiveConfLoop(e, configs, d, want)
		for i := range configs {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%s/%s, %d configs): config %d %v: sweep %v, naive %v",
					trial, load.Name(), policy, len(configs), i, configs[i], got[i], want[i])
			}
		}
		// Empty demand short-circuit.
		sw.Sweep(Demand{}, got)
		naiveConfLoop(e, configs, Demand{}, want)
		for i := range configs {
			if got[i] != want[i] {
				t.Fatalf("trial %d: empty demand config %d: sweep %v, naive %v",
					trial, i, got[i], want[i])
			}
		}
	}
}

// TestConfSweepWorkerCountIndependent pins that chunked fan-out (which
// breaks some parent links at chunk boundaries) returns the exact serial
// result.
func TestConfSweepWorkerCountIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	g, m, _, d := randomParityInstance(rng)
	configs := enumeratePlacementsDFS(g.N(), 3)
	e := NewEvaluator(g, m, Linear{}, AssignMinCost)

	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	serial := make([]float64, len(configs))
	NewConfSweep(e, configs).Sweep(d, serial)

	runtime.GOMAXPROCS(4)
	sw := NewConfSweep(e, configs)
	got := make([]float64, len(configs))
	// Force the parallel path regardless of problem size by sweeping a
	// demand large enough, or simply exercising the kernel directly in
	// chunks of varying size.
	for chunks := 2; chunks <= 5; chunks++ {
		for i := range got {
			got[i] = 0
		}
		C := len(configs)
		step := (C + chunks - 1) / chunks
		for lo := 0; lo < C; lo += step {
			hi := lo + step
			if hi > C {
				hi = C
			}
			sw.separableRange(d, lo, hi, got)
		}
		for i := range got {
			if got[i] != serial[i] {
				t.Fatalf("chunks=%d: config %d: %v != serial %v", chunks, i, got[i], serial[i])
			}
		}
	}
	sw.Sweep(d, got)
	for i := range got {
		if got[i] != serial[i] {
			t.Fatalf("parallel Sweep config %d: %v != serial %v", i, got[i], serial[i])
		}
	}
}

// TestConfSweepAllocationFree pins the steady-state Sweep to zero
// allocations (serial path; the goroutine fan-out of the parallel path
// necessarily allocates).
func TestConfSweepAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins are meaningless under the race detector")
	}
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	rng := rand.New(rand.NewSource(13))
	g, m, _, d := randomParityInstance(rng)
	configs := enumeratePlacementsDFS(g.N(), 3)
	out := make([]float64, len(configs))

	e := NewEvaluator(g, m, Linear{}, AssignMinCost)
	sw := NewConfSweep(e, configs)
	sw.Sweep(d, out)
	if avg := testing.AllocsPerRun(100, func() { sw.Sweep(d, out) }); avg != 0 {
		t.Errorf("separable Sweep: %v allocs/op, want 0", avg)
	}

	eg := NewEvaluator(g, m, Quadratic{}, AssignMinCost)
	swg := NewConfSweep(eg, configs)
	swg.Sweep(d, out) // warm the session pool
	if avg := testing.AllocsPerRun(100, func() { swg.Sweep(d, out) }); avg != 0 {
		t.Errorf("generic Sweep: %v allocs/op, want 0", avg)
	}
}

// TestHeapRouterMatchesNaiveGreedy drives the non-separable router with
// bulky access points (well past heapRouterMinUnits) and many servers, so
// the heap path is exercised, and pins it to the retained per-unit greedy
// reference with exact float equality.
func TestHeapRouterMatchesNaiveGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(509))
	loads := []LoadFunc{Quadratic{}, Power{P: 1.5}, Power{P: 3}}
	for trial := 0; trial < 30; trial++ {
		g, m, _, _ := randomParityInstance(rng)
		n := g.N()
		k := heapRouterMinServers + rng.Intn(n)
		if k > n {
			k = n
		}
		servers := append([]int(nil), rng.Perm(n)[:k]...)
		counts := make(map[int]int)
		for j := 1 + rng.Intn(6); j > 0; j-- {
			counts[rng.Intn(n)] += heapRouterMinUnits + rng.Intn(200)
		}
		// A couple of small pairs keeps the scan path covered too.
		counts[rng.Intn(n)] += 1 + rng.Intn(3)
		d := e2Demand(counts)
		load := loads[trial%len(loads)]
		e := NewEvaluator(g, m, load, AssignMinCost)
		got := e.Access(servers, d)
		want := naiveAccess(e, servers, d)
		if got != want {
			t.Fatalf("trial %d (%s, %d servers, %d requests): Access = %+v, naive = %+v",
				trial, load.Name(), len(servers), d.Total(), got, want)
		}
	}
}

func e2Demand(counts map[int]int) Demand { return DemandFromCounts(counts) }

// TestHeapRouterTieBreak pins the deterministic tie-break on a crafted
// instance where several servers are exactly equidistant: the heap must
// route to the lowest server index, like the scan.
func TestHeapRouterTieBreak(t *testing.T) {
	// Star substrate: every node at distance 1 from node 0, equal
	// strengths, so all servers are exactly tied for every unit.
	n := 12
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, 1, 1)
	}
	m := g.AllPairs()
	e := NewEvaluator(g, m, Quadratic{}, AssignMinCost)
	servers := make([]int, n-1)
	for i := range servers {
		servers[i] = i + 1 // all equidistant from node 0
	}
	d := DemandFromPairs(NodeCount{Node: 0, Count: 64})
	got := e.Access(servers, d)
	want := naiveAccess(e, servers, d)
	if got != want {
		t.Fatalf("tie-break: Access = %+v, naive = %+v", got, want)
	}
}
