// Package core implements the server and configuration model of Sections
// II-C and III of the paper: virtual servers that are not in use, inactive,
// or active; the inactive-server FIFO cache with expiry used by the online
// algorithms; the reconfiguration cost semantics of Examples 1–3; and the
// full configuration vectors enumerated by ONCONF and by the optimal
// offline dynamic program.
package core

import (
	"fmt"
	"sort"
	"strings"
)

// Placement is the set of nodes hosting *active* servers, kept sorted by
// node id. Placements are value-like: operations return new slices and
// never alias their input.
type Placement []int

// NewPlacement returns a sorted, deduplicated placement.
func NewPlacement(nodes ...int) Placement {
	p := append(Placement(nil), nodes...)
	sort.Ints(p)
	out := p[:0]
	for i, v := range p {
		if i == 0 || v != p[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// Len returns the number of active servers.
func (p Placement) Len() int { return len(p) }

// Contains reports whether node v hosts an active server.
func (p Placement) Contains(v int) bool {
	i := sort.SearchInts(p, v)
	return i < len(p) && p[i] == v
}

// With returns a copy of p with node v added (no-op copy if present).
func (p Placement) With(v int) Placement {
	if p.Contains(v) {
		return p.Clone()
	}
	out := make(Placement, 0, len(p)+1)
	i := sort.SearchInts(p, v)
	out = append(out, p[:i]...)
	out = append(out, v)
	out = append(out, p[i:]...)
	return out
}

// Without returns a copy of p with node v removed (no-op copy if absent).
func (p Placement) Without(v int) Placement {
	i := sort.SearchInts(p, v)
	if i >= len(p) || p[i] != v {
		return p.Clone()
	}
	out := make(Placement, 0, len(p)-1)
	out = append(out, p[:i]...)
	out = append(out, p[i+1:]...)
	return out
}

// Moved returns a copy of p with the server at from relocated to to.
func (p Placement) Moved(from, to int) Placement {
	return p.Without(from).With(to)
}

// Clone returns a copy of p.
func (p Placement) Clone() Placement {
	return append(Placement(nil), p...)
}

// Equal reports whether two placements contain the same nodes.
func (p Placement) Equal(q Placement) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Diff returns the nodes entering (in q but not p) and leaving (in p but
// not q) when reconfiguring from p to q. Both outputs are sorted.
func (p Placement) Diff(q Placement) (entering, leaving []int) {
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		switch {
		case p[i] == q[j]:
			i++
			j++
		case p[i] < q[j]:
			leaving = append(leaving, p[i])
			i++
		default:
			entering = append(entering, q[j])
			j++
		}
	}
	leaving = append(leaving, p[i:]...)
	entering = append(entering, q[j:]...)
	return entering, leaving
}

// DiffSize returns the sizes of the two sets Diff would return — how many
// nodes enter and how many leave when reconfiguring from p to q — without
// materialising them. Reconfiguration costs depend only on these counts,
// so hot loops (the work-function algorithm's C² transition matrix) use
// this allocation-free form.
func (p Placement) DiffSize(q Placement) (entering, leaving int) {
	i, j := 0, 0
	for i < len(p) && j < len(q) {
		switch {
		case p[i] == q[j]:
			i++
			j++
		case p[i] < q[j]:
			leaving++
			i++
		default:
			entering++
			j++
		}
	}
	leaving += len(p) - i
	entering += len(q) - j
	return entering, leaving
}

// Key returns a canonical string form usable as a map key, e.g. "1,4,7".
func (p Placement) Key() string {
	var b strings.Builder
	for i, v := range p {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

func (p Placement) String() string { return "[" + p.Key() + "]" }
