package core

import (
	"fmt"
	"strings"

	"repro/internal/cost"
)

// ServerState is the per-node server state from Section II-C.
type ServerState uint8

const (
	// StateNone means the node hosts no server.
	StateNone ServerState = iota
	// StateInactive means the node hosts a stored but idle server (cost Ri
	// per round).
	StateInactive
	// StateActive means the node hosts a serving server (cost Ra per
	// round).
	StateActive
)

func (s ServerState) String() string {
	switch s {
	case StateNone:
		return "-"
	case StateInactive:
		return "i"
	case StateActive:
		return "A"
	default:
		return "?"
	}
}

// Vector is a full configuration γ in the sense of Definition 3.1: for each
// substrate node, whether it hosts no server, an inactive server, or an
// active server. Vectors are the state space of the optimal offline dynamic
// program.
type Vector []ServerState

// NewVector returns the all-empty configuration for n nodes.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a copy.
func (v Vector) Clone() Vector { return append(Vector(nil), v...) }

// Counts returns the number of active and inactive servers.
func (v Vector) Counts() (active, inactive int) {
	for _, s := range v {
		switch s {
		case StateActive:
			active++
		case StateInactive:
			inactive++
		}
	}
	return active, inactive
}

// ActivePlacement extracts the active server placement.
func (v Vector) ActivePlacement() Placement {
	var p Placement
	for i, s := range v {
		if s == StateActive {
			p = append(p, i)
		}
	}
	return p
}

// ActiveMask packs the active nodes into a bitmask (requires ≤ 64 nodes,
// which comfortably covers the instances OPT is tractable on).
func (v Vector) ActiveMask() uint64 {
	var m uint64
	for i, s := range v {
		if s == StateActive {
			m |= 1 << uint(i)
		}
	}
	return m
}

// OccupiedMask packs the nodes hosting any server into a bitmask.
func (v Vector) OccupiedMask() uint64 {
	var m uint64
	for i, s := range v {
		if s != StateNone {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Encode packs the vector into a base-3 integer for use as a map key.
func (v Vector) Encode() uint64 {
	var e uint64
	for i := len(v) - 1; i >= 0; i-- {
		e = e*3 + uint64(v[i])
	}
	return e
}

// DecodeVector reverses Encode for a vector of n nodes.
func DecodeVector(e uint64, n int) Vector {
	v := NewVector(n)
	for i := 0; i < n; i++ {
		v[i] = ServerState(e % 3)
		e /= 3
	}
	return v
}

// RunCost returns Costrun(γ) for one round.
func (v Vector) RunCost(p cost.Params) float64 {
	a, i := v.Counts()
	return p.Run(a, i)
}

// TransitionCost returns Cost(γ1 → γ2), the cheapest reconfiguration
// between two full configurations under the semantics of Examples 1–3:
// nodes keeping a server are free (state flips in place included), vacated
// servers may be migrated into newly occupied nodes at β each (only when
// β < c), and remaining new nodes cost a creation c each. Deleting servers
// is free.
func TransitionCost(p cost.Params, from, to Vector) float64 {
	if len(from) != len(to) {
		panic("core: transition between different-size vectors")
	}
	created, vacated := 0, 0
	for i := range from {
		occF, occT := from[i] != StateNone, to[i] != StateNone
		switch {
		case occT && !occF:
			created++
		case occF && !occT:
			vacated++
		}
	}
	return p.Transition(created, vacated)
}

// TransitionCostMasks is TransitionCost on occupied bitmasks, used in the
// dynamic program's hot loop.
func TransitionCostMasks(p cost.Params, from, to uint64) float64 {
	created := popcount(to &^ from)
	vacated := popcount(from &^ to)
	return p.Transition(created, vacated)
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// EnumerateVectors lists every configuration of n nodes with at most
// maxServers servers in total (active + inactive) and at least minActive
// active servers. The number of such configurations grows as
// Σ n!/(a! i! (n−a−i)!), which is why the paper notes that OPT's complexity
// "is rather high for scenarios with many servers" and evaluates it on
// small line graphs only.
func EnumerateVectors(n, maxServers, minActive int) []Vector {
	if maxServers <= 0 || maxServers > n {
		maxServers = n
	}
	var out []Vector
	cur := NewVector(n)
	var rec func(i, active, total int)
	rec = func(i, active, total int) {
		if i == n {
			if active >= minActive {
				out = append(out, cur.Clone())
			}
			return
		}
		cur[i] = StateNone
		rec(i+1, active, total)
		if total < maxServers {
			cur[i] = StateInactive
			rec(i+1, active, total+1)
			cur[i] = StateActive
			rec(i+1, active+1, total+1)
			cur[i] = StateNone
		}
	}
	rec(0, 0, 0)
	return out
}

// CountVectors returns the number of configurations EnumerateVectors(n,
// maxServers, 0) would produce — Σ_{s=0..maxServers} C(n, s)·2^s, since
// each of the s occupied nodes is either active or inactive — clamped to
// limit+1 as soon as it exceeds limit.
func CountVectors(n, maxServers, limit int) int {
	if maxServers <= 0 || maxServers > n {
		maxServers = n
	}
	total := 1 // the all-empty configuration
	binom := 1
	pow2 := 1
	for s := 1; s <= maxServers; s++ {
		if binom > (limit+1)*s/(n-s+1)+1 {
			return limit + 1
		}
		binom = binom * (n - s + 1) / s
		if pow2 > (limit+1)/2+1 {
			return limit + 1
		}
		pow2 *= 2
		if binom > (limit+1)/pow2+1 {
			return limit + 1
		}
		total += binom * pow2
		if total > limit || total < 0 {
			return limit + 1
		}
	}
	return total
}

// CountPlacements returns Σ_{i=1..maxServers} C(n, i), the number of
// placements EnumeratePlacements would produce, clamped to limit+1 as soon
// as it exceeds limit (so callers can guard before enumerating a space that
// is far too large to materialise).
func CountPlacements(n, maxServers, limit int) int {
	if maxServers <= 0 || maxServers > n {
		maxServers = n
	}
	total := 0
	binom := 1 // C(n, 0)
	for i := 1; i <= maxServers; i++ {
		// C(n, i) = C(n, i-1) · (n-i+1)/i, computed with overflow care.
		if binom > (limit+1)*i/(n-i+1)+1 {
			return limit + 1
		}
		binom = binom * (n - i + 1) / i
		total += binom
		if total > limit {
			return limit + 1
		}
	}
	return total
}

// PlacementSubtreeEnds returns, for each index i into a placement list in
// EnumeratePlacements' DFS preorder, the index one past the last placement
// that has configs[i] as a prefix. Because the enumeration emits a
// placement immediately before recursing into its extensions, every
// prefix's subtree is a contiguous index range [i, ends[i]) — the
// structural fact the hierarchical config-space pruning in internal/online
// is built on (see TestPlacementSubtreeEnds for the property pin).
func PlacementSubtreeEnds(configs []Placement) []int {
	ends := make([]int, len(configs))
	stack := make([]int, 0, 16)
	for i, c := range configs {
		// The stack holds the open prefixes, one per depth: entry at stack
		// position p has length p+1. A placement of length L closes every
		// open prefix of length ≥ L.
		for len(stack) >= len(c) {
			top := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			ends[top] = i
		}
		stack = append(stack, i)
	}
	for _, top := range stack {
		ends[top] = len(configs)
	}
	return ends
}

// EnumeratePlacements lists every non-empty active placement with at most
// maxServers servers, the configuration space tracked by ONCONF (which
// keeps its inactive servers out of the configurations, in the FIFO cache).
func EnumeratePlacements(n, maxServers int) []Placement {
	if maxServers <= 0 || maxServers > n {
		maxServers = n
	}
	var out []Placement
	var cur Placement
	var rec func(next int)
	rec = func(next int) {
		if len(cur) > 0 {
			out = append(out, cur.Clone())
		}
		if len(cur) == maxServers {
			return
		}
		for v := next; v < n; v++ {
			cur = append(cur, v)
			rec(v + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for _, s := range v {
		fmt.Fprint(&b, s)
	}
	b.WriteByte('>')
	return b.String()
}
