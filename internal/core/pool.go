package core

import (
	"fmt"
	"sort"

	"repro/internal/cost"
)

// Delta is the reconfiguration cost of one pool operation, split by cause.
type Delta struct {
	Migration  float64 // β per migrated server
	Creation   float64 // c per freshly created server
	Migrations int
	Creations  int
}

// Total returns the summed reconfiguration cost.
func (d Delta) Total() float64 { return d.Migration + d.Creation }

// Add accumulates another delta.
func (d Delta) Add(o Delta) Delta {
	return Delta{
		Migration:  d.Migration + o.Migration,
		Creation:   d.Creation + o.Creation,
		Migrations: d.Migrations + o.Migrations,
		Creations:  d.Creations + o.Creations,
	}
}

// inactiveEntry is one cached inactive server.
type inactiveEntry struct {
	node int
	born int // epoch in which the server became inactive
}

// Pool owns the virtual servers of one algorithm run: the active placement
// plus the FIFO cache of inactive servers described in Section III-A
// ("Inactive servers are organized in a queue of constant size where the
// oldest server in the queue is the first to be replaced; inactive servers
// in the queue expire after x epochs").
//
// All reconfiguration goes through SwitchTo, which charges costs following
// Examples 1–3 of Section II-C:
//
//   - a node keeping its server is free, as is flipping a server between
//     active and inactive in place;
//   - a new node is filled for free if that node already caches an inactive
//     server, else by migrating a vacated or cached server (β, the source
//     slot empties), else by creating a fresh server (c);
//   - when β ≥ c migration is never used;
//   - servers that stop being active enter the cache (the oldest cached
//     server falls out of use if the cache overflows).
type Pool struct {
	params   Params
	active   Placement
	inactive []inactiveEntry // FIFO: index 0 is the oldest
	epoch    int
}

// Params configure a pool.
type Params struct {
	Costs cost.Params
	// QueueCap is the constant size of the inactive-server cache
	// (simulations in the paper use 3). Zero disables caching.
	QueueCap int
	// Expiry is the number of epochs after which a cached inactive server
	// expires (the paper uses x = 20). Zero or negative means no expiry.
	Expiry int
	// MaxServers is the redundancy bound k = |S|; SwitchTo refuses
	// placements with more active servers. Zero or negative means
	// unbounded.
	MaxServers int
}

// NewPool returns a pool with no servers. Use SwitchTo (or Bootstrap) to
// install the initial configuration.
func NewPool(p Params) *Pool {
	if p.QueueCap < 0 {
		panic("core: negative queue capacity")
	}
	return &Pool{params: p}
}

// Bootstrap installs the initial placement without charging any cost. All
// algorithms in a comparison start from the same initial configuration γ0
// (one server at the network center), so its creation cost is common to
// every strategy and excluded from the ledgers.
func (p *Pool) Bootstrap(active Placement) {
	p.active = active.Clone()
	p.inactive = nil
	p.epoch = 0
}

// Active returns the current placement. The returned value is a copy.
func (p *Pool) Active() Placement { return p.active.Clone() }

// NumActive returns the number of active servers.
func (p *Pool) NumActive() int { return len(p.active) }

// NumInactive returns the number of cached inactive servers.
func (p *Pool) NumInactive() int { return len(p.inactive) }

// InactiveNodes returns the nodes of cached inactive servers, oldest first.
func (p *Pool) InactiveNodes() []int {
	out := make([]int, len(p.inactive))
	for i, e := range p.inactive {
		out[i] = e.node
	}
	return out
}

// Epoch returns the pool's epoch counter.
func (p *Pool) Epoch() int { return p.epoch }

// AdvanceEpoch increments the epoch counter and expires cached servers
// older than the configured expiry.
func (p *Pool) AdvanceEpoch() {
	p.epoch++
	if p.params.Expiry <= 0 {
		return
	}
	keep := p.inactive[:0]
	for _, e := range p.inactive {
		if p.epoch-e.born < p.params.Expiry {
			keep = append(keep, e)
		}
	}
	p.inactive = keep
}

// hasInactiveAt reports whether a cached server sits at node v and returns
// its queue index.
func (p *Pool) hasInactiveAt(v int) (int, bool) {
	for i, e := range p.inactive {
		if e.node == v {
			return i, true
		}
	}
	return -1, false
}

// PredictShape returns the cost SwitchTo would charge and the number of
// cached inactive servers the pool would hold afterwards, for any target
// described only by its *shape*: it enters `entering` new nodes (of which
// `free` already cache an inactive server and activate for free) and
// vacates `leaving` active nodes. Candidate sweeps use this to price whole
// classes of single-change candidates (move/deactivate/add, cached or not)
// with four shape evaluations instead of one placement diff per candidate.
func (p *Pool) PredictShape(entering, leaving, free int) (Delta, int) {
	created := entering - free
	cached := len(p.inactive) - free
	d := p.delta(created, leaving+cached)
	fromLeaving := d.Migrations
	if fromLeaving > leaving {
		fromLeaving = leaving
	}
	cached -= d.Migrations - fromLeaving // cache entries migrated away
	cached += leaving - fromLeaving      // vacated servers entering the cache
	if p.params.QueueCap == 0 {
		cached = 0
	} else if cached > p.params.QueueCap {
		cached = p.params.QueueCap
	}
	return d, cached
}

// shapeOf reduces a concrete target to the (entering, leaving, free)
// arguments of PredictShape.
func (p *Pool) shapeOf(target Placement) (int, int, int) {
	entering, leaving := p.active.Diff(target)
	// Entering nodes that already cache an inactive server activate free.
	free := 0
	for _, v := range entering {
		if _, ok := p.hasInactiveAt(v); ok {
			free++
		}
	}
	return len(entering), len(leaving), free
}

// PredictSwitch returns the cost SwitchTo(target) would charge, without
// changing any state.
func (p *Pool) PredictSwitch(target Placement) Delta {
	d, _ := p.PredictShape(p.shapeOf(target))
	return d
}

// PredictInactiveAfter returns the number of cached inactive servers the
// pool would hold after SwitchTo(target), used by the best-response
// algorithms to predict a candidate's running cost.
func (p *Pool) PredictInactiveAfter(target Placement) int {
	_, cached := p.PredictShape(p.shapeOf(target))
	return cached
}

// delta prices filling `created` slots given `vacated` migrable servers.
func (p *Pool) delta(created, vacated int) Delta {
	if created <= 0 {
		return Delta{}
	}
	migrations := vacated
	if migrations > created {
		migrations = created
	}
	if p.params.Costs.Beta >= p.params.Costs.Create {
		migrations = 0
	}
	creations := created - migrations
	return Delta{
		Migration:  float64(migrations) * p.params.Costs.Beta,
		Creation:   float64(creations) * p.params.Costs.Create,
		Migrations: migrations,
		Creations:  creations,
	}
}

// SwitchTo reconfigures the pool to the target placement and returns the
// cost charged. It returns an error if the target exceeds the server bound
// k or is empty (the service must stay reachable).
func (p *Pool) SwitchTo(target Placement) (Delta, error) {
	if len(target) == 0 {
		return Delta{}, fmt.Errorf("core: refusing to switch to an empty placement")
	}
	if p.params.MaxServers > 0 && len(target) > p.params.MaxServers {
		return Delta{}, fmt.Errorf("core: placement %v exceeds server bound k=%d", target, p.params.MaxServers)
	}
	entering, leaving := p.active.Diff(target)

	// Pass 1: free activations from the cache (Example 1, case 2).
	var needFill []int
	for _, v := range entering {
		if i, ok := p.hasInactiveAt(v); ok {
			p.inactive = append(p.inactive[:i], p.inactive[i+1:]...)
			continue
		}
		needFill = append(needFill, v)
	}

	// Pass 2: migrate vacated servers, then cached servers, oldest first
	// (Example 1 case 3, Example 2 cases 2–3); remaining slots are fresh
	// creations. Vacated servers consumed by migration do not enter the
	// cache; with β ≥ c no migration happens and all vacated servers are
	// cached.
	migrable := len(leaving) + len(p.inactive)
	d := p.delta(len(needFill), migrable)
	consumed := d.Migrations
	// Prefer consuming vacated (previously active) servers before cached
	// ones: a cached server may still activate free later at its own node,
	// a vacated one never can (its node just left the placement).
	fromLeaving := consumed
	if fromLeaving > len(leaving) {
		fromLeaving = len(leaving)
	}
	fromCache := consumed - fromLeaving
	// Drop the oldest cached servers that were migrated away.
	p.inactive = append([]inactiveEntry(nil), p.inactive[fromCache:]...)
	// Cache the vacated servers that were not migrated.
	for _, v := range leaving[fromLeaving:] {
		p.cacheServer(v)
	}
	p.active = target.Clone()
	sort.Ints(p.active)
	return d, nil
}

// cacheServer pushes a newly inactive server; the oldest entry falls out of
// use when the cache is full.
func (p *Pool) cacheServer(node int) {
	if p.params.QueueCap == 0 {
		return
	}
	if len(p.inactive) == p.params.QueueCap {
		p.inactive = p.inactive[1:]
	}
	p.inactive = append(p.inactive, inactiveEntry{node: node, born: p.epoch})
}

// RunCost returns the running cost of one round in the current
// configuration: Ra per active plus Ri per cached inactive server.
func (p *Pool) RunCost() float64 {
	return p.params.Costs.Run(len(p.active), len(p.inactive))
}

// ServerRef is one cached inactive server in a PoolState snapshot.
type ServerRef struct {
	Node int `json:"node"`
	Born int `json:"born"`
}

// PoolState is an exact snapshot of a pool's mutable state: the active
// placement, the inactive FIFO in queue order (oldest first, with birth
// epochs so expiry resumes correctly), and the epoch counter. Params are
// not captured — a snapshot is only meaningful restored into a pool built
// with the identical Params.
type PoolState struct {
	Active   []int       `json:"active"`
	Inactive []ServerRef `json:"inactive,omitempty"`
	Epoch    int         `json:"epoch"`
}

// State snapshots the pool.
func (p *Pool) State() PoolState {
	s := PoolState{Active: append([]int(nil), p.active...), Epoch: p.epoch}
	for _, e := range p.inactive {
		s.Inactive = append(s.Inactive, ServerRef{Node: e.node, Born: e.born})
	}
	return s
}

// Restore reinstalls a snapshot taken from a pool with the same Params.
func (p *Pool) Restore(s PoolState) {
	p.active = append(Placement(nil), s.Active...)
	p.inactive = nil
	for _, e := range s.Inactive {
		p.inactive = append(p.inactive, inactiveEntry{node: e.Node, born: e.Born})
	}
	p.epoch = s.Epoch
}
