package core
