package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

func poolParams() Params {
	return Params{Costs: cost.DefaultParams(), QueueCap: 3, Expiry: 20, MaxServers: 10}
}

func newTestPool(start ...int) *Pool {
	p := NewPool(poolParams())
	p.Bootstrap(NewPlacement(start...))
	return p
}

func TestBootstrapFree(t *testing.T) {
	p := newTestPool(2)
	if !p.Active().Equal(Placement{2}) {
		t.Fatalf("active = %v", p.Active())
	}
	if p.NumInactive() != 0 || p.Epoch() != 0 {
		t.Fatal("bootstrap must start clean")
	}
}

func TestSwitchToCreate(t *testing.T) {
	// Example 1, case 1: no inactive server anywhere, adding a server
	// costs c.
	p := newTestPool(1)
	d, err := p.SwitchTo(NewPlacement(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Creation != 400 || d.Migration != 0 || d.Creations != 1 {
		t.Fatalf("delta = %+v, want one creation at 400", d)
	}
}

func TestSwitchToActivateCachedInPlace(t *testing.T) {
	// Example 1, case 2: the target node already caches an inactive
	// server — activation is free.
	p := newTestPool(1, 4)
	if _, err := p.SwitchTo(NewPlacement(1)); err != nil { // 4 becomes inactive
		t.Fatal(err)
	}
	if p.NumInactive() != 1 {
		t.Fatalf("inactive = %d, want 1", p.NumInactive())
	}
	d, err := p.SwitchTo(NewPlacement(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() != 0 {
		t.Fatalf("reactivating cached server cost %v, want 0", d.Total())
	}
	if p.NumInactive() != 0 {
		t.Fatal("cached server not consumed")
	}
}

func TestSwitchToMigrateCached(t *testing.T) {
	// Example 1, case 3: an inactive server at v5 is migrated to v4 for β;
	// no server remains at v5.
	p := newTestPool(1, 5)
	if _, err := p.SwitchTo(NewPlacement(1)); err != nil { // 5 cached
		t.Fatal(err)
	}
	d, err := p.SwitchTo(NewPlacement(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Migration != 40 || d.Creation != 0 {
		t.Fatalf("delta = %+v, want one migration at 40", d)
	}
	if p.NumInactive() != 0 {
		t.Fatalf("inactive = %d, want 0 (server left v5)", p.NumInactive())
	}
}

func TestSwitchToMigrateActive(t *testing.T) {
	// Example 2, case 3: the active server at v3 is migrated to v4 at β;
	// nothing remains at v3.
	p := newTestPool(1, 2, 3)
	d, err := p.SwitchTo(NewPlacement(1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Migration != 40 || d.Creation != 0 {
		t.Fatalf("delta = %+v, want one migration", d)
	}
	if p.NumInactive() != 0 {
		t.Fatalf("inactive = %d, want 0 (the vacated server was migrated, not cached)", p.NumInactive())
	}
}

func TestSwitchToRemovalFreeAndCached(t *testing.T) {
	// Example 3: removing a server is free; the server becomes inactive.
	p := newTestPool(1, 2, 3)
	d, err := p.SwitchTo(NewPlacement(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	if d.Total() != 0 {
		t.Fatalf("removal cost %v, want 0", d.Total())
	}
	if got := p.InactiveNodes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("inactive nodes = %v, want [2]", got)
	}
}

func TestSwitchToBetaGreaterCNeverMigrates(t *testing.T) {
	pp := poolParams()
	pp.Costs = cost.InvertedParams() // β=400, c=40
	p := NewPool(pp)
	p.Bootstrap(NewPlacement(1, 2))
	d, err := p.SwitchTo(NewPlacement(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if d.Migration != 0 || d.Creation != 40 {
		t.Fatalf("delta = %+v, want creation only", d)
	}
	// The vacated server is cached rather than consumed.
	if got := p.InactiveNodes(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("inactive nodes = %v, want [2]", got)
	}
}

func TestQueueFIFOOverflow(t *testing.T) {
	p := newTestPool(1, 2, 3, 4, 5)
	// Deactivate 4 servers one by one into a queue of capacity 3.
	for _, v := range []int{2, 3, 4, 5} {
		if _, err := p.SwitchTo(p.Active().Without(v)); err != nil {
			t.Fatal(err)
		}
	}
	got := p.InactiveNodes()
	want := []int{3, 4, 5} // 2 (the oldest) fell out of use
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("queue = %v, want %v", got, want)
	}
}

func TestQueueExpiry(t *testing.T) {
	pp := poolParams()
	pp.Expiry = 2
	p := NewPool(pp)
	p.Bootstrap(NewPlacement(1, 2))
	if _, err := p.SwitchTo(NewPlacement(1)); err != nil {
		t.Fatal(err)
	}
	if p.NumInactive() != 1 {
		t.Fatal("expected one cached server")
	}
	p.AdvanceEpoch()
	if p.NumInactive() != 1 {
		t.Fatal("cached server expired too early")
	}
	p.AdvanceEpoch()
	if p.NumInactive() != 0 {
		t.Fatal("cached server did not expire after 2 epochs")
	}
}

func TestQueueNoExpiryWhenDisabled(t *testing.T) {
	pp := poolParams()
	pp.Expiry = 0
	p := NewPool(pp)
	p.Bootstrap(NewPlacement(1, 2))
	if _, err := p.SwitchTo(NewPlacement(1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.AdvanceEpoch()
	}
	if p.NumInactive() != 1 {
		t.Fatal("cached server expired although expiry is disabled")
	}
}

func TestQueueCapZero(t *testing.T) {
	pp := poolParams()
	pp.QueueCap = 0
	p := NewPool(pp)
	p.Bootstrap(NewPlacement(1, 2))
	if _, err := p.SwitchTo(NewPlacement(1)); err != nil {
		t.Fatal(err)
	}
	if p.NumInactive() != 0 {
		t.Fatal("queue capacity 0 must cache nothing")
	}
}

func TestSwitchToRejectsEmptyAndOversized(t *testing.T) {
	p := newTestPool(1)
	if _, err := p.SwitchTo(NewPlacement()); err == nil {
		t.Fatal("empty placement accepted")
	}
	pp := poolParams()
	pp.MaxServers = 2
	p2 := NewPool(pp)
	p2.Bootstrap(NewPlacement(1))
	if _, err := p2.SwitchTo(NewPlacement(1, 2, 3)); err == nil {
		t.Fatal("placement over k accepted")
	}
}

func TestRunCost(t *testing.T) {
	p := newTestPool(1, 2)
	if got := p.RunCost(); got != 5 { // 2 × Ra=2.5
		t.Fatalf("RunCost = %v, want 5", got)
	}
	if _, err := p.SwitchTo(NewPlacement(1)); err != nil {
		t.Fatal(err)
	}
	if got := p.RunCost(); got != 3 { // Ra + Ri = 2.5 + 0.5
		t.Fatalf("RunCost = %v, want 3", got)
	}
}

func TestNegativeQueueCapPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPool(Params{Costs: cost.DefaultParams(), QueueCap: -1})
}

// Property: PredictSwitch always equals the delta SwitchTo then charges,
// and PredictInactiveAfter equals the resulting cache size.
func TestPredictMatchesSwitch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		pp := poolParams()
		if local.Intn(2) == 0 {
			pp.Costs = cost.InvertedParams()
		}
		pp.QueueCap = local.Intn(4)
		pool := NewPool(pp)
		pool.Bootstrap(randomPlacement(local, 10))
		// Random walk of switches; prediction must match at every step.
		for step := 0; step < 8; step++ {
			target := randomPlacement(local, 10)
			predicted := pool.PredictSwitch(target)
			predictedInactive := pool.PredictInactiveAfter(target)
			actual, err := pool.SwitchTo(target)
			if err != nil {
				return false
			}
			if predicted != actual {
				return false
			}
			if predictedInactive != pool.NumInactive() {
				return false
			}
			if local.Intn(3) == 0 {
				pool.AdvanceEpoch()
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			vs[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func randomPlacement(rng *rand.Rand, n int) Placement {
	var nodes []int
	for v := 0; v < n; v++ {
		if rng.Intn(3) == 0 {
			nodes = append(nodes, v)
		}
	}
	if len(nodes) == 0 {
		nodes = append(nodes, rng.Intn(n))
	}
	return NewPlacement(nodes...)
}

// Property: a round-trip switch A→B→A never charges more than two full
// rebuilds, and switching to the current placement is free.
func TestSwitchIdempotentAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 50; trial++ {
		pool := NewPool(poolParams())
		a := randomPlacement(rng, 8)
		b := randomPlacement(rng, 8)
		pool.Bootstrap(a)
		if d, err := pool.SwitchTo(a); err != nil || d.Total() != 0 {
			t.Fatalf("self-switch cost %v err %v", d, err)
		}
		d1, err := pool.SwitchTo(b)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := pool.SwitchTo(a)
		if err != nil {
			t.Fatal(err)
		}
		bound := float64(len(a)+len(b)) * 400
		if d1.Total()+d2.Total() > bound {
			t.Fatalf("round trip cost %v exceeds bound %v", d1.Total()+d2.Total(), bound)
		}
	}
}
