package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
)

// ExamplePool walks through the reconfiguration semantics of the paper's
// Examples 1–3: free deactivation into the cache, free in-place
// reactivation, β-priced migration and c-priced creation.
func ExamplePool() {
	pool := core.NewPool(core.Params{
		Costs:    cost.DefaultParams(), // β=40, c=400
		QueueCap: 3,
		Expiry:   20,
	})
	pool.Bootstrap(core.NewPlacement(1, 2, 3))

	// Removing the server at node 2 is free; it enters the inactive cache.
	d, _ := pool.SwitchTo(core.NewPlacement(1, 3))
	fmt.Printf("deactivate:  cost %v, cached %d\n", d.Total(), pool.NumInactive())

	// Bringing node 2 back activates the cached server in place: free.
	d, _ = pool.SwitchTo(core.NewPlacement(1, 2, 3))
	fmt.Printf("reactivate:  cost %v\n", d.Total())

	// Moving the server at node 3 to the empty node 7 costs β.
	d, _ = pool.SwitchTo(core.NewPlacement(1, 2, 7))
	fmt.Printf("migrate:     cost %v\n", d.Total())

	// A fourth server with nothing to migrate must be created: c.
	d, _ = pool.SwitchTo(core.NewPlacement(1, 2, 7, 9))
	fmt.Printf("create:      cost %v\n", d.Total())

	// Output:
	// deactivate:  cost 0, cached 1
	// reactivate:  cost 0
	// migrate:     cost 40
	// create:      cost 400
}

// ExampleTransitionCost prices a full configuration change in one shot.
func ExampleTransitionCost() {
	params := cost.DefaultParams()
	from := core.Vector{core.StateActive, core.StateActive, core.StateNone, core.StateNone}
	to := core.Vector{core.StateActive, core.StateNone, core.StateActive, core.StateActive}
	// One server vacates node 1 and can be migrated (β=40); the second new
	// node needs a fresh server (c=400).
	fmt.Println(core.TransitionCost(params, from, to))
	// Output: 440
}
