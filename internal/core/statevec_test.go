package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/cost"
)

func TestVectorCounts(t *testing.T) {
	v := Vector{StateActive, StateNone, StateInactive, StateActive}
	a, i := v.Counts()
	if a != 2 || i != 1 {
		t.Fatalf("Counts = %d,%d, want 2,1", a, i)
	}
}

func TestVectorPlacementAndMasks(t *testing.T) {
	v := Vector{StateActive, StateNone, StateInactive, StateActive}
	if !v.ActivePlacement().Equal(Placement{0, 3}) {
		t.Fatalf("ActivePlacement = %v", v.ActivePlacement())
	}
	if v.ActiveMask() != 0b1001 {
		t.Fatalf("ActiveMask = %b", v.ActiveMask())
	}
	if v.OccupiedMask() != 0b1101 {
		t.Fatalf("OccupiedMask = %b", v.OccupiedMask())
	}
}

func TestVectorEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 1 + local.Intn(12)
		v := NewVector(n)
		for i := range v {
			v[i] = ServerState(local.Intn(3))
		}
		return reflect.DeepEqual(DecodeVector(v.Encode(), n), v)
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			vs[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestVectorRunCost(t *testing.T) {
	p := cost.DefaultParams() // Ra=2.5, Ri=0.5
	v := Vector{StateActive, StateInactive, StateInactive}
	if got := v.RunCost(p); got != 3.5 {
		t.Fatalf("RunCost = %v, want 3.5", got)
	}
}

func TestTransitionCostExamples(t *testing.T) {
	p := cost.DefaultParams() // β=40, c=400
	mk := func(states ...ServerState) Vector { return Vector(states) }
	const (
		N = StateNone
		I = StateInactive
		A = StateActive
	)
	cases := []struct {
		name     string
		from, to Vector
		want     float64
	}{
		{"no change", mk(A, N, I), mk(A, N, I), 0},
		{"flip in place free", mk(A, I, N), mk(I, A, N), 0},
		{"delete free", mk(A, A, N), mk(A, N, N), 0},
		{"create one", mk(A, N, N), mk(A, A, N), 400},
		{"migrate one", mk(A, A, N), mk(A, N, A), 40},
		{"migrate inactive", mk(A, I, N), mk(A, N, A), 40},
		{"two new one vacated", mk(A, A, N, N), mk(A, N, A, A), 440},
	}
	for _, c := range cases {
		if got := TransitionCost(p, c.from, c.to); got != c.want {
			t.Errorf("%s: TransitionCost = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestTransitionCostMasksAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	p := cost.DefaultParams()
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(10)
		from, to := NewVector(n), NewVector(n)
		for i := 0; i < n; i++ {
			from[i] = ServerState(rng.Intn(3))
			to[i] = ServerState(rng.Intn(3))
		}
		if TransitionCost(p, from, to) != TransitionCostMasks(p, from.OccupiedMask(), to.OccupiedMask()) {
			t.Fatalf("mask and vector transition costs disagree for %v -> %v", from, to)
		}
	}
}

func TestTransitionCostSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	TransitionCost(cost.DefaultParams(), NewVector(2), NewVector(3))
}

func TestEnumerateVectorsCountsSmall(t *testing.T) {
	// n=2, k=2: states per node {N,I,A} minus total-servers > 2 (none) =
	// 9 states; with minActive=1: drop the 4 with no active = 5.
	all := EnumerateVectors(2, 2, 0)
	if len(all) != 9 {
		t.Fatalf("EnumerateVectors(2,2,0) = %d states, want 9", len(all))
	}
	act := EnumerateVectors(2, 2, 1)
	if len(act) != 5 {
		t.Fatalf("EnumerateVectors(2,2,1) = %d states, want 5", len(act))
	}
}

func TestEnumerateVectorsServerBound(t *testing.T) {
	for _, v := range EnumerateVectors(4, 2, 0) {
		a, i := v.Counts()
		if a+i > 2 {
			t.Fatalf("state %v exceeds server bound", v)
		}
	}
	// Full space for n=3, unbounded k: 3^3 = 27.
	if got := len(EnumerateVectors(3, 0, 0)); got != 27 {
		t.Fatalf("full enumeration = %d, want 27", got)
	}
}

func TestEnumerateVectorsUnique(t *testing.T) {
	seen := map[uint64]bool{}
	for _, v := range EnumerateVectors(5, 3, 0) {
		e := v.Encode()
		if seen[e] {
			t.Fatalf("duplicate state %v", v)
		}
		seen[e] = true
	}
}

func TestEnumeratePlacements(t *testing.T) {
	// n=3, k=2: C(3,1)+C(3,2) = 3+3 = 6 placements.
	ps := EnumeratePlacements(3, 2)
	if len(ps) != 6 {
		t.Fatalf("EnumeratePlacements(3,2) = %d, want 6", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if p.Len() == 0 || p.Len() > 2 {
			t.Fatalf("placement %v out of bounds", p)
		}
		if seen[p.Key()] {
			t.Fatalf("duplicate placement %v", p)
		}
		seen[p.Key()] = true
	}
	// Unbounded k covers all non-empty subsets: 2^3 − 1 = 7.
	if got := len(EnumeratePlacements(3, 0)); got != 7 {
		t.Fatalf("unbounded = %d, want 7", got)
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{StateActive, StateNone, StateInactive}
	if v.String() != "<A-i>" {
		t.Fatalf("String = %q", v.String())
	}
	if ServerState(9).String() != "?" {
		t.Fatal("unknown state must render as ?")
	}
}
