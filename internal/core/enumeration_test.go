package core

import (
	"sort"
	"testing"
)

// TestCountPlacementsBoundaries pins the guard arithmetic of
// CountPlacements at the edges the online algorithms' Reset guards depend
// on: a limit that is exactly hit must pass (the clamp triggers strictly
// above the limit), k = n and k = 0 (unbounded) must count every
// non-empty subset, and a single-node substrate has exactly one placement.
func TestCountPlacementsBoundaries(t *testing.T) {
	const big = 1 << 40
	for n := 1; n <= 10; n++ {
		for k := 0; k <= n; k++ {
			want := len(EnumeratePlacements(n, k))
			if got := CountPlacements(n, k, big); got != want {
				t.Fatalf("CountPlacements(%d, %d) = %d, want %d", n, k, got, want)
			}
			// Limit exactly equal to the count: no clamp.
			if got := CountPlacements(n, k, want); got != want {
				t.Fatalf("CountPlacements(%d, %d, limit=count) = %d, want %d", n, k, got, want)
			}
			// One below: clamped to limit+1 == count.
			if want > 1 {
				if got := CountPlacements(n, k, want-1); got != want {
					t.Fatalf("CountPlacements(%d, %d, limit=count-1) = %d, want clamp %d", n, k, got, want)
				}
			}
		}
	}
	if got := CountPlacements(1, 1, big); got != 1 {
		t.Fatalf("single-node count = %d, want 1", got)
	}
	// k = n and unbounded k agree: all 2^n − 1 non-empty subsets.
	if a, b := CountPlacements(12, 12, big), CountPlacements(12, 0, big); a != b || a != 1<<12-1 {
		t.Fatalf("k=n count %d, unbounded %d, want %d", a, b, 1<<12-1)
	}
	// A clamp on a space far over the limit must not overflow.
	if got := CountPlacements(500, 250, 1<<16); got != 1<<16+1 {
		t.Fatalf("huge-space clamp = %d, want %d", got, 1<<16+1)
	}
}

// TestPlacementSubtreeEnds pins the structural property the hierarchical
// config-space pruning is built on: EnumeratePlacements emits placements
// in DFS preorder over the parent-prefix tree, so for every index i the
// placements with configs[i] as a prefix are exactly the contiguous range
// [i, ends[i]).
func TestPlacementSubtreeEnds(t *testing.T) {
	cases := []struct{ n, k int }{
		{1, 1}, {3, 2}, {5, 5}, {6, 0}, {7, 3}, {9, 4},
	}
	for _, tc := range cases {
		configs := EnumeratePlacements(tc.n, tc.k)
		ends := PlacementSubtreeEnds(configs)
		if len(ends) != len(configs) {
			t.Fatalf("n=%d k=%d: %d ends for %d configs", tc.n, tc.k, len(ends), len(configs))
		}
		for i, c := range configs {
			if ends[i] <= i || ends[i] > len(configs) {
				t.Fatalf("n=%d k=%d: ends[%d] = %d out of range", tc.n, tc.k, i, ends[i])
			}
			for j := range configs {
				inRange := j >= i && j < ends[i]
				if hasPrefix(configs[j], c) != inRange {
					t.Fatalf("n=%d k=%d: config %v (index %d) vs prefix %v (index %d, end %d): contiguity violated",
						tc.n, tc.k, configs[j], j, c, i, ends[i])
				}
			}
		}
		// The preorder is also lexicographic on the node sequences, which
		// the pruning's cluster grouping relies on implicitly.
		if !sort.SliceIsSorted(configs, func(a, b int) bool {
			return lexLess(configs[a], configs[b])
		}) {
			t.Fatalf("n=%d k=%d: enumeration is not in lexicographic DFS order", tc.n, tc.k)
		}
	}
}

func hasPrefix(c, p Placement) bool {
	if len(c) < len(p) {
		return false
	}
	for i := range p {
		if c[i] != p[i] {
			return false
		}
	}
	return true
}

func lexLess(a, b Placement) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
