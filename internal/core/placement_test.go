package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewPlacementSortsAndDedups(t *testing.T) {
	p := NewPlacement(5, 1, 3, 1, 5)
	want := Placement{1, 3, 5}
	if !p.Equal(want) {
		t.Fatalf("got %v, want %v", p, want)
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d, want 3", p.Len())
	}
}

func TestPlacementContains(t *testing.T) {
	p := NewPlacement(2, 4, 6)
	for _, v := range []int{2, 4, 6} {
		if !p.Contains(v) {
			t.Errorf("Contains(%d) = false", v)
		}
	}
	for _, v := range []int{1, 3, 5, 7} {
		if p.Contains(v) {
			t.Errorf("Contains(%d) = true", v)
		}
	}
}

func TestPlacementWithWithout(t *testing.T) {
	p := NewPlacement(1, 3)
	q := p.With(2)
	if !q.Equal(Placement{1, 2, 3}) {
		t.Fatalf("With(2) = %v", q)
	}
	if !p.Equal(Placement{1, 3}) {
		t.Fatal("With mutated receiver")
	}
	r := q.Without(1)
	if !r.Equal(Placement{2, 3}) {
		t.Fatalf("Without(1) = %v", r)
	}
	if !q.With(3).Equal(q) {
		t.Fatal("With(existing) changed placement")
	}
	if !q.Without(9).Equal(q) {
		t.Fatal("Without(absent) changed placement")
	}
}

func TestPlacementMoved(t *testing.T) {
	p := NewPlacement(1, 3)
	if got := p.Moved(1, 7); !got.Equal(Placement{3, 7}) {
		t.Fatalf("Moved = %v", got)
	}
}

func TestPlacementDiff(t *testing.T) {
	p := NewPlacement(1, 2, 5)
	q := NewPlacement(2, 3, 5, 7)
	entering, leaving := p.Diff(q)
	if !reflect.DeepEqual(entering, []int{3, 7}) {
		t.Fatalf("entering = %v, want [3 7]", entering)
	}
	if !reflect.DeepEqual(leaving, []int{1}) {
		t.Fatalf("leaving = %v, want [1]", leaving)
	}
	e2, l2 := p.Diff(p)
	if len(e2) != 0 || len(l2) != 0 {
		t.Fatal("self-diff not empty")
	}
}

func TestPlacementKeyString(t *testing.T) {
	p := NewPlacement(4, 1, 7)
	if p.Key() != "1,4,7" {
		t.Fatalf("Key = %q", p.Key())
	}
	if p.String() != "[1,4,7]" {
		t.Fatalf("String = %q", p.String())
	}
	if NewPlacement().Key() != "" {
		t.Fatal("empty key not empty")
	}
}

// Property: Diff is consistent with With/Without reconstruction:
// p plus entering minus leaving equals q.
func TestPlacementDiffReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		mk := func() Placement {
			var nodes []int
			for v := 0; v < 12; v++ {
				if local.Intn(2) == 0 {
					nodes = append(nodes, v)
				}
			}
			return NewPlacement(nodes...)
		}
		p, q := mk(), mk()
		entering, leaving := p.Diff(q)
		r := p.Clone()
		for _, v := range leaving {
			r = r.Without(v)
		}
		for _, v := range entering {
			r = r.With(v)
		}
		if !r.Equal(q) {
			return false
		}
		// Diff outputs must be sorted and disjoint from the intersection.
		if !sort.IntsAreSorted(entering) || !sort.IntsAreSorted(leaving) {
			return false
		}
		for _, v := range entering {
			if p.Contains(v) || !q.Contains(v) {
				return false
			}
		}
		for _, v := range leaving {
			if !p.Contains(v) || q.Contains(v) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			vs[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}
