// Package maprange flags `for range` loops over maps whose bodies are
// sensitive to iteration order. Go randomizes map iteration, so a map
// range that appends to a slice, accumulates floats (or concatenates
// strings), or writes to an output sink produces a different result on
// a different run — exactly the silent nondeterminism that would break
// this repo's byte-identical-stdout and bit-identical-ledger contracts.
//
// Order-insensitive bodies (integer counters, min/max, writes into
// another map, per-key work with no shared accumulator) are not
// flagged. Two accumulation escapes are recognized:
//
//   - ranging over a sorted key slice instead of the map (the canonical
//     fix) is never flagged — only direct map ranges are inspected;
//   - appending into a slice that is visibly sorted after the loop in
//     the same block (sort.Slice(x, …), slices.Sort(x), …) is allowed,
//     since the sort erases the arrival order.
//
// Anything else that is order-safe for reasons the analyzer cannot see
// takes //repcheck:allow-maprange <reason>.
package maprange

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the maprange pass.
var Analyzer = &analysis.Analyzer{
	Name: "maprange",
	Doc: "flags map ranges whose body depends on iteration order " +
		"(slice appends, float sums, output writes); range over sorted keys instead",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// Walk blocks so each range statement knows what follows it in
		// its enclosing block (for the sorted-after escape).
		ast.Inspect(f, func(n ast.Node) bool {
			stmts := blockStmts(n)
			if stmts == nil {
				return true
			}
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				checkBody(pass, rs, stmts[i+1:])
			}
			return true
		})
	}
	return nil
}

// blockStmts returns the statement list of a block-like node.
func blockStmts(n ast.Node) []ast.Stmt {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List
	case *ast.CaseClause:
		return n.Body
	case *ast.CommClause:
		return n.Body
	}
	return nil
}

// checkBody inspects one map-range body; rest is what follows the loop
// in its enclosing block.
func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	sinkReported := false
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rs, n, rest)
		case *ast.CallExpr:
			if name, ok := sinkCall(pass, n); ok && !sinkReported {
				sinkReported = true
				pass.Reportf(rs.For,
					"range over map writes to %s inside the loop; iteration order is random — "+
						"range over sorted keys first", name)
				return false
			}
		}
		return true
	})
}

// checkAssign flags order-sensitive accumulation in one assignment.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, as *ast.AssignStmt, rest []ast.Stmt) {
	// x op= v with a float or string target declared outside the loop.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			t := pass.TypeOf(lhs)
			if t == nil || declaredInside(pass, rs, lhs) {
				continue
			}
			switch b := t.Underlying().(type) {
			case *types.Basic:
				if b.Info()&types.IsFloat != 0 {
					pass.Reportf(rs.For,
						"range over map accumulates %s into a float; float addition is not associative, "+
							"so the sum depends on random iteration order — range over sorted keys",
						types.ExprString(lhs))
				} else if b.Info()&types.IsString != 0 && as.Tok == token.ADD_ASSIGN {
					pass.Reportf(rs.For,
						"range over map concatenates into string %s; iteration order is random — "+
							"range over sorted keys", types.ExprString(lhs))
				}
			}
		}
	case token.ASSIGN, token.DEFINE:
		// x = append(x, …) growing a slice declared outside the loop.
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			lhs := as.Lhs[i]
			if declaredInside(pass, rs, lhs) {
				continue
			}
			if sortedAfter(pass, lhs, rest) {
				continue
			}
			pass.Reportf(rs.For,
				"range over map appends to %s; element order follows random map iteration — "+
					"range over sorted keys (or sort %s after the loop)",
				types.ExprString(lhs), types.ExprString(lhs))
		}
	}
}

// declaredInside reports whether the root object of expr is declared
// within the range statement (a per-iteration local is order-safe).
func declaredInside(pass *analysis.Pass, rs *ast.RangeStmt, expr ast.Expr) bool {
	id, ok := rootIdent(expr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= rs.Pos() && obj.Pos() < rs.End()
}

// rootIdent digs the base identifier out of selector/index chains.
// Selector chains (s.f) resolve to the root variable so storage reached
// through a receiver still counts as outside the loop.
func rootIdent(expr ast.Expr) (*ast.Ident, bool) {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e, true
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil, false
		}
	}
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sinkCall reports whether call writes to an ordered output: fmt
// printing, Write/Encode-style methods, or testing log/fail methods
// (test output order is part of the byte-identical-stdout story for
// verbose runs, and t.Fatalf in a map range fails on a random entry).
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	// Package function: fmt.Printf / fmt.Fprintln / …
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && strings.HasPrefix(name, "Print") ||
				pn.Imported().Path() == "fmt" && strings.HasPrefix(name, "Fprint") {
				return "fmt." + name, true
			}
			return "", false
		}
	}
	// Method sinks by name: encoders, writers, and testing.T/B logging.
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode", "EncodeToken":
		return "(…)." + name, true
	case "Error", "Errorf", "Fatal", "Fatalf", "Log", "Logf", "Skip", "Skipf":
		if recvFromTesting(pass, sel) {
			return "t." + name, true
		}
	case "Run":
		if recvFromTesting(pass, sel) {
			return "t.Run", true
		}
	}
	return "", false
}

// recvFromTesting reports whether sel's receiver comes from package
// testing (*testing.T, *testing.B, *testing.F).
func recvFromTesting(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "testing"
}

// sortedAfter reports whether a sort call over expr follows the loop in
// the same block.
func sortedAfter(pass *analysis.Pass, expr ast.Expr, rest []ast.Stmt) bool {
	want := types.ExprString(expr)
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			switch pn.Imported().Path() {
			case "sort", "slices":
			default:
				return true
			}
			switch sel.Sel.Name {
			case "Sort", "Stable", "Slice", "SliceStable",
				"SortFunc", "SortStableFunc", "Ints", "Strings", "Float64s":
			default:
				return true
			}
			for _, arg := range call.Args {
				if types.ExprString(arg) == want {
					found = true
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
