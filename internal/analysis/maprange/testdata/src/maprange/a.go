// Fixture for the maprange analyzer: map ranges that append, accumulate
// floats/strings, or write to a sink are findings; order-insensitive
// bodies and the two recognized escapes (sorted key slices, sort after
// the loop) are not.
package maprange

import (
	"fmt"
	"sort"
	"testing"
)

func appendsKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want "appends to keys"
		keys = append(keys, k)
	}
	return keys
}

func sumsFloats(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "accumulates total into a float"
		total += v
	}
	return total
}

func concatenates(m map[string]int) string {
	s := ""
	for k := range m { // want "concatenates into string s"
		s += k
	}
	return s
}

func printsEntries(m map[string]int) {
	for k, v := range m { // want "writes to fmt.Println inside the loop"
		fmt.Println(k, v)
	}
}

func failsOnRandomEntry(t *testing.T, m map[string]int) {
	for k, v := range m { // want "writes to t.Errorf inside the loop"
		if v < 0 {
			t.Errorf("negative count for %s", k)
		}
	}
}

// The canonical fix: collect keys (sorted after the loop — the escape),
// then range the sorted slice. Only direct map ranges are inspected, so
// neither loop is flagged.
func valuesInKeyOrder(m map[string]int) []int {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var vals []int
	for _, k := range keys {
		vals = append(vals, m[k])
	}
	return vals
}

// sort.Slice with a comparator is recognized too.
func sortSliceAfter(m map[int]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// Integer accumulation commutes exactly: order-insensitive, no finding.
func countsInts(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Writing into another map is order-insensitive.
func inverts(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// A per-iteration local never carries order across iterations.
func perIterationLocal(m map[string]int) int {
	longest := 0
	for k := range m {
		var parts []byte
		parts = append(parts, k...)
		if len(parts) > longest {
			longest = len(parts)
		}
	}
	return longest
}

// A justified suppression keeps an accumulation the analyzer cannot see
// is safe.
func suppressed(m map[string]float64) float64 {
	total := 0.0
	//repcheck:allow-maprange fixture: the values are exact powers of two, so the sum commutes
	for _, v := range m {
		total += v
	}
	return total
}
