package maprange_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maprange"
)

func TestMaprange(t *testing.T) {
	analysistest.Run(t, maprange.Analyzer, "maprange")
}
