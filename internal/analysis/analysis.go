// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects the
// type-checked syntax of one package and reports Diagnostics. The repo
// builds offline (no module proxy), so vendoring x/tools is not an
// option; this package keeps the same shape — Analyzer with a Run
// function over a Pass — so the repcheck analyzers could be ported to
// the real framework by swapping imports.
//
// The analyzers in the subpackages machine-enforce the contracts every
// speedup since PR 1 is sold on: seed-derived RNG (detrand), the
// graph.Metric.Row borrow discipline (rowborrow), map-iteration-order
// independence of anything that feeds an output or a float sum
// (maprange), and full-precision float encoding on the output paths
// (floatfmt). See ANALYSIS.md at the repo root for the contract each
// one enforces and how to suppress a finding with justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in the
	// //repcheck:allow-<Directive> suppression comments.
	Name string

	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string

	// Directive is the suffix accepted in //repcheck:allow-<Directive>
	// comments. Defaults to Name when empty (detrand uses "wallclock").
	Directive string

	// Run inspects one package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// DirectiveName returns the suppression-directive suffix.
func (a *Analyzer) DirectiveName() string {
	if a.Directive != "" {
		return a.Directive
	}
	return a.Name
}

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// A Diagnostic is one finding, positioned at Pos.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.TypesInfo.TypeOf(e) }

// Run applies the analyzer to one package and returns its findings with
// //repcheck:allow-<directive> suppressions already filtered out.
// Suppressed findings whose directive carries no justification text are
// converted into findings themselves: an allowlist entry must say why.
func Run(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	pass := &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	dirs := collectDirectives(fset, files)
	var out []Diagnostic
	for _, d := range pass.diags {
		if dir, ok := dirs.lookup(a.DirectiveName(), d.Pos); ok {
			if dir.reason == "" {
				out = append(out, Diagnostic{
					Analyzer: a.Name,
					Pos:      dir.pos,
					Message: fmt.Sprintf(
						"//repcheck:allow-%s needs a justification (say why the contract does not apply here)",
						a.DirectiveName()),
				})
			}
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out, nil
}
