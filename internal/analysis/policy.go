package analysis

import "strings"

// DeterministicPackages lists the module packages whose results are
// contractually seed-derived: everything the parity tests pin
// bit-identical. detrand checks these packages completely, test files
// included (the parity tests ARE the contract, so a wall-clock read in
// one is as much a bug as in the kernel it pins).
//
// The wall-clock-by-design layers — the runner pool (deadlines,
// heartbeats, backoff jitter), the serving front (admission timestamps,
// latency percentiles) and the CLIs (progress logs) — are still
// checked in their non-test files, where every wall-clock read must
// carry a //repcheck:allow-wallclock justification; their test files
// are exempt (tests of wall-clock machinery are wall-clock by nature).
var DeterministicPackages = map[string]bool{
	"repro/internal/core":              true,
	"repro/internal/cost":              true,
	"repro/internal/graph":             true,
	"repro/internal/graph/gen":         true,
	"repro/internal/graph/cluster":     true,
	"repro/internal/offline":           true,
	"repro/internal/online":            true,
	"repro/internal/sim":               true,
	"repro/internal/stats":             true,
	"repro/internal/topo":              true,
	"repro/internal/trace":             true,
	"repro/internal/workload":          true,
	"repro/internal/workload/scenario": true,
	"repro/internal/experiments":       true,
}

// OutputPathPackages lists the packages whose writes feed a
// byte-parity contract: figure tables and partials (trace) and the
// served ledger/metrics JSON (serve). floatfmt applies here.
var OutputPathPackages = map[string]bool{
	"repro/internal/trace": true,
	"repro/internal/serve": true,
}

// InScope reports whether a diagnostic from the named analyzer applies
// to filename inside pkgPath (the base import path, bracket-free).
// rowborrow and maprange are global: the borrow contract and
// map-iteration-order independence bind every layer, tests included.
func InScope(analyzer, pkgPath, filename string) bool {
	isTest := strings.HasSuffix(filename, "_test.go")
	switch analyzer {
	case "detrand":
		if DeterministicPackages[pkgPath] {
			return true
		}
		return !isTest
	case "floatfmt":
		return OutputPathPackages[pkgPath] && !isTest
	default:
		return true
	}
}
