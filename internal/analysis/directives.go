package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowPrefix introduces a suppression comment. The full form is
//
//	//repcheck:allow-<directive> <justification>
//
// placed either on the offending line or on the line immediately above
// it. The justification is mandatory: Run turns a bare directive into a
// finding of its own.
const allowPrefix = "//repcheck:allow-"

type directive struct {
	name   string
	reason string
	pos    token.Position
}

// directiveIndex maps file → line → directives attached to that line. A
// directive on its own line also attaches to the next line, so it can
// sit above the statement it justifies.
type directiveIndex map[string]map[int][]directive

func (idx directiveIndex) lookup(name string, pos token.Position) (directive, bool) {
	for _, d := range idx[pos.Filename][pos.Line] {
		if d.name == name {
			return d, true
		}
	}
	return directive{}, false
}

// collectDirectives scans every comment in files for allow directives.
func collectDirectives(fset *token.FileSet, files []*ast.File) directiveIndex {
	idx := make(directiveIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				rest := text[len(allowPrefix):]
				name := rest
				reason := ""
				if i := strings.IndexAny(rest, " \t"); i >= 0 {
					name, reason = rest[:i], strings.TrimSpace(rest[i+1:])
				}
				pos := fset.Position(c.Pos())
				d := directive{name: name, reason: reason, pos: pos}
				byLine := idx[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]directive)
					idx[pos.Filename] = byLine
				}
				// Attach to the directive's own line and to the next
				// line, covering both trailing and standalone comments.
				byLine[pos.Line] = append(byLine[pos.Line], d)
				byLine[pos.Line+1] = append(byLine[pos.Line+1], d)
			}
		}
	}
	return idx
}
