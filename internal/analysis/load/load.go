// Package load type-checks the module's packages for the repcheck
// analyzers without depending on golang.org/x/tools/go/packages (the
// repo builds offline). It shells out to `go list -test -export -deps
// -json` for the package graph, type-checks every module package from
// source with go/parser + go/types, and imports out-of-module
// dependencies (the standard library) from the compiler export data the
// go command already produced — the same mechanism `go vet` drivers
// use.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package of the module.
type Package struct {
	// ImportPath as go list reports it; test variants keep their
	// bracketed form, e.g. "repro/internal/trace [repro/internal/trace.test]".
	ImportPath string
	// BasePath is ImportPath with any test-variant bracket stripped.
	BasePath string
	Name     string
	Dir      string
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
}

// listPackage mirrors the subset of `go list -json` fields we consume.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	ForTest    string
	Standard   bool
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Result is the loaded module: the packages to analyze (in dependency
// order) plus the shared FileSet.
type Result struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Load lists patterns (plus their test variants and dependencies) in
// dir and type-checks every package that belongs to the enclosing
// module. Generated test mains (*.test) are skipped; when a package has
// an in-package test variant, the variant is analyzed instead of the
// plain compile so _test.go files are covered without duplicating
// diagnostics for the shared sources.
func Load(dir string, patterns ...string) (*Result, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := golist(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := make(map[string]string) // import path → export data file
	inModule := make(map[string]*listPackage)
	var modulePaths []string
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module == nil || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if strings.HasSuffix(p.ImportPath, ".test") {
			continue // generated test main
		}
		if _, dup := inModule[p.ImportPath]; !dup {
			inModule[p.ImportPath] = p
			modulePaths = append(modulePaths, p.ImportPath)
		}
	}

	// Prefer the test variant over the plain compile of the same package.
	shadowed := make(map[string]bool)
	for _, path := range modulePaths {
		if ft := inModule[path].ForTest; ft != "" && strings.Contains(path, " [") {
			shadowed[ft] = true
		}
	}

	ld := &loader{
		fset:     token.NewFileSet(),
		exports:  exports,
		inModule: inModule,
		typed:    make(map[string]*Package),
	}
	ld.gc = importer.ForCompiler(ld.fset, "gc", ld.lookupExport)

	sort.Strings(modulePaths)
	res := &Result{Fset: ld.fset}
	for _, path := range modulePaths {
		if shadowed[path] {
			continue
		}
		pkg, err := ld.typecheck(path, nil)
		if err != nil {
			return nil, err
		}
		res.Packages = append(res.Packages, pkg)
	}
	return res, nil
}

type loader struct {
	fset     *token.FileSet
	exports  map[string]string
	inModule map[string]*listPackage
	typed    map[string]*Package
	gc       types.Importer
}

// lookupExport feeds compiler export data to the gc importer.
func (ld *loader) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := ld.exports[path]
	if !ok {
		return nil, fmt.Errorf("load: no export data for %q", path)
	}
	return os.Open(file)
}

// typecheck parses and checks one module package from source. The stack
// tracks the in-progress chain for cycle reporting.
func (ld *loader) typecheck(path string, stack []string) (*Package, error) {
	if pkg, ok := ld.typed[path]; ok {
		return pkg, nil
	}
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("load: import cycle: %s", strings.Join(append(stack, path), " → "))
		}
	}
	lp, ok := ld.inModule[path]
	if !ok {
		return nil, fmt.Errorf("load: %q is not a module package", path)
	}

	var files []*ast.File
	for _, name := range lp.GoFiles {
		fn := name
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(lp.Dir, fn)
		}
		f, err := parser.ParseFile(ld.fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: &pkgImporter{ld: ld, importMap: lp.ImportMap, stack: append(stack, path)},
	}
	tpkg, err := conf.Check(lp.ImportPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %v", path, err)
	}
	pkg := &Package{
		ImportPath: lp.ImportPath,
		BasePath:   basePath(lp.ImportPath),
		Name:       lp.Name,
		Dir:        lp.Dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	ld.typed[path] = pkg
	return pkg, nil
}

// pkgImporter resolves one package's imports: module packages are
// type-checked from source (so test variants resolve to the variant we
// analyzed, via go list's ImportMap), everything else comes from export
// data.
type pkgImporter struct {
	ld        *loader
	importMap map[string]string
	stack     []string
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := pi.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := pi.ld.inModule[path]; ok {
		pkg, err := pi.ld.typecheck(path, pi.stack)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return pi.ld.gc.Import(path)
}

// basePath strips the test-variant bracket from an import path.
func basePath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// golist runs `go list -test -export -deps -json` over patterns in dir.
func golist(dir string, patterns []string) ([]*listPackage, error) {
	args := []string{
		"list", "-e", "-test", "-export", "-deps",
		"-json=ImportPath,Name,Dir,ForTest,Standard,GoFiles,Imports,ImportMap,Export,Module,Error",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []*listPackage
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}
