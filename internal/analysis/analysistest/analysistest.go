// Package analysistest runs one repcheck analyzer over a small fixture
// package and compares its diagnostics against `// want "regexp"`
// comments in the fixture sources — the same contract as
// golang.org/x/tools/go/analysis/analysistest, rebuilt on the stdlib
// because the repo builds offline.
//
// Fixtures live under <analyzer>/testdata/src/<pkg>/. A fixture file
// may import other fixture packages by bare path (testdata/src/graph
// resolves as import "graph") and anything from the standard library;
// stdlib packages are imported from the compiler export data that
// `go list -export` produces, exactly like the cmd/repcheck driver.
//
// A want comment names every diagnostic expected on its line:
//
//	rows = append(rows, m.Row(u)) // want "escapes"
//
// The regexp must match the diagnostic message. Diagnostics with no
// matching want, and wants with no matching diagnostic, fail the test.
// Suppression directives (//repcheck:allow-...) are honoured before
// matching, so fixtures also exercise the allowlist path.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Run type-checks testdata/src/<pkg> (relative to the calling test's
// directory), applies the analyzer, and matches diagnostics against the
// fixture's want comments.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	h := &harness{
		fset:    token.NewFileSet(),
		srcRoot: srcRoot,
		typed:   make(map[string]*fixturePkg),
		exports: make(map[string]string),
	}
	h.gc = importer.ForCompiler(h.fset, "gc", h.lookupExport)

	fp, err := h.load(pkg, nil)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	diags, err := analysis.Run(a, h.fset, fp.files, fp.types, fp.info)
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}
	match(t, h.fset, fp.files, diags)
}

type fixturePkg struct {
	files []*ast.File
	types *types.Package
	info  *types.Info
}

type harness struct {
	fset    *token.FileSet
	srcRoot string
	typed   map[string]*fixturePkg
	exports map[string]string // stdlib import path → export data file
	gc      types.Importer
}

// load parses and type-checks one fixture package by import path.
func (h *harness) load(path string, stack []string) (*fixturePkg, error) {
	if fp, ok := h.typed[path]; ok {
		return fp, nil
	}
	for _, s := range stack {
		if s == path {
			return nil, fmt.Errorf("fixture import cycle: %s", strings.Join(append(stack, path), " → "))
		}
	}
	dir := filepath.Join(h.srcRoot, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("fixture package %q: %v", path, err)
	}
	var files []*ast.File
	var stdlib []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(h.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if !h.isFixture(p) {
				stdlib = append(stdlib, p)
			}
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %q has no .go files", path)
	}
	if err := h.resolveExports(stdlib); err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: &fixtureImporter{h: h, stack: append(stack, path)}}
	tpkg, err := conf.Check(path, h.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture %q: %v", path, err)
	}
	fp := &fixturePkg{files: files, types: tpkg, info: info}
	h.typed[path] = fp
	return fp, nil
}

func (h *harness) isFixture(path string) bool {
	st, err := os.Stat(filepath.Join(h.srcRoot, filepath.FromSlash(path)))
	return err == nil && st.IsDir()
}

// resolveExports asks go list for the export data of the fixture's
// stdlib imports (and, via -deps, everything they pull in).
func (h *harness) resolveExports(paths []string) error {
	var missing []string
	for _, p := range paths {
		if _, ok := h.exports[p]; !ok && p != "unsafe" {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sort.Strings(missing)
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, missing...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go list -export: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	for {
		var lp struct{ ImportPath, Export string }
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return err
		}
		if lp.Export != "" {
			h.exports[lp.ImportPath] = lp.Export
		}
	}
	return nil
}

func (h *harness) lookupExport(path string) (io.ReadCloser, error) {
	file, ok := h.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(file)
}

type fixtureImporter struct {
	h     *harness
	stack []string
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if fi.h.isFixture(path) {
		fp, err := fi.h.load(path, fi.stack)
		if err != nil {
			return nil, err
		}
		return fp.types, nil
	}
	return fi.h.gc.Import(path)
}

// wantRE extracts the quoted regexps of a want comment.
var wantRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	re    *regexp.Regexp
	raw   string
	line  int
	found bool
}

// match pairs diagnostics with want comments, failing the test on any
// unmatched diagnostic or unsatisfied want.
func match(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[string][]*expectation) // filename → expectations
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(text[len("want "):], -1) {
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: malformed want pattern %s: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants[pos.Filename] = append(wants[pos.Filename], &expectation{re: re, raw: pat, line: pos.Line})
				}
			}
		}
	}

	for _, d := range diags {
		matched := false
		for _, w := range wants[d.Pos.Filename] {
			if !w.found && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.found = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", d.Pos.Filename, d.Pos.Line, d.Message)
		}
	}
	var names []string
	for name := range wants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, w := range wants[name] {
			if !w.found {
				t.Errorf("%s:%d: want %q: no matching diagnostic", name, w.line, w.raw)
			}
		}
	}
}
