package floatfmt_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatfmt"
)

func TestFloatfmt(t *testing.T) {
	analysistest.Run(t, floatfmt.Analyzer, "floatfmt")
}
