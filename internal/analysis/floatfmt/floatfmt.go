// Package floatfmt flags fmt-verb formatting of floating-point values
// (%v, %f, %g, %e and the Print/Sprint default format) on the repo's
// output paths. The figure tables, partials, ledgers and WAL/ledger
// comparisons are all pinned byte-identical across backends, shards and
// crash recovery; that contract requires every float to be encoded
// either with the shortest round-trip form strconv.FormatFloat(x, 'g',
// -1, 64) or as exact bits (math.Float64bits). A default-precision %f
// silently truncates, and an ad-hoc verb choice makes the encoding a
// per-call accident instead of a contract.
//
// Deliberate fixed-precision rendering (the human-facing figure table
// columns, whose exact bytes are themselves pinned by the stdout parity
// tests) suppresses with //repcheck:allow-floatfmt <reason>.
package floatfmt

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the floatfmt pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatfmt",
	Doc: "flags fmt verbs applied to floats on output paths; use strconv.FormatFloat(x, 'g', -1, 64) " +
		"or math.Float64bits for anything a parity contract depends on",
	Run: run,
}

// formatFuncs maps fmt function name → index of the format-string
// argument, or -1 for the Print family (no format string: every operand
// is rendered as %v).
var formatFuncs = map[string]int{
	"Printf": 0, "Sprintf": 0, "Fprintf": 1, "Errorf": 0, "Appendf": 1,
	"Print": -1, "Println": -1, "Sprint": -1, "Sprintln": -1,
	"Fprint": -2, "Fprintln": -2, "Append": -2, "Appendln": -2,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pn.Imported().Path() != "fmt" {
				return true
			}
			fmtIdx, ok := formatFuncs[sel.Sel.Name]
			if !ok {
				return true
			}
			switch {
			case fmtIdx >= 0:
				checkFormatted(pass, call, sel.Sel.Name, fmtIdx)
			case fmtIdx == -1:
				checkOperands(pass, call, sel.Sel.Name, call.Args)
			default: // -2: first arg is the writer
				if len(call.Args) > 1 {
					checkOperands(pass, call, sel.Sel.Name, call.Args[1:])
				}
			}
			return true
		})
	}
	return nil
}

// checkFormatted matches verbs to operands for the *f functions.
func checkFormatted(pass *analysis.Pass, call *ast.CallExpr, fn string, fmtIdx int) {
	if len(call.Args) <= fmtIdx {
		return
	}
	lit, ok := call.Args[fmtIdx].(*ast.BasicLit)
	if !ok {
		return // dynamic format string: nothing to match
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs := parseVerbs(format)
	args := call.Args[fmtIdx+1:]
	for i, v := range verbs {
		if i >= len(args) {
			break
		}
		switch v {
		case 'v', 'f', 'g', 'e', 'E', 'G':
			if kind := floatKind(pass.TypeOf(args[i])); kind != "" {
				pass.Reportf(args[i].Pos(),
					"fmt.%s formats %s with %%%c; on an output path floats must use "+
						"strconv.FormatFloat(x, 'g', -1, 64) (shortest round trip) or math.Float64bits",
					fn, kind, v)
			}
		}
	}
}

// checkOperands handles the Print family (implicit %v on every operand).
func checkOperands(pass *analysis.Pass, call *ast.CallExpr, fn string, args []ast.Expr) {
	for _, a := range args {
		if kind := floatKind(pass.TypeOf(a)); kind != "" {
			pass.Reportf(a.Pos(),
				"fmt.%s renders %s with the default %%v; on an output path floats must use "+
					"strconv.FormatFloat(x, 'g', -1, 64) (shortest round trip) or math.Float64bits",
				fn, kind)
		}
	}
}

// parseVerbs extracts the verb letters of a printf format string in
// operand order. Width/precision stars consume operands too.
func parseVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// flags, width, precision (a * consumes an int operand)
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", rune(c)) {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs
}

// floatKind describes t if formatting it with a default verb renders
// floating-point digits: a float, or a slice/array of floats.
func floatKind(t types.Type) string {
	if t == nil {
		return ""
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsFloat != 0 {
			return t.String()
		}
	case *types.Slice:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return t.String()
		}
	case *types.Array:
		if b, ok := u.Elem().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
			return t.String()
		}
	}
	return ""
}
