// Fixture for the floatfmt analyzer: fmt verbs applied to float values
// are findings; integer/string formatting, pre-encoded floats, and
// justified fixed-precision rendering are not.
package floatfmt

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

func bad(w io.Writer, x float64, xs []float64) {
	fmt.Printf("%v\n", x)          // want "formats float64 with %v"
	fmt.Printf("cost=%f\n", x)     // want "formats float64 with %f"
	fmt.Fprintf(w, "ratio %g", x)  // want "formats float64 with %g"
	fmt.Printf("%e\n", float32(1)) // want "formats float32 with %e"
	fmt.Printf("%v\n", xs)         // want "formats .*float64 with %v"
	fmt.Println("x =", x)          // want "renders float64 with the default %v"
	fmt.Fprint(w, x)               // want "renders float64 with the default %v"
	_ = fmt.Sprintf("%g", x)       // want "formats float64 with %g"
}

// The contract-conforming encodings: shortest round trip or exact bits.
func good(w io.Writer, x float64, n int) {
	fmt.Printf("%s\n", strconv.FormatFloat(x, 'g', -1, 64))
	fmt.Printf("%016x\n", math.Float64bits(x))
	fmt.Printf("%d cells\n", n)
	fmt.Printf("50%% done\n")
	fmt.Printf("%*d\n", 8, n) // the star consumes an int operand
	fmt.Fprintln(w, "header")
}

// A justified suppression keeps deliberate fixed-precision rendering.
func table(w io.Writer, x float64) {
	fmt.Fprintf(w, "%12.4f\n", x) //repcheck:allow-floatfmt fixture: fixed-width column pinned by a stdout parity test
}
