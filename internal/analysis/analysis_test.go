package analysis_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Spacer statements separate the cases: a directive attaches to its own
// line and the next, so adjacent findings would bleed into each other.
const src = `package p

func target() {}

func f() {
	target() //repcheck:allow-fake fixture: justified, so the finding is suppressed
	_ = 1
	target()
	_ = 2
	target() //repcheck:allow-fake
	_ = 3
	//repcheck:allow-fake fixture: a standalone directive covers the next line
	target()
}
`

// fake flags every call to target; the directive machinery under test
// is analyzer-independent.
var fake = &analysis.Analyzer{
	Name: "fake",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "target" {
						pass.Reportf(call.Pos(), "call to target")
					}
				}
				return true
			})
		}
		return nil
	},
}

// TestDirectiveSuppression pins the three directive behaviours: a
// justified directive (trailing or on the line above) suppresses the
// finding, and a bare directive becomes a finding of its own.
func TestDirectiveSuppression(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(fake, fset, []*ast.File{f}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %+v", len(diags), diags)
	}
	if d := diags[0]; d.Pos.Line != 8 || d.Message != "call to target" {
		t.Errorf("diag 0 = line %d %q, want the unsuppressed finding on line 8", d.Pos.Line, d.Message)
	}
	if d := diags[1]; d.Pos.Line != 10 || !strings.Contains(d.Message, "needs a justification") {
		t.Errorf("diag 1 = line %d %q, want the bare directive on line 10 converted to a finding", d.Pos.Line, d.Message)
	}
}

func TestDirectiveNameDefaultsToName(t *testing.T) {
	if got := fake.DirectiveName(); got != "fake" {
		t.Fatalf("DirectiveName() = %q, want the analyzer name", got)
	}
	named := &analysis.Analyzer{Name: "detrand", Directive: "wallclock"}
	if got := named.DirectiveName(); got != "wallclock" {
		t.Fatalf("DirectiveName() = %q, want the explicit directive", got)
	}
}
