// Package detrand flags wall-clock and ambiently-seeded randomness in
// code that is contractually deterministic. Every parity guarantee in
// this repo (bit-identical ledgers, byte-identical figure stdout,
// replayable WALs) assumes all randomness derives from an explicit seed
// and no result depends on the wall clock. A single time.Now() or
// global rand.Intn() in a deterministic package silently breaks that on
// some run without failing any unit test.
//
// Flagged:
//   - time.Now, time.Since, time.Until (wall clock)
//   - the global functions of math/rand and math/rand/v2 (process-wide
//     generator, ambient seed) — constructing a seeded *rand.Rand via
//     rand.New(rand.NewSource(seed)) is fine
//   - crypto/rand (nondeterministic by design)
//
// Wall-clock-by-design layers (the runner pool's deadlines, heartbeats
// and backoff jitter; serve's admission timestamps and latency
// percentiles; CLI progress logs) suppress findings per use with
//
//	//repcheck:allow-wallclock <why this layer owns wall-clock time>
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name:      "detrand",
	Directive: "wallclock",
	Doc: "flags wall-clock reads and ambiently-seeded randomness in deterministic packages; " +
		"suppress in wall-clock-by-design code with //repcheck:allow-wallclock <reason>",
	Run: run,
}

// banned maps package path → function names whose mere use is a
// finding. A nil set bans every package-level function.
var banned = map[string]map[string]bool{
	"time": {"Now": true, "Since": true, "Until": true},
	"math/rand": {
		"Int": true, "Intn": true, "Int31": true, "Int31n": true,
		"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true,
		"Seed": true, "Read": true,
	},
	"math/rand/v2": {
		"Int": true, "IntN": true, "Int32": true, "Int32N": true,
		"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
		"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
		"Float32": true, "Float64": true, "ExpFloat64": true,
		"NormFloat64": true, "Perm": true, "Shuffle": true, "N": true,
	},
	"crypto/rand": nil,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			fn, ok := obj.(*types.Func)
			if !ok {
				// crypto/rand.Reader is a var; catch any object from a
				// fully-banned package.
				if names, banned := banned[obj.Pkg().Path()]; banned && names == nil {
					report(pass, id, obj)
				}
				return true
			}
			if fn.Signature().Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are seeded by construction
			}
			names, ok := banned[obj.Pkg().Path()]
			if !ok {
				return true
			}
			if names == nil || names[fn.Name()] {
				report(pass, id, obj)
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, id *ast.Ident, obj types.Object) {
	pass.Reportf(id.Pos(),
		"%s.%s is nondeterministic (wall clock or ambient seed); derive state from an explicit seed "+
			"or annotate //repcheck:allow-wallclock <reason> if this layer is wall-clock by design",
		obj.Pkg().Path(), obj.Name())
}
