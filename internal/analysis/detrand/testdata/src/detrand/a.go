// Fixture for the detrand analyzer: wall-clock reads and ambiently
// seeded randomness are findings; seeded generators and suppressed
// wall-clock-by-design lines are not.
package detrand

import (
	crand "crypto/rand"
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	start := time.Now()      // want "time.Now is nondeterministic"
	return time.Since(start) // want "time.Since is nondeterministic"
}

func globalRand(n int) int {
	rand.Shuffle(n, func(i, j int) {}) // want "math/rand.Shuffle is nondeterministic"
	return rand.Intn(n)                // want "math/rand.Intn is nondeterministic"
}

func cryptoRand(buf []byte) {
	_ = crand.Reader // want "crypto/rand.Reader is nondeterministic"
}

// Seeded generators are deterministic by construction: methods on a
// *rand.Rand are never flagged, only the package-level functions.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) {})
	return rng.Intn(n)
}

// Monotonic arithmetic on time values is fine; only the clock reads are
// banned.
func durations(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// A justified suppression keeps the wall-clock read without a finding.
func suppressed() time.Duration {
	deadline := time.Now()      //repcheck:allow-wallclock fixture: this layer owns real deadlines
	return time.Until(deadline) //repcheck:allow-wallclock fixture: this layer owns real deadlines
}
