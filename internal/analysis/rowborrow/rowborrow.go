// Package rowborrow enforces the graph.Metric.Row borrow discipline.
// Row returns a slice owned by the metric backend; consumers must treat
// it as a short-lived borrow — read it, then let it go. The analyzer
// flags the three ways a borrow escapes its scope:
//
//  1. stored into longer-lived storage: a struct field, or appended to
//     a slice that outlives the borrow;
//  2. captured by a goroutine, a deferred call, or a closure that
//     itself escapes (assigned, stored, returned) — a closure passed
//     directly as a call argument is assumed synchronous (sort.Slice
//     and friends) and is not flagged;
//  3. used again after a later Row/Dist/AddEdge call on a metric, i.e.
//     retained across the call that is allowed to repopulate or
//     invalidate backend caches — and any write through the borrowed
//     slice, which is backend-owned memory.
//
// The flow analysis is per-function and source-ordered: a row bound and
// fully consumed before the next metric call is never flagged, and a
// row re-bound on every loop iteration is fine because its binding
// precedes its uses on every path through the body. Code that
// deliberately relies on a specific backend's storage-stability
// guarantee (backends never recycle row memory; pinned by the cache
// tests) annotates the use with //repcheck:allow-rowborrow <reason>.
package rowborrow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Analyzer is the rowborrow pass.
var Analyzer = &analysis.Analyzer{
	Name: "rowborrow",
	Doc: "flags graph.Metric.Row borrows that escape their scope (field stores, goroutine/closure " +
		"capture, retention across another metric call, writes through the row)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
				return false // nested FuncLits handled inside checkFunc
			}
			return true
		})
	}
	return nil
}

// metricMethod reports whether call invokes Row/Dist/AddEdge on a type
// from the graph package (the Metric interface or any backend).
func metricMethod(pass *analysis.Pass, call *ast.CallExpr) (name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	switch sel.Sel.Name {
	case "Row", "Dist", "AddEdge":
	default:
		return "", false
	}
	s, isMethod := pass.TypesInfo.Selections[sel]
	if !isMethod {
		return "", false
	}
	recv := s.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed {
		return "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg.Name() != "graph" {
		return "", false
	}
	return sel.Sel.Name, true
}

// event is one position-ordered fact inside a function body.
type event struct {
	pos  token.Pos
	kind eventKind
	obj  types.Object // bind/use: the row variable
	end  token.Pos    // bind: end of the binding statement (its own call is not an invalidator)
}

type eventKind int

const (
	evBind eventKind = iota
	evInvalidate
	evUse
)

// checkFunc runs the borrow analysis over one function body, including
// its nested function literals (which get their own linear scan, so a
// row bound inside a closure is tracked there).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	rows := map[types.Object]bool{} // variables currently known to hold a borrow
	var events []event

	// funcLitEscapes classifies each FuncLit: synchronous callbacks
	// (direct call arguments and immediately-invoked literals) keep
	// linear positions; escaping ones (go/defer/assigned/returned) are
	// capture hazards.
	escaping := map[*ast.FuncLit]string{}
	classifyFuncLits(body, escaping)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if call, ok := stripParens(rhs).(*ast.CallExpr); ok {
					if name, ok := metricMethod(pass, call); ok && name == "Row" && len(n.Lhs) > i {
						if id, ok := stripParens(n.Lhs[i]).(*ast.Ident); ok {
							obj := pass.TypesInfo.Defs[id]
							if obj == nil {
								obj = pass.TypesInfo.Uses[id]
							}
							if obj != nil {
								rows[obj] = true
								events = append(events, event{pos: id.Pos(), kind: evBind, obj: obj, end: n.End()})
							}
							continue
						}
						// Row result assigned to a non-identifier:
						// storing into a field or element escapes.
						pass.Reportf(n.Pos(),
							"graph.Metric.Row result stored in %s escapes its borrowing scope; "+
								"copy the row if it must outlive the next metric call",
							types.ExprString(n.Lhs[i]))
					}
				}
			}
		case *ast.CallExpr:
			if _, ok := metricMethod(pass, n); ok {
				events = append(events, event{pos: n.Pos(), kind: evInvalidate})
			}
		}
		return true
	})

	// Second walk: uses, stores, writes, captures of row variables.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[n]
			if obj != nil && rows[obj] {
				events = append(events, event{pos: n.Pos(), kind: evUse, obj: obj})
			}
		case *ast.AssignStmt:
			checkStores(pass, rows, n)
		case *ast.CallExpr:
			checkCallStores(pass, rows, n)
		case *ast.FuncLit:
			if why, esc := escaping[n]; esc {
				reportCaptures(pass, rows, n, why)
			}
		case *ast.GoStmt:
			reportRowArgs(pass, rows, n.Call, "passed to a goroutine")
		}
		return true
	})

	reportRetentions(pass, events)
}

// reportRetentions orders the events and flags uses of a row variable
// that happen after a metric call later than the variable's binding.
func reportRetentions(pass *analysis.Pass, events []event) {
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	type binding struct {
		end token.Pos // end of binding statement
		pos token.Pos
	}
	bind := map[types.Object]binding{}
	reported := map[types.Object]bool{}
	var invs []token.Pos
	for _, e := range events {
		switch e.kind {
		case evBind:
			bind[e.obj] = binding{end: e.end, pos: e.pos}
			reported[e.obj] = false
		case evInvalidate:
			invs = append(invs, e.pos)
		case evUse:
			b, ok := bind[e.obj]
			if !ok || reported[e.obj] {
				continue
			}
			// Is there an invalidating call strictly between the end of
			// the binding statement and this use?
			i := sort.Search(len(invs), func(i int) bool { return invs[i] >= b.end })
			if i < len(invs) && invs[i] < e.pos {
				pass.Reportf(e.pos,
					"row borrowed at %s is used after a later Row/Dist/AddEdge call; the borrow ends at "+
						"the next metric call — re-fetch the row, copy it, or annotate "+
						"//repcheck:allow-rowborrow <reason>",
					pass.Fset.Position(b.pos))
				reported[e.obj] = true
			}
		}
	}
}

// checkStores flags assignments that move a borrowed row into
// longer-lived storage, and writes through a borrowed row.
func checkStores(pass *analysis.Pass, rows map[types.Object]bool, as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		// Writing INTO the row: row[i] = x.
		if ix, ok := stripParens(lhs).(*ast.IndexExpr); ok {
			if obj := identObj(pass, ix.X); obj != nil && rows[obj] {
				pass.Reportf(lhs.Pos(),
					"write through borrowed row %s; Row slices are backend-owned and read-only",
					types.ExprString(ix.X))
			}
		}
		if i >= len(as.Rhs) {
			continue
		}
		rhs := stripParens(as.Rhs[i])
		if obj := identObj(pass, rhs); obj == nil || !rows[obj] {
			continue
		}
		// Row variable copied somewhere: flag stores into fields or
		// elements (selector/index LHS); plain var-to-var copies are
		// tracked only at their later uses.
		switch stripParens(lhs).(type) {
		case *ast.SelectorExpr, *ast.IndexExpr:
			pass.Reportf(lhs.Pos(),
				"borrowed row %s stored in %s escapes its borrowing scope; copy the row "+
					"(or annotate //repcheck:allow-rowborrow <reason>)",
				types.ExprString(rhs), types.ExprString(lhs))
		}
	}
}

// checkCallStores flags append(dst, row) and copy(row, src).
func checkCallStores(pass *analysis.Pass, rows map[types.Object]bool, call *ast.CallExpr) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	if !ok {
		return
	}
	switch b.Name() {
	case "append":
		for i, arg := range call.Args[1:] {
			// append(dst, row...) spreads the row's ELEMENTS — that is
			// the copy idiom, not a retention of the backend's slice.
			if call.Ellipsis.IsValid() && i == len(call.Args)-2 {
				continue
			}
			if obj := identObj(pass, arg); obj != nil && rows[obj] {
				pass.Reportf(arg.Pos(),
					"borrowed row %s appended to a slice escapes its borrowing scope; append a copy "+
						"(or annotate //repcheck:allow-rowborrow <reason>)",
					types.ExprString(arg))
			}
		}
	case "copy":
		if len(call.Args) == 2 {
			if obj := identObj(pass, call.Args[0]); obj != nil && rows[obj] {
				pass.Reportf(call.Args[0].Pos(),
					"copy into borrowed row %s; Row slices are backend-owned and read-only",
					types.ExprString(call.Args[0]))
			}
		}
	}
}

// reportCaptures flags references inside an escaping FuncLit to row
// variables bound outside it.
func reportCaptures(pass *analysis.Pass, rows map[types.Object]bool, fl *ast.FuncLit, why string) {
	seen := map[types.Object]bool{}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !rows[obj] || seen[obj] {
			return true
		}
		// Bound outside the literal?
		if obj.Pos() >= fl.Pos() && obj.Pos() < fl.End() {
			return true
		}
		seen[obj] = true
		pass.Reportf(id.Pos(),
			"borrowed row %s captured by a %s; the closure may run after the borrow ends — "+
				"copy the row first (or annotate //repcheck:allow-rowborrow <reason>)",
			id.Name, why)
		return true
	})
}

// reportRowArgs flags borrowed rows passed in a go statement's call.
func reportRowArgs(pass *analysis.Pass, rows map[types.Object]bool, call *ast.CallExpr, why string) {
	for _, arg := range call.Args {
		if obj := identObj(pass, arg); obj != nil && rows[obj] {
			pass.Reportf(arg.Pos(),
				"borrowed row %s %s; the goroutine may outlive the borrow — copy the row first",
				types.ExprString(arg), why)
		}
	}
}

// classifyFuncLits records, for every FuncLit under body, whether it
// escapes synchronous use: launched by go, deferred, assigned to a
// variable or field, returned, or placed in a composite literal. A
// literal that is the Fun of a call (immediately invoked) or a direct
// call argument is treated as synchronous.
func classifyFuncLits(body *ast.BlockStmt, out map[*ast.FuncLit]string) {
	synchronous := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fl, ok := stripParens(n.Fun).(*ast.FuncLit); ok {
				synchronous[fl] = true
			}
			for _, arg := range n.Args {
				if fl, ok := stripParens(arg).(*ast.FuncLit); ok {
					synchronous[fl] = true
				}
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if fl, ok := stripParens(n.Call.Fun).(*ast.FuncLit); ok {
				out[fl] = "goroutine"
				delete(synchronous, fl)
			}
		case *ast.DeferStmt:
			if fl, ok := stripParens(n.Call.Fun).(*ast.FuncLit); ok {
				out[fl] = "deferred call"
				delete(synchronous, fl)
			}
		case *ast.FuncLit:
			if !synchronous[n] {
				if _, classified := out[n]; !classified {
					out[n] = "closure that escapes (assigned, stored, or returned)"
				}
			}
		}
		return true
	})
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// identObj resolves a plain identifier expression to its object.
func identObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := stripParens(e).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}
