// Fixture for the rowborrow analyzer: borrows of graph.Metric.Row that
// escape their scope are findings; borrows fully consumed before the
// next metric call, copies, loop rebinding, and synchronous callbacks
// are not.
package rowborrow

import (
	"sort"

	"graph"
)

type holder struct {
	row []float64
}

// Retention across a later metric call: the borrow ends at m.Dist.
func retained(m *graph.Matrix) float64 {
	row := m.Row(0)
	d := m.Dist(1, 2)
	return d + row[3] // want "used after a later Row/Dist/AddEdge call"
}

// The false-positive shape: the row is fully consumed before the next
// metric call, so the borrow never outlives its window.
func consumedFirst(m *graph.Matrix) float64 {
	row := m.Row(0)
	sum := row[1] + row[2]
	return sum + m.Dist(1, 2)
}

// Element-spread append copies the contents — the sanctioned idiom for
// a row that must outlive the next call.
func copied(m *graph.Matrix) []float64 {
	row := m.Row(0)
	out := append([]float64(nil), row...)
	_ = m.Row(1)
	return out
}

// Re-binding on every iteration is fine: each borrow's uses precede the
// Row call of the next iteration in every execution, and the binding's
// own call is not an invalidator.
func perIteration(m *graph.Matrix) float64 {
	total := 0.0
	for u := 0; u < m.N(); u++ {
		row := m.Row(u)
		total += row[0]
	}
	return total
}

func fieldStore(m *graph.Matrix, h *holder) {
	h.row = m.Row(0) // want "stored in h.row escapes its borrowing scope"
}

func appended(m *graph.Matrix) [][]float64 {
	var all [][]float64
	for u := 0; u < m.N(); u++ {
		row := m.Row(u)
		all = append(all, row) // want "appended to a slice escapes its borrowing scope"
	}
	return all
}

func writesThrough(m *graph.Matrix) {
	row := m.Row(0)
	row[2] = 1 // want "write through borrowed row"
}

func copiesInto(m *graph.Matrix, src []float64) {
	row := m.Row(0)
	copy(row, src) // want "copy into borrowed row"
}

func goroutineCapture(m *graph.Matrix, done chan float64) {
	row := m.Row(0)
	go func() {
		done <- row[0] // want "captured by a goroutine"
	}()
}

func goroutineArg(m *graph.Matrix, sink func([]float64)) {
	row := m.Row(0)
	go sink(row) // want "passed to a goroutine"
}

func escapingClosure(m *graph.Matrix) func() float64 {
	row := m.Row(0)
	f := func() float64 { return row[0] } // want "captured by a closure that escapes"
	return f
}

// A closure passed directly as a call argument is synchronous
// (sort.Slice and friends): not a capture hazard.
func synchronousCallback(m *graph.Matrix, idx []int) {
	row := m.Row(0)
	sort.Slice(idx, func(i, j int) bool { return row[idx[i]] < row[idx[j]] })
}

// Code that deliberately leans on backend storage stability annotates
// the use.
func pinned(m *graph.Matrix) float64 {
	row := m.Row(0)
	_ = m.Row(1)
	//repcheck:allow-rowborrow fixture: pins the storage-stability guarantee of today's backends
	return row[2]
}
