// Package graph is a fixture stub of the repo's metric backends. The
// rowborrow analyzer identifies Row/Dist/AddEdge methods on named types
// from a package named graph, so this stub only needs the shapes.
package graph

type Matrix struct {
	n    int
	rows [][]float64
}

func NewMatrix(n int) *Matrix {
	m := &Matrix{n: n, rows: make([][]float64, n)}
	for i := range m.rows {
		m.rows[i] = make([]float64, n)
	}
	return m
}

func (m *Matrix) N() int { return m.n }

func (m *Matrix) Dist(u, v int) float64 { return m.rows[u][v] }

func (m *Matrix) Row(u int) []float64 { return m.rows[u] }

func (m *Matrix) AddEdge(u, v int, w float64) {
	m.rows[u][v] = w
	m.rows[v][u] = w
}
