package rowborrow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/rowborrow"
)

func TestRowborrow(t *testing.T) {
	analysistest.Run(t, rowborrow.Analyzer, "rowborrow")
}
