package topo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestASLikeShape(t *testing.T) {
	cfg := AS7018Config()
	g, err := ASLike(cfg, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < cfg.BackbonePoPs+cfg.BackbonePoPs*cfg.MinAccess {
		t.Fatalf("only %d nodes", g.N())
	}
	if g.N() > cfg.BackbonePoPs*(1+cfg.MaxAccess) {
		t.Fatalf("%d nodes exceed the maximum", g.N())
	}
	if !g.Connected() {
		t.Fatal("disconnected topology")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestASLikeScaleMatchesRocketfuelPoPMap(t *testing.T) {
	// The stand-in should land around the published AS-7018 scale: on the
	// order of a hundred routers.
	g, err := ASLike(AS7018Config(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() < 60 || g.N() > 200 {
		t.Fatalf("%d nodes, want ISP scale (60–200)", g.N())
	}
}

func TestASLikeLatencyRanges(t *testing.T) {
	cfg := AS7018Config()
	g, err := ASLike(cfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if e.Latency < cfg.AccessLatencyMin || e.Latency > cfg.BackboneLatencyMax {
				t.Fatalf("edge (%d,%d) latency %v outside all ranges", u, e.To, e.Latency)
			}
			if e.Bandwidth != graph.BandwidthT1 && e.Bandwidth != graph.BandwidthT2 {
				t.Fatalf("edge (%d,%d) bandwidth %v not T1/T2", u, e.To, e.Bandwidth)
			}
		}
	}
}

func TestASLikeBackboneStrongerThanAccess(t *testing.T) {
	cfg := AS7018Config()
	g, err := ASLike(cfg, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for pop := 0; pop < cfg.BackbonePoPs; pop++ {
		if g.Strength(pop) <= g.Strength(g.N()-1) {
			t.Fatalf("PoP %d strength %v not above access strength %v", pop, g.Strength(pop), g.Strength(g.N()-1))
		}
	}
}

func TestASLikeDeterministic(t *testing.T) {
	a, _ := ASLike(AS7018Config(), rand.New(rand.NewSource(5)))
	b, _ := ASLike(AS7018Config(), rand.New(rand.NewSource(5)))
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("same seed produced %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
}

func TestASLikeHeavyTailedCore(t *testing.T) {
	// Degree-proportional extra links should leave some PoP with degree
	// well above the ring baseline of 2.
	g, err := ASLike(AS7018Config(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	for v := 0; v < AS7018Config().BackbonePoPs; v++ {
		if g.Degree(v) > max {
			max = g.Degree(v)
		}
	}
	if max < 5 {
		t.Fatalf("max backbone degree %d, expected a hub", max)
	}
}

func TestASLikeValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bad := []ASConfig{
		{BackbonePoPs: 2, MinAccess: 1, MaxAccess: 2, BackboneLatencyMin: 1, BackboneLatencyMax: 2, AccessLatencyMin: 1, AccessLatencyMax: 2},
		func() ASConfig { c := AS7018Config(); c.MinAccess = 5; c.MaxAccess = 2; return c }(),
		func() ASConfig { c := AS7018Config(); c.BackboneLatencyMin = 0; return c }(),
		func() ASConfig { c := AS7018Config(); c.AccessLatencyMax = 0.5; return c }(),
		func() ASConfig { c := AS7018Config(); c.ExtraBackboneLinks = -1; return c }(),
	}
	for i, cfg := range bad {
		if _, err := ASLike(cfg, rng); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
