// Package topo provides the synthetic stand-in for the Rocketfuel
// AS-7018 (AT&T) topology used in the paper's final experiment. The
// measured Rocketfuel maps and latencies are not redistributable inside
// this offline module, so ASLike generates a topology with the same
// structural ingredients the experiment relies on: a PoP-level ISP
// backbone with heavy-tailed connectivity and wide-area latencies, plus
// per-PoP access routers with short local latencies. The experiment's
// qualitative outcome (the cost ordering OFFSTAT < ONTH < ONBR and the
// roughly 2× gap between ONTH and OFFSTAT) depends on this shape, not on
// the exact AT&T router list; see DESIGN.md for the substitution note.
package topo

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// ASConfig shapes the synthetic ISP topology.
type ASConfig struct {
	// BackbonePoPs is the number of backbone points of presence.
	BackbonePoPs int
	// ExtraBackboneLinks adds redundancy beyond the backbone ring, drawn
	// with preference for already well-connected PoPs.
	ExtraBackboneLinks int
	// MinAccess and MaxAccess bound the number of access routers per PoP.
	MinAccess, MaxAccess int
	// BackboneLatency bounds the uniformly drawn wide-area link latency.
	BackboneLatencyMin, BackboneLatencyMax float64
	// AccessLatency bounds the uniformly drawn local link latency.
	AccessLatencyMin, AccessLatencyMax float64
}

// AS7018Config mirrors the published scale of the Rocketfuel AS-7018
// PoP-level map: on the order of 25 backbone PoPs and a little over a
// hundred routers in total, wide-area latencies up to tens of
// milliseconds, and single-digit local latencies.
func AS7018Config() ASConfig {
	return ASConfig{
		BackbonePoPs:       25,
		ExtraBackboneLinks: 20,
		MinAccess:          2,
		MaxAccess:          5,
		BackboneLatencyMin: 2,
		BackboneLatencyMax: 40,
		AccessLatencyMin:   1,
		AccessLatencyMax:   5,
	}
}

func (c ASConfig) validate() error {
	switch {
	case c.BackbonePoPs < 3:
		return fmt.Errorf("topo: need at least 3 backbone PoPs, got %d", c.BackbonePoPs)
	case c.MinAccess < 0 || c.MaxAccess < c.MinAccess:
		return fmt.Errorf("topo: invalid access-router range [%d,%d]", c.MinAccess, c.MaxAccess)
	case c.BackboneLatencyMin <= 0 || c.BackboneLatencyMax < c.BackboneLatencyMin:
		return fmt.Errorf("topo: invalid backbone latency range [%v,%v]", c.BackboneLatencyMin, c.BackboneLatencyMax)
	case c.AccessLatencyMin <= 0 || c.AccessLatencyMax < c.AccessLatencyMin:
		return fmt.Errorf("topo: invalid access latency range [%v,%v]", c.AccessLatencyMin, c.AccessLatencyMax)
	case c.ExtraBackboneLinks < 0:
		return fmt.Errorf("topo: negative extra backbone links %d", c.ExtraBackboneLinks)
	}
	return nil
}

// ASLike generates the synthetic ISP topology. Node ids [0, BackbonePoPs)
// are the backbone PoPs; the remaining ids are access routers attached to
// their PoP. All links carry T1 or T2 bandwidth with equal probability,
// matching the paper's set-up.
func ASLike(cfg ASConfig, rng *rand.Rand) (*graph.Graph, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	nb := cfg.BackbonePoPs
	// Draw the per-PoP access-router counts first so the total is known.
	accCount := make([]int, nb)
	total := nb
	for i := range accCount {
		accCount[i] = cfg.MinAccess
		if cfg.MaxAccess > cfg.MinAccess {
			accCount[i] += rng.Intn(cfg.MaxAccess - cfg.MinAccess + 1)
		}
		total += accCount[i]
	}
	g := graph.New(total)
	wan := func() float64 {
		return cfg.BackboneLatencyMin + rng.Float64()*(cfg.BackboneLatencyMax-cfg.BackboneLatencyMin)
	}
	lan := func() float64 {
		return cfg.AccessLatencyMin + rng.Float64()*(cfg.AccessLatencyMax-cfg.AccessLatencyMin)
	}
	bw := func() float64 {
		if rng.Intn(2) == 0 {
			return graph.BandwidthT1
		}
		return graph.BandwidthT2
	}

	// Backbone ring for guaranteed connectivity.
	for i := 0; i < nb; i++ {
		g.MustAddEdge(i, (i+1)%nb, wan(), bw())
	}
	// Redundant backbone links, preferring well-connected PoPs (degree
	// proportional sampling gives the heavy-tailed ISP core).
	for added := 0; added < cfg.ExtraBackboneLinks; added++ {
		u := weightedPoP(g, nb, rng)
		v := rng.Intn(nb)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, wan(), bw())
	}
	// Access routers: each attaches to its PoP; some gain a redundant
	// up-link to a random second PoP.
	next := nb
	for pop := 0; pop < nb; pop++ {
		for a := 0; a < accCount[pop]; a++ {
			g.MustAddEdge(pop, next, lan(), bw())
			if rng.Float64() < 0.2 {
				other := rng.Intn(nb)
				if other != pop {
					g.MustAddEdge(other, next, wan(), bw())
				}
			}
			// Backbone PoPs aggregate many routers: give them more
			// strength so the load model favours placing servers there.
			g.SetStrength(next, 1)
			next++
		}
		g.SetStrength(pop, 4)
	}
	return g, nil
}

// weightedPoP samples a backbone PoP with probability proportional to its
// degree.
func weightedPoP(g *graph.Graph, nb int, rng *rand.Rand) int {
	total := 0
	for i := 0; i < nb; i++ {
		total += g.Degree(i)
	}
	if total == 0 {
		return rng.Intn(nb)
	}
	r := rng.Intn(total)
	for i := 0; i < nb; i++ {
		r -= g.Degree(i)
		if r < 0 {
			return i
		}
	}
	return nb - 1
}
