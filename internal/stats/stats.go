// Package stats provides the small statistical toolkit the experiment
// harness uses to aggregate simulation runs: the paper's figures average
// every data point over 5 or 10 independently seeded runs.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of run results.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64 // sample standard deviation (n−1 denominator)
	Min    float64
	Max    float64
}

// Summarize computes a Summary over the sample. An empty sample yields the
// zero Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("mean=%.3f sd=%.3f min=%.3f max=%.3f n=%d", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}

// Mean is a convenience for Summarize(xs).Mean.
func Mean(xs []float64) float64 { return Summarize(xs).Mean }

// Median returns the sample median (the sample is not modified), or NaN for
// an empty sample.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Ratio returns a/b, or NaN when b is zero — used for the
// competitive-ratio and OFFSTAT/OPT figures.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// MeanRatio averages element-wise ratios of two equally long samples,
// skipping pairs with a zero denominator. The paper's ratio figures
// average the per-run ratio, not the ratio of averages.
func MeanRatio(num, den []float64) float64 {
	if len(num) != len(den) {
		panic(fmt.Sprintf("stats: ratio of samples with different sizes %d and %d", len(num), len(den)))
	}
	sum, n := 0.0, 0
	for i := range num {
		if den[i] == 0 {
			continue
		}
		sum += num[i] / den[i]
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
