package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if s.Mean != 5 {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev with n−1: Σ(x−5)² = 32, 32/7 ≈ 4.571, sqrt ≈ 2.138.
	if math.Abs(s.StdDev-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.StdDev != 0 || s.Min != 3 || s.Max != 3 {
		t.Fatalf("singleton summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{5, 1, 3}) != 3 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median must be NaN")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median mutated its input")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Fatal("Ratio wrong")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Fatal("Ratio(x,0) must be NaN")
	}
}

func TestMeanRatio(t *testing.T) {
	got := MeanRatio([]float64{2, 9}, []float64{1, 3})
	if got != 2.5 {
		t.Fatalf("MeanRatio = %v, want 2.5", got)
	}
	// Zero denominators are skipped.
	got = MeanRatio([]float64{2, 9}, []float64{0, 3})
	if got != 3 {
		t.Fatalf("MeanRatio with zero den = %v, want 3", got)
	}
	if !math.IsNaN(MeanRatio([]float64{1}, []float64{0})) {
		t.Fatal("all-zero denominators must yield NaN")
	}
}

func TestMeanRatioSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MeanRatio([]float64{1}, []float64{1, 2})
}
