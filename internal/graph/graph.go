// Package graph implements the substrate network model of Section II-B of
// the paper: an undirected graph G = (V, E) whose nodes carry a strength
// ω(v) (CPU cores, memory size, bus speed, ...) and whose links carry a
// bandwidth capacity ω(e) and a latency λ(e).
//
// Node identifiers are dense integers in [0, N). The zero value of Graph is
// an empty graph; use New to allocate a graph with a fixed node count.
package graph

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"
)

// Common bandwidth constants used throughout the paper's simulations
// (Section V-A): link bandwidths are chosen at random as either T1 or T2.
const (
	// BandwidthT1 is the capacity of a T1 line in Mbit/s.
	BandwidthT1 = 1.544
	// BandwidthT2 is the capacity of a T2 line in Mbit/s.
	BandwidthT2 = 6.312
)

// DefaultStrength is the node strength ω(v) assigned when none is given.
// With the paper's linear load model load(v,t) = η(v,t)/ω(v), a strength of
// one makes the induced load equal to the number of requests at the node.
const DefaultStrength = 1.0

// Edge is one endpoint's view of an undirected substrate link.
type Edge struct {
	To        int     // neighbour node
	Latency   float64 // λ(e), the link latency (abstract time units)
	Bandwidth float64 // ω(e), the link capacity (Mbit/s)
}

// Graph is a substrate network. It is immutable after construction as far
// as the algorithms are concerned; mutation methods are only intended for
// builders and generators.
type Graph struct {
	adj      [][]Edge  // adjacency lists, adj[u] holds edges leaving u
	strength []float64 // ω(v) per node
	edges    int       // number of undirected edges

	// metric caches the all-pairs shortest-path matrix. AddEdge
	// invalidates it; strength changes do not affect distances.
	metric atomic.Pointer[Matrix]

	// version counts distance-affecting mutations (AddEdge). Metric
	// backends that hold derived state (Sparse row caches, Landmark
	// tables) compare it against the version they were built from and
	// rebuild lazily when it moved — the same invalidation contract the
	// dense matrix cache gets from metric.Store(nil) above.
	version atomic.Uint64
}

// New returns a graph with n isolated nodes, each with DefaultStrength.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative node count")
	}
	g := &Graph{
		adj:      make([][]Edge, n),
		strength: make([]float64, n),
	}
	for i := range g.strength {
		g.strength[i] = DefaultStrength
	}
	return g
}

// N returns the number of substrate nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of undirected links.
func (g *Graph) M() int { return g.edges }

// Strength returns ω(v) for node v.
func (g *Graph) Strength(v int) float64 { return g.strength[v] }

// SetStrength sets ω(v). It panics if s is not positive: a node with
// non-positive strength would make the load function of Section II-B
// undefined.
func (g *Graph) SetStrength(v int, s float64) {
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("graph: invalid strength %v for node %d", s, v))
	}
	g.strength[v] = s
}

// Neighbors returns the adjacency list of v. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(v int) []Edge { return g.adj[v] }

// Degree returns the number of links incident to v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// AddEdge inserts an undirected link between u and v with latency lat and
// bandwidth bw. It returns an error for self loops, duplicate links,
// out-of-range endpoints, or non-positive latency (the access-cost model
// sums link latencies along shortest paths, so a non-positive latency would
// break Dijkstra's invariants).
func (g *Graph) AddEdge(u, v int, lat, bw float64) error {
	switch {
	case u < 0 || u >= g.N() || v < 0 || v >= g.N():
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.N())
	case u == v:
		return fmt.Errorf("graph: self loop at node %d", u)
	case lat <= 0 || math.IsNaN(lat) || math.IsInf(lat, 0):
		return fmt.Errorf("graph: invalid latency %v on edge (%d,%d)", lat, u, v)
	case bw < 0 || math.IsNaN(bw) || math.IsInf(bw, 0):
		return fmt.Errorf("graph: invalid bandwidth %v on edge (%d,%d)", bw, u, v)
	}
	if g.HasEdge(u, v) {
		return fmt.Errorf("graph: duplicate edge (%d,%d)", u, v)
	}
	g.adj[u] = append(g.adj[u], Edge{To: v, Latency: lat, Bandwidth: bw})
	g.adj[v] = append(g.adj[v], Edge{To: u, Latency: lat, Bandwidth: bw})
	g.edges++
	g.metric.Store(nil)
	g.version.Add(1)
	return nil
}

// Version returns a counter incremented by every distance-affecting
// mutation. Equal versions across two reads guarantee all shortest-path
// distances are unchanged between them; metric backends use it to detect
// that their cached rows or tables are stale.
func (g *Graph) Version() uint64 { return g.version.Load() }

// MustAddEdge is AddEdge but panics on error. It is intended for generators
// and tests where the arguments are known to be valid.
func (g *Graph) MustAddEdge(u, v int, lat, bw float64) {
	if err := g.AddEdge(u, v, lat, bw); err != nil {
		panic(err)
	}
}

// HasEdge reports whether an undirected link between u and v exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.N() || v < 0 || v >= g.N() {
		return false
	}
	// Scan the shorter adjacency list.
	if len(g.adj[v]) < len(g.adj[u]) {
		u, v = v, u
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return true
		}
	}
	return false
}

// EdgeBetween returns the link between u and v, if any.
func (g *Graph) EdgeBetween(u, v int) (Edge, bool) {
	if u < 0 || u >= g.N() {
		return Edge{}, false
	}
	for _, e := range g.adj[u] {
		if e.To == v {
			return e, true
		}
	}
	return Edge{}, false
}

// ErrDisconnected is returned by Validate for graphs that are not connected.
var ErrDisconnected = errors.New("graph: not connected")

// Connected reports whether the graph is connected. The empty graph and the
// single-node graph are connected.
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := make([]int, 0, n)
	stack = append(stack, 0)
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[u] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == n
}

// Validate checks structural invariants: connectivity and symmetric
// adjacency. Algorithms in this module assume both.
func (g *Graph) Validate() error {
	if !g.Connected() {
		return ErrDisconnected
	}
	for u := range g.adj {
		for _, e := range g.adj[u] {
			back, ok := g.EdgeBetween(e.To, u)
			if !ok {
				return fmt.Errorf("graph: asymmetric edge (%d,%d)", u, e.To)
			}
			if back.Latency != e.Latency || back.Bandwidth != e.Bandwidth {
				return fmt.Errorf("graph: edge (%d,%d) attribute mismatch", u, e.To)
			}
		}
	}
	return nil
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{n=%d m=%d}", g.N(), g.M())
}
