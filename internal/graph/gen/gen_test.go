package gen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func opts() Options { return DefaultOptions() }

func TestErdosRenyiConnectedAndSized(t *testing.T) {
	for _, n := range []int{1, 10, 50, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		g, err := ErdosRenyi(n, 0.01, opts(), rng)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if g.N() != n {
			t.Fatalf("n=%d: got %d nodes", n, g.N())
		}
		if !g.Connected() {
			t.Fatalf("n=%d: disconnected after stitching", n)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a, err := ErdosRenyi(40, 0.05, opts(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ErdosRenyi(40, 0.05, opts(), rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatalf("same seed produced %d and %d edges", a.M(), b.M())
	}
	for u := 0; u < a.N(); u++ {
		for v := u + 1; v < a.N(); v++ {
			if a.HasEdge(u, v) != b.HasEdge(u, v) {
				t.Fatalf("same seed differs on edge (%d,%d)", u, v)
			}
		}
	}
}

func TestErdosRenyiErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := ErdosRenyi(0, 0.5, opts(), rng); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := ErdosRenyi(5, -0.1, opts(), rng); err == nil {
		t.Error("p<0 accepted")
	}
	if _, err := ErdosRenyi(5, 1.1, opts(), rng); err == nil {
		t.Error("p>1 accepted")
	}
	bad := opts()
	bad.MinLatency = 0
	if _, err := ErdosRenyi(5, 0.5, bad, rng); err == nil {
		t.Error("zero MinLatency accepted")
	}
}

func TestErdosRenyiBandwidths(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, err := ErdosRenyi(60, 0.1, opts(), rng)
	if err != nil {
		t.Fatal(err)
	}
	sawT1, sawT2 := false, false
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			switch e.Bandwidth {
			case graph.BandwidthT1:
				sawT1 = true
			case graph.BandwidthT2:
				sawT2 = true
			default:
				t.Fatalf("unexpected bandwidth %v", e.Bandwidth)
			}
		}
	}
	if !sawT1 || !sawT2 {
		t.Fatalf("expected both T1 and T2 links, got T1=%v T2=%v", sawT1, sawT2)
	}
}

func TestFixedBandwidth(t *testing.T) {
	o := Options{MinLatency: 1, MaxLatency: 1, FixedBandwidth: 7}
	g, err := Line(4, o, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if e.Bandwidth != 7 {
				t.Fatalf("bandwidth %v, want 7", e.Bandwidth)
			}
			if e.Latency != 1 {
				t.Fatalf("latency %v, want 1", e.Latency)
			}
		}
	}
}

func TestLine(t *testing.T) {
	g, err := Line(5, opts(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 4 {
		t.Fatalf("M = %d, want 4", g.M())
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Fatal("line degrees wrong")
	}
	if _, err := Line(0, opts(), rand.New(rand.NewSource(2))); err == nil {
		t.Error("Line(0) accepted")
	}
	single, err := Line(1, opts(), rand.New(rand.NewSource(2)))
	if err != nil || single.N() != 1 {
		t.Fatalf("Line(1): %v", err)
	}
}

func TestRing(t *testing.T) {
	g, err := Ring(6, opts(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 6 {
		t.Fatalf("M = %d, want 6", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("Degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if _, err := Ring(2, opts(), rand.New(rand.NewSource(3))); err == nil {
		t.Error("Ring(2) accepted")
	}
}

func TestStar(t *testing.T) {
	g, err := Star(5, opts(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 4 {
		t.Fatalf("hub degree = %d, want 4", g.Degree(0))
	}
	if _, err := Star(1, opts(), rand.New(rand.NewSource(4))); err == nil {
		t.Error("Star(1) accepted")
	}
}

func TestGrid(t *testing.T) {
	g, err := Grid(3, 4, opts(), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatalf("N = %d, want 12", g.N())
	}
	// 3x4 grid: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17 edges.
	if g.M() != 17 {
		t.Fatalf("M = %d, want 17", g.M())
	}
	if !g.Connected() {
		t.Fatal("grid disconnected")
	}
	if _, err := Grid(0, 3, opts(), rand.New(rand.NewSource(5))); err == nil {
		t.Error("Grid(0,3) accepted")
	}
}

func TestTree(t *testing.T) {
	g, err := Tree(30, opts(), rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 29 {
		t.Fatalf("tree edges = %d, want 29", g.M())
	}
	if !g.Connected() {
		t.Fatal("tree disconnected")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g, err := PreferentialAttachment(50, 2, opts(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("PA graph disconnected")
	}
	// Seed clique on 3 nodes (3 edges) + 47 nodes à 2 links.
	if want := 3 + 47*2; g.M() != want {
		t.Fatalf("M = %d, want %d", g.M(), want)
	}
	if _, err := PreferentialAttachment(2, 2, opts(), rand.New(rand.NewSource(7))); err == nil {
		t.Error("n < m+1 accepted")
	}
	if _, err := PreferentialAttachment(5, 0, opts(), rand.New(rand.NewSource(7))); err == nil {
		t.Error("m=0 accepted")
	}
}

func TestPreferentialAttachmentDeterministic(t *testing.T) {
	a, _ := PreferentialAttachment(40, 2, opts(), rand.New(rand.NewSource(8)))
	b, _ := PreferentialAttachment(40, 2, opts(), rand.New(rand.NewSource(8)))
	for u := 0; u < a.N(); u++ {
		for v := u + 1; v < a.N(); v++ {
			if a.HasEdge(u, v) != b.HasEdge(u, v) {
				t.Fatalf("same seed differs on edge (%d,%d)", u, v)
			}
		}
	}
}

func TestLatencyRangeRespected(t *testing.T) {
	o := Options{MinLatency: 3, MaxLatency: 4, FixedBandwidth: 1}
	g, err := ErdosRenyi(40, 0.2, o, rand.New(rand.NewSource(10)))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.N(); u++ {
		for _, e := range g.Neighbors(u) {
			if e.Latency < 3 || e.Latency >= 4+1e-9 {
				t.Fatalf("latency %v outside [3,4]", e.Latency)
			}
		}
	}
}

func TestSmallWorld(t *testing.T) {
	for _, tc := range []struct{ n, chords int }{{3, 0}, {50, 12}, {1000, 250}} {
		rng := rand.New(rand.NewSource(int64(tc.n)))
		g, err := SmallWorld(tc.n, tc.chords, opts(), rng)
		if err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
		if g.N() != tc.n {
			t.Fatalf("n=%d: got %d nodes", tc.n, g.N())
		}
		if !g.Connected() {
			t.Fatalf("n=%d: ring overlay must be connected", tc.n)
		}
		// The ring contributes exactly n edges; duplicate/self-loop chord
		// draws are skipped, so the total sits in [n, n+chords].
		if m := g.M(); m < tc.n || m > tc.n+tc.chords {
			t.Fatalf("n=%d chords=%d: %d edges, want within [%d, %d]", tc.n, tc.chords, m, tc.n, tc.n+tc.chords)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("n=%d: %v", tc.n, err)
		}
	}
}

func TestSmallWorldDeterministic(t *testing.T) {
	a, err := SmallWorld(60, 15, opts(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SmallWorld(60, 15, opts(), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different small-world graphs")
	}
	am, bm := a.AllPairs(), graph.Metric(b.AllPairs())
	if graph.CenterOf(am) != graph.CenterOf(bm) {
		t.Fatal("same seed produced different centers")
	}
}

func TestSmallWorldErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SmallWorld(2, 0, opts(), rng); err == nil {
		t.Fatal("n=2 accepted")
	}
	if _, err := SmallWorld(10, -1, opts(), rng); err == nil {
		t.Fatal("negative chord count accepted")
	}
	bad := opts()
	bad.MinLatency = -1
	if _, err := SmallWorld(10, 2, bad, rng); err == nil {
		t.Fatal("invalid options accepted")
	}
}
