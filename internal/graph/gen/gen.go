// Package gen constructs the substrate topologies used by the paper's
// evaluation (Section V-A): Erdős–Rényi random graphs with 1% connection
// probability, and line graphs on which the optimal offline algorithm OPT
// is simulated. Additional standard families (ring, star, grid, tree,
// preferential attachment) are provided for wider testing and for the
// Rocketfuel-like synthetic topology in internal/topo.
//
// All generators are deterministic given the caller-supplied *rand.Rand.
package gen

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Options control the link attributes assigned by the generators.
type Options struct {
	// MinLatency and MaxLatency bound the uniformly distributed link
	// latency. MaxLatency must be >= MinLatency > 0.
	MinLatency, MaxLatency float64
	// T1T2Bandwidth selects the paper's bandwidth model: each link is a T1
	// or a T2 line with equal probability. When false, FixedBandwidth is
	// used instead.
	T1T2Bandwidth bool
	// FixedBandwidth is the capacity assigned when T1T2Bandwidth is false.
	FixedBandwidth float64
}

// DefaultOptions mirror the paper's simulation set-up: random T1/T2 links
// and latencies spread over an order of magnitude.
func DefaultOptions() Options {
	return Options{MinLatency: 1, MaxLatency: 10, T1T2Bandwidth: true}
}

func (o Options) validate() error {
	if o.MinLatency <= 0 || o.MaxLatency < o.MinLatency {
		return fmt.Errorf("gen: invalid latency range [%v,%v]", o.MinLatency, o.MaxLatency)
	}
	if !o.T1T2Bandwidth && o.FixedBandwidth < 0 {
		return fmt.Errorf("gen: negative fixed bandwidth %v", o.FixedBandwidth)
	}
	return nil
}

func (o Options) latency(rng *rand.Rand) float64 {
	if o.MaxLatency == o.MinLatency {
		return o.MinLatency
	}
	return o.MinLatency + rng.Float64()*(o.MaxLatency-o.MinLatency)
}

func (o Options) bandwidth(rng *rand.Rand) float64 {
	if !o.T1T2Bandwidth {
		return o.FixedBandwidth
	}
	if rng.Intn(2) == 0 {
		return graph.BandwidthT1
	}
	return graph.BandwidthT2
}

// ErdosRenyi samples G(n, p) and then, if the sample is disconnected,
// stitches the components together with one extra random link per missing
// component. The paper's simulations require a connected substrate (every
// request must be able to reach every server), and with p = 1% the raw
// sample is disconnected with non-negligible probability at the network
// sizes evaluated; stitching preserves the degree distribution up to an
// O(#components) additive term.
func ErdosRenyi(n int, p float64, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: ErdosRenyi needs n > 0, got %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("gen: connection probability %v outside [0,1]", p)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v, opts.latency(rng), opts.bandwidth(rng))
			}
		}
	}
	connect(g, opts, rng)
	return g, nil
}

// connect adds random links between connected components until the graph is
// connected. Component representatives are picked uniformly at random.
func connect(g *graph.Graph, opts Options, rng *rand.Rand) {
	n := g.N()
	comp := components(g)
	// Group nodes by component id.
	byComp := make(map[int][]int)
	for v := 0; v < n; v++ {
		byComp[comp[v]] = append(byComp[comp[v]], v)
	}
	if len(byComp) <= 1 {
		return
	}
	ids := make([]int, 0, len(byComp))
	for id := range byComp {
		ids = append(ids, id)
	}
	// Deterministic iteration order: component ids as assigned by the DFS
	// in components are already 0..k-1; the map iteration above shuffles
	// them, so restore ascending order.
	sort.Ints(ids)
	base := byComp[ids[0]]
	for _, id := range ids[1:] {
		nodes := byComp[id]
		u := base[rng.Intn(len(base))]
		v := nodes[rng.Intn(len(nodes))]
		g.MustAddEdge(u, v, opts.latency(rng), opts.bandwidth(rng))
		base = append(base, nodes...)
	}
}

func contains(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// components labels each node with a connected-component id in [0, k).
func components(g *graph.Graph) []int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	var stack []int
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], s)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Neighbors(u) {
				if comp[e.To] == -1 {
					comp[e.To] = next
					stack = append(stack, e.To)
				}
			}
		}
		next++
	}
	return comp
}

// SmallWorld returns a ring of n nodes overlaid with chords random chord
// links (Watts–Strogatz-style shortcuts). The ring guarantees connectivity
// by construction and the chords bring the diameter down to O(log n), so
// unlike ErdosRenyi the construction is O(n + chords) — no quadratic pair
// scan and no connectivity stitching pass — which is what makes the
// 10⁵–10⁶-node substrates of the sparse and landmark metric backends
// affordable to build. Chord endpoints are drawn uniformly; draws that
// would duplicate an existing link or form a self loop are skipped, so the
// realized chord count can be slightly below the request on small n.
func SmallWorld(n, chords int, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: SmallWorld needs n >= 3, got %d", n)
	}
	if chords < 0 {
		return nil, fmt.Errorf("gen: negative chord count %d", chords)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, opts.latency(rng), opts.bandwidth(rng))
	}
	for i := 0; i < chords; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, opts.latency(rng), opts.bandwidth(rng))
	}
	return g, nil
}

// Line returns the path graph v0 - v1 - ... - v(n-1). OPT's dynamic program
// is exercised on line graphs exactly as in the paper ("To simulate OPT, we
// constrain ourselves to line graphs").
func Line(n int, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Line needs n > 0, got %d", n)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, opts.latency(rng), opts.bandwidth(rng))
	}
	return g, nil
}

// Ring returns the cycle graph on n nodes (n >= 3).
func Ring(n int, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("gen: Ring needs n >= 3, got %d", n)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, opts.latency(rng), opts.bandwidth(rng))
	}
	return g, nil
}

// Star returns the star graph with node 0 as the hub.
func Star(n int, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	if n < 2 {
		return nil, fmt.Errorf("gen: Star needs n >= 2, got %d", n)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, opts.latency(rng), opts.bandwidth(rng))
	}
	return g, nil
}

// Grid returns the rows×cols lattice with 4-neighbourhoods.
func Grid(rows, cols int, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("gen: Grid needs positive dimensions, got %dx%d", rows, cols)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.New(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddEdge(id(r, c), id(r, c+1), opts.latency(rng), opts.bandwidth(rng))
			}
			if r+1 < rows {
				g.MustAddEdge(id(r, c), id(r+1, c), opts.latency(rng), opts.bandwidth(rng))
			}
		}
	}
	return g, nil
}

// Tree returns a random recursive tree: node v > 0 attaches to a uniformly
// random earlier node.
func Tree(n int, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: Tree needs n > 0, got %d", n)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(rng.Intn(v), v, opts.latency(rng), opts.bandwidth(rng))
	}
	return g, nil
}

// PreferentialAttachment grows a Barabási–Albert-style graph: starting from
// a small clique, each new node attaches m links to existing nodes chosen
// proportionally to degree. ISP topologies such as the Rocketfuel maps
// exhibit the resulting heavy-tailed degree distribution.
func PreferentialAttachment(n, m int, opts Options, rng *rand.Rand) (*graph.Graph, error) {
	if m < 1 {
		return nil, fmt.Errorf("gen: PreferentialAttachment needs m >= 1, got %d", m)
	}
	if n < m+1 {
		return nil, fmt.Errorf("gen: PreferentialAttachment needs n >= m+1 = %d, got %d", m+1, n)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	g := graph.New(n)
	// Seed clique on the first m+1 nodes.
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			g.MustAddEdge(u, v, opts.latency(rng), opts.bandwidth(rng))
		}
	}
	// Repeated-endpoints list: node v appears deg(v) times.
	var ends []int
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			ends = append(ends, u, v)
		}
	}
	for v := m + 1; v < n; v++ {
		// Collect m distinct targets in draw order so the construction is
		// deterministic for a given rng (map iteration order is not).
		chosen := make([]int, 0, m)
		for len(chosen) < m {
			t := ends[rng.Intn(len(ends))]
			if t == v || contains(chosen, t) {
				continue
			}
			chosen = append(chosen, t)
		}
		for _, t := range chosen {
			g.MustAddEdge(v, t, opts.latency(rng), opts.bandwidth(rng))
			ends = append(ends, v, t)
		}
	}
	return g, nil
}
