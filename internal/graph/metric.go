package graph

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric is a read-only shortest-path distance oracle over a substrate
// graph. The placement algorithms, cost kernels, and workload generators
// only ever query distances; putting the oracle behind this interface lets
// the substrate size become a backend choice (dense matrix, on-demand
// sparse, landmark approximation) rather than an architectural limit.
//
// Contract:
//
//   - N reports the node count; Dist(u, v) is the shortest-path latency
//     from u to v (Infinity when unreachable), and Row(u) is the full
//     distance row from u.
//   - Row returns a slice that is OWNED BY THE BACKEND and must not be
//     modified by the caller. The slice is a BORROW: consume it (or copy
//     it with append([]float64(nil), row...)) before the next Row, Dist,
//     or AddEdge call, and never store it in a struct field or capture it
//     in a goroutine. The rowborrow analyzer (cmd/repcheck) enforces this
//     consumer-side discipline; see ANALYSIS.md.
//   - Today's backends never recycle row storage, so a stale borrow keeps
//     its old contents rather than racing (the contract-pinning tests in
//     metric_cache_test.go rely on this, under //repcheck:allow-rowborrow
//     annotations). New call sites must not: a future backend is free to
//     pool and overwrite evicted rows.
//   - All methods are safe for concurrent use as long as the underlying
//     Graph is not mutated concurrently.
//   - Mutating the Graph (AddEdge) after a backend was constructed
//     invalidates the backend's cached state: the next query observes the
//     moved Graph.Version and recomputes. Rows borrowed before the
//     mutation keep their old (pre-mutation) contents.
type Metric interface {
	N() int
	Dist(u, v int) float64
	Row(u int) []float64
}

// The dense matrix is the reference backend.
var _ Metric = (*Matrix)(nil)
var _ Metric = (*Sparse)(nil)
var _ Metric = (*Landmark)(nil)

// CenterOf returns a node with minimum eccentricity according to the
// metric, or -1 for an empty one. Ties break toward the smaller node id.
// The scan is exactly the dense Matrix.Center loop, so any exact backend
// (Dense, Sparse, Landmark in exact mode) yields the identical node.
func CenterOf(m Metric) int {
	n := m.N()
	best, bestEcc := -1, Infinity
	for v := 0; v < n; v++ {
		ecc := 0.0
		for _, d := range m.Row(v) {
			if d > ecc {
				ecc = d
			}
		}
		if best == -1 || ecc < bestEcc {
			best, bestEcc = v, ecc
		}
	}
	return best
}

// DefaultSparseRows is the LRU row-cache capacity used when a Sparse
// backend is built without an explicit size.
const DefaultSparseRows = 128

// DefaultLandmarks is the landmark count used when a Landmark backend is
// built without an explicit k.
const DefaultLandmarks = 16

// NewMetric builds a metric backend for g from a spec string:
//
//	dense          all-pairs matrix (the default everywhere; exact)
//	sparse[:rows]  on-demand Dijkstra with an LRU cache of rows rows
//	               (default 128; exact, bit-identical to dense)
//	landmark[:k]   k-landmark upper-bound approximation (default k=16;
//	               exact when k >= n)
//
// Dense materializes the n×n matrix eagerly; sparse and landmark never
// do, which is what makes 10⁵–10⁶-node substrates feasible.
func NewMetric(g *Graph, spec string) (Metric, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	parse := func(what string, dflt int) (int, error) {
		if !hasArg {
			return dflt, nil
		}
		v, err := strconv.Atoi(arg)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("graph: bad %s %q in metric spec %q", what, arg, spec)
		}
		return v, nil
	}
	switch name {
	case "", "dense":
		if hasArg {
			return nil, fmt.Errorf("graph: metric spec %q: dense takes no argument", spec)
		}
		return g.Metric(), nil
	case "sparse":
		rows, err := parse("row-cache size", DefaultSparseRows)
		if err != nil {
			return nil, err
		}
		return NewSparse(g, rows), nil
	case "landmark":
		k, err := parse("landmark count", DefaultLandmarks)
		if err != nil {
			return nil, err
		}
		return NewLandmark(g, k), nil
	default:
		return nil, fmt.Errorf("graph: unknown metric spec %q (want dense, sparse[:rows], or landmark[:k])", spec)
	}
}

// Sparse is an exact metric backend that computes distance rows on demand
// — one Dijkstra per queried source — and keeps at most capRows of them in
// an LRU cache. Memory is bounded by capRows×n×8 bytes instead of the
// dense matrix's n²; row values are produced by the same Dijkstra kernel
// the dense matrix uses, so every query is bit-identical to Dense.
type Sparse struct {
	g       *Graph
	capRows int

	mu      sync.Mutex
	version uint64
	rows    map[int]*sparseRow
	// LRU order over cached sources: lru[0] is most recently used. A
	// slice is fine at cache-sized lengths; moves are memmoves of ints.
	lru []int
}

// sparseRow is one cache entry. The entry is published in the map before
// its row is computed; latecomers block on ready instead of duplicating
// the Dijkstra. Eviction only drops the map/LRU references — the dist
// slice itself is immutable once published, so borrowers are unaffected.
type sparseRow struct {
	ready chan struct{}
	dist  []float64
}

// NewSparse returns a sparse backend for g caching up to capRows distance
// rows (DefaultSparseRows if capRows <= 0).
func NewSparse(g *Graph, capRows int) *Sparse {
	if capRows <= 0 {
		capRows = DefaultSparseRows
	}
	return &Sparse{
		g:       g,
		capRows: capRows,
		version: g.Version(),
		rows:    make(map[int]*sparseRow),
	}
}

// CachedRows reports how many rows are currently resident (including rows
// still being computed). Intended for tests and capacity monitoring.
func (s *Sparse) CachedRows() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// N returns the node count.
func (s *Sparse) N() int { return s.g.N() }

// Dist returns the shortest-path latency from u to v. Note the
// orientation: the value is read from u's row, matching Matrix.Dist —
// callers that rely on the exact float bits of d(u→v) versus d(v→u)
// (Dijkstra sums the same path in opposite orders) get the same bits the
// dense backend produces.
func (s *Sparse) Dist(u, v int) float64 { return s.Row(u)[v] }

// Row returns the distances from u to every node, computing the row with
// one Dijkstra on a cache miss. See the Metric contract for aliasing: the
// returned slice is read-only and remains valid after eviction.
func (s *Sparse) Row(u int) []float64 {
	s.mu.Lock()
	if v := s.g.Version(); v != s.version {
		// The graph mutated since the cache was filled: drop everything.
		// In-flight computations finish against the new topology or the
		// old one; either way their entries are no longer reachable.
		s.version = v
		s.rows = make(map[int]*sparseRow)
		s.lru = s.lru[:0]
	}
	if r, ok := s.rows[u]; ok {
		s.touch(u)
		s.mu.Unlock()
		<-r.ready
		return r.dist
	}
	r := &sparseRow{ready: make(chan struct{})}
	s.rows[u] = r
	s.lru = append(s.lru, 0)
	copy(s.lru[1:], s.lru)
	s.lru[0] = u
	if len(s.lru) > s.capRows {
		victim := s.lru[len(s.lru)-1]
		s.lru = s.lru[:len(s.lru)-1]
		delete(s.rows, victim)
	}
	s.mu.Unlock()

	// Compute outside the lock so distinct rows proceed in parallel.
	dist := make([]float64, s.g.N())
	s.g.shortestFromInto(u, dist)
	r.dist = dist
	close(r.ready)
	return dist
}

// touch moves u to the front of the LRU order.
func (s *Sparse) touch(u int) {
	for i, v := range s.lru {
		if v == u {
			copy(s.lru[1:i+1], s.lru[:i])
			s.lru[0] = u
			return
		}
	}
}

// Landmark is an approximate metric backend: k landmark nodes are chosen
// by a farthest-point sweep and one Dijkstra row is precomputed per
// landmark. Dist(u, v) is the tightest triangle upper bound
// min over landmarks L of d(u,L) + d(L,v) — never below the true distance
// by more than float rounding of the two halves, and exact whenever a
// landmark lies on a shortest u–v path. Memory and build cost are k rows,
// independent of the number of queries.
//
// Exact mode: when k >= n the backend delegates to a Sparse cache instead
// (every node would be a landmark, so the bound is the true distance);
// parity tests use this to pin the approximate plumbing against Dense.
type Landmark struct {
	g     *Graph
	k     int
	exact *Sparse // non-nil iff k >= n at construction

	buildMu sync.Mutex
	table   atomic.Pointer[landmarkTable]
}

// landmarkTable is an immutable landmark set + distance table, swapped
// atomically so queries are lock-free after the build.
type landmarkTable struct {
	version   uint64
	landmarks []int
	rows      [][]float64 // rows[i][v] = d(landmarks[i], v)
}

// NewLandmark returns a landmark backend with k landmarks
// (DefaultLandmarks if k <= 0). The landmark set and table are built
// lazily on first query and rebuilt if the graph mutates.
func NewLandmark(g *Graph, k int) *Landmark {
	if k <= 0 {
		k = DefaultLandmarks
	}
	l := &Landmark{g: g, k: k}
	if k >= g.N() {
		l.exact = NewSparse(g, k)
	}
	return l
}

// Exact reports whether the backend serves exact distances (k >= n).
func (l *Landmark) Exact() bool { return l.exact != nil }

// Landmarks returns the landmark node ids (building the table if needed).
// The slice is owned by the backend. Nil in exact mode.
func (l *Landmark) Landmarks() []int {
	if l.exact != nil {
		return nil
	}
	return l.load().landmarks
}

// N returns the node count.
func (l *Landmark) N() int { return l.g.N() }

// Dist returns the landmark upper bound on the u→v distance (the exact
// distance in exact mode). Dist(u, u) is always 0.
func (l *Landmark) Dist(u, v int) float64 {
	if l.exact != nil {
		return l.exact.Dist(u, v)
	}
	if u == v {
		return 0
	}
	t := l.load()
	best := Infinity
	for _, row := range t.rows {
		du, dv := row[u], row[v]
		if du == Infinity || dv == Infinity {
			continue
		}
		if s := du + dv; s < best {
			best = s
		}
	}
	return best
}

// Row materializes the bound row from u. Unlike the cached backends the
// slice is freshly allocated per call (O(k·n) work), which trivially
// satisfies the Metric borrow contract; hot loops should prefer Dist or
// hold the row.
func (l *Landmark) Row(u int) []float64 {
	if l.exact != nil {
		return l.exact.Row(u)
	}
	t := l.load()
	n := l.g.N()
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		best := Infinity
		for _, row := range t.rows {
			du, dv := row[u], row[v]
			if du == Infinity || dv == Infinity {
				continue
			}
			if s := du + dv; s < best {
				best = s
			}
		}
		out[v] = best
	}
	return out
}

// load returns the current table, (re)building it when absent or stale.
func (l *Landmark) load() *landmarkTable {
	if t := l.table.Load(); t != nil && t.version == l.g.Version() {
		return t
	}
	l.buildMu.Lock()
	defer l.buildMu.Unlock()
	if t := l.table.Load(); t != nil && t.version == l.g.Version() {
		return t
	}
	t := l.build()
	l.table.Store(t)
	return t
}

// build selects landmarks by a deterministic farthest-point sweep from
// node 0 (the Gonzalez heuristic: each next landmark maximizes the
// distance to the chosen set, ties toward the smaller id) and computes one
// Dijkstra row per landmark.
func (l *Landmark) build() *landmarkTable {
	n := l.g.N()
	version := l.g.Version()
	t := &landmarkTable{version: version}
	if n == 0 {
		return t
	}
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = Infinity
	}
	next := 0
	for len(t.landmarks) < l.k && len(t.landmarks) < n {
		t.landmarks = append(t.landmarks, next)
		row := make([]float64, n)
		l.g.shortestFromInto(next, row)
		t.rows = append(t.rows, row)
		minDist[next] = 0
		far, farDist := -1, -1.0
		for v := 0; v < n; v++ {
			if row[v] < minDist[v] {
				minDist[v] = row[v]
			}
			if minDist[v] > farDist && minDist[v] > 0 {
				far, farDist = v, minDist[v]
			}
		}
		if far == -1 {
			break // every node is a landmark or at distance 0
		}
		next = far
	}
	return t
}
