package cluster

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

// randomSubstrate is a connected random graph for backend-parity checks.
func randomSubstrate(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.ErdosRenyi(n, 0.12, gen.DefaultOptions(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestKCentersSparseParity: KCenters over the sparse backend — even one
// whose row cache is far smaller than the center count, so rows are
// evicted and recomputed mid-run — produces the identical clustering and
// radius as the dense matrix.
func TestKCentersSparseParity(t *testing.T) {
	g := randomSubstrate(t, 40, 21)
	dense := g.AllPairs()
	sparse := graph.NewSparse(g, 3)
	for _, k := range []int{1, 2, 5, 9} {
		cd, err := KCenters(dense, k)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := KCenters(sparse, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cd, cs) {
			t.Fatalf("k=%d: sparse clustering diverges:\n  dense  %+v\n  sparse %+v", k, cd, cs)
		}
		if rd, rs := cd.Radius(dense), cs.Radius(sparse); rd != rs {
			t.Fatalf("k=%d: radius %v (dense) vs %v (sparse)", k, rd, rs)
		}
	}
}

// disconnectedPair builds two separate line components.
func disconnectedPair() *graph.Graph {
	g := graph.New(8)
	for v := 0; v+1 < 4; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	for v := 4; v+1 < 8; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	return g
}

// TestKCentersDisconnected: on a disconnected substrate the farthest node
// from any chosen set sits at Infinity, so k=2 must place the second
// center in the other component and the radius collapses from Infinity
// to a finite value. Dense and sparse must agree on all of it.
func TestKCentersDisconnected(t *testing.T) {
	g := disconnectedPair()
	for _, m := range []graph.Metric{g.AllPairs(), graph.NewSparse(g, 2)} {
		c1, err := KCenters(m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if r := c1.Radius(m); r != graph.Infinity {
			t.Fatalf("%T: radius with one center on two islands = %v, want Infinity", m, r)
		}
		c2, err := KCenters(m, 2)
		if err != nil {
			t.Fatal(err)
		}
		sameIsland := (c2.Centers[0] < 4) == (c2.Centers[1] < 4)
		if sameIsland {
			t.Fatalf("%T: both centers %v on one island", m, c2.Centers)
		}
		if r := c2.Radius(m); r == graph.Infinity || r <= 0 {
			t.Fatalf("%T: radius with a center per island = %v, want finite positive", m, r)
		}
	}

	// And the two backends agree exactly.
	cd, _ := KCenters(g.AllPairs(), 3)
	cs, _ := KCenters(graph.NewSparse(g, 2), 3)
	if !reflect.DeepEqual(cd, cs) {
		t.Fatalf("disconnected clustering diverges:\n  dense  %+v\n  sparse %+v", cd, cs)
	}
}

// TestKCentersLandmarkExactParity: the landmark backend in exact mode is
// a drop-in for dense here too.
func TestKCentersLandmarkExactParity(t *testing.T) {
	g := randomSubstrate(t, 20, 22)
	cd, err := KCenters(g.AllPairs(), 4)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := KCenters(graph.NewLandmark(g, 20), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cd, cl) {
		t.Fatalf("landmark-exact clustering diverges:\n  dense    %+v\n  landmark %+v", cd, cl)
	}
}
