// Package cluster partitions a substrate network into latency clusters.
// Section III-A and IV-B of the paper suggest "clustering approaches where
// optimal configurations are only considered on a cluster granularity" to
// tame the configuration complexity of the allocation algorithms; the
// cluster centers computed here serve as the reduced candidate set.
package cluster

import (
	"fmt"

	"repro/internal/graph"
)

// Clustering is a partition of the nodes into K latency clusters.
type Clustering struct {
	// Centers are the K cluster-center nodes.
	Centers []int
	// Assign maps every node to the index (into Centers) of its cluster.
	Assign []int
}

// K returns the number of clusters.
func (c *Clustering) K() int { return len(c.Centers) }

// Members returns the nodes of cluster i.
func (c *Clustering) Members(i int) []int {
	var out []int
	for v, ci := range c.Assign {
		if ci == i {
			out = append(out, v)
		}
	}
	return out
}

// KCenters computes a K-clustering with the classical farthest-point
// (Gonzalez) 2-approximation of the k-centers objective: the first center
// is the network center, each further center is the node farthest from all
// chosen centers, and every node joins its nearest center. Any Metric
// backend works; exact backends (dense, sparse) yield the identical
// clustering because every distance is read with the same orientation the
// dense matrix uses.
func KCenters(m graph.Metric, k int) (*Clustering, error) {
	n := m.N()
	if k < 1 {
		return nil, fmt.Errorf("cluster: need k >= 1, got %d", k)
	}
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty network")
	}
	if k > n {
		k = n
	}
	centers := []int{graph.CenterOf(m)}
	// minDist[v] = distance from v to its nearest chosen center.
	minDist := make([]float64, n)
	copy(minDist, m.Row(centers[0]))
	for len(centers) < k {
		far, farDist := -1, -1.0
		for v := 0; v < n; v++ {
			if minDist[v] > farDist {
				far, farDist = v, minDist[v]
			}
		}
		if far < 0 || farDist == 0 {
			break // all nodes coincide with a center
		}
		centers = append(centers, far)
		row := m.Row(far)
		for v := 0; v < n; v++ {
			if row[v] < minDist[v] {
				minDist[v] = row[v]
			}
		}
	}
	assign := make([]int, n)
	for v := 0; v < n; v++ {
		best, bestD := 0, m.Dist(v, centers[0])
		for ci := 1; ci < len(centers); ci++ {
			if d := m.Dist(v, centers[ci]); d < bestD {
				best, bestD = ci, d
			}
		}
		assign[v] = best
	}
	return &Clustering{Centers: centers, Assign: assign}, nil
}

// Radius returns the k-centers objective value: the largest distance from
// any node to its cluster center (Infinity when some node cannot reach
// its center at all).
func (c *Clustering) Radius(m graph.Metric) float64 {
	r := 0.0
	for v, ci := range c.Assign {
		if d := m.Dist(v, c.Centers[ci]); d > r {
			r = d
		}
	}
	return r
}
