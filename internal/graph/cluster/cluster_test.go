package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/graph/gen"
)

func lineMatrix(n int) *graph.Matrix {
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	return g.AllPairs()
}

func TestKCentersLine(t *testing.T) {
	m := lineMatrix(9) // center = 4
	c, err := KCenters(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 2 {
		t.Fatalf("K = %d, want 2", c.K())
	}
	if c.Centers[0] != 4 {
		t.Fatalf("first center = %d, want the network center 4", c.Centers[0])
	}
	// The farthest point from 4 on a 9-line is an endpoint.
	if c.Centers[1] != 0 && c.Centers[1] != 8 {
		t.Fatalf("second center = %d, want an endpoint", c.Centers[1])
	}
}

func TestKCentersAssignmentIsNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, err := gen.ErdosRenyi(60, 0.08, gen.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	m := g.AllPairs()
	c, err := KCenters(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < m.N(); v++ {
		own := m.Dist(v, c.Centers[c.Assign[v]])
		for _, ctr := range c.Centers {
			if m.Dist(v, ctr) < own-1e-9 {
				t.Fatalf("node %d assigned to a non-nearest center", v)
			}
		}
	}
}

func TestKCentersRadiusShrinks(t *testing.T) {
	m := lineMatrix(32)
	prev := -1.0
	for _, k := range []int{1, 2, 4, 8} {
		c, err := KCenters(m, k)
		if err != nil {
			t.Fatal(err)
		}
		r := c.Radius(m)
		if prev >= 0 && r > prev+1e-9 {
			t.Fatalf("radius grew from %v to %v at k=%d", prev, r, k)
		}
		prev = r
	}
}

func TestKCentersDegenerate(t *testing.T) {
	m := lineMatrix(3)
	// k larger than n clamps.
	c, err := KCenters(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.K() != 3 {
		t.Fatalf("K = %d, want 3", c.K())
	}
	if c.Radius(m) != 0 {
		t.Fatalf("radius = %v, want 0 when every node is a center", c.Radius(m))
	}
	if _, err := KCenters(m, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KCenters(graph.New(0).AllPairs(), 1); err == nil {
		t.Fatal("empty network accepted")
	}
}

func TestMembersPartition(t *testing.T) {
	m := lineMatrix(20)
	c, err := KCenters(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, 20)
	for i := 0; i < c.K(); i++ {
		for _, v := range c.Members(i) {
			if seen[v] {
				t.Fatalf("node %d in two clusters", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("node %d in no cluster", v)
		}
	}
}
