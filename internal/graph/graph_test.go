package graph

import (
	"math"
	"testing"
)

func TestNewGraphEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
	for v := 0; v < 5; v++ {
		if got := g.Strength(v); got != DefaultStrength {
			t.Errorf("Strength(%d) = %v, want %v", v, got, DefaultStrength)
		}
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d, want 0", v, g.Degree(v))
		}
	}
}

func TestNewGraphNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 1, 2.5, BandwidthT1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if g.M() != 1 {
		t.Fatalf("M() = %d, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge not symmetric")
	}
	e, ok := g.EdgeBetween(1, 0)
	if !ok {
		t.Fatal("EdgeBetween(1,0) not found")
	}
	if e.Latency != 2.5 || e.Bandwidth != BandwidthT1 {
		t.Fatalf("edge attributes = %+v", e)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1, 1)
	cases := []struct {
		name    string
		u, v    int
		lat, bw float64
	}{
		{"self loop", 1, 1, 1, 1},
		{"out of range low", -1, 0, 1, 1},
		{"out of range high", 0, 3, 1, 1},
		{"duplicate", 0, 1, 1, 1},
		{"duplicate reversed", 1, 0, 1, 1},
		{"zero latency", 1, 2, 0, 1},
		{"negative latency", 1, 2, -1, 1},
		{"NaN latency", 1, 2, math.NaN(), 1},
		{"inf latency", 1, 2, math.Inf(1), 1},
		{"negative bandwidth", 1, 2, 1, -1},
		{"NaN bandwidth", 1, 2, 1, math.NaN()},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v, c.lat, c.bw); err == nil {
			t.Errorf("%s: AddEdge(%d,%d,%v,%v) succeeded, want error", c.name, c.u, c.v, c.lat, c.bw)
		}
	}
}

func TestSetStrength(t *testing.T) {
	g := New(2)
	g.SetStrength(1, 4)
	if g.Strength(1) != 4 {
		t.Fatalf("Strength(1) = %v, want 4", g.Strength(1))
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetStrength(%v) did not panic", bad)
				}
			}()
			g.SetStrength(0, bad)
		}()
	}
}

func TestConnected(t *testing.T) {
	g := New(4)
	if g.Connected() {
		t.Fatal("4 isolated nodes reported connected")
	}
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	if g.Connected() {
		t.Fatal("two components reported connected")
	}
	g.MustAddEdge(1, 2, 1, 1)
	if !g.Connected() {
		t.Fatal("path graph reported disconnected")
	}
	if New(0).Connected() != true || New(1).Connected() != true {
		t.Fatal("trivial graphs must be connected")
	}
}

func TestValidate(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1, 1)
	if err := g.Validate(); err != ErrDisconnected {
		t.Fatalf("Validate() = %v, want ErrDisconnected", err)
	}
	g.MustAddEdge(1, 2, 1, 1)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestHasEdgeOutOfRange(t *testing.T) {
	g := New(2)
	if g.HasEdge(-1, 0) || g.HasEdge(0, 5) {
		t.Fatal("out-of-range HasEdge returned true")
	}
	if _, ok := g.EdgeBetween(-1, 0); ok {
		t.Fatal("out-of-range EdgeBetween returned true")
	}
}

func TestStringer(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1, 1)
	if got, want := g.String(), "graph{n=2 m=1}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

// line builds a path graph with the given per-hop latencies.
func line(lat ...float64) *Graph {
	g := New(len(lat) + 1)
	for i, l := range lat {
		g.MustAddEdge(i, i+1, l, 1)
	}
	return g
}

func TestShortestFromLine(t *testing.T) {
	g := line(1, 2, 3) // 0-1-2-3 with latencies 1,2,3
	dist := g.ShortestFrom(0)
	want := []float64{0, 1, 3, 6}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], want[i])
		}
	}
}

func TestShortestFromPrefersLowLatency(t *testing.T) {
	// Triangle where the direct edge is more expensive than the detour.
	g := New(3)
	g.MustAddEdge(0, 2, 10, 1)
	g.MustAddEdge(0, 1, 2, 1)
	g.MustAddEdge(1, 2, 3, 1)
	dist := g.ShortestFrom(0)
	if dist[2] != 5 {
		t.Fatalf("dist[2] = %v, want 5 (detour over node 1)", dist[2])
	}
}

func TestShortestFromDisconnected(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1, 1)
	dist := g.ShortestFrom(0)
	if dist[2] != Infinity {
		t.Fatalf("dist[2] = %v, want Infinity", dist[2])
	}
}

func TestShortestPath(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	g.MustAddEdge(0, 3, 10, 1)
	path, d, ok := g.ShortestPath(0, 3)
	if !ok {
		t.Fatal("no path found")
	}
	if d != 3 {
		t.Fatalf("distance = %v, want 3", d)
	}
	want := []int{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := New(2)
	if _, _, ok := g.ShortestPath(0, 1); ok {
		t.Fatal("found path in edgeless graph")
	}
}

func TestShortestPathToSelf(t *testing.T) {
	g := line(1)
	path, d, ok := g.ShortestPath(0, 0)
	if !ok || d != 0 || len(path) != 1 || path[0] != 0 {
		t.Fatalf("ShortestPath(0,0) = %v,%v,%v", path, d, ok)
	}
}

func TestEccentricityAndCenter(t *testing.T) {
	g := line(1, 1, 1, 1) // path of 5 nodes
	if ecc := g.Eccentricity(0); ecc != 4 {
		t.Fatalf("Eccentricity(0) = %v, want 4", ecc)
	}
	if ecc := g.Eccentricity(2); ecc != 2 {
		t.Fatalf("Eccentricity(2) = %v, want 2", ecc)
	}
	if c := g.Center(); c != 2 {
		t.Fatalf("Center() = %d, want 2", c)
	}
}

func TestCenterEmpty(t *testing.T) {
	if c := New(0).Center(); c != -1 {
		t.Fatalf("Center of empty graph = %d, want -1", c)
	}
}
