package graph

import (
	"runtime"
	"sync"
)

// Matrix holds all-pairs shortest-path latencies of a graph. Access-cost
// evaluation queries distances for every request in every round, so the
// simulator computes the matrix once per topology and shares it.
type Matrix struct {
	n    int
	dist []float64 // row-major n×n
}

// AllPairs computes the all-pairs shortest-path latency matrix by running
// one Dijkstra per source, fanned out over all CPUs. The result is also
// cached on the graph (see Metric).
func (g *Graph) AllPairs() *Matrix {
	n := g.N()
	m := &Matrix{n: n, dist: make([]float64, n*n)}
	if n == 0 {
		g.metric.Store(m)
		return m
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for src := range next {
				g.shortestFromInto(src, m.dist[src*n:(src+1)*n])
			}
		}()
	}
	for src := 0; src < n; src++ {
		next <- src
	}
	close(next)
	wg.Wait()
	g.metric.Store(m)
	return m
}

// Metric returns the all-pairs matrix, computing it at most once per
// topology: repeated calls (and calls after AllPairs) return the cached
// matrix until an edge mutation invalidates it.
func (g *Graph) Metric() *Matrix {
	if m := g.metric.Load(); m != nil {
		return m
	}
	return g.AllPairs()
}

// N returns the node count the matrix was built for.
func (m *Matrix) N() int { return m.n }

// Dist returns the shortest-path latency from u to v (Infinity if
// unreachable).
func (m *Matrix) Dist(u, v int) float64 { return m.dist[u*m.n+v] }

// Row returns the distances from u to every node. The returned slice is
// owned by the matrix and must not be modified.
func (m *Matrix) Row(u int) []float64 { return m.dist[u*m.n : (u+1)*m.n] }

// Center returns a node with minimum eccentricity according to the matrix,
// or -1 for an empty matrix. Ties break toward the smaller node id.
func (m *Matrix) Center() int {
	best, bestEcc := -1, Infinity
	for v := 0; v < m.n; v++ {
		ecc := 0.0
		for _, d := range m.Row(v) {
			if d > ecc {
				ecc = d
			}
		}
		if best == -1 || ecc < bestEcc {
			best, bestEcc = v, ecc
		}
	}
	return best
}

// Diameter returns the largest finite pairwise distance, or Infinity if the
// underlying graph was disconnected.
func (m *Matrix) Diameter() float64 {
	diam := 0.0
	for _, d := range m.dist {
		if d > diam {
			diam = d
		}
	}
	return diam
}
