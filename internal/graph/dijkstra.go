package graph

import (
	"container/heap"
	"math"
)

// Infinity is the distance reported between disconnected nodes.
const Infinity = math.MaxFloat64

// item is a node with a tentative distance in the Dijkstra frontier.
type item struct {
	node int
	dist float64
}

// frontier is a binary min-heap keyed by tentative distance.
type frontier []item

func (f frontier) Len() int            { return len(f) }
func (f frontier) Less(i, j int) bool  { return f[i].dist < f[j].dist }
func (f frontier) Swap(i, j int)       { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x interface{}) { *f = append(*f, x.(item)) }
func (f *frontier) Pop() interface{} {
	old := *f
	n := len(old)
	it := old[n-1]
	*f = old[:n-1]
	return it
}

// ShortestFrom runs Dijkstra's algorithm from src and returns the latency of
// the shortest path to every node. Unreachable nodes get Infinity. The
// request access cost of Section II-B assumes requests travel along such
// shortest (latency) paths.
func (g *Graph) ShortestFrom(src int) []float64 {
	dist := make([]float64, g.N())
	g.shortestFromInto(src, dist)
	return dist
}

// shortestFromInto is ShortestFrom writing into a caller-provided slice,
// which lets the all-pairs computation reuse one row per goroutine without
// per-source allocation of the result.
func (g *Graph) shortestFromInto(src int, dist []float64) {
	for i := range dist {
		dist[i] = Infinity
	}
	dist[src] = 0
	f := make(frontier, 0, 64)
	heap.Push(&f, item{node: src, dist: 0})
	for f.Len() > 0 {
		cur := heap.Pop(&f).(item)
		if cur.dist > dist[cur.node] {
			continue // stale entry
		}
		for _, e := range g.adj[cur.node] {
			if nd := cur.dist + e.Latency; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(&f, item{node: e.To, dist: nd})
			}
		}
	}
}

// ShortestPath returns one latency-shortest path from src to dst as a node
// sequence including both endpoints, together with its total latency. The
// second return is false if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) ([]int, float64, bool) {
	n := g.N()
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = Infinity
		prev[i] = -1
	}
	dist[src] = 0
	f := make(frontier, 0, 64)
	heap.Push(&f, item{node: src, dist: 0})
	for f.Len() > 0 {
		cur := heap.Pop(&f).(item)
		if cur.dist > dist[cur.node] {
			continue
		}
		if cur.node == dst {
			break
		}
		for _, e := range g.adj[cur.node] {
			if nd := cur.dist + e.Latency; nd < dist[e.To] {
				dist[e.To] = nd
				prev[e.To] = cur.node
				heap.Push(&f, item{node: e.To, dist: nd})
			}
		}
	}
	if dist[dst] == Infinity {
		return nil, Infinity, false
	}
	// Walk predecessors back from dst.
	path := []int{dst}
	for v := dst; v != src; v = prev[v] {
		path = append(path, prev[v])
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, dist[dst], true
}

// Eccentricity returns the largest finite shortest-path latency from v, or
// Infinity if some node is unreachable from v.
func (g *Graph) Eccentricity(v int) float64 {
	dist := g.ShortestFrom(v)
	ecc := 0.0
	for _, d := range dist {
		if d == Infinity {
			return Infinity
		}
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Center returns a node with minimum eccentricity. Both ONBR and ONTH start
// "hosting one server at the network center" (Section III-A). Ties break
// toward the smaller node id; the empty graph has no center and yields -1.
// When the all-pairs matrix has already been computed (see Metric), the
// center is read from it; the one-Dijkstra-per-node scan is only the
// fallback for graphs whose matrix was never needed.
func (g *Graph) Center() int {
	if m := g.metric.Load(); m != nil {
		return m.Center()
	}
	best, bestEcc := -1, Infinity
	for v := 0; v < g.N(); v++ {
		if ecc := g.Eccentricity(v); ecc < bestEcc || best == -1 {
			best, bestEcc = v, ecc
		}
	}
	return best
}

// ApproxCenter estimates a low-eccentricity node with three Dijkstra
// sweeps instead of n: find the farthest node a from node 0, the farthest
// node b from a (a–b approximates a diameter), and return the node
// minimizing max(d(a,x), d(b,x)) — a midpoint of the pseudo-diameter. Ties
// break toward the smaller node id. Intended for the huge connected
// substrates of the sparse/landmark backends, where the exact center scan
// is the bottleneck; on disconnected graphs it only considers node 0's
// component.
func (g *Graph) ApproxCenter() int {
	n := g.N()
	if n == 0 {
		return -1
	}
	farthest := func(dist []float64) int {
		far, farDist := 0, -1.0
		for v, d := range dist {
			if d != Infinity && d > farDist {
				far, farDist = v, d
			}
		}
		return far
	}
	d0 := g.ShortestFrom(0)
	a := farthest(d0)
	da := g.ShortestFrom(a)
	b := farthest(da)
	db := g.ShortestFrom(b)
	best, bestEcc := -1, Infinity
	for v := 0; v < n; v++ {
		if da[v] == Infinity || db[v] == Infinity {
			continue
		}
		ecc := da[v]
		if db[v] > ecc {
			ecc = db[v]
		}
		if best == -1 || ecc < bestEcc {
			best, bestEcc = v, ecc
		}
	}
	return best
}
