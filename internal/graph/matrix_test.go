package graph

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAllPairsMatchesPerSource(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomConnected(20, 0.2, rng)
	m := g.AllPairs()
	for src := 0; src < g.N(); src++ {
		dist := g.ShortestFrom(src)
		for v := range dist {
			if m.Dist(src, v) != dist[v] {
				t.Fatalf("matrix dist(%d,%d) = %v, Dijkstra = %v", src, v, m.Dist(src, v), dist[v])
			}
		}
	}
}

func TestMatrixEmpty(t *testing.T) {
	m := New(0).AllPairs()
	if m.N() != 0 {
		t.Fatalf("N() = %d", m.N())
	}
	if m.Center() != -1 {
		t.Fatalf("Center() = %d, want -1", m.Center())
	}
}

func TestMatrixCenterMatchesGraphCenter(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(12, 0.3, rng)
		if gc, mc := g.Center(), g.AllPairs().Center(); gc != mc {
			t.Fatalf("trial %d: graph center %d != matrix center %d", trial, gc, mc)
		}
	}
}

func TestDiameterLine(t *testing.T) {
	g := line(2, 2, 2)
	if d := g.AllPairs().Diameter(); d != 6 {
		t.Fatalf("Diameter = %v, want 6", d)
	}
}

// randomConnected builds a random graph guaranteed connected by a spanning
// path plus random chords.
func randomConnected(n int, p float64, rng *rand.Rand) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 0.5+rng.Float64()*9.5, 1)
	}
	for u := 0; u < n; u++ {
		for v := u + 2; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v, 0.5+rng.Float64()*9.5, 1)
			}
		}
	}
	return g
}

// Property: all-pairs distances form a metric on connected graphs —
// non-negative, zero on the diagonal, symmetric, triangle inequality.
func TestMatrixMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	check := func(seed int64) bool {
		local := rand.New(rand.NewSource(seed))
		n := 3 + local.Intn(12)
		g := randomConnected(n, 0.25, local)
		m := g.AllPairs()
		// Runs from opposite endpoints may sum the same path in different
		// orders, so symmetry and the triangle inequality hold only up to
		// floating-point tolerance.
		const eps = 1e-9
		for u := 0; u < n; u++ {
			if m.Dist(u, u) != 0 {
				return false
			}
			for v := 0; v < n; v++ {
				if m.Dist(u, v) < 0 || math.Abs(m.Dist(u, v)-m.Dist(v, u)) > eps {
					return false
				}
				for w := 0; w < n; w++ {
					if m.Dist(u, w) > m.Dist(u, v)+m.Dist(v, w)+eps {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(vs []reflect.Value, _ *rand.Rand) {
			vs[0] = reflect.ValueOf(rng.Int63())
		},
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: the shortest-path latency never exceeds any single edge's
// latency between its endpoints.
func TestMatrixBoundedByEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(10, 0.3, rng)
		m := g.AllPairs()
		for u := 0; u < g.N(); u++ {
			for _, e := range g.Neighbors(u) {
				if m.Dist(u, e.To) > e.Latency {
					t.Fatalf("dist(%d,%d)=%v exceeds direct edge latency %v", u, e.To, m.Dist(u, e.To), e.Latency)
				}
			}
		}
	}
}
