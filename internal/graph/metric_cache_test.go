package graph

import "testing"

func TestMetricCachesAllPairs(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	m1 := g.Metric()
	if m2 := g.Metric(); m2 != m1 {
		t.Fatal("Metric recomputed the matrix despite a warm cache")
	}
	if m := g.AllPairs(); g.Metric() != m {
		t.Fatal("Metric did not adopt the matrix AllPairs just computed")
	}
	// An edge mutation must invalidate the cache.
	old := g.Metric()
	g.MustAddEdge(0, 3, 0.5, 1)
	m3 := g.Metric()
	if m3 == old {
		t.Fatal("Metric returned a stale matrix after AddEdge")
	}
	if d := m3.Dist(0, 3); d != 0.5 {
		t.Fatalf("Dist(0,3) = %v after new edge, want 0.5", d)
	}
}

func TestCenterDelegatesToCachedMatrix(t *testing.T) {
	g := New(5)
	for v := 0; v+1 < 5; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	fallback := g.Center() // no matrix yet: Dijkstra-per-node path
	g.Metric()
	if delegated := g.Center(); delegated != fallback {
		t.Fatalf("Center with cached matrix = %d, fallback = %d", delegated, fallback)
	}
	if fallback != 2 {
		t.Fatalf("center of a 5-line = %d, want 2", fallback)
	}
}
