package graph

import "testing"

func TestMetricCachesAllPairs(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	m1 := g.Metric()
	if m2 := g.Metric(); m2 != m1 {
		t.Fatal("Metric recomputed the matrix despite a warm cache")
	}
	if m := g.AllPairs(); g.Metric() != m {
		t.Fatal("Metric did not adopt the matrix AllPairs just computed")
	}
	// An edge mutation must invalidate the cache.
	old := g.Metric()
	g.MustAddEdge(0, 3, 0.5, 1)
	m3 := g.Metric()
	if m3 == old {
		t.Fatal("Metric returned a stale matrix after AddEdge")
	}
	if d := m3.Dist(0, 3); d != 0.5 {
		t.Fatalf("Dist(0,3) = %v after new edge, want 0.5", d)
	}
}

// TestSparseInvalidationOnAddEdge pins the mutation half of the Metric
// contract for the sparse backend: AddEdge moves Graph.Version, the next
// query drops every cached row and recomputes against the new topology,
// and rows borrowed before the mutation keep their pre-mutation contents.
func TestSparseInvalidationOnAddEdge(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 1, 1)
	g.MustAddEdge(2, 3, 1, 1)
	s := NewSparse(g, 8)
	before := s.Row(0)
	if d := before[3]; d != 3 {
		t.Fatalf("Dist(0,3) on the line = %v, want 3", d)
	}
	s.Row(1) // a second resident row, to check the whole cache is dropped

	g.MustAddEdge(0, 3, 0.5, 1)
	if d := s.Dist(0, 3); d != 0.5 {
		t.Fatalf("Dist(0,3) after shortcut = %v, want 0.5 (stale cache?)", d)
	}
	if d := s.Dist(1, 3); d != 1.5 {
		t.Fatalf("Dist(1,3) after shortcut = %v, want 1.5 via 1-0-3 (stale cache?)", d)
	}
	//repcheck:allow-rowborrow this test pins the invalidation semantics: a pre-mutation borrow keeps its old contents
	if before[3] != 3 {
		t.Fatalf("row borrowed before AddEdge changed to %v, must keep 3", before[3])
	}
}

// TestLandmarkInvalidationOnAddEdge: the landmark table is rebuilt after
// a mutation, so the bound observes the new edge. Node 0 is always the
// first landmark, so the 0–3 shortcut makes the bound for (0,3) exact.
func TestLandmarkInvalidationOnAddEdge(t *testing.T) {
	g := New(6)
	for v := 0; v+1 < 6; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	l := NewLandmark(g, 2)
	if d := l.Dist(0, 3); d != 3 {
		t.Fatalf("bound(0,3) on the line = %v, want 3", d)
	}
	g.MustAddEdge(0, 3, 0.5, 1)
	if d := l.Dist(0, 3); d != 0.5 {
		t.Fatalf("bound(0,3) after shortcut = %v, want 0.5 (stale landmark table?)", d)
	}
}

// TestLandmarkExactModeInvalidation: the exact (k >= n) delegate follows
// the same contract through its embedded sparse cache.
func TestLandmarkExactModeInvalidation(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 2, 1)
	g.MustAddEdge(1, 2, 2, 1)
	g.MustAddEdge(2, 3, 2, 1)
	l := NewLandmark(g, 4)
	if d := l.Dist(0, 3); d != 6 {
		t.Fatalf("Dist(0,3) = %v, want 6", d)
	}
	g.MustAddEdge(0, 3, 1, 1)
	if d := l.Dist(0, 3); d != 1 {
		t.Fatalf("Dist(0,3) after shortcut = %v, want 1 (stale cache?)", d)
	}
}

func TestCenterDelegatesToCachedMatrix(t *testing.T) {
	g := New(5)
	for v := 0; v+1 < 5; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	fallback := g.Center() // no matrix yet: Dijkstra-per-node path
	g.Metric()
	if delegated := g.Center(); delegated != fallback {
		t.Fatalf("Center with cached matrix = %d, fallback = %d", delegated, fallback)
	}
	if fallback != 2 {
		t.Fatalf("center of a 5-line = %d, want 2", fallback)
	}
}
