package graph

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// chordedRing builds a deterministic ring with extra random chords and
// non-uniform latencies — enough path diversity that Dijkstra tie-breaks
// and float summation order matter, which is what the bit-parity tests
// are about.
func chordedRing(n, chords int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for v := 0; v < n; v++ {
		g.MustAddEdge(v, (v+1)%n, 0.5+rng.Float64()*9.5, 1)
	}
	for c := 0; c < chords; {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v, 0.5+rng.Float64()*9.5, 1)
		c++
	}
	return g
}

// twoIslands builds a graph of two disconnected components, so distance
// rows contain Infinity entries.
func twoIslands() *Graph {
	g := New(7)
	g.MustAddEdge(0, 1, 1, 1)
	g.MustAddEdge(1, 2, 2, 1)
	g.MustAddEdge(0, 2, 2.5, 1)
	g.MustAddEdge(3, 4, 1, 1)
	g.MustAddEdge(4, 5, 1.5, 1)
	g.MustAddEdge(5, 6, 3, 1)
	return g
}

// assertBitIdentical compares every pair under both metrics as exact
// float bits, via both Row and Dist.
func assertBitIdentical(t *testing.T, want, got Metric) {
	t.Helper()
	if want.N() != got.N() {
		t.Fatalf("N: %d vs %d", want.N(), got.N())
	}
	n := want.N()
	for u := 0; u < n; u++ {
		wr, gr := want.Row(u), got.Row(u)
		for v := 0; v < n; v++ {
			if math.Float64bits(wr[v]) != math.Float64bits(gr[v]) {
				t.Fatalf("Row(%d)[%d]: %v vs %v (bits differ)", u, v, wr[v], gr[v])
			}
			if math.Float64bits(want.Dist(u, v)) != math.Float64bits(got.Dist(u, v)) {
				t.Fatalf("Dist(%d,%d): %v vs %v (bits differ)", u, v, want.Dist(u, v), got.Dist(u, v))
			}
		}
	}
}

// TestSparseBitIdenticalToDense pins the core exactness claim: every
// distance the sparse backend serves carries the exact float bits of the
// dense matrix, including with a row cache far smaller than the graph
// (every query path — hit, miss, evicted-and-recomputed — must agree).
func TestSparseBitIdenticalToDense(t *testing.T) {
	g := chordedRing(40, 30, 3)
	assertBitIdentical(t, g.AllPairs(), NewSparse(g, 5))
}

// TestSparseDisconnectedInfinity: unreachable pairs are Infinity under
// both backends, and reachable pairs within each island still match.
func TestSparseDisconnectedInfinity(t *testing.T) {
	g := twoIslands()
	dense := g.AllPairs()
	sparse := NewSparse(g, 3)
	assertBitIdentical(t, dense, sparse)
	if d := sparse.Dist(0, 5); d != Infinity {
		t.Fatalf("Dist across islands = %v, want Infinity", d)
	}
	if d := sparse.Dist(3, 6); d == Infinity {
		t.Fatalf("Dist within an island = Infinity, want finite (got %v)", d)
	}
}

// TestSparseLRUEviction: the resident set is bounded by the capacity, a
// cache hit serves the identical slice (no recompute), and a row borrowed
// before its eviction keeps its contents afterwards — the aliasing rule
// the Metric contract promises.
func TestSparseLRUEviction(t *testing.T) {
	g := chordedRing(24, 10, 4)
	s := NewSparse(g, 4)

	row0 := s.Row(0)
	borrowed := append([]float64(nil), row0...)
	//repcheck:allow-rowborrow this test pins the backend aliasing guarantee: a cache hit must serve the identical slice
	if again := s.Row(0); &again[0] != &row0[0] {
		t.Fatal("cache hit recomputed the row instead of serving the cached slice")
	}

	// Touch more sources than the cache holds; row 0 must fall out.
	for u := 1; u < 10; u++ {
		s.Row(u)
		if got := s.CachedRows(); got > 4 {
			t.Fatalf("CachedRows = %d after %d sources, capacity is 4", got, u+1)
		}
	}
	for i, v := range borrowed {
		if math.Float64bits(row0[i]) != math.Float64bits(v) {
			t.Fatalf("borrowed row mutated after eviction at index %d: %v vs %v", i, row0[i], v)
		}
	}
	// The evicted source recomputes to the same bits.
	fresh := s.Row(0)
	if &fresh[0] == &row0[0] {
		t.Fatal("row 0 still cached after 9 newer sources in a 4-row cache")
	}
	for i := range fresh {
		if math.Float64bits(fresh[i]) != math.Float64bits(borrowed[i]) {
			t.Fatalf("recomputed row differs at index %d", i)
		}
	}
}

// TestSparseLRUKeepsHotRows: re-touching a source refreshes its LRU
// position, so the hot row survives a pass over capRows-1 other sources.
func TestSparseLRUKeepsHotRows(t *testing.T) {
	g := chordedRing(16, 6, 5)
	s := NewSparse(g, 3)
	hot := s.Row(0)
	for round := 0; round < 4; round++ {
		for u := 1; u <= 2; u++ {
			s.Row(u)
		}
		//repcheck:allow-rowborrow this test pins LRU retention by slice identity across intervening Row calls
		if got := s.Row(0); &got[0] != &hot[0] {
			t.Fatalf("round %d: hot row was evicted despite being re-touched", round)
		}
	}
}

// TestSparseConcurrentAccess hammers one small-capacity Sparse from many
// goroutines so hits, misses, evictions, and the singleflight publish
// race all interleave; run under -race this is the satellite's eviction
// check, and every returned value must still be dense-exact.
func TestSparseConcurrentAccess(t *testing.T) {
	g := chordedRing(32, 16, 6)
	dense := g.AllPairs()
	s := NewSparse(g, 4)
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				u, v := rng.Intn(32), rng.Intn(32)
				if math.Float64bits(s.Dist(u, v)) != math.Float64bits(dense.Dist(u, v)) {
					select {
					case errs <- "concurrent Dist diverged from dense":
					default:
					}
					return
				}
				row := s.Row(u)
				if math.Float64bits(row[v]) != math.Float64bits(dense.Dist(u, v)) {
					select {
					case errs <- "concurrent Row diverged from dense":
					default:
					}
					return
				}
			}
		}(int64(w + 1))
	}
	wg.Wait()
	close(errs)
	if msg, ok := <-errs; ok {
		t.Fatal(msg)
	}
	if got := s.CachedRows(); got > 4 {
		t.Fatalf("CachedRows = %d after concurrent load, capacity is 4", got)
	}
}

// TestLandmarkUpperBound: the landmark estimate is an upper bound on the
// true distance (up to float rounding of the two summed halves), zero on
// the diagonal, and exact from a landmark itself (the landmark lies on
// the path, so the triangle bound is tight).
func TestLandmarkUpperBound(t *testing.T) {
	g := chordedRing(30, 12, 7)
	dense := g.AllPairs()
	l := NewLandmark(g, 4)
	if l.Exact() {
		t.Fatal("k=4 < n=30 must not be exact mode")
	}
	marks := l.Landmarks()
	if len(marks) != 4 {
		t.Fatalf("got %d landmarks, want 4", len(marks))
	}
	if marks[0] != 0 {
		t.Fatalf("farthest-point sweep must start at node 0, got %d", marks[0])
	}
	const slack = 1e-9
	for u := 0; u < 30; u++ {
		row := l.Row(u)
		for v := 0; v < 30; v++ {
			truth := dense.Dist(u, v)
			est := l.Dist(u, v)
			//repcheck:allow-rowborrow Landmark.Row allocates per call (see its doc); this pins Dist/Row agreement bit for bit
			if math.Float64bits(est) != math.Float64bits(row[v]) {
				t.Fatalf("Dist(%d,%d)=%v disagrees with Row value %v", u, v, est, row[v])
			}
			if u == v && est != 0 {
				t.Fatalf("Dist(%d,%d) = %v, want 0", u, v, est)
			}
			if est < truth-slack*truth {
				t.Fatalf("landmark bound %v below true distance %v for (%d,%d)", est, truth, u, v)
			}
		}
	}
	for _, L := range marks {
		for v := 0; v < 30; v++ {
			truth, est := dense.Dist(L, v), l.Dist(L, v)
			if math.Abs(est-truth) > slack*(1+truth) {
				t.Fatalf("Dist from landmark %d to %d = %v, want exact %v", L, v, est, truth)
			}
		}
	}
}

// TestLandmarkExactMode: k >= n delegates to the sparse backend and is
// bit-identical to dense.
func TestLandmarkExactMode(t *testing.T) {
	g := chordedRing(12, 5, 8)
	l := NewLandmark(g, 12)
	if !l.Exact() {
		t.Fatal("k = n must be exact mode")
	}
	if l.Landmarks() != nil {
		t.Fatal("exact mode must report no landmark set")
	}
	assertBitIdentical(t, g.AllPairs(), l)
}

// TestLandmarkDisconnected: bounds across islands are Infinity, within an
// island finite.
func TestLandmarkDisconnected(t *testing.T) {
	g := twoIslands()
	l := NewLandmark(g, 3)
	if d := l.Dist(0, 4); d != Infinity {
		t.Fatalf("Dist across islands = %v, want Infinity", d)
	}
	if len(l.Landmarks()) == 0 {
		t.Fatal("no landmarks selected")
	}
}

// TestCenterOfParity: CenterOf over any exact backend picks the node the
// dense matrix picks, including on a disconnected graph (where every
// eccentricity is Infinity and the tie breaks to node 0).
func TestCenterOfParity(t *testing.T) {
	graphs := map[string]*Graph{
		"chorded":      chordedRing(25, 10, 9),
		"disconnected": twoIslands(),
	}
	names := make([]string, 0, len(graphs))
	for name := range graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := graphs[name]
		dense := g.AllPairs()
		want := dense.Center()
		if got := CenterOf(dense); got != want {
			t.Fatalf("%s: CenterOf(dense) = %d, Matrix.Center = %d", name, got, want)
		}
		if got := CenterOf(NewSparse(g, 3)); got != want {
			t.Fatalf("%s: CenterOf(sparse) = %d, want %d", name, got, want)
		}
		if got := CenterOf(NewLandmark(g, g.N())); got != want {
			t.Fatalf("%s: CenterOf(landmark-exact) = %d, want %d", name, got, want)
		}
	}
	if got := CenterOf(New(0).AllPairs()); got != -1 {
		t.Fatalf("CenterOf(empty) = %d, want -1", got)
	}
}

// TestNewMetricSpecs pins the spec grammar of the -metric flag.
func TestNewMetricSpecs(t *testing.T) {
	g := chordedRing(10, 3, 10)
	good := []struct {
		spec  string
		check func(m Metric) bool
	}{
		{"", func(m Metric) bool { _, ok := m.(*Matrix); return ok }},
		{"dense", func(m Metric) bool { _, ok := m.(*Matrix); return ok }},
		{"sparse", func(m Metric) bool { s, ok := m.(*Sparse); return ok && s.capRows == DefaultSparseRows }},
		{"sparse:7", func(m Metric) bool { s, ok := m.(*Sparse); return ok && s.capRows == 7 }},
		{"landmark", func(m Metric) bool { l, ok := m.(*Landmark); return ok && l.k == DefaultLandmarks }},
		{"landmark:3", func(m Metric) bool { l, ok := m.(*Landmark); return ok && l.k == 3 && !l.Exact() }},
	}
	for _, tc := range good {
		m, err := NewMetric(g, tc.spec)
		if err != nil {
			t.Fatalf("NewMetric(%q): %v", tc.spec, err)
		}
		if !tc.check(m) {
			t.Fatalf("NewMetric(%q) built the wrong backend: %T", tc.spec, m)
		}
	}
	for _, spec := range []string{"dense:4", "sparse:0", "sparse:-1", "sparse:x", "landmark:0", "landmark:huge", "bogus", "sparse:"} {
		if _, err := NewMetric(g, spec); err == nil {
			t.Fatalf("NewMetric(%q) accepted an invalid spec", spec)
		}
	}
}
