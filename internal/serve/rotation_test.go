package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/online"
	"repro/internal/sim"
)

// rotationConfig is recoveryConfig with aggressive segment rotation, so a
// short feed crosses many rotation boundaries and truncation has sealed
// segments to delete.
func rotationConfig(t *testing.T, dir string, fault Fault) Config {
	t.Helper()
	cfg := recoveryConfig(t, dir, fault)
	cfg.SegmentEntries = 8
	return cfg
}

// countSegments lists the WAL segment files on disk.
func countSegments(t *testing.T, dir string) int {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		t.Fatal(err)
	}
	return len(names)
}

// TestRotationTruncationRecoveryParity is the satellite's pinned guarantee:
// a server whose WAL rotated and was truncated behind restorable
// checkpoints crashes, restarts from a log whose prefix is gone (recovery
// must restore the checkpoint and replay only the retained tail — a tail
// that starts mid-segment-chain, across a rotation boundary), keeps
// serving, and its final ledger is byte-identical to Replay over the same
// truncated state directory.
func TestRotationTruncationRecoveryParity(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(rotationConfig(t, dir, Fault{Kind: FaultKill, After: 5}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s1.queue.Close)
	killed := make(chan struct{})
	s1.cfg.Kill = func(string) { close(killed) }
	s1.Start()
	feedPhase(t, s1, 8, 0)
	<-killed

	// The feed wrote 8×6+3 = 51 entries across ceil(51/8) segments; the
	// checkpoints (every 2 rounds) must have anchored real deletions.
	if base := s1.wal.Base(); base == 0 {
		t.Fatal("no sealed segment was truncated — test never crossed a truncation boundary")
	}
	written := s1.wal.Count()
	if on := countSegments(t, dir); on >= (written+7)/8 {
		t.Fatalf("%d segments on disk for %d entries — truncation deleted nothing", on, written)
	}

	cfg2 := rotationConfig(t, dir, Fault{})
	s2, err := New(cfg2)
	if err != nil {
		t.Fatalf("recovery from truncated WAL failed: %v", err)
	}
	if got := s2.LedgerSnapshot().Cursor; got != written {
		t.Fatalf("recovered cursor %d, WAL has %d entries", got, written)
	}
	s2.Start()
	feedPhase(t, s2, 4, 100)
	waitCursor(t, s2, s2.wal.Count())
	s2.Drain()

	recovered := s2.LedgerSnapshot()
	engine, err := Replay(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	baseline := DumpLedger(engine)
	if !reflect.DeepEqual(recovered, baseline) {
		t.Fatalf("recovered ledger diverges from the truncated-WAL baseline:\n  recovered %+v\n  baseline  %+v", recovered, baseline)
	}
	got, err := json.Marshal(recovered)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("ledger JSON not byte-identical:\n  %s\n  %s", got, want)
	}
	if recovered.Rounds == 0 || recovered.Total <= 0 {
		t.Fatalf("degenerate ledger: %+v", recovered)
	}
}

// TestRotationParityAgainstSingleFile: the same admitted stream produces a
// bit-identical ledger whether the WAL rotated (and truncated) or stayed a
// single file — segmentation is a storage concern, invisible to the game.
func TestRotationParityAgainstSingleFile(t *testing.T) {
	ledgers := make([]LedgerDump, 2)
	for i, segEntries := range []int{0, 8} {
		dir := t.TempDir()
		cfg := recoveryConfig(t, dir, Fault{})
		cfg.SegmentEntries = segEntries
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Start()
		feedPhase(t, s, 8, 0)
		waitCursor(t, s, s.wal.Count())
		s.Drain()
		ledgers[i] = s.LedgerSnapshot()
	}
	if !reflect.DeepEqual(ledgers[0], ledgers[1]) {
		t.Fatalf("segmented ledger diverges from single-file ledger:\n  single   %+v\n  rotated  %+v", ledgers[0], ledgers[1])
	}
}

// TestLegacyWALMigration: a state directory laid out by the
// pre-segmentation code (a single wal.log) is adopted transparently — the
// file is renamed to segment 1 and recovery replays it in full.
func TestLegacyWALMigration(t *testing.T) {
	dir := t.TempDir()
	cfg := recoveryConfig(t, dir, Fault{})
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	feedPhase(t, s1, 4, 0)
	waitCursor(t, s1, s1.wal.Count())
	s1.Drain()
	before := s1.LedgerSnapshot()

	// Re-create the legacy layout: the whole log as wal.log.
	if err := os.Rename(filepath.Join(dir, "wal-000001.log"), filepath.Join(dir, WALName)); err != nil {
		t.Fatal(err)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("legacy wal.log not adopted: %v", err)
	}
	if got := s2.LedgerSnapshot(); !reflect.DeepEqual(before, got) {
		t.Fatalf("migrated ledger diverges:\n  before %+v\n  after  %+v", before, got)
	}
	if _, err := os.Stat(filepath.Join(dir, WALName)); !os.IsNotExist(err) {
		t.Fatal("legacy wal.log still present after migration")
	}
	if countSegments(t, dir) == 0 {
		t.Fatal("migration left no segment files")
	}
	s2.queue.Close()
}

// nonSnapshotAlg hides ONTH's StateSnapshotter implementation, standing in
// for strategies whose state cannot be serialised (e.g. ONSAMP's RNG).
type nonSnapshotAlg struct{ sim.Algorithm }

// TestNonSnapshotAlgorithmKeepsAllSegments: without sim.StateSnapshotter a
// checkpoint anchors nothing — segments rotate but every one is retained,
// and recovery still works by full replay from entry zero.
func TestNonSnapshotAlgorithmKeepsAllSegments(t *testing.T) {
	dir := t.TempDir()
	cfg := rotationConfig(t, dir, Fault{})
	cfg.NewStream = testFactoryAlg(t, func() sim.Algorithm {
		return &nonSnapshotAlg{Algorithm: online.NewONTH()}
	})
	cfg.Fingerprint = "non-snapshot-test"
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	feedPhase(t, s1, 8, 0)
	waitCursor(t, s1, s1.wal.Count())
	written := s1.wal.Count()
	if base := s1.wal.Base(); base != 0 {
		t.Fatalf("truncation ran (base %d) for an algorithm that cannot be restored", base)
	}
	s1.Drain()
	before := s1.LedgerSnapshot()

	if on, want := countSegments(t, dir), (written+7)/8; on != want {
		t.Fatalf("%d segments on disk, want all %d retained", on, want)
	}
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("full-replay recovery failed: %v", err)
	}
	if got := s2.LedgerSnapshot(); !reflect.DeepEqual(before, got) {
		t.Fatalf("full-replay ledger diverges:\n  before %+v\n  after  %+v", before, got)
	}
	s2.queue.Close()
}
