package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Entry is one write-ahead-log record: an admitted arrival (Count requests
// at Node under Class) or a round tick (the timer or an explicit /tick
// closing the current demand window). Entries are appended in admission
// order — the single order the engine applies them in, live and on replay,
// which is what makes recovery bit-identical.
type Entry struct {
	Node  int   `json:"n"`
	Count int   `json:"c,omitempty"`
	Class Class `json:"k,omitempty"`
	Tick  bool  `json:"t,omitempty"`
}

// TickEntry is the record of one round boundary.
func TickEntry() Entry { return Entry{Node: -1, Tick: true} }

// ArrivalEntry is the record of one admitted request batch.
func ArrivalEntry(r Request) Entry {
	return Entry{Node: r.Node, Count: r.Count, Class: r.Class}
}

// Request converts an arrival entry back.
func (e Entry) Request() Request { return Request{Node: e.Node, Count: e.Count, Class: e.Class} }

// walHeader is the first line of every WAL file: a format version plus the
// serving configuration's fingerprint, so a restart with a different
// topology, algorithm, or window size refuses to replay a stale log
// instead of silently producing a divergent ledger. Segmented logs add
// Seq (the segment's position in the chain) and Base (the global index of
// the segment's first entry); both are omitted from single-file logs, so
// a pre-segmentation wal.log parses as {Seq: 0, Base: 0}.
type walHeader struct {
	WAL         int    `json:"wal"`
	Fingerprint string `json:"fingerprint"`
	Seq         int    `json:"seq,omitempty"`
	Base        int    `json:"base,omitempty"`
}

const walVersion = 1

// WAL is one append-only arrival log file — a whole log in single-file
// mode, or one segment of a rotated Log. Writes are buffered and flushed
// per append; a crash can lose at most the torn final line, which Open
// discards (and truncates) — every complete line is replayable.
type WAL struct {
	f     *os.File
	w     *bufio.Writer
	count int
}

// CreateWAL starts a fresh log at path, truncating any previous one.
func CreateWAL(path, fingerprint string) (*WAL, error) {
	return createSegment(path, walHeader{WAL: walVersion, Fingerprint: fingerprint})
}

// createSegment starts a fresh log file with an explicit header.
func createSegment(path string, h walHeader) (*WAL, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{f: f, w: bufio.NewWriter(f)}
	hdr, err := json.Marshal(h)
	if err != nil {
		f.Close()
		return nil, err
	}
	if _, err := w.w.Write(append(hdr, '\n')); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// OpenWAL reads an existing single-file log back for recovery: it
// validates the header fingerprint, returns every complete entry in append
// order, truncates a torn final line (the one write a crash may have
// interrupted), and leaves the file positioned for further appends.
func OpenWAL(path, fingerprint string) (*WAL, []Entry, error) {
	w, _, entries, err := openSegment(path, fingerprint)
	return w, entries, err
}

// openSegment is OpenWAL returning the parsed header too, for the
// segmented Log to validate sequence numbers and bases.
func openSegment(path, fingerprint string) (*WAL, walHeader, []Entry, error) {
	var hdr walHeader
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, hdr, nil, err
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, hdr, nil, err
	}
	// Only complete (newline-terminated) lines are replayable; whatever
	// follows the last newline is a torn append.
	good := bytes.LastIndexByte(data, '\n') + 1
	lines := bytes.Split(data[:good], []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		f.Close()
		return nil, hdr, nil, fmt.Errorf("serve: %s: empty WAL (missing header)", path)
	}
	if err := json.Unmarshal(lines[0], &hdr); err != nil || hdr.WAL != walVersion {
		f.Close()
		return nil, hdr, nil, fmt.Errorf("serve: %s: not a v%d WAL", path, walVersion)
	}
	if hdr.Fingerprint != fingerprint {
		f.Close()
		return nil, hdr, nil, fmt.Errorf("serve: %s was written under config %q, this server is %q — refusing to replay",
			path, hdr.Fingerprint, fingerprint)
	}
	entries := make([]Entry, 0, len(lines)-1)
	for i, line := range lines[1:] {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			f.Close()
			return nil, hdr, nil, fmt.Errorf("serve: %s: bad WAL entry %d: %w", path, i, err)
		}
		entries = append(entries, e)
	}
	if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, hdr, nil, err
		}
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, hdr, nil, err
	}
	return &WAL{f: f, w: bufio.NewWriter(f), count: len(entries)}, hdr, entries, nil
}

// Append logs one entry and flushes it to the OS.
func (w *WAL) Append(e Entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := w.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of entries appended or read back.
func (w *WAL) Count() int { return w.count }

// Sync forces the log to stable storage.
func (w *WAL) Sync() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close flushes and closes the log.
func (w *WAL) Close() error {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
