package serve

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildEngine serves `rounds` sequence rounds through a fresh engine.
func buildEngine(t *testing.T, rounds int) *Engine {
	t.Helper()
	_, seq := testSequence(t, rounds)
	st, err := testFactory(t)()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, 1<<30, DefaultKeepRounds)
	for i := 0; i < rounds; i++ {
		if out := feedRound(t, e, seq.Demand(i)); !out.Served {
			t.Fatalf("round %d not served", i)
		}
	}
	return e
}

func TestCheckpointRoundTripAndMatch(t *testing.T) {
	e := buildEngine(t, 10)
	c := checkpointOf(e, "fp")
	path := filepath.Join(t.TempDir(), CheckpointName)
	if err := WriteCheckpoint(path, c); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpoint(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if err := back.matches(e); err != nil {
		t.Fatalf("round-tripped checkpoint does not validate its own engine: %v", err)
	}
	// A replayed twin of the engine validates too — the recovery path.
	twin := buildEngine(t, 10)
	if err := back.matches(twin); err != nil {
		t.Fatalf("deterministic twin rejected: %v", err)
	}
	// An engine in a different state is rejected.
	ahead := buildEngine(t, 11)
	if err := back.matches(ahead); err == nil {
		t.Fatal("checkpoint matched an engine one round ahead")
	}
}

func TestCheckpointRefusesForeignFingerprint(t *testing.T) {
	e := buildEngine(t, 3)
	path := filepath.Join(t.TempDir(), CheckpointName)
	if err := WriteCheckpoint(path, checkpointOf(e, "config-a")); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path, "config-b"); err == nil ||
		!strings.Contains(err.Error(), "refusing to restore") {
		t.Fatalf("foreign fingerprint accepted: %v", err)
	}
}

func TestCheckpointWriteIsAtomic(t *testing.T) {
	e := buildEngine(t, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, CheckpointName)
	for i := 0; i < 3; i++ {
		if err := WriteCheckpoint(path, checkpointOf(e, "fp")); err != nil {
			t.Fatal(err)
		}
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0].Name() != CheckpointName {
		var got []string
		for _, n := range names {
			got = append(got, n.Name())
		}
		t.Fatalf("state dir after rewrites: %v (temp files leaked?)", got)
	}
	if _, err := ReadCheckpoint(path, "fp"); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRejectsCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), CheckpointName)
	if err := os.WriteFile(path, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(path, "fp"); err == nil {
		t.Fatal("corrupt checkpoint accepted")
	}
}
