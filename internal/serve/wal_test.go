package serve

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestWALRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	wrote := []Entry{
		ArrivalEntry(Request{Node: 3, Count: 2, Class: Critical}),
		TickEntry(),
		ArrivalEntry(Request{Node: 0, Count: 1, Class: Batch}),
	}
	for _, e := range wrote {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != len(wrote) {
		t.Fatalf("count %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, entries, err := OpenWAL(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(entries, wrote) {
		t.Fatalf("replayed %+v, wrote %+v", entries, wrote)
	}
	// Appends after recovery land behind the replayed entries.
	extra := ArrivalEntry(Request{Node: 7, Count: 4, Class: Standard})
	if err := w2.Append(extra); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, entries, err = OpenWAL(path, "fp-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 || !reflect.DeepEqual(entries[3], extra) {
		t.Fatalf("after reopen: %+v", entries)
	}
}

func TestWALTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(TickEntry()); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, newline-less final record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"n":5,"c"`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, entries, err := OpenWAL(path, "fp")
	if err != nil {
		t.Fatalf("torn tail not tolerated: %v", err)
	}
	if len(entries) != 1 || !entries[0].Tick {
		t.Fatalf("replayed %+v", entries)
	}
	// The torn bytes are gone: the next append produces a clean log.
	if err := w2.Append(ArrivalEntry(Request{Node: 5, Count: 1})); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	_, entries, err = OpenWAL(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Node != 5 {
		t.Fatalf("after torn-tail recovery: %+v", entries)
	}
}

func TestWALRefusesForeignFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := CreateWAL(path, "config-a")
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, err := OpenWAL(path, "config-b"); err == nil ||
		!strings.Contains(err.Error(), "refusing to replay") {
		t.Fatalf("foreign fingerprint accepted: %v", err)
	}
}

func TestWALRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.log")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(empty, "fp"); err == nil {
		t.Fatal("empty file accepted as a WAL")
	}
	junk := filepath.Join(dir, "junk.log")
	if err := os.WriteFile(junk, []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(junk, "fp"); err == nil {
		t.Fatal("junk header accepted as a WAL")
	}
}
