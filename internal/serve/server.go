package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sim"
)

// State-directory file names. WALName is the legacy single-file log;
// current logs are segment chains (wal-000001.log, …) managed by Log, and
// an existing wal.log is adopted as segment 1 on open.
const (
	WALName        = "wal.log"
	CheckpointName = "checkpoint.json"
)

// DefaultCheckpointEvery is the closed-round interval between checkpoints.
const DefaultCheckpointEvery = 16

// Config assembles a Server. NewStream must be a deterministic factory —
// every call (including the replay on a restart) must build a bit-identical
// environment, algorithm, and stream; thread all randomness from an
// explicit seed. Fingerprint names that configuration (topology, scenario,
// algorithm, seed, window); the WAL and checkpoints embed it and refuse to
// restore across a mismatch.
type Config struct {
	NewStream   func() (*sim.Stream, error)
	Fingerprint string

	Window          int     // requests per demand window (DefaultWindow)
	KeepRounds      int     // rolling ledger ring (DefaultKeepRounds)
	QueueCap        int     // ingest queue bound (DefaultQueueCap)
	ShedFraction    float64 // non-critical shed threshold (DefaultShedFraction)
	CheckpointEvery int     // closed rounds between checkpoints (DefaultCheckpointEvery)

	// SegmentEntries rotates the WAL to a fresh segment file every that
	// many appends; sealed segments wholly below a restorable checkpoint's
	// cursor are then deleted, keeping a long run's state directory
	// bounded. Zero (the default) keeps a single ever-growing segment.
	// Truncation requires the algorithm to implement sim.StateSnapshotter
	// (ONTH and ONBR do); for other algorithms segments rotate but are all
	// retained, since recovery must replay the log from entry zero.
	SegmentEntries int

	// Dir is the state directory for the WAL and checkpoints; empty runs
	// ephemeral (no persistence, no recovery).
	Dir string

	// RequestTimeout bounds each HTTP request (default 5s).
	RequestTimeout time.Duration

	// Fault is the injected failure, if any (see ParseFault).
	Fault Fault

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...interface{})

	// Kill terminates the process for the kill fault; nil means log and
	// os.Exit(137). Tests override it to keep the kill in-process.
	Kill func(reason string)
}

// pendingItem tracks one admitted batch awaiting its round, for sojourn
// latency.
type pendingItem struct {
	class Class
	count int
	at    time.Time
}

// Server owns the serving loop: the bounded ingest queue, the single
// consumer goroutine driving the engine, the WAL, periodic checkpoints,
// and graceful drain. Build with New (which also performs crash recovery),
// then Start; Drain stops admission, flushes the queue, and writes the
// final checkpoint.
type Server struct {
	cfg     Config
	queue   *IngestQueue
	metrics *Metrics
	wal     *Log

	mu     sync.Mutex // guards engine between the consumer and snapshots
	engine *Engine

	draining     atomic.Bool
	started      atomic.Bool
	consumerDone chan struct{}

	// consumer-goroutine state (no locking needed)
	pending     []pendingItem
	closedSince int // closed rounds since the last checkpoint attempt
	closedTotal int // closed rounds since process start (fault trigger)
	ckptOK      int // successful checkpoints (ckptfail trigger)
	admits      int // admitted ingests since process start (flood trigger)
}

// New builds a server and, when the state directory already holds a WAL,
// recovers. With the full log on disk it is replayed through a fresh
// deterministic engine, and the last checkpoint (if any) is validated
// bit-for-bit against the replayed state at its cursor. When truncation
// has deleted the log's prefix, the checkpoint is restored directly and
// only the retained tail is replayed. Either way, after recovery the
// ledger is exactly what an uninterrupted run over the same admitted
// stream would hold.
func New(cfg Config) (*Server, error) {
	if cfg.NewStream == nil {
		return nil, fmt.Errorf("serve: Config.NewStream is required")
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = DefaultCheckpointEvery
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 5 * time.Second
	}
	stream, err := cfg.NewStream()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:          cfg,
		queue:        NewIngestQueue(cfg.QueueCap, cfg.ShedFraction),
		metrics:      &Metrics{},
		engine:       NewEngine(stream, cfg.Window, cfg.KeepRounds),
		consumerDone: make(chan struct{}),
	}
	if cfg.Kill == nil {
		s.cfg.Kill = func(reason string) {
			s.logf("%s", reason)
			os.Exit(137)
		}
	}
	if cfg.Dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	exists, err := LogExists(cfg.Dir)
	if err != nil {
		return nil, err
	}
	if !exists {
		wal, err := CreateLog(cfg.Dir, cfg.Fingerprint, cfg.SegmentEntries)
		if err != nil {
			return nil, err
		}
		s.wal = wal
		return s, nil
	}
	wal, base, entries, err := OpenLog(cfg.Dir, cfg.Fingerprint, cfg.SegmentEntries)
	if err != nil {
		return nil, err
	}
	replayed, err := recoverEngine(s.engine, cfg, base, entries)
	if err != nil {
		wal.Close()
		return nil, err
	}
	s.metrics.ObserveReplay(replayed)
	if replayed > 0 || len(entries) > 0 || base > 0 {
		s.logf("recovered: replayed %d WAL entries (%d rounds) from base %d, resuming at round %d cursor %d",
			len(entries), replayed, base, s.engine.Round(), s.engine.Cursor())
	}
	s.wal = wal
	return s, nil
}

// recoverEngine rebuilds a fresh engine from the state directory's
// checkpoint and retained WAL entries (whose first global index is base),
// returning how many rounds the replay closed. base == 0 is the original
// full-replay path: every entry is applied and the checkpoint, if any,
// validates bit-for-bit at its cursor. base > 0 means truncation deleted
// the log's prefix; then a restorable checkpoint inside the retained
// range is mandatory, the engine resumes from it, and only the entries
// past its cursor are replayed.
func recoverEngine(engine *Engine, cfg Config, base int, entries []Entry) (int, error) {
	var ckpt *Checkpoint
	ckptPath := filepath.Join(cfg.Dir, CheckpointName)
	if _, statErr := os.Stat(ckptPath); statErr == nil {
		c, err := ReadCheckpoint(ckptPath, cfg.Fingerprint)
		if err != nil {
			return 0, err
		}
		ckpt = c
		if ckpt.Cursor > base+len(entries) {
			return 0, fmt.Errorf("serve: checkpoint cursor %d beyond WAL length %d — log lost entries", ckpt.Cursor, base+len(entries))
		}
	}
	if base > 0 {
		if ckpt == nil {
			return 0, fmt.Errorf("serve: WAL truncated to base %d but no checkpoint to restore from — state directory corrupt", base)
		}
		if ckpt.Cursor < base {
			return 0, fmt.Errorf("serve: checkpoint cursor %d below WAL base %d — log lost entries", ckpt.Cursor, base)
		}
		if err := ckpt.restore(engine); err != nil {
			return 0, err
		}
		replayed := 0
		for _, e := range entries[ckpt.Cursor-base:] {
			if engine.Apply(e).Closed() {
				replayed++
			}
		}
		return replayed, nil
	}
	replayed := 0
	for i, e := range entries {
		if ckpt != nil && i == ckpt.Cursor {
			if err := ckpt.matches(engine); err != nil {
				return 0, fmt.Errorf("serve: replayed state diverges from checkpoint at cursor %d: %w", ckpt.Cursor, err)
			}
		}
		if engine.Apply(e).Closed() {
			replayed++
		}
	}
	if ckpt != nil && ckpt.Cursor == len(entries) {
		if err := ckpt.matches(engine); err != nil {
			return 0, fmt.Errorf("serve: replayed state diverges from checkpoint at cursor %d: %w", ckpt.Cursor, err)
		}
	}
	return replayed, nil
}

// Start launches the consumer goroutine. It is idempotent.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	go s.consume()
}

// Ingest admits one request: validation, admission control, WAL append,
// and enqueue. Under an armed flood fault every admission is amplified
// with synthetic standard-class copies pushed through the same admission
// path (so the flood is itself replayable).
func (s *Server) Ingest(r Request) error {
	if r.Count == 0 {
		r.Count = 1
	}
	if err := r.Validate(s.n()); err != nil {
		return err
	}
	if err := s.queue.Admit(r, time.Now(), s.persist); err != nil { //repcheck:allow-wallclock admission timestamps are live-traffic metadata; replay takes times from the WAL
		return err
	}
	s.admitFlood(r)
	return nil
}

// admitFlood injects the flood fault's synthetic copies; their shed errors
// are discarded (overload is the point).
func (s *Server) admitFlood(r Request) {
	f := s.cfg.Fault
	if f.Kind != FaultFlood {
		return
	}
	s.mu.Lock()
	s.admits++
	armed := f.Active(s.admits)
	s.mu.Unlock()
	if !armed {
		return
	}
	for i := 1; i < f.Factor; i++ {
		synthetic := Request{Node: r.Node, Count: r.Count, Class: Standard}
		if err := s.queue.Admit(synthetic, time.Now(), s.persist); err != nil { //repcheck:allow-wallclock admission timestamps are live-traffic metadata; replay takes times from the WAL
			return // queue saturated — flood achieved
		}
	}
}

// Tick closes the current demand window explicitly. Ticks are WAL-logged,
// so replay reproduces the same round boundaries.
func (s *Server) Tick() error {
	return s.queue.Tick(time.Now(), s.persist) //repcheck:allow-wallclock admission timestamps are live-traffic metadata; replay takes times from the WAL
}

// persist is the queue's WAL hook, called under the queue lock so the log
// order equals the queue order.
func (s *Server) persist(e Entry) error {
	if s.wal == nil {
		return nil
	}
	return s.wal.Append(e)
}

// consume is the single goroutine driving the engine.
func (s *Server) consume() {
	defer close(s.consumerDone)
	for {
		item, ok := s.queue.Pop()
		if !ok {
			return
		}
		s.mu.Lock()
		out := s.engine.Apply(item.e)
		s.mu.Unlock()
		if item.e.Tick {
			s.metrics.ObserveTick()
		} else {
			s.pending = append(s.pending, pendingItem{class: item.e.Class, count: item.e.Count, at: item.at})
		}
		if !out.Closed() {
			continue
		}
		now := time.Now() //repcheck:allow-wallclock latency metrics measure real elapsed time for live traffic
		if out.Served {
			for _, p := range s.pending {
				s.metrics.ObserveServed(p.class, p.count, now.Sub(p.at))
			}
		} else {
			for _, p := range s.pending {
				s.metrics.ObserveQuarantined(p.class, p.count)
			}
			s.logf("%v", out.Quarantined)
		}
		s.pending = s.pending[:0]
		s.metrics.ObserveRound(out)
		s.closedTotal++
		if f := s.cfg.Fault; f.Kind == FaultSlow && f.Active(s.closedTotal) {
			time.Sleep(f.Delay)
		}
		// The kill fires before the periodic checkpoint, so the WAL is
		// always ahead of the last checkpoint — the case recovery must
		// replay through.
		if f := s.cfg.Fault; f.Kind == FaultKill && f.Active(s.closedTotal) {
			s.cfg.Kill(fmt.Sprintf("serve: fault kill after %d rounds (cursor %d)", s.closedTotal, s.engine.Cursor()))
			return // test Kill hooks return instead of exiting
		}
		s.closedSince++
		if s.closedSince >= s.cfg.CheckpointEvery {
			s.closedSince = 0
			s.checkpoint()
		}
	}
}

// checkpoint writes one periodic snapshot, tolerating failure: an injected
// (or real) write error is counted and logged, and the previous complete
// checkpoint stays in place thanks to the atomic rename.
func (s *Server) checkpoint() {
	if s.cfg.Dir == "" {
		return
	}
	if f := s.cfg.Fault; f.Kind == FaultCkptFail && f.Active(s.ckptOK) {
		s.metrics.ObserveCheckpoint(false)
		s.logf("checkpoint write failed (injected fault); previous checkpoint retained")
		return
	}
	if err := s.wal.Sync(); err != nil {
		s.metrics.ObserveCheckpoint(false)
		s.logf("checkpoint skipped: WAL sync: %v", err)
		return
	}
	s.mu.Lock()
	c := checkpointOf(s.engine, s.cfg.Fingerprint)
	s.mu.Unlock()
	if err := WriteCheckpoint(filepath.Join(s.cfg.Dir, CheckpointName), c); err != nil {
		s.metrics.ObserveCheckpoint(false)
		s.logf("checkpoint write failed: %v", err)
		return
	}
	s.ckptOK++
	s.metrics.ObserveCheckpoint(true)
	// The durable checkpoint anchors truncation: sealed segments wholly
	// below its cursor are no longer needed for recovery (restore covers
	// them), so a long run's state directory stays bounded. Non-restorable
	// checkpoints (algorithm without state snapshots) anchor nothing —
	// recovery would still need the full log.
	if c.Restorable() {
		removed, err := s.wal.TruncateBefore(c.Cursor)
		if err != nil {
			s.logf("WAL truncation: %v", err)
		} else if removed > 0 {
			s.logf("WAL truncated: removed %d sealed segments below cursor %d (%d on disk)", removed, c.Cursor, s.wal.Segments())
		}
	}
}

// Drain is the graceful shutdown: stop admitting (readyz turns 503, ingest
// returns draining), let the consumer flush every already-admitted entry,
// then write a final checkpoint and close the WAL. Safe to call once.
func (s *Server) Drain() {
	if !s.draining.CompareAndSwap(false, true) {
		<-s.consumerDone
		return
	}
	s.queue.Close()
	if s.started.Load() {
		<-s.consumerDone
	} else {
		close(s.consumerDone)
	}
	s.checkpoint()
	if s.wal != nil {
		if err := s.wal.Sync(); err != nil {
			s.logf("final WAL sync: %v", err)
		}
		if err := s.wal.Close(); err != nil {
			s.logf("WAL close: %v", err)
		}
		s.wal = nil
	}
}

// Draining reports whether the server stopped admitting.
func (s *Server) Draining() bool { return s.draining.Load() }

// n returns the network size.
func (s *Server) n() int {
	return s.engine.Stream().Env().Graph.N()
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// MetricsSnapshot captures the full observable state for GET /metrics.
func (s *Server) MetricsSnapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metrics.snapshot(s.queue, s.engine, s.engine.WindowCount())
}

// PlacementView is the GET /placement shape.
type PlacementView struct {
	Round     int   `json:"round"`
	Placement []int `json:"placement"`
	Active    int   `json:"active"`
	Inactive  int   `json:"inactive"`
}

// PlacementSnapshot captures the current configuration.
func (s *Server) PlacementSnapshot() PlacementView {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.engine.Placement()
	return PlacementView{
		Round:     s.engine.Round(),
		Placement: p,
		Active:    len(p),
		Inactive:  s.engine.Stream().Algorithm().Inactive(),
	}
}

// LedgerDump is the full-precision service ledger: GET /ledger and
// flexserve -replay emit exactly this shape, so "the recovered ledger is
// bit-identical" is checkable with a byte diff. TotalBits carries the exact
// float bits; the float fields are the human-readable view.
type LedgerDump struct {
	Algorithm   string        `json:"algorithm"`
	Scenario    string        `json:"scenario"`
	Rounds      int           `json:"rounds"`
	Quarantined int           `json:"quarantined"`
	Cursor      int           `json:"cursor"`
	Placement   []int         `json:"placement"`
	TotalBits   [5]uint64     `json:"total_bits"`
	Totals      sim.Breakdown `json:"totals"`
	Total       float64       `json:"total"`
}

// DumpLedger snapshots an engine's ledger.
func DumpLedger(e *Engine) LedgerDump {
	totals := e.Totals()
	l := e.Stream().Ledger()
	return LedgerDump{
		Algorithm:   l.Algorithm,
		Scenario:    l.Scenario,
		Rounds:      e.Round(),
		Quarantined: e.Quarantined(),
		Cursor:      e.Cursor(),
		Placement:   e.Placement(),
		TotalBits:   totalsToBits(totals),
		Totals:      totals,
		Total:       totals.Total(),
	}
}

// LedgerSnapshot captures the rolling ledger for GET /ledger.
func (s *Server) LedgerSnapshot() LedgerDump {
	s.mu.Lock()
	defer s.mu.Unlock()
	return DumpLedger(s.engine)
}

// Replay rebuilds the ledger offline: the WAL in dir is replayed through a
// fresh engine built from the same configuration (restoring the
// checkpoint first when truncation removed the log's prefix). This is the
// "uninterrupted baseline" the recovery guarantee is stated against — a
// restarted server's /ledger must byte-match Replay of its own WAL.
func Replay(cfg Config) (*Engine, error) {
	if cfg.NewStream == nil {
		return nil, fmt.Errorf("serve: Config.NewStream is required")
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: replay needs a state directory")
	}
	stream, err := cfg.NewStream()
	if err != nil {
		return nil, err
	}
	engine := NewEngine(stream, cfg.Window, cfg.KeepRounds)
	wal, base, entries, err := OpenLog(cfg.Dir, cfg.Fingerprint, cfg.SegmentEntries)
	if err != nil {
		return nil, err
	}
	wal.Close()
	if base > 0 {
		if _, err := recoverEngine(engine, cfg, base, entries); err != nil {
			return nil, err
		}
		return engine, nil
	}
	for _, e := range entries {
		engine.Apply(e)
	}
	return engine, nil
}
