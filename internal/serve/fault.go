package serve

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// FaultKind selects one failure mode for the chaos harness. Each kind maps
// to a failure the hardening is supposed to absorb: a slow consumer backs
// the queue up into the shed threshold, an ingest flood amplifies admitted
// load, a checkpoint-write failure exercises the atomic-rename guarantee,
// and a mid-round kill exercises WAL-replay recovery.
type FaultKind int

const (
	// FaultNone injects nothing.
	FaultNone FaultKind = iota
	// FaultSlow delays the consumer after each served round ("slow").
	FaultSlow
	// FaultFlood amplifies every admitted ingest by a factor of synthetic
	// standard-class copies, pushed through the normal admission path
	// ("flood").
	FaultFlood
	// FaultCkptFail makes checkpoint writes fail ("ckptfail"); the previous
	// complete checkpoint must survive.
	FaultCkptFail
	// FaultKill terminates the process mid-window, after a round is served
	// but before the next checkpoint ("kill").
	FaultKill
)

// String returns the matrix name of the kind.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultSlow:
		return "slow"
	case FaultFlood:
		return "flood"
	case FaultCkptFail:
		return "ckptfail"
	case FaultKill:
		return "kill"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// Fault is one armed injection: Kind arms after After trigger events
// (served rounds for slow and kill, successful checkpoints for ckptfail,
// admitted ingests for flood), with a kind-specific parameter.
type Fault struct {
	Kind  FaultKind
	After int
	// Delay is the per-round consumer stall for slow faults.
	Delay time.Duration
	// Factor is the amplification for flood faults: each admitted ingest
	// spawns Factor-1 synthetic copies.
	Factor int
}

// Active reports whether the fault has armed given the number of trigger
// events seen so far.
func (f Fault) Active(events int) bool {
	return f.Kind != FaultNone && events >= f.After
}

// ParseFault parses the matrix syntax kind[:after[:param]], mirroring the
// figure runner's fault flags:
//
//	slow[:after[:delay]]      delay per served round (duration, default 50ms)
//	flood[:after[:factor]]    amplification factor (default 8)
//	ckptfail[:after]          checkpoint writes fail after N successes
//	kill[:after]              die mid-window after N served rounds
//	none / ""                 nothing
func ParseFault(s string) (Fault, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return Fault{}, nil
	}
	parts := strings.Split(s, ":")
	f := Fault{Delay: 50 * time.Millisecond, Factor: 8}
	switch parts[0] {
	case "slow":
		f.Kind = FaultSlow
	case "flood":
		f.Kind = FaultFlood
	case "ckptfail":
		f.Kind = FaultCkptFail
	case "kill":
		f.Kind = FaultKill
	default:
		return Fault{}, fmt.Errorf("serve: unknown fault %q (want slow, flood, ckptfail, kill)", parts[0])
	}
	if len(parts) > 1 && parts[1] != "" {
		after, err := strconv.Atoi(parts[1])
		if err != nil || after < 0 {
			return Fault{}, fmt.Errorf("serve: bad fault trigger count %q", parts[1])
		}
		f.After = after
	}
	if len(parts) > 2 && parts[2] != "" {
		switch f.Kind {
		case FaultSlow:
			d, err := time.ParseDuration(parts[2])
			if err != nil || d < 0 {
				return Fault{}, fmt.Errorf("serve: bad slow-fault delay %q", parts[2])
			}
			f.Delay = d
		case FaultFlood:
			factor, err := strconv.Atoi(parts[2])
			if err != nil || factor < 2 {
				return Fault{}, fmt.Errorf("serve: bad flood factor %q (want >= 2)", parts[2])
			}
			f.Factor = factor
		default:
			return Fault{}, fmt.Errorf("serve: fault %q takes no parameter", parts[0])
		}
	}
	if len(parts) > 3 {
		return Fault{}, fmt.Errorf("serve: bad fault spec %q (want kind[:after[:param]])", s)
	}
	return f, nil
}
