// Package serve turns the batch simulation engine into a long-running
// placement service: an unbounded stream of requests is folded into
// per-round demand windows, any sim.Algorithm plays the synchronous game
// incrementally (through sim.Stream), and the service exposes the current
// placement plus a rolling cost ledger — hardened the way the figure
// runner's worker pool is hardened.
//
// The layers, bottom up:
//
//   - Engine (engine.go) folds admitted arrivals into a demand window
//     (cost.Accumulator) and serves a round whenever the window fills or a
//     tick closes it, quarantining a panicking or failing algorithm round
//     instead of killing the process.
//   - IngestQueue (queue.go) bounds admission: when the queue passes the
//     shed threshold, non-critical classes are refused (429 + per-class
//     shed counters); when it is full, everything is.
//   - WAL (wal.go) persists every admitted arrival and round tick in
//     admission order; Checkpoint (checkpoint.go) snapshots the engine
//     state (placement, round, stream cursor, ledger totals) atomically.
//     A crash is recovered by replaying the WAL through a fresh,
//     deterministic engine and validating the replayed state against the
//     last checkpoint — the recovered ledger is bit-identical to an
//     uninterrupted run over the same admitted stream.
//   - Metrics (metrics.go) keeps rolling per-class admission/shed/served
//     counters and sojourn-latency percentiles (slo_class "critical" is
//     tracked separately, so overload policies are observable).
//   - Server (server.go) owns the single consuming goroutine, periodic
//     checkpoints, graceful drain (stop admitting, flush the queue, final
//     checkpoint), and the fault-injection matrix (fault.go); http.go puts
//     the HTTP/JSON front on it.
package serve

import (
	"fmt"
	"strings"
)

// Class is a request's SLO class. Critical requests are shed only when the
// ingest queue is completely full; Standard and Batch requests are shed as
// soon as the queue passes the shed threshold, Batch first in metrics'
// accounting of who to blame.
type Class uint8

const (
	// Critical is the latency-sensitive class ("slo_class": "critical");
	// it is tracked separately in metrics and admitted until the queue is
	// hard-full.
	Critical Class = iota
	// Standard is the default class for requests without an slo_class.
	Standard
	// Batch is throughput traffic, first to be shed under overload.
	Batch

	numClasses = 3
)

// String returns the wire name of the class.
func (c Class) String() string {
	switch c {
	case Critical:
		return "critical"
	case Standard:
		return "standard"
	case Batch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// ParseClass parses a wire slo_class name; the empty string is Standard.
func ParseClass(s string) (Class, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "critical":
		return Critical, nil
	case "", "standard":
		return Standard, nil
	case "batch":
		return Batch, nil
	default:
		return Standard, fmt.Errorf("serve: unknown slo_class %q (want critical, standard, or batch)", s)
	}
}

// Classes lists every class, for iterating metrics.
func Classes() []Class { return []Class{Critical, Standard, Batch} }

// Request is one ingest submission: Count requests arriving at access
// point Node under an SLO class. Count defaults to 1 on the wire.
type Request struct {
	Node  int
	Count int
	Class Class
}

// Validate checks the request against the network size.
func (r Request) Validate(n int) error {
	if r.Node < 0 || r.Node >= n {
		return fmt.Errorf("serve: access point %d outside network of %d nodes", r.Node, n)
	}
	if r.Count <= 0 {
		return fmt.Errorf("serve: non-positive request count %d", r.Count)
	}
	return nil
}
