package serve

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph/gen"
	"repro/internal/online"
	"repro/internal/sim"
	"repro/internal/workload"
)

// testFactory is a deterministic stream factory over a small ER network
// with ONTH — every call rebuilds the identical environment and algorithm,
// exactly the contract serve.Config.NewStream demands.
func testFactory(t testing.TB) func() (*sim.Stream, error) {
	t.Helper()
	return testFactoryAlg(t, func() sim.Algorithm { return online.NewONTH() })
}

// testFactoryAlg is testFactory with a pluggable algorithm constructor, so
// chaos tests can swap in deterministic misbehaving strategies.
func testFactoryAlg(t testing.TB, mkAlg func() sim.Algorithm) func() (*sim.Stream, error) {
	t.Helper()
	return func() (*sim.Stream, error) {
		rng := rand.New(rand.NewSource(5))
		g, err := gen.ErdosRenyi(24, 0.15, gen.DefaultOptions(), rng)
		if err != nil {
			return nil, err
		}
		env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
			cost.Params{Beta: 40, Create: 400, RunActive: 2.5, RunInactive: 0.5},
			core.Params{QueueCap: 3, Expiry: 20})
		if err != nil {
			return nil, err
		}
		return sim.NewStream(env, mkAlg(), "stream")
	}
}

// testSequence is the matching demand source for parity tests: the batch
// sequence whose rounds the streaming tests feed as arrivals.
func testSequence(t testing.TB, rounds int) (*sim.Env, *workload.Sequence) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	g, err := gen.ErdosRenyi(24, 0.15, gen.DefaultOptions(), rng)
	if err != nil {
		t.Fatal(err)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost,
		cost.Params{Beta: 40, Create: 400, RunActive: 2.5, RunInactive: 0.5},
		core.Params{QueueCap: 3, Expiry: 20})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 6, Lambda: 4}, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return env, seq
}

func TestParseClass(t *testing.T) {
	cases := []struct {
		in   string
		want Class
		ok   bool
	}{
		{"critical", Critical, true},
		{"standard", Standard, true},
		{"", Standard, true},
		{" Batch ", Batch, true},
		{"CRITICAL", Critical, true},
		{"gold", Standard, false},
	}
	for _, c := range cases {
		got, err := ParseClass(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseClass(%q) = %v, %v", c.in, got, err)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseClass(%q) accepted", c.in)
		}
	}
	for _, c := range Classes() {
		back, err := ParseClass(c.String())
		if err != nil || back != c {
			t.Fatalf("class %v does not round-trip its wire name", c)
		}
	}
}

func TestRequestValidate(t *testing.T) {
	if err := (Request{Node: 3, Count: 1}).Validate(5); err != nil {
		t.Fatal(err)
	}
	if err := (Request{Node: 5, Count: 1}).Validate(5); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	if err := (Request{Node: -1, Count: 1}).Validate(5); err == nil {
		t.Fatal("negative node accepted")
	}
	if err := (Request{Node: 0, Count: 0}).Validate(5); err == nil {
		t.Fatal("zero count accepted")
	}
}

func TestParseFault(t *testing.T) {
	cases := []struct {
		in   string
		want Fault
		ok   bool
	}{
		{"", Fault{}, true},
		{"none", Fault{}, true},
		{"slow", Fault{Kind: FaultSlow, Delay: 50e6, Factor: 8}, true},
		{"slow:3:10ms", Fault{Kind: FaultSlow, After: 3, Delay: 10e6, Factor: 8}, true},
		{"flood:2:4", Fault{Kind: FaultFlood, After: 2, Delay: 50e6, Factor: 4}, true},
		{"ckptfail:1", Fault{Kind: FaultCkptFail, After: 1, Delay: 50e6, Factor: 8}, true},
		{"kill:7", Fault{Kind: FaultKill, After: 7, Delay: 50e6, Factor: 8}, true},
		{"kill:7:9", Fault{}, false},
		{"flood:0:1", Fault{}, false},
		{"slow:-1", Fault{}, false},
		{"explode", Fault{}, false},
		{"slow:1:2:3", Fault{}, false},
	}
	for _, c := range cases {
		got, err := ParseFault(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Fatalf("ParseFault(%q) = %+v, %v; want %+v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Fatalf("ParseFault(%q) accepted as %+v", c.in, got)
		}
	}
	f := Fault{Kind: FaultKill, After: 3}
	if f.Active(2) || !f.Active(3) {
		t.Fatal("Active threshold off by one")
	}
	if (Fault{}).Active(100) {
		t.Fatal("no-fault reported active")
	}
}
