package serve

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestQueueShedsNonCriticalAboveThreshold(t *testing.T) {
	q := NewIngestQueue(4, 0.5) // shed at 2
	now := time.Now()
	for i := 0; i < 2; i++ {
		if err := q.Admit(Request{Node: i, Count: 1, Class: Standard}, now, nil); err != nil {
			t.Fatal(err)
		}
	}
	err := q.Admit(Request{Node: 2, Count: 1, Class: Standard}, now, nil)
	var over *OverloadError
	if !errors.As(err, &over) || over.Full {
		t.Fatalf("standard over threshold: %v", err)
	}
	if err := q.Admit(Request{Node: 2, Count: 1, Class: Batch}, now, nil); err == nil {
		t.Fatal("batch admitted over the shed threshold")
	}
	// Critical rides through until the queue is hard-full.
	for i := 0; i < 2; i++ {
		if err := q.Admit(Request{Node: i, Count: 1, Class: Critical}, now, nil); err != nil {
			t.Fatalf("critical at depth %d: %v", 2+i, err)
		}
	}
	err = q.Admit(Request{Node: 0, Count: 1, Class: Critical}, now, nil)
	if !errors.As(err, &over) || !over.Full {
		t.Fatalf("critical on a full queue: %v", err)
	}
	admitted, shed := q.Counters()
	if admitted[Standard] != 2 || admitted[Critical] != 2 {
		t.Fatalf("admitted %v", admitted)
	}
	if shed[Standard] != 1 || shed[Batch] != 1 || shed[Critical] != 1 {
		t.Fatalf("shed %v", shed)
	}
	if q.Depth() != 4 {
		t.Fatalf("depth %d", q.Depth())
	}
}

func TestQueueTickBypassesCapacity(t *testing.T) {
	q := NewIngestQueue(1, 1)
	now := time.Now()
	if err := q.Admit(Request{Node: 0, Count: 1, Class: Critical}, now, nil); err != nil {
		t.Fatal(err)
	}
	if err := q.Tick(now, nil); err != nil {
		t.Fatalf("tick refused on a full queue: %v", err)
	}
	if q.Depth() != 1 {
		t.Fatalf("ticks counted against the request depth: %d", q.Depth())
	}
}

func TestQueuePopOrderAndClose(t *testing.T) {
	q := NewIngestQueue(8, 1)
	now := time.Now()
	for i := 0; i < 3; i++ {
		if err := q.Admit(Request{Node: i, Count: 1, Class: Standard}, now, nil); err != nil {
			t.Fatal(err)
		}
	}
	q.Close()
	if err := q.Admit(Request{Node: 9, Count: 1, Class: Critical}, now, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("admission on a closed queue: %v", err)
	}
	for i := 0; i < 3; i++ {
		item, ok := q.Pop()
		if !ok {
			t.Fatalf("queue done with %d admitted entries unread", 3-i)
		}
		if item.e.Node != i {
			t.Fatalf("entry %d popped out of order: node %d", i, item.e.Node)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop kept producing after the drain emptied the queue")
	}
}

func TestQueuePopBlocksUntilAdmit(t *testing.T) {
	q := NewIngestQueue(8, 1)
	got := make(chan Entry, 1)
	go func() {
		item, ok := q.Pop()
		if ok {
			got <- item.e
		}
		close(got)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := q.Admit(Request{Node: 7, Count: 2, Class: Batch}, time.Now(), nil); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-got:
		if e.Node != 7 || e.Count != 2 || e.Class != Batch {
			t.Fatalf("popped %+v", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop never woke up")
	}
}

func TestQueuePersistFailureRefusesAdmission(t *testing.T) {
	q := NewIngestQueue(8, 1)
	boom := fmt.Errorf("disk on fire")
	err := q.Admit(Request{Node: 0, Count: 1, Class: Standard}, time.Now(), func(Entry) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("persist failure not propagated: %v", err)
	}
	admitted, _ := q.Counters()
	if admitted[Standard] != 0 || q.Depth() != 0 {
		t.Fatal("request admitted although the WAL append failed")
	}
}

// TestQueueCompactsConsumedPrefix drives far more entries than the backing
// array should ever hold and checks the live window stays bounded — the
// always-busy-queue memory guard.
func TestQueueCompactsConsumedPrefix(t *testing.T) {
	q := NewIngestQueue(16, 1)
	now := time.Now()
	// Keep a resident backlog so the queue never empties (the cheap
	// reset-on-empty path never fires) and the consumed prefix must be
	// reclaimed by compaction alone.
	const resident = 8
	for i := 0; i < resident; i++ {
		if err := q.Admit(Request{Node: i, Count: 1, Class: Critical}, now, nil); err != nil {
			t.Fatal(err)
		}
	}
	const total = 20000
	for i := 0; i < total; i++ {
		if err := q.Admit(Request{Node: 0, Count: 1, Class: Critical}, now, nil); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		if _, ok := q.Pop(); !ok {
			t.Fatalf("pop %d failed on a live queue", i)
		}
	}
	if q.Depth() != resident {
		t.Fatalf("depth %d, want the resident backlog of %d", q.Depth(), resident)
	}
	q.mu.Lock()
	backing := cap(q.items)
	q.mu.Unlock()
	if backing > 4096 {
		t.Fatalf("queue backing array grew to %d entries over a bounded run", backing)
	}
}
