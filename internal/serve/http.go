package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// ingestBody is the POST /ingest wire shape; the endpoint accepts a single
// object or an array of them.
type ingestBody struct {
	Node  int    `json:"node"`
	Count int    `json:"count"`
	Class string `json:"slo_class"`
}

// Handler builds the HTTP front for a server:
//
//	POST /ingest      admit requests: 202, 429 (shed) + Retry-After, 503 (draining)
//	POST /tick        close the current demand window
//	GET  /placement   current configuration
//	GET  /metrics     rolling counters, per-class latency percentiles
//	GET  /ledger      full-precision ledger (the recovery-parity artifact)
//	GET  /healthz     liveness (200 while the process runs)
//	GET  /readyz      readiness (503 once draining)
//
// Every request is bounded by cfg.RequestTimeout.
func Handler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ingest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		var bodies []ingestBody
		// Peek at the first token to accept one object or an array.
		if t, err := dec.Token(); err != nil {
			httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
			return
		} else if delim, ok := t.(json.Delim); ok && delim == '[' {
			for dec.More() {
				var b ingestBody
				if err := dec.Decode(&b); err != nil {
					httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
					return
				}
				bodies = append(bodies, b)
			}
		} else if ok && delim == '{' {
			// Re-decode the single object: the opening brace is consumed, so
			// decode the fields manually into a map-backed body.
			var b ingestBody
			if err := decodeOpenObject(dec, &b); err != nil {
				httpError(w, http.StatusBadRequest, "bad JSON: %v", err)
				return
			}
			bodies = append(bodies, b)
		} else {
			httpError(w, http.StatusBadRequest, "bad JSON: want an object or array")
			return
		}
		admitted := 0
		for _, b := range bodies {
			class, err := ParseClass(b.Class)
			if err != nil {
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
			err = s.Ingest(Request{Node: b.Node, Count: b.Count, Class: class})
			switch {
			case err == nil:
				admitted++
			case errors.Is(err, ErrDraining):
				w.Header().Set("Retry-After", "10")
				writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
					"error": "draining", "admitted": admitted,
				})
				return
			default:
				var over *OverloadError
				if errors.As(err, &over) {
					w.Header().Set("Retry-After", "1")
					writeJSON(w, http.StatusTooManyRequests, map[string]interface{}{
						"error": over.Error(), "class": over.Class.String(),
						"full": over.Full, "admitted": admitted,
					})
					return
				}
				httpError(w, http.StatusBadRequest, "%v", err)
				return
			}
		}
		writeJSON(w, http.StatusAccepted, map[string]interface{}{"admitted": admitted})
	})
	mux.HandleFunc("/tick", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		if err := s.Tick(); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{"error": "draining"})
			return
		}
		writeJSON(w, http.StatusAccepted, map[string]interface{}{"tick": true})
	})
	mux.HandleFunc("/placement", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.PlacementSnapshot())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.MetricsSnapshot())
	})
	mux.HandleFunc("/ledger", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.LedgerSnapshot())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.Draining() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
	})
	// The timeout wrapper enforces the per-request deadline; admission is
	// non-blocking, so only a stalled client body can hit it.
	return http.TimeoutHandler(mux, s.cfg.RequestTimeout, "request deadline exceeded\n")
}

// decodeOpenObject finishes decoding an object whose '{' token was already
// consumed while sniffing single-vs-array.
func decodeOpenObject(dec *json.Decoder, b *ingestBody) error {
	for dec.More() {
		t, err := dec.Token()
		if err != nil {
			return err
		}
		key, ok := t.(string)
		if !ok {
			return fmt.Errorf("bad object key %v", t)
		}
		switch key {
		case "node":
			if err := dec.Decode(&b.Node); err != nil {
				return err
			}
		case "count":
			if err := dec.Decode(&b.Count); err != nil {
				return err
			}
		case "slo_class":
			if err := dec.Decode(&b.Class); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown field %q", key)
		}
	}
	_, err := dec.Token() // consume '}'
	return err
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]interface{}{"error": fmt.Sprintf(format, args...)})
}
