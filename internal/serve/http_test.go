package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newHTTPServer builds an ephemeral (no state dir) server and its test
// front. start=false leaves the consumer off, so the queue fills
// deterministically for admission-control tests.
func newHTTPServer(t *testing.T, queueCap int, shed float64, start bool) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		NewStream:    testFactory(t),
		Fingerprint:  "http-test",
		Window:       1 << 20,
		QueueCap:     queueCap,
		ShedFraction: shed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if start {
		s.Start()
	}
	ts := httptest.NewServer(Handler(s))
	t.Cleanup(ts.Close)
	t.Cleanup(s.queue.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if len(data) > 0 && json.Unmarshal(data, &m) != nil {
		m = map[string]interface{}{"raw": string(data)}
	}
	return resp, m
}

func getJSON(t *testing.T, url string, v interface{}) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
	}
	return resp
}

func TestHTTPIngestTickAndViews(t *testing.T) {
	s, ts := newHTTPServer(t, 0, 0, true)

	resp, body := post(t, ts.URL+"/ingest", `{"node": 3, "count": 2, "slo_class": "critical"}`)
	if resp.StatusCode != http.StatusAccepted || body["admitted"] != float64(1) {
		t.Fatalf("single ingest: %d %v", resp.StatusCode, body)
	}
	resp, body = post(t, ts.URL+"/ingest",
		`[{"node": 1}, {"node": 2, "slo_class": "batch"}, {"node": 4, "count": 3}]`)
	if resp.StatusCode != http.StatusAccepted || body["admitted"] != float64(3) {
		t.Fatalf("array ingest: %d %v", resp.StatusCode, body)
	}
	if resp, _ := post(t, ts.URL+"/tick", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tick: %d", resp.StatusCode)
	}
	waitCursor(t, s, 5) // 4 arrivals + 1 tick

	var pv PlacementView
	getJSON(t, ts.URL+"/placement", &pv)
	if pv.Round != 1 || pv.Active == 0 || len(pv.Placement) != pv.Active {
		t.Fatalf("placement view: %+v", pv)
	}
	var snap Snapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Rounds != 1 || snap.Ticks != 1 {
		t.Fatalf("metrics: rounds %d ticks %d", snap.Rounds, snap.Ticks)
	}
	if snap.Classes["critical"].Served != 2 || snap.Classes["standard"].Served != 4 || snap.Classes["batch"].Served != 1 {
		t.Fatalf("per-class served: %+v", snap.Classes)
	}
	var led LedgerDump
	getJSON(t, ts.URL+"/ledger", &led)
	if led.Rounds != 1 || led.Cursor != 5 || led.Total <= 0 {
		t.Fatalf("ledger: %+v", led)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, ts := newHTTPServer(t, 0, 0, false)
	cases := []string{
		`{"node": 3, "slo_class": "gold"}`, // unknown class
		`{"node": 999}`,                    // out of range
		`{"node": -1}`,                     // negative node
		`{"node": 1, "bogus": true}`,       // unknown field
		`"just a string"`,                  // not an object
		`{"node": `,                        // truncated
	}
	for _, c := range cases {
		if resp, body := post(t, ts.URL+"/ingest", c); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %s: got %d %v", c, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: %d", resp.StatusCode)
	}
}

// TestHTTPOverloadShedsNonCriticalOnly is the admission-control SLO check:
// past the shed threshold, standard/batch traffic gets 429 while critical
// requests keep being admitted, and once served their p99 sojourn stays
// bounded — load-shedding protected the critical class.
func TestHTTPOverloadShedsNonCriticalOnly(t *testing.T) {
	s, ts := newHTTPServer(t, 8, 0.5, false) // shed threshold at 4 queued
	for i := 0; i < 4; i++ {
		if resp, body := post(t, ts.URL+"/ingest", `{"node": 1, "slo_class": "standard"}`); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("standard %d refused under light load: %d %v", i, resp.StatusCode, body)
		}
	}
	resp, body := post(t, ts.URL+"/ingest", `{"node": 1, "slo_class": "standard"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("standard over threshold: %d %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatal("429 without Retry-After")
	}
	if body["class"] != "standard" || body["full"] != false {
		t.Fatalf("429 body: %v", body)
	}
	if resp, _ := post(t, ts.URL+"/ingest", `{"node": 2, "slo_class": "batch"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch over threshold: %d", resp.StatusCode)
	}
	// Critical rides through the shed threshold.
	for i := 0; i < 3; i++ {
		if resp, body := post(t, ts.URL+"/ingest", `{"node": 3, "slo_class": "critical"}`); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("critical shed below hard-full: %d %v", resp.StatusCode, body)
		}
	}

	// Serve the backlog and check the overload left critical unharmed.
	s.Start()
	if resp, _ := post(t, ts.URL+"/tick", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatal("tick refused")
	}
	waitCursor(t, s, 8) // 7 admitted arrivals + 1 tick

	var snap Snapshot
	getJSON(t, ts.URL+"/metrics", &snap)
	if snap.Classes["standard"].Shed == 0 || snap.Classes["batch"].Shed == 0 {
		t.Fatalf("no non-critical sheds recorded: %+v", snap.Classes)
	}
	if snap.Classes["critical"].Shed != 0 {
		t.Fatalf("critical was shed %d times below hard-full", snap.Classes["critical"].Shed)
	}
	if snap.Classes["critical"].Served != 3 {
		t.Fatalf("critical served %d of 3", snap.Classes["critical"].Served)
	}
	p99 := snap.Classes["critical"].P99Millis
	if p99 <= 0 || p99 > 30_000 {
		t.Fatalf("critical p99 out of bounds: %v ms", p99)
	}
}

func TestHTTPDrainSemantics(t *testing.T) {
	s, ts := newHTTPServer(t, 0, 0, true)
	if err := s.Ingest(Request{Node: 0, Count: 1}); err != nil {
		t.Fatal(err)
	}
	s.Drain()

	if resp := getJSON(t, ts.URL+"/readyz", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while draining: %d", resp.StatusCode)
	}
	resp, body := post(t, ts.URL+"/ingest", `{"node": 1}`)
	if resp.StatusCode != http.StatusServiceUnavailable || body["error"] != "draining" {
		t.Fatalf("ingest while draining: %d %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "10" {
		t.Fatal("draining 503 without Retry-After")
	}
	if resp, _ := post(t, ts.URL+"/tick", ""); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tick while draining: %d", resp.StatusCode)
	}
	// The drained ledger stays readable — operators diff it post-mortem.
	var led LedgerDump
	getJSON(t, ts.URL+"/ledger", &led)
	if led.Cursor != 1 {
		t.Fatalf("drained ledger cursor %d", led.Cursor)
	}
}

// TestHTTPLedgerMatchesReplayBytes pins the wire contract the CI smoke
// test diffs on: the GET /ledger body of a drained server is byte-identical
// to what flexserve -replay prints (json.Encoder over the same LedgerDump
// of a WAL replay).
func TestHTTPLedgerMatchesReplayBytes(t *testing.T) {
	cfg := recoveryConfig(t, t.TempDir(), Fault{})
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(Handler(s))
	defer ts.Close()
	feedPhase(t, s, 5, 0)
	waitCursor(t, s, s.wal.Count())
	s.Drain()

	resp, err := http.Get(ts.URL + "/ledger")
	if err != nil {
		t.Fatal(err)
	}
	served, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	engine, err := Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var replayed bytes.Buffer
	if err := json.NewEncoder(&replayed).Encode(DumpLedger(engine)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, replayed.Bytes()) {
		t.Fatalf("/ledger and replay diverge:\n  served   %s\n  replayed %s", served, replayed.Bytes())
	}
}

// TestHTTPRequestDeadline checks the per-request timeout wrapper: a
// handler stalled past RequestTimeout returns 503 to the client.
func TestHTTPRequestDeadline(t *testing.T) {
	s, err := New(Config{
		NewStream:      testFactory(t),
		Fingerprint:    "deadline-test",
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.queue.Close)
	slow := http.NewServeMux()
	slow.Handle("/", Handler(s))
	slow.HandleFunc("/stall", func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Second)
	})
	ts := httptest.NewServer(http.TimeoutHandler(slow, s.cfg.RequestTimeout, "request deadline exceeded\n"))
	defer ts.Close()
	start := time.Now()
	resp, err := http.Get(ts.URL + "/stall")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stalled handler: %d", resp.StatusCode)
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Fatal("deadline did not cut the stalled request short")
	}
}

// TestMetricsSnapshotDeterministic pins the /metrics encoding contract:
// marshaling the same Snapshot twice yields identical bytes. The only
// map in the shape (Classes) relies on encoding/json's sorted-key
// guarantee, so scrapers and the parity harness may diff raw bodies.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	s, ts := newHTTPServer(t, 0, 0, true)

	if resp, body := post(t, ts.URL+"/ingest",
		`[{"node": 1, "slo_class": "critical"}, {"node": 2, "count": 4}, {"node": 3, "slo_class": "batch"}]`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest: %d %v", resp.StatusCode, body)
	}
	if resp, _ := post(t, ts.URL+"/tick", ""); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("tick: %d", resp.StatusCode)
	}
	waitCursor(t, s, 4) // 3 arrivals + 1 tick

	snap := s.MetricsSnapshot()
	first, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("two marshals of one Snapshot diverge:\n  %s\n  %s", first, second)
	}
	if len(snap.Classes) != 3 {
		t.Fatalf("expected all %d classes in the snapshot, got %v", 3, snap.Classes)
	}
}
