package serve

import (
	"path/filepath"
	"testing"
)

// BenchmarkServeIngest measures the full admission path of one request:
// validation, admission control, WAL append (flushed to the OS), and
// enqueue — the per-request cost an operator sizes the ingest tier by.
// The consumer stays off so the engine's round cost is not mixed in.
func BenchmarkServeIngest(b *testing.B) {
	s, err := New(Config{
		NewStream:   testFactory(b),
		Fingerprint: "bench-ingest",
		QueueCap:    b.N + 16,
		Dir:         b.TempDir(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.queue.Close()
	n := s.n()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Ingest(Request{Node: i % n, Count: 1, Class: Critical}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint measures one atomic checkpoint write (snapshot,
// temp file, fsync, rename) of a warmed-up engine.
func BenchmarkCheckpoint(b *testing.B) {
	const rounds = 30
	_, seq := testSequence(b, rounds)
	st, err := testFactory(b)()
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(st, 1<<30, DefaultKeepRounds)
	for i := 0; i < rounds; i++ {
		for _, p := range seq.Demand(i).Pairs() {
			e.Apply(Entry{Node: p.Node, Count: p.Count})
		}
		if out := e.Apply(TickEntry()); !out.Served {
			b.Fatalf("round %d not served", i)
		}
	}
	path := filepath.Join(b.TempDir(), CheckpointName)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteCheckpoint(path, checkpointOf(e, "bench-ckpt")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineRound measures one served round end to end (window fold +
// algorithm + ledger) at a fixed demand size.
func BenchmarkEngineRound(b *testing.B) {
	const rounds = 30
	_, seq := testSequence(b, rounds)
	st, err := testFactory(b)()
	if err != nil {
		b.Fatal(err)
	}
	e := NewEngine(st, 1<<30, DefaultKeepRounds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range seq.Demand(i % rounds).Pairs() {
			e.Apply(Entry{Node: p.Node, Count: p.Count})
		}
		e.Apply(TickEntry())
	}
}
