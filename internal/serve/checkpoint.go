package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/cost"
	"repro/internal/sim"
)

// Checkpoint is the periodic snapshot of the serving state: the stream
// cursor (how many WAL entries were applied), the round counter, the
// current placement, and the ledger totals as exact float bits.
//
// When the algorithm implements sim.StateSnapshotter, the checkpoint
// additionally carries full restore state — the open demand window and
// the algorithm's serialised run state — and recovery can resume from it
// directly instead of replaying the WAL from entry zero. That is what
// anchors WAL truncation: sealed segments entirely below a restorable
// checkpoint's cursor can be deleted. For other algorithms the restore
// fields stay empty and the checkpoint's role on restart is validation
// only: the replayed state at Cursor must match the snapshot bit for bit,
// or the state directory is corrupt.
type Checkpoint struct {
	Fingerprint string    `json:"fingerprint"`
	Cursor      int       `json:"cursor"`
	Round       int       `json:"round"`
	Quarantined int       `json:"quarantined"`
	Placement   []int     `json:"placement"`
	Inactive    int       `json:"inactive"`
	TotalBits   [5]uint64 `json:"total_bits"` // latency, load, run, migration, creation
	Total       float64   `json:"total"`      // human-readable; TotalBits is authoritative

	// Restore state (present only for snapshot-capable algorithms).
	Window   []cost.NodeCount `json:"window,omitempty"`    // open demand window, sorted by node
	AlgState json.RawMessage  `json:"alg_state,omitempty"` // sim.StateSnapshotter payload
}

// Restorable reports whether the checkpoint carries full restore state,
// i.e. recovery can resume from it without the WAL prefix before Cursor.
func (c *Checkpoint) Restorable() bool { return len(c.AlgState) > 0 }

// totalsToBits packs a breakdown into exact float bits.
func totalsToBits(b sim.Breakdown) [5]uint64 {
	return [5]uint64{
		math.Float64bits(b.Latency),
		math.Float64bits(b.Load),
		math.Float64bits(b.Run),
		math.Float64bits(b.Migration),
		math.Float64bits(b.Creation),
	}
}

// bitsToTotals is the inverse of totalsToBits.
func bitsToTotals(bits [5]uint64) sim.Breakdown {
	return sim.Breakdown{
		Latency:   math.Float64frombits(bits[0]),
		Load:      math.Float64frombits(bits[1]),
		Run:       math.Float64frombits(bits[2]),
		Migration: math.Float64frombits(bits[3]),
		Creation:  math.Float64frombits(bits[4]),
	}
}

// checkpointOf snapshots an engine. For snapshot-capable algorithms the
// checkpoint carries full restore state; a failing snapshot degrades to a
// validation-only checkpoint (full replay still recovers) rather than
// failing the checkpoint.
func checkpointOf(e *Engine, fingerprint string) *Checkpoint {
	totals := e.Totals()
	c := &Checkpoint{
		Fingerprint: fingerprint,
		Cursor:      e.Cursor(),
		Round:       e.Round(),
		Quarantined: e.Quarantined(),
		Placement:   e.Placement(),
		Inactive:    e.stream.Algorithm().Inactive(),
		TotalBits:   totalsToBits(totals),
		Total:       totals.Total(),
	}
	if snap, ok := e.stream.Algorithm().(sim.StateSnapshotter); ok {
		if data, err := snap.SnapshotState(); err == nil {
			c.Window = e.WindowDemand().Pairs()
			c.AlgState = data
		}
	}
	return c
}

// restore reinstalls the checkpoint into a freshly built engine: the
// algorithm's run state, the stream position and totals, the open demand
// window, and the engine counters. It then validates the result against
// the checkpoint's own fields, so an inconsistent snapshot is rejected
// instead of silently diverging. Only restorable checkpoints qualify.
func (c *Checkpoint) restore(e *Engine) error {
	if !c.Restorable() {
		return fmt.Errorf("serve: checkpoint at cursor %d carries no restore state", c.Cursor)
	}
	snap, ok := e.stream.Algorithm().(sim.StateSnapshotter)
	if !ok {
		return fmt.Errorf("serve: checkpoint at cursor %d carries %s state, but the configured algorithm cannot restore it",
			c.Cursor, e.stream.Algorithm().Name())
	}
	if err := snap.RestoreState([]byte(c.AlgState)); err != nil {
		return err
	}
	e.stream.RestoreTotals(c.Round, bitsToTotals(c.TotalBits))
	e.window.Reset()
	d := cost.DemandFromPairs(c.Window...)
	e.window.Add(d)
	e.windowCount = d.Total()
	e.cursor = c.Cursor
	e.quarantined = c.Quarantined
	e.lastQuar = nil
	if err := c.matches(e); err != nil {
		return fmt.Errorf("serve: restored state diverges from its own checkpoint: %w", err)
	}
	return nil
}

// WriteCheckpoint persists the snapshot atomically: a temp file in the
// destination directory is written, synced, and renamed into place, so a
// crash mid-write (or an injected checkpoint-write failure) always leaves
// the previous complete checkpoint behind, never a truncated one.
func WriteCheckpoint(path string, c *Checkpoint) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadCheckpoint loads a snapshot and validates its fingerprint.
func ReadCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("serve: %s: bad checkpoint: %w", path, err)
	}
	if c.Fingerprint != fingerprint {
		return nil, fmt.Errorf("serve: %s was written under config %q, this server is %q — refusing to restore",
			path, c.Fingerprint, fingerprint)
	}
	return &c, nil
}

// matches reports whether the engine's state equals the checkpoint, bit
// for bit — the recovery validation run against the replayed WAL.
func (c *Checkpoint) matches(e *Engine) error {
	if e.Cursor() != c.Cursor {
		return fmt.Errorf("cursor %d, checkpoint has %d", e.Cursor(), c.Cursor)
	}
	if e.Round() != c.Round {
		return fmt.Errorf("round %d, checkpoint has %d", e.Round(), c.Round)
	}
	if e.Quarantined() != c.Quarantined {
		return fmt.Errorf("quarantined %d, checkpoint has %d", e.Quarantined(), c.Quarantined)
	}
	p := e.Placement()
	if len(p) != len(c.Placement) {
		return fmt.Errorf("placement %v, checkpoint has %v", p, c.Placement)
	}
	for i := range p {
		if p[i] != c.Placement[i] {
			return fmt.Errorf("placement %v, checkpoint has %v", p, c.Placement)
		}
	}
	if got := totalsToBits(e.Totals()); got != c.TotalBits {
		return fmt.Errorf("ledger totals %v, checkpoint has %v", got, c.TotalBits)
	}
	return nil
}
