package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/sim"
)

// Checkpoint is the periodic snapshot of the serving state: the stream
// cursor (how many WAL entries were applied), the round counter, the
// current placement, and the ledger totals as exact float bits. The
// algorithm's internal state is not serialised — it is reconstructed by
// replaying the WAL through the deterministic engine — so the checkpoint's
// role on restart is validation: the replayed state at Cursor must match
// the snapshot bit for bit, or the state directory is corrupt.
type Checkpoint struct {
	Fingerprint string    `json:"fingerprint"`
	Cursor      int       `json:"cursor"`
	Round       int       `json:"round"`
	Quarantined int       `json:"quarantined"`
	Placement   []int     `json:"placement"`
	Inactive    int       `json:"inactive"`
	TotalBits   [5]uint64 `json:"total_bits"` // latency, load, run, migration, creation
	Total       float64   `json:"total"`      // human-readable; TotalBits is authoritative
}

// totalsToBits packs a breakdown into exact float bits.
func totalsToBits(b sim.Breakdown) [5]uint64 {
	return [5]uint64{
		math.Float64bits(b.Latency),
		math.Float64bits(b.Load),
		math.Float64bits(b.Run),
		math.Float64bits(b.Migration),
		math.Float64bits(b.Creation),
	}
}

// checkpointOf snapshots an engine.
func checkpointOf(e *Engine, fingerprint string) *Checkpoint {
	totals := e.Totals()
	return &Checkpoint{
		Fingerprint: fingerprint,
		Cursor:      e.Cursor(),
		Round:       e.Round(),
		Quarantined: e.Quarantined(),
		Placement:   e.Placement(),
		Inactive:    e.stream.Algorithm().Inactive(),
		TotalBits:   totalsToBits(totals),
		Total:       totals.Total(),
	}
}

// WriteCheckpoint persists the snapshot atomically: a temp file in the
// destination directory is written, synced, and renamed into place, so a
// crash mid-write (or an injected checkpoint-write failure) always leaves
// the previous complete checkpoint behind, never a truncated one.
func WriteCheckpoint(path string, c *Checkpoint) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	enc := json.NewEncoder(tmp)
	if err := enc.Encode(c); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadCheckpoint loads a snapshot and validates its fingerprint.
func ReadCheckpoint(path, fingerprint string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("serve: %s: bad checkpoint: %w", path, err)
	}
	if c.Fingerprint != fingerprint {
		return nil, fmt.Errorf("serve: %s was written under config %q, this server is %q — refusing to restore",
			path, c.Fingerprint, fingerprint)
	}
	return &c, nil
}

// matches reports whether the engine's state equals the checkpoint, bit
// for bit — the recovery validation run against the replayed WAL.
func (c *Checkpoint) matches(e *Engine) error {
	if e.Cursor() != c.Cursor {
		return fmt.Errorf("cursor %d, checkpoint has %d", e.Cursor(), c.Cursor)
	}
	if e.Round() != c.Round {
		return fmt.Errorf("round %d, checkpoint has %d", e.Round(), c.Round)
	}
	if e.Quarantined() != c.Quarantined {
		return fmt.Errorf("quarantined %d, checkpoint has %d", e.Quarantined(), c.Quarantined)
	}
	p := e.Placement()
	if len(p) != len(c.Placement) {
		return fmt.Errorf("placement %v, checkpoint has %v", p, c.Placement)
	}
	for i := range p {
		if p[i] != c.Placement[i] {
			return fmt.Errorf("placement %v, checkpoint has %v", p, c.Placement)
		}
	}
	if got := totalsToBits(e.Totals()); got != c.TotalBits {
		return fmt.Errorf("ledger totals %v, checkpoint has %v", got, c.TotalBits)
	}
	return nil
}
