package serve

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// DefaultQueueCap bounds the ingest queue.
const DefaultQueueCap = 1024

// DefaultShedFraction is the occupancy above which non-critical classes
// are shed.
const DefaultShedFraction = 0.75

// ErrDraining refuses admission on a draining server (503 on the wire).
var ErrDraining = errors.New("serve: draining, not admitting")

// OverloadError refuses admission under load (429 on the wire): either the
// queue passed the shed threshold and the request's class is not critical,
// or the queue is completely full.
type OverloadError struct {
	Class Class
	Full  bool // queue hard-full (even critical requests are refused)
}

func (o *OverloadError) Error() string {
	if o.Full {
		return fmt.Sprintf("serve: ingest queue full, %s request shed", o.Class)
	}
	return fmt.Sprintf("serve: over shed threshold, non-critical %s request shed", o.Class)
}

// queued is one queue element: the entry plus its admission time, which
// becomes the request's sojourn-latency sample when its round is served.
type queued struct {
	e  Entry
	at time.Time
}

// IngestQueue is the bounded admission queue between the HTTP front and
// the single consuming engine goroutine. Admission, WAL append, and
// enqueue happen under one lock, so queue order equals WAL order equals
// application order — the invariant recovery depends on. Ticks bypass the
// capacity bound (they carry no load; refusing them would stall rounds).
type IngestQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []queued
	head   int // first live element; the prefix is compacted away
	reqs   int // queued arrival entries (ticks excluded) counted against cap
	cap    int
	shedAt int
	closed bool

	admitted [numClasses]uint64
	shed     [numClasses]uint64
}

// NewIngestQueue builds a queue. capacity <= 0 selects DefaultQueueCap;
// shedFraction outside (0, 1] selects DefaultShedFraction.
func NewIngestQueue(capacity int, shedFraction float64) *IngestQueue {
	if capacity <= 0 {
		capacity = DefaultQueueCap
	}
	if shedFraction <= 0 || shedFraction > 1 {
		shedFraction = DefaultShedFraction
	}
	shedAt := int(shedFraction * float64(capacity))
	if shedAt < 1 {
		shedAt = 1
	}
	q := &IngestQueue{cap: capacity, shedAt: shedAt, items: make([]queued, 0, capacity)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Admit applies the admission policy to one arrival and, when admitted,
// runs persist (the WAL append) and enqueues — all under the queue lock.
// It returns ErrDraining on a closed queue and *OverloadError on a shed.
func (q *IngestQueue) Admit(r Request, now time.Time, persist func(Entry) error) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	if q.reqs >= q.cap {
		q.shed[r.Class]++
		return &OverloadError{Class: r.Class, Full: true}
	}
	if r.Class != Critical && q.reqs >= q.shedAt {
		q.shed[r.Class]++
		return &OverloadError{Class: r.Class}
	}
	e := ArrivalEntry(r)
	if persist != nil {
		if err := persist(e); err != nil {
			return err
		}
	}
	q.admitted[r.Class]++
	q.items = append(q.items, queued{e: e, at: now})
	q.reqs++
	q.cond.Signal()
	return nil
}

// Tick enqueues a round boundary, bypassing the capacity bound. On a
// closed queue it is a no-op (the drain already flushed what it will).
func (q *IngestQueue) Tick(now time.Time, persist func(Entry) error) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrDraining
	}
	e := TickEntry()
	if persist != nil {
		if err := persist(e); err != nil {
			return err
		}
	}
	q.items = append(q.items, queued{e: e, at: now})
	q.cond.Signal()
	return nil
}

// Pop blocks until an entry is available or the queue is closed and
// empty. It returns ok == false only when the queue is drained for good.
func (q *IngestQueue) Pop() (queued, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.head == len(q.items) && !q.closed {
		q.cond.Wait()
	}
	if q.head == len(q.items) {
		return queued{}, false
	}
	item := q.items[q.head]
	q.items[q.head] = queued{} // release the entry for GC
	q.head++
	if !item.e.Tick {
		q.reqs--
	}
	// Reclaim the consumed prefix so an always-busy queue cannot grow its
	// backing array without bound.
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	} else if q.head >= 1024 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return item, true
}

// Close stops admission; Pop keeps returning the already-admitted entries
// (they are in the WAL — the drain must apply them) and then reports done.
func (q *IngestQueue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Depth returns the queued arrival count (ticks excluded).
func (q *IngestQueue) Depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.reqs
}

// Counters returns per-class admitted and shed totals.
func (q *IngestQueue) Counters() (admitted, shed [numClasses]uint64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.admitted, q.shed
}
