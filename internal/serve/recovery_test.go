package serve

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"repro/internal/online"
	"repro/internal/sim"
)

// recoveryConfig is the shared serving configuration of the crash-recovery
// matrix: persistent state in dir, tick-closed rounds only (huge window),
// aggressive checkpointing so the fault window is interesting.
func recoveryConfig(t *testing.T, dir string, fault Fault) Config {
	t.Helper()
	return Config{
		NewStream:       testFactory(t),
		Fingerprint:     "recovery-test",
		Window:          1 << 20, // only ticks close rounds
		QueueCap:        4096,
		CheckpointEvery: 2,
		Dir:             dir,
		Fault:           fault,
		Kill:            func(string) {}, // overridden by the kill case
	}
}

// waitCursor polls until the consumer has applied `target` WAL entries.
func waitCursor(t *testing.T, s *Server, target int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if got := s.LedgerSnapshot().Cursor; got >= target {
			if got > target {
				t.Fatalf("cursor %d overran the WAL length %d", got, target)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("consumer stuck at cursor %d, want %d", s.LedgerSnapshot().Cursor, target)
		}
		time.Sleep(time.Millisecond)
	}
}

// feedPhase ingests a deterministic mix: `rounds` groups of five arrivals
// plus a tick, then three trailing arrivals. The trailing arrivals never
// close a round (the window is huge), so once the cursor catches up the
// consumer is provably past its last checkpoint write — abandoning the
// server then cannot race a checkpoint against the restarted one.
func feedPhase(t *testing.T, s *Server, rounds, base int) {
	t.Helper()
	n := s.n()
	classes := Classes()
	for r := 0; r < rounds; r++ {
		for i := 0; i < 5; i++ {
			req := Request{Node: (base + r*5 + i) % n, Count: 1 + i%2, Class: classes[(r+i)%len(classes)]}
			if err := s.Ingest(req); err != nil {
				t.Fatalf("ingest round %d: %v", r, err)
			}
		}
		if err := s.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := s.Ingest(Request{Node: (base + i) % n, Count: 1, Class: Critical}); err != nil {
			t.Fatal(err)
		}
	}
}

// runRecoveryMatrix is the crash-recovery parity check for one fault kind:
// serve under the fault, abandon the process state mid-stream (no drain, no
// final checkpoint — the WAL is ahead of the last checkpoint), restart
// healthy from the same state directory, serve more, drain, and require the
// final ledger to be bit-identical to an uninterrupted replay of the WAL.
func runRecoveryMatrix(t *testing.T, fault Fault) {
	dir := t.TempDir()

	s1, err := New(recoveryConfig(t, dir, fault))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s1.queue.Close) // release the abandoned consumer goroutine
	killed := make(chan struct{})
	if fault.Kind == FaultKill {
		s1.cfg.Kill = func(string) { close(killed) }
	}
	s1.Start()
	feedPhase(t, s1, 8, 0)
	if fault.Kind == FaultKill {
		select {
		case <-killed:
			// The consumer died mid-stream: admitted WAL entries beyond the
			// kill point were never applied — recovery must replay them.
		case <-time.After(10 * time.Second):
			t.Fatal("kill fault never fired")
		}
	} else {
		waitCursor(t, s1, s1.wal.Count())
	}
	if fault.Kind == FaultCkptFail {
		snap := s1.MetricsSnapshot()
		if snap.CheckpointsFail == 0 {
			t.Fatal("ckptfail fault injected no failures")
		}
		if snap.CheckpointsOK == 0 {
			t.Fatal("want one pre-fault checkpoint for recovery to validate")
		}
	}
	// Crash: abandon s1 — no Drain, no final checkpoint, WAL left open.

	cfg2 := recoveryConfig(t, dir, Fault{}) // the restart is healthy
	s2, err := New(cfg2)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if got, want := s2.LedgerSnapshot().Cursor, s1.wal.Count(); got != want {
		t.Fatalf("recovered cursor %d, WAL has %d entries", got, want)
	}
	if fault.Kind == FaultKill && s2.MetricsSnapshot().ReplayedRounds == 0 {
		t.Fatal("kill recovery replayed no rounds")
	}
	s2.Start()
	feedPhase(t, s2, 4, 100)
	waitCursor(t, s2, s2.wal.Count())
	s2.Drain()

	recovered := s2.LedgerSnapshot()
	engine, err := Replay(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	baseline := DumpLedger(engine)
	if !reflect.DeepEqual(recovered, baseline) {
		t.Fatalf("recovered ledger diverges from the uninterrupted baseline:\n  recovered %+v\n  baseline  %+v", recovered, baseline)
	}
	got, err := json.Marshal(recovered)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("ledger JSON not byte-identical:\n  %s\n  %s", got, want)
	}
	if recovered.Rounds == 0 || recovered.Total <= 0 {
		t.Fatalf("degenerate ledger: %+v", recovered)
	}
}

func TestRecoveryParity(t *testing.T) {
	cases := []Fault{
		{Kind: FaultKill, After: 5},
		{Kind: FaultSlow, After: 2, Delay: time.Millisecond},
		{Kind: FaultFlood, After: 10, Factor: 4},
		{Kind: FaultCkptFail, After: 1},
	}
	for _, f := range cases {
		f := f
		t.Run(f.Kind.String(), func(t *testing.T) { runRecoveryMatrix(t, f) })
	}
}

// TestRecoveryRejectsForeignState pins the fingerprint guard end to end: a
// server must refuse a state directory written under another configuration.
func TestRecoveryRejectsForeignState(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(recoveryConfig(t, dir, Fault{}))
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	feedPhase(t, s1, 2, 0)
	waitCursor(t, s1, s1.wal.Count())
	s1.Drain()

	cfg := recoveryConfig(t, dir, Fault{})
	cfg.Fingerprint = "some-other-config"
	if _, err := New(cfg); err == nil {
		t.Fatal("foreign state directory accepted")
	}
}

// TestDrainThenRestartIsCleanContinuation: a graceful drain writes a final
// checkpoint at the WAL head; the restart validates it at the end of replay
// and continues without re-serving anything.
func TestDrainThenRestartIsCleanContinuation(t *testing.T) {
	dir := t.TempDir()
	cfg := recoveryConfig(t, dir, Fault{})
	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	feedPhase(t, s1, 6, 0)
	waitCursor(t, s1, s1.wal.Count())
	s1.Drain()
	before := s1.LedgerSnapshot()

	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("restart after clean drain: %v", err)
	}
	after := s2.LedgerSnapshot()
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("clean restart changed the ledger:\n  before %+v\n  after  %+v", before, after)
	}
	s2.queue.Close()
}

// TestQuarantineSurvivesRecovery: a round quarantined live stays
// quarantined on replay — the ledger (which skips the poisoned round) is
// reproduced bit-identically, not "repaired". The factory's algorithm
// panics deterministically after four healthy rounds, so live serving and
// WAL replay agree on which rounds are poisoned.
func TestQuarantineSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := recoveryConfig(t, dir, Fault{})
	cfg.NewStream = testFactoryAlg(t, func() sim.Algorithm {
		return &panicAfter{Algorithm: online.NewONTH(), healthy: 4}
	})
	cfg.Fingerprint = "quarantine-test"

	s1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s1.Start()
	feedPhase(t, s1, 7, 0)
	waitCursor(t, s1, s1.wal.Count())
	live := s1.LedgerSnapshot()
	if live.Quarantined == 0 {
		t.Fatal("poisoned algorithm quarantined nothing")
	}
	// Crash without draining, restart, and compare against the replay.
	s2, err := New(cfg)
	if err != nil {
		t.Fatalf("recovery across quarantined rounds: %v", err)
	}
	t.Cleanup(s1.queue.Close)
	recovered := s2.LedgerSnapshot()
	if !reflect.DeepEqual(live, recovered) {
		t.Fatalf("quarantine not reproduced on recovery:\n  live      %+v\n  recovered %+v", live, recovered)
	}
	if recovered.Quarantined != live.Quarantined {
		t.Fatalf("quarantine count changed: %d -> %d", live.Quarantined, recovered.Quarantined)
	}
	s2.queue.Close()
}
