package serve

import (
	"sort"
	"sync"
	"time"

	"repro/internal/sim"
)

// latencyWindow is the sliding sample window per class for percentile
// estimation.
const latencyWindow = 2048

// latRing is a fixed-size sliding window of sojourn-latency samples.
type latRing struct {
	buf  [latencyWindow]int64 // nanoseconds
	next int
	n    int
}

func (r *latRing) add(d time.Duration) {
	r.buf[r.next] = int64(d)
	r.next = (r.next + 1) % latencyWindow
	if r.n < latencyWindow {
		r.n++
	}
}

// percentile returns the q-quantile (0 < q <= 1) of the window via the
// nearest-rank method, 0 with no samples.
func (r *latRing) percentile(q float64) time.Duration {
	if r.n == 0 {
		return 0
	}
	s := make([]int64, r.n)
	copy(s, r.buf[:r.n])
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(q*float64(r.n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= r.n {
		rank = r.n - 1
	}
	return time.Duration(s[rank])
}

// Metrics aggregates the serving-side observables: per-class served
// counters and sojourn-latency percentiles (admission to round-served,
// the latency an SLO bounds), round/quarantine counts, and checkpoint
// health. Admission and shed counters live in the IngestQueue; snapshots
// merge both.
type Metrics struct {
	mu          sync.Mutex
	served      [numClasses]uint64
	quarantined [numClasses]uint64 // requests dropped with a quarantined round
	lat         [numClasses]latRing

	rounds          uint64
	quarantineCount uint64
	ticks           uint64
	ckptOK          uint64
	ckptFailed      uint64
	replayed        uint64 // rounds reconstructed from the WAL on restart
}

// ObserveServed records one admitted batch served in a round.
func (m *Metrics) ObserveServed(c Class, count int, sojourn time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.served[c] += uint64(count)
	m.lat[c].add(sojourn)
}

// ObserveQuarantined records one admitted batch dropped by a quarantined
// round.
func (m *Metrics) ObserveQuarantined(c Class, count int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.quarantined[c] += uint64(count)
}

// ObserveRound records a round outcome.
func (m *Metrics) ObserveRound(o RoundOutcome) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if o.Served {
		m.rounds++
	} else if o.Quarantined != nil {
		m.quarantineCount++
	}
}

// ObserveTick counts a round boundary tick.
func (m *Metrics) ObserveTick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ticks++
}

// ObserveCheckpoint records a checkpoint attempt.
func (m *Metrics) ObserveCheckpoint(ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ok {
		m.ckptOK++
	} else {
		m.ckptFailed++
	}
}

// ObserveReplay records rounds reconstructed during recovery.
func (m *Metrics) ObserveReplay(rounds int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.replayed += uint64(rounds)
}

// ClassStats is one class's slice of a metrics snapshot.
type ClassStats struct {
	Admitted    uint64  `json:"admitted"`
	Shed        uint64  `json:"shed"`
	Served      uint64  `json:"served"`
	Quarantined uint64  `json:"quarantined"`
	P50Millis   float64 `json:"p50_ms"`
	P90Millis   float64 `json:"p90_ms"`
	P99Millis   float64 `json:"p99_ms"`
}

// Snapshot is the JSON shape of GET /metrics.
type Snapshot struct {
	Rounds             uint64                `json:"rounds"`
	QuarantinedRound   uint64                `json:"quarantined_rounds"`
	Ticks              uint64                `json:"ticks"`
	ReplayedRounds     uint64                `json:"replayed_rounds"`
	QueueDepth         int                   `json:"queue_depth"`
	WindowFill         int                   `json:"window_fill"`
	CheckpointsOK      uint64                `json:"checkpoints_ok"`
	CheckpointsFail    uint64                `json:"checkpoints_failed"`
	Totals             sim.Breakdown         `json:"totals"`
	TotalCost          float64               `json:"total_cost"`
	RecentCostPerRound float64               `json:"recent_cost_per_round"`
	Placement          []int                 `json:"placement"`
	Classes            map[string]ClassStats `json:"classes"`
}

// snapshot merges the metrics with queue counters and engine state.
func (m *Metrics) snapshot(q *IngestQueue, e *Engine, windowFill int) Snapshot {
	admitted, shed := q.Counters()
	m.mu.Lock()
	defer m.mu.Unlock()
	classes := make(map[string]ClassStats, numClasses)
	for _, c := range Classes() {
		classes[c.String()] = ClassStats{
			Admitted:    admitted[c],
			Shed:        shed[c],
			Served:      m.served[c],
			Quarantined: m.quarantined[c],
			P50Millis:   float64(m.lat[c].percentile(0.50)) / 1e6,
			P90Millis:   float64(m.lat[c].percentile(0.90)) / 1e6,
			P99Millis:   float64(m.lat[c].percentile(0.99)) / 1e6,
		}
	}
	totals := e.Totals()
	recent := e.RecentRounds()
	perRound := 0.0
	if len(recent) > 0 {
		sum := 0.0
		for _, rc := range recent {
			sum += rc.Total()
		}
		perRound = sum / float64(len(recent))
	}
	return Snapshot{
		Rounds:             m.rounds,
		QuarantinedRound:   m.quarantineCount,
		Ticks:              m.ticks,
		ReplayedRounds:     m.replayed,
		QueueDepth:         q.Depth(),
		WindowFill:         windowFill,
		CheckpointsOK:      m.ckptOK,
		CheckpointsFail:    m.ckptFailed,
		Totals:             totals,
		TotalCost:          totals.Total(),
		RecentCostPerRound: perRound,
		Placement:          e.Placement(),
		Classes:            classes,
	}
}
