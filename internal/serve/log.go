package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// segPattern names segment files: wal-000001.log, wal-000002.log, …
// Sequence numbers are dense and strictly increasing; the highest one is
// the active (append) segment, everything below it is sealed.
const segPattern = "wal-%06d.log"

func segmentPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf(segPattern, seq))
}

// segInfo describes one sealed segment: its sequence number, the global
// index of its first entry, and how many entries it holds. Sealed
// segments are immutable, so TruncateBefore can delete whole files by
// comparing base+count against a checkpoint cursor.
type segInfo struct {
	seq   int
	base  int
	count int
}

// Log is the segmented write-ahead log of one state directory. It behaves
// like the single append-only WAL it replaces — entries carry global
// indices, Count is the global length — but the bytes live in a chain of
// segment files that rotate every segEntries appends, so
// checkpoint-anchored truncation (TruncateBefore) can bound the state
// directory of a long-running server by deleting sealed segments that a
// restorable checkpoint has made redundant. segEntries <= 0 disables
// rotation: the log stays a single wal-000001.log forever, and a legacy
// single-file wal.log is adopted in place (renamed to segment 1) on open.
type Log struct {
	dir         string
	fingerprint string
	segEntries  int

	// mu serialises appends (which arrive under the ingest-queue lock)
	// against the consumer goroutine's Sync and truncation.
	mu sync.Mutex

	active     *WAL // highest-seq segment, open for append
	activeSeq  int
	activeBase int // global index of the active segment's first entry

	sealed []segInfo // ascending seq; candidates for truncation
}

// CreateLog starts a fresh segmented log in dir.
func CreateLog(dir, fingerprint string, segEntries int) (*Log, error) {
	w, err := createSegment(segmentPath(dir, 1), walHeader{WAL: walVersion, Fingerprint: fingerprint, Seq: 1})
	if err != nil {
		return nil, err
	}
	return &Log{dir: dir, fingerprint: fingerprint, segEntries: segEntries, active: w, activeSeq: 1}, nil
}

// listSegments returns the segment sequence numbers present in dir,
// ascending.
func listSegments(dir string) ([]int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil {
		return nil, err
	}
	seqs := make([]int, 0, len(names))
	for _, name := range names {
		var seq int
		if _, err := fmt.Sscanf(filepath.Base(name), segPattern, &seq); err != nil || seq <= 0 {
			return nil, fmt.Errorf("serve: %s: not a WAL segment name", name)
		}
		seqs = append(seqs, seq)
	}
	sort.Ints(seqs)
	return seqs, nil
}

// LogExists reports whether dir holds a write-ahead log (segmented or
// legacy single-file).
func LogExists(dir string) (bool, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return false, err
	}
	if len(seqs) > 0 {
		return true, nil
	}
	if _, err := os.Stat(filepath.Join(dir, WALName)); err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// OpenLog reads an existing log back for recovery. It returns the log
// positioned for appends, the global index of the first retained entry
// (non-zero once truncation has deleted sealed segments — the caller must
// then restore from a checkpoint instead of replaying from scratch), and
// the retained entries in order. A legacy single-file wal.log is migrated
// by renaming it to segment 1; its header (which predates the Seq/Base
// fields) parses as seq 0 / base 0, which the chain validation accepts
// for the first segment.
func OpenLog(dir, fingerprint string, segEntries int) (*Log, int, []Entry, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, 0, nil, err
	}
	legacy := filepath.Join(dir, WALName)
	if _, statErr := os.Stat(legacy); statErr == nil {
		if len(seqs) > 0 {
			return nil, 0, nil, fmt.Errorf("serve: %s holds both a legacy %s and WAL segments — state directory corrupt", dir, WALName)
		}
		if err := os.Rename(legacy, segmentPath(dir, 1)); err != nil {
			return nil, 0, nil, err
		}
		seqs = []int{1}
	} else if !os.IsNotExist(statErr) {
		return nil, 0, nil, statErr
	}
	if len(seqs) == 0 {
		return nil, 0, nil, fmt.Errorf("serve: %s holds no WAL", dir)
	}

	log := &Log{dir: dir, fingerprint: fingerprint, segEntries: segEntries}
	var all []Entry
	base := -1
	next := 0 // expected base of the next segment in the chain
	for i, seq := range seqs {
		if i > 0 && seq != seqs[i-1]+1 {
			return nil, 0, nil, fmt.Errorf("serve: %s: WAL segment %d missing — log lost entries", dir, seqs[i-1]+1)
		}
		path := segmentPath(dir, seq)
		w, hdr, entries, err := openSegment(path, fingerprint)
		if err != nil {
			return nil, 0, nil, err
		}
		if hdr.Seq != 0 && hdr.Seq != seq {
			w.Close()
			return nil, 0, nil, fmt.Errorf("serve: %s: header seq %d does not match file name", path, hdr.Seq)
		}
		if i == 0 {
			base = hdr.Base
		} else if hdr.Base != next {
			w.Close()
			return nil, 0, nil, fmt.Errorf("serve: %s: segment base %d, previous segments end at %d — log lost entries", path, hdr.Base, next)
		}
		next = hdr.Base + len(entries)
		if i < len(seqs)-1 {
			// Sealed segment: a torn tail here is not a crash artifact (only
			// the last segment was ever open for append) but lost data, which
			// the base check of the next segment reports above. Close it; only
			// the active segment stays open.
			if err := w.Close(); err != nil {
				return nil, 0, nil, err
			}
			log.sealed = append(log.sealed, segInfo{seq: seq, base: hdr.Base, count: len(entries)})
		} else {
			log.active = w
			log.activeSeq = seq
			log.activeBase = hdr.Base
		}
		all = append(all, entries...)
	}
	return log, base, all, nil
}

// Append logs one entry, rotating to a fresh segment first when the
// active one is full.
func (l *Log) Append(e Entry) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.segEntries > 0 && l.active.Count() >= l.segEntries {
		if err := l.rotate(); err != nil {
			return err
		}
	}
	return l.active.Append(e)
}

// rotate seals the active segment (synced to stable storage — it will
// never be written again) and starts the next one.
func (l *Log) rotate() error {
	if err := l.active.Sync(); err != nil {
		return err
	}
	sealed := segInfo{seq: l.activeSeq, base: l.activeBase, count: l.active.Count()}
	if err := l.active.Close(); err != nil {
		return err
	}
	next := sealed.base + sealed.count
	w, err := createSegment(segmentPath(l.dir, l.activeSeq+1),
		walHeader{WAL: walVersion, Fingerprint: l.fingerprint, Seq: l.activeSeq + 1, Base: next})
	if err != nil {
		return err
	}
	l.sealed = append(l.sealed, sealed)
	l.active = w
	l.activeSeq++
	l.activeBase = next
	return nil
}

// Count returns the global number of entries appended or read back,
// including entries in segments already truncated away.
func (l *Log) Count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.activeBase + l.active.Count()
}

// Base returns the global index of the oldest retained entry.
func (l *Log) Base() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.sealed) > 0 {
		return l.sealed[0].base
	}
	return l.activeBase
}

// Segments returns the number of on-disk segment files.
func (l *Log) Segments() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.sealed) + 1
}

// TruncateBefore deletes sealed segments whose entries all lie below the
// given cursor, returning how many files were removed. The caller must
// hold a durable checkpoint at (or beyond) cursor that recovery can
// restore from, since the deleted entries can no longer be replayed. The
// active segment is never deleted.
func (l *Log) TruncateBefore(cursor int) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.sealed) > 0 && l.sealed[0].base+l.sealed[0].count <= cursor {
		if err := os.Remove(segmentPath(l.dir, l.sealed[0].seq)); err != nil {
			return removed, err
		}
		l.sealed = l.sealed[1:]
		removed++
	}
	return removed, nil
}

// Sync forces the active segment to stable storage (sealed segments were
// synced when rotated).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active.Sync()
}

// Close flushes and closes the active segment.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.active.Close()
}
