package serve

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/sim"
)

// DefaultWindow is how many admitted requests close a demand window when
// no tick does first.
const DefaultWindow = 64

// DefaultKeepRounds is the rolling ledger's ring size.
const DefaultKeepRounds = 256

// QuarantineError records one algorithm round that panicked or failed and
// was quarantined: the round's demand window is dropped, the process and
// the stream survive, and the failure is counted and kept for inspection.
type QuarantineError struct {
	Round int
	Cause string
}

func (q *QuarantineError) Error() string {
	return fmt.Sprintf("serve: round %d quarantined: %s", q.Round, q.Cause)
}

// RoundOutcome reports what applying one entry did.
type RoundOutcome struct {
	// Served is true when the entry closed a demand window and the round
	// was played successfully; Cost is that round's ledger entry.
	Served bool
	Cost   sim.RoundCost
	// Quarantined is non-nil when the entry closed a window but the
	// algorithm panicked or failed; the window was dropped.
	Quarantined *QuarantineError
}

// Closed reports whether the entry ended a demand window either way.
func (o RoundOutcome) Closed() bool { return o.Served || o.Quarantined != nil }

// Engine is the incremental streaming core: it consumes admitted entries
// in order, folds arrivals into the current demand window (a
// cost.Accumulator, so folding is O(distinct nodes) per arrival), and
// serves a simulation round through sim.Stream whenever the window fills
// (Window admitted requests) or a tick closes it. The engine is
// deterministic in the entry sequence — the property WAL replay recovery
// rests on — and must be driven by a single goroutine.
type Engine struct {
	stream      *sim.Stream
	window      *cost.Accumulator
	windowCount int
	windowSize  int
	cursor      int // entries applied, the checkpoint stream cursor
	quarantined int
	lastQuar    *QuarantineError

	// ring holds the most recent served rounds for the rolling ledger.
	ring     []sim.RoundCost
	ringNext int
	ringLen  int
}

// NewEngine wraps a stream. window <= 0 selects DefaultWindow; keepRounds
// <= 0 selects DefaultKeepRounds. The stream's per-round ledger retention
// is disabled — the engine's ring and the stream's running totals are the
// rolling ledger.
func NewEngine(stream *sim.Stream, window, keepRounds int) *Engine {
	if window <= 0 {
		window = DefaultWindow
	}
	if keepRounds <= 0 {
		keepRounds = DefaultKeepRounds
	}
	stream.DiscardRounds()
	return &Engine{
		stream:     stream,
		window:     cost.NewAccumulator(stream.Env().Graph.N()),
		windowSize: window,
		ring:       make([]sim.RoundCost, keepRounds),
	}
}

// Apply consumes one entry: a tick closes the current window (possibly
// empty — idle rounds still accrue running costs); an arrival folds into
// the window and closes it when the window fills. The returned outcome
// says whether a round was served or quarantined. Apply is deterministic
// in the sequence of entries applied since the engine was built.
func (e *Engine) Apply(entry Entry) RoundOutcome {
	e.cursor++
	if entry.Tick {
		return e.serveRound()
	}
	e.window.Add(cost.DemandFromPairs(cost.NodeCount{Node: entry.Node, Count: entry.Count}))
	e.windowCount += entry.Count
	if e.windowCount >= e.windowSize {
		return e.serveRound()
	}
	return RoundOutcome{}
}

// serveRound plays the window as one simulation round, quarantining a
// panicking or failing algorithm instead of propagating.
func (e *Engine) serveRound() RoundOutcome {
	d := e.window.Demand()
	e.window.Reset()
	e.windowCount = 0
	rc, err := e.safeServe(d)
	if err != nil {
		q := &QuarantineError{Round: e.stream.Round(), Cause: err.Error()}
		e.quarantined++
		e.lastQuar = q
		return RoundOutcome{Quarantined: q}
	}
	e.ring[e.ringNext] = rc
	e.ringNext = (e.ringNext + 1) % len(e.ring)
	if e.ringLen < len(e.ring) {
		e.ringLen++
	}
	return RoundOutcome{Served: true, Cost: rc}
}

// safeServe converts an algorithm panic into an error: one bad round must
// not take the serving process down, and because replay re-runs the same
// deterministic round against the same state, a quarantined round stays
// quarantined on recovery — the ledger remains bit-identical.
func (e *Engine) safeServe(d cost.Demand) (rc sim.RoundCost, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("algorithm panic: %v", r)
		}
	}()
	return e.stream.Serve(d)
}

// Cursor returns the number of entries applied — the WAL position a
// checkpoint records.
func (e *Engine) Cursor() int { return e.cursor }

// Round returns the next round index.
func (e *Engine) Round() int { return e.stream.Round() }

// Quarantined returns the number of quarantined rounds.
func (e *Engine) Quarantined() int { return e.quarantined }

// LastQuarantine returns the most recent quarantined round, nil if none.
func (e *Engine) LastQuarantine() *QuarantineError { return e.lastQuar }

// WindowCount returns the requests folded into the open window.
func (e *Engine) WindowCount() int { return e.windowCount }

// WindowDemand returns the demand folded into the open window so far —
// checkpoint state, so restoration can reopen a half-filled window.
func (e *Engine) WindowDemand() cost.Demand { return e.window.Demand() }

// Placement returns a copy of the current configuration as a plain node
// list (the algorithm keeps mutating its own).
func (e *Engine) Placement() []int {
	p := e.stream.Placement()
	out := make([]int, len(p))
	copy(out, p)
	return out
}

// Totals returns the running cost breakdown.
func (e *Engine) Totals() sim.Breakdown { return e.stream.Ledger().Totals }

// RecentRounds returns the rolling window of served rounds, oldest first.
func (e *Engine) RecentRounds() []sim.RoundCost {
	out := make([]sim.RoundCost, 0, e.ringLen)
	start := e.ringNext - e.ringLen
	if start < 0 {
		start += len(e.ring)
	}
	for i := 0; i < e.ringLen; i++ {
		out = append(out, e.ring[(start+i)%len(e.ring)])
	}
	return out
}

// Stream exposes the underlying stream (read-only use).
func (e *Engine) Stream() *sim.Stream { return e.stream }
