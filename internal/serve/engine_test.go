package serve

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/online"
	"repro/internal/sim"
)

// feedRound pushes one batch round's demand into the engine as individual
// arrival entries and closes it with a tick, returning the tick outcome.
func feedRound(t *testing.T, e *Engine, d cost.Demand) RoundOutcome {
	t.Helper()
	for _, p := range d.Pairs() {
		if out := e.Apply(Entry{Node: p.Node, Count: p.Count}); out.Closed() {
			t.Fatal("arrival closed the window under an unbounded window size")
		}
	}
	return e.Apply(TickEntry())
}

// TestEngineTickParityWithBatch pins the tentpole invariant: feeding a
// batch sequence through the streaming engine round by round (arrivals
// then a tick) produces bit-identical round costs and totals to serving
// the same sequence directly through sim.Stream.
func TestEngineTickParityWithBatch(t *testing.T) {
	const rounds = 40
	_, seq := testSequence(t, rounds)

	batch, err := testFactory(t)()
	if err != nil {
		t.Fatal(err)
	}
	want := make([]sim.RoundCost, 0, rounds)
	for i := 0; i < rounds; i++ {
		rc, err := batch.Serve(seq.Demand(i))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, rc)
	}

	st, err := testFactory(t)()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, 1<<30, rounds)
	for i := 0; i < rounds; i++ {
		out := feedRound(t, e, seq.Demand(i))
		if !out.Served {
			t.Fatalf("round %d: tick did not serve: %+v", i, out)
		}
		if out.Cost != want[i] {
			t.Fatalf("round %d diverged:\n  stream %+v\n  batch  %+v", i, out.Cost, want[i])
		}
	}
	if got, want := totalsToBits(e.Totals()), totalsToBits(batch.Ledger().Totals); got != want {
		t.Fatalf("totals diverged bitwise: %v vs %v", got, want)
	}
	recent := e.RecentRounds()
	if len(recent) != rounds {
		t.Fatalf("ring kept %d of %d rounds", len(recent), rounds)
	}
	for i := range recent {
		if recent[i] != want[i] {
			t.Fatalf("ring round %d diverged", i)
		}
	}
	if e.Cursor() == 0 || e.Round() != rounds {
		t.Fatalf("cursor %d round %d after %d rounds", e.Cursor(), e.Round(), rounds)
	}
}

// TestEngineWindowClosesByCount checks the request-count trigger: with
// window=4 the fourth admitted request closes the window without a tick.
func TestEngineWindowClosesByCount(t *testing.T) {
	st, err := testFactory(t)()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, 4, 8)
	for i := 0; i < 3; i++ {
		if out := e.Apply(Entry{Node: i, Count: 1}); out.Closed() {
			t.Fatalf("window closed after %d of 4 requests", i+1)
		}
	}
	if e.WindowCount() != 3 {
		t.Fatalf("window count %d", e.WindowCount())
	}
	out := e.Apply(Entry{Node: 3, Count: 1})
	if !out.Served {
		t.Fatalf("fourth request did not close the window: %+v", out)
	}
	if e.WindowCount() != 0 {
		t.Fatal("window count not reset after serving")
	}
	// A multi-count arrival can overshoot the window and still closes it.
	if out := e.Apply(Entry{Node: 0, Count: 9}); !out.Served {
		t.Fatal("overshooting arrival did not close the window")
	}
}

// TestEngineRingEvictsOldest fills the ring past capacity and checks only
// the newest keepRounds rounds remain, oldest first.
func TestEngineRingEvictsOldest(t *testing.T) {
	const rounds, keep = 12, 5
	_, seq := testSequence(t, rounds)
	st, err := testFactory(t)()
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, 1<<30, keep)
	var all []sim.RoundCost
	for i := 0; i < rounds; i++ {
		out := feedRound(t, e, seq.Demand(i))
		if !out.Served {
			t.Fatalf("round %d not served", i)
		}
		all = append(all, out.Cost)
	}
	recent := e.RecentRounds()
	if len(recent) != keep {
		t.Fatalf("ring holds %d, want %d", len(recent), keep)
	}
	for i := range recent {
		if recent[i] != all[rounds-keep+i] {
			t.Fatalf("ring slot %d is not round %d", i, rounds-keep+i)
		}
	}
}

// panicAfter wraps an algorithm and panics in Observe once `healthy`
// rounds have been served — the chaos stub behind the quarantine tests.
type panicAfter struct {
	sim.Algorithm
	healthy int
	seen    int
}

func (p *panicAfter) Observe(t int, d cost.Demand, access cost.AccessCost) core.Delta {
	p.seen++
	if p.seen > p.healthy {
		panic("injected algorithm failure")
	}
	return p.Algorithm.Observe(t, d, access)
}

// TestEngineQuarantinesPanickingRound checks that an algorithm panic is
// contained: the round is quarantined and counted, the engine keeps
// accepting entries, and the ledger totals stop advancing instead of
// recording a half-played round.
func TestEngineQuarantinesPanickingRound(t *testing.T) {
	const rounds = 6
	env, seq := testSequence(t, rounds)
	st, err := sim.NewStream(env, &panicAfter{Algorithm: online.NewONTH(), healthy: 2}, "chaos")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(st, 1<<30, rounds)
	served, quarantined := 0, 0
	for i := 0; i < rounds; i++ {
		out := feedRound(t, e, seq.Demand(i))
		switch {
		case out.Served:
			served++
		case out.Quarantined != nil:
			quarantined++
			if out.Quarantined.Cause == "" {
				t.Fatal("quarantine without a cause")
			}
		default:
			t.Fatalf("round %d: tick closed nothing", i)
		}
	}
	if served != 2 || quarantined != rounds-2 {
		t.Fatalf("served %d quarantined %d", served, quarantined)
	}
	if e.Quarantined() != rounds-2 || e.LastQuarantine() == nil {
		t.Fatalf("engine counted %d quarantines", e.Quarantined())
	}
	healthyTotal := e.Totals().Total()
	if healthyTotal <= 0 || math.IsNaN(healthyTotal) {
		t.Fatalf("totals corrupted after quarantine: %v", healthyTotal)
	}
	if len(e.RecentRounds()) != 2 {
		t.Fatalf("ring recorded %d rounds, want the 2 healthy ones", len(e.RecentRounds()))
	}
}
