package offline

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/workload"
)

// roundMemo caches the per-round access totals the lookahead window scans
// compute: totals[t-start] = Access(placement, σt).Total(). The cache is
// valid for one placement; scanning under a different placement resets it.
// OFFBR and OFFTH keep one memo per run, so a round's access cost under
// the current placement is computed once per epoch even when several
// window scans cover it — OFFTH's back-to-back add/best-response scans at
// one boundary, and windows that re-cover rounds because the realised
// epoch ended earlier than the predicted one (running costs drift as
// inactive servers expire).
type roundMemo struct {
	placement core.Placement // owned copy of the placement the cache is valid for
	start     int            // round index of totals[0]
	totals    []float64      // access totals of rounds start, start+1, ...
	agg       *cost.Accumulator
}

// access returns Access(placement, d).Total() for round t, from the cache
// when round t was already scanned under this placement.
func (m *roundMemo) access(env *sim.Env, placement core.Placement, t int, d cost.Demand) float64 {
	if !placement.Equal(m.placement) {
		m.placement = append(m.placement[:0], placement...)
		m.start = t
		m.totals = m.totals[:0]
	}
	idx := t - m.start
	if idx < 0 || idx > len(m.totals) {
		// A window that jumped backwards or past the cached range; restart
		// the cache at t (window scans are sequential, so within one scan
		// this happens at most for the first round).
		m.start = t
		m.totals = m.totals[:0]
		idx = 0
	}
	if idx < len(m.totals) {
		return m.totals[idx]
	}
	tot := env.Eval.Access(placement, d).Total()
	m.totals = append(m.totals, tot)
	return tot
}

// lookahead collects the upcoming epoch: the rounds starting at `from`
// whose cost in the current configuration would accumulate to the given
// threshold (mirroring how the online epoch of the same algorithm would
// end), capped by the end of the horizon. Per-round access totals come
// from the memo, and the window demand is folded through a
// cost.Accumulator (O(distinct access points) per round) instead of a
// fresh map merge.
func lookahead(env *sim.Env, seq *workload.Sequence, placement core.Placement, inactive int, from int, threshold float64, memo *roundMemo) (agg cost.Demand, length int) {
	accum := 0.0
	run := env.Costs.Run(placement.Len(), inactive)
	if memo.agg == nil {
		memo.agg = cost.NewAccumulator(env.Graph.N())
	}
	memo.agg.Reset()
	for t := from; t < seq.Len(); t++ {
		d := seq.Demand(t)
		memo.agg.Add(d)
		length++
		accum += memo.access(env, placement, t, d) + run
		if accum >= threshold {
			break
		}
	}
	if length == 0 {
		return cost.Demand{}, 0
	}
	return memo.agg.Demand(), length
}
