package offline

import (
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/workload"
)

// roundMemo caches the per-round access costs the lookahead window scans
// compute: costs[t-start] = Access(placement, σt). The cache is valid for
// one placement; scanning under a different placement resets it. OFFBR and
// OFFTH keep one memo per run, so a round's access cost under the current
// placement is computed once per epoch even when several window scans
// cover it — OFFTH's back-to-back add/best-response scans at one boundary,
// and windows that re-cover rounds because the realised epoch ended
// earlier than the predicted one (running costs drift as inactive servers
// expire). Via cached (the sim.AccessReuser hook) the same entries also
// serve the driver, so a round a non-switching lookahead scored is never
// evaluated a second time by sim.Run.
type roundMemo struct {
	placement core.Placement    // owned copy of the placement the cache is valid for
	start     int               // round index of costs[0]
	costs     []cost.AccessCost // access costs of rounds start, start+1, ...
	agg       *cost.Accumulator
}

// access returns Access(placement, d) for round t, from the cache when
// round t was already scanned under this placement.
func (m *roundMemo) access(env *sim.Env, placement core.Placement, t int, d cost.Demand) cost.AccessCost {
	if !placement.Equal(m.placement) {
		m.placement = append(m.placement[:0], placement...)
		m.start = t
		m.costs = m.costs[:0]
	}
	idx := t - m.start
	if idx < 0 || idx > len(m.costs) {
		// A window that jumped backwards or past the cached range; restart
		// the cache at t (window scans are sequential, so within one scan
		// this happens at most for the first round).
		m.start = t
		m.costs = m.costs[:0]
		idx = 0
	}
	if idx < len(m.costs) {
		return m.costs[idx]
	}
	ac := env.Eval.Access(placement, d)
	m.costs = append(m.costs, ac)
	return ac
}

// cached returns round t's access cost under placement p when a window
// scan already evaluated it, implementing the driver's double-evaluation
// dedup (sim.AccessReuser). seq is the sequence the windows scanned and d
// the demand the driver is serving: the entry is only handed back when d
// is seq's own demand for round t, so driving an algorithm with a
// different sequence than it planned for falls back to fresh evaluation
// instead of mis-charging the round.
func (m *roundMemo) cached(seq *workload.Sequence, t int, p core.Placement, d cost.Demand) (cost.AccessCost, bool) {
	if len(m.placement) == 0 || !p.Equal(m.placement) {
		return cost.AccessCost{}, false
	}
	idx := t - m.start
	if idx < 0 || idx >= len(m.costs) {
		return cost.AccessCost{}, false
	}
	if !sameDemand(d, seq.Demand(t)) {
		return cost.AccessCost{}, false
	}
	return m.costs[idx], true
}

// sameDemand reports whether a and b are the same demand instance: equal
// totals and a shared backing array. A false negative merely costs a
// fresh evaluation, never correctness.
func sameDemand(a, b cost.Demand) bool {
	ap, bp := a.Pairs(), b.Pairs()
	if a.Total() != b.Total() || len(ap) != len(bp) {
		return false
	}
	return len(ap) == 0 || &ap[0] == &bp[0]
}

// lookahead collects the upcoming epoch: the rounds starting at `from`
// whose cost in the current configuration would accumulate to the given
// threshold (mirroring how the online epoch of the same algorithm would
// end), capped by the end of the horizon. Per-round access totals come
// from the memo, and the window demand is folded through a
// cost.Accumulator (O(distinct access points) per round) instead of a
// fresh map merge.
func lookahead(env *sim.Env, seq *workload.Sequence, placement core.Placement, inactive int, from int, threshold float64, memo *roundMemo) (agg cost.Demand, length int) {
	accum := 0.0
	run := env.Costs.Run(placement.Len(), inactive)
	if memo.agg == nil {
		memo.agg = cost.NewAccumulator(env.Graph.N())
	}
	memo.agg.Reset()
	for t := from; t < seq.Len(); t++ {
		d := seq.Demand(t)
		memo.agg.Add(d)
		length++
		accum += memo.access(env, placement, t, d).Total() + run
		if accum >= threshold {
			break
		}
	}
	if length == 0 {
		return cost.Demand{}, 0
	}
	return memo.agg.Demand(), length
}

// rescoreWindow closes the switched-window reuse gap named in the ROADMAP:
// when a lookahead window *does* trigger a reconfiguration, its memoized
// costs were scored under the pre-switch placement and are useless to the
// driver, which previously re-evaluated every round of the new epoch from
// scratch. Re-scoring the window under the post-switch placement — starting
// at the epoch's first round and accumulating until the same threshold the
// epoch-end trigger uses — refills the memo with exactly the values
// sim.Run's AccessReuser hook will ask for, so served rounds keep coming
// out of the memo across reconfigurations. Rounds scored past the realised
// epoch end stay cached and are picked up by the next window scan under the
// unchanged placement, so no evaluation is wasted. The memoized values are
// the exact Eval.Access results the driver would compute itself; ledgers
// are pinned bit-identical with the hook on and off, including forced
// switches (reuse_parity_test.go).
func rescoreWindow(env *sim.Env, seq *workload.Sequence, placement core.Placement, inactive, from int, threshold float64, memo *roundMemo) {
	accum := 0.0
	run := env.Costs.Run(placement.Len(), inactive)
	for t := from; t < seq.Len(); t++ {
		accum += memo.access(env, placement, t, seq.Demand(t)).Total() + run
		if accum >= threshold {
			break
		}
	}
}
