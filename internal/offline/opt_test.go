package offline

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/workload"
)

func lineEnv(t *testing.T, n, k int, params cost.Params) *sim.Env {
	t.Helper()
	g := graph.New(n)
	for v := 0; v+1 < n; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, params,
		core.Params{QueueCap: 3, Expiry: 20, MaxServers: k})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// bruteForceOPT enumerates every configuration path and returns the minimal
// total cost, for cross-checking the dynamic program.
func bruteForceOPT(env *sim.Env, seq *workload.Sequence, k int) float64 {
	states := core.EnumerateVectors(env.Graph.N(), k, 0)
	start := core.NewVector(env.Graph.N())
	for _, v := range env.Start {
		start[v] = core.StateActive
	}
	var rec func(t int, prev core.Vector) float64
	rec = func(t int, prev core.Vector) float64 {
		if t == seq.Len() {
			return 0
		}
		best := math.Inf(1)
		for _, st := range states {
			c := core.TransitionCost(env.Costs, prev, st) + st.RunCost(env.Costs)
			ac := env.Eval.Access(st.ActivePlacement(), seq.Demand(t))
			if ac.Infinite() {
				continue
			}
			c += ac.Total() + rec(t+1, st)
			if c < best {
				best = c
			}
		}
		return best
	}
	return rec(0, start)
}

func TestOPTMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 6; trial++ {
		params := cost.Params{Beta: 3, Create: 10, RunActive: 1, RunInactive: 0.2}
		if trial%2 == 1 {
			params.Beta, params.Create = 10, 3 // β > c variant
		}
		env := lineEnv(t, 3, 2, params)
		demands := make([]cost.Demand, 3)
		for i := range demands {
			list := make([]int, 1+rng.Intn(3))
			for j := range list {
				list[j] = rng.Intn(3)
			}
			demands[i] = cost.DemandFromList(list)
		}
		seq := workload.NewSequence("brute", demands)

		opt := NewOPT(seq)
		if err := opt.Reset(env); err != nil {
			t.Fatal(err)
		}
		want := bruteForceOPT(env, seq, 2)
		if math.Abs(opt.PlannedCost()-want) > 1e-9 {
			t.Fatalf("trial %d: DP cost %v != brute force %v", trial, opt.PlannedCost(), want)
		}
	}
}

func TestOPTLedgerMatchesPlannedCost(t *testing.T) {
	env := lineEnv(t, 5, 3, cost.DefaultParams())
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 3}, 30)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOPT(seq)
	l, err := sim.Run(env, opt, seq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Total()-opt.PlannedCost()) > 1e-6 {
		t.Fatalf("ledger total %v != planned %v", l.Total(), opt.PlannedCost())
	}
}

func TestOPTNeverWorseThanAnyStatic(t *testing.T) {
	// Optimality sanity: OPT must cost at most any fixed configuration.
	env := lineEnv(t, 4, 2, cost.DefaultParams())
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 2}, 16)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOPT(seq)
	lOpt, err := sim.Run(env, opt, seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.EnumeratePlacements(4, 2) {
		total := env.Costs.Transition(len(p), 0) // pessimistic static build-out
		entering, leaving := env.Start.Diff(p)
		total = env.Costs.Transition(len(entering), len(leaving))
		for tt := 0; tt < seq.Len(); tt++ {
			total += env.Eval.Access(p, seq.Demand(tt)).Total() + env.Costs.Run(p.Len(), 0)
		}
		if lOpt.Total() > total+1e-9 {
			t.Fatalf("OPT %v beats static %v only by losing (static cost %v)", lOpt.Total(), p, total)
		}
	}
}

func TestOPTConstantDemandConverges(t *testing.T) {
	// Under constant demand at node 0, OPT should settle on a fixed
	// configuration (no migration churn after the first move).
	env := lineEnv(t, 4, 2, cost.DefaultParams())
	demands := make([]cost.Demand, 40)
	for i := range demands {
		demands[i] = cost.DemandFromList([]int{0, 0, 0})
	}
	seq := workload.NewSequence("const", demands)
	opt := NewOPT(seq)
	l, err := sim.Run(env, opt, seq)
	if err != nil {
		t.Fatal(err)
	}
	late := l.Rounds[len(l.Rounds)-1]
	if late.Migration != 0 || late.Creation != 0 {
		t.Fatal("OPT still reconfiguring at the horizon under constant demand")
	}
}

func TestOPTRespectsServerBound(t *testing.T) {
	env := lineEnv(t, 5, 2, cost.DefaultParams())
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: 4, Lambda: 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOPT(seq)
	if err := opt.Reset(env); err != nil {
		t.Fatal(err)
	}
	for tt, v := range opt.Schedule() {
		a, i := v.Counts()
		if a+i > 2 {
			t.Fatalf("round %d: %d servers exceed k=2", tt, a+i)
		}
	}
}

func TestOPTGuards(t *testing.T) {
	// Too many nodes.
	g := graph.New(70)
	for v := 0; v+1 < 70; v++ {
		g.MustAddEdge(v, v+1, 1, 1)
	}
	env, err := sim.NewEnv(g, cost.Linear{}, cost.AssignMinCost, cost.DefaultParams(), core.Params{MaxServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	opt := NewOPT(workload.NewSequence("x", []cost.Demand{cost.DemandFromList([]int{0})}))
	if err := opt.Reset(env); err == nil {
		t.Fatal("70-node OPT accepted")
	}
	// Too many states.
	env2 := lineEnv(t, 12, 0, cost.DefaultParams()) // k unbounded → 3^12 states
	if err := NewOPT(workload.NewSequence("x", []cost.Demand{cost.DemandFromList([]int{0})})).Reset(env2); err == nil {
		t.Fatal("3^12 states accepted")
	}
}

func TestOPTEmptySequence(t *testing.T) {
	env := lineEnv(t, 3, 2, cost.DefaultParams())
	opt := NewOPT(workload.NewSequence("empty", nil))
	l, err := sim.Run(env, opt, workload.NewSequence("empty", nil))
	if err != nil {
		t.Fatal(err)
	}
	if l.Total() != 0 || opt.PlannedCost() != 0 {
		t.Fatal("empty sequence must cost nothing")
	}
}

func TestOPTUsesInactiveStateWhenWorthIt(t *testing.T) {
	// Demand alternates between the two ends of a line in long blocks.
	// Keeping a server inactive at the idle end (paying Ri) must beat
	// repeatedly re-creating it when Ri is tiny and c is large.
	params := cost.Params{Beta: 1000, Create: 50, RunActive: 5, RunInactive: 0.01}
	env := lineEnv(t, 2, 2, params)
	var demands []cost.Demand
	for block := 0; block < 4; block++ {
		node := block % 2
		for r := 0; r < 10; r++ {
			demands = append(demands, cost.DemandFromList([]int{node, node, node, node}))
		}
	}
	seq := workload.NewSequence("alt", demands)
	opt := NewOPT(seq)
	if err := opt.Reset(env); err != nil {
		t.Fatal(err)
	}
	sawInactive := false
	for _, v := range opt.Schedule() {
		if _, inact := v.Counts(); inact > 0 {
			sawInactive = true
			break
		}
	}
	if !sawInactive {
		t.Fatal("OPT never parked a server inactive although Ri ≪ re-creation cost")
	}
}
