package offline

import (
	"math"
	"testing"

	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/workload"
)

func commuterSeq(t *testing.T, env *sim.Env, T, lambda, rounds int) *workload.Sequence {
	t.Helper()
	seq, err := workload.CommuterDynamic(env.Metric, workload.CommuterConfig{T: T, Lambda: lambda}, rounds)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestOFFSTATPicksKopt(t *testing.T) {
	env := lineEnv(t, 8, 4, cost.DefaultParams())
	seq := commuterSeq(t, env, 4, 3, 60)
	o := NewOFFSTAT(seq)
	if err := o.Reset(env); err != nil {
		t.Fatal(err)
	}
	if o.Kopt() < 1 || o.Kopt() > 4 {
		t.Fatalf("kopt = %d outside [1,4]", o.Kopt())
	}
	curve := o.CostCurve()
	if len(curve) == 0 {
		t.Fatal("empty cost curve")
	}
	// kopt must be the argmin of the curve.
	best := 0
	for i, c := range curve {
		if c < curve[best] {
			best = i
		}
	}
	if o.Kopt() != best+1 {
		t.Fatalf("kopt = %d but curve argmin is %d", o.Kopt(), best+1)
	}
}

func TestOFFSTATStaysStatic(t *testing.T) {
	env := lineEnv(t, 6, 3, cost.DefaultParams())
	seq := commuterSeq(t, env, 4, 2, 40)
	o := NewOFFSTAT(seq)
	l, err := sim.Run(env, o, seq)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 1; tt < len(l.Rounds); tt++ {
		r := l.Rounds[tt]
		if r.Migration != 0 || r.Creation != 0 {
			t.Fatalf("round %d: OFFSTAT reconfigured", tt)
		}
		if r.Active != o.Kopt() {
			t.Fatalf("round %d: %d active servers, want kopt=%d", tt, r.Active, o.Kopt())
		}
	}
	// Installation happens before round 0 and is charged there.
	if o.Kopt() > 1 && l.Rounds[0].Creation == 0 && l.Rounds[0].Migration == 0 {
		t.Fatal("multi-server static configuration installed for free")
	}
}

func TestOFFSTATCurveMatchesLedger(t *testing.T) {
	// The curve value at kopt must equal the realised run total.
	env := lineEnv(t, 6, 3, cost.DefaultParams())
	seq := commuterSeq(t, env, 4, 2, 40)
	o := NewOFFSTAT(seq)
	l, err := sim.Run(env, o, seq)
	if err != nil {
		t.Fatal(err)
	}
	want := o.CostCurve()[o.Kopt()-1]
	if math.Abs(l.Total()-want) > 1e-6 {
		t.Fatalf("ledger %v != curve value %v", l.Total(), want)
	}
}

func TestOPTNeverWorseThanOFFSTAT(t *testing.T) {
	// OFFSTAT is one feasible offline strategy, so OPT must not cost more
	// on any instance — the core of the paper's Figures 13–19.
	for _, params := range []cost.Params{cost.DefaultParams(), cost.InvertedParams()} {
		env := lineEnv(t, 5, 3, params)
		seq := commuterSeq(t, env, 4, 5, 60)
		lOpt, err := sim.Run(env, NewOPT(seq), seq)
		if err != nil {
			t.Fatal(err)
		}
		lStat, err := sim.Run(env, NewOFFSTAT(seq), seq)
		if err != nil {
			t.Fatal(err)
		}
		if lOpt.Total() > lStat.Total()+1e-6 {
			t.Fatalf("β=%v c=%v: OPT %v > OFFSTAT %v", params.Beta, params.Create, lOpt.Total(), lStat.Total())
		}
	}
}

func TestOFFBRRuns(t *testing.T) {
	env := lineEnv(t, 6, 3, cost.DefaultParams())
	seq := commuterSeq(t, env, 4, 3, 80)
	a := NewOFFBR(seq)
	l, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	if l.Total() <= 0 || math.IsInf(l.Total(), 0) || math.IsNaN(l.Total()) {
		t.Fatalf("degenerate total %v", l.Total())
	}
	if a.Name() != "OFFBR-fixed" {
		t.Fatalf("Name = %q", a.Name())
	}
	dyn := NewOFFBR(seq)
	dyn.Dynamic = true
	if dyn.Name() != "OFFBR-dyn" {
		t.Fatalf("dyn Name = %q", dyn.Name())
	}
	if _, err := sim.Run(env, dyn, seq); err != nil {
		t.Fatal(err)
	}
}

func TestOFFTHRuns(t *testing.T) {
	env := lineEnv(t, 6, 3, cost.DefaultParams())
	seq := commuterSeq(t, env, 4, 3, 80)
	a := NewOFFTH(seq)
	l, err := sim.Run(env, a, seq)
	if err != nil {
		t.Fatal(err)
	}
	if l.Total() <= 0 || math.IsNaN(l.Total()) {
		t.Fatalf("degenerate total %v", l.Total())
	}
	if a.Name() != "OFFTH" {
		t.Fatalf("Name = %q", a.Name())
	}
}

func TestOPTNeverWorseThanLookaheadHeuristics(t *testing.T) {
	env := lineEnv(t, 5, 3, cost.DefaultParams())
	seq := commuterSeq(t, env, 4, 4, 60)
	lOpt, err := sim.Run(env, NewOPT(seq), seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []sim.Algorithm{NewOFFBR(seq), NewOFFTH(seq)} {
		l, err := sim.Run(env, alg, seq)
		if err != nil {
			t.Fatal(err)
		}
		if lOpt.Total() > l.Total()+1e-6 {
			t.Fatalf("OPT %v > %s %v", lOpt.Total(), alg.Name(), l.Total())
		}
	}
}

func TestOffstatEmptyNetworkFails(t *testing.T) {
	env := lineEnv(t, 1, 1, cost.DefaultParams())
	seq := workload.NewSequence("empty", []cost.Demand{cost.DemandFromList([]int{0})})
	o := NewOFFSTAT(seq)
	if err := o.Reset(env); err != nil {
		t.Fatalf("single-node network should still work: %v", err)
	}
	if o.Kopt() != 1 {
		t.Fatalf("kopt = %d, want 1", o.Kopt())
	}
}
