//go:build !race

package offline

const raceEnabled = false
