package offline

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sim"
	"repro/internal/workload"
)

// OFFSTAT is the static offline reference of Section V: for a given request
// sequence σ it determines the optimal number of servers kopt by computing,
// for each i ∈ {1, ..., k}, the cost of the greedy static configuration
// with i servers — one server after the other placed at the location that
// yields the lowest cost for σ given the servers already placed — and
// picking the i of minimal total cost. The chosen configuration is
// installed before round 0 and never changes, so OFFSTAT quantifies what a
// system without dynamic allocation and migration would pay.
type OFFSTAT struct {
	seq *workload.Sequence

	env       *sim.Env
	placement core.Placement
	curve     []float64 // total cost of the greedy prefix with i+1 servers
	kopt      int
	installed bool
}

// NewOFFSTAT returns the static strategy for the given sequence.
func NewOFFSTAT(seq *workload.Sequence) *OFFSTAT { return &OFFSTAT{seq: seq} }

// Name implements sim.Algorithm.
func (o *OFFSTAT) Name() string { return "OFFSTAT" }

// Kopt returns the chosen number of servers (after Reset).
func (o *OFFSTAT) Kopt() int { return o.kopt }

// CostCurve returns, for each server count i = 1..k, the total cost of the
// greedy static configuration with i servers over the whole sequence. This
// is the curve of Figure 12, whose minimum defines kopt.
func (o *OFFSTAT) CostCurve() []float64 { return o.curve }

// totalFor evaluates the full-horizon cost of a static placement: creation
// of the servers (reconfiguring from the shared initial configuration γ0),
// running cost and access cost for every round.
func (o *OFFSTAT) totalFor(p core.Placement) float64 {
	entering, leaving := o.env.Start.Diff(p)
	total := o.env.Costs.Transition(len(entering), len(leaving))
	run := o.env.Costs.Run(p.Len(), 0)
	sep := o.env.Eval.Separable()
	if sep {
		agg := o.seq.Aggregate(0, o.seq.Len())
		ac := o.env.Eval.Access(p, agg)
		// The latency term aggregates exactly; the load term must account
		// for idle rounds, but for separable loads with zero idle value
		// the aggregate equals the per-round sum.
		total += ac.Total() + float64(o.seq.Len())*run
		return total
	}
	for t := 0; t < o.seq.Len(); t++ {
		total += o.env.Eval.Access(p, o.seq.Demand(t)).Total() + run
	}
	return total
}

// Reset implements sim.Algorithm: it computes the greedy placement curve
// and selects kopt.
func (o *OFFSTAT) Reset(env *sim.Env) error {
	o.env = env
	o.installed = false
	k := env.Pool.MaxServers
	if k <= 0 || k > env.Graph.N() {
		k = env.Graph.N()
	}
	if k == 0 {
		return fmt.Errorf("offstat: empty network")
	}
	agg := o.seq.Aggregate(0, o.seq.Len())

	o.curve = o.curve[:0]
	var cur core.Placement
	best := core.Placement(nil)
	bestCost := math.Inf(1)
	// The greedy curve adds one server at a time against the same
	// aggregated demand, so a single scorer is maintained incrementally
	// (ApplyAdd) across iterations; only non-separable loads fall back to
	// one BestAddition evaluation per server count.
	var sc *cost.Scorer
	occ := make([]bool, env.Graph.N())
	for i := 1; i <= k; i++ {
		var v int
		var ok bool
		if sc != nil {
			v, ok = bestAddViaScorer(sc, occ)
		} else {
			v, _, ok = env.Eval.BestAddition(cur, agg)
		}
		if !ok {
			break
		}
		cur = cur.With(v)
		occ[v] = true
		if sc == nil {
			sc, _ = cost.NewScorer(env.Eval, cur, agg) // nil for non-separable loads
		} else {
			sc.ApplyAdd(v)
		}
		total := o.totalFor(cur)
		o.curve = append(o.curve, total)
		if total < bestCost {
			best, bestCost = cur.Clone(), total
		}
	}
	if sc != nil {
		sc.Release()
	}
	if best.Len() == 0 {
		return fmt.Errorf("offstat: could not place any server")
	}
	o.placement = best
	o.kopt = best.Len()
	return nil
}

// bestAddViaScorer returns the free node whose addition minimises the
// scorer's access score, mirroring Evaluator.BestAddition's selection
// (ascending node order, strict improvement) on the incrementally
// maintained scorer.
func bestAddViaScorer(sc *cost.Scorer, occ []bool) (int, bool) {
	bestNode, found := -1, false
	bestScore := math.Inf(1)
	for v := range occ {
		if occ[v] {
			continue
		}
		if score := sc.Add(v); !found || score < bestScore {
			bestNode, bestScore, found = v, score, true
		}
	}
	return bestNode, found
}

// Prepare implements sim.Algorithm: the static configuration is installed
// before the first round and then kept forever.
func (o *OFFSTAT) Prepare(t int) core.Delta {
	if o.installed || t != 0 {
		return core.Delta{}
	}
	o.installed = true
	entering, leaving := o.env.Start.Diff(o.placement)
	created := len(entering)
	migr := 0
	if o.env.Costs.MigrationBeneficial() {
		migr = len(leaving)
		if migr > created {
			migr = created
		}
	}
	return core.Delta{
		Migration:  float64(migr) * o.env.Costs.Beta,
		Creation:   float64(created-migr) * o.env.Costs.Create,
		Migrations: migr,
		Creations:  created - migr,
	}
}

// Placement implements sim.Algorithm.
func (o *OFFSTAT) Placement() core.Placement {
	if !o.installed {
		return o.env.Start.Clone()
	}
	return o.placement.Clone()
}

// Inactive implements sim.Algorithm: OFFSTAT never caches servers.
func (o *OFFSTAT) Inactive() int { return 0 }

// Observe implements sim.Algorithm: OFFSTAT never reacts.
func (o *OFFSTAT) Observe(int, cost.Demand, cost.AccessCost) core.Delta { return core.Delta{} }
